// Fixture: even the escape hatch can be suppressed, loudly.
#include "common/sync.h"

namespace fixture {

class Cache {
 public:
  // piye-lint: allow(analysis-escape) benchmark-only racy peek, documented
  int UnsafePeek() NO_THREAD_SAFETY_ANALYSIS { return value_; }

 private:
  Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

// Fixture: a test asserting the non-retry contract mentions both tokens.
#include "common/status.h"

namespace fixture {

bool RetriedPrivacyViolation(const piye::Status& s, int attempts) {
  // piye-lint: allow(privacy-retry) asserting the contract, not breaking it
  return attempts > 1 && s.code() == piye::StatusCode::kPrivacyViolation;
}

}  // namespace fixture

// Fixture: timestamping a report is a legitimate wall-clock use.
#include <chrono>

namespace fixture {

auto ReportStamp() {
  // piye-lint: allow(wall-clock) human-readable report timestamp, never scheduled on
  return std::chrono::system_clock::now();
}

}  // namespace fixture

// Suppressed: a cold one-shot rendering path may walk materialized rows
// when it says so.
#include "relational/table.h"

namespace piye {

void Render(const relational::Table& table) {
  // piye-lint: allow(row-loop) cold path: one-shot report rendering
  for (const relational::Row& row : table.rows()) {
    (void)row;
  }
}

}  // namespace piye

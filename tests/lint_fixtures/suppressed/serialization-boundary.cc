// Fixture: an explicitly blessed one-off (e.g. a debug dumper).
#include "relational/xml_bridge.h"

namespace fixture {

std::string Dump(const piye::relational::Table& table) {
  // piye-lint: allow(serialization-boundary) debug dump, policy-tagged upstream
  auto doc = piye::relational::TableToXml(table, "dump");
  return "dumped";
}

}  // namespace fixture

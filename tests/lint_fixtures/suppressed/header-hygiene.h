// Fixture: a type that legitimately owns a thread suppresses the include ban.
#ifndef FIXTURE_SUPPRESSED_HEADER_HYGIENE_H_
#define FIXTURE_SUPPRESSED_HEADER_HYGIENE_H_

#include <thread>  // piye-lint: allow(header-hygiene) owns its poller thread

namespace fixture {

struct Poller {
  // piye-lint: allow(raw-thread) joined in the destructor
  std::thread thread;
};

}  // namespace fixture

#endif  // FIXTURE_SUPPRESSED_HEADER_HYGIENE_H_

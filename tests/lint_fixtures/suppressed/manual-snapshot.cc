// Fixture: a preceding-line suppression silences the rule.
#include "persist/state_log.h"

namespace fixture {

piye::Status OfflineCompactor(piye::persist::StateLog* log) {
  // piye-lint: allow(manual-snapshot) offline tool, no live snapshotter exists
  return log->Rotate("snapshot-bytes", {});
}

}  // namespace fixture

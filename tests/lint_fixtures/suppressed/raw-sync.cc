// Fixture: a same-line suppression silences the rule.
#include <mutex>

namespace fixture {

std::mutex legacy_mu;  // piye-lint: allow(raw-sync) migrated in the next PR

}  // namespace fixture

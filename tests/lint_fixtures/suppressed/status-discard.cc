// Fixture: the allow marker doubles as the justification comment.
#include "common/status.h"

namespace fixture {

piye::Status Teardown();

void Close() {
  (void)Teardown();  // piye-lint: allow(status-discard) shutdown path
}

}  // namespace fixture

// Fixture: a preceding-line suppression silences the rule.
#include <thread>

namespace fixture {

struct Loop {
  // piye-lint: allow(raw-thread) dedicated poller, joined in the destructor
  std::thread poller;
};

}  // namespace fixture

// Fixture: opting out of the thread-safety proof.
#include "common/sync.h"

namespace fixture {

class Cache {
 public:
  int UnsafePeek() NO_THREAD_SAFETY_ANALYSIS { return value_; }

 private:
  Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

// Fixture: iostream leaked into a header.
#ifndef FIXTURE_BAD_HEADER_HYGIENE_H_
#define FIXTURE_BAD_HEADER_HYGIENE_H_

#include <iostream>
#include <string>

namespace fixture {

inline void Print(const std::string& s) { std::cout << s; }

}  // namespace fixture

#endif  // FIXTURE_BAD_HEADER_HYGIENE_H_

// Fixture: retrying a privacy refusal.
#include "common/status.h"

namespace fixture {

piye::Status Run(int max_retries);

piye::Status Query() {
  piye::Status s = Run(0);
  for (int attempt = 1; s.code() == piye::StatusCode::kPrivacyViolation && attempt < 3; ++attempt) {
    s = Run(attempt);
  }
  return s;
}

}  // namespace fixture

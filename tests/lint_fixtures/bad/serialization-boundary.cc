// Fixture: raw-record serialization away from the blessed seams (this file
// is linted under a src/mediator/ virtual path).
#include "relational/xml_bridge.h"

namespace fixture {

std::string Dump(const piye::relational::Table& table) {
  auto doc = piye::relational::TableToXml(table, "dump");
  return "dumped";
}

}  // namespace fixture

// Fixture: raw std synchronization outside common/sync.h.
#include <mutex>

namespace fixture {

int Count() {
  static std::mutex mu;
  mu.lock();
  static int count = 0;
  ++count;
  mu.unlock();
  return count;
}

}  // namespace fixture

// Fixture: a component rotating the state log directly, racing the
// snapshotter's dirty-floor tracking.
#include "persist/state_log.h"

namespace fixture {

piye::Status CompactNow(piye::persist::StateLog* log) {
  return log->Rotate("snapshot-bytes", {});
}

}  // namespace fixture

// Fixture: unmanaged thread spawn outside the executor.
#include <thread>

namespace fixture {

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();
}

}  // namespace fixture

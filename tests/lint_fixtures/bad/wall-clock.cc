// Fixture: wall-clock scheduling.
#include <chrono>

namespace fixture {

auto Deadline() {
  return std::chrono::system_clock::now() + std::chrono::seconds(1);
}

}  // namespace fixture

// Bad: a perturbation kernel mutating cells through materialized rows.
#include "relational/table.h"

namespace piye {

void Kernel(relational::Table* table) {
  for (auto& row : table->mutable_rows()) {
    row[0] = relational::Value::Int(1);
  }
}

}  // namespace piye

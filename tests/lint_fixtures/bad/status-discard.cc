// Fixture: silently swallowed Status.
#include "common/status.h"

namespace fixture {

piye::Status Teardown();

void Close() {
  (void)Teardown();
}

}  // namespace fixture

// Fixture: the mediator hands tables around as handles; only the blessed
// seams materialize bytes.
#include "relational/table.h"

namespace fixture {

size_t Rows(const piye::relational::Table& table) {
  return table.records.size();
}

}  // namespace fixture

// Good: the same kernel as a tight loop over the contiguous typed buffer.
#include "relational/table.h"

namespace piye {

void Kernel(relational::Table* table) {
  relational::ColumnVector* col = table->MutableColumn(0);
  int64_t* vals = col->mutable_ints();
  for (size_t i = 0; i < table->num_rows(); ++i) {
    if (col->IsNull(i)) continue;
    vals[i] += 1;
  }
}

}  // namespace piye

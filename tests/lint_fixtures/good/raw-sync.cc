// Fixture: the annotated wrappers are the blessed primitives. A comment
// mentioning std::mutex must not fire either.
#include "common/sync.h"

namespace fixture {

class Counter {
 public:
  int Next() {
    MutexLock lock(mu_);
    return ++count_;
  }

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

// Fixture: clean header.
#ifndef FIXTURE_GOOD_HEADER_HYGIENE_H_
#define FIXTURE_GOOD_HEADER_HYGIENE_H_

#include <string>

#include "common/sync.h"

namespace fixture {

class Named {
 public:
  explicit Named(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

}  // namespace fixture

#endif  // FIXTURE_GOOD_HEADER_HYGIENE_H_

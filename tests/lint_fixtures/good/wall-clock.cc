// Fixture: monotonic time for deadlines.
#include <chrono>

namespace fixture {

auto Deadline() {
  return std::chrono::steady_clock::now() + std::chrono::seconds(1);
}

}  // namespace fixture

// Fixture: only transient transport faults are retried; the privacy verdict
// is checked on its own, far from any retry token.
#include "common/status.h"

namespace fixture {

piye::Status Run(int max_retries);

piye::Status Query() {
  piye::Status s = Run(0);
  for (int attempt = 1; s.IsUnavailable() && attempt < 3; ++attempt) {
    s = Run(attempt);
  }
  if (s.IsPrivacyViolation()) {
    return s;
  }
  return s;
}

}  // namespace fixture

// Fixture: snapshots are requested through the engine; the background
// snapshotter owns the actual rotation.
#include "mediator/engine.h"

namespace fixture {

piye::Status RequestSnapshot(piye::mediator::MediationEngine* engine) {
  return engine->TriggerSnapshot(/*wait=*/true);
}

}  // namespace fixture

// Fixture: guarded access under the capability, no escape hatch.
#include "common/sync.h"

namespace fixture {

class Cache {
 public:
  int Peek() {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

// Fixture: every discard says why, and one comment may head a contiguous
// block of discards.
#include "common/status.h"

namespace fixture {

piye::Status Teardown();
piye::Status Flush();

void Close() {
  (void)Teardown();  // already failing: the caller reports the first error

  // Best-effort pair: the transport is gone either way.
  (void)Teardown();
  (void)Flush();

  bool unused = true;
  (void)unused;
}

}  // namespace fixture

// Fixture: work goes to the pool, not to raw threads.
#include "common/executor.h"

namespace fixture {

void RunOnPool(piye::Executor& pool) {
  auto f = pool.Submit([] { return 1; });
  f.wait();
}

}  // namespace fixture

#include <gtest/gtest.h>

#include <cmath>

#include "relational/sql.h"
#include "statdb/aggregate_query.h"
#include "statdb/audit.h"
#include "statdb/restriction.h"
#include "statdb/sampling.h"

namespace piye {
namespace statdb {
namespace {

using relational::Column;
using relational::ColumnType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

Table SalaryFixture() {
  Table t(Schema{Column{"id", ColumnType::kString},
                 Column{"dept", ColumnType::kString},
                 Column{"salary", ColumnType::kDouble}});
  const char* depts[] = {"icu", "icu", "icu", "lab", "lab", "lab", "er", "er"};
  const double salaries[] = {90, 80, 100, 60, 70, 65, 85, 95};
  for (int i = 0; i < 8; ++i) {
    (void)t.AppendRow(Row{Value::Str("E" + std::to_string(i)), Value::Str(depts[i]),
                          Value::Real(salaries[i])});
  }
  return t;
}

AggregateQuery MakeQuery(relational::AggFunc func, const std::string& where) {
  AggregateQuery q;
  q.func = func;
  q.column = "salary";
  if (!where.empty()) {
    auto e = relational::ParseExpression(where);
    EXPECT_TRUE(e.ok());
    q.predicate = *e;
  }
  return q;
}

TEST(AggregateQueryTest, QuerySetAndEvaluate) {
  const Table t = SalaryFixture();
  const AggregateQuery q = MakeQuery(relational::AggFunc::kSum, "dept = 'icu'");
  auto rows = QuerySet(q, t);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  auto v = EvaluateAggregate(q, t, *rows);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 270.0);
}

TEST(AggregateQueryTest, AllAggregates) {
  const Table t = SalaryFixture();
  const std::vector<size_t> all{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_DOUBLE_EQ(*EvaluateAggregate(MakeQuery(relational::AggFunc::kCount, ""), t, all),
                   8.0);
  EXPECT_DOUBLE_EQ(*EvaluateAggregate(MakeQuery(relational::AggFunc::kAvg, ""), t, all),
                   80.625);
  EXPECT_DOUBLE_EQ(*EvaluateAggregate(MakeQuery(relational::AggFunc::kMin, ""), t, all),
                   60.0);
  EXPECT_DOUBLE_EQ(*EvaluateAggregate(MakeQuery(relational::AggFunc::kMax, ""), t, all),
                   100.0);
}

TEST(AggregateQueryTest, EmptySetErrorsForAvg) {
  const Table t = SalaryFixture();
  EXPECT_FALSE(EvaluateAggregate(MakeQuery(relational::AggFunc::kAvg, ""), t, {}).ok());
  EXPECT_TRUE(EvaluateAggregate(MakeQuery(relational::AggFunc::kCount, ""), t, {}).ok());
}

TEST(QuerySetSizeControlTest, BlocksSmallAndLargeSets) {
  const Table t = SalaryFixture();
  QuerySetSizeControl control(3);
  // |C| = 3: allowed.
  EXPECT_TRUE(control.Answer(MakeQuery(relational::AggFunc::kSum, "dept = 'icu'"), t).ok());
  // |C| = 2 < k: refused.
  auto small = control.Answer(MakeQuery(relational::AggFunc::kSum, "dept = 'er'"), t);
  EXPECT_TRUE(small.status().IsPrivacyViolation());
  // |C| = 8 > N - k = 5: the complement attack is refused too.
  auto all = control.Answer(MakeQuery(relational::AggFunc::kSum, ""), t);
  EXPECT_TRUE(all.status().IsPrivacyViolation());
}

TEST(OverlapControlTest, EnforcesPairwiseOverlap) {
  const Table t = SalaryFixture();
  OverlapControl control(/*min_size=*/3, /*max_overlap=*/1);
  ASSERT_TRUE(control.Answer(MakeQuery(relational::AggFunc::kSum, "dept = 'icu'"), t).ok());
  // lab ∩ icu = 0 rows: fine.
  ASSERT_TRUE(control.Answer(MakeQuery(relational::AggFunc::kSum, "dept = 'lab'"), t).ok());
  // salary >= 80 = {0,1,2,6,7} overlaps icu = {0,1,2} in 3 > 1 rows: refused.
  auto r = control.Answer(MakeQuery(relational::AggFunc::kSum, "salary >= 80"), t);
  EXPECT_TRUE(r.status().IsPrivacyViolation());
  EXPECT_EQ(control.history_size(), 2u);
}

TEST(OverlapControlTest, CompromiseLowerBound) {
  OverlapControl control(9, 2);
  EXPECT_EQ(control.CompromiseLowerBound(), 5u);  // 1 + (9-1)/2
}

TEST(SumAuditorTest, RefusesExactCompromise) {
  const Table t = SalaryFixture();
  SumAuditor auditor(t.num_rows());
  // SUM over icu (3 rows): ok.
  ASSERT_TRUE(auditor.Answer(MakeQuery(relational::AggFunc::kSum, "dept = 'icu'"), t).ok());
  // SUM over icu minus employee E0 = {E1,E2}: would expose E0 = difference.
  auto r = auditor.Answer(
      MakeQuery(relational::AggFunc::kSum, "dept = 'icu' AND id <> 'E0'"), t);
  EXPECT_TRUE(r.status().IsPrivacyViolation());
  EXPECT_EQ(auditor.queries_answered(), 1u);
  EXPECT_EQ(auditor.queries_refused(), 1u);
  EXPECT_TRUE(auditor.DeterminableRecords().empty());
}

TEST(SumAuditorTest, RefusesSingletonQuery) {
  const Table t = SalaryFixture();
  SumAuditor auditor(t.num_rows());
  auto r = auditor.Answer(MakeQuery(relational::AggFunc::kSum, "id = 'E3'"), t);
  EXPECT_TRUE(r.status().IsPrivacyViolation());
}

TEST(SumAuditorTest, DisjointSumsAreSafe) {
  const Table t = SalaryFixture();
  SumAuditor auditor(t.num_rows());
  EXPECT_TRUE(auditor.Answer(MakeQuery(relational::AggFunc::kSum, "dept = 'icu'"), t).ok());
  EXPECT_TRUE(auditor.Answer(MakeQuery(relational::AggFunc::kSum, "dept = 'lab'"), t).ok());
  EXPECT_TRUE(auditor.Answer(MakeQuery(relational::AggFunc::kSum, "dept = 'er'"), t).ok());
  EXPECT_EQ(auditor.queries_answered(), 3u);
}

TEST(SumAuditorTest, OnlySumQueriesAccepted) {
  const Table t = SalaryFixture();
  SumAuditor auditor(t.num_rows());
  EXPECT_FALSE(auditor.Answer(MakeQuery(relational::AggFunc::kAvg, ""), t).ok());
}

TEST(EchelonBasisTest, SpanMembership) {
  EchelonBasis basis(3);
  EXPECT_TRUE(basis.Insert({1, 1, 0}));
  EXPECT_TRUE(basis.Insert({0, 1, 1}));
  EXPECT_FALSE(basis.Insert({1, 2, 1}));  // sum of the first two
  EXPECT_TRUE(basis.InSpan({1, 0, -1}));  // difference
  EXPECT_FALSE(basis.InSpan({1, 0, 0}));
  EXPECT_EQ(basis.rank(), 2u);
}

TEST(RandomSampleQueriesTest, DeterministicPerQuery) {
  const Table t = SalaryFixture();
  RandomSampleQueries rsq("id", 0.7, 99);
  const AggregateQuery q = MakeQuery(relational::AggFunc::kSum, "dept = 'icu'");
  auto a = rsq.Answer(q, t);
  auto b = rsq.Answer(q, t);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);  // re-asking the same query gains nothing
}

TEST(RandomSampleQueriesTest, DifferentFormulasSampleDifferently) {
  const Table t = SalaryFixture();
  RandomSampleQueries rsq("id", 0.5, 99);
  const AggregateQuery q1 = MakeQuery(relational::AggFunc::kSum, "salary > 0");
  const AggregateQuery q2 = MakeQuery(relational::AggFunc::kSum, "salary >= 0");
  // Logically identical query sets, but inclusion depends on the formula.
  int differs = 0;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "E" + std::to_string(i);
    if (rsq.Includes(key, q1) != rsq.Includes(key, q2)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(RandomSampleQueriesTest, UnbiasedAtScale) {
  // Large synthetic table: SUM estimate should land near the true sum.
  Table t(Schema{Column{"id", ColumnType::kString}, Column{"v", ColumnType::kDouble}});
  double truth = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double v = (i % 7) + 1.0;
    truth += v;
    (void)t.AppendRow(Row{Value::Str("K" + std::to_string(i)), Value::Real(v)});
  }
  RandomSampleQueries rsq("id", 0.5, 1234);
  AggregateQuery q;
  q.func = relational::AggFunc::kSum;
  q.column = "v";
  auto est = rsq.Answer(q, t);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, truth, 0.05 * truth);
}

TEST(RandomSampleQueriesTest, RejectsBadRate) {
  const Table t = SalaryFixture();
  RandomSampleQueries rsq("id", 0.0, 1);
  EXPECT_FALSE(rsq.Answer(MakeQuery(relational::AggFunc::kSum, ""), t).ok());
}

}  // namespace
}  // namespace statdb
}  // namespace piye

// Concurrency suite: the common/executor thread pool, the common/trace
// metrics layer, and the mediation engine's concurrent fault-tolerant
// fragment fan-out (deadlines, bounded retry, quorum, graceful degradation,
// and determinism across thread counts). This suite is required to pass
// under PIYE_SANITIZE=thread (scripts/sanitize.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/trace.h"
#include "core/private_iye.h"
#include "core/scenario.h"
#include "mediator/engine.h"
#include "relational/xml_bridge.h"
#include "xml/parser.h"

namespace piye {
namespace {

// --- Executor ---

TEST(ExecutorTest, SubmitReturnsResults) {
  Executor pool(4);
  auto a = pool.Submit([] { return 21 * 2; });
  auto b = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
  EXPECT_EQ(pool.num_threads(), 4u);
  EXPECT_EQ(pool.tasks_submitted(), 2u);
}

TEST(ExecutorTest, SubmitPropagatesExceptionsThroughFuture) {
  Executor pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ExecutorTest, ParallelForCoversEveryIndexExactlyOnce) {
  Executor pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run for n=0"; });
}

TEST(ExecutorTest, TasksRunConcurrently) {
  Executor pool(2);
  // Two tasks that each wait for the other: only completes if the pool
  // really runs them in parallel.
  std::atomic<bool> a_started{false}, b_started{false};
  auto wait_for = [](std::atomic<bool>& flag) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!flag.load()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto fa = pool.Submit([&] {
    a_started = true;
    return wait_for(b_started);
  });
  auto fb = pool.Submit([&] {
    b_started = true;
    return wait_for(a_started);
  });
  EXPECT_TRUE(fa.get());
  EXPECT_TRUE(fb.get());
}

TEST(ExecutorTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    Executor pool(1);
    for (int i = 0; i < 32; ++i) {
      (void)pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(ran.load(), 32);
}

// --- Trace / metrics ---

TEST(TraceTest, ScopedSpanRecordsNonNegativeMicros) {
  trace::Trace t;
  {
    trace::ScopedSpan span("work", &t);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  auto timings = t.timings();
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_EQ(timings[0].stage, "work");
  EXPECT_GT(timings[0].micros, 0.0);
}

TEST(TraceTest, StopEndsSpanEarlyAndOnce) {
  trace::Trace t;
  trace::ScopedSpan span("early", &t);
  const double micros = span.Stop();
  EXPECT_GE(micros, 0.0);
  EXPECT_EQ(span.Stop(), 0.0);  // idempotent
  EXPECT_EQ(t.timings().size(), 1u);
}

TEST(TraceTest, HistogramStatsAndPercentiles) {
  trace::Histogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0, 1000.0}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum_micros(), 1015.0);
  EXPECT_DOUBLE_EQ(h.min_micros(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_micros(), 1000.0);
  EXPECT_LE(h.PercentileMicros(0.5), 8.0);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(1.0), 1000.0);
}

TEST(TraceTest, RegistryCountersAndJson) {
  trace::MetricsRegistry registry;
  registry.AddCounter("queries");
  registry.AddCounter("queries", 2);
  registry.RecordLatency("stage.fragment", 123.0);
  EXPECT_EQ(registry.counter("queries"), 3u);
  EXPECT_EQ(registry.counter("missing"), 0u);
  EXPECT_EQ(registry.latency("stage.fragment").count(), 1u);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"queries\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"stage.fragment\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_micros\""), std::string::npos);
  registry.Reset();
  EXPECT_EQ(registry.counter("queries"), 0u);
}

// Minimal strict JSON value parser for the ToJson round-trip test: accepts
// exactly the RFC 8259 grammar for objects of strings/numbers/objects,
// rejects bad escapes, unescaped control characters, and trailing input.
// Returns false on any deviation; collects decoded object keys.
class StrictJsonParser {
 public:
  explicit StrictJsonParser(const std::string& text) : text_(text) {}

  bool Parse() {
    bool ok = ParseValue();
    SkipWs();
    return ok && pos_ == text_.size();
  }

  const std::vector<std::string>& keys() const { return keys_; }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 5 >= text_.size()) return false;
            unsigned code = 0;
            for (int i = 2; i < 6; ++i) {
              const char h = text_[pos_ + i];
              if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
              code = code * 16 + (std::isdigit(static_cast<unsigned char>(h))
                                      ? h - '0'
                                      : (std::tolower(h) - 'a') + 10);
            }
            if (code > 0x7f) return false;  // names here are ASCII
            out->push_back(static_cast<char>(code));
            pos_ += 4;
            break;
          }
          default:
            return false;  // e.g. an unescaped backslash making "\p"
        }
        pos_ += 2;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t digits = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return false;  // "1." is not JSON
    }
    return pos_ > start;
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      keys_.push_back(std::move(key));
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      SkipWs();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] == '{') return ParseObject();
    if (text_[pos_] == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    return ParseNumber();
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::vector<std::string> keys_;
};

TEST(TraceTest, ToJsonRoundTripsHostileNamesThroughStrictParser) {
  trace::MetricsRegistry registry;
  // Names a careless emitter would corrupt: embedded quote, backslash,
  // newline, and a control character.
  const std::string quoted = "queries\"total\"";
  const std::string slashed = "path\\to\\metric";
  const std::string multiline = "line1\nline2";
  const std::string control = std::string("ctl") + '\x01' + "x";
  registry.AddCounter(quoted, 3);
  registry.AddCounter(slashed, 7);
  registry.AddCounter(multiline);
  registry.AddCounter(control);
  registry.RecordLatency(quoted, 42.0);

  const std::string json = registry.ToJson();
  StrictJsonParser parser(json);
  ASSERT_TRUE(parser.Parse()) << json;

  // Round trip: every hostile name must decode back to its original bytes.
  const auto& keys = parser.keys();
  auto has_key = [&keys](const std::string& want) {
    return std::find(keys.begin(), keys.end(), want) != keys.end();
  };
  EXPECT_TRUE(has_key(quoted)) << json;
  EXPECT_TRUE(has_key(slashed)) << json;
  EXPECT_TRUE(has_key(multiline)) << json;
  EXPECT_TRUE(has_key(control)) << json;
  EXPECT_NE(json.find("\"queries\\\"total\\\"\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"path\\\\to\\\\metric\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\\u0001"), std::string::npos) << json;
}

TEST(TraceTest, ToJsonEmitsExplicitZerosForEmptyHistograms) {
  trace::MetricsRegistry registry;
  registry.DeclareLatency("declared.but.never.recorded");
  const std::string json = registry.ToJson();
  StrictJsonParser parser(json);
  ASSERT_TRUE(parser.Parse()) << json;
  const std::string want =
      "\"declared.but.never.recorded\": {\"count\": 0, "
      "\"sum_micros\": 0.000, \"min_micros\": 0.000, \"max_micros\": 0.000, "
      "\"mean_micros\": 0.000, \"p50_micros\": 0.000, \"p95_micros\": 0.000, "
      "\"p99_micros\": 0.000}";
  EXPECT_NE(json.find(want), std::string::npos) << json;
  // The snapshot accessor agrees: empty histogram, all-zero summary.
  EXPECT_EQ(registry.latency("declared.but.never.recorded").count(), 0u);
  EXPECT_EQ(registry.latency("declared.but.never.recorded").max_micros(), 0.0);
}

TEST(TraceTest, RegistryIsSafeForConcurrentWriters) {
  trace::MetricsRegistry registry;
  Executor pool(4);
  pool.ParallelFor(64, [&registry](size_t i) {
    registry.AddCounter("c");
    registry.RecordLatency("l", static_cast<double>(i));
  });
  EXPECT_EQ(registry.counter("c"), 64u);
  EXPECT_EQ(registry.latency("l").count(), 64u);
}

// --- Engine fan-out over homogeneous patient sources ---

std::string TableBytes(const relational::Table& t) {
  return xml::Serialize(*relational::TableToXml(t, "t"), /*indent=*/-1);
}

std::vector<std::unique_ptr<source::RemoteSource>> BuildSources(
    size_t n, uint64_t latency_micros = 0) {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  for (size_t i = 0; i < n; ++i) {
    auto tables = core::ClinicalScenario::MakePatientTables(20, 0.3, 100 + i);
    auto src = std::make_unique<source::RemoteSource>(
        "hospital" + std::to_string(i), "patients", std::move(tables.hospital),
        /*seed=*/i + 1);
    core::ClinicalScenario::ApplyPatientPolicies(src.get());
    if (latency_micros > 0) {
      source::RemoteSource::FaultInjection faults;
      faults.latency_micros = latency_micros;
      src->set_fault_injection(faults);
    }
    sources.push_back(std::move(src));
  }
  return sources;
}

std::unique_ptr<mediator::MediationEngine> BuildEngine(
    const std::vector<std::unique_ptr<source::RemoteSource>>& sources,
    size_t worker_threads) {
  mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  options.worker_threads = worker_threads;
  auto engine = std::make_unique<mediator::MediationEngine>(options);
  for (const auto& src : sources) {
    EXPECT_TRUE(engine->RegisterSource(src.get()).ok());
  }
  EXPECT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
  return engine;
}

source::PiqlQuery MakeQuery(const std::string& body) {
  auto q = source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">" + body +
      "</query>");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(EngineFanoutTest, ParallelOutputIsByteIdenticalToSerial) {
  auto sources = BuildSources(6, /*latency_micros=*/1000);
  auto serial = BuildEngine(sources, /*worker_threads=*/0);
  auto parallel = BuildEngine(sources, /*worker_threads=*/8);
  const auto query = MakeQuery("<select>patient_id</select><select>sex</select>");
  auto rs = serial->Execute(query, mediator::QueryOptions{});
  auto rp = parallel->Execute(query, mediator::QueryOptions{});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  EXPECT_EQ(rs->sources_answered, rp->sources_answered);
  EXPECT_EQ(rs->sources_skipped, rp->sources_skipped);
  EXPECT_EQ(TableBytes(rs->table()), TableBytes(rp->table()));
  EXPECT_DOUBLE_EQ(rs->combined_privacy_loss, rp->combined_privacy_loss);
}

TEST(EngineFanoutTest, DeterministicAcrossThreadCounts) {
  auto sources = BuildSources(5);
  const auto query = MakeQuery("<select>patient_id</select><select>dob</select>");
  std::string reference;
  for (size_t threads : {0u, 1u, 2u, 8u}) {
    auto engine = BuildEngine(sources, threads);
    auto result = engine->Execute(query, mediator::QueryOptions{});
    ASSERT_TRUE(result.ok()) << "threads=" << threads << ": "
                             << result.status().ToString();
    const std::string bytes = TableBytes(result->table());
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "threads=" << threads;
    }
  }
}

TEST(EngineFanoutTest, RepeatedQueryReproducesIdenticalPerturbation) {
  // Per-call RNG streams are derived from (source seed, fragment), so
  // re-asking the same query must reproduce the identical noise — averaging
  // repeated answers gains an attacker nothing.
  auto sources = BuildSources(3);
  auto engine = BuildEngine(sources, 4);
  const auto query = MakeQuery("<select>patient_id</select><select>dob</select>");
  auto first = engine->Execute(query, mediator::QueryOptions{});
  auto second = engine->Execute(query, mediator::QueryOptions{});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_warehouse);  // warehouse disabled in BuildEngine
  EXPECT_EQ(TableBytes(first->table()), TableBytes(second->table()));
}

TEST(EngineFanoutTest, FaultySourcesAreSkippedWithReasons) {
  auto sources = BuildSources(8);
  // Source 2 fails transiently on every attempt; source 5 hangs well past
  // the per-source deadline.
  source::RemoteSource::FaultInjection erroring;
  erroring.error_rate = 1.0;
  erroring.seed = 7;
  sources[2]->set_fault_injection(erroring);
  source::RemoteSource::FaultInjection hanging;
  hanging.drop_rate = 1.0;
  hanging.hang_micros = 200'000;
  hanging.seed = 8;
  sources[5]->set_fault_injection(hanging);

  auto engine = BuildEngine(sources, 8);
  mediator::QueryOptions options;
  options.deadline_ms = 50;
  options.max_retries = 1;
  auto result = engine->Execute(MakeQuery("<select>patient_id</select>"), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sources_answered.size(), 6u);
  ASSERT_EQ(result->sources_skipped.size(), 2u);
  EXPECT_NE(result->sources_skipped.at("hospital2").find("injected fault"),
            std::string::npos);
  EXPECT_NE(result->sources_skipped.at("hospital5").find("DeadlineExceeded"),
            std::string::npos);
  EXPECT_GE(engine->metrics()->counter("engine.fragment_retries"), 1u);
  EXPECT_GE(engine->metrics()->counter("engine.fragments_deadline_exceeded"), 1u);
}

TEST(EngineFanoutTest, QuorumEnforcement) {
  auto sources = BuildSources(4);
  source::RemoteSource::FaultInjection erroring;
  erroring.error_rate = 1.0;
  sources[0]->set_fault_injection(erroring);
  auto engine = BuildEngine(sources, 4);
  const auto query = MakeQuery("<select>patient_id</select>");

  mediator::QueryOptions strict;
  strict.min_sources = 4;
  auto refused = engine->Execute(query, strict);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable());
  EXPECT_NE(refused.status().message().find("quorum"), std::string::npos);
  EXPECT_NE(refused.status().message().find("hospital0"), std::string::npos);

  mediator::QueryOptions relaxed;
  relaxed.min_sources = 3;
  auto served = engine->Execute(query, relaxed);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->sources_answered.size(), 3u);
}

TEST(EngineFanoutTest, AllSourcesDownIsUnavailableNotPrivacyViolation) {
  // Every source failing transiently is a transport failure, not a privacy
  // verdict: the caller should see kUnavailable (retryable) and the per-source
  // reasons, never a misleading PrivacyViolation.
  auto sources = BuildSources(3);
  source::RemoteSource::FaultInjection erroring;
  erroring.error_rate = 1.0;
  for (auto& s : sources) s->set_fault_injection(erroring);
  auto engine = BuildEngine(sources, 4);
  auto result =
      engine->Execute(MakeQuery("<select>patient_id</select>"), mediator::QueryOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  EXPECT_NE(result.status().message().find("hospital1"), std::string::npos);
}

TEST(EngineFanoutTest, SerialModeStillDegradesGracefully) {
  // worker_threads == 0: no pool, but retry and error degradation still work
  // (deadlines cannot preempt an in-line call; they only bound retries).
  auto sources = BuildSources(3);
  source::RemoteSource::FaultInjection erroring;
  erroring.error_rate = 1.0;
  sources[1]->set_fault_injection(erroring);
  auto engine = BuildEngine(sources, 0);
  auto result =
      engine->Execute(MakeQuery("<select>patient_id</select>"), mediator::QueryOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sources_answered.size(), 2u);
  EXPECT_EQ(result->sources_skipped.count("hospital1"), 1u);
}

TEST(EngineFanoutTest, RequesterOverrideReachesHistory) {
  auto sources = BuildSources(2);
  auto engine = BuildEngine(sources, 2);
  mediator::QueryOptions options;
  options.requester = "analyst";  // the RBAC-known identity
  // The query self-claims a different requester; the override wins.
  auto q = source::PiqlQuery::Parse(
      "<query requester=\"impostor\" purpose=\"research\" maxLoss=\"0.95\">"
      "<select>patient_id</select></query>");
  ASSERT_TRUE(q.ok());
  auto result = engine->Execute(*q, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(engine->history()->ForRequester("analyst").size(), 1u);
  EXPECT_EQ(engine->history()->ForRequester("impostor").size(), 0u);
}

TEST(EngineFanoutTest, PerQueryWarehouseOptOut) {
  auto sources = BuildSources(2);
  mediator::MediationEngine::Options engine_options;
  engine_options.max_combined_loss = 0.95;
  engine_options.max_cumulative_loss = 1e9;
  engine_options.enable_warehouse = true;
  mediator::MediationEngine engine(engine_options);
  for (const auto& src : sources) {
    ASSERT_TRUE(engine.RegisterSource(src.get()).ok());
  }
  ASSERT_TRUE(engine.GenerateMediatedSchema("k").ok());
  const auto query = MakeQuery("<select>patient_id</select>");

  mediator::QueryOptions live;
  live.allow_warehouse = false;
  ASSERT_TRUE(engine.Execute(query, live).ok());
  auto again = engine.Execute(query, live);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->from_warehouse);  // opted out: no lookup, no Put

  mediator::QueryOptions cached;
  ASSERT_TRUE(engine.Execute(query, cached).ok());  // populates
  auto hit = engine.Execute(query, cached);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->from_warehouse);
}

TEST(EngineFanoutTest, ConcurrentExecuteCallersShareOneEngine) {
  auto sources = BuildSources(4, /*latency_micros=*/200);
  auto engine = BuildEngine(sources, 8);
  constexpr int kCallers = 8;
  std::vector<std::thread> callers;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&engine, &ok_count, c] {
      // Distinct WHERE per caller so queries (and history entries) differ.
      const auto query = MakeQuery("<select>patient_id</select><where>sex = '" +
                                   std::string(c % 2 == 0 ? "F" : "M") +
                                   "'</where>");
      // Callers share two query shapes; force private executions so each
      // caller exercises its own fan-out (coalescing has its own tests).
      mediator::QueryOptions opts;
      opts.coalesce = false;
      auto result = engine->Execute(query, opts);
      if (result.ok() && result->table().num_rows() > 0) ok_count.fetch_add(1);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(ok_count.load(), kCallers);
  EXPECT_EQ(engine->history()->size(), static_cast<size_t>(kCallers));
  EXPECT_EQ(engine->metrics()->counter("engine.queries"),
            static_cast<uint64_t>(kCallers));
}

// --- Registration API ---

TEST(RegistrationTest, DuplicateOwnerRejected) {
  auto sources = BuildSources(2);
  mediator::MediationEngine engine;
  ASSERT_TRUE(engine.RegisterSource(sources[0].get()).ok());
  auto tables = core::ClinicalScenario::MakePatientTables(5, 0.5, 9);
  source::RemoteSource dup("hospital0", "other", std::move(tables.hospital));
  const Status status = engine.RegisterSource(&dup);
  EXPECT_TRUE(status.IsAlreadyExists()) << status.ToString();
  EXPECT_EQ(engine.SourceOwners().size(), 1u);
}

TEST(RegistrationTest, RegistrationAfterInitializeRejected) {
  auto sources = BuildSources(2);
  mediator::MediationEngine engine;
  ASSERT_TRUE(engine.RegisterSource(sources[0].get()).ok());
  ASSERT_TRUE(engine.GenerateMediatedSchema("k").ok());
  const Status status = engine.RegisterSource(sources[1].get());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(engine.SourceOwners().size(), 1u);
  EXPECT_FALSE(engine.RegisterSource(nullptr).ok());
}

TEST(RegistrationTest, FacadeSurfacesRegistrationFailures) {
  core::PrivateIye system;
  auto tables1 = core::ClinicalScenario::MakePatientTables(5, 0.5, 1);
  auto tables2 = core::ClinicalScenario::MakePatientTables(5, 0.5, 2);
  ASSERT_NE(system.AddSource("hmo", "patients", std::move(tables1.hospital)), nullptr);
  EXPECT_EQ(system.AddSource("hmo", "patients2", std::move(tables2.hospital)), nullptr);

  auto tables3 = core::ClinicalScenario::MakePatientTables(5, 0.5, 3);
  source::RemoteSource external("clinic", "patients", std::move(tables3.hospital));
  EXPECT_TRUE(system.AddExternalSource(&external).ok());
  EXPECT_TRUE(system.AddExternalSource(&external).IsAlreadyExists());
  ASSERT_TRUE(system.Initialize().ok());
  auto tables4 = core::ClinicalScenario::MakePatientTables(5, 0.5, 4);
  source::RemoteSource late("late", "patients", std::move(tables4.hospital));
  EXPECT_FALSE(system.AddExternalSource(&late).ok());
}

}  // namespace
}  // namespace piye

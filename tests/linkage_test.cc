#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "linkage/bloom.h"
#include "linkage/commutative_cipher.h"
#include "linkage/psi.h"
#include "linkage/record_linkage.h"

namespace piye {
namespace linkage {
namespace {

using relational::Column;
using relational::ColumnType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

// --- Commutative cipher ---

TEST(CommutativeCipherTest, EncryptDecryptRoundTrip) {
  Rng rng(1);
  const CommutativeCipher cipher(&rng);
  const uint64_t m = CommutativeCipher::HashToGroup("patient-17");
  EXPECT_EQ(cipher.Decrypt(cipher.Encrypt(m)), m);
}

TEST(CommutativeCipherTest, Commutativity) {
  Rng rng(2);
  const CommutativeCipher a(&rng), b(&rng);
  for (const char* s : {"alice", "bob", "carol"}) {
    const uint64_t m = CommutativeCipher::HashToGroup(s);
    EXPECT_EQ(a.Encrypt(b.Encrypt(m)), b.Encrypt(a.Encrypt(m))) << s;
  }
}

TEST(CommutativeCipherTest, LayersPeelInAnyOrder) {
  Rng rng(3);
  const CommutativeCipher a(&rng), b(&rng);
  const uint64_t m = CommutativeCipher::HashToGroup("x");
  const uint64_t double_enc = a.Encrypt(b.Encrypt(m));
  EXPECT_EQ(b.Decrypt(a.Decrypt(double_enc)), m);
  EXPECT_EQ(a.Decrypt(b.Decrypt(double_enc)), m);
}

TEST(CommutativeCipherTest, DifferentKeysDifferentCiphertexts) {
  const CommutativeCipher a(12345), b(67890);
  const uint64_t m = CommutativeCipher::HashToGroup("x");
  EXPECT_NE(a.Encrypt(m), b.Encrypt(m));
}

// --- PSI protocols ---

class PsiProtocolTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<PsiProtocol> MakeProtocol() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<PlaintextJoin>();
      case 1:
        return std::make_unique<HashPsi>("salt");
      default:
        return std::make_unique<DhPsi>(99);
    }
  }
};

TEST_P(PsiProtocolTest, ComputesExactIntersection) {
  auto protocol = MakeProtocol();
  const std::vector<std::string> a{"ann", "bob", "cal", "dee"};
  const std::vector<std::string> b{"bob", "dee", "eli"};
  auto result = protocol->Intersect(a, b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, (std::vector<std::string>{"bob", "dee"}));
}

TEST_P(PsiProtocolTest, EmptyAndDisjointSets) {
  auto protocol = MakeProtocol();
  auto empty = protocol->Intersect({}, {"x"});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto disjoint = protocol->Intersect({"a", "b"}, {"c", "d"});
  ASSERT_TRUE(disjoint.ok());
  EXPECT_TRUE(disjoint->empty());
}

TEST_P(PsiProtocolTest, DuplicatesCollapse) {
  auto protocol = MakeProtocol();
  auto result = protocol->Intersect({"x", "x", "y"}, {"x", "x"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, std::vector<std::string>{"x"});
}

TEST_P(PsiProtocolTest, RandomSetsMatchPlaintextTruth) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 7);
  std::vector<std::string> a, b;
  for (int i = 0; i < 200; ++i) {
    if (rng.NextBernoulli(0.6)) a.push_back("k" + std::to_string(i));
    if (rng.NextBernoulli(0.6)) b.push_back("k" + std::to_string(i));
  }
  PlaintextJoin truth_protocol;
  auto truth = truth_protocol.Intersect(a, b);
  ASSERT_TRUE(truth.ok());
  auto protocol = MakeProtocol();
  auto result = protocol->Intersect(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, *truth);
}

std::string PsiProtocolName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"Plaintext", "HashPsi", "DhPsi"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PsiProtocolTest, ::testing::Values(0, 1, 2),
                         PsiProtocolName);

TEST(DhPsiTest, CostsMoreCryptoThanHashPsi) {
  const std::vector<std::string> a{"a", "b", "c", "d"};
  const std::vector<std::string> b{"c", "d", "e"};
  DhPsi dh(1);
  HashPsi hash("s");
  ASSERT_TRUE(dh.Intersect(a, b).ok());
  ASSERT_TRUE(hash.Intersect(a, b).ok());
  EXPECT_GT(dh.stats().crypto_operations, hash.stats().crypto_operations);
  EXPECT_GT(dh.stats().messages_exchanged, hash.stats().messages_exchanged);
}

// --- Bloom filters ---

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1024, 4);
  for (int i = 0; i < 100; ++i) filter.Insert("item" + std::to_string(i));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(filter.MaybeContains("item" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRateWhenSized) {
  BloomFilter filter(4096, 4);
  for (int i = 0; i < 100; ++i) filter.Insert("in" + std::to_string(i));
  int fp = 0;
  for (int i = 0; i < 1000; ++i) fp += filter.MaybeContains("out" + std::to_string(i));
  EXPECT_LT(fp, 20);
}

TEST(BloomFilterTest, DiceSimilarityBounds) {
  BloomFilter a(512, 4), b(512, 4);
  a.Insert("x");
  b.Insert("x");
  EXPECT_DOUBLE_EQ(BloomFilter::DiceSimilarity(a, b), 1.0);
  BloomFilter c(512, 4);
  c.Insert("completely-different");
  EXPECT_LT(BloomFilter::DiceSimilarity(a, c), 0.5);
  BloomFilter mismatched(256, 4);
  EXPECT_DOUBLE_EQ(BloomFilter::DiceSimilarity(a, mismatched), 0.0);
}

TEST(BloomEncoderTest, TyposKeepHighDice) {
  const BloomEncoder encoder("secret", {512, 4, 2});
  const auto a = encoder.Encode({"john smith", "1970-01-02"});
  const auto b = encoder.Encode({"jon smith", "1970-01-02"});
  const auto c = encoder.Encode({"maria garcia", "1985-07-21"});
  EXPECT_GT(BloomFilter::DiceSimilarity(a, b), 0.8);
  EXPECT_LT(BloomFilter::DiceSimilarity(a, c), 0.5);
}

TEST(BloomEncoderTest, DifferentKeysProduceUnrelatedFilters) {
  const BloomEncoder k1("key1", {512, 4, 2});
  const BloomEncoder k2("key2", {512, 4, 2});
  const auto a = k1.Encode({"john smith"});
  const auto b = k2.Encode({"john smith"});
  EXPECT_LT(BloomFilter::DiceSimilarity(a, b), 0.5);
}

// --- Record linkage ---

Table People(const std::vector<std::pair<std::string, std::string>>& rows) {
  Table t(Schema{Column{"name", ColumnType::kString},
                 Column{"dob", ColumnType::kString}});
  for (const auto& [name, dob] : rows) {
    (void)t.AppendRow(Row{Value::Str(name), Value::Str(dob)});
  }
  return t;
}

TEST(PrivateRecordLinkageTest, ExactLinkViaDhPsi) {
  const Table left = People({{"ann", "1970"}, {"bob", "1980"}, {"cal", "1990"}});
  const Table right = People({{"bob", "1980"}, {"dee", "1960"}, {"cal", "1990"}});
  PrivateRecordLinkage linkage({"name", "dob"}, std::make_unique<DhPsi>(5));
  auto pairs = linkage.Link(left, right);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  ASSERT_EQ(pairs->size(), 2u);
  // bob↔bob and cal↔cal.
  EXPECT_EQ((*pairs)[0].left_row, 1u);
  EXPECT_EQ((*pairs)[0].right_row, 0u);
  EXPECT_EQ((*pairs)[1].left_row, 2u);
  EXPECT_EQ((*pairs)[1].right_row, 2u);
}

TEST(PrivateRecordLinkageTest, ApproximateLinkSurvivesTypos) {
  const Table left = People({{"john smith", "1970-01-02"}});
  const Table right = People({{"jon smith", "1970-01-02"}, {"maria garcia", "1985"}});
  PrivateRecordLinkage linkage({"name", "dob"}, std::make_unique<DhPsi>(5));
  // Exact linkage misses the typo...
  auto exact = linkage.Link(left, right);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->empty());
  // ...approximate Bloom linkage finds it.
  const BloomEncoder encoder("secret", {512, 4, 2});
  auto approx = linkage.LinkApproximate(left, right, encoder, 0.8);
  ASSERT_TRUE(approx.ok());
  ASSERT_EQ(approx->size(), 1u);
  EXPECT_EQ((*approx)[0].right_row, 0u);
  EXPECT_GT((*approx)[0].score, 0.8);
}

TEST(DeduplicateByKeyTest, KeepsFirstOccurrence) {
  Table t(Schema{Column{"id", ColumnType::kString}, Column{"v", ColumnType::kInt64}});
  (void)t.AppendRow(Row{Value::Str("a"), Value::Int(1)});
  (void)t.AppendRow(Row{Value::Str("b"), Value::Int(2)});
  (void)t.AppendRow(Row{Value::Str("a"), Value::Int(3)});
  auto out = DeduplicateByKey(t, {"id"});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->row(0)[1].AsInt(), 1);  // first "a" kept
}

TEST(DeduplicateByKeyTest, MissingKeyColumnFails) {
  Table t(Schema{Column{"id", ColumnType::kString}});
  EXPECT_FALSE(DeduplicateByKey(t, {"nope"}).ok());
}

}  // namespace
}  // namespace linkage
}  // namespace piye

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/macros.h"
#include "common/modmath.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sha256.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"

namespace piye {
namespace {

// --- Status / Result ---

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  const Status s = Status::PrivacyViolation("leak");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsPrivacyViolation());
  EXPECT_EQ(s.code(), StatusCode::kPrivacyViolation);
  EXPECT_EQ(s.message(), "leak");
  EXPECT_EQ(s.ToString(), "PrivacyViolation: leak");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PIYE_ASSIGN_OR_RETURN(int h, Half(x));
  PIYE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

// --- Rng ---

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(13), 13u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.NextGaussian());
  EXPECT_NEAR(stats::Mean(xs), 0.0, 0.05);
  EXPECT_NEAR(stats::StdDev(xs), 1.0, 0.05);
}

TEST(RngTest, LaplaceSymmetricZeroMean) {
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.NextLaplace(2.0));
  EXPECT_NEAR(stats::Mean(xs), 0.0, 0.1);
  // Var of Laplace(b) is 2 b^2 = 8.
  EXPECT_NEAR(stats::Variance(xs), 8.0, 0.8);
}

TEST(RngTest, PoissonMean) {
  Rng rng(42);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.NextPoisson(3.0);
  EXPECT_NEAR(total / n, 3.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// --- stats ---

TEST(StatsTest, MeanVarStd) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stats::Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stats::Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stats::StdDev(xs), 2.0);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_EQ(stats::Mean({}), 0.0);
  EXPECT_EQ(stats::Variance({}), 0.0);
  EXPECT_EQ(stats::Percentile({}, 0.5), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(xs, 0.25), 2.0);
}

TEST(StatsTest, EntropyBits) {
  EXPECT_DOUBLE_EQ(stats::EntropyBits({1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(stats::EntropyBits({4, 4, 4, 4}), 2.0);
  EXPECT_DOUBLE_EQ(stats::EntropyBits({8, 0, 0}), 0.0);
}

TEST(StatsTest, HistogramClampsOutliers) {
  const auto h = stats::Histogram({-5, 0.1, 0.5, 0.9, 17}, 0.0, 1.0, 2);
  EXPECT_EQ(h[0], 2u);  // -5 clamped in, 0.1
  EXPECT_EQ(h[1], 3u);  // 0.5, 0.9, 17 clamped in
}

TEST(StatsTest, CorrelationSigns) {
  const std::vector<double> x{1, 2, 3, 4};
  EXPECT_NEAR(stats::Correlation(x, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(stats::Correlation(x, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(StatsTest, KlDivergenceProperties) {
  EXPECT_NEAR(stats::KlDivergenceBits({5, 5}, {5, 5}), 0.0, 1e-12);
  EXPECT_GT(stats::KlDivergenceBits({10, 0}, {0, 10}), 0.5);
}

// --- strings ---

TEST(StringsTest, SplitAndJoin) {
  const auto parts = strings::Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(strings::Join(parts, "-"), "a-b--c");
}

TEST(StringsTest, TrimAndLower) {
  EXPECT_EQ(strings::Trim("  aBc \n"), "aBc");
  EXPECT_EQ(strings::ToLower("aBc"), "abc");
}

TEST(StringsTest, EditDistance) {
  EXPECT_EQ(strings::EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(strings::EditDistance("", "abc"), 3u);
  EXPECT_EQ(strings::EditDistance("same", "same"), 0u);
  EXPECT_DOUBLE_EQ(strings::EditSimilarity("same", "same"), 1.0);
}

TEST(StringsTest, QGramJaccard) {
  EXPECT_DOUBLE_EQ(strings::QGramJaccard("smith", "smith", 2), 1.0);
  EXPECT_GT(strings::QGramJaccard("smith", "smyth", 2), 0.3);
  EXPECT_LT(strings::QGramJaccard("smith", "garcia", 2), 0.1);
}

TEST(StringsTest, TokenizeIdentifier) {
  const auto t1 = strings::TokenizeIdentifier("dateOfBirth");
  ASSERT_EQ(t1.size(), 3u);
  EXPECT_EQ(t1[0], "date");
  EXPECT_EQ(t1[1], "of");
  EXPECT_EQ(t1[2], "birth");
  const auto t2 = strings::TokenizeIdentifier("date_of_birth");
  EXPECT_EQ(t1, t2);
  const auto t3 = strings::TokenizeIdentifier("date-of-birth");
  EXPECT_EQ(t1, t3);
}

TEST(StringsTest, Format) {
  EXPECT_EQ(strings::Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strings::Format("%.2f", 1.005), "1.00");
}

// --- sha256 ---

TEST(Sha256Test, KnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Sha256 h;
  h.Update("hello ");
  h.Update("world");
  EXPECT_EQ(Sha256::ToHex(h.Finish()), Sha256::ToHex(Sha256::Hash("hello world")));
}

TEST(Sha256Test, LongInput) {
  const std::string big(100000, 'a');
  // Cross-checked with Python hashlib.
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(big)),
            "6d1cf22d7cc09b085dfc25ee1a1f3ae0265804c607bc2074ad253bcc82fd81ee");
}

TEST(Sha256Test, Hash64Distinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(Sha256::Hash64("item" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

// --- modmath ---

TEST(ModMathTest, SafePrimeCertificate) {
  EXPECT_TRUE(modmath::IsPrime(modmath::kSafePrime));
  EXPECT_TRUE(modmath::IsPrime(modmath::kSubgroupOrder));
  EXPECT_EQ(modmath::kSafePrime, 2 * modmath::kSubgroupOrder + 1);
}

TEST(ModMathTest, GeneratorHasSubgroupOrder) {
  // g^q = 1 and g != 1.
  EXPECT_EQ(modmath::PowMod(modmath::kSubgroupGenerator, modmath::kSubgroupOrder,
                            modmath::kSafePrime),
            1u);
  EXPECT_NE(modmath::kSubgroupGenerator, 1u);
}

TEST(ModMathTest, PowModBasics) {
  EXPECT_EQ(modmath::PowMod(2, 10, 1000000007ULL), 1024u);
  EXPECT_EQ(modmath::PowMod(5, 0, 13), 1u);
}

TEST(ModMathTest, InverseIsInverse) {
  const uint64_t p = modmath::kSafePrime;
  for (uint64_t a : {3ULL, 12345ULL, 999999937ULL}) {
    const uint64_t inv = modmath::InvMod(a, p);
    EXPECT_EQ(modmath::MulMod(a, inv, p), 1u);
  }
}

TEST(ModMathTest, IsPrimeSmallCases) {
  EXPECT_FALSE(modmath::IsPrime(0));
  EXPECT_FALSE(modmath::IsPrime(1));
  EXPECT_TRUE(modmath::IsPrime(2));
  EXPECT_TRUE(modmath::IsPrime(97));
  EXPECT_FALSE(modmath::IsPrime(91));  // 7*13
  EXPECT_FALSE(modmath::IsPrime(3215031751ULL));  // strong pseudoprime to 2,3,5,7
}

TEST(ModMathTest, HashToGroupLandsInSubgroup) {
  for (int i = 0; i < 50; ++i) {
    const std::string s = "k" + std::to_string(i);
    const uint64_t g = modmath::HashToGroup(s.data(), s.size());
    EXPECT_EQ(modmath::PowMod(g, modmath::kSubgroupOrder, modmath::kSafePrime), 1u)
        << s;
  }
}

}  // namespace
}  // namespace piye

namespace piye {
namespace {

// --- Logger ---

TEST(LoggerTest, LevelThresholdFilters) {
  const LogLevel original = Logger::level();
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  // Messages below the threshold are dropped (no crash, no output assertion
  // possible on stderr here — this exercises the filtering branch).
  Logger::Debug("test", "dropped");
  Logger::Info("test", "dropped");
  Logger::Warn("test", "dropped");
  Logger::SetLevel(original);
}

}  // namespace
}  // namespace piye

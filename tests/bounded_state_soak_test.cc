// The bounded-state crash/soak matrix (the PR's acceptance gate): a large
// randomized requester population drives a durable engine through a seeded
// schedule of WAL and compaction kill-points, and every admit/refuse
// decision is compared byte-for-byte against an exact oracle of the
// unsharded, unspilled decision rule. Alongside decision identity the
// harness gates boundedness: resident state stays within the configured hot
// set, process RSS stays under a ceiling, and recovery replay time is a
// function of snapshot size, not uptime.
//
// Scaled by environment so CI runs a slice and the full 1M-requester matrix
// runs on demand:
//   PIYE_SOAK_REQUESTERS   population size        (default 20000)
//   PIYE_SOAK_OPS          operations             (default 2x requesters)
//   PIYE_SOAK_RSS_MB       peak-RSS ceiling in MB (default 1500, 0 = off)
//   PIYE_SOAK_RECOVERY_MS  recovery replay ceiling (default 5000)
//   PIYE_SOAK_SEED         LCG seed               (default 42)

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scenario.h"
#include "mediator/engine.h"
#include "persist/state_log.h"
#include "persist/wal.h"
#include "source/remote_source.h"

namespace piye {
namespace {

namespace fs = std::filesystem;
using mediator::MediationEngine;
using mediator::QueryOptions;
using persist::KillPoint;
using persist::RotateKillPoint;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

/// Deterministic 64-bit LCG (MMIX constants): the op schedule, requester
/// picks, and kill schedule are all pure functions of the seed.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 17;
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

size_t CurrentRssKb() {
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmRSS:") {
      size_t kb = 0;
      status >> kb;
      return kb;
    }
    status.ignore(256, '\n');
  }
  return 0;
}

struct SoakRig {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  MediationEngine::Options options;
  std::string dir;

  SoakRig() = default;
  SoakRig(const SoakRig&) = delete;
  SoakRig& operator=(const SoakRig&) = delete;

  std::unique_ptr<MediationEngine> Boot() const {
    auto engine = std::make_unique<MediationEngine>(options);
    for (const auto& src : sources) {
      EXPECT_TRUE(engine->RegisterSource(src.get()).ok());
    }
    EXPECT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
    EXPECT_TRUE(engine->Recover(dir).ok());
    return engine;
  }
};

std::unique_ptr<source::RemoteSource> MakeSoakSource() {
  auto tables = core::ClinicalScenario::MakePatientTables(20, 0.3, 100);
  auto src = std::make_unique<source::RemoteSource>(
      "hospital0", "patients", std::move(tables.hospital), /*seed=*/1);
  core::ClinicalScenario::ApplyPatientPolicies(src.get());
  // One wildcard-user RBAC row authorizes the whole generated requester
  // population — per-name assignments at 1M requesters would distort the
  // soak's RSS gate with source-side map state.
  EXPECT_TRUE(src->mutable_rbac()->AssignRole("*", "analyst").ok());
  return src;
}

source::PiqlQuery SoakQuery(const std::string& requester) {
  auto q = source::PiqlQuery::Parse(
      "<query requester=\"" + requester +
      "\" purpose=\"research\" maxLoss=\"0.95\">"
      "<select>patient_id</select><select>diagnosis</select></query>");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(BoundedStateSoakTest, CrashSoakMatrixMatchesOracleDecisions) {
  const uint64_t requesters = EnvOr("PIYE_SOAK_REQUESTERS", 20000);
  const uint64_t total_ops = EnvOr("PIYE_SOAK_OPS", 2 * requesters);
  const uint64_t rss_ceiling_mb = EnvOr("PIYE_SOAK_RSS_MB", 1500);
  const uint64_t recovery_ceiling_ms = EnvOr("PIYE_SOAK_RECOVERY_MS", 5000);
  const uint64_t seed = EnvOr("PIYE_SOAK_SEED", 42);

  SoakRig rig;
  // Per-process dir: a ctest-launched run and a manual scaled run must not
  // recover each other's generations.
  const std::string run_tag = std::to_string(static_cast<long>(::getpid()));
  rig.dir =
      (fs::path(testing::TempDir()) / ("piye_bounded_soak_" + run_tag)).string();
  fs::remove_all(rig.dir);
  // One tiny source: the soak exercises the trust anchor, not the
  // federation plane.
  rig.sources.push_back(MakeSoakSource());
  rig.options.max_combined_loss = 0.95;
  rig.options.enable_warehouse = false;
  rig.options.worker_threads = 0;
  rig.options.sync_wal = false;  // acked ⟺ flushed; kills still injected
  rig.options.snapshot_every_records =
      EnvOr("PIYE_SOAK_SNAPSHOT_EVERY", 512);
  rig.options.max_resident_history = 2048;
  rig.options.hot_requesters = 4096;
  rig.options.history_shards = 32;
  rig.options.max_cumulative_loss = 1.0;  // placeholder, set from L below

  // Measure the (deterministic, policy-derived) per-release loss once, then
  // size the budget for exactly three releases per requester.
  double per_query_loss = 0.0;
  {
    SoakRig probe;
    probe.dir =
        (fs::path(testing::TempDir()) / ("piye_bounded_soak_probe_" + run_tag))
            .string();
    fs::remove_all(probe.dir);
    probe.options = rig.options;
    probe.sources.push_back(MakeSoakSource());
    auto engine = probe.Boot();
    auto probed = engine->Execute(SoakQuery("probe"), QueryOptions{});
    ASSERT_TRUE(probed.ok()) << probed.status().ToString();
    per_query_loss = engine->history()->CumulativeLoss("probe");
    ASSERT_GT(per_query_loss, 0.0);
    engine.reset();
    fs::remove_all(probe.dir);
  }
  rig.options.max_cumulative_loss = 2.5 * per_query_loss;

  // The kill schedule: every WAL kill-point and every rotate kill-point,
  // repeatedly, at seeded positions spread over the run.
  const std::vector<KillPoint> wal_kills = {
      KillPoint::kBeforeAppend, KillPoint::kMidRecord, KillPoint::kBeforeSync,
      KillPoint::kTornFinalBlock};
  const std::vector<RotateKillPoint> rotate_kills = {
      RotateKillPoint::kBeforeFloors, RotateKillPoint::kAfterFloors,
      RotateKillPoint::kAfterSnapshotTmp, RotateKillPoint::kAfterSnapshotRename,
      RotateKillPoint::kAfterNewWal};
  // Kill cadence is tunable: every kill costs a full recovery, and at
  // million-requester scale each recovery loads a multi-megabyte floor
  // index — the default one-kill-per-2000-ops is right for CI scale, while
  // the full-scale run caps the schedule to keep wall time sane.
  const uint64_t kill_count = std::max<uint64_t>(
      wal_kills.size() + rotate_kills.size(),
      EnvOr("PIYE_SOAK_KILLS", total_ops / 2000));
  Lcg schedule_rng(seed);
  // op index -> kill id (0..3 WAL, 4..8 rotate); later entries may overwrite
  // earlier ones at the same index, which is fine — still deterministic.
  std::unordered_map<uint64_t, int> kill_at;
  for (uint64_t k = 0; k < kill_count; ++k) {
    const uint64_t op = schedule_rng.Below(total_ops);
    kill_at[op] = static_cast<int>(
        k < wal_kills.size() + rotate_kills.size()
            ? k  // first pass covers every kill point at least once
            : schedule_rng.Below(wal_kills.size() + rotate_kills.size()));
  }

  auto engine = rig.Boot();

  // The oracle: the exact decision rule of the unsharded, unspilled engine.
  // A query is refused iff the requester's acknowledged cumulative loss has
  // reached the budget; loss is charged only on acknowledged release. The
  // per-requester sum is accumulated left-to-right exactly as the engine
  // accumulates it, so the comparison is bit-exact, not approximate.
  std::unordered_map<uint64_t, double> oracle_loss;
  oracle_loss.reserve(requesters);

  std::string engine_decisions, oracle_decisions;
  engine_decisions.reserve(total_ops);
  oracle_decisions.reserve(total_ops);

  Lcg op_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  uint64_t recoveries = 0, kills_fired = 0;
  size_t peak_rss_kb = 0;

  for (uint64_t op = 0; op < total_ops; ++op) {
    if (auto it = kill_at.find(op); it != kill_at.end()) {
      const int id = it->second;
      if (id < static_cast<int>(wal_kills.size())) {
        ASSERT_TRUE(
            engine->ArmPersistKillPoint(wal_kills[id], /*after_appends=*/0)
                .ok());
      } else {
        ASSERT_TRUE(
            engine
                ->ArmRotateKillPoint(rotate_kills[id - wal_kills.size()])
                .ok());
        // Force the armed rotation now so the kill fires deterministically.
        EXPECT_FALSE(engine->TriggerSnapshot(/*wait=*/true).ok());
      }
      ++kills_fired;
    }

    const uint64_t requester_id = op_rng.Below(requesters);
    const std::string requester = "r" + std::to_string(requester_id);
    const auto query = SoakQuery(requester);

    // Oracle decision first (it does not depend on the engine).
    double& acknowledged = oracle_loss[requester_id];
    const bool oracle_refuses =
        acknowledged >= rig.options.max_cumulative_loss;
    oracle_decisions.push_back(oracle_refuses ? 'R' : 'A');

    // Engine decision, surviving any number of injected crashes: a crash
    // withholds the answer (charging nothing durable), so recover and retry
    // until the engine commits to admit or refuse.
    char decision = 0;
    for (int attempt = 0; attempt < 8 && decision == 0; ++attempt) {
      auto result = engine->Execute(query, QueryOptions{});
      if (result.ok()) {
        decision = 'A';
      } else if (result.status().IsPrivacyViolation()) {
        decision = 'R';
      } else if (result.status().IsUnavailable()) {
        // Injected death: the engine latched fail-closed. "Restart the
        // process" and replay from durable state.
        engine.reset();
        engine = rig.Boot();
        ++recoveries;
        ASSERT_LE(engine->Health().last_recovery_replay_ms,
                  recovery_ceiling_ms)
            << "recovery replay exceeded its ceiling at op " << op;
      } else {
        FAIL() << "unexpected status at op " << op << ": "
               << result.status().ToString();
      }
    }
    ASSERT_NE(decision, 0) << "no decision after repeated recoveries, op "
                           << op;
    engine_decisions.push_back(decision);
    if (decision == 'A') acknowledged += per_query_loss;

    ASSERT_EQ(engine_decisions.back(), oracle_decisions.back())
        << "decision divergence at op " << op << " requester " << requester
        << " (oracle cumulative " << acknowledged << ", budget "
        << rig.options.max_cumulative_loss << ")";

    if (op % 1024 == 0) {
      // Boundedness: the resident hot set never outgrows its configuration.
      EXPECT_LE(engine->history()->resident_entries(),
                rig.options.max_resident_history);
      peak_rss_kb = std::max(peak_rss_kb, CurrentRssKb());
    }
  }

  // Final drain: one clean rotation, one clean recovery, full-state checks.
  ASSERT_TRUE(engine->TriggerSnapshot(/*wait=*/true).ok());
  EXPECT_LE(engine->history()->resident_requesters(),
            rig.options.hot_requesters);
  engine.reset();
  engine = rig.Boot();
  ASSERT_LE(engine->Health().last_recovery_replay_ms, recovery_ceiling_ms);

  // Decision streams must be byte-identical (already asserted per-op; this
  // is the headline comparison).
  ASSERT_EQ(engine_decisions.size(), oracle_decisions.size());
  EXPECT_EQ(engine_decisions, oracle_decisions);

  // Every durable floor the engine recovered matches the oracle exactly.
  size_t floors_checked = 0;
  for (const auto& [requester_id, loss] : oracle_loss) {
    auto recovered = engine->history()->DurableCumulativeLoss(
        "r" + std::to_string(requester_id));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_DOUBLE_EQ(*recovered, loss) << "r" << requester_id;
    ++floors_checked;
    if (floors_checked >= 10000) break;  // bounded verification pass
  }

  peak_rss_kb = std::max(peak_rss_kb, CurrentRssKb());
  if (rss_ceiling_mb > 0) {
    EXPECT_LE(peak_rss_kb / 1024, rss_ceiling_mb)
        << "peak RSS exceeded the soak ceiling";
  }

  ::testing::Test::RecordProperty("requesters", static_cast<int>(requesters));
  ::testing::Test::RecordProperty("ops", static_cast<int>(total_ops));
  ::testing::Test::RecordProperty("kills_fired", static_cast<int>(kills_fired));
  ::testing::Test::RecordProperty("recoveries", static_cast<int>(recoveries));
  ::testing::Test::RecordProperty("peak_rss_mb",
                                  static_cast<int>(peak_rss_kb / 1024));
  std::printf(
      "soak: %llu requesters, %llu ops, %llu kills, %llu recoveries, "
      "peak RSS %zu MB, last recovery %llu ms\n",
      static_cast<unsigned long long>(requesters),
      static_cast<unsigned long long>(total_ops),
      static_cast<unsigned long long>(kills_fired),
      static_cast<unsigned long long>(recoveries),
      peak_rss_kb / 1024,
      static_cast<unsigned long long>(
          engine->Health().last_recovery_replay_ms));

  engine.reset();
  fs::remove_all(rig.dir);  // pid-tagged dirs would otherwise accumulate
}

}  // namespace
}  // namespace piye

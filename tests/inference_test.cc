#include <gtest/gtest.h>

#include <cmath>

#include "inference/constraint.h"
#include "inference/interval_solver.h"
#include "inference/nlp_solver.h"
#include "inference/privacy_loss.h"
#include "inference/sequence_auditor.h"
#include "inference/snooping_attack.h"

namespace piye {
namespace inference {
namespace {

TEST(ConstraintSystemTest, ViolationIsZeroAtFeasiblePoint) {
  ConstraintSystem sys;
  const size_t x = sys.AddVariable("x", 0, 10);
  const size_t y = sys.AddVariable("y", 0, 10);
  sys.AddMeanConstraint({x, y}, 5.0, 0.0);  // x + y = 10
  EXPECT_DOUBLE_EQ(sys.TotalViolation({4.0, 6.0}), 0.0);
  EXPECT_GT(sys.TotalViolation({4.0, 4.0}), 0.0);
  EXPECT_GT(sys.TotalViolation({-1.0, 11.0}), 0.0);  // box violations count
}

TEST(ConstraintSystemTest, StdDevConstraintForm) {
  ConstraintSystem sys;
  const size_t a = sys.AddVariable("a", 0, 100);
  const size_t b = sys.AddVariable("b", 0, 100);
  // mean 50, sigma 10 ⇒ sum (x-50)^2 = 200.
  sys.AddStdDevConstraint({a, b}, 50.0, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(sys.TotalViolation({40.0, 60.0}), 0.0);
  EXPECT_GT(sys.TotalViolation({50.0, 50.0}), 0.0);
}

TEST(IntervalPropagatorTest, LinearTightening) {
  ConstraintSystem sys;
  const size_t x = sys.AddVariable("x", 0, 100);
  const size_t y = sys.AddVariable("y", 0, 100);
  // x + y in [150, 150]: each variable must be >= 50.
  LinearConstraint c;
  c.terms = {{x, 1.0}, {y, 1.0}};
  c.lo = c.hi = 150.0;
  sys.AddLinear(c);
  IntervalPropagator prop(&sys);
  auto dom = prop.Propagate();
  ASSERT_TRUE(dom.ok());
  EXPECT_NEAR((*dom)[x].lo, 50.0, 1e-9);
  EXPECT_NEAR((*dom)[x].hi, 100.0, 1e-9);
}

TEST(IntervalPropagatorTest, FixedVariablePropagates) {
  ConstraintSystem sys;
  const size_t x = sys.AddVariable("x", 0, 100);
  const size_t y = sys.AddVariable("y", 0, 100);
  ASSERT_TRUE(sys.FixVariable(x, 30.0).ok());
  sys.AddMeanConstraint({x, y}, 40.0, 0.0);  // x + y = 80 ⇒ y = 50
  IntervalPropagator prop(&sys);
  auto dom = prop.Propagate();
  ASSERT_TRUE(dom.ok());
  EXPECT_NEAR((*dom)[y].lo, 50.0, 1e-9);
  EXPECT_NEAR((*dom)[y].hi, 50.0, 1e-9);
}

TEST(IntervalPropagatorTest, QuadraticTightening) {
  ConstraintSystem sys;
  const size_t x = sys.AddVariable("x", 0, 100);
  QuadraticConstraint q;
  q.vars = {x};
  q.center = 50.0;
  q.lo = 0.0;
  q.hi = 25.0;  // |x - 50| <= 5
  sys.AddQuadratic(q);
  IntervalPropagator prop(&sys);
  auto dom = prop.Propagate();
  ASSERT_TRUE(dom.ok());
  EXPECT_NEAR((*dom)[x].lo, 45.0, 1e-9);
  EXPECT_NEAR((*dom)[x].hi, 55.0, 1e-9);
}

TEST(IntervalPropagatorTest, DetectsInfeasibility) {
  ConstraintSystem sys;
  const size_t x = sys.AddVariable("x", 0, 10);
  LinearConstraint c;
  c.terms = {{x, 1.0}};
  c.lo = c.hi = 50.0;  // outside the box
  sys.AddLinear(c);
  IntervalPropagator prop(&sys);
  EXPECT_FALSE(prop.Propagate().ok());
}

TEST(NlpBoundSolverTest, BoundsLinearSystem) {
  ConstraintSystem sys;
  const size_t x = sys.AddVariable("x", 0, 100);
  const size_t y = sys.AddVariable("y", 0, 100);
  // Published constraints always carry a rounding tolerance; exact (zero
  // width) equalities are hostile to the penalty method by design.
  LinearConstraint c;
  c.terms = {{x, 1.0}, {y, 1.0}};
  c.lo = 99.95;
  c.hi = 100.05;
  sys.AddLinear(c);
  NlpBoundSolver solver(&sys, 42);
  auto bound = solver.Bound(x);
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE(bound->feasible);
  EXPECT_NEAR(bound->lower, 0.0, 2.0);
  EXPECT_NEAR(bound->upper, 100.0, 2.0);
}

TEST(NlpBoundSolverTest, FindsFeasiblePoint) {
  ConstraintSystem sys;
  const size_t x = sys.AddVariable("x", 0, 100);
  const size_t y = sys.AddVariable("y", 0, 100);
  sys.AddMeanConstraint({x, y}, 30.0, 0.1);
  sys.AddStdDevConstraint({x, y}, 30.0, 10.0, 0.1);
  NlpBoundSolver solver(&sys, 17);
  auto point = solver.FindFeasiblePoint();
  ASSERT_TRUE(point.ok()) << point.status().ToString();
  EXPECT_LT(sys.TotalViolation(*point), 1e-3);
}

TEST(NlpBoundSolverTest, InfeasibleSystemReportsNoBounds) {
  ConstraintSystem sys;
  const size_t x = sys.AddVariable("x", 0, 10);
  LinearConstraint c;
  c.terms = {{x, 1.0}};
  c.lo = c.hi = 99.0;
  sys.AddLinear(c);
  NlpBoundSolver solver(&sys, 5);
  auto bound = solver.Bound(x);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound->feasible);
  EXPECT_FALSE(solver.FindFeasiblePoint().ok());
}

// --- Figure 1 ---

TEST(SnoopingAttackTest, Figure1IntervalsAreNarrowAndBracketPaperValues) {
  const auto published = PublishedAggregates::Figure1();
  const auto attacker = AttackerKnowledge::Figure1();
  SnoopingAttack attack(42);
  auto result = attack.Run(published, attacker);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The attacker's own cells are exact.
  for (size_t m = 0; m < published.measures.size(); ++m) {
    EXPECT_DOUBLE_EQ(result->intervals[m][0].lo, attacker.own_values[m]);
    EXPECT_DOUBLE_EQ(result->intervals[m][0].hi, attacker.own_values[m]);
  }
  // Paper's Figure 1(d) midpoints must fall inside our (conservative)
  // intervals: HMO2/3/4 per measure.
  const double paper_mid[3][3] = {{87.85, 84.6, 84.8},
                                  {59.2, 50.2, 50.85},
                                  {47.35, 45.85, 45.95}};
  for (size_t m = 0; m < 3; ++m) {
    for (size_t p = 1; p < 4; ++p) {
      const Interval& iv = result->intervals[m][p];
      EXPECT_LE(iv.lo, paper_mid[m][p - 1] + 1.0)
          << published.measures[m] << "/" << published.parties[p];
      EXPECT_GE(iv.hi, paper_mid[m][p - 1] - 1.0)
          << published.measures[m] << "/" << published.parties[p];
      // The breach: intervals are an order of magnitude narrower than the
      // 100-point prior.
      EXPECT_LT(iv.width(), 15.0);
      EXPECT_GT(iv.width(), 0.0);
    }
  }
  EXPECT_LT(result->MeanUnknownWidth(0), 10.0);
}

TEST(SnoopingAttackTest, CoarserPublicationWidensIntervals) {
  auto published = PublishedAggregates::Figure1();
  const auto attacker = AttackerKnowledge::Figure1();
  SnoopingAttack attack(42);
  auto precise = attack.Run(published, attacker);
  ASSERT_TRUE(precise.ok());
  published.tolerance = 2.5;  // aggregates published rounded to 5 points
  auto coarse = attack.Run(published, attacker);
  ASSERT_TRUE(coarse.ok());
  EXPECT_GT(coarse->MeanUnknownWidth(0), 1.5 * precise->MeanUnknownWidth(0));
}

TEST(SnoopingAttackTest, RejectsMalformedInputs) {
  auto published = PublishedAggregates::Figure1();
  auto attacker = AttackerKnowledge::Figure1();
  attacker.own_values.pop_back();
  EXPECT_FALSE(SnoopingAttack::BuildSystem(published, attacker).ok());
  attacker = AttackerKnowledge::Figure1();
  attacker.party_index = 99;
  EXPECT_FALSE(SnoopingAttack::BuildSystem(published, attacker).ok());
}

// --- Privacy loss metrics ---

TEST(PrivacyLossTest, IntervalLoss) {
  const Interval prior{0, 100};
  EXPECT_DOUBLE_EQ(loss::IntervalLoss(prior, {0, 100}), 0.0);
  EXPECT_DOUBLE_EQ(loss::IntervalLoss(prior, {40, 60}), 0.8);
  EXPECT_DOUBLE_EQ(loss::IntervalLoss(prior, {50, 50}), 1.0);
  EXPECT_DOUBLE_EQ(loss::IntervalLoss({5, 5}, {5, 5}), 0.0);  // degenerate prior
}

TEST(PrivacyLossTest, IntervalLossBits) {
  const Interval prior{0, 100};
  EXPECT_NEAR(loss::IntervalLossBits(prior, {0, 50}), 1.0, 1e-9);
  EXPECT_NEAR(loss::IntervalLossBits(prior, {0, 25}), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(loss::IntervalLossBits(prior, {0, 100}), 0.0);
}

TEST(PrivacyLossTest, AggregationIsWorstCase) {
  EXPECT_DOUBLE_EQ(loss::AggregateLoss({0.1, 0.9, 0.3}), 0.9);
  EXPECT_DOUBLE_EQ(loss::MeanLoss({0.1, 0.9, 0.2}), 0.4);
  EXPECT_DOUBLE_EQ(loss::AggregateLoss({}), 0.0);
}

TEST(PrivacyLossTest, RUScore) {
  EXPECT_DOUBLE_EQ(loss::RUScore(0.3, 0.8), 0.5);
}

// --- Sequence auditor ---

TEST(SequenceAuditorTest, RefusesOverNarrowingSequence) {
  SequenceAuditor auditor(/*max_interval_loss=*/0.8);
  const size_t a = auditor.AddSensitiveValue("a", 0, 100, 70.0);
  const size_t b = auditor.AddSensitiveValue("b", 0, 100, 30.0);
  // Mean over {a,b} alone narrows nothing below threshold.
  ASSERT_TRUE(auditor.DiscloseMean({a, b}, 0.5).ok());
  // Disclosing a exactly would take its loss to 1 > 0.8: refused.
  auto r = auditor.DiscloseExact(a);
  EXPECT_TRUE(r.status().IsPrivacyViolation());
  EXPECT_EQ(auditor.disclosures_committed(), 1u);
  EXPECT_EQ(auditor.disclosures_refused(), 1u);
  // The refused disclosure left no trace: bounds unchanged.
  auto losses = auditor.CurrentLosses();
  ASSERT_TRUE(losses.ok());
  for (double l : *losses) EXPECT_LE(l, 0.8);
}

TEST(SequenceAuditorTest, CombinationAttackIsCaught) {
  // The Figure 1 pattern: individually safe aggregates combine to pin a
  // value. mean(a,b) and then mean(a) distinguishes both.
  SequenceAuditor auditor(/*max_interval_loss=*/0.5);
  const size_t a = auditor.AddSensitiveValue("a", 0, 100, 70.0);
  const size_t b = auditor.AddSensitiveValue("b", 0, 100, 30.0);
  ASSERT_TRUE(auditor.DiscloseMean({a, b}, 0.5).ok());
  // mean({a}) = a exactly: combined with the previous mean it pins b too.
  auto r = auditor.DiscloseMean({a}, 0.5);
  EXPECT_TRUE(r.status().IsPrivacyViolation());
}

TEST(SequenceAuditorTest, PermissiveThresholdAllowsEverything) {
  SequenceAuditor auditor(/*max_interval_loss=*/1.0);
  const size_t a = auditor.AddSensitiveValue("a", 0, 100, 42.0);
  EXPECT_TRUE(auditor.DiscloseExact(a).ok());
  auto bounds = auditor.CurrentBounds();
  ASSERT_TRUE(bounds.ok());
  EXPECT_NEAR((*bounds)[a].lo, 42.0, 1e-6);
  EXPECT_NEAR((*bounds)[a].hi, 42.0, 1e-6);
}

TEST(SequenceAuditorTest, StdDevDisclosureAudited) {
  SequenceAuditor auditor(/*max_interval_loss=*/0.95);
  std::vector<size_t> vars;
  const double values[] = {75, 88, 84, 85};
  for (int i = 0; i < 4; ++i) {
    vars.push_back(auditor.AddSensitiveValue("v" + std::to_string(i), 0, 100,
                                             values[i]));
  }
  ASSERT_TRUE(auditor.DiscloseMean(vars, 0.05).ok());
  ASSERT_TRUE(auditor.DiscloseStdDev(vars, 0.05).ok());
  auto losses = auditor.CurrentLosses();
  ASSERT_TRUE(losses.ok());
  for (double l : *losses) EXPECT_LE(l, 0.95);
}

}  // namespace
}  // namespace inference
}  // namespace piye

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/rng.h"
#include "relational/column.h"
#include "relational/executor.h"
#include "relational/reference.h"
#include "relational/expression.h"
#include "relational/schema.h"
#include "relational/sql.h"
#include "relational/table.h"
#include "relational/value.h"
#include "relational/xml_bridge.h"
#include "xml/parser.h"

namespace piye {
namespace relational {
namespace {

Table PatientsFixture() {
  Table t(Schema{Column{"id", ColumnType::kInt64},
                 Column{"name", ColumnType::kString},
                 Column{"age", ColumnType::kInt64},
                 Column{"rate", ColumnType::kDouble},
                 Column{"city", ColumnType::kString}});
  auto add = [&t](int64_t id, const char* name, int64_t age, double rate,
                  const char* city) {
    ASSERT_TRUE(t.AppendRow(Row{Value::Int(id), Value::Str(name), Value::Int(age),
                                Value::Real(rate), Value::Str(city)})
                    .ok());
  };
  add(1, "ann", 34, 0.7, "oslo");
  add(2, "bob", 45, 0.5, "oslo");
  add(3, "cal", 61, 0.9, "bern");
  add(4, "dee", 29, 0.4, "bern");
  add(5, "eli", 45, 0.6, "rome");
  return t;
}

// --- Value ---

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Int(5).AsDouble(), 5.0);
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_TRUE(Value::Boolean(true).AsBool());
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Real(1.5)), 0);
  EXPECT_GT(Value::Real(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, NullSortsFirstAndSqlEqualsFalse) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_TRUE(Value::Null() == Value::Null());  // exact equality for grouping
}

TEST(ValueTest, ParseByType) {
  ASSERT_TRUE(Value::Parse("42", ColumnType::kInt64).ok());
  EXPECT_EQ(Value::Parse("42", ColumnType::kInt64)->AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Parse("2.5", ColumnType::kDouble)->AsDouble(), 2.5);
  EXPECT_TRUE(Value::Parse("true", ColumnType::kBool)->AsBool());
  EXPECT_TRUE(Value::Parse("NULL", ColumnType::kInt64)->is_null());
  EXPECT_FALSE(Value::Parse("abc", ColumnType::kInt64).ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Str("x").ToString(), "'x'");
  EXPECT_EQ(Value::Str("x").ToDisplayString(), "x");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

// --- Schema / Table ---

TEST(SchemaTest, IndexAndProject) {
  Schema s{Column{"a", ColumnType::kInt64}, Column{"b", ColumnType::kString}};
  ASSERT_TRUE(s.IndexOf("b").ok());
  EXPECT_EQ(*s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("z").ok());
  auto proj = s.Project({"b"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->num_columns(), 1u);
}

TEST(TableTest, AppendRowValidatesArityAndTypes) {
  Table t(Schema{Column{"a", ColumnType::kInt64}});
  EXPECT_FALSE(t.AppendRow(Row{Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(t.AppendRow(Row{Value::Str("x")}).ok());
  EXPECT_TRUE(t.AppendRow(Row{Value::Null()}).ok());
  EXPECT_TRUE(t.AppendRow(Row{Value::Int(1)}).ok());
}

TEST(TableTest, IntWidensToDouble) {
  Table t(Schema{Column{"d", ColumnType::kDouble}});
  ASSERT_TRUE(t.AppendRow(Row{Value::Int(3)}).ok());
  EXPECT_TRUE(t.row(0)[0].is_double());
  EXPECT_DOUBLE_EQ(t.row(0)[0].AsDouble(), 3.0);
}

TEST(TableTest, NumericColumnSkipsNulls) {
  Table t(Schema{Column{"d", ColumnType::kDouble}});
  ASSERT_TRUE(t.AppendRow(Row{Value::Real(1.0)}).ok());
  ASSERT_TRUE(t.AppendRow(Row{Value::Null()}).ok());
  auto xs = t.NumericColumn("d");
  ASSERT_TRUE(xs.ok());
  EXPECT_EQ(xs->size(), 1u);
}

// --- Expressions ---

TEST(ExpressionTest, ArithmeticAndComparison) {
  const Table t = PatientsFixture();
  auto expr = ParseExpression("age * 2 + 1");
  ASSERT_TRUE(expr.ok());
  auto v = (*expr)->Evaluate(t.row(0), t.schema());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 69);
}

TEST(ExpressionTest, DivisionByZeroIsNull) {
  auto expr = ParseExpression("1 / 0");
  ASSERT_TRUE(expr.ok());
  auto v = (*expr)->Evaluate({}, Schema{});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ExpressionTest, LikeMatching) {
  EXPECT_TRUE(SqlLikeMatch("hello", "h%o"));
  EXPECT_TRUE(SqlLikeMatch("hello", "_ello"));
  EXPECT_TRUE(SqlLikeMatch("hello", "%"));
  EXPECT_FALSE(SqlLikeMatch("hello", "h_o"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_FALSE(SqlLikeMatch("abc", ""));
}

TEST(ExpressionTest, InList) {
  const Table t = PatientsFixture();
  auto expr = ParseExpression("city IN ('oslo', 'rome')");
  ASSERT_TRUE(expr.ok());
  int matches = 0;
  for (const auto& row : t.rows()) {
    auto b = (*expr)->EvaluatesTrue(row, t.schema());
    ASSERT_TRUE(b.ok());
    matches += *b ? 1 : 0;
  }
  EXPECT_EQ(matches, 3);
}

TEST(ExpressionTest, NullComparisonsAreFalse) {
  Table t(Schema{Column{"a", ColumnType::kInt64}});
  ASSERT_TRUE(t.AppendRow(Row{Value::Null()}).ok());
  auto expr = ParseExpression("a = 0 OR a <> 0");
  ASSERT_TRUE(expr.ok());
  auto b = (*expr)->EvaluatesTrue(t.row(0), t.schema());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(*b);
}

TEST(ExpressionTest, CollectColumnsAndNodeCount) {
  auto expr = ParseExpression("a = 1 AND (b > 2 OR c LIKE 'x%')");
  ASSERT_TRUE(expr.ok());
  std::set<std::string> cols;
  (*expr)->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"a", "b", "c"}));
  EXPECT_GT((*expr)->NodeCount(), 5u);
}

// --- SQL parsing ---

TEST(SqlParserTest, FullSelect) {
  auto stmt = ParseSql(
      "SELECT city, AVG(rate) AS m, COUNT(*) FROM patients "
      "WHERE age >= 30 GROUP BY city ORDER BY city LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->table, "patients");
  EXPECT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[1].alias, "m");
  EXPECT_TRUE(stmt->HasAggregates());
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_TRUE(stmt->limit.has_value());
  EXPECT_EQ(*stmt->limit, 10u);
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseSql("select * from t where a = 1").ok());
}

TEST(SqlParserTest, StringEscapes) {
  auto stmt = ParseSql("SELECT a FROM t WHERE a = 'O''Brien'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(stmt->where, nullptr);
  EXPECT_NE(stmt->where->ToString().find("O'Brien"), std::string::npos);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t garbage").ok());
  EXPECT_FALSE(ParseSql("SELECT SUM(*) FROM t").ok());
}

TEST(SqlParserTest, ToSqlRoundTrip) {
  const char* sql =
      "SELECT city, AVG(rate) AS m FROM p WHERE (age > 30) GROUP BY city";
  auto stmt = ParseSql(sql);
  ASSERT_TRUE(stmt.ok());
  auto stmt2 = ParseSql(stmt->ToSql());
  ASSERT_TRUE(stmt2.ok()) << stmt->ToSql();
  EXPECT_EQ(stmt2->items.size(), 2u);
}

// --- Executor ---

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.PutTable("patients", PatientsFixture());
  }
  Catalog catalog_;
};

TEST_F(ExecutorTest, SelectStar) {
  Executor ex(&catalog_);
  auto r = ex.Query("SELECT * FROM patients");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 5u);
}

TEST_F(ExecutorTest, FilterProjectOrderLimit) {
  Executor ex(&catalog_);
  auto r = ex.Query(
      "SELECT name FROM patients WHERE age >= 40 ORDER BY name DESC LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->row(0)[0].AsString(), "eli");
  EXPECT_EQ(r->row(1)[0].AsString(), "cal");
}

TEST_F(ExecutorTest, GlobalAggregates) {
  Executor ex(&catalog_);
  auto r = ex.Query("SELECT COUNT(*), AVG(age), MIN(rate), MAX(rate), STDDEV(age) "
                    "FROM patients");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->row(0)[0].AsInt(), 5);
  EXPECT_NEAR(r->row(0)[1].AsDouble(), 42.8, 1e-9);
  EXPECT_DOUBLE_EQ(r->row(0)[2].AsDouble(), 0.4);
  EXPECT_DOUBLE_EQ(r->row(0)[3].AsDouble(), 0.9);
}

TEST_F(ExecutorTest, GroupBy) {
  Executor ex(&catalog_);
  auto r = ex.Query("SELECT city, COUNT(*) AS n FROM patients GROUP BY city "
                    "ORDER BY city");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->row(0)[0].AsString(), "bern");
  EXPECT_EQ(r->row(0)[1].AsInt(), 2);
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  Executor ex(&catalog_);
  auto r = ex.Query("SELECT COUNT(*) FROM patients WHERE age > 1000");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->row(0)[0].AsInt(), 0);
}

TEST_F(ExecutorTest, BareColumnNeedsGroupBy) {
  Executor ex(&catalog_);
  EXPECT_FALSE(ex.Query("SELECT city, AVG(rate) FROM patients").ok());
}

TEST_F(ExecutorTest, AliasRenamesOutput) {
  Executor ex(&catalog_);
  auto r = ex.Query("SELECT name AS patientName FROM patients LIMIT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().column(0).name, "patientName");
}

TEST_F(ExecutorTest, HashJoin) {
  Table left(Schema{Column{"id", ColumnType::kInt64}, Column{"x", ColumnType::kString}});
  ASSERT_TRUE(left.AppendRow(Row{Value::Int(1), Value::Str("a")}).ok());
  ASSERT_TRUE(left.AppendRow(Row{Value::Int(2), Value::Str("b")}).ok());
  Table right(Schema{Column{"id", ColumnType::kInt64}, Column{"y", ColumnType::kString}});
  ASSERT_TRUE(right.AppendRow(Row{Value::Int(2), Value::Str("B")}).ok());
  ASSERT_TRUE(right.AppendRow(Row{Value::Int(2), Value::Str("B2")}).ok());
  ASSERT_TRUE(right.AppendRow(Row{Value::Int(3), Value::Str("C")}).ok());
  auto joined = Executor::HashJoin(left, right, "id", "id");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 2u);  // id=2 matches twice
  EXPECT_TRUE(joined->schema().Contains("r_id"));
}

TEST_F(ExecutorTest, UnionRequiresSameSchema) {
  Table a(Schema{Column{"x", ColumnType::kInt64}});
  Table b(Schema{Column{"y", ColumnType::kInt64}});
  EXPECT_FALSE(Executor::Union(a, b).ok());
  auto u = Executor::Union(a, a);
  ASSERT_TRUE(u.ok());
}

TEST_F(ExecutorTest, Distinct) {
  Table t(Schema{Column{"x", ColumnType::kInt64}});
  for (int i : {1, 2, 2, 3, 1}) {
    ASSERT_TRUE(t.AppendRow(Row{Value::Int(i)}).ok());
  }
  EXPECT_EQ(Executor::Distinct(t).num_rows(), 3u);
}

TEST_F(ExecutorTest, MissingTable) {
  Executor ex(&catalog_);
  EXPECT_FALSE(ex.Query("SELECT * FROM nope").ok());
}

// --- XML bridge ---

TEST(XmlBridgeTest, RoundTrip) {
  Table t = PatientsFixture();
  auto node = TableToXml(t, "patients");
  auto back = XmlToTable(*node);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), t.num_rows());
  EXPECT_EQ(back->schema(), t.schema());
  EXPECT_EQ(back->row(2)[1].AsString(), "cal");
  EXPECT_DOUBLE_EQ(back->row(2)[3].AsDouble(), 0.9);
}

TEST(XmlBridgeTest, NullsSurvive) {
  Table t(Schema{Column{"a", ColumnType::kInt64}});
  ASSERT_TRUE(t.AppendRow(Row{Value::Null()}).ok());
  auto node = TableToXml(t);
  auto back = XmlToTable(*node);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->row(0)[0].is_null());
}

TEST(XmlBridgeTest, RejectsMalformedResult) {
  auto bad = xml::XmlNode::Element("result");
  EXPECT_FALSE(XmlToTable(*bad).ok());
}

}  // namespace
}  // namespace relational
}  // namespace piye

namespace piye {
namespace relational {
namespace {

// --- Hierarchical-store ingestion (TableFromXmlRecords) ---

TEST(XmlRecordsTest, InfersSchemaAndTypes) {
  auto doc = xml::Parse(R"(
    <patients>
      <patient><pid>P1</pid><age>34</age><score>1.5</score></patient>
      <patient><pid>P2</pid><age>45</age><score>2</score></patient>
    </patients>)");
  ASSERT_TRUE(doc.ok());
  auto table = TableFromXmlRecords(doc->root());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  ASSERT_EQ(table->schema().num_columns(), 3u);
  EXPECT_EQ(table->schema().column(0).type, ColumnType::kString);  // pid
  EXPECT_EQ(table->schema().column(1).type, ColumnType::kInt64);   // age
  EXPECT_EQ(table->schema().column(2).type, ColumnType::kDouble);  // score (widened)
  EXPECT_DOUBLE_EQ(table->row(1)[2].AsDouble(), 2.0);
}

TEST(XmlRecordsTest, MissingFieldsBecomeNull) {
  auto doc = xml::Parse(R"(
    <r>
      <rec><a>1</a><b>x</b></rec>
      <rec><a>2</a></rec>
      <rec><b>y</b><c>3.5</c></rec>
    </r>)");
  ASSERT_TRUE(doc.ok());
  auto table = TableFromXmlRecords(doc->root());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().num_columns(), 3u);
  EXPECT_TRUE(table->row(1)[1].is_null());  // rec 2 lacks b
  EXPECT_TRUE(table->row(2)[0].is_null());  // rec 3 lacks a
}

TEST(XmlRecordsTest, MixedTypesWidenToString) {
  auto doc = xml::Parse(R"(
    <r><rec><v>12</v></rec><rec><v>twelve</v></rec></r>)");
  ASSERT_TRUE(doc.ok());
  auto table = TableFromXmlRecords(doc->root());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).type, ColumnType::kString);
  EXPECT_EQ(table->row(0)[0].AsString(), "12");
}

TEST(XmlRecordsTest, EmptyRootGivesEmptyTable) {
  auto doc = xml::Parse("<r/>");
  ASSERT_TRUE(doc.ok());
  auto table = TableFromXmlRecords(doc->root());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->schema().num_columns(), 0u);
}

TEST(XmlRecordsTest, DoubleRoundTripIsExact) {
  // The to_chars wire format preserves doubles bit-for-bit.
  Table t(Schema{Column{"x", ColumnType::kDouble}});
  const double values[] = {0.1, 1.0 / 3.0, 83.07, 1e-17, 12345678.90123};
  for (double v : values) {
    ASSERT_TRUE(t.AppendRow(Row{Value::Real(v)}).ok());
  }
  auto node = TableToXml(t);
  auto back = XmlToTable(*node);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(back->row(i)[0].AsDouble(), t.row(i)[0].AsDouble()) << i;
  }
}

// --- ColumnVector (columnar storage) ---

TEST(ColumnVectorTest, TypedAppendAndNullBitmap) {
  ColumnVector c(ColumnType::kInt64);
  c.AppendInt(7);
  c.AppendNull();
  c.AppendInt(-3);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
  EXPECT_EQ(c.CountValid(), 2u);
  EXPECT_EQ(c.IntAt(0), 7);
  EXPECT_EQ(c.IntAt(1), 0);  // NULL slot holds the zero payload
  EXPECT_EQ(c.ValueAt(1).ToString(), "NULL");
  EXPECT_EQ(c.ValueAt(2).AsInt(), -3);
}

TEST(ColumnVectorTest, StringArenaAndGatherCompaction) {
  ColumnVector c(ColumnType::kString);
  c.AppendStr("alpha");
  c.AppendNull();
  c.AppendStr("beta");
  c.Set(0, Value::Str("a-much-longer-replacement"));  // arena slack until gather
  const size_t slack_bytes = c.ApproxBytes();
  const uint32_t sel[] = {2, 0};
  ColumnVector g = c.Gather(sel, 2);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.StrAt(0), "beta");
  EXPECT_EQ(g.StrAt(1), "a-much-longer-replacement");
  EXPECT_LT(g.ApproxBytes(), slack_bytes);  // compaction dropped dead bytes
}

TEST(ColumnVectorTest, AppendValueCoercion) {
  ColumnVector d(ColumnType::kDouble);
  d.AppendValue(Value::Int(4));        // widens
  d.AppendValue(Value::Str("nope"));   // mismatch -> NULL
  d.AppendValue(Value::Null());
  d.AppendValue(Value::Real(2.5));
  EXPECT_DOUBLE_EQ(d.RealAt(0), 4.0);
  EXPECT_TRUE(d.IsNull(1));
  EXPECT_TRUE(d.IsNull(2));
  EXPECT_DOUBLE_EQ(d.RealAt(3), 2.5);
}

TEST(ColumnVectorTest, EncodeCellMatchesCompareEquality) {
  // The canonical key encoding must equate exactly what Value::Compare
  // equates: int 2 == real 2.0, -0.0 == 0.0, NULL == NULL — and nothing else.
  ColumnVector i(ColumnType::kInt64);
  i.AppendInt(2);
  ColumnVector d(ColumnType::kDouble);
  d.AppendReal(2.0);
  d.AppendReal(-0.0);
  d.AppendReal(0.0);
  d.AppendReal(2.5);
  d.AppendNull();
  std::string int2, real2, neg0, pos0, real25, null_key;
  i.EncodeCell(0, &int2);
  d.EncodeCell(0, &real2);
  d.EncodeCell(1, &neg0);
  d.EncodeCell(2, &pos0);
  d.EncodeCell(3, &real25);
  d.EncodeCell(4, &null_key);
  EXPECT_EQ(int2, real2);
  EXPECT_EQ(neg0, pos0);
  EXPECT_NE(real2, real25);
  EXPECT_NE(null_key, pos0);
}

TEST(TableColumnarTest, ProjectSharedSharesBuffersUntilMutation) {
  Table t = PatientsFixture();
  Table view = t.ProjectShared({0, 2});
  ASSERT_EQ(view.num_columns(), 2u);
  EXPECT_EQ(view.num_rows(), t.num_rows());
  // Shared projection costs columns, not cells.
  EXPECT_LT(view.ApproxBytes(), t.ApproxBytes());
  // Copy-on-write: mutating the view leaves the base untouched.
  view.SetCell(0, 0, Value::Int(999));
  EXPECT_EQ(view.Cell(0, 0).AsInt(), 999);
  EXPECT_EQ(t.Cell(0, 0).AsInt(), 1);
}

TEST(TableColumnarTest, AddColumnPadsWithNulls) {
  Table t = PatientsFixture();
  ColumnVector extra(ColumnType::kInt64);
  extra.AppendInt(42);  // shorter than the table
  t.AddColumn({"extra", ColumnType::kInt64}, std::move(extra));
  ASSERT_EQ(t.num_columns(), 6u);
  EXPECT_EQ(t.Cell(0, 5).AsInt(), 42);
  for (size_t r = 1; r < t.num_rows(); ++r) EXPECT_TRUE(t.Cell(r, 5).is_null());
}

TEST(TableColumnarTest, ApproxBytesCountsColumnarFootprint) {
  // Row-major storage paid a full Value variant (32+ bytes) per cell; the
  // columnar footprint of an INT64 column must be close to 8 bytes/cell.
  Table t(Schema{Column{"x", ColumnType::kInt64}});
  t.Reserve(1024);
  for (int64_t i = 0; i < 1024; ++i) {
    t.AppendRowUnchecked(Row{Value::Int(i)});
  }
  const size_t per_row = t.ApproxBytes() / t.num_rows();
  EXPECT_LT(per_row, sizeof(Value)) << "per-entry footprint should beat a "
                                       "row-major Value cell";
}

// --- aggregate bugfix regressions ---

TEST(AggregateRegressionTest, StdDevStableWhenMeanDwarfsSpread) {
  // mean ~1e9, stddev ~1: the old sum-of-squares formula cancels
  // catastrophically (sum_sq/n and mean^2 agree in ~18 digits); Welford
  // accumulation keeps full precision.
  Table t(Schema{Column{"x", ColumnType::kDouble}});
  for (int i = -2; i <= 2; ++i) {
    ASSERT_TRUE(t.AppendRow(Row{Value::Real(1e9 + static_cast<double>(i))}).ok());
  }
  auto out = Executor::Aggregate(t, {}, {SelectItem::Agg(AggFunc::kStdDev, "x")});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Population stddev of {-2,-1,0,1,2} is sqrt(2).
  EXPECT_NEAR(out->Cell(0, 0).AsDouble(), std::sqrt(2.0), 1e-6);
}

TEST(AggregateRegressionTest, Int64SumExactAbove2Pow53) {
  // 2^53 + 1 + 2 is not representable as a double sum ((2^53)+1 == 2^53 in
  // binary64); the exact int64 accumulator must keep every unit.
  const int64_t big = int64_t{1} << 53;
  Table t(Schema{Column{"x", ColumnType::kInt64}});
  ASSERT_TRUE(t.AppendRow(Row{Value::Int(big)}).ok());
  ASSERT_TRUE(t.AppendRow(Row{Value::Int(1)}).ok());
  ASSERT_TRUE(t.AppendRow(Row{Value::Int(2)}).ok());
  auto out = Executor::Aggregate(t, {}, {SelectItem::Agg(AggFunc::kSum, "x"),
                                         SelectItem::Agg(AggFunc::kAvg, "x")});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->schema().column(0).type, ColumnType::kInt64);
  EXPECT_EQ(out->Cell(0, 0).AsInt(), big + 3);
  EXPECT_DOUBLE_EQ(out->Cell(0, 1).AsDouble(),
                   static_cast<double>(big + 3) / 3.0);
}

TEST(AggregateRegressionTest, Int64SumOverflowWidensToDouble) {
  const int64_t huge = std::numeric_limits<int64_t>::max();
  Table t(Schema{Column{"x", ColumnType::kInt64}});
  ASSERT_TRUE(t.AppendRow(Row{Value::Int(huge)}).ok());
  ASSERT_TRUE(t.AppendRow(Row{Value::Int(huge)}).ok());
  auto out = Executor::Aggregate(t, {}, {SelectItem::Agg(AggFunc::kSum, "x")});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->schema().column(0).type, ColumnType::kDouble);
  EXPECT_NEAR(out->Cell(0, 0).AsDouble(), 2.0 * static_cast<double>(huge),
              1e4);
}

// --- differential harness: vectorized engine vs row-engine reference ---

Table RandomTable(Rng* rng, size_t num_rows, double null_density) {
  Table t(Schema{Column{"i", ColumnType::kInt64}, Column{"d", ColumnType::kDouble},
                 Column{"s", ColumnType::kString}, Column{"b", ColumnType::kBool},
                 Column{"g", ColumnType::kInt64}});
  static const char* kWords[] = {"oslo", "bern", "rome", "", "a%b", "x_y"};
  for (size_t r = 0; r < num_rows; ++r) {
    auto maybe = [&](Value v) {
      return rng->NextDouble() < null_density ? Value::Null() : std::move(v);
    };
    Row row;
    row.push_back(maybe(Value::Int(static_cast<int64_t>(rng->NextBounded(200)) - 100)));
    row.push_back(maybe(Value::Real(rng->NextUniform(-50.0, 50.0))));
    row.push_back(maybe(Value::Str(kWords[rng->NextBounded(6)])));
    row.push_back(maybe(Value::Boolean(rng->NextBounded(2) == 1)));
    row.push_back(maybe(Value::Int(static_cast<int64_t>(rng->NextBounded(4)))));
    t.AppendRowUnchecked(row);
  }
  return t;
}

void ExpectSameTable(const Result<Table>& vec, const Result<Table>& ref,
                     const std::string& what) {
  ASSERT_EQ(vec.ok(), ref.ok())
      << what << ": " << (vec.ok() ? ref.status() : vec.status()).ToString();
  if (!vec.ok()) return;
  ASSERT_EQ(vec->schema().ToString(), ref->schema().ToString()) << what;
  ASSERT_EQ(vec->num_rows(), ref->num_rows()) << what;
  for (size_t r = 0; r < vec->num_rows(); ++r) {
    for (size_t c = 0; c < vec->num_columns(); ++c) {
      // ToString renders doubles with shortest-round-trip precision, so
      // distinct bit patterns render distinctly.
      ASSERT_EQ(vec->Cell(r, c).ToString(), ref->Cell(r, c).ToString())
          << what << " cell (" << r << "," << c << ")";
    }
  }
}

TEST(DifferentialTest, BothEnginesAgreeAcrossNullDensities) {
  const char* kPredicates[] = {
      "i > 0",
      "i > 0 AND d < 10.0",
      "s = 'oslo' OR b = TRUE",
      "NOT (g = 2)",
      "s LIKE 'o%'",
      "s LIKE '%_y'",
      "i IN (1, 2, 3, 55)",
      "d IN (0.5)",
      "i + g > 3",
      "d * 2.0 <= i - 1",
      "i = d",
      "s >= 'm'",
  };
  const std::vector<SelectItem> kAggs = {
      SelectItem::Agg(AggFunc::kCount, ""),
      SelectItem::Agg(AggFunc::kCount, "i"),
      SelectItem::Agg(AggFunc::kSum, "i"),
      SelectItem::Agg(AggFunc::kSum, "d"),
      SelectItem::Agg(AggFunc::kAvg, "d"),
      SelectItem::Agg(AggFunc::kMin, "i"),
      SelectItem::Agg(AggFunc::kMax, "d"),
      SelectItem::Agg(AggFunc::kMin, "s"),
      SelectItem::Agg(AggFunc::kStdDev, "d"),
  };
  for (double null_density : {0.0, 0.2, 0.9}) {
    Rng rng(0xC0FFEE + static_cast<uint64_t>(null_density * 100));
    // Deliberately not a multiple of the executor's batch size, so the tail
    // batch path is exercised.
    Table t = RandomTable(&rng, 1500, null_density);
    const std::string tag = " (null_density=" + std::to_string(null_density) + ")";

    for (const char* sql : kPredicates) {
      auto pred = ParseExpression(sql);
      ASSERT_TRUE(pred.ok()) << sql;
      ExpectSameTable(Executor::Filter(t, *pred), rowref::Filter(t, *pred),
                      std::string("Filter ") + sql + tag);
    }
    ExpectSameTable(Executor::Filter(t, nullptr), rowref::Filter(t, nullptr),
                    "Filter <none>" + tag);
    ExpectSameTable(Executor::Project(t, {"d", "i"}), rowref::Project(t, {"d", "i"}),
                    "Project" + tag);
    ExpectSameTable(Executor::Aggregate(t, {}, kAggs), rowref::Aggregate(t, {}, kAggs),
                    "Aggregate global" + tag);
    ExpectSameTable(Executor::Aggregate(t, {"g"}, kAggs),
                    rowref::Aggregate(t, {"g"}, kAggs), "Aggregate by g" + tag);
    ExpectSameTable(Executor::Aggregate(t, {"g", "b"}, kAggs),
                    rowref::Aggregate(t, {"g", "b"}, kAggs),
                    "Aggregate by g,b" + tag);
    Table right = RandomTable(&rng, 40, null_density);
    ExpectSameTable(Executor::HashJoin(t, right, "g", "g", "r_"),
                    rowref::HashJoin(t, right, "g", "g", "r_"), "HashJoin" + tag);
    ExpectSameTable(Executor::Union(t, t), rowref::Union(t, t), "Union" + tag);
    ExpectSameTable(Result<Table>(Executor::Distinct(t)),
                    Result<Table>(rowref::Distinct(t)), "Distinct" + tag);
    const std::vector<OrderKey> keys = {{"g", true}, {"d", false}, {"s", true}};
    ExpectSameTable(Executor::Sort(t, keys), rowref::Sort(t, keys), "Sort" + tag);
    ExpectSameTable(Result<Table>(Executor::Limit(t, 17)),
                    Result<Table>(rowref::Limit(t, 17)), "Limit" + tag);
  }
}

TEST(DifferentialTest, EmptyTablesAgree) {
  Table t(Schema{Column{"i", ColumnType::kInt64}, Column{"d", ColumnType::kDouble},
                 Column{"s", ColumnType::kString}, Column{"b", ColumnType::kBool},
                 Column{"g", ColumnType::kInt64}});
  auto pred = ParseExpression("i > 0");
  ASSERT_TRUE(pred.ok());
  ExpectSameTable(Executor::Filter(t, *pred), rowref::Filter(t, *pred),
                  "Filter empty");
  const std::vector<SelectItem> aggs = {SelectItem::Agg(AggFunc::kCount, ""),
                                        SelectItem::Agg(AggFunc::kSum, "i"),
                                        SelectItem::Agg(AggFunc::kStdDev, "d")};
  ExpectSameTable(Executor::Aggregate(t, {}, aggs), rowref::Aggregate(t, {}, aggs),
                  "Aggregate empty global");
  ExpectSameTable(Executor::Aggregate(t, {"g"}, aggs),
                  rowref::Aggregate(t, {"g"}, aggs), "Aggregate empty grouped");
  ExpectSameTable(Executor::HashJoin(t, t, "g", "g", "r_"),
                  rowref::HashJoin(t, t, "g", "g", "r_"), "Join empty");
  ExpectSameTable(Executor::Sort(t, {{"i", true}}), rowref::Sort(t, {{"i", true}}),
                  "Sort empty");
  ExpectSameTable(Result<Table>(Executor::Limit(t, 5)),
                  Result<Table>(rowref::Limit(t, 5)), "Limit empty");
}

TEST(DifferentialTest, ErrorCasesAgree) {
  Rng rng(7);
  Table t = RandomTable(&rng, 64, 0.1);
  auto like_on_int = ParseExpression("i LIKE 'x%'");
  ASSERT_TRUE(like_on_int.ok());
  EXPECT_FALSE(Executor::Filter(t, *like_on_int).ok());
  EXPECT_FALSE(rowref::Filter(t, *like_on_int).ok());
  EXPECT_FALSE(Executor::Project(t, {"missing"}).ok());
  EXPECT_FALSE(rowref::Project(t, {"missing"}).ok());
  EXPECT_FALSE(Executor::Aggregate(t, {}, {SelectItem::Col("i")}).ok());
  EXPECT_FALSE(rowref::Aggregate(t, {}, {SelectItem::Col("i")}).ok());
}

}  // namespace
}  // namespace relational
}  // namespace piye

// Durability-layer suite: the persist/ codec, the checksummed torn-tolerant
// WAL with its crash-injection kill-points, the snapshot+WAL generation
// store, and a fuzz-style robustness pass proving a mangled log is always
// recovered fail-closed — a valid prefix plus a clean writable tail, never a
// crash, never garbage records.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "persist/codec.h"
#include "persist/state_log.h"
#include "persist/wal.h"

namespace piye {
namespace {

namespace fs = std::filesystem;
using persist::Crc32;
using persist::Decoder;
using persist::Encoder;
using persist::KillPoint;
using persist::ReadWal;
using persist::StateLog;
using persist::WalReadResult;
using persist::WalRecord;
using persist::WalWriter;

std::string TestPath(const std::string& name) {
  const fs::path p = fs::path(testing::TempDir()) / ("piye_" + name);
  fs::remove_all(p);
  return p.string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- Codec ---

TEST(CodecTest, Crc32MatchesReferenceVector) {
  // The canonical CRC-32 (IEEE, reflected) check value.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view()), 0u);
}

TEST(CodecTest, RoundTripsEveryFieldType) {
  Encoder enc;
  enc.PutU8(7);
  enc.PutU16(65535);
  enc.PutU32(123456789);
  enc.PutU64(0xDEADBEEFCAFEBABEull);
  enc.PutDouble(-2.75);
  const std::string binary("hello \0 world", 13);  // embedded NUL survives
  enc.PutString(binary);
  enc.PutStringVector({"a", "", "ccc"});
  enc.PutU64Vector({1, 2, 3});
  const std::string bytes = enc.Take();

  Decoder dec(bytes);
  EXPECT_EQ(*dec.GetU8(), 7);
  EXPECT_EQ(*dec.GetU16(), 65535);
  EXPECT_EQ(*dec.GetU32(), 123456789u);
  EXPECT_EQ(*dec.GetU64(), 0xDEADBEEFCAFEBABEull);
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), -2.75);
  EXPECT_EQ(*dec.GetString(), binary);
  EXPECT_EQ(*dec.GetStringVector(), (std::vector<std::string>{"a", "", "ccc"}));
  EXPECT_EQ(*dec.GetU64Vector(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodecTest, TruncatedInputFailsInsteadOfReadingGarbage) {
  Encoder enc;
  enc.PutU64(42);
  enc.PutString("payload");
  const std::string bytes = enc.Take();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Decoder dec(std::string_view(bytes).substr(0, cut));
    auto v = dec.GetU64();
    if (!v.ok()) continue;  // truncated inside the u64
    EXPECT_EQ(*v, 42u);
    auto s = dec.GetString();
    EXPECT_FALSE(s.ok()) << "cut=" << cut;
  }
}

TEST(CodecTest, CorruptVectorCountCannotForceHugeAllocation) {
  // A length prefix far beyond the remaining bytes must be a decode error,
  // not a multi-gigabyte allocation.
  Encoder enc;
  enc.PutU64(1ull << 40);  // claims 2^40 strings follow
  const std::string bytes = enc.Take();
  Decoder dec_s(bytes);
  EXPECT_FALSE(dec_s.GetStringVector().ok());

  Encoder enc2;
  enc2.PutU64(1ull << 40);
  const std::string bytes2 = enc2.Take();
  Decoder dec_u(bytes2);
  EXPECT_FALSE(dec_u.GetU64Vector().ok());
}

// --- WAL ---

TEST(WalTest, AppendSyncReadRoundTrip) {
  const std::string path = TestPath("wal_roundtrip");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_TRUE((*writer)->Append(1, "alpha").ok());
    EXPECT_TRUE((*writer)->Append(2, "").ok());
    EXPECT_TRUE((*writer)->Append(3, std::string(10000, 'x')).ok());
    EXPECT_TRUE((*writer)->Sync().ok());
  }
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean);
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].type, 1);
  EXPECT_EQ(read->records[0].payload, "alpha");
  EXPECT_EQ(read->records[1].payload, "");
  EXPECT_EQ(read->records[2].payload.size(), 10000u);
}

TEST(WalTest, UnsyncedAppendsAreNotOnDisk) {
  const std::string path = TestPath("wal_unsynced");
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE((*writer)->Append(1, "buffered-only").ok());
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_TRUE((*writer)->Sync().ok());
  read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
}

TEST(WalTest, ReopenAppendsAfterExistingRecords) {
  const std::string path = TestPath("wal_reopen");
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE((*w)->Append(1, "first").ok());
    EXPECT_TRUE((*w)->Sync().ok());
  }
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE((*w)->Append(2, "second").ok());
    EXPECT_TRUE((*w)->Sync().ok());
  }
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[1].payload, "second");
}

TEST(WalTest, TornTailIsDiscardedAndTruncatedOnReopen) {
  const std::string path = TestPath("wal_torn");
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE((*w)->Append(1, "kept").ok());
    EXPECT_TRUE((*w)->Sync().ok());
  }
  // A real torn write: raw garbage after the last intact frame.
  std::string bytes = ReadFileBytes(path);
  const size_t intact = bytes.size();
  WriteFileBytes(path, bytes + "\x07garbage-tail");

  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->clean);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->valid_bytes, intact);

  // Reopening truncates the garbage so new appends follow valid frames.
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE((*w)->Append(2, "after-heal").ok());
    EXPECT_TRUE((*w)->Sync().ok());
  }
  read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean);
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[1].payload, "after-heal");
}

TEST(WalTest, CorruptHeaderStartsTheLogOver) {
  const std::string path = TestPath("wal_badmagic");
  WriteFileBytes(path, "NOTAWAL!junkjunkjunk");
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->clean);
  EXPECT_TRUE(read->records.empty());
  auto w = WalWriter::Open(path);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE((*w)->Append(1, "fresh").ok());
  EXPECT_TRUE((*w)->Sync().ok());
  read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean);
  ASSERT_EQ(read->records.size(), 1u);
}

// --- Kill-points: each leaves the on-disk bytes exactly as the simulated
// crash would, and the writer is dead afterwards. ---

struct KillCase {
  KillPoint kp;
  size_t surviving_records;  // records readable after the crash
  bool clean_after;          // whether the file ends at a frame boundary
};

class WalKillPointTest : public testing::TestWithParam<KillCase> {};

TEST_P(WalKillPointTest, CrashLeavesOnlyDurablePrefix) {
  const KillCase kc = GetParam();
  const std::string path =
      TestPath(std::string("wal_kill_") + persist::KillPointName(kc.kp));
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  WalWriter* w = writer->get();
  ASSERT_TRUE(w->Append(1, "durable-one").ok());
  ASSERT_TRUE(w->Sync().ok());

  w->ArmKillPoint(kc.kp);
  Status append = w->Append(2, "doomed-record");
  Status sync = append.ok() ? w->Sync() : append;
  EXPECT_FALSE(sync.ok()) << "the crash must surface as a failure";
  EXPECT_TRUE(w->crashed());

  // The writer is dead: the "process" cannot keep going.
  EXPECT_FALSE(w->Append(3, "post-mortem").ok());
  EXPECT_FALSE(w->Sync().ok());

  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), kc.surviving_records);
  EXPECT_EQ(read->clean, kc.clean_after);
  EXPECT_EQ(read->records[0].payload, "durable-one");
}

INSTANTIATE_TEST_SUITE_P(
    AllKillPoints, WalKillPointTest,
    testing::Values(
        // Nothing of the doomed record reaches the disk.
        KillCase{KillPoint::kBeforeAppend, 1, true},
        // Half a frame reaches the disk: a torn, discardable tail.
        KillCase{KillPoint::kMidRecord, 1, false},
        // The buffer dies with the process: file ends at the last Sync.
        KillCase{KillPoint::kBeforeSync, 1, true},
        // Fully written and fsynced, then the final block tears.
        KillCase{KillPoint::kTornFinalBlock, 1, false}));

// --- StateLog generations ---

TEST(StateLogTest, FreshDirectoryOpensEmptyAndClean) {
  const std::string dir = TestPath("statelog_fresh");
  StateLog::RecoveredState recovered;
  auto log = StateLog::Open(dir, &recovered);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_TRUE(recovered.snapshot.empty());
  EXPECT_TRUE(recovered.records.empty());
  EXPECT_TRUE(recovered.wal_clean);
  EXPECT_EQ(recovered.generation, 0u);
}

TEST(StateLogTest, RecoversAppendedRecordsAcrossReopen) {
  const std::string dir = TestPath("statelog_reopen");
  {
    StateLog::RecoveredState recovered;
    auto log = StateLog::Open(dir, &recovered);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE((*log)->Append(5, "one").ok());
    EXPECT_TRUE((*log)->Append(6, "two").ok());
    EXPECT_TRUE((*log)->Sync().ok());
  }
  StateLog::RecoveredState recovered;
  auto log = StateLog::Open(dir, &recovered);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(recovered.snapshot.empty());
  ASSERT_EQ(recovered.records.size(), 2u);
  EXPECT_EQ(recovered.records[0].payload, "one");
  EXPECT_EQ(recovered.records[1].payload, "two");
}

TEST(StateLogTest, RotateFoldsWalIntoSnapshotAndCollectsOldGeneration) {
  const std::string dir = TestPath("statelog_rotate");
  {
    StateLog::RecoveredState recovered;
    auto log = StateLog::Open(dir, &recovered);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE((*log)->Append(1, "pre-snapshot").ok());
    EXPECT_TRUE((*log)->Sync().ok());
    EXPECT_TRUE((*log)->Rotate("SNAPSHOT-BLOB").ok());
    EXPECT_EQ((*log)->generation(), 1u);
    EXPECT_TRUE((*log)->Append(2, "post-snapshot").ok());
    EXPECT_TRUE((*log)->Sync().ok());
  }
  // Generation 0's WAL is gone; only generation 1 remains.
  EXPECT_FALSE(fs::exists(fs::path(dir) / "wal-0"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "snapshot-1"));

  StateLog::RecoveredState recovered;
  auto log = StateLog::Open(dir, &recovered);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(recovered.generation, 1u);
  EXPECT_EQ(recovered.snapshot, "SNAPSHOT-BLOB");
  ASSERT_EQ(recovered.records.size(), 1u);
  EXPECT_EQ(recovered.records[0].payload, "post-snapshot");
}

TEST(StateLogTest, CorruptSnapshotFallsBackInsteadOfCrashing) {
  const std::string dir = TestPath("statelog_badsnap");
  {
    StateLog::RecoveredState recovered;
    auto log = StateLog::Open(dir, &recovered);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE((*log)->Rotate("GOOD-BLOB").ok());
    EXPECT_TRUE((*log)->Append(9, "live").ok());
    EXPECT_TRUE((*log)->Sync().ok());
  }
  // Rot a byte in the snapshot body: its CRC no longer matches.
  const std::string snap_path = (fs::path(dir) / "snapshot-1").string();
  std::string bytes = ReadFileBytes(snap_path);
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
  WriteFileBytes(snap_path, bytes);

  StateLog::RecoveredState recovered;
  auto log = StateLog::Open(dir, &recovered);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  // Generation 1 is unusable; recovery falls back to an older (here: empty)
  // generation rather than trusting a corrupt snapshot or crashing.
  EXPECT_NE(recovered.snapshot, "GOOD-BLOB");
  EXPECT_TRUE((*log)->Append(1, "still-writable").ok());
  EXPECT_TRUE((*log)->Sync().ok());
}

// --- Fuzz: random truncation and bit-flips anywhere in the log must never
// crash the reader, never fabricate a record, and always leave a healable
// file (satellite: WAL-reader robustness). ---

TEST(WalFuzzTest, MangledLogsAlwaysRecoverToAValidPrefix) {
  const std::string path = TestPath("wal_fuzz_master");
  std::vector<std::string> payloads;
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w.ok());
    Rng payload_rng(0xF00D);
    for (int i = 0; i < 40; ++i) {
      std::string payload(8 + payload_rng.NextBounded(120), '\0');
      for (auto& c : payload) {
        c = static_cast<char>('a' + payload_rng.NextBounded(26));
      }
      payloads.push_back(payload);
      ASSERT_TRUE((*w)->Append(static_cast<uint16_t>(i % 7 + 1), payload).ok());
    }
    ASSERT_TRUE((*w)->Sync().ok());
  }
  const std::string master = ReadFileBytes(path);

  Rng rng(20260806);
  for (int round = 0; round < 200; ++round) {
    std::string mangled = master;
    const int mode = static_cast<int>(rng.NextBounded(3));
    if (mode == 0) {  // truncate at a random offset
      mangled.resize(rng.NextBounded(mangled.size() + 1));
    } else if (mode == 1) {  // flip a random bit
      const size_t at = rng.NextBounded(mangled.size());
      mangled[at] = static_cast<char>(mangled[at] ^ (1u << rng.NextBounded(8)));
    } else {  // stomp a random run of bytes
      const size_t at = rng.NextBounded(mangled.size());
      const size_t len = std::min(mangled.size() - at, 1 + rng.NextBounded(64));
      for (size_t i = 0; i < len; ++i) {
        mangled[at + i] = static_cast<char>(rng.NextBounded(256));
      }
    }
    const std::string mangled_path = TestPath("wal_fuzz_case");
    WriteFileBytes(mangled_path, mangled);

    auto read = ReadWal(mangled_path);
    ASSERT_TRUE(read.ok()) << "round " << round;
    // Whatever survived must be an exact prefix of what was written: a
    // damaged log may lose records, never invent or alter them.
    ASSERT_LE(read->records.size(), payloads.size()) << "round " << round;
    for (size_t i = 0; i < read->records.size(); ++i) {
      ASSERT_EQ(read->records[i].payload, payloads[i])
          << "round " << round << " record " << i;
    }
    ASSERT_LE(read->valid_bytes, mangled.size()) << "round " << round;

    // And the file must be healable: reopening truncates the damage and
    // appending works.
    auto w = WalWriter::Open(mangled_path);
    ASSERT_TRUE(w.ok()) << "round " << round << ": " << w.status().ToString();
    ASSERT_TRUE((*w)->Append(99, "healed").ok());
    ASSERT_TRUE((*w)->Sync().ok());
    auto reread = ReadWal(mangled_path);
    ASSERT_TRUE(reread.ok());
    ASSERT_TRUE(reread->clean) << "round " << round;
    ASSERT_EQ(reread->records.size(), read->records.size() + 1);
    ASSERT_EQ(reread->records.back().payload, "healed");
  }
}

}  // namespace
}  // namespace piye

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "relational/reference.h"
#include "common/stats.h"
#include "perturb/noise.h"
#include "perturb/randomized_response.h"
#include "perturb/reconstruction.h"
#include "perturb/spectral_filter.h"
#include "perturb/swapping.h"

namespace piye {
namespace perturb {
namespace {

using relational::Column;
using relational::ColumnType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

// --- Additive noise ---

TEST(AdditiveNoiseTest, GaussianDistortsButPreservesMean) {
  Rng rng(1);
  std::vector<double> xs(5000, 50.0);
  const AdditiveNoise noise(AdditiveNoise::Distribution::kGaussian, 10.0);
  const auto ys = noise.Perturb(xs, &rng);
  EXPECT_NEAR(stats::Mean(ys), 50.0, 0.5);
  EXPECT_NEAR(stats::StdDev(ys), 10.0, 0.5);
  size_t moved = 0;
  for (size_t i = 0; i < xs.size(); ++i) moved += std::fabs(ys[i] - xs[i]) > 1.0;
  EXPECT_GT(moved, 4000u);
}

TEST(AdditiveNoiseTest, UniformStaysInBand) {
  Rng rng(2);
  std::vector<double> xs(1000, 0.0);
  const AdditiveNoise noise(AdditiveNoise::Distribution::kUniform, 3.0);
  for (double y : noise.Perturb(xs, &rng)) {
    EXPECT_GE(y, -3.0);
    EXPECT_LE(y, 3.0);
  }
}

TEST(AdditiveNoiseTest, DensityIntegratesToOne) {
  for (auto dist : {AdditiveNoise::Distribution::kGaussian,
                    AdditiveNoise::Distribution::kUniform}) {
    const AdditiveNoise noise(dist, 2.0);
    double integral = 0.0;
    const double dx = 0.01;
    for (double x = -20.0; x <= 20.0; x += dx) integral += noise.NoiseDensity(x) * dx;
    EXPECT_NEAR(integral, 1.0, 0.01);
  }
}

TEST(AdditiveNoiseTest, PerturbColumnRespectsTypesAndNulls) {
  Table t(Schema{Column{"v", ColumnType::kInt64}, Column{"s", ColumnType::kString}});
  (void)t.AppendRow(Row{Value::Int(100), Value::Str("x")});
  (void)t.AppendRow(Row{Value::Null(), Value::Str("y")});
  Rng rng(3);
  const AdditiveNoise noise(AdditiveNoise::Distribution::kGaussian, 5.0);
  ASSERT_TRUE(noise.PerturbColumn(&t, "v", &rng).ok());
  EXPECT_TRUE(t.row(0)[0].is_int());
  EXPECT_TRUE(t.row(1)[0].is_null());
  EXPECT_FALSE(noise.PerturbColumn(&t, "s", &rng).ok());
}

TEST(OutputPerturbationTest, Rounding) {
  EXPECT_DOUBLE_EQ(OutputPerturbation::Round(83.07, 0.1), 83.1);
  EXPECT_DOUBLE_EQ(OutputPerturbation::Round(83.07, 1.0), 83.0);
  EXPECT_DOUBLE_EQ(OutputPerturbation::Round(83.07, 5.0), 85.0);
  EXPECT_DOUBLE_EQ(OutputPerturbation::Round(83.07, 0.0), 83.07);
}

// --- Agrawal–Srikant reconstruction ---

TEST(ReconstructionTest, RecoversBimodalDistribution) {
  Rng rng(7);
  std::vector<double> original;
  for (int i = 0; i < 1500; ++i) original.push_back(rng.NextGaussian(20.0, 3.0));
  for (int i = 0; i < 1500; ++i) original.push_back(rng.NextGaussian(80.0, 3.0));
  const AdditiveNoise noise(AdditiveNoise::Distribution::kGaussian, 20.0);
  const auto perturbed = noise.Perturb(original, &rng);

  DistributionReconstructor recon(0.0, 100.0, 20);
  const auto truth = recon.Bucketize(original);
  const auto naive = recon.Bucketize(perturbed);
  auto recovered = recon.Reconstruct(perturbed, noise);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  const double err_naive = DistributionReconstructor::L1Distance(truth, naive);
  const double err_recon = DistributionReconstructor::L1Distance(truth, *recovered);
  // Iterated Bayes recovers the shape far better than reading the perturbed
  // histogram directly (the Agrawal–Srikant result).
  EXPECT_LT(err_recon, 0.5 * err_naive);
}

TEST(ReconstructionTest, ProbabilitiesSumToOne) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.NextUniform(0.0, 100.0));
  const AdditiveNoise noise(AdditiveNoise::Distribution::kGaussian, 10.0);
  const auto perturbed = noise.Perturb(xs, &rng);
  DistributionReconstructor recon(0.0, 100.0, 10);
  auto f = recon.Reconstruct(perturbed, noise);
  ASSERT_TRUE(f.ok());
  double total = 0.0;
  for (double p : *f) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ReconstructionTest, RejectsBadInputs) {
  const AdditiveNoise noise(AdditiveNoise::Distribution::kGaussian, 1.0);
  EXPECT_FALSE(DistributionReconstructor(0, 100, 0).Reconstruct({1.0}, noise).ok());
  EXPECT_FALSE(DistributionReconstructor(0, 100, 10).Reconstruct({}, noise).ok());
}

// --- Randomized response ---

TEST(RandomizedResponseTest, UnbiasedProportionEstimate) {
  Rng rng(11);
  const double true_pi = 0.3;
  std::vector<bool> truths;
  for (int i = 0; i < 30000; ++i) truths.push_back(rng.NextBernoulli(true_pi));
  const RandomizedResponse rr(0.75);
  const auto reports = rr.RandomizeAll(truths, &rng);
  auto est = rr.EstimateProportion(reports);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, true_pi, 0.02);
}

TEST(RandomizedResponseTest, HalfProbabilityRejected) {
  const RandomizedResponse rr(0.5);
  EXPECT_FALSE(rr.EstimateProportion({true, false}).ok());
}

TEST(RandomizedResponseTest, PosteriorBoundsPlausibleDeniability) {
  const RandomizedResponse rr(0.75);
  const double post = rr.PosteriorGivenYes(0.3);
  EXPECT_GT(post, 0.3);
  EXPECT_LT(post, 0.8);
  const RandomizedResponse no_privacy(1.0);
  EXPECT_NEAR(no_privacy.PosteriorGivenYes(0.3), 1.0, 1e-12);
}

TEST(CategoricalRandomizedResponseTest, FrequencyRecovery) {
  Rng rng(13);
  const size_t k = 4;
  const std::vector<double> true_freq{0.1, 0.2, 0.3, 0.4};
  std::vector<size_t> truths;
  for (int i = 0; i < 40000; ++i) {
    const double u = rng.NextDouble();
    truths.push_back(u < 0.1 ? 0 : u < 0.3 ? 1 : u < 0.6 ? 2 : 3);
  }
  const CategoricalRandomizedResponse crr(k, 0.6);
  std::vector<size_t> reports;
  for (size_t t : truths) reports.push_back(crr.Randomize(t, &rng));
  auto est = crr.EstimateFrequencies(reports);
  ASSERT_TRUE(est.ok());
  for (size_t i = 0; i < k; ++i) EXPECT_NEAR((*est)[i], true_freq[i], 0.03);
}

TEST(CategoricalRandomizedResponseTest, RandomizeStaysInRange) {
  Rng rng(17);
  const CategoricalRandomizedResponse crr(5, 0.4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(crr.Randomize(static_cast<size_t>(i % 5), &rng), 5u);
  }
}

// --- Swapping / microaggregation ---

TEST(RankSwapperTest, PreservesMultiset) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.NextUniform(0, 1000));
  const RankSwapper swapper(10.0);
  auto ys = swapper.Swap(xs, &rng);
  auto sorted_x = xs, sorted_y = ys;
  std::sort(sorted_x.begin(), sorted_x.end());
  std::sort(sorted_y.begin(), sorted_y.end());
  EXPECT_EQ(sorted_x, sorted_y);
  size_t moved = 0;
  for (size_t i = 0; i < xs.size(); ++i) moved += xs[i] != ys[i];
  EXPECT_GT(moved, 50u);
}

TEST(RankSwapperTest, SmallWindowPreservesCorrelationBetter) {
  Rng rng(23);
  std::vector<double> key, val;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextUniform(0, 100);
    key.push_back(x);
    val.push_back(2 * x + rng.NextGaussian(0, 5));
  }
  Rng rng_small(1), rng_large(1);
  const auto swapped_small = RankSwapper(2.0).Swap(val, &rng_small);
  const auto swapped_large = RankSwapper(50.0).Swap(val, &rng_large);
  const double corr_small = stats::Correlation(key, swapped_small);
  const double corr_large = stats::Correlation(key, swapped_large);
  EXPECT_GT(corr_small, corr_large);
  EXPECT_GT(corr_small, 0.9);
}

TEST(MicroaggregatorTest, EveryValueSharedByK) {
  std::vector<double> xs{1, 2, 3, 10, 11, 12, 20, 21, 22, 23};
  const Microaggregator agg(3);
  const auto ys = agg.Aggregate(xs);
  std::map<double, int> counts;
  for (double y : ys) ++counts[y];
  for (const auto& [v, n] : counts) {
    EXPECT_GE(n, 3) << v;
  }
  double sx = 0, sy = 0;
  for (double x : xs) sx += x;
  for (double y : ys) sy += y;
  EXPECT_NEAR(sx, sy, 1e-9);
}

TEST(MicroaggregatorTest, LargerKLosesMoreInformation) {
  Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.NextUniform(0, 100));
  const double sse3 =
      Microaggregator::SumOfSquaredErrors(xs, Microaggregator(3).Aggregate(xs));
  const double sse20 =
      Microaggregator::SumOfSquaredErrors(xs, Microaggregator(20).Aggregate(xs));
  EXPECT_LT(sse3, sse20);
}

// --- Spectral filtering: the paper's "perturbation is not foolproof" ---

TEST(JacobiEigenTest, DiagonalizesKnownMatrix) {
  auto eig = JacobiEigen({{2, 1}, {1, 2}});
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-9);
  EXPECT_NEAR(std::fabs(eig->eigenvectors[0][0]), std::sqrt(0.5), 1e-9);
}

TEST(JacobiEigenTest, RejectsNonSquare) {
  EXPECT_FALSE(JacobiEigen({{1, 2, 3}, {4, 5, 6}}).ok());
}

TEST(SpectralFilterTest, RecoversCorrelatedDataBelowNoiseFloor) {
  Rng rng(31);
  const size_t n = 800, d = 6;
  std::vector<std::vector<double>> original(n, std::vector<double>(d));
  for (size_t r = 0; r < n; ++r) {
    const double latent = rng.NextUniform(0, 100);
    for (size_t j = 0; j < d; ++j) {
      original[r][j] = latent * (1.0 + 0.1 * static_cast<double>(j)) +
                       rng.NextGaussian(0, 2.0);
    }
  }
  const double sigma = 15.0;
  auto perturbed = original;
  for (auto& row : perturbed) {
    for (auto& x : row) x += rng.NextGaussian(0, sigma);
  }
  const SpectralFilter filter(sigma * sigma);
  auto recovered = filter.Filter(perturbed);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const double err_perturbed = SpectralFilter::MatrixRmse(original, perturbed);
  const double err_recovered = SpectralFilter::MatrixRmse(original, *recovered);
  EXPECT_NEAR(err_perturbed, sigma, 2.0);
  // The filtering attack strips most of the noise.
  EXPECT_LT(err_recovered, 0.55 * sigma);
}

// --- columnar kernels vs row-at-a-time references (NULL alignment) ---

namespace {

/// 2 columns, NULLs interleaved through the numeric one: the exact shape
/// that misaligns a dense-vector write-back lacking a row<->value index map.
Table InterleavedNullFixture(ColumnType numeric_type) {
  Table t(Schema{Column{"v", numeric_type}, Column{"tag", ColumnType::kString}});
  Rng rng(41);
  for (int i = 0; i < 257; ++i) {
    Value v;
    if (i % 3 == 1 || i % 7 == 2) {
      v = Value::Null();
    } else if (numeric_type == ColumnType::kInt64) {
      v = Value::Int(static_cast<int64_t>(rng.NextBounded(1000)) - 500);
    } else {
      v = Value::Real(rng.NextUniform(-100.0, 100.0));
    }
    (void)t.AppendRow(Row{std::move(v), Value::Str("r" + std::to_string(i))});
  }
  return t;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.Cell(r, c).ToString(), b.Cell(r, c).ToString())
          << "cell (" << r << "," << c << ")";
    }
  }
}

}  // namespace

TEST(RankSwapperTest, InterleavedNullsStayAlignedAgainstRowReference) {
  for (ColumnType type : {ColumnType::kInt64, ColumnType::kDouble}) {
    Table columnar = InterleavedNullFixture(type);
    Table reference = columnar;
    const uint64_t seed = 0xDECADE;
    Rng rng_columnar(seed), rng_reference(seed);
    const RankSwapper swapper(10.0);
    ASSERT_TRUE(swapper.SwapColumn(&columnar, "v", &rng_columnar).ok());
    ASSERT_TRUE(relational::rowref::RankSwapRowAtATime(&reference, "v", 10.0,
                                                       &rng_reference)
                    .ok());
    // Same seed, same draws, same placement — including every NULL slot.
    ExpectTablesEqual(columnar, reference);
    // And the swap is a permutation: NULL rows keep NULL, the non-NULL
    // multiset is preserved.
    const Table original = InterleavedNullFixture(type);
    std::multiset<std::string> before, after;
    for (size_t r = 0; r < original.num_rows(); ++r) {
      ASSERT_EQ(original.Cell(r, 0).is_null(), columnar.Cell(r, 0).is_null())
          << "row " << r;
      if (!original.Cell(r, 0).is_null()) {
        before.insert(original.Cell(r, 0).ToString());
        after.insert(columnar.Cell(r, 0).ToString());
      }
    }
    EXPECT_EQ(before, after);
  }
}

TEST(AdditiveNoiseTest, InterleavedNullsMatchRowReference) {
  for (ColumnType type : {ColumnType::kInt64, ColumnType::kDouble}) {
    Table columnar = InterleavedNullFixture(type);
    Table reference = columnar;
    const uint64_t seed = 0xFACADE;
    Rng rng_columnar(seed), rng_reference(seed);
    const AdditiveNoise noise(AdditiveNoise::Distribution::kGaussian, 5.0);
    ASSERT_TRUE(noise.PerturbColumn(&columnar, "v", &rng_columnar).ok());
    ASSERT_TRUE(relational::rowref::AddNoiseRowAtATime(
                    &reference, "v", /*gaussian=*/true, 5.0, &rng_reference)
                    .ok());
    ExpectTablesEqual(columnar, reference);
  }
}

}  // namespace
}  // namespace perturb
}  // namespace piye

// Crash-safety and robustness suite for the mediation engine: the durable
// query-history/budget WAL with fail-closed recovery, the crash-injection
// matrix over every kill-point, the restart-reset attack, auditor
// crash-safety, per-source circuit breakers, warehouse observability
// counters, and the health/readiness report.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/private_iye.h"
#include "core/scenario.h"
#include "mediator/circuit_breaker.h"
#include "mediator/engine.h"
#include "mediator/persistence.h"
#include "persist/wal.h"
#include "source/remote_source.h"

namespace piye {
namespace {

namespace fs = std::filesystem;
using mediator::CircuitBreaker;
using mediator::CircuitBreakerConfig;
using mediator::MediationEngine;
using mediator::QueryOptions;
using persist::KillPoint;

std::string TestDir(const std::string& name) {
  const fs::path p = fs::path(testing::TempDir()) / ("piye_recovery_" + name);
  fs::remove_all(p);
  return p.string();
}

std::vector<std::unique_ptr<source::RemoteSource>> BuildSources(size_t n) {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  for (size_t i = 0; i < n; ++i) {
    auto tables = core::ClinicalScenario::MakePatientTables(20, 0.3, 100 + i);
    auto src = std::make_unique<source::RemoteSource>(
        "hospital" + std::to_string(i), "patients", std::move(tables.hospital),
        /*seed=*/i + 1);
    core::ClinicalScenario::ApplyPatientPolicies(src.get());
    sources.push_back(std::move(src));
  }
  return sources;
}

std::unique_ptr<MediationEngine> BuildEngine(
    const std::vector<std::unique_ptr<source::RemoteSource>>& sources,
    MediationEngine::Options options) {
  auto engine = std::make_unique<MediationEngine>(options);
  for (const auto& src : sources) {
    EXPECT_TRUE(engine->RegisterSource(src.get()).ok());
  }
  EXPECT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
  return engine;
}

MediationEngine::Options DurableOptions() {
  MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;  // single WAL record per release
  options.worker_threads = 4;
  return options;
}

source::PiqlQuery MakeQuery(const std::string& body,
                            const std::string& requester = "analyst") {
  auto q = source::PiqlQuery::Parse("<query requester=\"" + requester +
                                    "\" purpose=\"research\" maxLoss=\"0.95\">" +
                                    body + "</query>");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// --- Durable execution and recovery ---

TEST(RecoveryTest, StateSurvivesRestart) {
  const std::string dir = TestDir("survives_restart");
  auto sources = BuildSources(3);
  const auto query =
      MakeQuery("<select>patient_id</select><select>diagnosis</select>");

  double loss_before = 0.0;
  size_t history_before = 0;
  {
    auto engine = BuildEngine(sources, DurableOptions());
    ASSERT_TRUE(engine->Recover(dir).ok());
    EXPECT_TRUE(engine->persistence_enabled());
    for (int i = 0; i < 3; ++i) {
      auto r = engine->Execute(query, QueryOptions{});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    loss_before = engine->history()->CumulativeLoss("analyst");
    history_before = engine->history()->size();
    EXPECT_GT(loss_before, 0.0);
  }  // "process death": the engine is destroyed, only the directory remains

  auto revived = BuildEngine(sources, DurableOptions());
  ASSERT_TRUE(revived->Recover(dir).ok());
  EXPECT_EQ(revived->history()->size(), history_before);
  EXPECT_DOUBLE_EQ(revived->history()->CumulativeLoss("analyst"), loss_before);
  // And the revived engine keeps serving (and accounting) normally.
  auto r = revived->Execute(query, QueryOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(revived->history()->CumulativeLoss("analyst"), loss_before);
}

TEST(RecoveryTest, RecoverTwiceOrOnUsedEngineIsRejected) {
  const std::string dir = TestDir("recover_twice");
  auto sources = BuildSources(2);
  auto engine = BuildEngine(sources, DurableOptions());
  ASSERT_TRUE(engine->Recover(dir).ok());
  EXPECT_FALSE(engine->Recover(dir).ok());

  auto volatile_engine = BuildEngine(sources, DurableOptions());
  auto r = volatile_engine->Execute(
      MakeQuery("<select>patient_id</select>"), QueryOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(volatile_engine->Recover(TestDir("recover_used")).ok());
}

TEST(RecoveryTest, WarehouseMaterializationsSurviveRestart) {
  const std::string dir = TestDir("warehouse_survives");
  auto sources = BuildSources(3);
  auto options = DurableOptions();
  options.enable_warehouse = true;
  const auto query = MakeQuery("<select>patient_id</select><select>sex</select>");
  {
    auto engine = BuildEngine(sources, options);
    ASSERT_TRUE(engine->Recover(dir).ok());
    auto r = engine->Execute(query, QueryOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->from_warehouse);
    EXPECT_EQ(engine->warehouse()->size(), 1u);
  }
  auto revived = BuildEngine(sources, options);
  ASSERT_TRUE(revived->Recover(dir).ok());
  EXPECT_EQ(revived->warehouse()->size(), 1u);
  auto r = revived->Execute(query, QueryOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->from_warehouse);
}

TEST(RecoveryTest, JournaledEvictionSurvivesRestart) {
  const std::string dir = TestDir("evict_survives");
  auto sources = BuildSources(2);
  auto options = DurableOptions();
  options.enable_warehouse = true;
  const auto query = MakeQuery("<select>patient_id</select>");
  {
    auto engine = BuildEngine(sources, options);
    ASSERT_TRUE(engine->Recover(dir).ok());
    ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
    EXPECT_EQ(engine->warehouse()->size(), 1u);
    engine->AdvanceEpoch();
    engine->AdvanceEpoch();
    ASSERT_TRUE(engine->EvictWarehouseOlderThan(engine->epoch()).ok());
    EXPECT_EQ(engine->warehouse()->size(), 0u);
  }
  auto revived = BuildEngine(sources, options);
  ASSERT_TRUE(revived->Recover(dir).ok());
  EXPECT_EQ(revived->warehouse()->size(), 0u);
  EXPECT_EQ(revived->epoch(), 2u);
}

TEST(RecoveryTest, ReplayedWarehousePutDoesNotRollBackNewerEntry) {
  // Recovery replays warehouse-put WAL records through the same
  // Warehouse::Put the live engine uses. A duplicated or re-applied segment
  // can present an *older* materialization after a newer one has already
  // been installed; the warehouse must keep the max-epoch entry.
  auto make_table = [](int64_t marker) {
    relational::Table t(relational::Schema{
        relational::Column{"x", relational::ColumnType::kInt64}});
    EXPECT_TRUE(t.AppendRow(relational::Row{relational::Value::Int(marker)}).ok());
    return t;
  };

  // Round-trip both records through the real recovery codec.
  const std::string fresh_payload =
      mediator::EncodeWarehousePutRecord("fp", /*epoch=*/6, make_table(6));
  const std::string stale_payload =
      mediator::EncodeWarehousePutRecord("fp", /*epoch=*/2, make_table(2));
  auto fresh = mediator::DecodeWarehousePutRecord(fresh_payload);
  auto stale = mediator::DecodeWarehousePutRecord(stale_payload);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(stale.ok());

  trace::MetricsRegistry metrics;
  mediator::Warehouse warehouse;
  warehouse.set_metrics(&metrics);

  // Adversarial replay order: newer record applied first, stale one after.
  warehouse.Put(fresh->fingerprint, fresh->table, fresh->epoch);
  warehouse.Put(stale->fingerprint, stale->table, stale->epoch);

  auto handle = warehouse.Get("fp", /*current_epoch=*/6, /*max_age=*/0);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->row(0)[0].AsInt(), 6);  // epoch-6 table, not rolled back
  EXPECT_EQ(warehouse.size(), 1u);
  EXPECT_EQ(metrics.counter("warehouse.stale_put_drops"), 1u);
  EXPECT_EQ(metrics.counter("warehouse.puts"), 1u);

  // Replaying the newer record again (same epoch) is idempotent-by-value:
  // it replaces with an identical materialization rather than dropping it.
  warehouse.Put(fresh->fingerprint, fresh->table, fresh->epoch);
  EXPECT_EQ(warehouse.size(), 1u);
  handle = warehouse.Get("fp", 6, 0);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->row(0)[0].AsInt(), 6);
}

TEST(RecoveryTest, SnapshotRotationPreservesStateAcrossRestart) {
  const std::string dir = TestDir("snapshot_rotation");
  auto sources = BuildSources(2);
  auto options = DurableOptions();
  options.snapshot_every_records = 2;  // rotate every other release
  const auto query = MakeQuery("<select>patient_id</select>");
  double loss_before = 0.0;
  {
    auto engine = BuildEngine(sources, options);
    ASSERT_TRUE(engine->Recover(dir).ok());
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
    }
    // Rotation is asynchronous now; force one deterministically so the
    // snapshot below is guaranteed to carry all seven entries.
    ASSERT_TRUE(engine->TriggerSnapshot(/*wait=*/true).ok());
    loss_before = engine->history()->CumulativeLoss("analyst");
    EXPECT_GE(engine->metrics()->counter("engine.snapshots"), 2u);
  }
  auto revived = BuildEngine(sources, options);
  ASSERT_TRUE(revived->Recover(dir).ok());
  EXPECT_EQ(revived->history()->size(), 7u);
  EXPECT_DOUBLE_EQ(revived->history()->CumulativeLoss("analyst"), loss_before);
}

// --- The crash matrix (the acceptance gate): at every kill-point, the
// answer is withheld, the engine fails closed, and recovery restores the
// requester's cumulative loss to its exact pre-crash durable value. ---

class CrashMatrixTest : public testing::TestWithParam<KillPoint> {};

TEST_P(CrashMatrixTest, BudgetIsIdenticalBeforeAndAfterCrash) {
  const KillPoint kp = GetParam();
  const std::string dir =
      TestDir(std::string("matrix_") + persist::KillPointName(kp));
  auto sources = BuildSources(3);
  const auto query =
      MakeQuery("<select>patient_id</select><select>diagnosis</select>");

  auto engine = BuildEngine(sources, DurableOptions());
  ASSERT_TRUE(engine->Recover(dir).ok());
  ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
  const double durable_loss = engine->history()->CumulativeLoss("analyst");
  ASSERT_GT(durable_loss, 0.0);

  // The process "dies" at the kill-point during the next release.
  ASSERT_TRUE(engine->ArmPersistKillPoint(kp).ok());
  auto crashed = engine->Execute(query, QueryOptions{});
  ASSERT_FALSE(crashed.ok()) << persist::KillPointName(kp)
                             << ": the un-journalable answer must be withheld";
  EXPECT_TRUE(crashed.status().IsUnavailable());
  EXPECT_TRUE(engine->persistence_failed());

  // Fail closed: the dying engine refuses everything from now on.
  auto refused = engine->Execute(query, QueryOptions{});
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable());
  EXPECT_FALSE(engine->Health().ready);

  // A new process recovers. The withheld answer was never released, so the
  // requester's budget must come back at exactly the pre-crash durable
  // value — for every kill-point, including the torn final block.
  auto revived = BuildEngine(sources, DurableOptions());
  ASSERT_TRUE(revived->Recover(dir).ok()) << persist::KillPointName(kp);
  EXPECT_EQ(revived->history()->size(), 1u);
  EXPECT_DOUBLE_EQ(revived->history()->CumulativeLoss("analyst"), durable_loss)
      << persist::KillPointName(kp);
  // And the revived engine serves again.
  auto r = revived->Execute(query, QueryOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllKillPoints, CrashMatrixTest,
                         testing::Values(KillPoint::kBeforeAppend,
                                         KillPoint::kMidRecord,
                                         KillPoint::kBeforeSync,
                                         KillPoint::kTornFinalBlock));

// --- The restart-reset attack the tentpole exists to stop ---

TEST(RecoveryTest, RestartDoesNotResetTheSnoopersBudget) {
  const std::string dir = TestDir("reset_attack");
  auto sources = BuildSources(3);

  QueryOptions per_query;
  per_query.allow_warehouse = false;  // every ask must consume budget
  // The snooper is an *authorized* requester (the paper's threat model) —
  // here the "cdc" role — trying to stretch its budget via restarts.
  const auto query =
      MakeQuery("<select>patient_id</select><select>diagnosis</select>", "cdc");

  // Execution is deterministic, so one probe run tells us a single answer's
  // loss; size the budget so a couple of queries exhaust it.
  double one_query_loss = 0.0;
  {
    auto probe = BuildEngine(sources, DurableOptions());
    auto r = probe->Execute(query, per_query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    one_query_loss = r->combined_privacy_loss;
    ASSERT_GT(one_query_loss, 0.0);
  }
  auto options = DurableOptions();
  options.max_cumulative_loss = 2.5 * one_query_loss;

  size_t served = 0;
  {
    auto engine = BuildEngine(sources, options);
    ASSERT_TRUE(engine->Recover(dir).ok());
    for (int i = 0; i < 100; ++i) {
      auto r = engine->Execute(query, per_query);
      if (r.ok()) {
        ++served;
        continue;
      }
      ASSERT_TRUE(r.status().IsPrivacyViolation()) << r.status().ToString();
      break;
    }
    ASSERT_GT(served, 0u) << "scenario must serve at least one query";
    ASSERT_LT(served, 100u) << "budget must eventually be exhausted";
  }  // the snooper kills the mediator, hoping for a fresh budget

  auto revived = BuildEngine(sources, options);
  ASSERT_TRUE(revived->Recover(dir).ok());
  auto r = revived->Execute(query, per_query);
  ASSERT_FALSE(r.ok()) << "restart must not reset the cumulative budget";
  EXPECT_TRUE(r.status().IsPrivacyViolation());

  // Control: without durability the same restart WOULD reset the budget —
  // the attack the WAL closes.
  auto amnesiac = BuildEngine(sources, options);
  EXPECT_TRUE(amnesiac->Execute(query, per_query).ok());
}

// --- Auditor crash-safety: the sequence auditor's verdict is identical
// before and after a crash. ---

TEST(RecoveryTest, AuditorRefusesTheSameDisclosureAfterRecovery) {
  const std::string dir = TestDir("auditor");
  auto sources = BuildSources(2);
  auto engine = BuildEngine(sources, DurableOptions());
  ASSERT_TRUE(engine->Recover(dir).ok());

  auto* control = engine->control();
  const size_t a = control->RegisterSensitiveCell("salary_a", 0, 100, 40);
  const size_t b = control->RegisterSensitiveCell("salary_b", 0, 100, 60);
  ASSERT_TRUE(control->ApproveMeanDisclosure({a, b}, 1.0).ok());
  // Disclosing cell a's mean alone would pin it to ±1 — refused.
  auto refused = control->ApproveMeanDisclosure({a}, 1.0);
  ASSERT_FALSE(refused.ok());
  ASSERT_TRUE(refused.status().IsPrivacyViolation());

  // Crash during the next journaled event.
  ASSERT_TRUE(engine->ArmPersistKillPoint(KillPoint::kBeforeSync).ok());
  engine->AdvanceEpoch();  // journaled -> fires the kill-point
  EXPECT_TRUE(engine->persistence_failed());

  auto revived = BuildEngine(sources, DurableOptions());
  ASSERT_TRUE(revived->Recover(dir).ok());
  // Same committed constraints, same verdict: the snooper cannot launder a
  // refused disclosure through a crash.
  auto again = revived->control()->ApproveMeanDisclosure({a}, 1.0);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsPrivacyViolation());
  // The first-approved disclosure stays approved (it adds no new info).
  EXPECT_EQ(revived->control()->SnapshotDisclosures().size(), 1u);
  EXPECT_EQ(revived->control()->SnapshotCells().size(), 2u);
}

TEST(RecoveryTest, FailedDisclosureJournalWithholdsTheValue) {
  const std::string dir = TestDir("journal_withhold");
  auto sources = BuildSources(2);
  auto engine = BuildEngine(sources, DurableOptions());
  ASSERT_TRUE(engine->Recover(dir).ok());
  auto* control = engine->control();
  const size_t a = control->RegisterSensitiveCell("cell_a", 0, 100, 40);
  const size_t b = control->RegisterSensitiveCell("cell_b", 0, 100, 60);

  ASSERT_TRUE(engine->ArmPersistKillPoint(KillPoint::kBeforeSync).ok());
  auto r = control->ApproveMeanDisclosure({a, b}, 1.0);
  // The auditor approved, but the journal died: the value is withheld and
  // the engine fails closed.
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(engine->persistence_failed());
  EXPECT_FALSE(engine->Execute(MakeQuery("<select>patient_id</select>"),
                               QueryOptions{})
                   .ok());
}

// --- Engine-level corruption: a mangled WAL never crashes Recover and
// never hands budget back. ---

TEST(RecoveryTest, CorruptedWalTailRecoversConservatively) {
  const std::string dir = TestDir("corrupt_tail");
  auto sources = BuildSources(2);
  const auto query = MakeQuery("<select>patient_id</select>");
  double first_loss = 0.0;
  {
    auto engine = BuildEngine(sources, DurableOptions());
    ASSERT_TRUE(engine->Recover(dir).ok());
    ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
    first_loss = engine->history()->CumulativeLoss("analyst");
    ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
  }
  // Tear bytes off the end of the live WAL, as a dying disk would.
  fs::path wal_path;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) {
      wal_path = entry.path();
    }
  }
  ASSERT_FALSE(wal_path.empty());
  const auto size = fs::file_size(wal_path);
  ASSERT_GT(size, 10u);
  fs::resize_file(wal_path, size - 7);

  auto revived = BuildEngine(sources, DurableOptions());
  ASSERT_TRUE(revived->Recover(dir).ok());
  // The torn second record is gone, the first survives; budget is at least
  // the last durable floor and the engine still serves.
  EXPECT_GE(revived->history()->CumulativeLoss("analyst"), first_loss);
  EXPECT_TRUE(revived->Execute(query, QueryOptions{}).ok());
}

// --- Circuit breakers ---

TEST(CircuitBreakerUnitTest, OpensAfterThresholdShedsThenProbes) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.open_cooldown_ms = 20;
  CircuitBreaker breaker(config, nullptr);
  auto now = std::chrono::steady_clock::now();

  for (int i = 0; i < 2; ++i) breaker.OnFailure(now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.OnFailure(now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opened_total(), 1u);

  // Shed during the cooldown.
  EXPECT_FALSE(breaker.Admit(now));
  EXPECT_FALSE(breaker.Admit(now + std::chrono::milliseconds(10)));
  EXPECT_EQ(breaker.shed_total(), 2u);

  // After the cooldown: exactly one half-open probe, everyone else shed.
  const auto later = now + std::chrono::milliseconds(25);
  EXPECT_TRUE(breaker.Admit(later));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Admit(later));

  // Probe succeeds -> closed again; a fresh failure run starts from zero.
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit(later));
  breaker.OnFailure(later);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerUnitTest, FailedProbeReopensImmediately) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_cooldown_ms = 5;
  CircuitBreaker breaker(config, nullptr);
  auto now = std::chrono::steady_clock::now();
  breaker.OnFailure(now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  const auto later = now + std::chrono::milliseconds(10);
  EXPECT_TRUE(breaker.Admit(later));  // the probe
  breaker.OnFailure(later);           // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Admit(later + std::chrono::milliseconds(1)));
  EXPECT_EQ(breaker.opened_total(), 2u);
}

MediationEngine::Options BreakerOptions(uint32_t threshold,
                                        uint64_t cooldown_ms) {
  auto options = DurableOptions();
  options.enable_circuit_breakers = true;
  options.circuit_breaker.failure_threshold = threshold;
  options.circuit_breaker.open_cooldown_ms = cooldown_ms;
  return options;
}

TEST(EngineBreakerTest, PersistentlyFailingSourceIsShedNotDialed) {
  auto sources = BuildSources(4);
  source::RemoteSource::FaultInjection faults;
  faults.error_rate = 1.0;
  faults.seed = 11;
  sources[1]->set_fault_injection(faults);

  auto engine = BuildEngine(sources, BreakerOptions(/*threshold=*/2,
                                                    /*cooldown_ms=*/60'000));
  const auto query = MakeQuery("<select>patient_id</select><select>sex</select>");
  // Two queries burn real attempts against the sick source and open its
  // breaker; the third is shed without dialing.
  for (int i = 0; i < 2; ++i) {
    auto r = engine->Execute(query, QueryOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_NE(r->sources_skipped.find("hospital1"), r->sources_skipped.end());
  }
  const uint64_t attempts_before =
      engine->metrics()->counter("engine.fragment_attempts");
  auto r = engine->Execute(query, QueryOptions{});
  ASSERT_TRUE(r.ok());
  const auto skipped = r->sources_skipped.find("hospital1");
  ASSERT_NE(skipped, r->sources_skipped.end());
  EXPECT_NE(skipped->second.find("circuit breaker open"), std::string::npos);
  // The shed source consumed no fragment attempts: 3 healthy sources only.
  EXPECT_EQ(engine->metrics()->counter("engine.fragment_attempts"),
            attempts_before + 3);
  EXPECT_GE(engine->metrics()->counter("engine.breaker_opened"), 1u);
  EXPECT_GE(engine->metrics()->counter("engine.breaker_shed"), 1u);
}

TEST(EngineBreakerTest, HalfOpenProbeReadmitsARecoveredSource) {
  auto sources = BuildSources(3);
  source::RemoteSource::FaultInjection faults;
  faults.error_rate = 1.0;
  faults.seed = 5;
  sources[0]->set_fault_injection(faults);

  auto engine = BuildEngine(sources, BreakerOptions(/*threshold=*/2,
                                                    /*cooldown_ms=*/1));
  const auto query = MakeQuery("<select>patient_id</select><select>sex</select>");
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
  }
  // The source heals; after the cooldown the next query probes and readmits.
  sources[0]->set_fault_injection(source::RemoteSource::FaultInjection{});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto r = engine->Execute(query, QueryOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_NE(std::find(r->sources_answered.begin(), r->sources_answered.end(),
                      "hospital0"),
            r->sources_answered.end());
  EXPECT_GE(engine->metrics()->counter("engine.breaker_half_open_probes"), 1u);
  EXPECT_GE(engine->metrics()->counter("engine.breaker_closed"), 1u);
}

TEST(EngineBreakerTest, BypassDialsAnOpenBreakerSource) {
  auto sources = BuildSources(3);
  source::RemoteSource::FaultInjection faults;
  faults.error_rate = 1.0;
  faults.seed = 9;
  sources[0]->set_fault_injection(faults);

  auto engine = BuildEngine(sources, BreakerOptions(/*threshold=*/1,
                                                    /*cooldown_ms=*/60'000));
  const auto query = MakeQuery("<select>patient_id</select><select>sex</select>");
  ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());  // opens breaker
  sources[0]->set_fault_injection(source::RemoteSource::FaultInjection{});

  // Shed without bypass (the breaker stays open long past this test)...
  auto shed = engine->Execute(query, QueryOptions{});
  ASSERT_TRUE(shed.ok());
  ASSERT_NE(shed->sources_skipped.find("hospital0"),
            shed->sources_skipped.end());
  // ...but a must-try query dials it and gets the answer.
  QueryOptions bypass;
  bypass.bypass_circuit_breaker = true;
  auto r = engine->Execute(query, bypass);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(std::find(r->sources_answered.begin(), r->sources_answered.end(),
                      "hospital0"),
            r->sources_answered.end());
}

TEST(EngineBreakerTest, AllSourcesShedReportsUnavailableNotPrivacy) {
  auto sources = BuildSources(2);
  source::RemoteSource::FaultInjection faults;
  faults.error_rate = 1.0;
  faults.seed = 3;
  sources[0]->set_fault_injection(faults);
  faults.seed = 4;
  sources[1]->set_fault_injection(faults);

  auto engine = BuildEngine(sources, BreakerOptions(/*threshold=*/1,
                                                    /*cooldown_ms=*/60'000));
  const auto query = MakeQuery("<select>patient_id</select>");
  auto first = engine->Execute(query, QueryOptions{});
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsUnavailable());
  // Both breakers now open: the query is shed everywhere, still a transport
  // verdict (retryable), never a privacy verdict.
  auto second = engine->Execute(query, QueryOptions{});
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsUnavailable());
}

// --- Health / readiness ---

TEST(HealthTest, ReportsSchemaBreakersAndPersistence) {
  const std::string dir = TestDir("health");
  auto sources = BuildSources(2);
  source::RemoteSource::FaultInjection faults;
  faults.error_rate = 1.0;
  faults.seed = 2;
  sources[1]->set_fault_injection(faults);

  auto options = BreakerOptions(/*threshold=*/1, /*cooldown_ms=*/60'000);
  auto engine = std::make_unique<MediationEngine>(options);
  for (const auto& src : sources) {
    ASSERT_TRUE(engine->RegisterSource(src.get()).ok());
  }
  auto report = engine->Health();
  EXPECT_FALSE(report.ready) << "no schema yet";
  EXPECT_FALSE(report.persistence_enabled);

  ASSERT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
  ASSERT_TRUE(engine->Recover(dir).ok());
  report = engine->Health();
  EXPECT_TRUE(report.ready);
  EXPECT_TRUE(report.persistence_enabled);
  EXPECT_TRUE(report.persistence_ok);
  EXPECT_EQ(report.sources_total, 2u);
  EXPECT_EQ(report.sources_admitting, 2u);

  // One source fails persistently -> its breaker opens -> readiness shows a
  // degraded (but still ready) engine.
  ASSERT_TRUE(
      engine->Execute(MakeQuery("<select>patient_id</select><select>sex</select>"),
                      QueryOptions{})
          .ok());
  report = engine->Health();
  EXPECT_TRUE(report.ready);
  EXPECT_EQ(report.sources_admitting, 1u);
  ASSERT_EQ(report.sources.size(), 2u);
  EXPECT_EQ(report.sources[0].breaker_state, "closed");
  EXPECT_EQ(report.sources[1].breaker_state, "open");
  EXPECT_GE(report.sources[1].opened_total, 1u);

  // A durability failure flips the engine not-ready.
  ASSERT_TRUE(engine->ArmPersistKillPoint(KillPoint::kBeforeSync).ok());
  engine->AdvanceEpoch();
  report = engine->Health();
  EXPECT_FALSE(report.ready);
  EXPECT_FALSE(report.persistence_ok);
}

// --- Warehouse observability counters (satellite) ---

TEST(WarehouseMetricsTest, CountersTrackPutsHitsMissesAndEvictions) {
  auto sources = BuildSources(2);
  auto options = DurableOptions();
  options.enable_warehouse = true;
  auto engine = BuildEngine(sources, options);
  const auto query = MakeQuery("<select>patient_id</select>");

  ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());  // miss + put
  ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());  // hit
  auto* metrics = engine->metrics();
  EXPECT_EQ(metrics->counter("warehouse.puts"), 1u);
  EXPECT_EQ(metrics->counter("warehouse.hits"), 1u);
  EXPECT_EQ(metrics->counter("warehouse.misses"), 1u);
  EXPECT_EQ(metrics->counter("engine.warehouse_hits"), 1u);

  engine->AdvanceEpoch();
  engine->AdvanceEpoch();
  ASSERT_TRUE(engine->EvictWarehouseOlderThan(engine->epoch()).ok());
  EXPECT_EQ(metrics->counter("warehouse.evictions"), 1u);
  EXPECT_EQ(metrics->counter("warehouse.evicted_entries"), 1u);
  // The registry agrees with the warehouse's own accessors — they are
  // updated under the same lock, so they can never diverge.
  EXPECT_EQ(engine->warehouse()->evicted_entries(),
            metrics->counter("warehouse.evicted_entries"));
  EXPECT_EQ(engine->warehouse()->hits(), metrics->counter("warehouse.hits"));
}

}  // namespace
}  // namespace piye

// Fixture-driven self-tests for piye_lint (tools/lint). Every rule must
// fire exactly once on its bad fixture, stay quiet on its good fixture, and
// honor its suppression fixture. Fixture content is linted under *virtual*
// src/ paths so the path-scoped rules behave exactly as they do on the real
// tree.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace piye {
namespace lint {
namespace {

#ifndef PIYE_LINT_FIXTURE_DIR
#error "PIYE_LINT_FIXTURE_DIR must point at tests/lint_fixtures"
#endif

std::string ReadFixture(const std::string& kind, const std::string& name) {
  const std::string path = std::string(PIYE_LINT_FIXTURE_DIR) + "/" + kind + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> LintOne(const std::string& virtual_path, const std::string& content) {
  return RunLint({FileContent{virtual_path, content}});
}

struct RuleFixture {
  std::string rule;
  std::string file;          ///< fixture file name (same in bad/good/suppressed)
  std::string virtual_path;  ///< path the content is linted under
};

const std::vector<RuleFixture>& Fixtures() {
  static const std::vector<RuleFixture> kFixtures = {
      {"raw-sync", "raw-sync.cc", "src/mediator/fixture.cc"},
      {"raw-thread", "raw-thread.cc", "src/mediator/fixture.cc"},
      {"wall-clock", "wall-clock.cc", "src/mediator/fixture.cc"},
      {"privacy-retry", "privacy-retry.cc", "src/mediator/fixture.cc"},
      {"serialization-boundary", "serialization-boundary.cc",
       "src/mediator/fixture.cc"},
      {"status-discard", "status-discard.cc", "src/mediator/fixture.cc"},
      {"header-hygiene", "header-hygiene.h", "src/mediator/fixture.h"},
      {"analysis-escape", "analysis-escape.cc", "src/mediator/fixture.cc"},
      {"row-loop", "row-loop.cc", "src/perturb/fixture.cc"},
      {"manual-snapshot", "manual-snapshot.cc", "src/mediator/fixture.cc"},
  };
  return kFixtures;
}

TEST(LintRules, CatalogHasAtLeastSixRules) {
  EXPECT_GE(RuleNames().size(), 6u);
  for (const auto& name : RuleNames()) {
    EXPECT_FALSE(RuleDescription(name).empty()) << name;
  }
  // Every rule in the catalog has a fixture triple exercising it.
  ASSERT_EQ(Fixtures().size(), RuleNames().size());
}

TEST(LintRules, EachBadFixtureFiresItsRuleExactlyOnce) {
  for (const auto& fixture : Fixtures()) {
    const auto findings =
        LintOne(fixture.virtual_path, ReadFixture("bad", fixture.file));
    ASSERT_EQ(findings.size(), 1u) << fixture.rule;
    EXPECT_EQ(findings[0].rule, fixture.rule);
    EXPECT_EQ(findings[0].file, fixture.virtual_path);
    EXPECT_GT(findings[0].line, 0u);
    EXPECT_FALSE(findings[0].message.empty());
  }
}

TEST(LintRules, GoodFixturesAreClean) {
  for (const auto& fixture : Fixtures()) {
    const auto findings =
        LintOne(fixture.virtual_path, ReadFixture("good", fixture.file));
    EXPECT_TRUE(findings.empty())
        << fixture.rule << ": " << (findings.empty() ? "" : findings[0].message);
  }
}

TEST(LintRules, SuppressionsSilenceEveryRule) {
  for (const auto& fixture : Fixtures()) {
    const auto findings =
        LintOne(fixture.virtual_path, ReadFixture("suppressed", fixture.file));
    EXPECT_TRUE(findings.empty())
        << fixture.rule << ": " << (findings.empty() ? "" : findings[0].message);
  }
}

TEST(LintRules, SuppressionNamesOnlyItsOwnRule) {
  // An allow() for a different rule must not silence this one.
  const auto findings = LintOne(
      "src/mediator/fixture.cc",
      "std::mutex mu;  // piye-lint: allow(raw-thread) wrong rule named\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-sync");
}

TEST(LintScanner, TokensInCommentsAndStringsDoNotFire) {
  const auto findings = LintOne("src/mediator/fixture.cc",
                                "// std::mutex is banned here\n"
                                "/* so is std::condition_variable */\n"
                                "const char* kDoc = \"std::thread spawn\";\n"
                                "const char* kRaw = R\"(std::shared_mutex)\";\n");
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings[0].rule);
}

TEST(LintScanner, PartialIdentifiersDoNotFire) {
  const auto findings = LintOne("src/mediator/fixture.cc",
                                "int system_clocks = 0;\n"
                                "int my_system_clock = 0;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintPaths, SyncHeaderIsExemptFromItsOwnBans) {
  // common/sync.h itself may use the raw primitives and the escape hatch.
  const auto findings = LintOne("src/common/sync.h",
                                "#include <mutex>\n"
                                "std::mutex mu;\n"
                                "#define NO_THREAD_SAFETY_ANALYSIS x\n");
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings[0].rule);
}

TEST(LintPaths, BlessedSeamsMaySerialize) {
  const std::string content = ReadFixture("bad", "serialization-boundary.cc");
  EXPECT_TRUE(LintOne("src/relational/xml_bridge.cc", content).empty());
  EXPECT_TRUE(LintOne("src/net/wire.cc", content).empty());
  EXPECT_TRUE(LintOne("src/policy/policy_io.cc", content).empty());
  // Anywhere else it fires.
  EXPECT_EQ(LintOne("src/inference/auditor.cc", content).size(), 1u);
}

TEST(LintPaths, ExecutorMayOwnThreads) {
  const std::string content = "std::thread worker;\n";
  EXPECT_TRUE(LintOne("src/common/executor.h", content).empty());
  EXPECT_TRUE(LintOne("src/common/executor.cc", content).empty());
  EXPECT_EQ(LintOne("src/mediator/engine.cc", content).size(), 1u);
}

TEST(LintStatusDiscard, VariableDiscardIsExempt) {
  const auto findings = LintOne("src/mediator/fixture.cc",
                                "bool inserted = true;\n"
                                "(void)inserted;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintStatusDiscard, JustifiedBlockCoversContiguousDiscards) {
  const std::string content =
      "// Best-effort teardown: the first error was already reported.\n"
      "(void)CloseA();\n"
      "(void)CloseB();\n"
      "\n"
      "int x = 0;\n"
      "(void)CloseC();\n";
  const auto findings = LintOne("src/mediator/fixture.cc", content);
  // The code line between the block and CloseC breaks the chain.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "status-discard");
  EXPECT_EQ(findings[0].line, 6u);
}

TEST(LintReport, FindingsAreOrderedAndJsonEscaped) {
  std::vector<FileContent> files = {
      {"src/b.cc", "std::mutex b;\n"},
      {"src/a.cc", "int x;\nstd::mutex a;\n"},
  };
  const auto findings = RunLint(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/a.cc");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].file, "src/b.cc");

  const std::string json = FindingsToJson(findings);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"raw-sync\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 2"), std::string::npos);

  EXPECT_EQ(FindingsToJson({}), "{\"count\": 0, \"findings\": []}");
}

}  // namespace
}  // namespace lint
}  // namespace piye

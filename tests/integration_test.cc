#include <gtest/gtest.h>

#include <map>
#include <memory>

#include <cmath>

#include "core/baseline.h"
#include "core/warehouse_miner.h"
#include "core/private_iye.h"
#include "core/scenario.h"
#include "inference/privacy_loss.h"
#include "inference/snooping_attack.h"
#include "relational/executor.h"

namespace piye {
namespace core {
namespace {

// ===========================================================================
// End-to-end flows across the whole stack: the clinical world of Example 1
// driven through PrivateIye, and the attack/defense pair of Figure 1.
// ===========================================================================

class ClinicalWorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tables = ClinicalScenario::MakePatientTables(40, 0.4, 77);
    mediator::MediationEngine::Options options;
    options.max_combined_loss = 0.95;
    system_ = std::make_unique<PrivateIye>(options);
    auto* hospital =
        system_->AddSource("hospital", "patients", std::move(tables.hospital), 1);
    auto* pharmacy =
        system_->AddSource("pharmacy", "rx", std::move(tables.pharmacy), 2);
    auto* lab = system_->AddSource("lab", "tests", std::move(tables.lab), 3);
    ClinicalScenario::ApplyPatientPolicies(hospital);
    ClinicalScenario::ApplyPatientPolicies(pharmacy);
    ClinicalScenario::ApplyPatientPolicies(lab);
    ASSERT_TRUE(system_->Initialize().ok());
  }

  std::unique_ptr<PrivateIye> system_;
};

TEST_F(ClinicalWorldTest, QueryXmlEndToEnd) {
  auto result = system_->QueryXml(R"(
    <query requester="analyst" purpose="research" maxLoss="0.95">
      <select>diagnosis</select>
      <where>diagnosis = 'diabetes'</where>
    </query>)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->table().num_rows(), 0u);
  for (const auto& row : result->table().rows()) {
    EXPECT_EQ(row[0].AsString(), "diabetes");
  }
}

TEST_F(ClinicalWorldTest, NamesNeverLeaveAnySource) {
  auto result = system_->QueryXml(R"(
    <query requester="analyst" purpose="research" maxLoss="0.95">
      <select>name</select><select>dob</select>
    </query>)");
  // The loose matcher maps "name" to patientName at the pharmacy too; every
  // source must deny it, leaving only coarsened dob.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& col : result->table().schema().columns()) {
    EXPECT_EQ(col.name.find("name"), std::string::npos) << col.name;
    EXPECT_EQ(col.name.find("Name"), std::string::npos) << col.name;
  }
}

TEST_F(ClinicalWorldTest, PurposeBindingIsEnforcedEverywhere) {
  auto result = system_->QueryXml(R"(
    <query requester="analyst" purpose="marketing" maxLoss="1.0">
      <select>diagnosis</select>
    </query>)");
  EXPECT_TRUE(result.status().IsPrivacyViolation());
}

TEST_F(ClinicalWorldTest, MediatedSchemaIsQueryableGuide) {
  // A requester can discover what is integrable without seeing raw schemas.
  const auto& schema = system_->mediated_schema();
  EXPECT_GT(schema.attributes().size(), 3u);
  size_t multi_source = 0;
  for (const auto& attr : schema.attributes()) {
    if (attr.mappings.size() > 1) ++multi_source;
  }
  EXPECT_GE(multi_source, 2u);  // id and dob at least
}

// --- Figure 1 attack vs. defense, end to end ---

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto rates = ClinicalScenario::GroundTruthRates();
    ASSERT_TRUE(rates.ok()) << rates.status().ToString();
    rates_ = *rates;
  }
  std::vector<std::vector<double>> rates_;
};

TEST_F(Figure1Test, GroundTruthIsConsistentWithPublishedAggregates) {
  const auto published = inference::PublishedAggregates::Figure1();
  // Per-measure means within tolerance.
  for (size_t m = 0; m < 3; ++m) {
    double mean = 0.0;
    for (size_t p = 0; p < 4; ++p) mean += rates_[m][p];
    mean /= 4.0;
    EXPECT_NEAR(mean, published.measure_mean[m], 0.1) << m;
  }
  // HMO1's values are the paper's.
  EXPECT_NEAR(rates_[0][0], 75.0, 1e-6);
  EXPECT_NEAR(rates_[1][0], 56.0, 1e-6);
  EXPECT_NEAR(rates_[2][0], 43.0, 1e-6);
}

TEST_F(Figure1Test, NaiveIntegratorPublishesAndAttackSucceeds) {
  // Build the four HMO sources and integrate them naively (the Example 1
  // world): exact aggregates get published, and the snooping HMO recovers
  // tight intervals on everyone's sensitive rates.
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  std::vector<const source::RemoteSource*> raw;
  for (size_t p = 0; p < 4; ++p) {
    auto src = ClinicalScenario::MakeHmoSource(p, rates_);
    ASSERT_TRUE(src.ok());
    sources.push_back(std::move(*src));
    raw.push_back(sources.back().get());
  }
  auto published_rows =
      NaiveIntegrator::PublishGroupedAggregates(raw, "test", "rate");
  ASSERT_TRUE(published_rows.ok());
  ASSERT_EQ(published_rows->size(), 3u);

  // The attack on the naively published exact aggregates.
  inference::PublishedAggregates published = inference::PublishedAggregates::Figure1();
  for (size_t m = 0; m < 3; ++m) {
    published.measure_mean[m] = (*published_rows)[m].mean;
    published.measure_sigma[m] = (*published_rows)[m].stddev;
  }
  for (size_t p = 0; p < 4; ++p) {
    double mean = 0.0;
    for (size_t m = 0; m < 3; ++m) mean += rates_[m][p];
    published.party_mean[p] = mean / 3.0;
  }
  published.tolerance = 0.005;  // naive integrator publishes full precision
  inference::AttackerKnowledge attacker;
  attacker.party_index = 0;
  attacker.own_values = {rates_[0][0], rates_[1][0], rates_[2][0]};
  inference::SnoopingAttack attack(42);
  auto result = attack.Run(published, attacker);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Breach: every unknown cell is narrowed far below the 100-point prior
  // and the inferred interval brackets the hidden truth.
  for (size_t m = 0; m < 3; ++m) {
    for (size_t p = 1; p < 4; ++p) {
      EXPECT_LT(result->intervals[m][p].width(), 25.0);
      EXPECT_GE(rates_[m][p], result->intervals[m][p].lo - 0.5);
      EXPECT_LE(rates_[m][p], result->intervals[m][p].hi + 0.5);
    }
  }
}

TEST_F(Figure1Test, PrivateIyeControlBlocksTheBreach) {
  // The same disclosures routed through the mediator's privacy control with
  // an inference auditor: the early aggregates pass, the one that would
  // tighten some HMO's rate beyond the threshold is refused.
  mediator::PrivacyControl control(/*max_combined_loss=*/1.0,
                                   /*max_interval_loss=*/0.85);
  std::vector<std::vector<size_t>> cell(3, std::vector<size_t>(4));
  for (size_t m = 0; m < 3; ++m) {
    for (size_t p = 0; p < 4; ++p) {
      cell[m][p] = control.RegisterSensitiveCell(
          "rate" + std::to_string(m) + std::to_string(p), 0, 100, rates_[m][p]);
    }
  }
  size_t approved = 0, refused = 0;
  // Publish per-measure means, then sigmas, then per-party means — the full
  // Figure 1 release schedule.
  for (size_t m = 0; m < 3; ++m) {
    auto r = control.ApproveMeanDisclosure(cell[m], 0.05);
    r.ok() ? ++approved : ++refused;
  }
  for (size_t m = 0; m < 3; ++m) {
    auto r = control.ApproveStdDevDisclosure(cell[m], 0.05);
    r.ok() ? ++approved : ++refused;
  }
  for (size_t p = 0; p < 4; ++p) {
    std::vector<size_t> party_cells;
    for (size_t m = 0; m < 3; ++m) party_cells.push_back(cell[m][p]);
    auto r = control.ApproveMeanDisclosure(party_cells, 0.05);
    r.ok() ? ++approved : ++refused;
  }
  // Some disclosures go through (utility) but the full schedule is stopped
  // before any cell is pinned beyond the threshold (privacy).
  EXPECT_GT(approved, 0u);
  EXPECT_GT(refused, 0u);
  auto losses = control.CurrentLosses();
  ASSERT_TRUE(losses.ok());
  for (double l : *losses) EXPECT_LE(l, 0.85);
}

// --- Example 2: outbreak surveillance ---

TEST(OutbreakTest, SharingAcceleratesDetection) {
  const std::vector<std::string> countries{"sg", "hk", "cn", "ca"};
  const size_t days = 60, outbreak_day = 30, outbreak_at = 2;
  auto tables = OutbreakScenario::MakeCaseTables(countries, days, outbreak_day,
                                                 outbreak_at, 5);
  ASSERT_EQ(tables.size(), countries.size());

  // Daily totals with full sharing vs. only the non-outbreak countries
  // (the "China does not share" world).
  std::vector<double> shared(days, 0.0), unshared(days, 0.0);
  for (size_t c = 0; c < tables.size(); ++c) {
    for (const auto& row : tables[c].rows()) {
      const size_t d = static_cast<size_t>(row[0].AsInt());
      shared[d] += static_cast<double>(row[2].AsInt());
      if (c != outbreak_at) unshared[d] += static_cast<double>(row[2].AsInt());
    }
  }
  const long detect_shared = OutbreakScenario::DetectOutbreak(shared, 7, 2.0);
  const long detect_unshared = OutbreakScenario::DetectOutbreak(unshared, 7, 2.0);
  ASSERT_GT(detect_shared, 0);
  EXPECT_GE(detect_shared, static_cast<long>(outbreak_day));
  // Without the outbreak country's data the signal never appears (or far
  // later).
  EXPECT_TRUE(detect_unshared < 0 || detect_unshared > detect_shared);
}

TEST(OutbreakTest, PrivacyPreservingSharingStillDetects) {
  // Countries share only aggregate counts through PRIVATE-IYE; detection
  // works on the integrated aggregates without any row-level case data.
  const std::vector<std::string> countries{"sg", "hk", "cn"};
  const size_t days = 50, outbreak_day = 25;
  auto tables = OutbreakScenario::MakeCaseTables(countries, days, outbreak_day, 1, 9);

  mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.99;
  options.max_cumulative_loss = 1000.0;
  options.enable_warehouse = false;
  PrivateIye system(options);
  for (size_t c = 0; c < countries.size(); ++c) {
    auto* src = system.AddSource(countries[c], "cases", std::move(tables[c]),
                                 static_cast<uint64_t>(c) + 1);
    // Policy: per-day case counts shared in aggregate form for
    // disease-surveillance only.
    policy::PrivacyPolicy policy(countries[c], {});
    policy::PolicyRule cases_rule;
    cases_rule.id = "cases-aggregate";
    cases_rule.item = {"*", "cases"};
    cases_rule.purposes = {"disease-surveillance"};
    cases_rule.recipients = {"*"};
    cases_rule.form = policy::DisclosureForm::kAggregate;
    cases_rule.max_privacy_loss = 0.9;
    policy.AddRule(cases_rule);
    policy::PolicyRule day_rule;
    day_rule.id = "day-public";
    day_rule.item = {"*", "day"};
    day_rule.purposes = {"*"};
    day_rule.recipients = {"*"};
    day_rule.form = policy::DisclosureForm::kExact;
    policy.AddRule(day_rule);
    (void)src->mutable_policies()->AddPolicy(std::move(policy));
    (void)src->mutable_rbac()->AddRole("who");
    (void)src->mutable_rbac()->AssignRole("who", "who");
    (void)src->mutable_rbac()->Grant("who", access::Action::kSelect, "*", "*");
  }
  ASSERT_TRUE(system.Initialize().ok());

  auto result = system.QueryXml(R"(
    <query requester="who" purpose="disease-surveillance" maxLoss="0.95">
      <aggregate func="SUM" attribute="cases"><groupBy>day</groupBy></aggregate>
    </query>)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sources_answered.size(), 3u);

  // Reassemble the integrated daily curve and detect.
  std::map<int64_t, double> by_day;
  auto day_idx = result->table().schema().IndexOf("day");
  auto sum_idx = result->table().schema().IndexOf("sum_cases");
  ASSERT_TRUE(day_idx.ok()) << result->table().schema().ToString();
  ASSERT_TRUE(sum_idx.ok()) << result->table().schema().ToString();
  for (const auto& row : result->table().rows()) {
    by_day[row[*day_idx].AsInt()] += row[*sum_idx].AsDouble();
  }
  std::vector<double> curve;
  for (size_t d = 0; d < days; ++d) curve.push_back(by_day[static_cast<int64_t>(d)]);
  const long detected = OutbreakScenario::DetectOutbreak(curve, 7, 2.0);
  EXPECT_GT(detected, static_cast<long>(outbreak_day) - 1);
}

}  // namespace
}  // namespace core
}  // namespace piye

namespace piye {
namespace core {
namespace {

// --- Mining over the privacy-preserved warehouse ---

TEST(WarehouseMinerTest, FrequentItemsetsAndRules) {
  relational::Table t(relational::Schema{
      relational::Column{"diagnosis", relational::ColumnType::kString},
      relational::Column{"drug", relational::ColumnType::kString},
      relational::Column{"age", relational::ColumnType::kInt64}});
  // diabetes strongly co-occurs with metformin.
  for (int i = 0; i < 40; ++i) {
    t.AppendRowUnchecked({relational::Value::Str("diabetes"),
                          relational::Value::Str("metformin"),
                          relational::Value::Int(50)});
  }
  for (int i = 0; i < 10; ++i) {
    t.AppendRowUnchecked({relational::Value::Str("asthma"),
                          relational::Value::Str("albuterol"),
                          relational::Value::Int(30)});
  }
  for (int i = 0; i < 5; ++i) {
    t.AppendRowUnchecked({relational::Value::Str("diabetes"),
                          relational::Value::Str("lisinopril"),
                          relational::Value::Int(60)});
  }
  auto itemsets = WarehouseMiner::FrequentItemsets(t, 0.15, 2);
  ASSERT_TRUE(itemsets.ok()) << itemsets.status().ToString();
  ASSERT_FALSE(itemsets->empty());
  // The top itemset is diagnosis=diabetes (45/55).
  EXPECT_EQ((*itemsets)[0].items,
            std::vector<std::string>{"diagnosis=diabetes"});
  EXPECT_NEAR((*itemsets)[0].support, 45.0 / 55.0, 1e-9);

  auto rules = WarehouseMiner::AssociationRules(t, 0.15, 0.6, 2);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.lhs == std::vector<std::string>{"drug=metformin"} &&
        rule.rhs == "diagnosis=diabetes") {
      found = true;
      EXPECT_NEAR(rule.confidence, 1.0, 1e-9);
      EXPECT_GT(rule.lift, 1.1);
    }
  }
  EXPECT_TRUE(found);
}

TEST(WarehouseMinerTest, RejectsBadSupport) {
  relational::Table t(relational::Schema{
      relational::Column{"a", relational::ColumnType::kString}});
  EXPECT_FALSE(WarehouseMiner::FrequentItemsets(t, 0.0).ok());
  EXPECT_FALSE(WarehouseMiner::FrequentItemsets(t, 1.5).ok());
}

TEST(WarehouseMinerTest, TrendSlopesFindTheOutbreak) {
  const std::vector<std::string> countries{"sg", "cn"};
  auto tables = OutbreakScenario::MakeCaseTables(countries, 40, 10, 1, 3);
  // Union the two case tables (same schema) as the warehouse would hold.
  auto unioned = relational::Executor::Union(tables[0], tables[1]);
  ASSERT_TRUE(unioned.ok());
  auto slopes = WarehouseMiner::TrendSlopes(*unioned, "region", "day", "cases");
  ASSERT_TRUE(slopes.ok()) << slopes.status().ToString();
  ASSERT_EQ(slopes->size(), 2u);
  // The outbreak country's trend dominates the endemic one.
  EXPECT_GT(slopes->at("cn"), 5.0 * std::max(0.1, std::fabs(slopes->at("sg"))));
}

TEST(WarehouseMinerTest, EndToEndMiningOnIntegratedResults) {
  // Mine the *privacy-preserved* integrated table of the clinical world:
  // diagnosis arrives exact, dob arrives generalized — the miner sees only
  // what the pipeline released.
  auto tables = ClinicalScenario::MakePatientTables(60, 0.4, 99);
  mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  PrivateIye system(options);
  auto* hospital =
      system.AddSource("hospital", "patients", std::move(tables.hospital), 1);
  ClinicalScenario::ApplyPatientPolicies(hospital);
  ASSERT_TRUE(system.Initialize().ok());
  auto result = system.QueryXml(R"(
    <query requester="analyst" purpose="research" maxLoss="0.95">
      <select>diagnosis</select><select>sex</select><select>dob</select>
    </query>)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto itemsets = WarehouseMiner::FrequentItemsets(result->table(), 0.1, 2);
  ASSERT_TRUE(itemsets.ok());
  EXPECT_FALSE(itemsets->empty());
  // Items are over released (coarsened) values: any dob item is a decade
  // prefix, never a full date.
  for (const auto& is : *itemsets) {
    for (const auto& item : is.items) {
      if (item.rfind("dob=", 0) == 0) {
        EXPECT_NE(item.find('*'), std::string::npos) << item;
      }
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace piye

#include <gtest/gtest.h>

#include "policy/policy.h"
#include "policy/p3p_shredder.h"
#include "policy/policy_store.h"
#include "policy/preference.h"
#include "policy/privacy_view.h"
#include "policy/purpose.h"
#include "relational/sql.h"
#include "xml/parser.h"

namespace piye {
namespace policy {
namespace {

// --- Purpose lattice ---

TEST(PurposeLatticeTest, DescendantSatisfiesAncestor) {
  const PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_TRUE(lattice.Satisfies("treatment", "healthcare"));
  EXPECT_TRUE(lattice.Satisfies("outbreak-control", "healthcare"));
  EXPECT_TRUE(lattice.Satisfies("treatment", "any"));
  EXPECT_TRUE(lattice.Satisfies("treatment", "treatment"));
}

TEST(PurposeLatticeTest, AncestorDoesNotSatisfyDescendant) {
  const PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_FALSE(lattice.Satisfies("healthcare", "treatment"));
  EXPECT_FALSE(lattice.Satisfies("any", "healthcare"));
}

TEST(PurposeLatticeTest, SiblingsDoNotSatisfy) {
  const PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_FALSE(lattice.Satisfies("marketing", "healthcare"));
  EXPECT_FALSE(lattice.Satisfies("research", "marketing"));
}

TEST(PurposeLatticeTest, WildcardAlwaysSatisfied) {
  const PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_TRUE(lattice.Satisfies("anything-even-unknown", "*"));
}

TEST(PurposeLatticeTest, UnknownPurposeSatisfiesNothingElse) {
  const PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_FALSE(lattice.Satisfies("unknown", "healthcare"));
}

TEST(PurposeLatticeTest, RejectsDuplicateWithDifferentParent) {
  PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_FALSE(lattice.AddPurpose("research", "commercial").ok());
  EXPECT_TRUE(lattice.AddPurpose("research", "healthcare").ok());  // idempotent
}

TEST(PurposeLatticeTest, Ancestors) {
  const PurposeLattice lattice = PurposeLattice::Default();
  const auto chain = lattice.Ancestors("outbreak-control");
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain.front(), "outbreak-control");
  EXPECT_EQ(chain.back(), "any");
}

// --- Policy evaluation ---

PrivacyPolicy HmoPolicy() {
  PrivacyPolicy p("HMO1", {});
  PolicyRule rate;
  rate.id = "r-agg";
  rate.item = {"compliance", "rate"};
  rate.purposes = {"healthcare"};
  rate.recipients = {"*"};
  rate.form = DisclosureForm::kAggregate;
  rate.max_privacy_loss = 0.3;
  p.AddRule(rate);
  PolicyRule test;
  test.id = "t-exact";
  test.item = {"compliance", "test"};
  test.purposes = {"*"};
  test.recipients = {"*"};
  test.form = DisclosureForm::kExact;
  p.AddRule(test);
  PolicyRule deny_marketing;
  deny_marketing.id = "no-marketing";
  deny_marketing.deny = true;
  deny_marketing.item = {"*", "*"};
  deny_marketing.purposes = {"marketing"};
  deny_marketing.recipients = {"*"};
  p.AddRule(deny_marketing);
  return p;
}

TEST(PolicyTest, DefaultDeny) {
  const PrivacyPolicy p = HmoPolicy();
  const PurposeLattice lattice = PurposeLattice::Default();
  const Disclosure d = p.Evaluate("compliance", "secret_col", "research", "cdc", lattice);
  EXPECT_FALSE(d.allowed());
}

TEST(PolicyTest, GrantMatchesPurposeDescendant) {
  const PrivacyPolicy p = HmoPolicy();
  const PurposeLattice lattice = PurposeLattice::Default();
  const Disclosure d = p.Evaluate("compliance", "rate", "research", "cdc", lattice);
  EXPECT_TRUE(d.allowed());
  EXPECT_EQ(d.form, DisclosureForm::kAggregate);
  EXPECT_DOUBLE_EQ(d.max_privacy_loss, 0.3);
}

TEST(PolicyTest, WrongPurposeDenied) {
  const PrivacyPolicy p = HmoPolicy();
  const PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_FALSE(p.Evaluate("compliance", "rate", "commercial", "cdc", lattice).allowed());
}

TEST(PolicyTest, DenyOverridesGrant) {
  const PrivacyPolicy p = HmoPolicy();
  const PurposeLattice lattice = PurposeLattice::Default();
  // `test` is granted for any purpose, but the deny rule vetoes marketing.
  EXPECT_FALSE(p.Evaluate("compliance", "test", "marketing", "x", lattice).allowed());
  EXPECT_TRUE(p.Evaluate("compliance", "test", "research", "x", lattice).allowed());
}

TEST(PolicyTest, MostPermissiveGrantWins) {
  PrivacyPolicy p("o", {});
  PolicyRule r1;
  r1.id = "a";
  r1.item = {"t", "c"};
  r1.purposes = {"*"};
  r1.recipients = {"*"};
  r1.form = DisclosureForm::kRange;
  r1.max_privacy_loss = 0.9;
  p.AddRule(r1);
  PolicyRule r2 = r1;
  r2.id = "b";
  r2.form = DisclosureForm::kExact;
  r2.max_privacy_loss = 0.4;
  p.AddRule(r2);
  const Disclosure d = p.Evaluate("t", "c", "any", "x", PurposeLattice::Default());
  EXPECT_EQ(d.form, DisclosureForm::kExact);
  // Budget combines conservatively (min).
  EXPECT_DOUBLE_EQ(d.max_privacy_loss, 0.4);
  EXPECT_EQ(d.rule_ids.size(), 2u);
}

TEST(PolicyTest, RecipientFilter) {
  PrivacyPolicy p("o", {});
  PolicyRule r;
  r.id = "only-cdc";
  r.item = {"t", "c"};
  r.purposes = {"*"};
  r.recipients = {"cdc"};
  r.form = DisclosureForm::kExact;
  p.AddRule(r);
  const PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_TRUE(p.Evaluate("t", "c", "any", "cdc", lattice).allowed());
  EXPECT_FALSE(p.Evaluate("t", "c", "any", "who", lattice).allowed());
}

TEST(PolicyTest, XmlRoundTrip) {
  const PrivacyPolicy p = HmoPolicy();
  const std::string xml_text = xml::Serialize(*p.ToXml());
  auto back = PrivacyPolicy::Parse(xml_text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->owner(), "HMO1");
  ASSERT_EQ(back->rules().size(), 3u);
  EXPECT_EQ(back->rules()[0].form, DisclosureForm::kAggregate);
  EXPECT_TRUE(back->rules()[2].deny);
}

TEST(PolicyTest, ParseConditionExpression) {
  auto p = PrivacyPolicy::Parse(R"(
    <policy owner="o">
      <rule id="r"><item table="t" column="c"/>
        <form>exact</form>
        <condition>year = 2001</condition>
      </rule>
    </policy>)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_NE(p->rules()[0].condition, nullptr);
  EXPECT_EQ(p->rules()[0].condition->ToString(), "(year = 2001)");
}

TEST(PolicyTest, ParseErrors) {
  EXPECT_FALSE(PrivacyPolicy::Parse("<policy><rule/></policy>").ok());
  EXPECT_FALSE(PrivacyPolicy::Parse("<notpolicy/>").ok());
  EXPECT_FALSE(PrivacyPolicy::Parse(
                   R"(<policy owner="o"><rule><item table="t" column="c"/></rule></policy>)")
                   .ok());  // grant missing form
}

// --- Preferences ---

TEST(PreferenceTest, EvaluateAndMeet) {
  UserPreference pref("patient-1");
  PreferenceRule rule;
  rule.data_category = "dob";
  rule.acceptable_purposes = {"research"};
  rule.max_form = DisclosureForm::kRange;
  rule.max_privacy_loss = 0.2;
  pref.AddRule(rule);
  const PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_EQ(pref.Evaluate("dob", "research", lattice).form, DisclosureForm::kRange);
  EXPECT_FALSE(pref.Evaluate("dob", "marketing", lattice).allowed());
  EXPECT_FALSE(pref.Evaluate("name", "research", lattice).allowed());

  Disclosure policy_verdict;
  policy_verdict.form = DisclosureForm::kExact;
  policy_verdict.max_privacy_loss = 0.9;
  const Disclosure met = Meet(policy_verdict, pref.Evaluate("dob", "research", lattice));
  EXPECT_EQ(met.form, DisclosureForm::kRange);
  EXPECT_DOUBLE_EQ(met.max_privacy_loss, 0.2);
}

TEST(PreferenceTest, AcceptsRejectsOverPermissiveRule) {
  UserPreference pref("p");
  PreferenceRule rule;
  rule.data_category = "dob";
  rule.acceptable_purposes = {"healthcare"};
  rule.max_form = DisclosureForm::kRange;
  rule.max_privacy_loss = 0.5;
  pref.AddRule(rule);

  PolicyRule grant;
  grant.item = {"t", "dob"};
  grant.purposes = {"healthcare"};
  grant.recipients = {"*"};
  grant.form = DisclosureForm::kExact;  // more revealing than the subject allows
  grant.max_privacy_loss = 0.4;
  const PurposeLattice lattice = PurposeLattice::Default();
  EXPECT_FALSE(pref.Accepts(grant, lattice));
  grant.form = DisclosureForm::kRange;
  EXPECT_TRUE(pref.Accepts(grant, lattice));
}

TEST(PreferenceTest, XmlRoundTrip) {
  UserPreference pref("patient-9");
  PreferenceRule rule;
  rule.data_category = "diagnosis";
  rule.acceptable_purposes = {"research", "treatment"};
  rule.max_form = DisclosureForm::kGeneralized;
  rule.max_privacy_loss = 0.6;
  pref.AddRule(rule);
  auto back = UserPreference::Parse(xml::Serialize(*pref.ToXml()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->subject_id(), "patient-9");
  ASSERT_EQ(back->rules().size(), 1u);
  EXPECT_EQ(back->rules()[0].acceptable_purposes.size(), 2u);
  EXPECT_EQ(back->rules()[0].max_form, DisclosureForm::kGeneralized);
}

// --- Privacy views ---

TEST(PrivacyViewTest, FormForAndApply) {
  relational::Table base(
      relational::Schema{relational::Column{"name", relational::ColumnType::kString},
                         relational::Column{"rate", relational::ColumnType::kDouble},
                         relational::Column{"year", relational::ColumnType::kInt64}});
  ASSERT_TRUE(base.AppendRow({relational::Value::Str("a"), relational::Value::Real(0.8),
                              relational::Value::Int(2001)})
                  .ok());
  ASSERT_TRUE(base.AppendRow({relational::Value::Str("b"), relational::Value::Real(0.6),
                              relational::Value::Int(1999)})
                  .ok());

  PrivacyView view("pub", "compliance");
  view.AddVisibleColumn("year");
  view.AddSensitiveColumn({"rate", DisclosureForm::kAggregate});
  auto filter = relational::ParseExpression("year = 2001");
  ASSERT_TRUE(filter.ok());
  view.set_row_filter(*filter);

  EXPECT_EQ(view.FormFor("year"), DisclosureForm::kExact);
  EXPECT_EQ(view.FormFor("rate"), DisclosureForm::kAggregate);
  EXPECT_EQ(view.FormFor("name"), DisclosureForm::kDenied);

  auto applied = view.Apply(base);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->num_rows(), 1u);            // row filter
  EXPECT_EQ(applied->schema().num_columns(), 2u);  // name dropped
  EXPECT_FALSE(applied->schema().Contains("name"));
}

TEST(PrivacyViewTest, XmlRoundTrip) {
  PrivacyView view("pub", "compliance");
  view.AddVisibleColumn("year");
  view.AddSensitiveColumn({"rate", DisclosureForm::kRange});
  auto back = PrivacyView::Parse(xml::Serialize(*view.ToXml()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name(), "pub");
  EXPECT_EQ(back->FormFor("rate"), DisclosureForm::kRange);
}

// --- Policy store ---

TEST(PolicyStoreTest, EffectiveDisclosureMeetsPreferences) {
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(HmoPolicy()).ok());

  // Without preferences: test is exact.
  Disclosure d = store.EffectiveDisclosure("HMO1", "compliance", "test", "research", "x");
  EXPECT_EQ(d.form, DisclosureForm::kExact);

  // A subject preference caps `test` at range.
  UserPreference pref("subject");
  PreferenceRule rule;
  rule.data_category = "test";
  rule.acceptable_purposes = {"*"};
  rule.max_form = DisclosureForm::kRange;
  rule.max_privacy_loss = 0.1;
  pref.AddRule(rule);
  ASSERT_TRUE(store.AddPreference(std::move(pref)).ok());
  d = store.EffectiveDisclosure("HMO1", "compliance", "test", "research", "x");
  EXPECT_EQ(d.form, DisclosureForm::kRange);
}

TEST(PolicyStoreTest, UnknownOwnerDefaultsToDeny) {
  PolicyStore store;
  EXPECT_FALSE(
      store.EffectiveDisclosure("nobody", "t", "c", "research", "x").allowed());
}

TEST(PolicyStoreTest, DuplicateRegistrationFails) {
  PolicyStore store;
  ASSERT_TRUE(store.AddPolicy(HmoPolicy()).ok());
  EXPECT_FALSE(store.AddPolicy(HmoPolicy()).ok());
}

}  // namespace
}  // namespace policy
}  // namespace piye

namespace piye {
namespace policy {
namespace {

// --- P3P shredding (server-centric architecture of Agrawal et al. [7]) ---

TEST(P3pShredderTest, ShredsIntoThreeTables) {
  relational::Catalog catalog;
  ASSERT_TRUE(PolicyShredder::Shred(HmoPolicy(), &catalog).ok());
  EXPECT_TRUE(catalog.HasTable("p3p_rules"));
  EXPECT_TRUE(catalog.HasTable("p3p_rule_purposes"));
  EXPECT_TRUE(catalog.HasTable("p3p_rule_recipients"));
  EXPECT_EQ(PolicyShredder::RuleCount(catalog, "HMO1"), 3u);
  EXPECT_EQ(PolicyShredder::RuleCount(catalog, "nobody"), 0u);
}

TEST(P3pShredderTest, RelationalEvaluationMatchesDirectEvaluation) {
  const PrivacyPolicy policy = HmoPolicy();
  relational::Catalog catalog;
  ASSERT_TRUE(PolicyShredder::Shred(policy, &catalog).ok());
  const PurposeLattice lattice = PurposeLattice::Default();
  const char* columns[] = {"rate", "test", "nothing"};
  const char* purposes[] = {"research", "healthcare", "marketing", "any",
                            "unknown-purpose"};
  const char* recipients[] = {"cdc", "who"};
  for (const char* column : columns) {
    for (const char* purpose : purposes) {
      for (const char* recipient : recipients) {
        const Disclosure direct =
            policy.Evaluate("compliance", column, purpose, recipient, lattice);
        auto shredded = PolicyShredder::Evaluate(catalog, "HMO1", "compliance",
                                                 column, purpose, recipient, lattice);
        ASSERT_TRUE(shredded.ok()) << shredded.status().ToString();
        EXPECT_EQ(shredded->form, direct.form)
            << column << "/" << purpose << "/" << recipient;
        EXPECT_DOUBLE_EQ(shredded->max_privacy_loss, direct.max_privacy_loss)
            << column << "/" << purpose << "/" << recipient;
        // Same rules fire (order-insensitive).
        std::set<std::string> a(direct.rule_ids.begin(), direct.rule_ids.end());
        std::set<std::string> b(shredded->rule_ids.begin(), shredded->rule_ids.end());
        EXPECT_EQ(a, b) << column << "/" << purpose << "/" << recipient;
      }
    }
  }
}

TEST(P3pShredderTest, MultipleOwnersShareTables) {
  relational::Catalog catalog;
  ASSERT_TRUE(PolicyShredder::Shred(HmoPolicy(), &catalog).ok());
  PrivacyPolicy other("HMO2", {});
  PolicyRule rule;
  rule.id = "r";
  rule.item = {"*", "rate"};
  rule.purposes = {"*"};
  rule.recipients = {"*"};
  rule.form = DisclosureForm::kExact;
  other.AddRule(rule);
  ASSERT_TRUE(PolicyShredder::Shred(other, &catalog).ok());
  const PurposeLattice lattice = PurposeLattice::Default();
  // HMO1's aggregate-only rule is not contaminated by HMO2's exact grant.
  auto d1 = PolicyShredder::Evaluate(catalog, "HMO1", "compliance", "rate",
                                     "research", "x", lattice);
  auto d2 = PolicyShredder::Evaluate(catalog, "HMO2", "compliance", "rate",
                                     "research", "x", lattice);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->form, DisclosureForm::kAggregate);
  EXPECT_EQ(d2->form, DisclosureForm::kExact);
}

TEST(P3pShredderTest, EmptyCatalogDeniesByDefault) {
  relational::Catalog catalog;
  auto d = PolicyShredder::Evaluate(catalog, "o", "t", "c", "p", "r",
                                    PurposeLattice::Default());
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->allowed());
}

TEST(P3pShredderTest, ShredRejectsAnonymousPolicy) {
  relational::Catalog catalog;
  EXPECT_FALSE(PolicyShredder::Shred(PrivacyPolicy("", {}), &catalog).ok());
}

}  // namespace
}  // namespace policy
}  // namespace piye

// Deterministic chaos/soak harness for the overload-resilience subsystem
// (ISSUE: admission control, deadline propagation, cooperative cancellation).
// Drives the mediation engine through saturating bursts, closed-loop
// fair-share contention, hung-source cancellations, and seeded fault-storm
// soak rounds, asserting the invariants that make overload behaviour safe:
//
//   * conservation: every offered query is admitted, shed, or cancelled —
//     nothing is lost, and shed/cancelled queries charge zero privacy budget
//     and write no history;
//   * correctness under load: every admitted answer is byte-identical to the
//     serial (unloaded) execution of the same query;
//   * fairness: under sustained saturation each requester achieves at least
//     half of its fair share of goodput;
//   * responsiveness: an expired or cancelled query returns promptly (≤ 2×
//     its deadline) instead of riding out source hangs;
//   * stability: the engine drains to idle after every storm.
//
// Required to pass under PIYE_SANITIZE=thread (scripts/sanitize.sh); the
// workload is sleep-dominated (injected source latency), so the bounds hold
// under sanitizer slowdowns.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "core/scenario.h"
#include "mediator/engine.h"
#include "relational/xml_bridge.h"
#include "source/remote_source.h"
#include "xml/parser.h"

namespace piye {
namespace {

std::string TableBytes(const relational::Table& t) {
  return xml::Serialize(*relational::TableToXml(t, "t"), /*indent=*/-1);
}

std::vector<std::unique_ptr<source::RemoteSource>> BuildSources(
    size_t n, uint64_t latency_micros) {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  for (size_t i = 0; i < n; ++i) {
    auto tables = core::ClinicalScenario::MakePatientTables(20, 0.3, 100 + i);
    auto src = std::make_unique<source::RemoteSource>(
        "hospital" + std::to_string(i), "patients", std::move(tables.hospital),
        /*seed=*/i + 1);
    core::ClinicalScenario::ApplyPatientPolicies(src.get());
    // The chaos requesters act with the analyst role: the load-shaping under
    // test is admission's, not the access-control layer's.
    for (const char* requester : {"alice", "bob"}) {
      EXPECT_TRUE(src->mutable_rbac()->AssignRole(requester, "analyst").ok());
    }
    if (latency_micros > 0) {
      source::RemoteSource::FaultInjection faults;
      faults.latency_micros = latency_micros;
      src->set_fault_injection(faults);
    }
    sources.push_back(std::move(src));
  }
  return sources;
}

std::unique_ptr<mediator::MediationEngine> BuildEngine(
    const std::vector<std::unique_ptr<source::RemoteSource>>& sources,
    mediator::MediationEngine::Options options) {
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  auto engine = std::make_unique<mediator::MediationEngine>(options);
  for (const auto& src : sources) {
    EXPECT_TRUE(engine->RegisterSource(src.get()).ok());
  }
  EXPECT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
  return engine;
}

source::PiqlQuery MakeQuery() {
  auto q = source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">"
      "<select>patient_id</select><select>sex</select></query>");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

void ExpectDrainedToIdle(mediator::MediationEngine* engine) {
  const auto health = engine->Health();
  EXPECT_EQ(health.admission_inflight, 0u);
  EXPECT_EQ(health.admission_queue_depth, 0u);
}

// A saturating open-loop burst: 2 requesters fire 20 concurrent queries each
// at an engine with 4 slots and an 8-deep queue. Asserts conservation, the
// shed contract (kResourceExhausted, zero budget, no history), byte-identity
// of every admitted answer with the serial execution, and drain-to-idle.
TEST(ChaosSoakTest, SaturatingBurstConservesChargesAndAnswersExactly) {
  auto sources = BuildSources(3, /*latency_micros=*/3000);

  // Serial, unloaded reference: what every admitted answer must look like.
  mediator::MediationEngine::Options serial_options;
  serial_options.worker_threads = 0;
  auto serial = BuildEngine(sources, serial_options);
  mediator::QueryOptions serial_qopts;
  serial_qopts.coalesce = false;
  auto reference = serial->Execute(MakeQuery(), serial_qopts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string reference_bytes = TableBytes(reference->table());
  const double loss_per_release = reference->combined_privacy_loss;

  mediator::MediationEngine::Options options;
  options.worker_threads = 4;
  options.admission.max_inflight = 4;
  options.admission.max_queue_depth = 8;
  auto engine = BuildEngine(sources, options);

  constexpr int kPerRequester = 20;
  const std::string requesters[] = {"alice", "bob"};
  std::atomic<int> ok_count{0}, shed_count{0}, other_count{0};
  std::vector<std::string> ok_bytes[2];
  std::mutex ok_mu;
  std::vector<std::thread> threads;
  for (int i = 0; i < 2 * kPerRequester; ++i) {
    threads.emplace_back([&, i] {
      mediator::QueryOptions qopts;
      qopts.requester = requesters[i % 2];  // interleaved arrival by requester
      qopts.coalesce = false;               // every call is a real execution
      auto result = engine->Execute(MakeQuery(), qopts);
      if (result.ok()) {
        ok_count.fetch_add(1);
        std::lock_guard<std::mutex> lock(ok_mu);
        ok_bytes[i % 2].push_back(TableBytes(result->table()));
      } else if (result.status().IsResourceExhausted()) {
        shed_count.fetch_add(1);
        EXPECT_NE(result.status().message().find("retry after"),
                  std::string::npos);
      } else {
        ADD_FAILURE() << "unexpected status: " << result.status().ToString();
        other_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Conservation: admitted + shed == offered, both as observed by callers
  // and as counted by the engine.
  EXPECT_EQ(ok_count.load() + shed_count.load() + other_count.load(),
            2 * kPerRequester);
  const auto health = engine->Health();
  EXPECT_EQ(health.admitted_total + health.shed_total,
            static_cast<uint64_t>(2 * kPerRequester));
  EXPECT_EQ(health.admitted_total, static_cast<uint64_t>(ok_count.load()));
  EXPECT_EQ(health.shed_total, static_cast<uint64_t>(shed_count.load()));
  EXPECT_GE(ok_count.load(), 4);  // at least the initial capacity got through
  EXPECT_GE(shed_count.load(), 1);  // the burst did overload the engine

  // Shed queries charged zero budget and wrote no history: the books must
  // account exactly the released answers, nothing more.
  EXPECT_EQ(engine->history()->size(), static_cast<size_t>(ok_count.load()));
  const double total_budget = engine->history()->CumulativeLoss("alice") +
                              engine->history()->CumulativeLoss("bob");
  EXPECT_NEAR(total_budget, ok_count.load() * loss_per_release, 1e-6);

  // Every admitted answer is byte-identical to the unloaded serial answer.
  for (const auto& per_requester : ok_bytes) {
    for (const auto& bytes : per_requester) {
      EXPECT_EQ(bytes, reference_bytes);
    }
  }
  ExpectDrainedToIdle(engine.get());
}

// Closed-loop contention: 4 symmetric workers per requester hammer an engine
// with 2 slots for a fixed window, retrying after sheds. Each requester must
// achieve at least half of its fair share of the goodput (fair share = half
// the total), and goodput must not collapse under the overload.
TEST(ChaosSoakTest, FairShareGoodputUnderSustainedSaturation) {
  auto sources = BuildSources(3, /*latency_micros=*/2000);
  mediator::MediationEngine::Options options;
  options.worker_threads = 4;
  options.admission.max_inflight = 2;
  options.admission.max_queue_depth = 2;
  auto engine = BuildEngine(sources, options);

  const std::string requesters[] = {"alice", "bob"};
  std::atomic<int> goodput[2] = {{0}, {0}};
  const auto window_end =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&, w] {
      mediator::QueryOptions qopts;
      qopts.requester = requesters[w % 2];
      qopts.coalesce = false;
      while (std::chrono::steady_clock::now() < window_end) {
        auto result = engine->Execute(MakeQuery(), qopts);
        if (result.ok()) {
          goodput[w % 2].fetch_add(1);
        } else if (result.status().IsResourceExhausted()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        } else {
          ADD_FAILURE() << result.status().ToString();
          return;
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  const int total = goodput[0].load() + goodput[1].load();
  EXPECT_GE(total, 10) << "goodput collapsed under saturation";
  // Fair share for two equal-weight requesters is total/2; each must get at
  // least half of that even while the engine sheds their excess offers.
  for (int r = 0; r < 2; ++r) {
    EXPECT_GE(goodput[r].load(), total / 4)
        << requesters[r] << " starved: " << goodput[r].load() << " of " << total;
  }
  ExpectDrainedToIdle(engine.get());
}

// A query whose token deadline has already passed is rejected at admission:
// kDeadlineExceeded, zero fragments dispatched, nothing charged or recorded.
TEST(ChaosSoakTest, PreExpiredDeadlineRejectedBeforeAnyDispatch) {
  auto sources = BuildSources(3, /*latency_micros=*/0);
  mediator::MediationEngine::Options options;
  options.worker_threads = 4;
  auto engine = BuildEngine(sources, options);

  mediator::QueryOptions qopts;
  qopts.cancel = CancelToken().WithDeadline(std::chrono::steady_clock::now() -
                                            std::chrono::milliseconds(1));
  auto result = engine->Execute(MakeQuery(), qopts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
  EXPECT_EQ(engine->metrics()->counter("engine.fragment_attempts"), 0u);
  EXPECT_EQ(engine->history()->size(), 0u);
  EXPECT_EQ(engine->Health().cancelled_total, 1u);
  ExpectDrainedToIdle(engine.get());
}

// Against sources that hang far past any deadline, a whole-query deadline
// must bound the caller's wait: the engine returns within 2× the deadline,
// charges nothing, and the hung fragments die cooperatively.
TEST(ChaosSoakTest, ExpiredDeadlineReturnsWithinTwiceTheDeadline) {
  auto sources = BuildSources(3, /*latency_micros=*/0);
  for (auto& src : sources) {
    source::RemoteSource::FaultInjection faults;
    faults.drop_rate = 1.0;
    faults.hang_micros = 2'000'000;  // 2 s hang vs a 150 ms deadline
    faults.seed = 7;
    src->set_fault_injection(faults);
  }
  mediator::MediationEngine::Options options;
  options.worker_threads = 4;
  auto engine = BuildEngine(sources, options);

  constexpr auto kDeadline = std::chrono::milliseconds(150);
  mediator::QueryOptions qopts;
  qopts.cancel = CancelToken().WithTimeout(kDeadline);
  const auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(MakeQuery(), qopts);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
  EXPECT_LE(elapsed, 2 * kDeadline);
  EXPECT_EQ(engine->history()->size(), 0u);
  ExpectDrainedToIdle(engine.get());
}

// Explicit caller cancellation behaves the same way: prompt return with
// kCancelled, zero budget, no breaker blame (covered in admission_test), and
// the engine keeps serving afterwards.
TEST(ChaosSoakTest, CancellationStopsHungFragmentsAndEngineStaysServable) {
  auto sources = BuildSources(3, /*latency_micros=*/0);
  for (auto& src : sources) {
    source::RemoteSource::FaultInjection faults;
    faults.drop_rate = 1.0;
    faults.hang_micros = 2'000'000;
    faults.seed = 11;
    src->set_fault_injection(faults);
  }
  mediator::MediationEngine::Options options;
  options.worker_threads = 4;
  auto engine = BuildEngine(sources, options);

  CancelSource cancel;
  mediator::QueryOptions qopts;
  qopts.cancel = cancel.token();
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.RequestCancel();
  });
  const auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(MakeQuery(), qopts);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));  // not the 2 s hang
  EXPECT_EQ(engine->history()->size(), 0u);

  // The engine is still fully servable: heal the sources and query again.
  for (auto& src : sources) {
    src->set_fault_injection(source::RemoteSource::FaultInjection{});
  }
  auto after = engine->Execute(MakeQuery(), mediator::QueryOptions{});
  EXPECT_TRUE(after.ok()) << after.status().ToString();
  ExpectDrainedToIdle(engine.get());
}

// Seeded soak: repeated burst rounds against sources with seeded transient
// fault storms. Every round must preserve conservation (admitted + shed +
// cancelled == offered), the shed/cancel zero-charge contract, and drain to
// idle; the history must account exactly the released answers.
TEST(ChaosSoakTest, SeededFaultStormSoakHoldsInvariantsEveryRound) {
  auto sources = BuildSources(3, /*latency_micros=*/1000);
  mediator::MediationEngine::Options options;
  options.worker_threads = 4;
  options.admission.max_inflight = 3;
  options.admission.max_queue_depth = 4;
  auto engine = BuildEngine(sources, options);

  constexpr int kRounds = 3;
  constexpr int kOfferedPerRound = 16;
  uint64_t offered_total = 0;
  std::atomic<int> ok_total{0};

  for (int round = 0; round < kRounds; ++round) {
    // A different (but seeded, reproducible) fault storm each round.
    for (size_t s = 0; s < sources.size(); ++s) {
      source::RemoteSource::FaultInjection faults;
      faults.latency_micros = 1000;
      faults.error_rate = 0.25;
      faults.seed = 1000 + static_cast<uint64_t>(round) * 10 + s;
      sources[s]->set_fault_injection(faults);
    }
    std::vector<std::thread> threads;
    for (int i = 0; i < kOfferedPerRound; ++i) {
      threads.emplace_back([&, i] {
        mediator::QueryOptions qopts;
        qopts.requester = (i % 2 == 0) ? "alice" : "bob";
        qopts.coalesce = false;
        qopts.max_retries = 2;
        auto result = engine->Execute(MakeQuery(), qopts);
        if (result.ok()) {
          ok_total.fetch_add(1);
        } else {
          // Under a fault storm the only legitimate failures are load sheds
          // and full transport outages — never an unexplained error.
          EXPECT_TRUE(result.status().IsResourceExhausted() ||
                      result.status().IsUnavailable())
              << result.status().ToString();
        }
      });
    }
    for (auto& t : threads) t.join();
    offered_total += kOfferedPerRound;

    const auto health = engine->Health();
    EXPECT_EQ(health.admitted_total + health.shed_total + health.cancelled_total,
              offered_total)
        << "round " << round;
    ExpectDrainedToIdle(engine.get());
  }
  // The books account exactly the released answers across the whole soak.
  EXPECT_EQ(engine->history()->size(), static_cast<size_t>(ok_total.load()));
}

}  // namespace
}  // namespace piye

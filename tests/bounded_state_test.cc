// Bounded-state durability suite: the background snapshotter racing live
// traffic (TSan target), the rotate-kill-point matrix (a kill at any step of
// the compact/rotate sequence fails closed and recovers to the exact
// pre-compaction budget decisions), cold-requester spill with fail-closed
// fault-in, and the durability fields of the health report.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/trace.h"
#include "core/scenario.h"
#include "mediator/admission.h"
#include "mediator/engine.h"
#include "persist/state_log.h"
#include "source/remote_source.h"

namespace piye {
namespace {

namespace fs = std::filesystem;
using mediator::MediationEngine;
using mediator::QueryOptions;
using persist::RotateKillPoint;

std::string TestDir(const std::string& name) {
  const fs::path p = fs::path(testing::TempDir()) / ("piye_bounded_" + name);
  fs::remove_all(p);
  return p.string();
}

std::vector<std::unique_ptr<source::RemoteSource>> BuildSources(size_t n) {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  for (size_t i = 0; i < n; ++i) {
    auto tables = core::ClinicalScenario::MakePatientTables(20, 0.3, 100 + i);
    auto src = std::make_unique<source::RemoteSource>(
        "hospital" + std::to_string(i), "patients", std::move(tables.hospital),
        /*seed=*/i + 1);
    core::ClinicalScenario::ApplyPatientPolicies(src.get());
    // These tests drive many distinct requester names; the wildcard user
    // grants them all the analyst role in one RBAC row.
    EXPECT_TRUE(src->mutable_rbac()->AssignRole("*", "analyst").ok());
    sources.push_back(std::move(src));
  }
  return sources;
}

std::unique_ptr<MediationEngine> BuildEngine(
    const std::vector<std::unique_ptr<source::RemoteSource>>& sources,
    MediationEngine::Options options) {
  auto engine = std::make_unique<MediationEngine>(options);
  for (const auto& src : sources) {
    EXPECT_TRUE(engine->RegisterSource(src.get()).ok());
  }
  EXPECT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
  return engine;
}

MediationEngine::Options DurableOptions() {
  MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  options.worker_threads = 0;
  return options;
}

source::PiqlQuery MakeQuery(const std::string& body,
                            const std::string& requester = "analyst") {
  auto q = source::PiqlQuery::Parse("<query requester=\"" + requester +
                                    "\" purpose=\"research\" maxLoss=\"0.95\">" +
                                    body + "</query>");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// --- Snapshotter vs. live traffic (run under TSan in CI) ---

TEST(BoundedStateTest, SnapshotterRacesLiveTraffic) {
  const std::string dir = TestDir("race");
  auto sources = BuildSources(2);
  auto options = DurableOptions();
  options.worker_threads = 2;
  options.sync_wal = false;
  options.snapshot_every_records = 2;  // keep the snapshotter busy
  auto engine = BuildEngine(sources, options);
  ASSERT_TRUE(engine->Recover(dir).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto query = MakeQuery(
            "<select>patient_id</select><select>diagnosis</select>",
            "analyst" + std::to_string(t) + "-" + std::to_string(i % 3));
        auto r = engine->Execute(query, QueryOptions{});
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  // One more thread hammers the snapshot trigger and the health report
  // while traffic flows.
  workers.emplace_back([&] {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(engine->TriggerSnapshot(/*wait=*/false).ok());
      auto health = engine->Health();
      EXPECT_TRUE(health.persistence_enabled);
    }
  });
  for (auto& w : workers) w.join();

  ASSERT_TRUE(engine->TriggerSnapshot(/*wait=*/true).ok());
  const auto floors_before = engine->history()->CumulativeLosses();
  const size_t size_before = engine->history()->size();
  engine.reset();

  auto revived = BuildEngine(sources, options);
  ASSERT_TRUE(revived->Recover(dir).ok());
  EXPECT_EQ(revived->history()->size(), size_before);
  // Budget floors are monotone across recovery: no requester's durable
  // cumulative loss may come back lower than what the live engine had
  // acknowledged.
  for (const auto& [requester, loss] : floors_before) {
    auto recovered = revived->history()->DurableCumulativeLoss(requester);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_GE(*recovered, loss) << requester;
  }
}

// --- The rotate-kill matrix: a crash at any step of the compact/rotate
// sequence trips the fail-closed latch and recovers to the exact
// pre-compaction refusal state. ---

class RotateKillMatrixTest : public testing::TestWithParam<RotateKillPoint> {};

TEST_P(RotateKillMatrixTest, KillMidCompactionFailsClosedAndRecoversExactly) {
  const RotateKillPoint kp = GetParam();
  const std::string dir =
      TestDir(std::string("rotate_") + persist::RotateKillPointName(kp));
  auto sources = BuildSources(2);
  auto options = DurableOptions();
  options.snapshot_every_records = 1000;  // rotations only when triggered
  const auto query = MakeQuery("<select>patient_id</select><select>diagnosis</select>");

  auto engine = BuildEngine(sources, options);
  ASSERT_TRUE(engine->Recover(dir).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
  }
  const double durable_loss = engine->history()->CumulativeLoss("analyst");
  ASSERT_GT(durable_loss, 0.0);

  // The process "dies" at this step of the compaction sequence.
  ASSERT_TRUE(engine->ArmRotateKillPoint(kp).ok());
  const Status rotated = engine->TriggerSnapshot(/*wait=*/true);
  ASSERT_FALSE(rotated.ok()) << persist::RotateKillPointName(kp);

  // Satellite regression pin: a durability failure *during* compaction must
  // trip the same refuse-all-queries latch as an append failure.
  EXPECT_TRUE(engine->persistence_failed());
  auto refused = engine->Execute(query, QueryOptions{});
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable())
      << refused.status().ToString();
  engine.reset();

  // Recovery lands on whichever generation the kill left durable; either
  // way the budget floors are exactly the pre-compaction values.
  auto revived = BuildEngine(sources, options);
  ASSERT_TRUE(revived->Recover(dir).ok());
  EXPECT_DOUBLE_EQ(revived->history()->CumulativeLoss("analyst"),
                   durable_loss);
  EXPECT_EQ(revived->history()->size(), 3u);
  auto r = revived->Execute(query, QueryOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(revived->history()->CumulativeLoss("analyst"), durable_loss);
}

INSTANTIATE_TEST_SUITE_P(
    AllRotateKillPoints, RotateKillMatrixTest,
    testing::Values(RotateKillPoint::kBeforeFloors,
                    RotateKillPoint::kAfterFloors,
                    RotateKillPoint::kAfterSnapshotTmp,
                    RotateKillPoint::kAfterSnapshotRename,
                    RotateKillPoint::kAfterNewWal),
    [](const testing::TestParamInfo<RotateKillPoint>& info) {
      std::string name = persist::RotateKillPointName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- Cold-requester spill and fault-in ---

TEST(BoundedStateTest, SpilledRequesterIsStillRefusedOnReturn) {
  const std::string dir = TestDir("spill");
  auto sources = BuildSources(2);
  auto options = DurableOptions();
  options.hot_requesters = 1;  // spill aggressively
  options.snapshot_every_records = 1000;
  // Any released query exhausts the budget: the first release is admitted
  // (cumulative 0 < budget), every later one must be refused.
  options.max_cumulative_loss = 1e-9;

  auto engine = BuildEngine(sources, options);
  ASSERT_TRUE(engine->Recover(dir).ok());

  const auto cold = MakeQuery("<select>patient_id</select><select>diagnosis</select>", "cold-analyst");
  ASSERT_TRUE(engine->Execute(cold, QueryOptions{}).ok());
  auto exhausted = engine->Execute(cold, QueryOptions{});
  ASSERT_FALSE(exhausted.ok());
  EXPECT_TRUE(exhausted.status().IsPrivacyViolation());

  // Touch two warmer requesters, then rotate: the cold requester's floor is
  // folded into the floor index and its resident state evicted.
  ASSERT_TRUE(
      engine->Execute(MakeQuery("<select>patient_id</select><select>diagnosis</select>", "warm-a"),
                      QueryOptions{})
          .ok());
  ASSERT_TRUE(
      engine->Execute(MakeQuery("<select>patient_id</select><select>diagnosis</select>", "warm-b"),
                      QueryOptions{})
          .ok());
  ASSERT_TRUE(engine->TriggerSnapshot(/*wait=*/true).ok());
  EXPECT_LE(engine->history()->resident_requesters(), 1u);
  EXPECT_GE(engine->history()->spilled_total(), 2u);
  // Resident-only view proves the requester really is gone from memory...
  EXPECT_DOUBLE_EQ(engine->history()->CumulativeLoss("cold-analyst"), 0.0);

  // ...and the returning query faults the floor back in before the budget
  // decision: still refused, never default-allowed.
  auto returned = engine->Execute(cold, QueryOptions{});
  ASSERT_FALSE(returned.ok());
  EXPECT_TRUE(returned.status().IsPrivacyViolation())
      << returned.status().ToString();
  EXPECT_GE(engine->history()->faulted_in_total(), 1u);
}

TEST(BoundedStateTest, FloorLoadFailureRefusesTheQuery) {
  const std::string dir = TestDir("fail_closed_fault_in");
  auto sources = BuildSources(2);
  auto engine = BuildEngine(sources, DurableOptions());
  ASSERT_TRUE(engine->Recover(dir).ok());

  // Simulate a sick floor index: every lookup for a non-resident requester
  // fails. The query must be refused, not admitted with a fresh budget.
  engine->history()->set_floor_provider(
      [](const std::string&) -> Result<std::optional<double>> {
        return Status::Internal("injected floor-index read failure");
      });
  auto refused = engine->Execute(
      MakeQuery("<select>patient_id</select><select>diagnosis</select>", "never-seen"), QueryOptions{});
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable()) << refused.status().ToString();
}

// --- Health report durability fields (satellite) ---

TEST(BoundedStateTest, HealthReportsDurabilityState) {
  const std::string dir = TestDir("health");
  auto sources = BuildSources(2);
  auto options = DurableOptions();
  options.snapshot_every_records = 1000;
  auto engine = BuildEngine(sources, options);
  ASSERT_TRUE(engine->Recover(dir).ok());
  const auto query = MakeQuery("<select>patient_id</select><select>diagnosis</select>");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
  }
  auto health = engine->Health();
  EXPECT_TRUE(health.persistence_enabled);
  EXPECT_GT(health.wal_live_bytes, 0u);
  EXPECT_EQ(health.records_since_snapshot, 3u);
  EXPECT_GE(health.snapshots_total, 1u);  // the recovery fold-in
  EXPECT_NE(health.last_snapshot_age_ms, UINT64_MAX);
  EXPECT_EQ(health.resident_requesters, 1u);

  ASSERT_TRUE(engine->TriggerSnapshot(/*wait=*/true).ok());
  health = engine->Health();
  EXPECT_EQ(health.records_since_snapshot, 0u);
  EXPECT_GE(health.snapshots_total, 2u);
  EXPECT_GE(health.floor_index_requesters, 1u);

  engine.reset();
  auto revived = BuildEngine(sources, options);
  ASSERT_TRUE(revived->Recover(dir).ok());
  health = revived->Health();
  EXPECT_NE(health.last_recovery_replay_ms, UINT64_MAX);
}

// --- The rotation/Record dirty-bit race (regression) ---
//
// Found by the 200k-requester soak: a Record landing between a rotation's
// DirtyFloors capture and its mark-clean step must stay dirty. A blanket
// mark-all-clean wiped the bit, the spiller then evicted the entry as
// "clean", and the returning requester faulted in the stale (lower)
// durable floor — handing back budget and allowing a release the oracle
// refused.

TEST(BoundedStateTest, RecordDuringRotationSurvivesMarkCleanAndSpill) {
  mediator::QueryHistory history(
      mediator::QueryHistory::Options{/*shards=*/4,
                                      /*max_resident_entries=*/64});
  mediator::HistoryEntry first;
  first.requester = "racer";
  first.aggregated_privacy_loss = 1.6;
  first.released = true;
  history.Record(first);

  // Rotation captures the dirty floors...
  const auto captured = history.DirtyFloors();
  ASSERT_EQ(captured.size(), 1u);
  ASSERT_DOUBLE_EQ(captured.at("racer"), 1.6);

  // ...and while it persists them, another release lands.
  mediator::HistoryEntry racing = first;
  racing.aggregated_privacy_loss = 0.8;
  history.Record(racing);

  // The rotation finishes and cleans exactly what it persisted.
  history.MarkClean(captured);

  // The raced-in loss is still dirty: the next rotation must persist 2.4.
  const auto still_dirty = history.DirtyFloors();
  ASSERT_EQ(still_dirty.size(), 1u);
  EXPECT_DOUBLE_EQ(still_dirty.at("racer"), 2.4);

  // And the spiller must evict a clean bystander over the dirty racer —
  // the racer's durable floor is stale.
  mediator::HistoryEntry bystander;
  bystander.requester = "bystander";
  bystander.aggregated_privacy_loss = 0.1;
  bystander.released = true;
  history.Record(bystander);
  history.MarkClean({{"bystander", 0.1}});  // bystander's floor: durable
  ASSERT_EQ(history.SpillColdest(/*max_resident=*/1), 1u);
  EXPECT_DOUBLE_EQ(history.CumulativeLoss("racer"), 2.4);
  EXPECT_DOUBLE_EQ(history.CumulativeLoss("bystander"), 0.0);  // spilled

  // Once the newer floor is durable, cleaning and spilling proceed.
  history.MarkClean(still_dirty);
  EXPECT_TRUE(history.DirtyFloors().empty());
}

// --- Recovery must not resurrect a spilled requester below its durable
// floor (regression) ---
//
// Found by the 200k soak: the entry ring keeps the last N entries regardless
// of which requester states are resident, so a snapshot can hold a *subset*
// of a spilled requester's entries. Recovery restored the requester from
// that partial ring sum, and the resident state then shadowed the (higher)
// durable floor on every later budget decision — quietly handing budget
// back. Recover must raise every restored requester to its indexed floor.

TEST(BoundedStateTest, RecoveryDoesNotResurrectSpilledRequesterBelowFloor) {
  const std::string dir = TestDir("ring_resurrection");
  auto sources = BuildSources(2);
  auto options = DurableOptions();
  options.snapshot_every_records = 1000;  // rotations only when triggered
  options.hot_requesters = 1;             // spill aggressively
  options.max_resident_history = 2;       // the ring forgets old entries fast

  auto engine = BuildEngine(sources, options);
  ASSERT_TRUE(engine->Recover(dir).ok());
  const auto victim_query = MakeQuery(
      "<select>patient_id</select><select>diagnosis</select>", "victim");
  ASSERT_TRUE(engine->Execute(victim_query, QueryOptions{}).ok());
  ASSERT_TRUE(engine->Execute(victim_query, QueryOptions{}).ok());
  const double full_loss = engine->history()->CumulativeLoss("victim");
  ASSERT_GT(full_loss, 0.0);
  // A warmer requester pushes the victim's first entry out of the ring and
  // outranks it in the spill order.
  ASSERT_TRUE(
      engine->Execute(MakeQuery("<select>patient_id</select><select>diagnosis</select>", "warm"),
                      QueryOptions{})
          .ok());

  // Rotation 1 makes the victim's floor durable and spills it; rotation 2
  // writes a snapshot in which the victim's budget state is absent but one
  // of its ring entries (half its loss) is still present.
  ASSERT_TRUE(engine->TriggerSnapshot(/*wait=*/true).ok());
  EXPECT_DOUBLE_EQ(engine->history()->CumulativeLoss("victim"), 0.0);
  ASSERT_TRUE(engine->TriggerSnapshot(/*wait=*/true).ok());
  engine.reset();

  // Recover with spill disabled so the restored state stays resident — the
  // exact configuration in which a partial restore shadows the floor index
  // (a spilled-then-faulted-in requester would be healed by the fault-in;
  // a resident one never consults the index again).
  auto revived_options = options;
  revived_options.hot_requesters = 0;
  auto revived = BuildEngine(sources, revived_options);
  ASSERT_TRUE(revived->Recover(dir).ok());
  auto recovered = revived->history()->DurableCumulativeLoss("victim");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_DOUBLE_EQ(*recovered, full_loss);
}

// --- Admission state is bounded too (sharded buckets, queue sweep) ---

TEST(BoundedStateTest, AdmissionTracksABoundedRequesterSet) {
  mediator::AdmissionConfig config;
  // One token per nanosecond: a bucket is back at full burst by the next
  // clock tick, so the sweep sees every previous requester as evictable.
  config.tokens_per_second = 1e9;
  config.bucket_burst = 1e9;
  config.bucket_shards = 4;
  trace::MetricsRegistry metrics;
  mediator::AdmissionController admission(config, &metrics);
  CancelSource cancel;
  for (int i = 0; i < 4096; ++i) {
    auto permit = admission.Admit("requester" + std::to_string(i),
                                  cancel.token());
    ASSERT_TRUE(permit.ok());
  }
  // Every bucket but the untouched-since-last-sweep tail is sweepable; the
  // tracked set must stay far below the requester count.
  EXPECT_LT(admission.tracked_buckets(), 2048u);
  EXPECT_EQ(admission.tracked_requesters(), 0u);  // nobody ever queued
}

}  // namespace
}  // namespace piye

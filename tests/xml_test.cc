#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "xml/loose_path.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/path.h"

namespace piye {
namespace xml {
namespace {

TEST(XmlNodeTest, BuildAndAccess) {
  auto root = XmlNode::Element("patients");
  XmlNode* p = root->AddElement("patient");
  p->SetAttr("id", "7");
  p->AddElementWithText("dob", "1970-01-02");
  EXPECT_EQ(root->ChildElements().size(), 1u);
  EXPECT_EQ(p->ChildText("dob"), "1970-01-02");
  EXPECT_EQ(*p->GetAttr("id"), "7");
  EXPECT_FALSE(p->HasAttr("nope"));
  EXPECT_EQ(root->CountElements(), 3u);
}

TEST(XmlNodeTest, SetAttrOverwrites) {
  auto n = XmlNode::Element("a");
  n->SetAttr("k", "1");
  n->SetAttr("k", "2");
  EXPECT_EQ(*n->GetAttr("k"), "2");
  EXPECT_EQ(n->attrs().size(), 1u);
  n->RemoveAttr("k");
  EXPECT_FALSE(n->HasAttr("k"));
}

TEST(XmlNodeTest, CloneIsDeep) {
  auto root = XmlNode::Element("r");
  root->AddElementWithText("c", "v");
  auto copy = root->Clone();
  copy->FirstChild("c")->mutable_children().clear();
  EXPECT_EQ(root->ChildText("c"), "v");
  EXPECT_EQ(copy->ChildText("c"), "");
}

TEST(XmlParserTest, ParsesNestedDocument) {
  const char* text = R"(<?xml version="1.0"?>
    <!-- comment -->
    <hospital name="general">
      <patient id="1"><dob>1970-01-02</dob></patient>
      <patient id="2"><dob>1980-03-04</dob></patient>
    </hospital>)";
  auto doc = Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root().name(), "hospital");
  EXPECT_EQ(*doc->root().GetAttr("name"), "general");
  EXPECT_EQ(doc->root().Children("patient").size(), 2u);
}

TEST(XmlParserTest, SelfClosingAndEntities) {
  auto doc = Parse(R"(<a x="1 &amp; 2"><b/><c>&lt;tag&gt;</c></a>)");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc->root().GetAttr("x"), "1 & 2");
  EXPECT_EQ(doc->root().ChildText("c"), "<tag>");
}

TEST(XmlParserTest, RejectsMalformed) {
  EXPECT_FALSE(Parse("<a><b></a>").ok());
  EXPECT_FALSE(Parse("<a>").ok());
  EXPECT_FALSE(Parse("<a></a><b></b>").ok());
  EXPECT_FALSE(Parse("no tags").ok());
  EXPECT_FALSE(Parse("<a attr=oops></a>").ok());
}

TEST(XmlParserTest, RoundTrip) {
  const char* text = R"(<r a="v&quot;q"><c>text &amp; more</c><d/></r>)";
  auto doc = Parse(text);
  ASSERT_TRUE(doc.ok());
  const std::string serialized = Serialize(doc->root(), 2);
  auto doc2 = Parse(serialized);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString();
  EXPECT_EQ(doc2->root().ChildText("c"), "text & more");
  EXPECT_EQ(*doc2->root().GetAttr("a"), "v\"q");
}

TEST(XmlParserTest, CompactSerialization) {
  auto doc = Parse("<a><b>x</b></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Serialize(doc->root(), -1), "<a><b>x</b></a>");
}

class XmlPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = Parse(R"(
      <db>
        <patient id="1"><dob>1970</dob><visit><dob>nested</dob></visit></patient>
        <patient id="2"><dob>1980</dob></patient>
        <staff id="3"><dob>1990</dob></staff>
      </db>)");
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    doc_ = std::move(doc).value();
  }
  XmlDocument doc_;
};

TEST_F(XmlPathTest, ChildAxis) {
  auto path = XmlPath::Parse("/db/patient/dob");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->Evaluate(doc_.root()).size(), 2u);
}

TEST_F(XmlPathTest, DescendantAxis) {
  auto path = XmlPath::Parse("//dob");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->Evaluate(doc_.root()).size(), 4u);
}

TEST_F(XmlPathTest, DescendantUnderStep) {
  auto path = XmlPath::Parse("/db/patient//dob");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->Evaluate(doc_.root()).size(), 3u);
}

TEST_F(XmlPathTest, Wildcard) {
  auto path = XmlPath::Parse("/db/*");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->Evaluate(doc_.root()).size(), 3u);
}

TEST_F(XmlPathTest, AttrPredicate) {
  auto path = XmlPath::Parse("//patient[@id='2']/dob");
  ASSERT_TRUE(path.ok());
  auto hits = path->Evaluate(doc_.root());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->InnerText(), "1980");
}

TEST_F(XmlPathTest, HasAttrPredicate) {
  auto path = XmlPath::Parse("//*[@id]");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->Evaluate(doc_.root()).size(), 3u);
}

TEST_F(XmlPathTest, ChildEqPredicate) {
  auto path = XmlPath::Parse("/db/patient[dob='1970']");
  ASSERT_TRUE(path.ok());
  auto hits = path->Evaluate(doc_.root());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(*hits[0]->GetAttr("id"), "1");
}

TEST_F(XmlPathTest, ParseErrors) {
  EXPECT_FALSE(XmlPath::Parse("patient/dob").ok());
  EXPECT_FALSE(XmlPath::Parse("//a[").ok());
  EXPECT_FALSE(XmlPath::Parse("//a[b=c]").ok());  // unquoted value
  EXPECT_FALSE(XmlPath::Parse("//").ok());
}

TEST_F(XmlPathTest, ToStringNormalizes) {
  auto path = XmlPath::Parse("//patient[@id='2']/dob");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->ToString(), "//patient[@id='2']/dob");
}

// --- Loose matching ---

TEST(LooseNameMatcherTest, ExactAndCaseInsensitive) {
  LooseNameMatcher m;
  EXPECT_DOUBLE_EQ(m.NameSimilarity("dob", "DOB"), 1.0);
}

TEST(LooseNameMatcherTest, AcronymMatchesExpansion) {
  LooseNameMatcher m;
  EXPECT_GE(m.NameSimilarity("dob", "dateOfBirth"), 0.9);
  EXPECT_GE(m.NameSimilarity("dateOfBirth", "dob"), 0.9);
}

TEST(LooseNameMatcherTest, SynonymsScoreHigh) {
  LooseNameMatcher m;
  m.AddSynonyms({"sex", "gender"});
  EXPECT_DOUBLE_EQ(m.NameSimilarity("sex", "gender"), 1.0);
  EXPECT_DOUBLE_EQ(m.NameSimilarity("patientSex", "patientGender"), 1.0);
}

TEST(LooseNameMatcherTest, UnrelatedScoreLow) {
  LooseNameMatcher m;
  EXPECT_LT(m.NameSimilarity("diagnosis", "zip"), 0.5);
}

TEST(LooseNameMatcherTest, SynonymGroupsMerge) {
  LooseNameMatcher m;
  m.AddSynonyms({"dob", "birthdate"});
  m.AddSynonyms({"birthdate", "birthday"});
  EXPECT_DOUBLE_EQ(m.NameSimilarity("dob", "birthday"), 1.0);
}

TEST(LoosePathMatcherTest, FindsApproximateSteps) {
  auto doc = Parse(R"(
    <db>
      <patient><dob>1970</dob></patient>
      <patient><dob>1980</dob></patient>
    </db>)");
  ASSERT_TRUE(doc.ok());
  auto path = XmlPath::Parse("//patient//dateOfBirth");
  ASSERT_TRUE(path.ok());
  LoosePathMatcher matcher((LooseNameMatcher()), 0.7);
  const auto hits = matcher.Find(*path, doc->root());
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_GE(hits[0].score, 0.9);
  EXPECT_EQ(hits[0].node->name(), "dob");
}

TEST(LoosePathMatcherTest, ThresholdFiltersNoise) {
  auto doc = Parse("<db><zip>12345</zip></db>");
  ASSERT_TRUE(doc.ok());
  auto path = XmlPath::Parse("//diagnosis");
  ASSERT_TRUE(path.ok());
  LoosePathMatcher matcher((LooseNameMatcher()), 0.7);
  EXPECT_TRUE(matcher.Find(*path, doc->root()).empty());
}

}  // namespace
}  // namespace xml
}  // namespace piye

namespace piye {
namespace xml {
namespace {

TEST(LoosePathMatcherTest, PredicatesStayExactUnderLooseNames) {
  auto doc = Parse(R"(
    <db>
      <patient id="1"><dob>1970</dob></patient>
      <patient id="2"><dob>1980</dob></patient>
    </db>)");
  ASSERT_TRUE(doc.ok());
  auto path = XmlPath::Parse("//patient[@id='2']//dateOfBirth");
  ASSERT_TRUE(path.ok());
  LoosePathMatcher matcher((LooseNameMatcher()), 0.7);
  const auto hits = matcher.Find(*path, doc->root());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node->InnerText(), "1980");
}

TEST(LoosePathMatcherTest, ScoreIsMinOverSteps) {
  auto doc = Parse("<db><patientRec><dob>x</dob></patientRec></db>");
  ASSERT_TRUE(doc.ok());
  // "patient" vs "patientRec" scores below 0.95; "dateOfBirth" vs "dob" is
  // 0.95; the match score is the weakest step.
  auto path = XmlPath::Parse("//patient/dateOfBirth");
  ASSERT_TRUE(path.ok());
  LoosePathMatcher matcher((LooseNameMatcher()), 0.5);
  const auto hits = matcher.Find(*path, doc->root());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_LT(hits[0].score, 0.95);
  EXPECT_GE(hits[0].score, 0.5);
}

}  // namespace
}  // namespace xml
}  // namespace piye

namespace piye {
namespace xml {
namespace {

// ---------------------------------------------------------------------------
// Parser resource limits: fragment results cross a trust boundary (they come
// from autonomous remote sources), so the parser must reject oversized and
// pathologically nested input instead of exhausting memory or the stack.
// ---------------------------------------------------------------------------

std::string DeeplyNested(size_t depth) {
  std::string s;
  for (size_t i = 0; i < depth; ++i) s += "<a>";
  s += "x";
  for (size_t i = 0; i < depth; ++i) s += "</a>";
  return s;
}

TEST(ParserLimitsTest, DepthAtLimitParses) {
  ParseLimits limits;
  limits.max_depth = 16;
  auto doc = Parse(DeeplyNested(16), limits);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
}

TEST(ParserLimitsTest, DepthBeyondLimitRejected) {
  ParseLimits limits;
  limits.max_depth = 16;
  auto doc = Parse(DeeplyNested(17), limits);
  ASSERT_FALSE(doc.ok());
  EXPECT_TRUE(doc.status().IsParseError()) << doc.status().ToString();
  EXPECT_NE(doc.status().message().find("depth limit"), std::string::npos);
}

TEST(ParserLimitsTest, DefaultDepthLimitStopsAdversarialNesting) {
  // 100k levels would overflow the stack without the guard; the default
  // limit turns it into a clean parse error.
  auto doc = Parse(DeeplyNested(100'000));
  ASSERT_FALSE(doc.ok());
  EXPECT_TRUE(doc.status().IsParseError());
}

TEST(ParserLimitsTest, OversizedInputRejectedUpFront) {
  ParseLimits limits;
  limits.max_input_bytes = 64;
  const std::string big = "<a>" + std::string(128, 'x') + "</a>";
  auto doc = Parse(big, limits);
  ASSERT_FALSE(doc.ok());
  EXPECT_TRUE(doc.status().IsInvalidArgument()) << doc.status().ToString();
}

TEST(ParserLimitsTest, SizeLimitZeroMeansUnlimited) {
  ParseLimits limits;
  limits.max_input_bytes = 0;
  const std::string big = "<a>" + std::string(1 << 20, 'x') + "</a>";
  ASSERT_TRUE(Parse(big, limits).ok());
}

// Seeded malformed-input fuzz loop: mutate well-formed documents with random
// byte edits and feed them to the parser. The parser may accept or reject
// each mutant, but it must never crash, hang, or blow the limits — and it
// must stay deterministic (same seed ⇒ same verdicts).
TEST(ParserFuzzTest, SeededMutationsNeverCrashAndAreDeterministic) {
  const std::string seeds[] = {
      "<patients><patient id=\"7\"><dob>1970-01-02</dob>"
      "<name>A &amp; B</name></patient></patients>",
      "<r a='1' b=\"2\"><!-- c --><x/><y>t&lt;u</y></r>",
      "<?xml version=\"1.0\"?><a><b><c><d>deep</d></c></b></a>",
  };
  ParseLimits limits;
  limits.max_input_bytes = 4096;
  limits.max_depth = 32;
  constexpr uint64_t kFuzzSeed = 0xF00DFACE;
  constexpr int kRounds = 2000;

  auto run = [&](std::vector<bool>* verdicts) {
    Rng rng(kFuzzSeed);
    for (int round = 0; round < kRounds; ++round) {
      std::string input = seeds[rng.NextBounded(3)];
      const size_t edits = 1 + rng.NextBounded(8);
      for (size_t e = 0; e < edits; ++e) {
        const size_t at = rng.NextBounded(input.size());
        switch (rng.NextBounded(3)) {
          case 0:  // flip to a structural character
            input[at] = "<>&\"'/="[rng.NextBounded(7)];
            break;
          case 1:  // random byte
            input[at] = static_cast<char>(rng.NextBounded(256));
            break;
          default:  // truncate
            input.resize(at + 1);
            break;
        }
      }
      auto doc = Parse(input, limits);
      verdicts->push_back(doc.ok());
      if (!doc.ok()) {
        // Rejections must carry a positioned message, not an empty status.
        EXPECT_FALSE(doc.status().message().empty());
      }
    }
  };
  std::vector<bool> first, second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);  // same seed, same verdicts
}

}  // namespace
}  // namespace xml
}  // namespace piye

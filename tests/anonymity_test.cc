#include <gtest/gtest.h>

#include <memory>

#include "anonymity/hierarchy.h"
#include "anonymity/kanonymity.h"
#include "common/rng.h"

namespace piye {
namespace anonymity {
namespace {

using relational::Column;
using relational::ColumnType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

TEST(NumericHierarchyTest, LevelsWidenThenSuppress) {
  const NumericHierarchy h(0.0, {10.0, 50.0});
  EXPECT_EQ(h.max_level(), 3u);
  EXPECT_EQ(h.Generalize(Value::Int(37), 0), "37");
  EXPECT_EQ(h.Generalize(Value::Int(37), 1), "[30,40)");
  EXPECT_EQ(h.Generalize(Value::Int(37), 2), "[0,50)");
  EXPECT_EQ(h.Generalize(Value::Int(37), 3), "*");
  EXPECT_EQ(h.Generalize(Value::Null(), 1), "NULL");
}

TEST(CategoricalHierarchyTest, ChainsAndUnknowns) {
  CategoricalHierarchy h(2);
  ASSERT_TRUE(h.AddChain("cardiology", {"internal-medicine", "medical"}).ok());
  ASSERT_TRUE(h.AddChain("oncology", {"internal-medicine"}).ok());  // padded
  EXPECT_EQ(h.Generalize(Value::Str("cardiology"), 1), "internal-medicine");
  EXPECT_EQ(h.Generalize(Value::Str("cardiology"), 2), "medical");
  EXPECT_EQ(h.Generalize(Value::Str("oncology"), 2), "internal-medicine");
  EXPECT_EQ(h.Generalize(Value::Str("cardiology"), 3), "*");
  EXPECT_EQ(h.Generalize(Value::Str("unknown"), 1), "*");
  EXPECT_FALSE(h.AddChain("cardiology", {"x"}).ok());
  EXPECT_FALSE(h.AddChain("new", {}).ok());
}

Table MicrodataFixture() {
  // age, zip, disease — the classic k-anonymity example shape.
  Table t(Schema{Column{"age", ColumnType::kInt64},
                 Column{"zip", ColumnType::kInt64},
                 Column{"disease", ColumnType::kString}});
  const int64_t ages[] = {25, 27, 26, 28, 45, 47, 46, 48, 65, 67, 66, 68};
  const int64_t zips[] = {13053, 13068, 13053, 13068, 14853, 14850,
                          14853, 14850, 13053, 13068, 13053, 13068};
  const char* diseases[] = {"flu",    "flu",    "cancer", "cancer",
                            "cancer", "flu",    "flu",    "cancer",
                            "flu",    "cancer", "flu",    "cancer"};
  for (int i = 0; i < 12; ++i) {
    (void)t.AppendRow(Row{Value::Int(ages[i]), Value::Int(zips[i]),
                          Value::Str(diseases[i])});
  }
  return t;
}

std::vector<QuasiIdentifier> MicrodataQis() {
  return {
      {"age", std::make_shared<NumericHierarchy>(0.0, std::vector<double>{10.0, 50.0})},
      {"zip",
       std::make_shared<NumericHierarchy>(0.0, std::vector<double>{100.0, 10000.0})},
  };
}

TEST(KAnonymityCheckTest, RawDataIsNotAnonymous) {
  const Table t = MicrodataFixture();
  auto k2 = IsKAnonymous(t, {"age", "zip"}, 2);
  ASSERT_TRUE(k2.ok());
  EXPECT_FALSE(*k2);
  auto k1 = IsKAnonymous(t, {"age", "zip"}, 1);
  ASSERT_TRUE(k1.ok());
  EXPECT_TRUE(*k1);
}

TEST(KAnonymizerTest, FindsMinimalGeneralization) {
  const Table t = MicrodataFixture();
  const KAnonymizer anonymizer(MicrodataQis(), 4);
  auto result = anonymizer.Anonymize(t);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->suppressed_rows, 0u);
  auto check = IsKAnonymous(result->table, {"age", "zip"}, 4);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(*check);
  // The chosen level vector must be minimal: total height of the solution
  // found first by the breadth-first lattice sweep.
  size_t height = 0;
  for (size_t l : result->levels) height += l;
  EXPECT_LE(height, 3u);
}

TEST(KAnonymizerTest, HigherKNeedsMoreGeneralization) {
  const Table t = MicrodataFixture();
  const KAnonymizer a2(MicrodataQis(), 2);
  const KAnonymizer a6(MicrodataQis(), 6);
  auto r2 = a2.Anonymize(t);
  auto r6 = a6.Anonymize(t);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r6.ok());
  EXPECT_LE(a2.GeneralizationLoss(r2->levels), a6.GeneralizationLoss(r6->levels));
}

TEST(KAnonymizerTest, ImpossibleKFails) {
  const Table t = MicrodataFixture();
  const KAnonymizer anonymizer(MicrodataQis(), 13);  // more than rows
  EXPECT_TRUE(anonymizer.Anonymize(t).status().IsPrivacyViolation());
}

TEST(KAnonymizerTest, SuppressionAllowsLowerLevels) {
  Table t = MicrodataFixture();
  // One outlier that otherwise forces heavy generalization.
  (void)t.AppendRow(Row{Value::Int(99), Value::Int(99999), Value::Str("flu")});
  const KAnonymizer strict(MicrodataQis(), 4, /*max_suppression=*/0);
  const KAnonymizer relaxed(MicrodataQis(), 4, /*max_suppression=*/1);
  auto rs = strict.Anonymize(t);
  auto rr = relaxed.Anonymize(t);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rr.ok());
  EXPECT_LE(relaxed.GeneralizationLoss(rr->levels),
            strict.GeneralizationLoss(rs->levels));
  EXPECT_LE(rr->suppressed_rows, 1u);
}

TEST(MetricsTest, DiscernibilityAndClassSizes) {
  const Table t = MicrodataFixture();
  const KAnonymizer anonymizer(MicrodataQis(), 4);
  auto result = anonymizer.Anonymize(t);
  ASSERT_TRUE(result.ok());
  auto metrics = ComputeMetrics(result->table, {"age", "zip"});
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics->min_class_size, 4u);
  EXPECT_GE(metrics->avg_class_size, 4.0);
  // Discernibility of a table of 12 rows lies in [12, 144].
  EXPECT_GE(metrics->discernibility, 12.0);
  EXPECT_LE(metrics->discernibility, 144.0);
}

TEST(LDiversityTest, DetectsHomogeneousClasses) {
  Table t(Schema{Column{"q", ColumnType::kString}, Column{"s", ColumnType::kString}});
  (void)t.AppendRow(Row{Value::Str("a"), Value::Str("flu")});
  (void)t.AppendRow(Row{Value::Str("a"), Value::Str("flu")});
  (void)t.AppendRow(Row{Value::Str("b"), Value::Str("flu")});
  (void)t.AppendRow(Row{Value::Str("b"), Value::Str("hiv")});
  auto l2 = IsLDiverse(t, {"q"}, "s", 2);
  ASSERT_TRUE(l2.ok());
  EXPECT_FALSE(*l2);  // class "a" is homogeneous — attribute disclosure
  auto l1 = IsLDiverse(t, {"q"}, "s", 1);
  ASSERT_TRUE(l1.ok());
  EXPECT_TRUE(*l1);
}

TEST(MondrianTest, PartitionsAreKAnonymous) {
  Rng rng(3);
  Table t(Schema{Column{"age", ColumnType::kInt64},
                 Column{"zip", ColumnType::kInt64},
                 Column{"disease", ColumnType::kString}});
  for (int i = 0; i < 200; ++i) {
    (void)t.AppendRow(Row{Value::Int(20 + static_cast<int64_t>(rng.NextBounded(60))),
                          Value::Int(10000 + static_cast<int64_t>(rng.NextBounded(90000))),
                          Value::Str(i % 2 == 0 ? "flu" : "cancer")});
  }
  const Mondrian mondrian({"age", "zip"}, 5);
  auto result = mondrian.Anonymize(t);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), t.num_rows());
  auto check = IsKAnonymous(*result, {"age", "zip"}, 5);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(*check);
}

TEST(MondrianTest, BeatsSingleDimensionLatticeOnUtility) {
  Rng rng(5);
  Table t(Schema{Column{"age", ColumnType::kInt64},
                 Column{"zip", ColumnType::kInt64}});
  for (int i = 0; i < 300; ++i) {
    (void)t.AppendRow(Row{Value::Int(20 + static_cast<int64_t>(rng.NextBounded(60))),
                          Value::Int(10000 + static_cast<int64_t>(rng.NextBounded(90000)))});
  }
  const Mondrian mondrian({"age", "zip"}, 4);
  auto mondrian_result = mondrian.Anonymize(t);
  ASSERT_TRUE(mondrian_result.ok());
  const KAnonymizer lattice(
      {{"age", std::make_shared<NumericHierarchy>(0.0, std::vector<double>{20.0, 40.0})},
       {"zip",
        std::make_shared<NumericHierarchy>(0.0, std::vector<double>{20000.0, 50000.0})}},
      4);
  auto lattice_result = lattice.Anonymize(t);
  ASSERT_TRUE(lattice_result.ok());
  auto m_mondrian = ComputeMetrics(*mondrian_result, {"age", "zip"});
  auto m_lattice =
      ComputeMetrics(lattice_result->table, {"age", "zip"},
                     lattice_result->suppressed_rows);
  ASSERT_TRUE(m_mondrian.ok());
  ASSERT_TRUE(m_lattice.ok());
  // Multidimensional cuts produce smaller classes ⇒ lower discernibility.
  EXPECT_LT(m_mondrian->discernibility, m_lattice->discernibility);
}

TEST(MondrianTest, RejectsNonNumericQi) {
  Table t(Schema{Column{"name", ColumnType::kString}});
  (void)t.AppendRow(Row{Value::Str("x")});
  const Mondrian mondrian({"name"}, 1);
  EXPECT_FALSE(mondrian.Anonymize(t).ok());
}

}  // namespace
}  // namespace anonymity
}  // namespace piye

#include <gtest/gtest.h>

#include "access/rbac.h"

namespace piye {
namespace access {
namespace {

class RbacTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddRole("staff").ok());
    ASSERT_TRUE(db_.AddRole("nurse", {"staff"}).ok());
    ASSERT_TRUE(db_.AddRole("doctor", {"nurse"}).ok());
    ASSERT_TRUE(db_.Grant("staff", Action::kSelect, "patients", "name").ok());
    ASSERT_TRUE(db_.Grant("nurse", Action::kSelect, "patients", "*").ok());
    ASSERT_TRUE(db_.Grant("doctor", Action::kUpdate, "patients", "diagnosis").ok());
    ASSERT_TRUE(db_.AssignRole("alice", "doctor").ok());
    ASSERT_TRUE(db_.AssignRole("bob", "staff").ok());
  }
  RbacDatabase db_;
};

TEST_F(RbacTest, DirectGrant) {
  EXPECT_TRUE(db_.IsAuthorized("bob", Action::kSelect, "patients", "name"));
}

TEST_F(RbacTest, DeniedWithoutGrant) {
  EXPECT_FALSE(db_.IsAuthorized("bob", Action::kSelect, "patients", "diagnosis"));
  EXPECT_FALSE(db_.IsAuthorized("bob", Action::kUpdate, "patients", "name"));
  EXPECT_FALSE(db_.IsAuthorized("carol", Action::kSelect, "patients", "name"));
}

TEST_F(RbacTest, InheritanceIsTransitive) {
  // alice (doctor) inherits nurse and staff grants.
  EXPECT_TRUE(db_.IsAuthorized("alice", Action::kSelect, "patients", "name"));
  EXPECT_TRUE(db_.IsAuthorized("alice", Action::kSelect, "patients", "diagnosis"));
  EXPECT_TRUE(db_.IsAuthorized("alice", Action::kUpdate, "patients", "diagnosis"));
}

TEST_F(RbacTest, WildcardGrants) {
  ASSERT_TRUE(db_.AddRole("admin").ok());
  ASSERT_TRUE(db_.Grant("admin", Action::kDelete, "*", "*").ok());
  ASSERT_TRUE(db_.AssignRole("root", "admin").ok());
  EXPECT_TRUE(db_.IsAuthorized("root", Action::kDelete, "anything", "at_all"));
}

TEST_F(RbacTest, EffectiveRoles) {
  const auto roles = db_.EffectiveRoles("alice");
  EXPECT_EQ(roles.size(), 3u);
  EXPECT_TRUE(roles.count("staff"));
  EXPECT_TRUE(db_.EffectiveRoles("stranger").empty());
}

TEST_F(RbacTest, WildcardUserAssignsRoleToEveryone) {
  // Assigning a role to the user "*" makes every requester — including names
  // never mentioned before — hold it, without a per-user assignment row.
  ASSERT_TRUE(db_.AssignRole("*", "staff").ok());
  EXPECT_TRUE(db_.IsAuthorized("carol", Action::kSelect, "patients", "name"));
  EXPECT_TRUE(db_.IsAuthorized("requester-999999", Action::kSelect, "patients", "name"));
  // The wildcard only adds the assigned role; it does not widen the grant.
  EXPECT_FALSE(db_.IsAuthorized("carol", Action::kSelect, "patients", "diagnosis"));
  // Explicit assignments still compose on top of the wildcard.
  EXPECT_TRUE(db_.IsAuthorized("alice", Action::kUpdate, "patients", "diagnosis"));
  EXPECT_TRUE(db_.EffectiveRoles("carol").count("staff"));
}

TEST_F(RbacTest, InvalidConfigurations) {
  EXPECT_FALSE(db_.AddRole("staff").ok());                       // duplicate
  EXPECT_FALSE(db_.AddRole("x", {"missing-parent"}).ok());       // bad parent
  EXPECT_FALSE(db_.AssignRole("u", "missing-role").ok());        // bad role
  EXPECT_FALSE(db_.Grant("missing-role", Action::kSelect, "t", "c").ok());
}

TEST(MlsTest, BellLaPadula) {
  MlsLabeling labels;
  labels.SetLabel("patients", "diagnosis", SecurityLevel::kConfidential);
  labels.SetLabel("patients", "*", SecurityLevel::kInternal);

  // No read up.
  EXPECT_FALSE(labels.CanRead(SecurityLevel::kInternal, "patients", "diagnosis"));
  EXPECT_TRUE(labels.CanRead(SecurityLevel::kSecret, "patients", "diagnosis"));
  // Table-wide fallback label.
  EXPECT_TRUE(labels.CanRead(SecurityLevel::kInternal, "patients", "name"));
  EXPECT_FALSE(labels.CanRead(SecurityLevel::kPublic, "patients", "name"));
  // Unlabeled objects are public.
  EXPECT_TRUE(labels.CanRead(SecurityLevel::kPublic, "other", "x"));
  // No write down.
  EXPECT_FALSE(labels.CanWrite(SecurityLevel::kSecret, "patients", "diagnosis"));
  EXPECT_TRUE(labels.CanWrite(SecurityLevel::kInternal, "patients", "diagnosis"));
}

TEST(MlsTest, LevelNames) {
  EXPECT_STREQ(SecurityLevelToString(SecurityLevel::kPublic), "public");
  EXPECT_STREQ(SecurityLevelToString(SecurityLevel::kSecret), "secret");
}

}  // namespace
}  // namespace access
}  // namespace piye

#include <gtest/gtest.h>

#include <set>

#include "match/mediated_schema.h"
#include "match/schema_matcher.h"
#include "source/remote_source.h"
#include "xml/parser.h"

namespace piye {
namespace match {
namespace {

using relational::Column;
using relational::ColumnType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

Table HospitalTable() {
  Table t(Schema{Column{"patient_id", ColumnType::kString},
                 Column{"dob", ColumnType::kString},
                 Column{"zip", ColumnType::kInt64},
                 Column{"diagnosis", ColumnType::kString}});
  (void)t.AppendRow(Row{Value::Str("P1"), Value::Str("1970-01-02"), Value::Int(13053),
                        Value::Str("diabetes")});
  (void)t.AppendRow(Row{Value::Str("P2"), Value::Str("1982-03-04"), Value::Int(14850),
                        Value::Str("asthma")});
  (void)t.AppendRow(Row{Value::Str("P3"), Value::Str("1955-05-06"), Value::Int(13068),
                        Value::Str("diabetes")});
  return t;
}

Table PharmacyTable() {
  Table t(Schema{Column{"pid", ColumnType::kString},
                 Column{"dateOfBirth", ColumnType::kString},
                 Column{"postcode", ColumnType::kInt64},
                 Column{"drug", ColumnType::kString}});
  (void)t.AppendRow(Row{Value::Str("P1"), Value::Str("1970-01-02"), Value::Int(13053),
                        Value::Str("metformin")});
  (void)t.AppendRow(Row{Value::Str("P4"), Value::Str("1991-07-08"), Value::Int(14850),
                        Value::Str("albuterol")});
  return t;
}

SchemaMatcher MakeMatcher(double threshold = 0.6) {
  SchemaMatcher::Options options;
  options.threshold = threshold;
  return SchemaMatcher(options, source::DefaultClinicalNameMatcher());
}

TEST(ColumnSketchTest, FeaturesReflectContent) {
  const Table t = HospitalTable();
  auto id_sketch = ColumnSketch::Build({"h", "t", "patient_id"}, t, "key", true);
  auto zip_sketch = ColumnSketch::Build({"h", "t", "zip"}, t, "key", true);
  ASSERT_TRUE(id_sketch.ok());
  ASSERT_TRUE(zip_sketch.ok());
  EXPECT_GT(id_sketch->alpha_ratio, 0.0);
  EXPECT_GT(zip_sketch->digit_ratio, 0.9);
  EXPECT_DOUBLE_EQ(id_sketch->distinct_ratio, 1.0);
  EXPECT_TRUE(id_sketch->value_filter.has_value());
}

TEST(ColumnSketchTest, HiddenNameIsHashed) {
  const Table t = HospitalTable();
  auto sketch = ColumnSketch::Build({"h", "t", "diagnosis"}, t, "key", false);
  ASSERT_TRUE(sketch.ok());
  EXPECT_FALSE(sketch->name_public);
  EXPECT_NE(sketch->ref.column, "diagnosis");
  EXPECT_EQ(sketch->ref.column.substr(0, 2), "h_");
}

TEST(SchemaMatcherTest, MatchesHeterogeneousNames) {
  const SchemaMatcher matcher = MakeMatcher();
  auto matches = matcher.MatchTables("hospital", "patients", HospitalTable(),
                                     "pharmacy", "rx", PharmacyTable());
  ASSERT_TRUE(matches.ok());
  // Expected correspondences: patient_id~pid, dob~dateOfBirth, zip~postcode.
  auto find = [&](const std::string& a, const std::string& b) {
    for (const auto& m : *matches) {
      if (m.a.column == a && m.b.column == b) return true;
    }
    return false;
  };
  EXPECT_TRUE(find("patient_id", "pid"));
  EXPECT_TRUE(find("dob", "dateOfBirth"));
  EXPECT_TRUE(find("zip", "postcode"));
  // diagnosis should NOT match drug strongly enough.
  EXPECT_FALSE(find("diagnosis", "drug"));
}

TEST(SchemaMatcherTest, OneToOneAssignment) {
  const SchemaMatcher matcher = MakeMatcher();
  auto matches = matcher.MatchTables("a", "t", HospitalTable(), "b", "t",
                                     HospitalTable());
  ASSERT_TRUE(matches.ok());
  std::set<std::string> used_a, used_b;
  for (const auto& m : *matches) {
    EXPECT_TRUE(used_a.insert(m.a.column).second);
    EXPECT_TRUE(used_b.insert(m.b.column).second);
  }
  EXPECT_EQ(matches->size(), 4u);  // identical tables: every column maps
}

TEST(SchemaMatcherTest, PrivacyPreservingMatchUsesInstancesWhenNamesHidden) {
  const Table hospital = HospitalTable();
  const Table pharmacy = PharmacyTable();
  // Both sides hide names; the shared-key value filters still link the id
  // columns via overlapping values.
  auto a = ColumnSketch::Build({"h", "t", "patient_id"}, hospital, "shared", false);
  auto b = ColumnSketch::Build({"p", "t", "pid"}, pharmacy, "shared", false);
  auto unrelated = ColumnSketch::Build({"p", "t", "drug"}, pharmacy, "shared", false);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(unrelated.ok());
  const SchemaMatcher matcher = MakeMatcher(0.5);
  EXPECT_GT(matcher.Score(*a, *b), matcher.Score(*a, *unrelated));
  EXPECT_GT(matcher.Score(*a, *b), 0.5);
}

// --- Mediated schema ---

std::vector<ColumnSketch> BuildAllSketches() {
  std::vector<ColumnSketch> sketches;
  const Table hospital = HospitalTable();
  const Table pharmacy = PharmacyTable();
  for (const auto& col : hospital.schema().columns()) {
    auto s = ColumnSketch::Build({"hospital", "patients", col.name}, hospital, "k", true);
    EXPECT_TRUE(s.ok());
    sketches.push_back(*s);
  }
  for (const auto& col : pharmacy.schema().columns()) {
    auto s = ColumnSketch::Build({"pharmacy", "rx", col.name}, pharmacy, "k", true);
    EXPECT_TRUE(s.ok());
    sketches.push_back(*s);
  }
  return sketches;
}

TEST(MediatedSchemaGeneratorTest, ClustersMatchedColumns) {
  const MediatedSchemaGenerator generator(MakeMatcher());
  auto schema = generator.Generate(BuildAllSketches());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  // 8 source columns collapse into 5 mediated attributes
  // (id, dob, zip merged across sources; diagnosis and drug stay separate).
  EXPECT_EQ(schema->attributes().size(), 5u);
  const MediatedAttribute* dob = nullptr;
  for (const auto& attr : schema->attributes()) {
    if (attr.mappings.size() == 2 &&
        (attr.name == "dob" || attr.name == "dateOfBirth")) {
      dob = &attr;
    }
  }
  ASSERT_NE(dob, nullptr);
  EXPECT_EQ(dob->mappings.size(), 2u);
}

TEST(MediatedSchemaTest, LookupsAndXml) {
  const MediatedSchemaGenerator generator(MakeMatcher());
  auto schema = generator.Generate(BuildAllSketches());
  ASSERT_TRUE(schema.ok());
  // Loose lookup: "birthdate" should find the dob attribute via synonyms.
  const auto* attr =
      schema->FindByName("birthdate", source::DefaultClinicalNameMatcher(), 0.7);
  ASSERT_NE(attr, nullptr);
  const auto mappings = schema->MappingsAt(attr->name, "pharmacy");
  ASSERT_EQ(mappings.size(), 1u);
  EXPECT_EQ(mappings[0].column, "dateOfBirth");
  // AttributeFor reverse lookup.
  EXPECT_NE(schema->AttributeFor({"hospital", "patients", "dob"}), nullptr);
  EXPECT_EQ(schema->AttributeFor({"hospital", "patients", "ghost"}), nullptr);
  // XML summary renders.
  const std::string xml_text = xml::Serialize(*schema->ToXml());
  EXPECT_NE(xml_text.find("mediatedSchema"), std::string::npos);
  EXPECT_NE(xml_text.find("map"), std::string::npos);
}

TEST(MediatedSchemaGeneratorTest, AllHiddenNamesYieldSyntheticPartialAttr) {
  const Table hospital = HospitalTable();
  std::vector<ColumnSketch> sketches;
  auto a = ColumnSketch::Build({"s1", "t", "patient_id"}, hospital, "k", false);
  auto b = ColumnSketch::Build({"s2", "t", "patient_id"}, hospital, "k", false);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  sketches.push_back(*a);
  sketches.push_back(*b);
  const MediatedSchemaGenerator generator(MakeMatcher(0.5));
  auto schema = generator.Generate(sketches);
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->attributes().size(), 1u);
  EXPECT_TRUE(schema->attributes()[0].partial);
  EXPECT_EQ(schema->attributes()[0].name.substr(0, 5), "attr_");
}

}  // namespace
}  // namespace match
}  // namespace piye

#include <gtest/gtest.h>

#include <memory>

#include "core/scenario.h"
#include "mediator/engine.h"
#include "mediator/fragmenter.h"
#include "mediator/history.h"
#include "mediator/privacy_control.h"
#include "mediator/result_integrator.h"
#include "mediator/warehouse.h"
#include "source/remote_source.h"

namespace piye {
namespace mediator {
namespace {

using relational::Column;
using relational::ColumnType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

// --- History ---

TEST(QueryHistoryTest, RecordsAndAccumulates) {
  QueryHistory history;
  HistoryEntry e1;
  e1.requester = "cdc";
  e1.aggregated_privacy_loss = 0.2;
  e1.released = true;
  EXPECT_EQ(history.Record(e1), 0u);
  HistoryEntry e2 = e1;
  e2.aggregated_privacy_loss = 0.3;
  EXPECT_EQ(history.Record(e2), 1u);
  HistoryEntry refused = e1;
  refused.released = false;
  refused.aggregated_privacy_loss = 9.0;
  history.Record(refused);
  EXPECT_NEAR(history.CumulativeLoss("cdc"), 0.5, 1e-12);  // refused not counted
  EXPECT_EQ(history.ForRequester("cdc").size(), 3u);
  EXPECT_EQ(history.ForRequester("other").size(), 0u);
}

// --- Warehouse ---

TEST(WarehouseTest, FreshnessWindow) {
  Warehouse warehouse;
  Table t(Schema{Column{"x", ColumnType::kInt64}});
  (void)t.AppendRow(Row{Value::Int(1)});
  warehouse.Put("q1", t, /*epoch=*/5);
  EXPECT_NE(warehouse.Get("q1", 5, 0), nullptr);
  EXPECT_NE(warehouse.Get("q1", 6, 1), nullptr);
  EXPECT_EQ(warehouse.Get("q1", 7, 1), nullptr);
  EXPECT_EQ(warehouse.Get("missing", 5, 10), nullptr);
  EXPECT_EQ(warehouse.hits(), 2u);
  EXPECT_EQ(warehouse.misses(), 2u);
  warehouse.EvictOlderThan(6);
  EXPECT_EQ(warehouse.size(), 0u);
}

TEST(WarehouseTest, PutKeepsMaxEpochEntry) {
  Warehouse warehouse;
  Table fresh(Schema{Column{"x", ColumnType::kInt64}});
  (void)fresh.AppendRow(Row{Value::Int(2)});
  Table stale(Schema{Column{"x", ColumnType::kInt64}});
  (void)stale.AppendRow(Row{Value::Int(1)});

  warehouse.Put("q1", fresh, /*epoch=*/7);
  // A stale writer (e.g. a recovery replay of an old WAL record) must not
  // roll the materialization back.
  warehouse.Put("q1", stale, /*epoch=*/3);
  auto handle = warehouse.Get("q1", 7, 0);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->row(0)[0].AsInt(), 2);

  // Same-epoch and newer-epoch puts replace as usual.
  Table newer(Schema{Column{"x", ColumnType::kInt64}});
  (void)newer.AppendRow(Row{Value::Int(9)});
  warehouse.Put("q1", newer, /*epoch=*/8);
  handle = warehouse.Get("q1", 8, 0);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->row(0)[0].AsInt(), 9);
  EXPECT_EQ(warehouse.size(), 1u);
}

// --- Privacy control ---

TEST(PrivacyControlTest, LossCombination) {
  EXPECT_DOUBLE_EQ(PrivacyControl::CombineLosses({}), 0.0);
  EXPECT_DOUBLE_EQ(PrivacyControl::CombineLosses({0.5}), 0.5);
  EXPECT_NEAR(PrivacyControl::CombineLosses({0.5, 0.5}), 0.75, 1e-12);
  // Combination always exceeds each individual loss.
  EXPECT_GT(PrivacyControl::CombineLosses({0.3, 0.3}), 0.3);
}

TEST(PrivacyControlTest, ChecksCombinedAgainstBudgets) {
  PrivacyControl control(/*max_combined_loss=*/0.6, /*max_interval_loss=*/1.0);
  auto make_result = [](double loss, double budget) {
    auto node = xml::XmlNode::Element("result");
    node->SetAttr("owner", "src");
    node->SetAttr("privacyLoss", std::to_string(loss));
    node->SetAttr("lossBudget", std::to_string(budget));
    return node;
  };
  // Two results at 0.3 combine to 0.51 <= 0.6 and within budgets 0.7.
  auto a = make_result(0.3, 0.7);
  auto b = make_result(0.3, 0.7);
  auto ok = control.CheckIntegratedResults({a.get(), b.get()});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_NEAR(*ok, 0.51, 1e-12);
  // A third result pushes past the engine maximum.
  auto c = make_result(0.3, 0.7);
  auto too_much = control.CheckIntegratedResults({a.get(), b.get(), c.get()});
  EXPECT_TRUE(too_much.status().IsPrivacyViolation());
  // Or past a single source's budget even under the engine max: the paper's
  // "k' > k after integration" situation.
  auto tight = make_result(0.3, 0.4);
  auto violates_budget = control.CheckIntegratedResults({a.get(), tight.get()});
  EXPECT_TRUE(violates_budget.status().IsPrivacyViolation());
}

TEST(PrivacyControlTest, InferenceAuditDelegation) {
  PrivacyControl control(1.0, /*max_interval_loss=*/0.5);
  const size_t a = control.RegisterSensitiveCell("a", 0, 100, 70);
  const size_t b = control.RegisterSensitiveCell("b", 0, 100, 30);
  ASSERT_TRUE(control.ApproveMeanDisclosure({a, b}, 0.5).ok());
  EXPECT_TRUE(control.ApproveMeanDisclosure({a}, 0.5).status().IsPrivacyViolation());
  EXPECT_EQ(control.disclosures_committed(), 1u);
}

// --- Engine end-to-end over the patient scenario ---

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tables = core::ClinicalScenario::MakePatientTables(30, 0.5, 21);
    hospital_ = std::make_unique<source::RemoteSource>("hospital", "patients",
                                                       std::move(tables.hospital), 1);
    pharmacy_ = std::make_unique<source::RemoteSource>("pharmacy", "rx",
                                                       std::move(tables.pharmacy), 2);
    lab_ = std::make_unique<source::RemoteSource>("lab", "tests",
                                                  std::move(tables.lab), 3);
    core::ClinicalScenario::ApplyPatientPolicies(hospital_.get());
    core::ClinicalScenario::ApplyPatientPolicies(pharmacy_.get());
    core::ClinicalScenario::ApplyPatientPolicies(lab_.get());
    MediationEngine::Options options;
    options.max_combined_loss = 0.95;
    engine_ = std::make_unique<MediationEngine>(options);
    ASSERT_TRUE(engine_->RegisterSource(hospital_.get()).ok());
    ASSERT_TRUE(engine_->RegisterSource(pharmacy_.get()).ok());
    ASSERT_TRUE(engine_->RegisterSource(lab_.get()).ok());
    ASSERT_TRUE(engine_->GenerateMediatedSchema("shared-key").ok());
  }

  source::PiqlQuery MakeQuery(const std::string& body) {
    auto q = source::PiqlQuery::Parse(
        "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">" + body +
        "</query>");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::unique_ptr<source::RemoteSource> hospital_, pharmacy_, lab_;
  std::unique_ptr<MediationEngine> engine_;
};

TEST_F(EngineTest, MediatedSchemaUnifiesHeterogeneousColumns) {
  const auto& schema = engine_->mediated_schema();
  // The dob/dateOfBirth/birthdate columns should merge into one attribute.
  size_t dob_mappings = 0;
  for (const auto& attr : schema.attributes()) {
    bool is_dob = false;
    for (const auto& m : attr.mappings) {
      if (m.column == "dob" || m.column == "dateOfBirth" || m.column == "birthdate") {
        is_dob = true;
      }
    }
    if (is_dob) dob_mappings = std::max(dob_mappings, attr.mappings.size());
  }
  EXPECT_GE(dob_mappings, 3u);
}

TEST_F(EngineTest, IntegratesAcrossSources) {
  auto result = engine_->Execute(MakeQuery("<select>diagnosis</select>"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only the hospital has a diagnosis column; pharmacy/lab are skipped.
  EXPECT_EQ(result->sources_answered.size(), 1u);
  EXPECT_EQ(result->sources_skipped.size(), 2u);
  EXPECT_GT(result->table().num_rows(), 0u);
  EXPECT_TRUE(result->table().schema().Contains("_source"));
}

TEST_F(EngineTest, SharedAttributeFansOut) {
  auto result = engine_->Execute(MakeQuery("<select>dob</select>"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sources_answered.size(), 3u);
  EXPECT_GT(result->combined_privacy_loss, 0.0);
  // Timings cover the pipeline stages.
  EXPECT_GE(result->timings.size(), 4u);
}

TEST_F(EngineTest, DedupByKeyRemovesCrossSourceDuplicates) {
  // id + drug: only the pharmacy has drug, so the same patient appears as
  // (id, NULL) and (id, drug) — whole-row distinct keeps both, PSI-style
  // key dedup collapses them.
  const char* body = "<select>patient_id</select><select>drug</select>";
  auto with_dups = engine_->Execute(MakeQuery(body));
  ASSERT_TRUE(with_dups.ok()) << with_dups.status().ToString();
  engine_->AdvanceEpoch();
  engine_->AdvanceEpoch();  // force the warehouse entry stale
  auto deduped = engine_->Execute(MakeQuery(body), {"patient_id"});
  ASSERT_TRUE(deduped.ok()) << deduped.status().ToString();
  EXPECT_LT(deduped->table().num_rows(), with_dups->table().num_rows());
  EXPECT_GT(deduped->table().num_rows(), 0u);
}

TEST_F(EngineTest, WarehouseServesRepeatQuery) {
  const auto q = MakeQuery("<select>diagnosis</select>");
  auto first = engine_->Execute(q);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_warehouse);
  auto second = engine_->Execute(q);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_warehouse);
  EXPECT_EQ(second->table().num_rows(), first->table().num_rows());
}

TEST_F(EngineTest, HistoryRecordsQueries) {
  (void)engine_->Execute(MakeQuery("<select>diagnosis</select>"));
  EXPECT_EQ(engine_->history()->size(), 1u);
  EXPECT_GT(engine_->history()->CumulativeLoss("analyst"), 0.0);
}

TEST_F(EngineTest, CumulativeBudgetExhausts) {
  MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 0.5;
  options.enable_warehouse = false;  // force live execution every time
  MediationEngine engine(options);
  ASSERT_TRUE(engine.RegisterSource(hospital_.get()).ok());
  ASSERT_TRUE(engine.GenerateMediatedSchema("k").ok());
  Status last = Status::OK();
  int released = 0;
  for (int i = 0; i < 10; ++i) {
    auto q = MakeQuery("<select>diagnosis</select><where>sex = '" +
                       std::string(i % 2 == 0 ? "F" : "M") + "'</where>");
    auto r = engine.Execute(q);
    if (r.ok()) {
      ++released;
    } else {
      last = r.status();
      break;
    }
  }
  EXPECT_GT(released, 0);
  EXPECT_TRUE(last.IsPrivacyViolation());
}

TEST_F(EngineTest, UnknownAttributeFailsCleanly) {
  auto result = engine_->Execute(MakeQuery("<select>dob</select>"
                                           "<where>spaceshipId = 7</where>"));
  EXPECT_FALSE(result.ok());
}

TEST_F(EngineTest, ExecuteBeforeSchemaGenerationFails) {
  MediationEngine fresh;
  ASSERT_TRUE(fresh.RegisterSource(hospital_.get()).ok());
  EXPECT_FALSE(fresh.Execute(MakeQuery("<select>dob</select>")).ok());
}

// --- Result integrator unit behaviour ---

TEST(ResultIntegratorTest, PadsMissingColumnsWithNull) {
  match::MediatedSchema schema;
  ResultIntegrator integrator(&schema);
  Table a(Schema{Column{"x", ColumnType::kInt64}});
  (void)a.AppendRow(Row{Value::Int(1)});
  Table b(Schema{Column{"x", ColumnType::kInt64}, Column{"y", ColumnType::kString}});
  (void)b.AppendRow(Row{Value::Int(2), Value::Str("v")});
  auto out = integrator.Integrate({{"s1", a}, {"s2", b}}, {});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), 2u);
  ASSERT_TRUE(out->schema().Contains("y"));
  EXPECT_TRUE(out->row(0)[1].is_null());   // s1 lacks y
  EXPECT_EQ(out->row(1)[1].AsString(), "v");
}

TEST(ResultIntegratorTest, WholeRowDistinctIgnoresProvenance) {
  match::MediatedSchema schema;
  ResultIntegrator integrator(&schema);
  Table a(Schema{Column{"x", ColumnType::kInt64}});
  (void)a.AppendRow(Row{Value::Int(1)});
  Table b = a;
  auto out = integrator.Integrate({{"s1", a}, {"s2", b}}, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1u);  // identical payloads collapse
}

// --- Fragmenter unit behaviour ---

TEST_F(EngineTest, FragmenterSkipsIrrelevantSources) {
  QueryFragmenter fragmenter(&engine_->mediated_schema(),
                             source::DefaultClinicalNameMatcher());
  auto fragments = fragmenter.Fragment(MakeQuery("<select>drug</select>"),
                                       {"hospital", "pharmacy", "lab"});
  ASSERT_TRUE(fragments.ok()) << fragments.status().ToString();
  ASSERT_EQ(fragments->fragments.size(), 1u);
  EXPECT_EQ(fragments->fragments[0].source, "pharmacy");
  EXPECT_EQ(fragments->skipped.size(), 2u);
}

TEST_F(EngineTest, FragmenterTranslatesAttributeNames) {
  QueryFragmenter fragmenter(&engine_->mediated_schema(),
                             source::DefaultClinicalNameMatcher());
  auto fragments =
      fragmenter.Fragment(MakeQuery("<select>dob</select>"), {"pharmacy"});
  ASSERT_TRUE(fragments.ok());
  ASSERT_EQ(fragments->fragments.size(), 1u);
  // The pharmacy column is dateOfBirth; the fragment must use it.
  EXPECT_EQ(fragments->fragments[0].query.select[0], "dateOfBirth");
}

}  // namespace
}  // namespace mediator
}  // namespace piye

// Overload-resilience suite: CancelToken semantics, TokenBucket and
// FairShareQueue determinism properties (driven with a synthetic clock — no
// real time, bit-for-bit reproducible), AdmissionController behaviour, and
// the engine-level satellites: QueryOptions validation and the
// breaker-vs-shed interaction (a shed query must never count as a circuit
// breaker failure). Required to pass under PIYE_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/trace.h"
#include "core/scenario.h"
#include "mediator/admission.h"
#include "mediator/engine.h"
#include "source/remote_source.h"

namespace piye {
namespace {

using mediator::AdmissionConfig;
using mediator::AdmissionController;
using mediator::FairShareQueue;
using mediator::TokenBucket;

using TimePoint = std::chrono::steady_clock::time_point;

TimePoint At(int64_t millis) { return TimePoint() + std::chrono::milliseconds(millis); }

// --- CancelToken ---

TEST(CancelTokenTest, DefaultTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.can_fire());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.SleepFor(std::chrono::microseconds(100)));
}

TEST(CancelTokenTest, SourceCancelFiresEveryCopy) {
  CancelSource source;
  CancelToken token = source.token();
  CancelToken copy = token;
  EXPECT_FALSE(token.cancelled());
  source.RequestCancel();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(token.status().IsCancelled());
  EXPECT_FALSE(token.SleepFor(std::chrono::microseconds(100)));
}

TEST(CancelTokenTest, FirstCancelReasonWins) {
  CancelSource source;
  source.RequestCancel(Status::Cancelled("first"));
  source.RequestCancel(Status::Cancelled("second"));
  EXPECT_EQ(source.token().status().message(), "first");
}

TEST(CancelTokenTest, PastDeadlineReportsDeadlineExceeded) {
  const CancelToken token =
      CancelToken().WithDeadline(std::chrono::steady_clock::now() -
                                 std::chrono::milliseconds(1));
  EXPECT_TRUE(token.can_fire());
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.status().IsDeadlineExceeded());
}

TEST(CancelTokenTest, WithDeadlineKeepsTheEarlier) {
  const auto early = std::chrono::steady_clock::now() + std::chrono::hours(1);
  const auto late = early + std::chrono::hours(1);
  EXPECT_EQ(CancelToken().WithDeadline(late).WithDeadline(early).deadline(), early);
  EXPECT_EQ(CancelToken().WithDeadline(early).WithDeadline(late).deadline(), early);
}

TEST(CancelTokenTest, RequestCancelInterruptsSleep) {
  CancelSource source;
  CancelToken token = source.token();
  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    source.RequestCancel();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(token.SleepFor(std::chrono::microseconds(2'000'000)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  canceller.join();
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));  // far below the 2 s sleep
}

// --- TokenBucket (synthetic clock: fully deterministic) ---

TEST(TokenBucketTest, BurstThenContinuousRefill) {
  TokenBucket bucket(/*tokens_per_second=*/2.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.TryConsume(At(0)));
  EXPECT_TRUE(bucket.TryConsume(At(0)));
  EXPECT_FALSE(bucket.TryConsume(At(0)));       // burst exhausted
  EXPECT_EQ(bucket.RetryAfterMillis(At(0)), 500u);  // 1 token / 2 per second
  EXPECT_FALSE(bucket.TryConsume(At(499)));
  EXPECT_TRUE(bucket.TryConsume(At(500)));
  EXPECT_EQ(bucket.RetryAfterMillis(At(500)), 500u);
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(/*tokens_per_second=*/10.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.TryConsume(At(0)));
  // An hour idle refills to the cap, not to 36000 tokens.
  EXPECT_DOUBLE_EQ(bucket.tokens(At(3'600'000)), 3.0);
}

TEST(TokenBucketTest, DefaultBurstIsMaxOfOneAndRate) {
  TokenBucket slow(/*tokens_per_second=*/0.25, /*burst=*/0.0);
  EXPECT_DOUBLE_EQ(slow.tokens(At(0)), 1.0);  // burst floor of one whole token
  TokenBucket fast(/*tokens_per_second=*/8.0, /*burst=*/0.0);
  EXPECT_DOUBLE_EQ(fast.tokens(At(0)), 8.0);
}

TEST(TokenBucketTest, DeterministicAdmissionScheduleConservation) {
  // Rate 1/s, burst 1, arrivals every 250 ms: exactly every 4th arrival finds
  // a whole token. Admitted + shed must equal offered, and the admitted set
  // must be bit-for-bit reproducible.
  auto run = [] {
    TokenBucket bucket(1.0, 1.0);
    std::vector<int> admitted;
    for (int i = 0; i < 40; ++i) {
      if (bucket.TryConsume(At(i * 250))) admitted.push_back(i);
    }
    return admitted;
  };
  const std::vector<int> first = run();
  EXPECT_EQ(first.size(), 10u);
  for (size_t k = 0; k < first.size(); ++k) {
    EXPECT_EQ(first[k], static_cast<int>(k * 4));
  }
  EXPECT_EQ(first, run());
}

// --- FairShareQueue ---

TEST(FairShareQueueTest, ConservationAdmittedPlusShedEqualsOffered) {
  FairShareQueue queue(/*max_depth=*/8);
  constexpr uint64_t kOffered = 20;
  uint64_t pushed = 0, shed = 0;
  for (uint64_t id = 0; id < kOffered; ++id) {
    if (queue.Push(id, "req" + std::to_string(id % 3), At(1000))) {
      ++pushed;
    } else {
      ++shed;
    }
  }
  EXPECT_EQ(pushed, 8u);
  EXPECT_EQ(queue.size(), 8u);
  uint64_t popped = 0, id = 0;
  while (queue.Pop(&id)) ++popped;
  EXPECT_EQ(popped, pushed);
  EXPECT_EQ(pushed + shed, kOffered);  // conservation: nothing lost, nothing invented
  EXPECT_TRUE(queue.empty());
}

TEST(FairShareQueueTest, SaturationShedsTheNewestArrival) {
  FairShareQueue queue(/*max_depth=*/3);
  EXPECT_TRUE(queue.Push(1, "a", At(10)));
  EXPECT_TRUE(queue.Push(2, "a", At(20)));
  EXPECT_TRUE(queue.Push(3, "b", At(30)));
  EXPECT_FALSE(queue.Push(4, "c", At(0)));  // LIFO shed: the newcomer loses,
  uint64_t id = 0;                          // even with the earliest deadline
  std::vector<uint64_t> served;
  while (queue.Pop(&id)) served.push_back(id);
  EXPECT_EQ(served.size(), 3u);
  for (uint64_t s : served) EXPECT_NE(s, 4u);
}

TEST(FairShareQueueTest, EqualWeightsAlternateDeterministically) {
  FairShareQueue queue(/*max_depth=*/16);
  std::map<uint64_t, std::string> owner;
  for (uint64_t i = 0; i < 4; ++i) {
    queue.Push(i, "alice", At(100));
    owner[i] = "alice";
    queue.Push(10 + i, "bob", At(100));
    owner[10 + i] = "bob";
  }
  std::vector<std::string> order;
  uint64_t id = 0;
  while (queue.Pop(&id)) order.push_back(owner[id]);
  const std::vector<std::string> expected = {"alice", "bob", "alice", "bob",
                                             "alice", "bob", "alice", "bob"};
  EXPECT_EQ(order, expected);
}

TEST(FairShareQueueTest, WeightedShareServesProportionally) {
  FairShareQueue queue(/*max_depth=*/16);
  queue.SetWeight("alice", 2.0);
  queue.SetWeight("bob", 1.0);
  std::map<uint64_t, std::string> owner;
  for (uint64_t i = 0; i < 6; ++i) {
    queue.Push(i, "alice", At(100));
    owner[i] = "alice";
    queue.Push(10 + i, "bob", At(100));
    owner[10 + i] = "bob";
  }
  size_t alice_in_first_six = 0;
  uint64_t id = 0;
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE(queue.Pop(&id));
    if (owner[id] == "alice") ++alice_in_first_six;
  }
  // Stride scheduling: weight 2 is served twice as often as weight 1.
  EXPECT_EQ(alice_in_first_six, 4u);
}

TEST(FairShareQueueTest, NoStarvationUnderExtremeWeightSkew) {
  FairShareQueue queue(/*max_depth=*/256);
  queue.SetWeight("heavy", 100.0);
  queue.SetWeight("light", 1.0);
  std::map<uint64_t, std::string> owner;
  for (uint64_t i = 0; i < 200; ++i) {
    queue.Push(i, "heavy", At(100));
    owner[i] = "heavy";
  }
  queue.Push(1000, "light", At(100));
  owner[1000] = "light";
  // The light requester must be served within one full stride of the heavy
  // one (101 pops), not starved behind its entire backlog.
  uint64_t id = 0;
  bool light_served = false;
  for (int k = 0; k < 101 && queue.Pop(&id); ++k) {
    if (owner[id] == "light") {
      light_served = true;
      break;
    }
  }
  EXPECT_TRUE(light_served);
}

TEST(FairShareQueueTest, EarliestDeadlineFirstWithinARequester) {
  FairShareQueue queue(/*max_depth=*/8);
  queue.Push(1, "a", At(300));
  queue.Push(2, "a", At(100));
  queue.Push(3, "a", At(200));
  queue.Push(4, "a", At(100));  // equal deadline: FIFO by arrival
  std::vector<uint64_t> order;
  uint64_t id = 0;
  while (queue.Pop(&id)) order.push_back(id);
  const std::vector<uint64_t> expected = {2, 4, 3, 1};
  EXPECT_EQ(order, expected);
}

TEST(FairShareQueueTest, IdleRequesterBanksNoCredit) {
  FairShareQueue queue(/*max_depth=*/64);
  uint64_t id = 0;
  // alice alone consumes service for a while, advancing the virtual clock.
  for (uint64_t i = 0; i < 10; ++i) {
    queue.Push(i, "alice", At(100));
    ASSERT_TRUE(queue.Pop(&id));
  }
  // bob was idle the whole time. When both now queue a backlog, bob must not
  // be owed 10 consecutive slots of "credit" — service alternates.
  std::map<uint64_t, std::string> owner;
  for (uint64_t i = 0; i < 6; ++i) {
    queue.Push(100 + i, "alice", At(100));
    owner[100 + i] = "alice";
    queue.Push(200 + i, "bob", At(100));
    owner[200 + i] = "bob";
  }
  size_t bob_in_first_six = 0;
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE(queue.Pop(&id));
    if (owner[id] == "bob") ++bob_in_first_six;
  }
  EXPECT_EQ(bob_in_first_six, 3u);
}

TEST(FairShareQueueTest, RemoveDropsOnlyTheNamedWaiter) {
  FairShareQueue queue(/*max_depth=*/8);
  queue.Push(1, "a", At(100));
  queue.Push(2, "a", At(200));
  EXPECT_TRUE(queue.Remove(1));
  EXPECT_FALSE(queue.Remove(1));  // already gone
  EXPECT_EQ(queue.size(), 1u);
  uint64_t id = 0;
  ASSERT_TRUE(queue.Pop(&id));
  EXPECT_EQ(id, 2u);
}

// --- AdmissionController ---

TEST(AdmissionControllerTest, PermissiveDefaultsAdmitImmediately) {
  trace::MetricsRegistry metrics;
  AdmissionController controller(AdmissionConfig{}, &metrics);
  auto permit = controller.Admit("anyone", CancelToken());
  ASSERT_TRUE(permit.ok());
  EXPECT_EQ(controller.inflight(), 1u);
  permit->Release();
  EXPECT_EQ(controller.inflight(), 0u);
  EXPECT_EQ(metrics.counter("engine.admitted"), 1u);
  EXPECT_EQ(metrics.counter("engine.shed"), 0u);
}

TEST(AdmissionControllerTest, PreExpiredDeadlineRejectedBeforeAnything) {
  trace::MetricsRegistry metrics;
  AdmissionConfig config;
  config.max_inflight = 4;
  AdmissionController controller(config, &metrics);
  const CancelToken expired = CancelToken().WithDeadline(
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  auto permit = controller.Admit("late", expired);
  ASSERT_FALSE(permit.ok());
  EXPECT_TRUE(permit.status().IsDeadlineExceeded());
  EXPECT_EQ(controller.inflight(), 0u);
  EXPECT_EQ(metrics.counter("engine.cancelled"), 1u);
  EXPECT_EQ(metrics.counter("engine.admitted"), 0u);
}

TEST(AdmissionControllerTest, SaturatedQueueShedsWithRetryAfterHint) {
  trace::MetricsRegistry metrics;
  AdmissionConfig config;
  config.max_inflight = 1;
  config.max_queue_depth = 0;  // no waiting room at all
  AdmissionController controller(config, &metrics);
  auto first = controller.Admit("a", CancelToken());
  ASSERT_TRUE(first.ok());
  auto second = controller.Admit("b", CancelToken());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted());
  EXPECT_NE(second.status().message().find("retry after"), std::string::npos);
  first->Release();
  EXPECT_EQ(metrics.counter("engine.admitted") + metrics.counter("engine.shed"), 2u);
}

TEST(AdmissionControllerTest, RateLimitShedsWithResourceExhausted) {
  trace::MetricsRegistry metrics;
  AdmissionConfig config;
  config.tokens_per_second = 0.001;  // refills far slower than this test runs
  config.bucket_burst = 1.0;
  AdmissionController controller(config, &metrics);
  auto first = controller.Admit("snooper", CancelToken());
  ASSERT_TRUE(first.ok());
  auto second = controller.Admit("snooper", CancelToken());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted());
  EXPECT_NE(second.status().message().find("rate limit"), std::string::npos);
  // Other requesters have their own bucket.
  auto other = controller.Admit("honest", CancelToken());
  EXPECT_TRUE(other.ok());
}

TEST(AdmissionControllerTest, ReleaseHandsTheSlotToAQueuedWaiter) {
  trace::MetricsRegistry metrics;
  AdmissionConfig config;
  config.max_inflight = 1;
  config.max_queue_depth = 8;
  AdmissionController controller(config, &metrics);
  auto first = controller.Admit("a", CancelToken());
  ASSERT_TRUE(first.ok());
  std::atomic<bool> second_admitted{false};
  std::thread waiter([&] {
    auto second = controller.Admit("b", CancelToken());
    EXPECT_TRUE(second.ok());
    second_admitted.store(true);
    second->Release();
  });
  // Give the waiter time to enqueue, then free the slot.
  while (controller.queue_depth() == 0) std::this_thread::yield();
  EXPECT_FALSE(second_admitted.load());
  first->Release();
  waiter.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_EQ(controller.inflight(), 0u);
  EXPECT_EQ(controller.queue_depth(), 0u);
  EXPECT_EQ(metrics.counter("engine.admitted"), 2u);
}

TEST(AdmissionControllerTest, CancelledWaiterLeavesTheQueue) {
  trace::MetricsRegistry metrics;
  AdmissionConfig config;
  config.max_inflight = 1;
  config.max_queue_depth = 8;
  AdmissionController controller(config, &metrics);
  auto first = controller.Admit("a", CancelToken());
  ASSERT_TRUE(first.ok());
  CancelSource source;
  Status waiter_status;
  std::thread waiter([&] {
    auto second = controller.Admit("b", source.token());
    waiter_status = second.status();
  });
  while (controller.queue_depth() == 0) std::this_thread::yield();
  source.RequestCancel();
  waiter.join();
  EXPECT_TRUE(waiter_status.IsCancelled()) << waiter_status.ToString();
  EXPECT_EQ(controller.queue_depth(), 0u);
  first->Release();
  EXPECT_EQ(controller.inflight(), 0u);
  EXPECT_EQ(metrics.counter("engine.cancelled"), 1u);
}

TEST(AdmissionControllerTest, ConcurrentBurstConservesEveryQuery) {
  trace::MetricsRegistry metrics;
  AdmissionConfig config;
  config.max_inflight = 2;
  config.max_queue_depth = 4;
  AdmissionController controller(config, &metrics);
  constexpr int kOffered = 24;
  std::atomic<int> ok_count{0}, shed_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kOffered);
  for (int i = 0; i < kOffered; ++i) {
    threads.emplace_back([&controller, &ok_count, &shed_count, i] {
      auto permit =
          controller.Admit("requester" + std::to_string(i % 3), CancelToken());
      if (permit.ok()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ok_count.fetch_add(1);
        permit->Release();
      } else {
        EXPECT_TRUE(permit.status().IsResourceExhausted());
        shed_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load() + shed_count.load(), kOffered);
  EXPECT_EQ(metrics.counter("engine.admitted") + metrics.counter("engine.shed"),
            static_cast<uint64_t>(kOffered));
  EXPECT_GE(ok_count.load(), 2);  // at least the initial capacity got through
  EXPECT_EQ(controller.inflight(), 0u);   // drained to idle
  EXPECT_EQ(controller.queue_depth(), 0u);
}

// --- Engine-level satellites ---

std::vector<std::unique_ptr<source::RemoteSource>> BuildSources(size_t n) {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  for (size_t i = 0; i < n; ++i) {
    auto tables = core::ClinicalScenario::MakePatientTables(20, 0.3, 100 + i);
    auto src = std::make_unique<source::RemoteSource>(
        "hospital" + std::to_string(i), "patients", std::move(tables.hospital),
        /*seed=*/i + 1);
    core::ClinicalScenario::ApplyPatientPolicies(src.get());
    sources.push_back(std::move(src));
  }
  return sources;
}

std::unique_ptr<mediator::MediationEngine> BuildEngine(
    const std::vector<std::unique_ptr<source::RemoteSource>>& sources,
    mediator::MediationEngine::Options options) {
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  auto engine = std::make_unique<mediator::MediationEngine>(options);
  for (const auto& src : sources) {
    EXPECT_TRUE(engine->RegisterSource(src.get()).ok());
  }
  EXPECT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
  return engine;
}

source::PiqlQuery MakeQuery(const std::string& body) {
  auto q = source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">" +
      body + "</query>");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(QueryOptionsValidationTest, NegativeDeadlineRejected) {
  auto sources = BuildSources(2);
  auto engine = BuildEngine(sources, {});
  mediator::QueryOptions options;
  options.deadline_ms = -5;
  auto result = engine->Execute(MakeQuery("<select>patient_id</select>"), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status().ToString();
  // Rejected before anything was touched: not even the query counter moved.
  EXPECT_EQ(engine->metrics()->counter("engine.queries"), 0u);
  EXPECT_EQ(engine->history()->size(), 0u);
}

TEST(QueryOptionsValidationTest, RetryCountAboveLimitRejected) {
  auto sources = BuildSources(2);
  auto engine = BuildEngine(sources, {});
  mediator::QueryOptions options;
  options.max_retries = mediator::QueryOptions::kMaxRetriesLimit + 1;
  auto result = engine->Execute(MakeQuery("<select>patient_id</select>"), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  // The limit itself is fine.
  options.max_retries = mediator::QueryOptions::kMaxRetriesLimit;
  EXPECT_TRUE(engine->Execute(MakeQuery("<select>patient_id</select>"), options).ok());
}

TEST(QueryOptionsValidationTest, UnmeetableQuorumRejected) {
  auto sources = BuildSources(2);
  auto engine = BuildEngine(sources, {});
  mediator::QueryOptions options;
  options.min_sources = 3;  // only 2 registered: no outcome can satisfy this
  auto result = engine->Execute(MakeQuery("<select>patient_id</select>"), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("min_sources"), std::string::npos);
}

TEST(QueryOptionsValidationTest, ZeroDeadlineStillMeansNoDeadline) {
  // Back-compat: 0 is the documented "no deadline" default, not an error.
  auto sources = BuildSources(2);
  auto engine = BuildEngine(sources, {});
  mediator::QueryOptions options;
  options.deadline_ms = 0;
  EXPECT_TRUE(engine->Execute(MakeQuery("<select>patient_id</select>"), options).ok());
}

TEST(BreakerShedInteractionTest, ShedQueriesDoNotCountAsBreakerFailures) {
  // Regression: a query shed at admission never dialed any source, so it
  // must not advance any circuit breaker's failure accounting — and it must
  // not charge the requester's privacy budget.
  auto sources = BuildSources(3);
  mediator::MediationEngine::Options engine_options;
  engine_options.enable_circuit_breakers = true;
  engine_options.admission.tokens_per_second = 0.001;  // one query, then shed
  engine_options.admission.bucket_burst = 1.0;
  auto engine = BuildEngine(sources, engine_options);

  const auto query = MakeQuery("<select>patient_id</select>");
  auto first = engine->Execute(query, mediator::QueryOptions{});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const double budget_after_first = engine->history()->CumulativeLoss("analyst");
  const size_t history_after_first = engine->history()->size();

  auto shed = engine->Execute(query, mediator::QueryOptions{});
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status().ToString();

  // No breaker heard about the shed query.
  const auto health = engine->Health();
  for (const auto& src : health.sources) {
    EXPECT_EQ(src.consecutive_failures, 0u) << src.owner;
    EXPECT_EQ(src.breaker_state, "closed") << src.owner;
  }
  // And the shed query charged nothing and recorded nothing.
  EXPECT_EQ(engine->history()->CumulativeLoss("analyst"), budget_after_first);
  EXPECT_EQ(engine->history()->size(), history_after_first);
  EXPECT_EQ(health.shed_total, 1u);
  EXPECT_EQ(health.admitted_total, 1u);
}

TEST(BreakerShedInteractionTest, CallerCancellationDoesNotBlameSources) {
  // A caller that gives up mid-flight is not a source failure either: the
  // fragments stop cooperatively and the breakers stay untouched.
  auto sources = BuildSources(3);
  for (auto& src : sources) {
    source::RemoteSource::FaultInjection faults;
    faults.drop_rate = 1.0;  // every call hangs...
    faults.hang_micros = 2'000'000;
    faults.seed = 42;
    src->set_fault_injection(faults);
  }
  mediator::MediationEngine::Options engine_options;
  engine_options.enable_circuit_breakers = true;
  engine_options.worker_threads = 4;
  auto engine = BuildEngine(sources, engine_options);

  CancelSource cancel;
  mediator::QueryOptions options;
  options.cancel = cancel.token();
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.RequestCancel();
  });
  const auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(MakeQuery("<select>patient_id</select>"), options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  // ...but the cancellation interrupted the 2 s hangs almost immediately.
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
  const auto health = engine->Health();
  for (const auto& src : health.sources) {
    EXPECT_EQ(src.consecutive_failures, 0u) << src.owner;
  }
  EXPECT_EQ(engine->history()->CumulativeLoss("analyst"), 0.0);
  EXPECT_EQ(engine->history()->size(), 0u);
  EXPECT_GE(health.cancelled_total, 1u);
}

}  // namespace
}  // namespace piye

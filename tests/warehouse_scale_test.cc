// Scale suite for the warehouse read path: the sharded memory-bounded
// warehouse (concurrent Put/Get/Evict, byte-budget enforcement,
// oldest-epoch-first / LRU-within-epoch eviction, snapshot vs. concurrent
// readers) and the engine's single-flight query coalescing (identical
// concurrent queries share one federated execution and one budget charge;
// distinct requesters never coalesce). This suite is required to pass under
// PIYE_SANITIZE=thread (scripts/sanitize.sh, scripts/ci.sh TSan leg).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "core/scenario.h"
#include "mediator/engine.h"
#include "mediator/warehouse.h"
#include "relational/table.h"
#include "relational/xml_bridge.h"
#include "source/remote_source.h"
#include "xml/parser.h"

namespace piye {
namespace {

using mediator::MediationEngine;
using mediator::QueryOptions;
using mediator::Warehouse;

// A table whose ApproxBytes is dominated by `payload_bytes` of string data,
// so byte-budget tests can reason in round numbers.
relational::Table MakeTable(int64_t marker, size_t payload_bytes = 64) {
  relational::Table t(relational::Schema{
      relational::Column{"id", relational::ColumnType::kInt64},
      relational::Column{"blob", relational::ColumnType::kString}});
  EXPECT_TRUE(t.AppendRow(relational::Row{
                              relational::Value::Int(marker),
                              relational::Value::Str(std::string(payload_bytes, 'x'))})
                  .ok());
  return t;
}

std::string Fp(size_t i) { return "query-fingerprint-" + std::to_string(i); }

// --- Sharded warehouse under concurrency ---

TEST(WarehouseScaleTest, ConcurrentPutGetEvictAcrossShards) {
  trace::MetricsRegistry metrics;
  Warehouse warehouse(Warehouse::Options{/*num_shards=*/16, /*max_bytes=*/0});
  warehouse.set_metrics(&metrics);
  EXPECT_EQ(warehouse.num_shards(), 16u);

  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 400;
  constexpr size_t kKeySpace = 64;
  std::atomic<size_t> live_hits{0};
  std::vector<std::thread> workers;
  for (size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&warehouse, &live_hits, w] {
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        const size_t key = (w * 31 + i * 7) % kKeySpace;
        switch (i % 4) {
          case 0:
          case 1:
            warehouse.Put(Fp(key), MakeTable(static_cast<int64_t>(key)),
                          /*epoch=*/i % 8);
            break;
          case 2: {
            auto handle = warehouse.Get(Fp(key), /*current_epoch=*/8,
                                        /*max_age=*/8);
            if (handle != nullptr) {
              // The handle stays valid even if the entry is concurrently
              // evicted or replaced: reads are zero-copy refcounted.
              live_hits.fetch_add(handle->num_rows());
            }
            break;
          }
          default:
            if (i % 64 == 3) (void)warehouse.EvictOlderThan(/*epoch=*/4);
            break;
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_LE(warehouse.size(), kKeySpace);
  EXPECT_EQ(warehouse.hits() + warehouse.misses(),
            metrics.counter("warehouse.hits") + metrics.counter("warehouse.misses"));
  EXPECT_EQ(warehouse.hits(), metrics.counter("warehouse.hits"));
  EXPECT_GT(metrics.counter("warehouse.puts"), 0u);
  // Whatever survived is still readable and consistent.
  size_t readable = 0;
  for (size_t key = 0; key < kKeySpace; ++key) {
    auto handle = warehouse.Get(Fp(key), 8, 8);
    if (handle != nullptr) {
      ++readable;
      EXPECT_EQ(handle->row(0)[0].AsInt(), static_cast<int64_t>(key));
    }
  }
  EXPECT_EQ(readable, warehouse.size());
}

TEST(WarehouseScaleTest, ByteBudgetBoundsResidentBytes) {
  trace::MetricsRegistry metrics;
  // ~64KB budget over 4 shards = 16KB per shard; entries are ~4KB+ each.
  Warehouse warehouse(Warehouse::Options{/*num_shards=*/4, /*max_bytes=*/64 << 10});
  warehouse.set_metrics(&metrics);

  for (size_t i = 0; i < 128; ++i) {
    warehouse.Put(Fp(i), MakeTable(static_cast<int64_t>(i), /*payload_bytes=*/4096),
                  /*epoch=*/0);
    EXPECT_LE(warehouse.bytes(), warehouse.max_bytes());
  }
  EXPECT_GT(metrics.counter("warehouse.evicted_entries"), 0u);
  EXPECT_GT(metrics.counter("warehouse.bytes_evicted"), 0u);
  EXPECT_EQ(warehouse.evicted_entries(),
            metrics.counter("warehouse.evicted_entries"));
  EXPECT_EQ(warehouse.size() + warehouse.evicted_entries(), 128u);

  // An entry larger than a whole shard slice never sticks: the budget is a
  // hard bound, not a hint.
  warehouse.Put("giant", MakeTable(1, /*payload_bytes=*/128 << 10), /*epoch=*/1);
  EXPECT_LE(warehouse.bytes(), warehouse.max_bytes());
  EXPECT_EQ(warehouse.Get("giant", 1, 0), nullptr);
}

TEST(WarehouseScaleTest, EvictionIsOldestEpochFirstThenLru) {
  // Single shard so the eviction order is fully deterministic.
  Warehouse warehouse(Warehouse::Options{/*num_shards=*/1, /*max_bytes=*/0});

  // Epochs: old=1 for a,b; new=2 for c. A Get refreshes `a`, making `b` the
  // least-recently-used entry of the oldest epoch.
  warehouse.Put("a", MakeTable(1, 1024), /*epoch=*/1);
  warehouse.Put("b", MakeTable(2, 1024), /*epoch=*/1);
  warehouse.Put("c", MakeTable(3, 1024), /*epoch=*/2);
  ASSERT_NE(warehouse.Get("a", 2, 1), nullptr);  // refresh a's LRU position

  // Shrink the budget by rebuilding with one that only fits two entries;
  // replaying the same puts (with the refresh) must evict b first, then a —
  // never c, even though c was written after a was refreshed.
  const size_t entry_bytes = MakeTable(1, 1024).ApproxBytes();
  Warehouse bounded(
      Warehouse::Options{/*num_shards=*/1, /*max_bytes=*/entry_bytes * 2 + 64});
  bounded.Put("a", MakeTable(1, 1024), 1);
  bounded.Put("b", MakeTable(2, 1024), 1);
  ASSERT_NE(bounded.Get("a", 1, 0), nullptr);  // a is now more recent than b
  bounded.Put("c", MakeTable(3, 1024), 2);     // over budget: evict within epoch 1
  EXPECT_EQ(bounded.Get("b", 2, 1), nullptr);  // b (oldest epoch, LRU) evicted
  EXPECT_NE(bounded.Get("a", 2, 1), nullptr);
  EXPECT_NE(bounded.Get("c", 2, 1), nullptr);

  // Next eviction takes a (oldest epoch) even though it was just used:
  // epoch-major order dominates recency.
  bounded.Put("d", MakeTable(4, 1024), 2);
  EXPECT_EQ(bounded.Get("a", 2, 1), nullptr);
  EXPECT_NE(bounded.Get("c", 2, 1), nullptr);
  EXPECT_NE(bounded.Get("d", 2, 1), nullptr);
}

TEST(WarehouseScaleTest, SnapshotDoesNotBlockConcurrentGets) {
  Warehouse warehouse(Warehouse::Options{/*num_shards=*/16, /*max_bytes=*/0});
  constexpr size_t kEntries = 256;
  for (size_t i = 0; i < kEntries; ++i) {
    warehouse.Put(Fp(i), MakeTable(static_cast<int64_t>(i), /*payload_bytes=*/16384),
                  /*epoch=*/0);
  }

  // Snapshots are zero-copy: the handle a snapshot holds is the *same* table
  // the concurrent reader gets, not a deep copy made under a global lock.
  auto snapshot = warehouse.SnapshotEntries();
  ASSERT_EQ(snapshot.size(), kEntries);
  auto handle = warehouse.Get(snapshot[0].fingerprint, 0, 0);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle.get(), snapshot[0].table.get());

  // Regression: while a snapshotter loops over the whole (large) warehouse,
  // concurrent Gets must not stall behind it — a shard is only locked long
  // enough to copy its handles. The worst observed Get is allowed a lenient
  // bound to stay robust under sanitizers and CI noise, but a deep-copying
  // global-lock snapshot (the old design: ~4MB of table copies per snapshot)
  // fails it by orders of magnitude.
  std::atomic<bool> stop{false};
  std::atomic<size_t> snapshots_taken{0};
  std::thread snapshotter([&warehouse, &stop, &snapshots_taken] {
    while (!stop.load()) {
      auto snap = warehouse.SnapshotEntries();
      if (snap.size() == kEntries) snapshots_taken.fetch_add(1);
    }
  });

  // The Get loop below can finish in a couple of milliseconds — less than a
  // thread spawn under a loaded scheduler. Wait for the first snapshot so
  // the Gets actually contend with a running snapshotter.
  const auto spawn_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (snapshots_taken.load() == 0 &&
         std::chrono::steady_clock::now() < spawn_deadline) {
    std::this_thread::yield();
  }

  double worst_get_micros = 0.0;
  for (size_t i = 0; i < 2000; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto h = warehouse.Get(Fp(i % kEntries), 0, 0);
    const auto end = std::chrono::steady_clock::now();
    ASSERT_NE(h, nullptr);
    const double micros =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count() /
        1000.0;
    worst_get_micros = std::max(worst_get_micros, micros);
  }
  stop.store(true);
  snapshotter.join();

  EXPECT_GT(snapshots_taken.load(), 0u);
  // "A few microseconds" of real lock wait; the generous multiplier absorbs
  // scheduler preemption on loaded single-core CI and sanitizer slowdowns.
  EXPECT_LT(worst_get_micros, 50000.0)
      << "a Get stalled " << worst_get_micros
      << "us behind a snapshot; snapshots must not hold shard locks for "
         "table-copy durations";
}

// --- Single-flight coalescing in the engine ---

std::string TableBytes(const relational::Table& t) {
  return xml::Serialize(*relational::TableToXml(t, "t"), /*indent=*/-1);
}

std::vector<std::unique_ptr<source::RemoteSource>> BuildSources(
    size_t n, uint64_t latency_micros) {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  for (size_t i = 0; i < n; ++i) {
    auto tables = core::ClinicalScenario::MakePatientTables(20, 0.3, 100 + i);
    auto src = std::make_unique<source::RemoteSource>(
        "hospital" + std::to_string(i), "patients", std::move(tables.hospital),
        /*seed=*/i + 1);
    core::ClinicalScenario::ApplyPatientPolicies(src.get());
    if (latency_micros > 0) {
      source::RemoteSource::FaultInjection faults;
      faults.latency_micros = latency_micros;
      src->set_fault_injection(faults);
    }
    sources.push_back(std::move(src));
  }
  return sources;
}

std::unique_ptr<MediationEngine> BuildEngine(
    const std::vector<std::unique_ptr<source::RemoteSource>>& sources) {
  MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  // Warehouse off: any non-coalesced repeat *must* re-execute at the
  // sources, so history size is a direct count of federated executions.
  options.enable_warehouse = false;
  options.worker_threads = 4;
  auto engine = std::make_unique<MediationEngine>(options);
  for (const auto& src : sources) {
    EXPECT_TRUE(engine->RegisterSource(src.get()).ok());
  }
  EXPECT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
  return engine;
}

source::PiqlQuery MakeQuery(const std::string& body) {
  auto q = source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">" +
      body + "</query>");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(SingleFlightTest, IdenticalConcurrentQueriesShareOneExecution) {
  // Slow sources (200ms) hold the leader's execution open long enough that
  // every follower provably arrives while it is in flight.
  auto sources = BuildSources(3, /*latency_micros=*/200'000);
  auto engine = BuildEngine(sources);
  const auto query =
      MakeQuery("<select>patient_id</select><select>diagnosis</select>");

  constexpr int kCallers = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::string> answers(kCallers);
  std::vector<double> losses(kCallers, -1.0);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      auto result = engine->Execute(query, QueryOptions{});
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      answers[c] = TableBytes(result->table());
      losses[c] = result->combined_privacy_loss;
    });
  }
  while (ready.load() < kCallers) std::this_thread::yield();
  go.store(true);
  for (auto& t : callers) t.join();

  // Exactly one federated execution: one leader, every other caller joined.
  EXPECT_EQ(engine->metrics()->counter("engine.singleflight_leaders"), 1u);
  EXPECT_EQ(engine->metrics()->counter("engine.singleflight_coalesced"),
            static_cast<uint64_t>(kCallers - 1));
  EXPECT_EQ(engine->metrics()->counter("engine.fragment_attempts"), 3u);
  EXPECT_EQ(engine->metrics()->counter("engine.queries"),
            static_cast<uint64_t>(kCallers));

  // One history entry, and the requester's budget was charged exactly once.
  EXPECT_EQ(engine->history()->size(), 1u);
  ASSERT_GT(losses[0], 0.0);
  EXPECT_DOUBLE_EQ(engine->history()->CumulativeLoss("analyst"), losses[0]);

  // Every caller got the byte-identical privacy-checked answer.
  for (int c = 1; c < kCallers; ++c) {
    EXPECT_EQ(answers[c], answers[0]) << "caller " << c;
    EXPECT_DOUBLE_EQ(losses[c], losses[0]) << "caller " << c;
  }
}

TEST(SingleFlightTest, DistinctRequestersNeverCoalesce) {
  auto sources = BuildSources(2, /*latency_micros=*/100'000);
  auto engine = BuildEngine(sources);
  const auto query =
      MakeQuery("<select>patient_id</select><select>diagnosis</select>");

  constexpr int kPerRequester = 2;
  std::vector<std::thread> callers;
  std::atomic<bool> go{false};
  for (int c = 0; c < 2 * kPerRequester; ++c) {
    callers.emplace_back([&, c] {
      while (!go.load()) std::this_thread::yield();
      QueryOptions options;
      // Transport-authenticated identity: two requesters, two flights.
      // (Both have RBAC grants in the scenario; only the identity differs.)
      options.requester = c % 2 == 0 ? "cdc" : "analyst";
      auto result = engine->Execute(query, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    });
  }
  go.store(true);
  for (auto& t : callers) t.join();

  // One execution (and one budget charge) *per requester*, never fewer:
  // coalescing across requesters would let one requester's budget pay for
  // another's disclosure.
  EXPECT_EQ(engine->history()->size(), 2u);
  EXPECT_GT(engine->history()->CumulativeLoss("cdc"), 0.0);
  EXPECT_GT(engine->history()->CumulativeLoss("analyst"), 0.0);
  EXPECT_DOUBLE_EQ(engine->history()->CumulativeLoss("cdc"),
                   engine->history()->CumulativeLoss("analyst"));
  EXPECT_EQ(engine->metrics()->counter("engine.singleflight_leaders"), 2u);
  EXPECT_EQ(engine->metrics()->counter("engine.singleflight_coalesced"),
            static_cast<uint64_t>(2 * kPerRequester - 2));
}

TEST(SingleFlightTest, SequentialIdenticalQueriesDoNotCoalesce) {
  // Coalescing is strictly for *overlapping* executions: once the leader
  // publishes, a later identical query is a fresh federated execution (the
  // warehouse, when enabled, is the cache for completed answers).
  auto sources = BuildSources(2, /*latency_micros=*/0);
  auto engine = BuildEngine(sources);
  const auto query = MakeQuery("<select>patient_id</select>");
  ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
  ASSERT_TRUE(engine->Execute(query, QueryOptions{}).ok());
  EXPECT_EQ(engine->history()->size(), 2u);
  EXPECT_EQ(engine->metrics()->counter("engine.singleflight_coalesced"), 0u);
  EXPECT_EQ(engine->metrics()->counter("engine.singleflight_leaders"), 2u);
}

TEST(SingleFlightTest, CoalesceOptOutForcesPrivateExecutions) {
  auto sources = BuildSources(2, /*latency_micros=*/50'000);
  auto engine = BuildEngine(sources);
  const auto query = MakeQuery("<select>patient_id</select>");

  constexpr int kCallers = 4;
  std::vector<std::thread> callers;
  std::atomic<bool> go{false};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      QueryOptions options;
      options.coalesce = false;
      auto result = engine->Execute(query, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    });
  }
  go.store(true);
  for (auto& t : callers) t.join();

  // Every caller fanned out privately: full per-call accounting.
  EXPECT_EQ(engine->history()->size(), static_cast<size_t>(kCallers));
  EXPECT_EQ(engine->metrics()->counter("engine.singleflight_coalesced"), 0u);
  EXPECT_EQ(engine->metrics()->counter("engine.singleflight_leaders"), 0u);
}

}  // namespace
}  // namespace piye

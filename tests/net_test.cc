// Wire-protocol and single-process federation tests for src/net: frame
// codec round-trips and adversarial fuzz (truncation, bit flips, oversized
// lengths — mirroring the WAL fuzz in persist_test.cc), message schema
// round-trips, client/server exchanges over Unix and TCP sockets, engine
// integration through NetSource (byte-identity with the in-process path,
// skip-reason fidelity for unreachable servers, transport stats in
// Health()), deterministic transport fault injection, and client
// backpressure.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/scenario.h"
#include "mediator/engine.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/frame.h"
#include "net/net_source.h"
#include "net/server.h"
#include "net/wire.h"
#include "relational/xml_bridge.h"
#include "source/remote_source.h"
#include "xml/parser.h"

namespace piye {
namespace {

using net::Frame;
using net::MessageType;

std::string TableBytes(const relational::Table& t) {
  return xml::Serialize(*relational::TableToXml(t, "t"), /*indent=*/-1);
}

/// In-memory transport over a byte string — the harness for codec fuzzing
/// (no sockets, no threads, fully deterministic). Reads drain the buffer;
/// EOF thereafter.
class BufferTransport : public net::Transport {
 public:
  explicit BufferTransport(std::string bytes) : bytes_(std::move(bytes)) {}

  Result<size_t> Read(char* buf, size_t len, net::TimePoint) override {
    if (pos_ >= bytes_.size()) return static_cast<size_t>(0);  // clean EOF
    const size_t n = std::min(len, bytes_.size() - pos_);
    std::copy(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
              bytes_.begin() + static_cast<ptrdiff_t>(pos_ + n), buf);
    pos_ += n;
    return n;
  }
  Status WriteAll(std::string_view data, net::TimePoint) override {
    written_.append(data);
    return Status::OK();
  }
  void Shutdown() override {}

  const std::string& written() const { return written_; }

 private:
  std::string bytes_;
  size_t pos_ = 0;
  std::string written_;
};

Result<Frame> DecodeBytes(std::string bytes,
                          size_t max_payload = net::kDefaultMaxPayload) {
  BufferTransport transport(std::move(bytes));
  return net::ReadFrame(transport, net::NoDeadline(),
                        std::chrono::milliseconds(1000), max_payload);
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(FrameTest, RoundTripsAllMessageTypes) {
  for (uint8_t raw = 1; raw <= 8; ++raw) {
    Frame frame;
    frame.type = static_cast<MessageType>(raw);
    frame.request_id = 0x0123456789ABCDEFull + raw;
    frame.payload = std::string("payload-") + std::to_string(raw);
    auto decoded = DecodeBytes(net::EncodeFrame(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, frame.type);
    EXPECT_EQ(decoded->request_id, frame.request_id);
    EXPECT_EQ(decoded->payload, frame.payload);
  }
}

TEST(FrameTest, RoundTripsEmptyAndLargePayloads) {
  for (size_t size : {size_t{0}, size_t{1}, size_t{64 * 1024 + 13}}) {
    Frame frame;
    frame.type = MessageType::kExecuteResponse;
    frame.request_id = 42;
    frame.payload.assign(size, 'x');
    auto decoded = DecodeBytes(net::EncodeFrame(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->payload.size(), size);
  }
}

TEST(FrameTest, RejectsBadMagicVersionTypeAndFlags) {
  Frame frame;
  frame.type = MessageType::kHello;
  frame.payload = "hi";
  const std::string good = net::EncodeFrame(frame);

  // The header CRC is checked first, so a mutated field fails either on the
  // CRC or (for the CRC bytes themselves) on the mismatch — always a clean
  // kInvalidArgument, never a decode of garbage.
  auto mutate = [&](size_t offset, char value) {
    std::string bytes = good;
    bytes[offset] = value;
    auto status = DecodeBytes(bytes).status();
    EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  };
  mutate(0, 'X');   // magic
  mutate(4, 99);    // version
  mutate(5, 0);     // message type below range
  mutate(5, 100);   // message type above range
  mutate(6, 1);     // reserved flags
  mutate(21, 'X');  // header CRC itself
}

TEST(FrameTest, RejectsOversizedPayloadBeforeAllocating) {
  Frame frame;
  frame.type = MessageType::kExecuteRequest;
  frame.payload = std::string(2048, 'y');
  auto status = DecodeBytes(net::EncodeFrame(frame), /*max_payload=*/64).status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(FrameTest, TruncationIsUnavailableNeverAHang) {
  Frame frame;
  frame.type = MessageType::kSketchResponse;
  frame.request_id = 7;
  frame.payload = "truncate-me-truncate-me";
  const std::string good = net::EncodeFrame(frame);
  for (size_t keep = 0; keep < good.size(); ++keep) {
    auto result = DecodeBytes(good.substr(0, keep));
    ASSERT_FALSE(result.ok()) << "prefix of " << keep << " bytes decoded";
    EXPECT_TRUE(result.status().IsUnavailable() ||
                result.status().IsInvalidArgument())
        << result.status().ToString();
  }
}

TEST(FrameTest, FuzzBitFlipsNeverCrashAndNeverMisdecode) {
  Frame frame;
  frame.type = MessageType::kExecuteResponse;
  frame.request_id = 0xFEEDFACEull;
  frame.payload = "the quick brown fox jumps over the lazy dog";
  const std::string good = net::EncodeFrame(frame);

  Rng rng(20260808);
  size_t corruption_caught = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes = good;
    const size_t offset = static_cast<size_t>(rng.NextBounded(bytes.size()));
    const uint8_t mask = static_cast<uint8_t>(1u << rng.NextBounded(8));
    bytes[offset] =
        static_cast<char>(static_cast<uint8_t>(bytes[offset]) ^ mask);
    auto result = DecodeBytes(bytes);
    if (result.ok()) {
      // A CRC-32 collision from a single bit flip is impossible; a decode
      // that "succeeded" must be byte-identical to the original frame.
      EXPECT_EQ(result->payload, frame.payload);
      EXPECT_EQ(result->request_id, frame.request_id);
    } else {
      ++corruption_caught;
      EXPECT_TRUE(result.status().IsInvalidArgument() ||
                  result.status().IsUnavailable())
          << result.status().ToString();
    }
  }
  EXPECT_EQ(corruption_caught, 2000u);  // single bit flips are always caught
}

TEST(FrameTest, FuzzRandomGarbageIsRejectedCleanly) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t len = static_cast<size_t>(rng.NextBounded(128));
    std::string bytes(len, '\0');
    for (auto& c : bytes) c = static_cast<char>(rng.NextBounded(256));
    auto result = DecodeBytes(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument() ||
                result.status().IsUnavailable())
        << result.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Message schemas

TEST(WireTest, HelloAndHelloAckRoundTrip) {
  auto peer = net::DecodeHello(net::EncodeHello("piye-mediator"));
  ASSERT_TRUE(peer.ok());
  EXPECT_EQ(*peer, "piye-mediator");

  auto owners = net::DecodeHelloAck(
      net::EncodeHelloAck({"hospital", "pharmacy", "lab"}));
  ASSERT_TRUE(owners.ok());
  EXPECT_EQ(owners->size(), 3u);
  EXPECT_EQ((*owners)[1], "pharmacy");
}

TEST(WireTest, ExecuteRequestResponseRoundTrip) {
  net::ExecuteRequest req;
  req.owner = "hospital";
  req.fragment_xml = "<query requester=\"a\"/>";
  req.deadline_budget_ms = 750;
  auto decoded_req = net::DecodeExecuteRequest(net::EncodeExecuteRequest(req));
  ASSERT_TRUE(decoded_req.ok());
  EXPECT_EQ(decoded_req->owner, req.owner);
  EXPECT_EQ(decoded_req->fragment_xml, req.fragment_xml);
  EXPECT_EQ(decoded_req->deadline_budget_ms, 750u);

  // Status codes cross the wire verbatim — including the ones the engine
  // branches on (privacy refusals are never retried, kUnavailable trips
  // breakers).
  for (const Status& status :
       {Status::OK(), Status::PrivacyViolation("policy refused"),
        Status::Unavailable("flaky"), Status::DeadlineExceeded("late"),
        Status::Cancelled("gone")}) {
    net::ExecuteResponse resp;
    resp.status = status;
    resp.result_xml = status.ok() ? "<result/>" : "";
    auto decoded =
        net::DecodeExecuteResponse(net::EncodeExecuteResponse(resp));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status.code(), status.code());
    EXPECT_EQ(decoded->status.message(), status.message());
    EXPECT_EQ(decoded->result_xml, resp.result_xml);
  }
}

TEST(WireTest, SketchResponseRoundTripsBloomFilter) {
  relational::Table table(relational::Schema{
      {"name", relational::ColumnType::kString}});
  for (const char* v : {"ann", "bob", "cara", "dan"}) {
    table.AppendRowUnchecked({relational::Value::Str(v)});
  }
  auto sketch = match::ColumnSketch::Build({"org", "t", "name"}, table,
                                           "shared-key", /*name_public=*/true);
  ASSERT_TRUE(sketch.ok());
  ASSERT_TRUE(sketch->value_filter.has_value());

  net::SketchResponse resp;
  resp.status = Status::OK();
  resp.sketches.push_back(*sketch);
  auto decoded = net::DecodeSketchResponse(net::EncodeSketchResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->sketches.size(), 1u);
  const match::ColumnSketch& got = decoded->sketches[0];
  EXPECT_EQ(got.ref.ToString(), sketch->ref.ToString());
  EXPECT_EQ(got.type, sketch->type);
  EXPECT_DOUBLE_EQ(got.mean_length, sketch->mean_length);
  EXPECT_DOUBLE_EQ(got.distinct_ratio, sketch->distinct_ratio);
  ASSERT_TRUE(got.value_filter.has_value());
  EXPECT_EQ(got.value_filter->bits(), sketch->value_filter->bits());
  EXPECT_EQ(got.value_filter->num_hashes(), sketch->value_filter->num_hashes());
  // The round-tripped filter must score identically in schema matching.
  EXPECT_DOUBLE_EQ(got.InstanceSimilarity(*sketch), 1.0);
}

TEST(WireTest, FuzzPayloadDecodersNeverCrash) {
  Rng rng(4242);
  for (int trial = 0; trial < 1000; ++trial) {
    const size_t len = static_cast<size_t>(rng.NextBounded(96));
    std::string bytes(len, '\0');
    for (auto& c : bytes) c = static_cast<char>(rng.NextBounded(256));
    // Any outcome is fine except a crash or a hang; errors must be clean.
    (void)net::DecodeHello(bytes);
    (void)net::DecodeHelloAck(bytes);
    (void)net::DecodeExecuteRequest(bytes);
    (void)net::DecodeExecuteResponse(bytes);
    (void)net::DecodeSketchRequest(bytes);
    (void)net::DecodeSketchResponse(bytes);
  }
}

// ---------------------------------------------------------------------------
// Fault injection determinism

TEST(FaultTest, SameSeedSameFaultSchedule) {
  net::FaultPlan plan;
  plan.seed = 1234;
  plan.drop_write_rate = 0.15;
  plan.tear_rate = 0.1;
  plan.corrupt_rate = 0.1;

  auto run = [&plan] {
    auto inner = std::make_unique<BufferTransport>("");
    BufferTransport* raw = inner.get();
    net::FaultInjectingTransport faulty(std::move(inner), plan);
    std::vector<int> outcomes;
    for (int i = 0; i < 64; ++i) {
      const Status s = faulty.WriteAll("0123456789abcdef", net::NoDeadline());
      outcomes.push_back(s.ok() ? 0 : 1);
      if (!s.ok()) break;  // killed connections stay dead, like a real socket
    }
    outcomes.push_back(static_cast<int>(raw->written().size()));
    return outcomes;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GE(a.size(), 2u);
}

TEST(FaultTest, CorruptionSurfacesAtTheReceiverCrc) {
  net::FaultPlan plan;
  plan.seed = 7;
  plan.corrupt_rate = 1.0;  // every write flips one bit
  Frame frame;
  frame.type = MessageType::kExecuteResponse;
  frame.request_id = 9;
  frame.payload = "corrupt me please";

  auto inner = std::make_unique<BufferTransport>("");
  BufferTransport* raw = inner.get();
  net::FaultInjectingTransport faulty(std::move(inner), plan);
  ASSERT_TRUE(net::WriteFrame(faulty, frame, net::NoDeadline()).ok());
  auto decoded = DecodeBytes(raw->written());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument())
      << decoded.status().ToString();
}

// ---------------------------------------------------------------------------
// Client/server over real sockets

std::string UniqueSocketPath(const std::string& tag) {
  return "unix:" + testing::TempDir() + "piye_net_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

struct Cluster {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  std::vector<std::unique_ptr<net::SourceServer>> servers;
  std::vector<std::shared_ptr<net::NetClient>> clients;
  std::vector<std::unique_ptr<net::NetSource>> net_sources;

  Cluster() = default;
  Cluster(Cluster&&) = default;
  Cluster& operator=(Cluster&&) = default;
  ~Cluster() {
    for (auto& client : clients) client->Close();
    for (auto& server : servers) server->Stop();
  }
};

/// One server process-equivalent per source, all in this test process:
/// engine -> NetSource -> NetClient -> socket -> SourceServer -> the very
/// same RemoteSource objects the baseline engine calls directly, so any
/// byte difference is the wire's fault.
Cluster BuildCluster(const std::string& tag, bool tcp = false,
                     net::FaultPlan client_fault = {}) {
  Cluster cluster;
  const char* owners[] = {"hospital", "pharmacy", "lab"};
  for (size_t i = 0; i < 3; ++i) {
    auto tables = core::ClinicalScenario::MakePatientTables(20, 0.3, 100 + i);
    relational::Table table = i == 0   ? std::move(tables.hospital)
                              : i == 1 ? std::move(tables.pharmacy)
                                       : std::move(tables.lab);
    auto src = std::make_unique<source::RemoteSource>(
        owners[i], "patients", std::move(table), /*seed=*/i + 1);
    core::ClinicalScenario::ApplyPatientPolicies(src.get());
    for (const char* requester : {"alice", "bob"}) {
      EXPECT_TRUE(src->mutable_rbac()->AssignRole(requester, "analyst").ok());
    }

    net::ServerConfig server_config;
    server_config.listen_address =
        tcp ? "tcp:127.0.0.1:0"
            : UniqueSocketPath(tag + "_" + std::to_string(i));
    auto server = std::make_unique<net::SourceServer>(server_config);
    server->AddSource(src.get());
    EXPECT_TRUE(server->Start().ok());

    net::ClientConfig client_config;
    client_config.address = server->bound_address();
    client_config.fault = client_fault;
    if (client_fault.enabled()) client_config.fault.seed += i;
    auto client = std::make_shared<net::NetClient>(client_config);
    cluster.net_sources.push_back(
        std::make_unique<net::NetSource>(owners[i], client));
    cluster.clients.push_back(std::move(client));
    cluster.servers.push_back(std::move(server));
    cluster.sources.push_back(std::move(src));
  }
  return cluster;
}

source::PiqlQuery MakeQuery() {
  auto q = source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">"
      "<select>patient_id</select><select>sex</select></query>");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

mediator::MediationEngine::Options EngineOptions() {
  mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  return options;
}

template <typename SourceVector>
std::unique_ptr<mediator::MediationEngine> BuildEngine(
    const SourceVector& sources) {
  auto engine = std::make_unique<mediator::MediationEngine>(EngineOptions());
  for (const auto& src : sources) {
    EXPECT_TRUE(engine->RegisterSource(src.get()).ok());
  }
  EXPECT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
  return engine;
}

TEST(NetFederationTest, FederatedAnswerIsByteIdenticalToInProcess) {
  Cluster cluster = BuildCluster("ident");
  auto wire_engine = BuildEngine(cluster.net_sources);
  auto local_engine = BuildEngine(cluster.sources);

  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  const auto query = MakeQuery();
  auto over_wire = wire_engine->Execute(query, qopts);
  auto in_process = local_engine->Execute(query, qopts);
  ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();
  EXPECT_EQ(over_wire->sources_answered.size(), 3u);
  EXPECT_TRUE(over_wire->sources_skipped.empty());
  EXPECT_EQ(TableBytes(over_wire->table()), TableBytes(in_process->table()));
  EXPECT_DOUBLE_EQ(over_wire->combined_privacy_loss,
                   in_process->combined_privacy_loss);
}

TEST(NetFederationTest, TcpTransportSmoke) {
  Cluster cluster = BuildCluster("tcp", /*tcp=*/true);
  auto engine = BuildEngine(cluster.net_sources);
  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  auto result = engine->Execute(MakeQuery(), qopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sources_answered.size(), 3u);
}

TEST(NetFederationTest, SketchesCrossTheWireIdentically) {
  Cluster cluster = BuildCluster("sketch");
  for (size_t i = 0; i < cluster.sources.size(); ++i) {
    auto direct = cluster.sources[i]->ExportSketches("shared-key");
    auto wired = cluster.net_sources[i]->ExportSketches("shared-key");
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(wired.ok()) << wired.status().ToString();
    ASSERT_EQ(direct->size(), wired->size());
    for (size_t j = 0; j < direct->size(); ++j) {
      EXPECT_EQ((*direct)[j].ref.ToString(), (*wired)[j].ref.ToString());
      EXPECT_DOUBLE_EQ((*direct)[j].InstanceSimilarity((*wired)[j]), 1.0);
    }
  }
}

TEST(NetFederationTest, UnreachableServerSkipsWithUnavailableDetail) {
  Cluster cluster = BuildCluster("skip");
  // Schema generation needs every source reachable; the outage happens
  // after, when the engines are already serving.
  auto engine = BuildEngine(cluster.net_sources);
  auto quorum_engine = BuildEngine(cluster.net_sources);
  // Source 2's server goes away entirely; its client must fail fast with a
  // kUnavailable whose detail names the connect failure, and the engine
  // must integrate the survivors.
  cluster.servers[2]->Stop();

  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  auto result = engine->Execute(MakeQuery(), qopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sources_answered.size(), 2u);
  ASSERT_EQ(result->sources_skipped.count("lab"), 1u);
  const std::string& reason = result->sources_skipped.at("lab");
  EXPECT_NE(reason.find("Unavailable"), std::string::npos) << reason;
  EXPECT_NE(reason.find("unreachable"), std::string::npos) << reason;

  // Quorum stays enforceable over the wire.
  qopts.min_sources = 3;
  qopts.coalesce = false;
  auto quorum = quorum_engine->Execute(MakeQuery(), qopts);
  ASSERT_FALSE(quorum.ok());
  EXPECT_TRUE(quorum.status().IsUnavailable());
}

TEST(NetFederationTest, HealthReportsTransportStats) {
  Cluster cluster = BuildCluster("health");
  auto engine = BuildEngine(cluster.net_sources);
  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  ASSERT_TRUE(engine->Execute(MakeQuery(), qopts).ok());

  const auto health = engine->Health();
  ASSERT_EQ(health.sources.size(), 3u);
  for (const auto& source_health : health.sources) {
    EXPECT_TRUE(source_health.transport.over_network);
    EXPECT_GE(source_health.transport.connects, 1u);
    // Handshake is not counted as a request frame; at least sketches +
    // fragment went out.
    EXPECT_GE(source_health.transport.frames_sent, 2u);
    EXPECT_GE(source_health.transport.frames_received, 2u);
    EXPECT_EQ(source_health.transport.corrupt_frames, 0u);
  }

  // The in-process path reports over_network = false.
  auto local_engine = BuildEngine(cluster.sources);
  for (const auto& source_health : local_engine->Health().sources) {
    EXPECT_FALSE(source_health.transport.over_network);
  }
}

TEST(NetFederationTest, FaultStormSurvivedByRetryAndReconnect) {
  net::FaultPlan storm;
  storm.seed = 20260808;
  storm.drop_write_rate = 0.05;
  storm.tear_rate = 0.04;
  storm.corrupt_rate = 0.04;
  storm.drop_read_rate = 0.04;
  Cluster cluster = BuildCluster("storm", /*tcp=*/false, storm);
  auto engine = BuildEngine(cluster.net_sources);
  auto local_engine = BuildEngine(cluster.sources);

  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  qopts.max_retries = 6;
  qopts.coalesce = false;
  const auto query = MakeQuery();
  auto baseline = local_engine->Execute(query, qopts);
  ASSERT_TRUE(baseline.ok());
  const std::string expected = TableBytes(baseline->table());

  size_t full_answers = 0;
  for (int round = 0; round < 8; ++round) {
    auto result = engine->Execute(query, qopts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->sources_answered.size() == 3) {
      ++full_answers;
      // Whatever survived the storm must be byte-identical — corruption is
      // either caught by CRC (and retried) or never happened.
      EXPECT_EQ(TableBytes(result->table()), expected);
    }
  }
  EXPECT_GT(full_answers, 0u) << "storm drowned every round";

  // The storm must be visible in the transport stats.
  uint64_t disconnects = 0, reconnects = 0;
  for (const auto& source_health : engine->Health().sources) {
    disconnects += source_health.transport.disconnects;
    reconnects += source_health.transport.reconnects;
  }
  EXPECT_GT(disconnects, 0u);
  EXPECT_GT(reconnects, 0u);
}

TEST(NetFederationTest, DeadlinePropagatesAndTimesOutCleanly) {
  Cluster cluster = BuildCluster("deadline");
  // Every source hangs far longer than the query deadline.
  for (auto& src : cluster.sources) {
    source::RemoteSource::FaultInjection faults;
    faults.latency_micros = 300'000;
    src->set_fault_injection(faults);
  }
  auto engine = BuildEngine(cluster.net_sources);
  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  qopts.deadline_ms = 60;
  qopts.coalesce = false;
  const auto started = std::chrono::steady_clock::now();
  auto result = engine->Execute(MakeQuery(), qopts);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable() ||
              result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // Responsiveness: the expiry returns promptly instead of riding out the
  // 300 ms hang per source.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(2000));
}

TEST(NetFederationTest, WindowBackpressureAdmitsAllEventually) {
  Cluster cluster = BuildCluster("window");
  net::ClientConfig config;
  config.address = cluster.servers[0]->bound_address();
  config.connections = 1;
  config.max_inflight_per_connection = 2;  // tiny window forces waiting
  net::NetClient client(config);

  const std::string fragment_xml =
      xml::Serialize(*MakeQuery().ToXml(), /*indent=*/-1);
  std::atomic<size_t> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      auto result = client.ExecuteFragmentXml("hospital", fragment_xml);
      if (result.ok()) ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), 8u);
  client.Close();
}

TEST(NetFederationTest, ServerStopDrainsGracefully) {
  Cluster cluster = BuildCluster("drain");
  net::ClientConfig config;
  config.address = cluster.servers[0]->bound_address();
  net::NetClient client(config);
  const std::string fragment_xml =
      xml::Serialize(*MakeQuery().ToXml(), /*indent=*/-1);
  // Prove liveness, then stop the server and expect clean kUnavailable for
  // subsequent calls (dial refused), not hangs.
  ASSERT_TRUE(client.ExecuteFragmentXml("hospital", fragment_xml).ok());
  cluster.servers[0]->Stop();
  auto result = client.ExecuteFragmentXml("hospital", fragment_xml);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  client.Close();
}

}  // namespace
}  // namespace piye

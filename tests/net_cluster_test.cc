// True multi-process federation: these tests fork/exec real source_server
// processes (one per clinical organization), point a mediation engine at
// them through NetSources over Unix domain sockets, and check the paper's
// federation story end to end across address spaces — byte-identical
// answers versus the in-process path, graceful degradation when a server is
// SIGKILLed mid-traffic, zero budget charged for failed queries, and
// circuit breakers that reopen once a killed server is restarted.
//
// The server binary is located through PIYE_SOURCE_SERVER_BIN (set by
// ctest) with a /proc/self/exe-relative fallback; the tests skip if it is
// missing (e.g. a test binary copied out of its build tree).

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "mediator/engine.h"
#include "net/client.h"
#include "net/net_source.h"
#include "relational/xml_bridge.h"
#include "source/remote_source.h"
#include "xml/parser.h"

namespace piye {
namespace {

std::string TableBytes(const relational::Table& t) {
  return xml::Serialize(*relational::TableToXml(t, "t"), /*indent=*/-1);
}

std::string ServerBinary() {
  if (const char* env = std::getenv("PIYE_SOURCE_SERVER_BIN")) return env;
  // Fallback: tests build into <build>/tests, the server into <build>/tools.
  char exe[4096];
  const ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) return "";
  exe[n] = '\0';
  std::string path(exe);
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  path = path.substr(0, slash) + "/../tools/source_server";
  return ::access(path.c_str(), X_OK) == 0 ? path : "";
}

/// Serializes a table as record-shaped XML (<patients><patient>...</patient>
/// ...</patients>) — the ingestion format of TableFromXmlRecords. NULLs are
/// omitted fields. Both the servers and the in-process baseline ingest this
/// same text, so schema/type inference agrees on the two sides and any
/// answer difference is the transport's fault.
std::string RecordsXml(const relational::Table& table) {
  auto root = xml::XmlNode::Element("patients");
  for (size_t r = 0; r < table.num_rows(); ++r) {
    xml::XmlNode* record = root->AddElement("patient");
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const relational::Value v = table.Cell(r, c);
      if (v.is_null()) continue;
      record->AddElementWithText(table.schema().column(c).name,
                                 v.ToDisplayString());
    }
  }
  return xml::Serialize(*root, /*indent=*/-1);
}

/// One spawned source_server child. Started with its stdout on a pipe; the
/// harness waits for the "LISTENING <addr>" readiness line.
struct ServerProc {
  pid_t pid = -1;
  int out_fd = -1;
  std::string address;

  bool running() const { return pid > 0; }

  void Reap() {
    if (pid > 0) {
      int status = 0;
      waitpid(pid, &status, 0);
      pid = -1;
    }
    if (out_fd >= 0) {
      close(out_fd);
      out_fd = -1;
    }
  }
  void Kill() {
    if (pid > 0) kill(pid, SIGKILL);
    Reap();
  }
  void Terminate() {
    if (pid > 0) kill(pid, SIGTERM);
    Reap();
  }
};

ServerProc SpawnServer(const std::vector<std::string>& args) {
  ServerProc proc;
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return proc;

  const pid_t pid = fork();
  if (pid < 0) {
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return proc;
  }
  if (pid == 0) {
    dup2(pipe_fds[1], STDOUT_FILENO);
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    std::vector<char*> argv;
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }
  close(pipe_fds[1]);
  proc.pid = pid;
  proc.out_fd = pipe_fds[0];

  // Wait for the readiness line (bounded; a child that dies instead of
  // listening closes the pipe and we fail fast).
  std::string line;
  char ch;
  while (line.find('\n') == std::string::npos) {
    const ssize_t n = read(proc.out_fd, &ch, 1);
    if (n <= 0) break;
    line.push_back(ch);
  }
  const std::string prefix = "LISTENING ";
  if (line.rfind(prefix, 0) == 0) {
    proc.address = line.substr(prefix.size());
    while (!proc.address.empty() &&
           (proc.address.back() == '\n' || proc.address.back() == '\r')) {
      proc.address.pop_back();
    }
  } else {
    proc.Kill();
  }
  return proc;
}

constexpr const char* kOwners[] = {"hospital", "pharmacy", "lab"};

class NetClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    binary_ = ServerBinary();
    if (binary_.empty()) {
      GTEST_SKIP() << "source_server binary not found "
                      "(set PIYE_SOURCE_SERVER_BIN)";
    }
    // One record-XML file per organization, from the shared clinical
    // scenario (same parameters as the in-process chaos suite).
    for (size_t i = 0; i < 3; ++i) {
      auto tables = core::ClinicalScenario::MakePatientTables(20, 0.3, 100 + i);
      const relational::Table& table = i == 0   ? tables.hospital
                                       : i == 1 ? tables.pharmacy
                                                : tables.lab;
      records_xml_[i] = RecordsXml(table);
      data_files_[i] = TempPath(std::string(kOwners[i]) + ".xml");
      std::ofstream out(data_files_[i], std::ios::binary);
      out << records_xml_[i];
      ASSERT_TRUE(out.good());
      socket_paths_[i] = TempPath(std::string(kOwners[i]) + ".sock");
    }
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(StartServer(i)) << "server " << kOwners[i]
                                  << " failed to start";
    }
  }

  void TearDown() override {
    for (auto& client : clients_) {
      if (client) client->Close();
    }
    for (auto& server : servers_) server.Terminate();
  }

  std::string TempPath(const std::string& leaf) const {
    return testing::TempDir() + "piye_cluster_" + std::to_string(::getpid()) +
           "_" + leaf;
  }

  bool StartServer(size_t i) {
    servers_[i] = SpawnServer(
        {binary_, "--listen=unix:" + socket_paths_[i],
         "--source=owner=" + std::string(kOwners[i]) +
             ",table=patients,file=" + data_files_[i] +
             ",seed=" + std::to_string(i + 1),
         "--clinical-policies"});
    return servers_[i].running() && !servers_[i].address.empty();
  }

  /// In-process baseline sources, built from the very same record XML and
  /// seeds the servers ingest.
  std::vector<std::unique_ptr<source::RemoteSource>> BaselineSources() {
    std::vector<std::unique_ptr<source::RemoteSource>> sources;
    for (size_t i = 0; i < 3; ++i) {
      auto src = source::RemoteSource::FromXmlRecords(kOwners[i], "patients",
                                                      records_xml_[i], i + 1);
      EXPECT_TRUE(src.ok()) << src.status().ToString();
      core::ClinicalScenario::ApplyPatientPolicies(src->get());
      for (const char* requester : {"alice", "bob"}) {
        EXPECT_TRUE(
            (*src)->mutable_rbac()->AssignRole(requester, "analyst").ok());
      }
      sources.push_back(std::move(*src));
    }
    return sources;
  }

  std::vector<std::unique_ptr<net::NetSource>> WireSources(
      net::FaultPlan fault = {}) {
    std::vector<std::unique_ptr<net::NetSource>> sources;
    for (size_t i = 0; i < 3; ++i) {
      net::ClientConfig config;
      config.address = servers_[i].address;
      config.fault = fault;
      if (fault.enabled()) config.fault.seed += i;
      auto client = std::make_shared<net::NetClient>(config);
      sources.push_back(std::make_unique<net::NetSource>(kOwners[i], client));
      clients_.push_back(std::move(client));
    }
    return sources;
  }

  static mediator::MediationEngine::Options EngineOptions() {
    mediator::MediationEngine::Options options;
    options.max_combined_loss = 0.95;
    options.max_cumulative_loss = 1e9;
    options.enable_warehouse = false;
    return options;
  }

  template <typename SourceVector>
  static std::unique_ptr<mediator::MediationEngine> BuildEngine(
      const SourceVector& sources,
      mediator::MediationEngine::Options options = EngineOptions()) {
    auto engine = std::make_unique<mediator::MediationEngine>(options);
    for (const auto& src : sources) {
      EXPECT_TRUE(engine->RegisterSource(src.get()).ok());
    }
    EXPECT_TRUE(engine->GenerateMediatedSchema("shared-key").ok());
    return engine;
  }

  static source::PiqlQuery MakeQuery() {
    auto q = source::PiqlQuery::Parse(
        "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">"
        "<select>patient_id</select><select>sex</select></query>");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::string binary_;
  std::string records_xml_[3];
  std::string data_files_[3];
  std::string socket_paths_[3];
  ServerProc servers_[3];
  std::vector<std::shared_ptr<net::NetClient>> clients_;
};

TEST_F(NetClusterTest, AnswerIsByteIdenticalAcrossProcessBoundaries) {
  auto wire_sources = WireSources();
  auto baseline_sources = BaselineSources();
  auto wire_engine = BuildEngine(wire_sources);
  auto local_engine = BuildEngine(baseline_sources);

  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  const auto query = MakeQuery();
  auto federated = wire_engine->Execute(query, qopts);
  auto in_process = local_engine->Execute(query, qopts);
  ASSERT_TRUE(federated.ok()) << federated.status().ToString();
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();
  EXPECT_EQ(federated->sources_answered.size(), 3u);
  EXPECT_TRUE(federated->sources_skipped.empty());
  EXPECT_EQ(TableBytes(federated->table()), TableBytes(in_process->table()));
  EXPECT_DOUBLE_EQ(federated->combined_privacy_loss,
                   in_process->combined_privacy_loss);

  // Repeatability across separate federated executions too.
  auto again = wire_engine->Execute(query, qopts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(TableBytes(again->table()), TableBytes(federated->table()));
}

TEST_F(NetClusterTest, SeededFaultStormConvergesToTheSameBytes) {
  net::FaultPlan storm;
  storm.seed = 0xC1A05;
  storm.drop_write_rate = 0.05;
  storm.tear_rate = 0.04;
  storm.corrupt_rate = 0.04;
  storm.drop_read_rate = 0.04;
  auto wire_sources = WireSources(storm);
  auto baseline_sources = BaselineSources();
  // Sketch export rides the same faulty wire, so schema generation itself
  // may need a retry or two — but must succeed without re-registration.
  auto wire_engine =
      std::make_unique<mediator::MediationEngine>(EngineOptions());
  for (const auto& src : wire_sources) {
    ASSERT_TRUE(wire_engine->RegisterSource(src.get()).ok());
  }
  Status schema_status = Status::OK();
  for (int attempt = 0; attempt < 10; ++attempt) {
    schema_status = wire_engine->GenerateMediatedSchema("shared-key");
    if (schema_status.ok()) break;
  }
  ASSERT_TRUE(schema_status.ok()) << schema_status.ToString();

  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  qopts.max_retries = 6;
  qopts.coalesce = false;
  const auto query = MakeQuery();
  auto baseline = BuildEngine(baseline_sources)->Execute(query, qopts);
  ASSERT_TRUE(baseline.ok());
  const std::string expected = TableBytes(baseline->table());

  size_t full_answers = 0;
  for (int round = 0; round < 8; ++round) {
    auto result = wire_engine->Execute(query, qopts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->sources_answered.size() == 3) {
      ++full_answers;
      EXPECT_EQ(TableBytes(result->table()), expected);
    }
  }
  EXPECT_GT(full_answers, 0u) << "storm drowned every round";
}

TEST_F(NetClusterTest, SigkillMidTrafficDegradesToQuorumAndChargesNoGhostBudget) {
  auto wire_sources = WireSources();
  auto engine = BuildEngine(wire_sources);
  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  qopts.min_sources = 2;
  qopts.max_retries = 2;
  qopts.coalesce = false;
  const auto query = MakeQuery();

  // Traffic in flight while the lab server dies: every concurrent query must
  // either succeed on the surviving quorum or fail cleanly — never crash or
  // hang the engine.
  std::vector<std::thread> traffic;
  for (int t = 0; t < 3; ++t) {
    traffic.emplace_back([&] {
      for (int round = 0; round < 6; ++round) {
        auto result = engine->Execute(query, qopts);
        if (result.ok()) {
          EXPECT_GE(result->sources_answered.size(), 2u);
        } else {
          EXPECT_TRUE(result.status().IsUnavailable() ||
                      result.status().IsDeadlineExceeded())
              << result.status().ToString();
        }
      }
    });
  }
  servers_[2].Kill();
  for (auto& t : traffic) t.join();

  // Settled state: the dead server is skipped with a kUnavailable reason
  // naming the transport failure, and the answer still integrates.
  auto degraded = engine->Execute(query, qopts);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->sources_answered.size(), 2u);
  ASSERT_EQ(degraded->sources_skipped.count("lab"), 1u);
  EXPECT_NE(degraded->sources_skipped.at("lab").find("Unavailable"),
            std::string::npos)
      << degraded->sources_skipped.at("lab");

  // A query whose quorum cannot be met fails kUnavailable and charges zero
  // budget — degradation must not bill the requester for refused answers.
  const double before = engine->history()->CumulativeLoss("alice");
  mediator::QueryOptions strict = qopts;
  strict.min_sources = 3;
  auto refused = engine->Execute(query, strict);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable()) << refused.status().ToString();
  EXPECT_DOUBLE_EQ(engine->history()->CumulativeLoss("alice"), before);
}

TEST_F(NetClusterTest, BreakerOpensOnDeadServerAndReclosesAfterRestart) {
  auto wire_sources = WireSources();
  auto baseline_sources = BaselineSources();
  auto options = EngineOptions();
  options.enable_circuit_breakers = true;
  options.circuit_breaker.failure_threshold = 2;
  options.circuit_breaker.open_cooldown_ms = 100;
  auto engine = BuildEngine(wire_sources, options);

  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  qopts.min_sources = 2;
  qopts.max_retries = 0;
  qopts.coalesce = false;
  const auto query = MakeQuery();
  const std::string expected =
      TableBytes(BuildEngine(baseline_sources)->Execute(query, qopts)->table());

  servers_[1].Kill();
  // Each failed fan-out counts one breaker failure for pharmacy; after the
  // threshold the breaker opens and sheds it without dialing.
  auto BreakerState = [&](const std::string& owner) {
    for (const auto& src : engine->Health().sources) {
      if (src.owner == owner) return src.breaker_state;
    }
    return std::string("missing");
  };
  for (int round = 0; round < 6 && BreakerState("pharmacy") != "open";
       ++round) {
    auto result = engine->Execute(query, qopts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(BreakerState("pharmacy"), "open");

  // Restart the server on the same socket path; after the cooldown the next
  // query lets a half-open probe through, the probe succeeds, the breaker
  // recloses, and the full-fleet answer is byte-identical again.
  ASSERT_TRUE(StartServer(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  bool recovered = false;
  for (int round = 0; round < 10 && !recovered; ++round) {
    auto result = engine->Execute(query, qopts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->sources_answered.size() == 3) {
      recovered = true;
      EXPECT_EQ(TableBytes(result->table()), expected);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(recovered) << "breaker never readmitted the restarted server";
  EXPECT_EQ(BreakerState("pharmacy"), "closed");
}

TEST_F(NetClusterTest, GracefulShutdownDrainsInFlightWork) {
  auto wire_sources = WireSources();
  auto engine = BuildEngine(wire_sources);
  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  ASSERT_TRUE(engine->Execute(MakeQuery(), qopts).ok());

  // SIGTERM triggers the server's graceful drain path; it must actually
  // exit (Terminate reaps with a blocking waitpid — a hang here times the
  // whole test out, which is the failure signal).
  servers_[0].Terminate();
  EXPECT_FALSE(servers_[0].running());
}

}  // namespace
}  // namespace piye

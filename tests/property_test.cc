#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "anonymity/hierarchy.h"
#include "anonymity/kanonymity.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/private_iye.h"
#include "core/scenario.h"
#include "relational/sql.h"
#include "relational/xml_bridge.h"
#include "xml/parser.h"
#include "inference/constraint.h"
#include "inference/interval_solver.h"
#include "inference/nlp_solver.h"
#include "linkage/psi.h"
#include "mediator/privacy_control.h"
#include "perturb/noise.h"
#include "perturb/reconstruction.h"
#include "statdb/audit.h"

namespace piye {
namespace {

// ===========================================================================
// Property-style parameterized sweeps over the library's core invariants.
// ===========================================================================

// --- PSI correctness: every protocol equals the plaintext intersection for
// --- random sets of varying sizes and overlaps.

struct PsiCase {
  int protocol;   // 0 plaintext, 1 hash, 2 dh
  size_t universe;
  double density;
  uint64_t seed;
};

class PsiPropertyTest : public ::testing::TestWithParam<PsiCase> {};

TEST_P(PsiPropertyTest, MatchesGroundTruth) {
  const PsiCase param = GetParam();
  Rng rng(param.seed);
  std::vector<std::string> a, b;
  std::set<std::string> truth;
  for (size_t i = 0; i < param.universe; ++i) {
    const std::string key = "k" + std::to_string(i);
    const bool in_a = rng.NextBernoulli(param.density);
    const bool in_b = rng.NextBernoulli(param.density);
    if (in_a) a.push_back(key);
    if (in_b) b.push_back(key);
    if (in_a && in_b) truth.insert(key);
  }
  std::unique_ptr<linkage::PsiProtocol> protocol;
  switch (param.protocol) {
    case 0:
      protocol = std::make_unique<linkage::PlaintextJoin>();
      break;
    case 1:
      protocol = std::make_unique<linkage::HashPsi>("s");
      break;
    default:
      protocol = std::make_unique<linkage::DhPsi>(param.seed);
  }
  auto result = protocol->Intersect(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::set<std::string>(result->begin(), result->end()), truth);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PsiPropertyTest,
    ::testing::Values(PsiCase{0, 50, 0.5, 1}, PsiCase{1, 50, 0.5, 2},
                      PsiCase{2, 50, 0.5, 3}, PsiCase{2, 200, 0.1, 4},
                      PsiCase{2, 200, 0.9, 5}, PsiCase{1, 500, 0.3, 6},
                      PsiCase{2, 17, 1.0, 7}, PsiCase{2, 64, 0.0, 8}));

// --- k-anonymity invariant: for every k and seed, the anonymizer's output
// --- really is k-anonymous and suppression stays within bounds.

struct KanonCase {
  size_t k;
  uint64_t seed;
  size_t rows;
};

class KanonPropertyTest : public ::testing::TestWithParam<KanonCase> {};

TEST_P(KanonPropertyTest, OutputIsAlwaysKAnonymous) {
  const KanonCase param = GetParam();
  Rng rng(param.seed);
  relational::Table t(relational::Schema{
      relational::Column{"age", relational::ColumnType::kInt64},
      relational::Column{"zip", relational::ColumnType::kInt64}});
  for (size_t i = 0; i < param.rows; ++i) {
    (void)t.AppendRow({relational::Value::Int(
                           static_cast<int64_t>(20 + rng.NextBounded(60))),
                       relational::Value::Int(
                           static_cast<int64_t>(10000 + rng.NextBounded(200)))});
  }
  const anonymity::KAnonymizer anonymizer(
      {{"age",
        std::make_shared<anonymity::NumericHierarchy>(0.0,
                                                      std::vector<double>{5, 20, 50})},
       {"zip", std::make_shared<anonymity::NumericHierarchy>(
                   0.0, std::vector<double>{50, 200})}},
      param.k, /*max_suppression=*/param.rows / 10);
  auto result = anonymizer.Anonymize(t);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto check = anonymity::IsKAnonymous(result->table, {"age", "zip"}, param.k);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(*check) << "k=" << param.k << " seed=" << param.seed;
  EXPECT_LE(result->suppressed_rows, param.rows / 10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KanonPropertyTest,
                         ::testing::Values(KanonCase{2, 1, 60}, KanonCase{3, 2, 60},
                                           KanonCase{5, 3, 80}, KanonCase{10, 4, 120},
                                           KanonCase{2, 5, 30}, KanonCase{4, 6, 200},
                                           KanonCase{25, 7, 100}));

// --- Interval propagation soundness: the true solution always stays inside
// --- the propagated box, for random feasible systems.

class PropagationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationPropertyTest, OuterBoxContainsTruth) {
  Rng rng(GetParam());
  const size_t n = 6;
  // A hidden truth, then constraints generated *from* the truth so the
  // system is feasible by construction.
  std::vector<double> truth(n);
  inference::ConstraintSystem sys;
  for (size_t i = 0; i < n; ++i) {
    truth[i] = rng.NextUniform(0.0, 100.0);
    sys.AddVariable("x" + std::to_string(i), 0.0, 100.0);
  }
  for (int c = 0; c < 4; ++c) {
    // Random subset mean constraint.
    std::vector<size_t> vars;
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBernoulli(0.6)) {
        vars.push_back(i);
        sum += truth[i];
      }
    }
    if (vars.empty()) continue;
    sys.AddMeanConstraint(vars, sum / static_cast<double>(vars.size()), 0.05);
  }
  // One stddev constraint over everything.
  double mean = 0.0;
  for (double x : truth) mean += x;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double x : truth) var += (x - mean) * (x - mean);
  sys.AddStdDevConstraint({0, 1, 2, 3, 4, 5}, mean,
                          std::sqrt(var / static_cast<double>(n)), 0.05);

  inference::IntervalPropagator propagator(&sys);
  auto box = propagator.Propagate();
  ASSERT_TRUE(box.ok()) << box.status().ToString();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(truth[i], (*box)[i].lo - 1e-6) << i;
    EXPECT_LE(truth[i], (*box)[i].hi + 1e-6) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PropagationPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

// --- NLP attained bounds are inner bounds: they never extend beyond the
// --- sound outer box, and the attack interval always contains the truth.

class NlpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NlpPropertyTest, AttainedBoundsInsideOuterBox) {
  Rng rng(GetParam() * 101);
  inference::ConstraintSystem sys;
  const size_t n = 4;
  std::vector<double> truth(n);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = rng.NextUniform(10.0, 90.0);
    sys.AddVariable("x" + std::to_string(i), 0.0, 100.0);
  }
  double sum = 0.0;
  for (double x : truth) sum += x;
  sys.AddMeanConstraint({0, 1, 2, 3}, sum / 4.0, 0.1);
  ASSERT_TRUE(sys.FixVariable(0, truth[0]).ok());

  inference::IntervalPropagator propagator(&sys);
  auto outer = propagator.Propagate();
  ASSERT_TRUE(outer.ok());
  inference::NlpBoundSolver solver(&sys, GetParam());
  for (size_t i = 1; i < n; ++i) {
    auto bound = solver.Bound(i);
    ASSERT_TRUE(bound.ok());
    ASSERT_TRUE(bound->feasible);
    EXPECT_GE(bound->lower, (*outer)[i].lo - 0.5);
    EXPECT_LE(bound->upper, (*outer)[i].hi + 0.5);
    EXPECT_LE(bound->lower, truth[i] + 0.5);
    EXPECT_GE(bound->upper, truth[i] - 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NlpPropertyTest, ::testing::Range<uint64_t>(1, 9));

// --- Chin audit safety: under random query streams the auditor never lets a
// --- record become exactly determinable.

class AuditPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AuditPropertyTest, NoRecordEverDeterminable) {
  Rng rng(GetParam() * 7);
  relational::Table t(relational::Schema{
      relational::Column{"id", relational::ColumnType::kInt64},
      relational::Column{"v", relational::ColumnType::kDouble}});
  const size_t n = 12;
  for (size_t i = 0; i < n; ++i) {
    (void)t.AppendRow({relational::Value::Int(static_cast<int64_t>(i)),
                       relational::Value::Real(rng.NextUniform(0, 100))});
  }
  statdb::SumAuditor auditor(n);
  for (int q = 0; q < 30; ++q) {
    // Random subset as an IN-list predicate.
    std::vector<relational::Value> ids;
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBernoulli(0.4)) {
        ids.push_back(relational::Value::Int(static_cast<int64_t>(i)));
      }
    }
    if (ids.empty()) continue;
    statdb::AggregateQuery query;
    query.func = relational::AggFunc::kSum;
    query.column = "v";
    query.predicate = relational::Expression::In(
        relational::Expression::ColumnRef("id"), ids);
    (void)auditor.Answer(query, t);  // refusals are fine; leaks are not
    EXPECT_TRUE(auditor.DeterminableRecords().empty())
        << "after query " << q << " with " << ids.size() << " ids";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AuditPropertyTest, ::testing::Range<uint64_t>(1, 9));

// --- Reconstruction quality improves with sample size (consistency).

class ReconstructionPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, double>> {};

TEST_P(ReconstructionPropertyTest, ErrorShrinksWithData) {
  const auto [n, sigma] = GetParam();
  Rng rng(n + static_cast<uint64_t>(sigma));
  std::vector<double> original;
  for (size_t i = 0; i < n; ++i) {
    original.push_back(i % 2 == 0 ? rng.NextGaussian(30, 4) : rng.NextGaussian(70, 4));
  }
  const perturb::AdditiveNoise noise(perturb::AdditiveNoise::Distribution::kGaussian,
                                     sigma);
  const auto perturbed = noise.Perturb(original, &rng);
  perturb::DistributionReconstructor recon(0, 100, 20);
  auto f = recon.Reconstruct(perturbed, noise);
  ASSERT_TRUE(f.ok());
  const auto truth = recon.Bucketize(original);
  const double err_recon =
      perturb::DistributionReconstructor::L1Distance(truth, *f);
  const double err_naive =
      perturb::DistributionReconstructor::L1Distance(truth, recon.Bucketize(perturbed));
  // The invariant: reconstruction always beats reading the perturbed
  // histogram directly, and stays under the trivial L1 bound of 2.
  EXPECT_LT(err_recon, err_naive);
  EXPECT_LT(err_recon, 1.2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReconstructionPropertyTest,
                         ::testing::Values(std::make_pair<size_t, double>(500, 10.0),
                                           std::make_pair<size_t, double>(2000, 10.0),
                                           std::make_pair<size_t, double>(2000, 25.0),
                                           std::make_pair<size_t, double>(5000, 25.0)));

// --- Privacy-control loss combination is monotone and bounded.

class CombineLossPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CombineLossPropertyTest, MonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<double> losses;
  double prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    losses.push_back(rng.NextDouble());
    const double combined = mediator::PrivacyControl::CombineLosses(losses);
    EXPECT_GE(combined, prev - 1e-12);          // adding a result never helps
    EXPECT_GE(combined, *std::max_element(losses.begin(), losses.end()) - 1e-12);
    EXPECT_LE(combined, 1.0 + 1e-12);
    prev = combined;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CombineLossPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace piye

namespace piye {
namespace {

// --- Grammar round-trips under random generation ---

relational::ExprPtr RandomExpr(Rng* rng, int depth) {
  using relational::Expression;
  using relational::Value;
  const char* columns[] = {"a", "b", "c"};
  if (depth <= 0 || rng->NextBernoulli(0.3)) {
    if (rng->NextBernoulli(0.5)) {
      return Expression::ColumnRef(columns[rng->NextBounded(3)]);
    }
    switch (rng->NextBounded(3)) {
      case 0:
        return Expression::Literal(Value::Int(static_cast<int64_t>(
            rng->NextBounded(100))));
      case 1:
        return Expression::Literal(Value::Real(
            static_cast<double>(rng->NextBounded(1000)) / 8.0));
      default:
        return Expression::Literal(Value::Str("s" + std::to_string(rng->NextBounded(5))));
    }
  }
  const Expression::Op ops[] = {Expression::Op::kEq,  Expression::Op::kNe,
                                Expression::Op::kLt,  Expression::Op::kLe,
                                Expression::Op::kGt,  Expression::Op::kGe,
                                Expression::Op::kAnd, Expression::Op::kOr,
                                Expression::Op::kAdd, Expression::Op::kSub,
                                Expression::Op::kMul};
  if (rng->NextBernoulli(0.1)) {
    return Expression::Not(RandomExpr(rng, depth - 1));
  }
  return Expression::Binary(ops[rng->NextBounded(11)], RandomExpr(rng, depth - 1),
                            RandomExpr(rng, depth - 1));
}

class ExprRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprRoundTripTest, ToStringParsesBackToSameEvaluation) {
  Rng rng(GetParam() * 31 + 7);
  const relational::Schema schema{
      relational::Column{"a", relational::ColumnType::kInt64},
      relational::Column{"b", relational::ColumnType::kDouble},
      relational::Column{"c", relational::ColumnType::kString}};
  for (int trial = 0; trial < 50; ++trial) {
    const auto expr = RandomExpr(&rng, 4);
    auto reparsed = relational::ParseExpression(expr->ToString());
    ASSERT_TRUE(reparsed.ok()) << expr->ToString() << " : "
                               << reparsed.status().ToString();
    // Evaluate both on random rows; results must agree (or both error).
    for (int r = 0; r < 10; ++r) {
      const relational::Row row{
          relational::Value::Int(static_cast<int64_t>(rng.NextBounded(100))),
          relational::Value::Real(rng.NextUniform(0, 100)),
          relational::Value::Str("s" + std::to_string(rng.NextBounded(5)))};
      auto v1 = expr->Evaluate(row, schema);
      auto v2 = (*reparsed)->Evaluate(row, schema);
      ASSERT_EQ(v1.ok(), v2.ok()) << expr->ToString();
      if (v1.ok()) {
        EXPECT_TRUE(*v1 == *v2 ||
                    (v1->is_numeric() && v2->is_numeric() &&
                     std::fabs(v1->AsDouble() - v2->AsDouble()) < 1e-9))
            << expr->ToString() << " -> " << v1->ToString() << " vs "
            << v2->ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExprRoundTripTest, ::testing::Range<uint64_t>(1, 7));

class TableXmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableXmlRoundTripTest, SerializeParseIsIdentity) {
  Rng rng(GetParam() * 97);
  relational::Table t(relational::Schema{
      relational::Column{"id", relational::ColumnType::kInt64},
      relational::Column{"name", relational::ColumnType::kString},
      relational::Column{"score", relational::ColumnType::kDouble},
      relational::Column{"flag", relational::ColumnType::kBool}});
  const char* nasty[] = {"plain", "with space", "a<b&c>'d\"", "", "123",
                         "trailing  "};
  for (int i = 0; i < 30; ++i) {
    relational::Row row;
    row.push_back(rng.NextBernoulli(0.1)
                      ? relational::Value::Null()
                      : relational::Value::Int(static_cast<int64_t>(rng.Next() % 1000)));
    row.push_back(relational::Value::Str(nasty[rng.NextBounded(6)]));
    row.push_back(relational::Value::Real(
        static_cast<double>(rng.NextBounded(1000000)) / 64.0));
    row.push_back(relational::Value::Boolean(rng.NextBernoulli(0.5)));
    ASSERT_TRUE(t.AppendRow(std::move(row)).ok());
  }
  auto node = relational::TableToXml(t, "fuzz");
  const std::string wire = xml::Serialize(*node);
  auto doc = xml::Parse(wire);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto back = relational::XmlToTable(doc->root());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->schema(), t.schema());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.schema().num_columns(); ++c) {
      const auto orig = t.Cell(r, c);
      const auto got = back->Cell(r, c);
      if (orig.is_double()) {
        EXPECT_NEAR(orig.AsDouble(), got.AsDouble(),
                    1e-6 * std::max(1.0, std::fabs(orig.AsDouble())))
            << r << "," << c;
      } else if (orig.is_string()) {
        // Whitespace-only distinctions at the edges are not preserved by the
        // XML text model (trimming); compare trimmed.
        EXPECT_EQ(strings::Trim(orig.AsString()), strings::Trim(got.AsString()));
      } else {
        EXPECT_TRUE(orig == got) << r << "," << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TableXmlRoundTripTest,
                         ::testing::Range<uint64_t>(1, 6));

// --- Whole-system metamorphic invariants over random PIQL queries ---

class SystemInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SystemInvariantTest, DeniedColumnsNeverLeakWhateverTheQuery) {
  Rng rng(GetParam() * 1009);
  mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  core::PrivateIye system(options);
  auto tables = core::ClinicalScenario::MakePatientTables(25, 0.5, GetParam());
  auto* hospital =
      system.AddSource("hospital", "patients", std::move(tables.hospital), 1);
  auto* pharmacy = system.AddSource("pharmacy", "rx", std::move(tables.pharmacy), 2);
  auto* lab = system.AddSource("lab", "tests", std::move(tables.lab), 3);
  core::ClinicalScenario::ApplyPatientPolicies(hospital);
  core::ClinicalScenario::ApplyPatientPolicies(pharmacy);
  core::ClinicalScenario::ApplyPatientPolicies(lab);
  ASSERT_TRUE(system.Initialize().ok());

  const char* attributes[] = {"name",      "patientName", "dob",  "birthdate",
                              "diagnosis", "drug",        "test", "zip",
                              "sex",       "patient_id"};
  const char* purposes[] = {"research", "treatment", "marketing", "any"};
  for (int trial = 0; trial < 25; ++trial) {
    source::PiqlQuery q;
    q.requester = "analyst";
    q.purpose = purposes[rng.NextBounded(4)];
    q.max_information_loss = rng.NextUniform(0.3, 1.0);
    const size_t n_select = 1 + rng.NextBounded(4);
    for (size_t s = 0; s < n_select; ++s) {
      q.select.push_back(attributes[rng.NextBounded(10)]);
    }
    auto result = system.Query(q);
    if (!result.ok()) continue;  // refusals are always acceptable
    for (const auto& col : result->table().schema().columns()) {
      // Patient names are denied at every source; they must never appear,
      // no matter how the requester phrases the query.
      EXPECT_EQ(strings::ToLower(col.name).find("name"), std::string::npos)
          << "query leaked column " << col.name;
    }
    // Raw zips (5-digit ints) must never appear either: zip is
    // generalized-only.
    auto zip_idx = result->table().schema().IndexOf("zip");
    if (zip_idx.ok()) {
      EXPECT_EQ(result->table().schema().column(*zip_idx).type,
                relational::ColumnType::kString);
    }
    // Marketing must never succeed.
    EXPECT_NE(q.purpose, std::string("marketing"))
        << "marketing query released data";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SystemInvariantTest, ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace piye

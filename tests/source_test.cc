#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "common/rng.h"

#include "core/scenario.h"
#include "source/loss_computation.h"
#include "source/optimizer.h"
#include "source/piql.h"
#include "source/preservation.h"
#include "source/privacy_rewriter.h"
#include "source/query_cluster.h"
#include "source/query_transformer.h"
#include "source/remote_source.h"
#include "xml/parser.h"

namespace piye {
namespace source {
namespace {

using relational::Column;
using relational::ColumnType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

// --- PIQL parsing ---

TEST(PiqlTest, ParseFullQuery) {
  auto q = PiqlQuery::Parse(R"(
    <query requester="cdc" purpose="disease-surveillance" maxLoss="0.4">
      <target path="//patient"/>
      <select>dateOfBirth</select>
      <select>diagnosis</select>
      <where>diagnosis = 'diabetes'</where>
    </query>)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->requester, "cdc");
  EXPECT_EQ(q->purpose, "disease-surveillance");
  EXPECT_DOUBLE_EQ(q->max_information_loss, 0.4);
  EXPECT_EQ(q->select.size(), 2u);
  ASSERT_NE(q->where, nullptr);
  EXPECT_FALSE(q->IsAggregate());
}

TEST(PiqlTest, ParseAggregateQuery) {
  auto q = PiqlQuery::Parse(R"(
    <query requester="analyst" purpose="research">
      <aggregate func="AVG" attribute="rate"><groupBy>test</groupBy></aggregate>
    </query>)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->IsAggregate());
  EXPECT_EQ(q->aggregate->func, relational::AggFunc::kAvg);
  EXPECT_EQ(q->aggregate->group_by.size(), 1u);
}

TEST(PiqlTest, XmlRoundTrip) {
  auto q = PiqlQuery::Parse(R"(
    <query requester="r" purpose="research" maxLoss="0.5">
      <select>dob</select><where>zip = 13053</where>
    </query>)");
  ASSERT_TRUE(q.ok());
  auto q2 = PiqlQuery::Parse(xml::Serialize(*q->ToXml()));
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->requester, "r");
  EXPECT_EQ(q2->select, q->select);
  EXPECT_EQ(q2->where->ToString(), q->where->ToString());
}

TEST(PiqlTest, ReferencedAttributes) {
  auto q = PiqlQuery::Parse(R"(
    <query requester="r"><select>a</select><where>b = 1 AND c = 2</where></query>)");
  ASSERT_TRUE(q.ok());
  const auto attrs = q->ReferencedAttributes();
  EXPECT_EQ(std::set<std::string>(attrs.begin(), attrs.end()),
            (std::set<std::string>{"a", "b", "c"}));
}

TEST(PiqlTest, ParseErrors) {
  EXPECT_FALSE(PiqlQuery::Parse("<notquery/>").ok());
  EXPECT_FALSE(PiqlQuery::Parse(R"(<query><aggregate func="AVG"/></query>)").ok());
  EXPECT_FALSE(
      PiqlQuery::Parse(R"(<query><aggregate func="WAT" attribute="x"/></query>)").ok());
}

// --- Query transformer ---

Schema PatientSchema() {
  return Schema{Column{"patient_id", ColumnType::kString},
                Column{"dob", ColumnType::kString},
                Column{"zip", ColumnType::kInt64},
                Column{"diagnosis", ColumnType::kString}};
}

TEST(QueryTransformerTest, LooseNameResolution) {
  const QueryTransformer transformer(DefaultClinicalNameMatcher());
  auto q = PiqlQuery::Parse(R"(
    <query requester="r" purpose="p">
      <select>dateOfBirth</select>
      <where>condition = 'diabetes'</where>
    </query>)");
  ASSERT_TRUE(q.ok());
  auto t = transformer.Transform(*q, "patients", PatientSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->bindings.at("dateOfBirth"), "dob");
  EXPECT_EQ(t->bindings.at("condition"), "diagnosis");  // synonym
  EXPECT_EQ(t->stmt.table, "patients");
  EXPECT_NE(t->stmt.where->ToString().find("diagnosis"), std::string::npos);
}

TEST(QueryTransformerTest, UnresolvedSelectIsTolerated) {
  const QueryTransformer transformer(DefaultClinicalNameMatcher());
  auto q = PiqlQuery::Parse(R"(
    <query requester="r"><select>dob</select><select>bloodType</select></query>)");
  ASSERT_TRUE(q.ok());
  auto t = transformer.Transform(*q, "patients", PatientSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->stmt.items.size(), 1u);
  ASSERT_EQ(t->unresolved.size(), 1u);
  EXPECT_EQ(t->unresolved[0], "bloodType");
}

TEST(QueryTransformerTest, UnresolvedWhereFails) {
  const QueryTransformer transformer(DefaultClinicalNameMatcher());
  auto q = PiqlQuery::Parse(R"(
    <query requester="r"><select>dob</select><where>bloodType = 'A'</where></query>)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(transformer.Transform(*q, "patients", PatientSchema()).ok());
}

TEST(QueryTransformerTest, AggregateAliasesUseMediatedNames) {
  const QueryTransformer transformer(DefaultClinicalNameMatcher());
  auto q = PiqlQuery::Parse(R"(
    <query requester="r">
      <aggregate func="COUNT" attribute="diagnosis"><groupBy>zip</groupBy></aggregate>
    </query>)");
  ASSERT_TRUE(q.ok());
  auto t = transformer.Transform(*q, "patients", PatientSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->stmt.items.size(), 2u);
  EXPECT_EQ(t->stmt.items[0].alias, "zip");
  EXPECT_EQ(t->stmt.items[1].alias, "count_diagnosis");
}

// --- Privacy rewriter (via a configured source) ---

class RemoteSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto tables = core::ClinicalScenario::MakePatientTables(20, 0.5, 11);
    src_ = std::make_unique<RemoteSource>("hospitalA", "patients",
                                          std::move(tables.hospital), 1);
    core::ClinicalScenario::ApplyPatientPolicies(src_.get());
  }

  PiqlQuery MakeQuery(const std::string& body) {
    auto q = PiqlQuery::Parse("<query requester=\"analyst\" purpose=\"research\" "
                              "maxLoss=\"0.9\">" + body + "</query>");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::unique_ptr<RemoteSource> src_;
};

TEST_F(RemoteSourceTest, DeniedColumnIsStripped) {
  // `name` has no policy rule ⇒ default deny; dob and diagnosis survive.
  auto result = src_->ExecuteFragment(
      MakeQuery("<select>name</select><select>diagnosis</select>"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->table.schema().Contains("name"));
  EXPECT_TRUE(result->table.schema().Contains("diagnosis"));
  ASSERT_EQ(result->denied_columns.size(), 1u);
  EXPECT_EQ(result->denied_columns[0], "name");
}

TEST_F(RemoteSourceTest, AllDeniedIsPrivacyViolation) {
  auto q = MakeQuery("<select>name</select>");
  q.max_information_loss = 1.0;
  auto result = src_->ExecuteFragment(q);
  EXPECT_TRUE(result.status().IsPrivacyViolation());
}

TEST_F(RemoteSourceTest, WrongPurposeDenied) {
  auto q = MakeQuery("<select>diagnosis</select>");
  q.purpose = "marketing";
  auto result = src_->ExecuteFragment(q);
  EXPECT_TRUE(result.status().IsPrivacyViolation());
}

TEST_F(RemoteSourceTest, RangeColumnsAreGeneralized) {
  auto result = src_->ExecuteFragment(MakeQuery("<select>zip</select>"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // zip is kGeneralized ⇒ released as STRING ranges, never raw ints.
  ASSERT_TRUE(result->table.schema().Contains("zip"));
  auto idx = result->table.schema().IndexOf("zip");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(result->table.schema().column(*idx).type, ColumnType::kString);
  for (const auto& row : result->table.rows()) {
    if (row[*idx].is_null()) continue;
    EXPECT_NE(row[*idx].AsString().find('['), std::string::npos);
  }
}

TEST_F(RemoteSourceTest, RequesterInfoLossToleranceGates) {
  // Asking for 3 columns of which 1 is denied ⇒ info loss >= 1/3; a
  // requester tolerating only 0.1 is refused outright.
  auto q = MakeQuery(
      "<select>name</select><select>diagnosis</select><select>sex</select>");
  q.max_information_loss = 0.1;
  auto result = src_->ExecuteFragment(q);
  EXPECT_TRUE(result.status().IsPrivacyViolation());
}

TEST_F(RemoteSourceTest, ResultXmlCarriesPrivacyMetadata) {
  auto result = src_->ExecuteFragment(MakeQuery("<select>diagnosis</select>"));
  ASSERT_TRUE(result.ok());
  const xml::XmlNode& node = *result->xml;
  EXPECT_EQ(MetadataTagger::ReadOwner(node), "hospitalA");
  EXPECT_GT(MetadataTagger::ReadPrivacyLoss(node), 0.0);
  EXPECT_LE(MetadataTagger::ReadLossBudget(node), 1.0);
  // The schema columns carry their disclosure form.
  const xml::XmlNode* schema = node.FirstChild("schema");
  ASSERT_NE(schema, nullptr);
  const auto columns = schema->Children("column");
  ASSERT_FALSE(columns.empty());
  EXPECT_NE(columns[0]->GetAttr("form"), nullptr);
}

TEST_F(RemoteSourceTest, SketchesRespectPolicy) {
  src_->HideSchemaColumn("zip");  // zip's *name* is itself sensitive here
  auto sketches = src_->ExportSketches("shared");
  ASSERT_TRUE(sketches.ok());
  std::set<std::string> names;
  bool zip_hidden_name = false;
  for (const auto& s : *sketches) {
    names.insert(s.ref.column);
    if (!s.name_public) zip_hidden_name = true;
  }
  // name is denied: not exported at all.
  EXPECT_EQ(names.count("name"), 0u);
  // diagnosis is exact: exported with its public name.
  EXPECT_EQ(names.count("diagnosis"), 1u);
  // The hidden column exports only under a hashed tag.
  EXPECT_EQ(names.count("zip"), 0u);
  EXPECT_TRUE(zip_hidden_name);
}

// --- Cluster matching ---

TEST(QueryFeaturesTest, ExtractsShape) {
  auto stmt = relational::ParseSql(
      "SELECT city, AVG(rate) FROM t WHERE a = 1 AND b = 2 GROUP BY city");
  ASSERT_TRUE(stmt.ok());
  const QueryFeatures f = QueryFeatures::Extract(*stmt);
  EXPECT_DOUBLE_EQ(f.v[0], 1.0);  // aggregate
  EXPECT_DOUBLE_EQ(f.v[1], 1.0);  // one agg func
  EXPECT_GT(f.v[2], 2.0);         // predicate nodes
  EXPECT_DOUBLE_EQ(f.v[3], 0.0);  // not row-level
  EXPECT_DOUBLE_EQ(f.v[5], 1.0);  // grouped
}

TEST(ClusterStoreTest, DefaultStoreClassifiesCanonicalShapes) {
  const ClusterStore store = ClusterStore::Default();
  // A grouped aggregate maps to aggregate-inference.
  auto agg = relational::ParseSql("SELECT t, AVG(r) FROM c GROUP BY t");
  ASSERT_TRUE(agg.ok());
  const QueryCluster* c1 = store.Map(QueryFeatures::Extract(*agg));
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->breach, BreachClass::kAggregateInference);
  // A narrow row-level probe maps to attribute disclosure.
  auto probe = relational::ParseSql(
      "SELECT rate FROM c WHERE a = 1 AND b = 2 AND d = 3 LIMIT 1");
  ASSERT_TRUE(probe.ok());
  const QueryCluster* c2 = store.Map(QueryFeatures::Extract(*probe));
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->breach, BreachClass::kAttributeDisclosure);
}

TEST(ClusterStoreTest, UntrainedStoreMapsToNull) {
  ClusterStore store;
  auto stmt = relational::ParseSql("SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(store.Map(QueryFeatures::Extract(*stmt)), nullptr);
}

TEST(KMeansTest, SeparatesObviousClusters) {
  Rng rng(3);
  std::vector<QueryFeatures> points;
  for (int i = 0; i < 40; ++i) {
    QueryFeatures f;
    f.v[0] = i < 20 ? 0.0 : 1.0;
    f.v[4] = i < 20 ? 8.0 : 1.0;
    points.push_back(f);
  }
  const auto centroids = KMeansCluster(points, 2, 20, &rng);
  ASSERT_EQ(centroids.size(), 2u);
  EXPECT_GT(std::fabs(centroids[0].v[4] - centroids[1].v[4]), 5.0);
}

// --- Loss computation & optimizer ---

TEST(LossComputationTest, FormWeightsAreMonotone) {
  using policy::DisclosureForm;
  EXPECT_LT(LossComputation::FormWeight(DisclosureForm::kDenied),
            LossComputation::FormWeight(DisclosureForm::kAggregate));
  EXPECT_LT(LossComputation::FormWeight(DisclosureForm::kAggregate),
            LossComputation::FormWeight(DisclosureForm::kRange));
  EXPECT_LT(LossComputation::FormWeight(DisclosureForm::kRange),
            LossComputation::FormWeight(DisclosureForm::kGeneralized));
  EXPECT_LT(LossComputation::FormWeight(DisclosureForm::kGeneralized),
            LossComputation::FormWeight(DisclosureForm::kExact));
}

TEST(LossComputationTest, EstimatesBalanceBothLosses) {
  using policy::DisclosureForm;
  std::map<std::string, DisclosureForm> forms{{"a", DisclosureForm::kExact}};
  auto e = LossComputation::Estimate(forms, 0);
  EXPECT_DOUBLE_EQ(e.privacy_loss, 0.8);
  EXPECT_DOUBLE_EQ(e.information_loss, 0.0);  // exact delivery, full fidelity
  forms["a"] = DisclosureForm::kAggregate;
  e = LossComputation::Estimate(forms, 1);  // plus a denied column
  EXPECT_DOUBLE_EQ(e.privacy_loss, 0.1);
  EXPECT_NEAR(e.information_loss, (0.6 + 1.0) / 2.0, 1e-9);
}

TEST(OptimizerTest, SelectivePolicyPushesDown) {
  Table t(Schema{Column{"a", ColumnType::kInt64}});
  for (int i = 0; i < 1000; ++i) (void)t.AppendRow(Row{Value::Int(i % 100)});
  auto stmt = relational::ParseSql("SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  auto selective = relational::ParseExpression("a < 5");
  ASSERT_TRUE(selective.ok());
  auto plan = PrivacyOptimizer::Choose(*stmt, t, *selective);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->push_policy_filter);
  EXPECT_NEAR(plan->estimated_policy_selectivity, 0.05, 0.03);
  EXPECT_FALSE(plan->steps.empty());
}

TEST(OptimizerTest, CostModelOrdersStrategies) {
  // Pushing a selective filter is cheaper than post-hoc filtering.
  const double pushed = PrivacyOptimizer::EstimateCost(
      100000, 0.01, /*push=*/true, /*agg=*/false, /*after=*/true, 1);
  const double post = PrivacyOptimizer::EstimateCost(
      100000, 0.01, /*push=*/false, /*agg=*/false, /*after=*/true, 1);
  EXPECT_LT(pushed, post);
  // Perturbing after aggregation touches fewer rows.
  const double after = PrivacyOptimizer::EstimateCost(
      100000, 1.0, true, /*agg=*/true, /*after=*/true, 10);
  const double before = PrivacyOptimizer::EstimateCost(
      100000, 1.0, true, /*agg=*/true, /*after=*/false, 10);
  EXPECT_LT(after, before);
}

// --- Preservation module ---

TEST(PreservationTest, RoundingCoarsensAggregates) {
  Table t(Schema{Column{"avg_rate", ColumnType::kDouble}});
  (void)t.AppendRow(Row{Value::Real(83.07)});
  const PreservationModule preservation;
  std::map<std::string, policy::DisclosureForm> forms{
      {"avg_rate", policy::DisclosureForm::kAggregate}};
  Rng rng(1);
  auto out = preservation.Apply(t, forms, /*budget=*/0.5, {Technique::kRounding}, &rng);
  ASSERT_TRUE(out.ok());
  const double v = out->row(0)[0].AsDouble();
  EXPECT_NE(v, 83.07);           // coarsened
  EXPECT_NEAR(v, 83.07, 2.0);    // but close
}

TEST(PreservationTest, SuppressionDropsUniqueRows) {
  Table t(Schema{Column{"g", ColumnType::kString}});
  for (const char* g : {"a", "a", "a", "b"}) {
    (void)t.AppendRow(Row{Value::Str(g)});
  }
  PreservationModule::Config config;
  config.k = 3;
  const PreservationModule preservation(config);
  Rng rng(1);
  const std::map<std::string, policy::DisclosureForm> forms{
      {"g", policy::DisclosureForm::kGeneralized}};
  auto out = preservation.Apply(t, forms, 1.0, {Technique::kSuppression}, &rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);  // the lone "b" is suppressed
}

TEST(PreservationTest, DefaultTechniquesFollowForms) {
  const PreservationModule preservation;
  using policy::DisclosureForm;
  auto techniques = preservation.DefaultTechniques(
      {{"a", DisclosureForm::kRange}, {"b", DisclosureForm::kAggregate}}, 0.2);
  std::set<Technique> set(techniques.begin(), techniques.end());
  EXPECT_TRUE(set.count(Technique::kGeneralization));
  EXPECT_TRUE(set.count(Technique::kRounding));
  EXPECT_TRUE(set.count(Technique::kNoiseAddition));
}

}  // namespace
}  // namespace source
}  // namespace piye

namespace piye {
namespace source {
namespace {

using relational::Column;
using relational::ColumnType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

// --- Privacy views inside the pipeline ---

class ViewedSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table t(Schema{Column{"patient_id", ColumnType::kString},
                   Column{"diagnosis", ColumnType::kString},
                   Column{"consented", ColumnType::kBool}});
    (void)t.AppendRow(Row{Value::Str("P1"), Value::Str("diabetes"),
                          Value::Boolean(true)});
    (void)t.AppendRow(Row{Value::Str("P2"), Value::Str("asthma"),
                          Value::Boolean(false)});
    (void)t.AppendRow(Row{Value::Str("P3"), Value::Str("diabetes"),
                          Value::Boolean(true)});
    src_ = std::make_unique<RemoteSource>("clinic", "patients", std::move(t), 1);
    policy::PrivacyPolicy policy("clinic", {});
    policy::PolicyRule rule;
    rule.id = "all-healthcare";
    rule.item = {"*", "*"};
    rule.purposes = {"healthcare"};
    rule.recipients = {"*"};
    rule.form = policy::DisclosureForm::kExact;
    policy.AddRule(rule);
    (void)src_->mutable_policies()->AddPolicy(std::move(policy));
    (void)src_->mutable_rbac()->AddRole("analyst");
    (void)src_->mutable_rbac()->AssignRole("analyst", "analyst");
    (void)src_->mutable_rbac()->Grant("analyst", access::Action::kSelect, "*", "*");
  }

  std::unique_ptr<RemoteSource> src_;
};

TEST_F(ViewedSourceTest, PrivacyViewGatesRowsAndColumns) {
  // Register a view: only consented rows exist, and the consent flag itself
  // is not exported.
  policy::PrivacyView view("consented_only", "patients");
  view.AddVisibleColumn("patient_id");
  view.AddVisibleColumn("diagnosis");
  auto filter = relational::ParseExpression("consented = TRUE");
  ASSERT_TRUE(filter.ok());
  view.set_row_filter(*filter);
  ASSERT_TRUE(src_->mutable_policies()->AddView("clinic", std::move(view)).ok());

  auto effective = src_->EffectiveTable();
  ASSERT_TRUE(effective.ok());
  EXPECT_EQ(effective->num_rows(), 2u);
  EXPECT_FALSE(effective->schema().Contains("consented"));

  auto q = PiqlQuery::Parse(
      R"(<query requester="analyst" purpose="research" maxLoss="1.0">
           <select>diagnosis</select></query>)");
  ASSERT_TRUE(q.ok());
  auto result = src_->ExecuteFragment(*q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // P2 (unconsented) never appears — the view filtered it before any stage.
  EXPECT_EQ(result->table.num_rows(), 2u);

  // Sketches are view-scoped too: `consented` is invisible to the mediator.
  auto sketches = src_->ExportSketches("k");
  ASSERT_TRUE(sketches.ok());
  for (const auto& s : *sketches) {
    EXPECT_NE(s.ref.column, "consented");
  }
}

TEST_F(ViewedSourceTest, NoViewMeansRawTable) {
  auto effective = src_->EffectiveTable();
  ASSERT_TRUE(effective.ok());
  EXPECT_EQ(effective->num_rows(), 3u);
  EXPECT_TRUE(effective->schema().Contains("consented"));
}

// --- Query-set-size restriction in the pipeline ---

TEST(QuerySetRestrictionTest, TrackerSizedAggregateRefused) {
  Rng rng(5);
  Table t(Schema{Column{"pid", ColumnType::kString},
                 Column{"age", ColumnType::kInt64},
                 Column{"rate", ColumnType::kDouble}});
  for (int i = 0; i < 40; ++i) {
    (void)t.AppendRow(Row{Value::Str("P" + std::to_string(i)),
                          Value::Int(20 + i),
                          Value::Real(rng.NextUniform(0, 100))});
  }
  RemoteSource src("hmo", "stats", std::move(t), 1);
  policy::PrivacyPolicy policy("hmo", {});
  policy::PolicyRule rate_rule;
  rate_rule.id = "rate-agg";
  rate_rule.item = {"*", "rate"};
  rate_rule.purposes = {"*"};
  rate_rule.recipients = {"*"};
  rate_rule.form = policy::DisclosureForm::kAggregate;
  policy.AddRule(rate_rule);
  policy::PolicyRule age_rule;
  age_rule.id = "age-exact";
  age_rule.item = {"*", "age"};
  age_rule.purposes = {"*"};
  age_rule.recipients = {"*"};
  age_rule.form = policy::DisclosureForm::kExact;
  policy.AddRule(age_rule);
  (void)src.mutable_policies()->AddPolicy(std::move(policy));
  (void)src.mutable_rbac()->AddRole("r");
  (void)src.mutable_rbac()->AssignRole("u", "r");
  (void)src.mutable_rbac()->Grant("r", access::Action::kSelect, "*", "*");

  auto make = [](const std::string& where) {
    return *PiqlQuery::Parse(
        "<query requester=\"u\" purpose=\"any\" maxLoss=\"1.0\">"
        "<aggregate func=\"AVG\" attribute=\"rate\"/>"
        "<where>" + where + "</where></query>");
  };
  // A tracker: AVG over a single individual's row.
  auto tracker = src.ExecuteFragment(make("age = 25"));
  EXPECT_TRUE(tracker.status().IsPrivacyViolation()) << tracker.status().ToString();
  // A complement tracker: everyone but two people.
  auto complement = src.ExecuteFragment(make("age &lt; 58"));
  EXPECT_TRUE(complement.status().IsPrivacyViolation());
  // A healthy aggregate over half the table passes.
  auto fine = src.ExecuteFragment(make("age &lt; 40"));
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();
}

}  // namespace
}  // namespace source
}  // namespace piye

namespace piye {
namespace source {
namespace {

TEST(XmlSourceTest, FromXmlRecordsRunsTheFullPipeline) {
  auto src = RemoteSource::FromXmlRecords("xml-clinic", "visits", R"(
    <visits>
      <visit><pid>P1</pid><dept>cardio</dept><cost>120.5</cost></visit>
      <visit><pid>P2</pid><dept>cardio</dept><cost>80.0</cost></visit>
      <visit><pid>P3</pid><dept>onco</dept><cost>310.25</cost></visit>
    </visits>)");
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  EXPECT_EQ((*src)->num_rows(), 3u);
  EXPECT_EQ((*src)->schema().ToString(), "pid:STRING, dept:STRING, cost:DOUBLE");
  policy::PrivacyPolicy policy("xml-clinic", {});
  policy::PolicyRule rule;
  rule.id = "all";
  rule.item = {"*", "*"};
  rule.purposes = {"*"};
  rule.recipients = {"*"};
  rule.form = policy::DisclosureForm::kExact;
  policy.AddRule(rule);
  (void)(*src)->mutable_policies()->AddPolicy(std::move(policy));
  (void)(*src)->mutable_rbac()->AddRole("r");
  (void)(*src)->mutable_rbac()->AssignRole("u", "r");
  (void)(*src)->mutable_rbac()->Grant("r", access::Action::kSelect, "*", "*");
  auto q = PiqlQuery::Parse(
      R"(<query requester="u" purpose="any" maxLoss="1.0">
           <select>dept</select><where>cost &gt; 100</where></query>)");
  ASSERT_TRUE(q.ok());
  auto result = (*src)->ExecuteFragment(*q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows(), 2u);
}

TEST(XmlSourceTest, MalformedXmlRejected) {
  EXPECT_FALSE(RemoteSource::FromXmlRecords("o", "t", "<broken>").ok());
}

}  // namespace
}  // namespace source
}  // namespace piye

namespace piye {
namespace source {
namespace {

TEST(DeterminismTest, SameSeedSameReleasedXml) {
  // Reproducibility guarantee: rebuild the same source with the same seed
  // and the released (noised/rounded) XML is byte-identical.
  auto build_and_query = [] {
    auto tables = core::ClinicalScenario::MakePatientTables(30, 0.5, 7);
    RemoteSource src("hospital", "patients", std::move(tables.hospital),
                     /*seed=*/1234);
    core::ClinicalScenario::ApplyPatientPolicies(&src);
    auto q = PiqlQuery::Parse(
        R"(<query requester="analyst" purpose="research" maxLoss="0.95">
             <select>zip</select><select>diagnosis</select></query>)");
    auto result = src.ExecuteFragment(*q);
    EXPECT_TRUE(result.ok());
    return xml::Serialize(*result->xml);
  };
  EXPECT_EQ(build_and_query(), build_and_query());
}

}  // namespace
}  // namespace source
}  // namespace piye

namespace piye {
namespace source {
namespace {

TEST(RandomSampleQueryModeTest, SampledAggregatesAreStableAndApproximate) {
  Rng data_rng(9);
  Table t(Schema{Column{"pid", ColumnType::kString},
                 Column{"rate", ColumnType::kDouble}});
  double truth = 0.0;
  const size_t n = 500;
  for (size_t i = 0; i < n; ++i) {
    const double v = data_rng.NextUniform(0, 100);
    truth += v;
    (void)t.AppendRow(Row{Value::Str("P" + std::to_string(i)), Value::Real(v)});
  }
  truth /= static_cast<double>(n);
  RemoteSource src("hmo", "stats", std::move(t), /*seed=*/77);
  PreservationModule::Config config;
  config.use_random_sample_queries = true;
  config.sampling_rate = 0.8;
  src.set_preservation_config(config);
  policy::PrivacyPolicy policy("hmo", {});
  policy::PolicyRule rule;
  rule.id = "agg";
  rule.item = {"*", "rate"};
  rule.purposes = {"*"};
  rule.recipients = {"*"};
  rule.form = policy::DisclosureForm::kAggregate;
  policy.AddRule(rule);
  (void)src.mutable_policies()->AddPolicy(std::move(policy));
  (void)src.mutable_rbac()->AddRole("r");
  (void)src.mutable_rbac()->AssignRole("u", "r");
  (void)src.mutable_rbac()->Grant("r", access::Action::kSelect, "*", "*");

  auto q = PiqlQuery::Parse(
      R"(<query requester="u" purpose="any" maxLoss="1.0">
           <aggregate func="AVG" attribute="rate"/></query>)");
  ASSERT_TRUE(q.ok());
  auto first = src.ExecuteFragment(*q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->table.num_rows(), 1u);
  const double answer1 = first->table.row(0)[0].AsDouble();
  // Close to the truth (unbiased sample of 80%, plus budget-1.0 rounding is
  // fine-grained)...
  EXPECT_NEAR(answer1, truth, 0.1 * truth);
  // ...and re-asking the identical query yields the identical answer: the
  // averaging attack gains nothing.
  auto second = src.ExecuteFragment(*q);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->table.row(0)[0].AsDouble(), answer1);
}

}  // namespace
}  // namespace source
}  // namespace piye

#!/usr/bin/env bash
# CI-style sanitizer run: configures a dedicated build tree with
# PIYE_SANITIZE=<thread|address|undefined>, builds everything, and runs the
# full test suite under the sanitizer. Usage:
#
#   scripts/sanitize.sh            # TSan (the default)
#   scripts/sanitize.sh address    # ASan
#   scripts/sanitize.sh undefined  # UBSan
#
# Exits non-zero on any build failure, test failure, or sanitizer report.
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  thread|address|undefined) ;;
  *) echo "usage: $0 [thread|address|undefined]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-${SAN}san"

# halt_on_error makes a sanitizer report fail the test that produced it.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

cmake -B "$BUILD" -S "$ROOT" -DPIYE_SANITIZE="$SAN" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

#!/usr/bin/env bash
# The repo's CI entry point: a plain release-ish build with the full test
# suite, then the same suite under AddressSanitizer (PIYE_SANITIZE=address).
# The sanitizer leg matters for the durability layer — the WAL/recovery code
# paths shuffle raw buffers and file descriptors, exactly where ASan earns
# its keep. Usage:
#
#   scripts/ci.sh              # build + ctest + ASan build + ctest
#   PIYE_CI_SKIP_ASAN=1 scripts/ci.sh   # quick leg only
#
# Exits non-zero on any build failure, test failure, or sanitizer report.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

echo "=== [1/2] build + test ==="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

if [[ "${PIYE_CI_SKIP_ASAN:-0}" == "1" ]]; then
  echo "=== [2/2] ASan leg skipped (PIYE_CI_SKIP_ASAN=1) ==="
  exit 0
fi

echo "=== [2/2] AddressSanitizer build + test ==="
# halt_on_error makes a sanitizer report fail the test that produced it;
# leak detection stays off to match scripts/sanitize.sh (ptrace is often
# unavailable in CI containers).
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=0}"
cmake -B "$ROOT/build-addresssan" -S "$ROOT" -DPIYE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ROOT/build-addresssan" -j "$JOBS"
ctest --test-dir "$ROOT/build-addresssan" --output-on-failure -j "$JOBS"

echo "=== CI green ==="

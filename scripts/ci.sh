#!/usr/bin/env bash
# The repo's CI entry point: a warning-free (-Werror) release-ish build with
# the full test suite, then an explicit multi-process federation leg (real
# source_server processes over Unix sockets), then a no-execution static
# analysis leg (piye_lint + clang thread-safety analysis when a clang
# toolchain is present), then the same suite under AddressSanitizer
# (PIYE_SANITIZE=address), then the concurrency suites under ThreadSanitizer
# (PIYE_SANITIZE=thread), then the parser/overload suites under UBSan
# (PIYE_SANITIZE=undefined), then the columnar hot-path gate
# (bench_fig2_pipeline --quick: speedup + value-identity against the row
# reference engine), then a scaled-down bounded-state soak (crash matrix
# against the counting oracle with RSS and recovery-time ceilings). The
# analysis leg runs before the sanitizer legs
# on purpose: it needs no test execution, so a lock-discipline or
# invariant violation fails CI in seconds instead of after three sanitizer
# builds. The ASan leg matters for the durability layer — the WAL/recovery
# code paths shuffle raw buffers and file descriptors, exactly where ASan
# earns its keep. The TSan leg guards the lock-based hot paths: the sharded
# warehouse, the engine's single-flight coalescing and fragment fan-out, the
# admission pipeline and chaos/soak harness, the striped metrics registry,
# and the net client's reader/demux threads against the server's
# accept/worker threads. The UBSan leg covers the arithmetic-heavy
# admission/backoff code, the XML parser's malformed-input fuzz loop, and
# the wire-frame decoder's bounds arithmetic driven by the bit-flip fuzz
# suite. Usage:
#
#   scripts/ci.sh              # everything
#   PIYE_CI_SKIP_NET=1 scripts/ci.sh      # skip the multi-process leg (and
#                                         # the spawning cluster test)
#   PIYE_CI_SKIP_ANALYSIS=1 scripts/ci.sh # skip the static-analysis leg
#   PIYE_CI_SKIP_ASAN=1 scripts/ci.sh     # skip the ASan leg
#   PIYE_CI_SKIP_TSAN=1 scripts/ci.sh     # skip the TSan leg
#   PIYE_CI_SKIP_UBSAN=1 scripts/ci.sh    # skip the UBSan leg
#   PIYE_CI_SKIP_BENCH=1 scripts/ci.sh    # skip the columnar hot-path gate
#   PIYE_CI_SKIP_SOAK=1 scripts/ci.sh     # skip the bounded-state soak gate
#
# Exits non-zero on any build failure, compiler warning, test failure,
# lint finding, thread-safety violation, or sanitizer report.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

# With the net leg opted out, the cluster test (which fork/execs server
# processes) is excluded everywhere; the pure in-process net_test still runs.
CTEST_EXCLUDE=()
if [[ "${PIYE_CI_SKIP_NET:-0}" == "1" ]]; then
  CTEST_EXCLUDE=(-E '^net_cluster_test$')
fi

echo "=== [1/8] build (warning-free: -Werror) + test ==="
cmake -B "$ROOT/build" -S "$ROOT" -DPIYE_WERROR=ON
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS" \
  "${CTEST_EXCLUDE[@]}"

if [[ "${PIYE_CI_SKIP_NET:-0}" == "1" ]]; then
  echo "=== [2/8] multi-process federation leg skipped (PIYE_CI_SKIP_NET=1) ==="
else
  echo "=== [2/8] multi-process federation: source servers over UDS ==="
  # Builds the server binary and drives a mediation engine against three
  # real source_server processes: byte-identity with the in-process path,
  # SIGKILL degradation to quorum, breaker reopen after restart, graceful
  # drain. Run serially — the suite forks, kills, and reaps processes.
  cmake --build "$ROOT/build" -j "$JOBS" --target source_server net_cluster_test
  ctest --test-dir "$ROOT/build" --output-on-failure -R '^net_cluster_test$'
fi

if [[ "${PIYE_CI_SKIP_ANALYSIS:-0}" == "1" ]]; then
  echo "=== [3/8] static analysis leg skipped (PIYE_CI_SKIP_ANALYSIS=1) ==="
else
  echo "=== [3/8] static analysis: piye_lint + clang thread-safety ==="
  # piye_lint: repo-specific structural rules (raw sync primitives, analysis
  # escape hatches, privacy-retry, serialization boundaries, status
  # discards, header hygiene — see tools/lint/lint.h). Any finding fails CI;
  # the JSON report is archived next to the build for tooling.
  cmake --build "$ROOT/build" -j "$JOBS" --target piye_lint
  "$ROOT/build/tools/piye_lint" "$ROOT/src"
  "$ROOT/build/tools/piye_lint" --json "$ROOT/src" \
    > "$ROOT/build/piye_lint_report.json"

  # Clang thread-safety analysis: a compile-only pass with the capability
  # annotations from common/sync.h enforced as errors, proving every
  # GUARDED_BY field is only touched with its lock held. Requires a clang
  # frontend; on a gcc-only runner this half is skipped (the annotations
  # compile away there) and piye_lint above still gates the leg.
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B "$ROOT/build-analysis" -S "$ROOT" \
      -DCMAKE_CXX_COMPILER=clang++ -DPIYE_THREAD_SAFETY=ON
    cmake --build "$ROOT/build-analysis" -j "$JOBS"
  else
    echo "clang++ not found: thread-safety analysis half skipped" \
         "(piye_lint still enforced; annotations are no-ops on this toolchain)"
  fi
fi

if [[ "${PIYE_CI_SKIP_ASAN:-0}" == "1" ]]; then
  echo "=== [4/8] ASan leg skipped (PIYE_CI_SKIP_ASAN=1) ==="
else
  echo "=== [4/8] AddressSanitizer build + test ==="
  # halt_on_error makes a sanitizer report fail the test that produced it;
  # leak detection stays off to match scripts/sanitize.sh (ptrace is often
  # unavailable in CI containers).
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=0}"
  cmake -B "$ROOT/build-addresssan" -S "$ROOT" -DPIYE_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$ROOT/build-addresssan" -j "$JOBS"
  ctest --test-dir "$ROOT/build-addresssan" --output-on-failure -j "$JOBS" \
    "${CTEST_EXCLUDE[@]}"
fi

if [[ "${PIYE_CI_SKIP_TSAN:-0}" == "1" ]]; then
  echo "=== [5/8] TSan leg skipped (PIYE_CI_SKIP_TSAN=1) ==="
else
  echo "=== [5/8] ThreadSanitizer build + concurrency suites ==="
  # The TSan leg runs the suites that exercise real lock/atomic contention:
  # the sharded warehouse + single-flight scale suite, the engine fan-out
  # suite, the admission/cancellation suite and chaos/soak harness, the
  # crash/recovery suite (durable journaling under Execute), and the net
  # suite (client reader/writer threads vs server accept/worker threads,
  # reconnect teardown races, window backpressure), plus the relational
  # suite so the copy-on-write column sharing (shared_ptr buffers cloned on
  # MutableColumn) is exercised under the race detector, and the
  # bounded-state suite (background snapshotter racing live traffic, sharded
  # history fault-in, rotate kill points).
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
  cmake -B "$ROOT/build-threadsan" -S "$ROOT" -DPIYE_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$ROOT/build-threadsan" -j "$JOBS" --target \
    warehouse_scale_test concurrency_test recovery_test admission_test \
    chaos_soak_test net_test relational_test bounded_state_test
  ctest --test-dir "$ROOT/build-threadsan" --output-on-failure -j "$JOBS" \
    -R '^(warehouse_scale_test|concurrency_test|recovery_test|admission_test|chaos_soak_test|net_test|relational_test|bounded_state_test)$'
fi

if [[ "${PIYE_CI_SKIP_UBSAN:-0}" == "1" ]]; then
  echo "=== [6/8] UBSan leg skipped (PIYE_CI_SKIP_UBSAN=1) ==="
else
  echo "=== [6/8] UndefinedBehaviorSanitizer build + parser/overload suites ==="
  # UBSan earns its keep where the arithmetic lives: token-bucket refill and
  # retry-after math, backoff shifting, the XML parser driven by the seeded
  # malformed-input fuzz loop, the wire-frame decoder under the bit-flip
  # and random-garbage fuzz tests, and the relational suite's differential
  # harness (validity-bitmap shifts, int64 overflow-checked SUM, typed
  # buffer reinterpretation in the columnar engine).
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
  cmake -B "$ROOT/build-ubsan" -S "$ROOT" -DPIYE_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$ROOT/build-ubsan" -j "$JOBS" --target \
    xml_test admission_test chaos_soak_test common_test net_test \
    relational_test
  ctest --test-dir "$ROOT/build-ubsan" --output-on-failure -j "$JOBS" \
    -R '^(xml_test|admission_test|chaos_soak_test|common_test|net_test|relational_test)$'
fi

if [[ "${PIYE_CI_SKIP_BENCH:-0}" == "1" ]]; then
  echo "=== [7/8] columnar hot-path gate skipped (PIYE_CI_SKIP_BENCH=1) ==="
else
  echo "=== [7/8] columnar hot-path gate: bench_fig2_pipeline --quick ==="
  # Times the vectorized engine against the row-at-a-time reference on the
  # aggregation and rank-swap hot paths, requires cell-for-cell identical
  # answers, and fails unless aggregation clears its speedup bar. Catches
  # both silent value drift and a perf regression that would quietly undo
  # the columnar rebuild.
  cmake --build "$ROOT/build" -j "$JOBS" --target bench_fig2_pipeline
  "$ROOT/build/bench/bench_fig2_pipeline" --quick
fi

if [[ "${PIYE_CI_SKIP_SOAK:-0}" == "1" ]]; then
  echo "=== [8/8] bounded-state soak skipped (PIYE_CI_SKIP_SOAK=1) ==="
else
  echo "=== [8/8] bounded-state soak: crash matrix vs oracle at 200k requesters ==="
  # A scaled-down run of the 1M-requester crash/soak matrix: randomized WAL
  # and rotation kills, byte-identical refusal decisions against the
  # counting oracle, bounded RSS (the resident set spills to durable budget
  # floors), and a recovery-time ceiling that tracks snapshot size rather
  # than uptime. The full-scale run is documented in EXPERIMENTS.md
  # (abl-bounded-state); this leg pins the invariants on every commit.
  cmake --build "$ROOT/build" -j "$JOBS" --target bounded_state_soak_test
  PIYE_SOAK_REQUESTERS="${PIYE_SOAK_REQUESTERS:-200000}" \
  PIYE_SOAK_RSS_MB="${PIYE_SOAK_RSS_MB:-600}" \
  PIYE_SOAK_RECOVERY_MS="${PIYE_SOAK_RECOVERY_MS:-5000}" \
    "$ROOT/build/tests/bounded_state_soak_test"
fi

echo "=== CI green ==="

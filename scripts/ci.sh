#!/usr/bin/env bash
# The repo's CI entry point: a plain release-ish build with the full test
# suite, then the same suite under AddressSanitizer (PIYE_SANITIZE=address),
# then the concurrency suites under ThreadSanitizer (PIYE_SANITIZE=thread),
# then the parser/overload suites under UBSan (PIYE_SANITIZE=undefined).
# The ASan leg matters for the durability layer — the WAL/recovery code
# paths shuffle raw buffers and file descriptors, exactly where ASan earns
# its keep. The TSan leg guards the lock-based hot paths: the sharded
# warehouse, the engine's single-flight coalescing and fragment fan-out, the
# admission pipeline and chaos/soak harness, and the striped metrics
# registry. The UBSan leg covers the arithmetic-heavy admission/backoff code
# and the XML parser's malformed-input fuzz loop. Usage:
#
#   scripts/ci.sh              # build + ctest + ASan leg + TSan leg + UBSan leg
#   PIYE_CI_SKIP_ASAN=1 scripts/ci.sh    # skip the ASan leg
#   PIYE_CI_SKIP_TSAN=1 scripts/ci.sh    # skip the TSan leg
#   PIYE_CI_SKIP_UBSAN=1 scripts/ci.sh   # skip the UBSan leg
#
# Exits non-zero on any build failure, test failure, or sanitizer report.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

echo "=== [1/4] build + test ==="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

if [[ "${PIYE_CI_SKIP_ASAN:-0}" == "1" ]]; then
  echo "=== [2/4] ASan leg skipped (PIYE_CI_SKIP_ASAN=1) ==="
else
  echo "=== [2/4] AddressSanitizer build + test ==="
  # halt_on_error makes a sanitizer report fail the test that produced it;
  # leak detection stays off to match scripts/sanitize.sh (ptrace is often
  # unavailable in CI containers).
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=0}"
  cmake -B "$ROOT/build-addresssan" -S "$ROOT" -DPIYE_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$ROOT/build-addresssan" -j "$JOBS"
  ctest --test-dir "$ROOT/build-addresssan" --output-on-failure -j "$JOBS"
fi

if [[ "${PIYE_CI_SKIP_TSAN:-0}" == "1" ]]; then
  echo "=== [3/4] TSan leg skipped (PIYE_CI_SKIP_TSAN=1) ==="
else
  echo "=== [3/4] ThreadSanitizer build + concurrency suites ==="
  # The TSan leg runs the suites that exercise real lock/atomic contention:
  # the sharded warehouse + single-flight scale suite, the engine fan-out
  # suite, the admission/cancellation suite and chaos/soak harness, and the
  # crash/recovery suite (durable journaling under Execute).
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
  cmake -B "$ROOT/build-threadsan" -S "$ROOT" -DPIYE_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$ROOT/build-threadsan" -j "$JOBS" --target \
    warehouse_scale_test concurrency_test recovery_test admission_test \
    chaos_soak_test
  ctest --test-dir "$ROOT/build-threadsan" --output-on-failure -j "$JOBS" \
    -R '^(warehouse_scale_test|concurrency_test|recovery_test|admission_test|chaos_soak_test)$'
fi

if [[ "${PIYE_CI_SKIP_UBSAN:-0}" == "1" ]]; then
  echo "=== [4/4] UBSan leg skipped (PIYE_CI_SKIP_UBSAN=1) ==="
else
  echo "=== [4/4] UndefinedBehaviorSanitizer build + parser/overload suites ==="
  # UBSan earns its keep where the arithmetic lives: token-bucket refill and
  # retry-after math, backoff shifting, and the XML parser driven by the
  # seeded malformed-input fuzz loop.
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
  cmake -B "$ROOT/build-ubsan" -S "$ROOT" -DPIYE_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$ROOT/build-ubsan" -j "$JOBS" --target \
    xml_test admission_test chaos_soak_test common_test
  ctest --test-dir "$ROOT/build-ubsan" --output-on-failure -j "$JOBS" \
    -R '^(xml_test|admission_test|chaos_soak_test|common_test)$'
fi

echo "=== CI green ==="

// source_server: hosts one or more PRIVATE-IYE remote sources behind the
// federation wire protocol, turning the in-process federation into a true
// multi-process one. Each --source flag ingests a record-shaped XML file
// into a fully configured RemoteSource (the complete Figure 2(a) pipeline),
// and a net::SourceServer serves ExecuteFragment / ExportSketches over TCP
// or a Unix domain socket.
//
//   source_server --listen=unix:/tmp/hospital.sock
//     --source=owner=hospital,table=hospital,file=/tmp/hospital.xml,seed=11
//     --clinical-policies
//
// Flags:
//   --listen=ADDR            unix:<path> or tcp:<host>:<port> (port 0 = any)
//   --source=KEY=V,...       repeated; keys: owner, table, file, seed
//   --clinical-policies      apply the standard clinical policy set and the
//                            analyst role (granting requesters alice, bob,
//                            analyst) to every source — matching what the
//                            in-process tests configure, so a federated run
//                            is byte-identical to an in-process one
//   --workers=N              fragment worker threads (default 4)
//   --fault-seed=N --fault-drop-write=P --fault-tear=P --fault-corrupt=P
//   --fault-drop-read=P --fault-delay-rate=P --fault-delay-micros=N
//                            wire-level fault injection on every connection
//
// On readiness the resolved address is printed as "LISTENING <addr>" on
// stdout (the line a spawning harness waits for). SIGTERM/SIGINT trigger a
// graceful drain: in-flight fragments finish and flush before exit.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "net/server.h"
#include "source/remote_source.h"

namespace {

using piye::Result;
using piye::Status;

struct SourceSpec {
  std::string owner;
  std::string table;
  std::string file;
  uint64_t seed = 0;
};

Result<SourceSpec> ParseSourceSpec(const std::string& text) {
  SourceSpec spec;
  std::stringstream stream(text);
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("--source item '" + pair +
                                     "' is not key=value");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "owner") {
      spec.owner = value;
    } else if (key == "table") {
      spec.table = value;
    } else if (key == "file") {
      spec.file = value;
    } else if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument("--source key '" + key + "' unknown");
    }
  }
  if (spec.owner.empty() || spec.file.empty()) {
    return Status::InvalidArgument("--source needs at least owner= and file=");
  }
  if (spec.table.empty()) spec.table = spec.owner;
  return spec;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

volatile sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  piye::net::ServerConfig config;
  std::vector<SourceSpec> specs;
  bool clinical_policies = false;

  auto value_of = [](const std::string& arg, const std::string& flag,
                     std::string* out) {
    const std::string prefix = flag + "=";
    if (arg.rfind(prefix, 0) != 0) return false;
    *out = arg.substr(prefix.size());
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (value_of(arg, "--listen", &value)) {
      config.listen_address = value;
    } else if (value_of(arg, "--source", &value)) {
      auto spec = ParseSourceSpec(value);
      if (!spec.ok()) {
        std::cerr << "source_server: " << spec.status().ToString() << "\n";
        return 2;
      }
      specs.push_back(std::move(*spec));
    } else if (arg == "--clinical-policies") {
      clinical_policies = true;
    } else if (value_of(arg, "--workers", &value)) {
      config.worker_threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (value_of(arg, "--fault-seed", &value)) {
      config.fault.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (value_of(arg, "--fault-drop-write", &value)) {
      config.fault.drop_write_rate = std::strtod(value.c_str(), nullptr);
    } else if (value_of(arg, "--fault-tear", &value)) {
      config.fault.tear_rate = std::strtod(value.c_str(), nullptr);
    } else if (value_of(arg, "--fault-corrupt", &value)) {
      config.fault.corrupt_rate = std::strtod(value.c_str(), nullptr);
    } else if (value_of(arg, "--fault-drop-read", &value)) {
      config.fault.drop_read_rate = std::strtod(value.c_str(), nullptr);
    } else if (value_of(arg, "--fault-delay-rate", &value)) {
      config.fault.delay_rate = std::strtod(value.c_str(), nullptr);
    } else if (value_of(arg, "--fault-delay-micros", &value)) {
      config.fault.delay_micros = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::cerr << "source_server: unknown flag '" << arg << "'\n";
      return 2;
    }
  }
  if (specs.empty()) {
    std::cerr << "source_server: at least one --source is required\n";
    return 2;
  }

  std::vector<std::unique_ptr<piye::source::RemoteSource>> sources;
  for (const auto& spec : specs) {
    auto xml_text = ReadFile(spec.file);
    if (!xml_text.ok()) {
      std::cerr << "source_server: " << xml_text.status().ToString() << "\n";
      return 1;
    }
    auto source = piye::source::RemoteSource::FromXmlRecords(
        spec.owner, spec.table, *xml_text, spec.seed);
    if (!source.ok()) {
      std::cerr << "source_server: ingest of '" << spec.file
                << "' failed: " << source.status().ToString() << "\n";
      return 1;
    }
    if (clinical_policies) {
      piye::core::ClinicalScenario::ApplyPatientPolicies(source->get());
      for (const char* requester : {"alice", "bob"}) {
        (void)(*source)->mutable_rbac()->AssignRole(requester, "analyst");
      }
    }
    sources.push_back(std::move(*source));
  }

  piye::net::SourceServer server(config);
  for (const auto& source : sources) server.AddSource(source.get());
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "source_server: " << started.ToString() << "\n";
    return 1;
  }

  // Readiness line: the spawning harness parses the resolved address (the
  // kernel-assigned port for tcp:...:0) from it.
  std::cout << "LISTENING " << server.bound_address() << std::endl;

  struct sigaction action = {};
  action.sa_handler = HandleStop;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0) {
    sigsuspend(&empty);  // wait for SIGTERM/SIGINT
  }
  server.Stop();  // graceful drain
  return 0;
}

#ifndef PIYE_TOOLS_LINT_LINT_H_
#define PIYE_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

/// piye_lint: repo-specific structural rules the compiler cannot see.
///
/// The thread-safety annotations in common/sync.h prove lock discipline, but
/// only for code that *uses* the annotated primitives, and only under a
/// clang build. piye_lint closes the gaps with a token-level scan of src/:
/// it bans the raw std primitives (so the annotated wrappers cannot be
/// bypassed), bans the analysis escape hatch outside sync.h itself, and
/// enforces privacy-flow conventions — never retry a privacy refusal, never
/// serialize raw records outside the blessed seams, never schedule on the
/// wall clock, never drop a Status without saying why.
///
/// The scanner strips comments and string literals before matching, so prose
/// mentioning a banned token never trips a rule. A finding is silenced by a
/// comment on the same line or the line above:
///
///   std::thread reader;  // piye-lint: allow(raw-thread) joined in Close
///
/// Each suppression names exactly one rule; reviewers grep for the marker.
namespace piye {
namespace lint {

struct Finding {
  std::string file;
  size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// A file to lint. `path` does not have to exist on disk — tests lint
/// fixture content under virtual paths — but path-scoped rules (e.g.
/// raw-sync's common/sync.h exemption) key off it, so it should look like a
/// repo-relative path.
struct FileContent {
  std::string path;
  std::string content;
};

/// Names of every registered rule, in report order.
const std::vector<std::string>& RuleNames();

/// One-line description of a rule (empty for an unknown name).
std::string RuleDescription(const std::string& rule);

/// Lints every file and returns the findings, ordered by (file, line).
std::vector<Finding> RunLint(const std::vector<FileContent>& files);

/// Machine-readable report:
/// {"count": N, "findings": [{"file", "line", "rule", "message"}, ...]}
std::string FindingsToJson(const std::vector<Finding>& findings);

}  // namespace lint
}  // namespace piye

#endif  // PIYE_TOOLS_LINT_LINT_H_

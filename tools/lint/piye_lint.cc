// piye_lint: structural checker for PRIVATE-IYE-specific invariants.
//
//   piye_lint [--json] [--list-rules] [path...]
//
// Lints every .h/.cc under the given paths (default: src). Exits 0 when
// clean, 1 on findings, 2 on usage or I/O errors. `--json` prints the
// machine-readable report CI archives; the default output is one
// `file:line: [rule] message` per finding.
//
// The rule catalog and suppression syntax are documented in lint.h and
// DESIGN.md §10.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

int CollectFiles(const std::string& root, std::vector<std::string>& out) {
  std::error_code ec;
  const fs::file_status st = fs::status(root, ec);
  if (ec) {
    std::cerr << "piye_lint: cannot stat '" << root << "': " << ec.message() << "\n";
    return 2;
  }
  if (fs::is_regular_file(st)) {
    out.push_back(root);
    return 0;
  }
  if (!fs::is_directory(st)) {
    std::cerr << "piye_lint: '" << root << "' is neither a file nor a directory\n";
    return 2;
  }
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::cerr << "piye_lint: walking '" << root << "': " << ec.message() << "\n";
      return 2;
    }
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      out.push_back(it->path().generic_string());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const auto& name : piye::lint::RuleNames()) {
        std::cout << name << ": " << piye::lint::RuleDescription(name) << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: piye_lint [--json] [--list-rules] [path...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "piye_lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots.push_back("src");

  std::vector<std::string> paths;
  for (const auto& root : roots) {
    const int rc = CollectFiles(root, paths);
    if (rc != 0) return rc;
  }
  std::sort(paths.begin(), paths.end());

  std::vector<piye::lint::FileContent> files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "piye_lint: cannot read '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back({path, buffer.str()});
  }

  const std::vector<piye::lint::Finding> findings = piye::lint::RunLint(files);
  if (json) {
    std::cout << piye::lint::FindingsToJson(findings) << "\n";
  } else {
    for (const auto& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
                << "\n";
    }
    std::cout << "piye_lint: " << files.size() << " files, " << findings.size()
              << " finding" << (findings.size() == 1 ? "" : "s") << "\n";
  }
  return findings.empty() ? 0 : 1;
}

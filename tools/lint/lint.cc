#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace piye {
namespace lint {

namespace {

/// One source line split into the code that survives comment/string
/// stripping and the concatenated comment text (used for suppressions and
/// discard justifications).
struct LineInfo {
  std::string code;
  std::string comment;
};

/// Splits `content` into lines, routing every character into either the
/// line's code or its comment text. String and character literals are
/// blanked from the code (their quotes remain, so "(" inside a string can
/// never look like a call); raw strings R"delim(...)delim" are handled so a
/// banned token inside one never fires.
std::vector<LineInfo> SplitLines(const std::string& content) {
  std::vector<LineInfo> lines;
  lines.emplace_back();
  enum class State { kCode, kString, kChar, kRawString, kLineComment, kBlockComment };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of an active raw string

  const size_t n = content.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      // Line comments end at the newline; every other state carries over.
      if (state == State::kLineComment) state = State::kCode;
      lines.emplace_back();
      continue;
    }
    LineInfo& line = lines.back();
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (line.code.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(line.code.back())) &&
                     line.code.back() != '_'))) {
          // R"delim( — capture the delimiter so we know the terminator.
          size_t j = i + 2;
          std::string delim;
          while (j < n && content[j] != '(' && content[j] != '\n') {
            delim += content[j++];
          }
          if (j < n && content[j] == '(') {
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
            line.code += "\"";
            i = j;
          } else {
            line.code += c;  // not actually a raw string
          }
        } else if (c == '"') {
          state = State::kString;
          line.code += c;
        } else if (c == '\'') {
          state = State::kChar;
          line.code += c;
        } else {
          line.code += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped character (even across a quote)
        } else if (c == '"') {
          state = State::kCode;
          line.code += c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          line.code += c;
        }
        break;
      case State::kRawString:
        if (c == raw_delim[0] && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
          line.code += "\"";
        }
        break;
      case State::kLineComment:
        line.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          line.comment += c;
        }
        break;
    }
  }
  return lines;
}

bool PathHas(const std::string& path, const std::string& fragment) {
  return path.find(fragment) != std::string::npos;
}

bool IsHeader(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

/// True when `token` occurs in `code` as a complete token: neither neighbor
/// is an identifier character, so `my_system_clock` and `system_clocks`
/// never match, while qualified uses (`std::chrono::system_clock`) do.
bool HasToken(const std::string& code, const std::string& token) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const char before = pos == 0 ? '\0' : code[pos - 1];
    const size_t end = pos + token.size();
    const char after = end < code.size() ? code[end] : '\0';
    const auto ident = [](char ch) {
      return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
    };
    if (!ident(before) && !ident(after)) return true;
    pos = end;
  }
  return false;
}

bool ContainsCaseInsensitive(const std::string& haystack, const std::string& needle) {
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end(),
                        [](char a, char b) {
                          return std::tolower(static_cast<unsigned char>(a)) ==
                                 std::tolower(static_cast<unsigned char>(b));
                        });
  return it != haystack.end();
}

/// The suppression marker for `rule`, honored on the finding's line or the
/// line directly above it.
bool Suppressed(const std::vector<LineInfo>& lines, size_t idx, const std::string& rule) {
  const std::string marker = "piye-lint: allow(" + rule + ")";
  if (lines[idx].comment.find(marker) != std::string::npos) return true;
  return idx > 0 && lines[idx - 1].comment.find(marker) != std::string::npos;
}

/// `#include <name>` / `#include "name"` on a (comment-stripped) line, or
/// empty when the line is not an include.
std::string IncludeTarget(const std::string& code) {
  size_t pos = code.find('#');
  if (pos == std::string::npos) return "";
  ++pos;
  while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos]))) ++pos;
  if (code.compare(pos, 7, "include") != 0) return "";
  pos += 7;
  while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos]))) ++pos;
  if (pos >= code.size()) return "";
  const char open = code[pos];
  const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
  if (close == '\0') return "";
  const size_t end = code.find(close, pos + 1);
  if (end == std::string::npos) return "";
  return code.substr(pos + 1, end - pos - 1);
}

using Emit = std::vector<Finding>&;

void AddFinding(Emit out, const std::string& file, size_t idx, const std::string& rule,
                const std::string& message) {
  out.push_back(Finding{file, idx + 1, rule, message});
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// raw-sync: the annotated wrappers in common/sync.h are the only
/// synchronization primitives; using std's directly bypasses the
/// thread-safety analysis entirely.
void CheckRawSync(const std::string& path, const std::vector<LineInfo>& lines, Emit out) {
  static const char* kRule = "raw-sync";
  if (PathHas(path, "common/sync.h")) return;
  static const std::vector<std::string> kBanned = {
      "std::mutex",         "std::timed_mutex",       "std::recursive_mutex",
      "std::shared_mutex",  "std::shared_timed_mutex", "std::condition_variable",
      "std::condition_variable_any", "std::lock_guard", "std::unique_lock",
      "std::shared_lock",   "std::scoped_lock"};
  for (size_t i = 0; i < lines.size(); ++i) {
    for (const auto& token : kBanned) {
      if (HasToken(lines[i].code, token) && !Suppressed(lines, i, kRule)) {
        AddFinding(out, path, i, kRule,
                   token + " outside common/sync.h; use the annotated piye::Mutex/"
                           "MutexLock/CondVar wrappers so the thread-safety "
                           "analysis sees the lock");
        break;  // one finding per line is enough
      }
    }
  }
}

/// raw-thread: thread ownership is concentrated in the executor; anything
/// else spawning threads must say so explicitly with a suppression (the net
/// reader/handler threads do).
void CheckRawThread(const std::string& path, const std::vector<LineInfo>& lines, Emit out) {
  static const char* kRule = "raw-thread";
  if (PathHas(path, "common/sync.h") || PathHas(path, "common/executor.")) return;
  static const std::vector<std::string> kBanned = {"std::thread", "std::jthread",
                                                   "pthread_create"};
  for (size_t i = 0; i < lines.size(); ++i) {
    for (const auto& token : kBanned) {
      if (HasToken(lines[i].code, token) && !Suppressed(lines, i, kRule)) {
        AddFinding(out, path, i, kRule,
                   token + " outside common/executor; submit work to the pool, or "
                           "suppress with a comment explaining who joins the thread");
        break;
      }
    }
  }
}

/// wall-clock: scheduling on system_clock breaks under NTP adjustment —
/// deadlines, backoff and spans all use steady_clock (PR 1 converted the
/// stragglers; this keeps them out).
void CheckWallClock(const std::string& path, const std::vector<LineInfo>& lines, Emit out) {
  static const char* kRule = "wall-clock";
  for (size_t i = 0; i < lines.size(); ++i) {
    if (HasToken(lines[i].code, "system_clock") && !Suppressed(lines, i, kRule)) {
      AddFinding(out, path, i, kRule,
                 "system_clock in a scheduling/timing path; use "
                 "std::chrono::steady_clock (wall time moves under NTP)");
    }
  }
}

/// privacy-retry: a privacy refusal is a *verdict*, not a transient fault.
/// Retrying it hammers the auditor with the same disclosure request and, for
/// randomized defenses, hands the attacker fresh noise draws to average.
void CheckPrivacyRetry(const std::string& path, const std::vector<LineInfo>& lines, Emit out) {
  static const char* kRule = "privacy-retry";
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    const bool privacy =
        HasToken(code, "kPrivacyViolation") || HasToken(code, "IsPrivacyViolation");
    if (!privacy) continue;
    const bool retryish = ContainsCaseInsensitive(code, "retry") ||
                          ContainsCaseInsensitive(code, "attempt") ||
                          ContainsCaseInsensitive(code, "backoff");
    if (retryish && !Suppressed(lines, i, kRule)) {
      AddFinding(out, path, i, kRule,
                 "retry logic keyed on a privacy violation; privacy refusals are "
                 "final verdicts and must never be retried");
    }
  }
}

/// serialization-boundary: record tables cross into/out of XML only at the
/// blessed seams, so every raw-record byte stream is policy-checked and
/// perturbation-tagged before it exists.
void CheckSerializationBoundary(const std::string& path, const std::vector<LineInfo>& lines,
                                Emit out) {
  static const char* kRule = "serialization-boundary";
  static const std::vector<std::string> kBlessed = {
      "relational/",       "policy/",
      "source/remote_source", "source/metadata_tagger",
      "mediator/persistence.cc", "mediator/result_integrator.cc",
      "net/wire.cc"};
  for (const auto& prefix : kBlessed) {
    if (PathHas(path, prefix)) return;
  }
  static const std::vector<std::string> kSeams = {"TableToXml", "XmlToTable",
                                                  "TableFromXmlRecords"};
  for (size_t i = 0; i < lines.size(); ++i) {
    for (const auto& token : kSeams) {
      if (HasToken(lines[i].code, token) && !Suppressed(lines, i, kRule)) {
        AddFinding(out, path, i, kRule,
                   token + " outside the blessed serialization seams; raw records "
                           "must only (de)materialize where policy tagging is applied");
        break;
      }
    }
  }
}

/// status-discard: `(void)call()` swallows a [[nodiscard]] Status/Result.
/// Sometimes that is right (already-failing teardown paths) — but then the
/// line must say why. A comment on the line, on the line above, or heading a
/// contiguous block of discards counts as the justification.
void CheckStatusDiscard(const std::string& path, const std::vector<LineInfo>& lines, Emit out) {
  static const char* kRule = "status-discard";
  bool prev_was_justified_discard = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    const size_t pos = code.find("(void)");
    if (pos == std::string::npos) {
      // Blank separator lines do not break a justified block; code does.
      if (!code.empty() &&
          code.find_first_not_of(" \t") != std::string::npos) {
        prev_was_justified_discard = false;
      }
      continue;
    }
    // `int f(void)` — a parameter list, not a discard.
    if (pos > 0 && (std::isalnum(static_cast<unsigned char>(code[pos - 1])) ||
                    code[pos - 1] == '_')) {
      continue;
    }
    // Walk the discarded expression: a plain `(void)identifier;` silences an
    // unused variable, which needs no justification; a `(` makes it a call.
    bool is_call = false;
    for (size_t j = pos + 6; j < code.size(); ++j) {
      const char c = code[j];
      if (c == '(') {
        is_call = true;
        break;
      }
      if (c == ';') break;
    }
    if (!is_call) continue;
    const bool justified = !lines[i].comment.empty() ||
                           (i > 0 && !lines[i - 1].comment.empty()) ||
                           prev_was_justified_discard;
    if (!justified && !Suppressed(lines, i, kRule)) {
      AddFinding(out, path, i, kRule,
                 "(void)-discarded call with no justification comment; say why "
                 "ignoring this Status is safe");
      prev_was_justified_discard = false;
    } else {
      prev_was_justified_discard = true;
    }
  }
}

/// header-hygiene: headers must not leak iostream (code size, init-order
/// fiascos) nor the raw threading headers the sync/executor wrappers exist
/// to encapsulate.
void CheckHeaderHygiene(const std::string& path, const std::vector<LineInfo>& lines, Emit out) {
  static const char* kRule = "header-hygiene";
  if (!IsHeader(path)) return;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string target = IncludeTarget(lines[i].code);
    if (target.empty()) continue;
    std::string why;
    if (target == "iostream") {
      why = "<iostream> in a header drags stream globals into every TU; "
            "include it in the .cc that actually prints";
    } else if ((target == "mutex" || target == "shared_mutex" ||
                target == "condition_variable") &&
               !PathHas(path, "common/sync.h")) {
      why = "<" + target + "> in a header outside common/sync.h; use the "
            "annotated wrappers from common/sync.h";
    } else if (target == "thread" && !PathHas(path, "common/executor.h") &&
               !PathHas(path, "common/sync.h")) {
      why = "<thread> in a header outside common/executor.h; threads are owned "
            "by the executor (suppress if this type legitimately owns one)";
    }
    if (!why.empty() && !Suppressed(lines, i, kRule)) {
      AddFinding(out, path, i, kRule, why);
    }
  }
}

/// analysis-escape: NO_THREAD_SAFETY_ANALYSIS outside sync.h would let code
/// opt out of the proof the whole tentpole exists to provide. This enforces
/// the acceptance criterion directly.
void CheckAnalysisEscape(const std::string& path, const std::vector<LineInfo>& lines, Emit out) {
  static const char* kRule = "analysis-escape";
  if (PathHas(path, "common/sync.h")) return;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (HasToken(lines[i].code, "NO_THREAD_SAFETY_ANALYSIS") &&
        !Suppressed(lines, i, kRule)) {
      AddFinding(out, path, i, kRule,
                 "NO_THREAD_SAFETY_ANALYSIS outside common/sync.h; there is no "
                 "escape hatch in application code — fix the annotation instead");
    }
  }
}

/// row-loop: the perturbation/anonymization kernels and the relational
/// engine iterate contiguous column buffers; materializing Rows in a loop
/// reintroduces the per-cell variant churn the columnar rebuild removed
/// (and, for dense write-backs, the NULL-misalignment bug class). The row
/// shims (relational/table.*) and the row-engine reference
/// (relational/reference.*) are the sanctioned homes of row iteration.
void CheckRowLoop(const std::string& path, const std::vector<LineInfo>& lines, Emit out) {
  static const char* kRule = "row-loop";
  const bool hot = PathHas(path, "src/perturb/") ||
                   PathHas(path, "src/anonymity/") ||
                   PathHas(path, "src/relational/");
  if (!hot) return;
  if (PathHas(path, "relational/table.") || PathHas(path, "relational/reference.")) {
    return;
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    // ".rows()" / "->rows()" but not "num_rows()": the char before "rows()"
    // must not be part of an identifier.
    bool rows_call = false;
    for (size_t p = code.find("rows()"); p != std::string::npos;
         p = code.find("rows()", p + 1)) {
      if (p == 0) continue;  // a bare "rows()" is not a member call
      const char before = code[p - 1];
      if (!(std::isalnum(static_cast<unsigned char>(before)) || before == '_')) {
        rows_call = true;
        break;
      }
    }
    const bool row_iteration =
        HasToken(code, "mutable_rows") ||
        (HasToken(code, "for") &&
         (rows_call || code.find("Row&") != std::string::npos));
    if (row_iteration && !Suppressed(lines, i, kRule)) {
      AddFinding(out, path, i, kRule,
                 "row-at-a-time iteration in a columnar hot path; loop over the "
                 "column's typed buffer (Table::col / MutableColumn) instead");
    }
  }
}

/// manual-snapshot: snapshot rotation is owned by the background
/// snapshotter (and the engine's recovery fold-in). Anything else calling
/// the StateLog rotation surface directly races the snapshotter's dirty
/// tracking, skips the fail-closed latch, and breaks the KillPoint
/// accounting — request a snapshot through
/// MediationEngine::TriggerSnapshot instead.
void CheckManualSnapshot(const std::string& path, const std::vector<LineInfo>& lines,
                         Emit out) {
  static const char* kRule = "manual-snapshot";
  if (PathHas(path, "persist/state_log.") || PathHas(path, "persist/snapshotter.") ||
      PathHas(path, "mediator/engine.")) {
    return;
  }
  static const std::vector<std::string> kBanned = {
      "Rotate", "RotateSnapshotLocked", "RotateSnapshotBackground"};
  for (size_t i = 0; i < lines.size(); ++i) {
    for (const auto& token : kBanned) {
      if (HasToken(lines[i].code, token) && !Suppressed(lines, i, kRule)) {
        AddFinding(out, path, i, kRule,
                   token + " outside the snapshotter/engine rotation seam; "
                           "request snapshots via MediationEngine::TriggerSnapshot "
                           "so dirty-floor tracking and the fail-closed latch stay "
                           "correct");
        break;
      }
    }
  }
}

struct Rule {
  const char* name;
  const char* description;
  void (*check)(const std::string&, const std::vector<LineInfo>&, Emit);
};

const std::vector<Rule>& Rules() {
  static const std::vector<Rule> kRules = {
      {"raw-sync",
       "std sync primitives outside common/sync.h (bypass the annotated wrappers)",
       CheckRawSync},
      {"raw-thread",
       "std::thread/pthread_create outside common/executor (unmanaged threads)",
       CheckRawThread},
      {"wall-clock", "system_clock in timing paths (use steady_clock)",
       CheckWallClock},
      {"privacy-retry",
       "retry logic keyed on kPrivacyViolation (privacy refusals are final)",
       CheckPrivacyRetry},
      {"serialization-boundary",
       "record (de)serialization outside the blessed policy-tagged seams",
       CheckSerializationBoundary},
      {"status-discard",
       "(void)-discarded Status/Result call without a justification comment",
       CheckStatusDiscard},
      {"header-hygiene",
       "banned includes in headers (iostream, raw sync/thread headers)",
       CheckHeaderHygiene},
      {"analysis-escape",
       "NO_THREAD_SAFETY_ANALYSIS outside common/sync.h (no opt-outs)",
       CheckAnalysisEscape},
      {"row-loop",
       "row-at-a-time iteration in columnar hot paths (perturb/anonymity/relational)",
       CheckRowLoop},
      {"manual-snapshot",
       "StateLog rotation calls outside the snapshotter/engine seam (bypass "
       "dirty-floor tracking and the fail-closed latch)",
       CheckManualSnapshot},
  };
  return kRules;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& rule : Rules()) names.push_back(rule.name);
    return names;
  }();
  return kNames;
}

std::string RuleDescription(const std::string& rule) {
  for (const auto& r : Rules()) {
    if (rule == r.name) return r.description;
  }
  return "";
}

std::vector<Finding> RunLint(const std::vector<FileContent>& files) {
  std::vector<Finding> findings;
  for (const auto& file : files) {
    const std::vector<LineInfo> lines = SplitLines(file.content);
    for (const auto& rule : Rules()) {
      rule.check(file.path, lines, findings);
    }
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"count\": " << findings.size() << ", \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ", ";
    out << "{\"file\": \"" << JsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << JsonEscape(f.rule) << "\", \"message\": \""
        << JsonEscape(f.message) << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace lint
}  // namespace piye

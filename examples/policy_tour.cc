// A tour of the three declarative policy languages of Section 3:
//   1. the source policy language (who may see what, for which purposes,
//      in what form),
//   2. the user preference language (what a data subject tolerates),
//   3. the privacy-view language (which slice of a table exists at all for
//      the outside world),
// and how their verdicts compose through the purpose lattice.
//
//   $ ./build/examples/policy_tour

#include <cstdio>

#include "policy/policy_store.h"
#include "relational/table.h"
#include "xml/parser.h"

using namespace piye;  // example code; the library itself never does this

int main() {
  // --- Language 1: a source privacy policy, in its XML form. ---
  const char* policy_xml = R"(
    <policy owner="general-hospital">
      <rule id="diagnosis-research">
        <item table="patients" column="diagnosis"/>
        <purpose>research</purpose>
        <purpose>disease-surveillance</purpose>
        <form>exact</form>
        <condition>year >= 2000</condition>
        <maxLoss>0.6</maxLoss>
      </rule>
      <rule id="dob-coarse">
        <item table="patients" column="dob"/>
        <purpose>healthcare</purpose>
        <form>range</form>
        <maxLoss>0.4</maxLoss>
      </rule>
      <rule id="never-marketing" effect="deny">
        <item table="*" column="*"/>
        <purpose>marketing</purpose>
      </rule>
    </policy>)";
  auto policy = policy::PrivacyPolicy::Parse(policy_xml);
  if (!policy.ok()) {
    std::fprintf(stderr, "policy parse: %s\n", policy.status().ToString().c_str());
    return 1;
  }
  std::printf("Parsed policy of '%s' with %zu rules.\n\n", policy->owner().c_str(),
              policy->rules().size());

  // --- Language 2: a data subject's preferences. ---
  auto pref = policy::UserPreference::Parse(R"(
    <preference subject="patient-17">
      <allow category="diagnosis" form="generalized" maxLoss="0.5">
        <purpose>research</purpose>
      </allow>
      <allow category="dob" form="range" maxLoss="0.3">
        <purpose>healthcare</purpose>
      </allow>
    </preference>)");
  if (!pref.ok()) return 1;
  std::printf("Parsed preferences of subject '%s'.\n\n", pref->subject_id().c_str());

  // --- Language 3: a privacy view over the patients table. ---
  auto view = policy::PrivacyView::Parse(R"(
    <privacyView name="research_slice" table="patients">
      <visible>diagnosis</visible>
      <sensitive column="dob" form="range"/>
      <rowFilter>consented = TRUE</rowFilter>
    </privacyView>)");
  if (!view.ok()) return 1;
  std::printf("Parsed privacy view '%s' over table '%s'.\n\n", view->name().c_str(),
              view->table().c_str());

  // --- Composition through the store. ---
  policy::PolicyStore store;
  (void)store.AddPolicy(std::move(*policy));
  (void)store.AddPreference(std::move(*pref));
  (void)store.AddView("general-hospital", std::move(*view));

  struct Probe {
    const char* column;
    const char* purpose;
    const char* recipient;
  };
  const Probe probes[] = {
      {"diagnosis", "research", "cdc"},
      {"diagnosis", "treatment", "cdc"},          // purpose not granted
      {"diagnosis", "marketing", "advertiser"},   // deny rule
      {"dob", "treatment", "clinic"},             // treatment ⊑ healthcare
      {"dob", "research", "cdc"},                 // research ⊑ healthcare
      {"name", "research", "cdc"},                // no rule: default deny
  };
  std::printf("%-11s %-22s %-12s -> %-12s budget  rules\n", "column", "purpose",
              "recipient", "form");
  for (const auto& probe : probes) {
    const policy::Disclosure d = store.EffectiveDisclosure(
        "general-hospital", "patients", probe.column, probe.purpose, probe.recipient);
    std::string rules;
    for (const auto& id : d.rule_ids) {
      if (!rules.empty()) rules += ",";
      rules += id;
    }
    std::printf("%-11s %-22s %-12s -> %-12s %5.2f   %s\n", probe.column,
                probe.purpose, probe.recipient,
                policy::DisclosureFormToString(d.form), d.max_privacy_loss,
                rules.c_str());
  }

  // The subject's preference tightens the policy verdict: diagnosis drops
  // from exact to generalized for research, because patient-17 says so.
  std::printf("\nNote how the subject preference capped 'diagnosis' at "
              "'generalized' even though the source policy grants 'exact'.\n");

  // The purpose lattice behind the purpose matching above.
  const auto& lattice = store.lattice();
  std::printf("\nPurpose chain for 'outbreak-control': ");
  for (const auto& p : lattice.Ancestors("outbreak-control")) {
    std::printf("%s%s", p.c_str(), p == "any" ? "\n" : " -> ");
  }
  return 0;
}

// Quickstart: stand up two heterogeneous sources with privacy policies,
// generate the mediated schema, and run an integrated PIQL query.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/private_iye.h"
#include "policy/policy.h"

using piye::core::PrivateIye;
using piye::policy::DisclosureForm;
using piye::policy::PolicyRule;
using piye::policy::PrivacyPolicy;
using piye::relational::Column;
using piye::relational::ColumnType;
using piye::relational::Row;
using piye::relational::Schema;
using piye::relational::Table;
using piye::relational::Value;

namespace {

Table HospitalTable() {
  Table t(Schema{Column{"patient_id", ColumnType::kString},
                 Column{"name", ColumnType::kString},
                 Column{"dob", ColumnType::kString},
                 Column{"diagnosis", ColumnType::kString}});
  struct P {
    const char *id, *name, *dob, *dx;
  };
  // Note one 1950s outlier: with k = 3 suppression the released result drops
  // that row — its decade bucket would identify the patient.
  const P patients[] = {
      {"P1", "maria tan", "1970-01-02", "diabetes"},
      {"P2", "james lee", "1971-03-14", "asthma"},
      {"P3", "wei garcia", "1974-07-21", "diabetes"},
      {"P4", "fatima weber", "1972-11-30", "hypertension"},
      {"P5", "ivan sato", "1982-03-04", "asthma"},
      {"P6", "chloe novak", "1985-09-17", "diabetes"},
      {"P7", "raj silva", "1988-12-25", "diabetes"},
      {"P8", "sofia patel", "1955-05-06", "diabetes"},
  };
  for (const P& p : patients) {
    (void)t.AppendRow(
        Row{Value::Str(p.id), Value::Str(p.name), Value::Str(p.dob), Value::Str(p.dx)});
  }
  return t;
}

Table PharmacyTable() {
  Table t(Schema{Column{"pid", ColumnType::kString},
                 Column{"dateOfBirth", ColumnType::kString},
                 Column{"drug", ColumnType::kString}});
  struct P {
    const char *id, *dob, *drug;
  };
  const P fills[] = {
      {"P1", "1970-01-02", "metformin"},
      {"P2", "1971-03-14", "albuterol"},
      {"P3", "1974-07-21", "metformin"},
      {"P9", "1991-07-08", "albuterol"},  // lone 1990s patient: suppressed
  };
  for (const P& p : fills) {
    (void)t.AppendRow(Row{Value::Str(p.id), Value::Str(p.dob), Value::Str(p.drug)});
  }
  return t;
}

// Grants `column` in `form` for healthcare purposes with a loss budget.
void Grant(PrivacyPolicy* policy, const char* column, DisclosureForm form,
           double budget) {
  PolicyRule rule;
  rule.id = std::string(column) + "-rule";
  rule.item = {"*", column};
  rule.purposes = {"healthcare"};
  rule.recipients = {"*"};
  rule.form = form;
  rule.max_privacy_loss = budget;
  policy->AddRule(rule);
}

}  // namespace

int main() {
  PrivateIye system;

  // 1. Register sources. Note the heterogeneous column names (dob vs
  //    dateOfBirth, patient_id vs pid) — nobody reconciles them by hand.
  auto* hospital = system.AddSource("hospital", "patients", HospitalTable());
  auto* pharmacy = system.AddSource("pharmacy", "prescriptions", PharmacyTable());

  // 2. Each source declares its own privacy policy. Patient names get no
  //    rule at all: PRIVATE-IYE denies by default.
  PrivacyPolicy hospital_policy("hospital", {});
  Grant(&hospital_policy, "patient_id", DisclosureForm::kExact, 1.0);
  Grant(&hospital_policy, "dob", DisclosureForm::kRange, 0.6);
  Grant(&hospital_policy, "diagnosis", DisclosureForm::kExact, 0.9);
  (void)hospital->mutable_policies()->AddPolicy(std::move(hospital_policy));

  PrivacyPolicy pharmacy_policy("pharmacy", {});
  Grant(&pharmacy_policy, "pid", DisclosureForm::kExact, 1.0);
  Grant(&pharmacy_policy, "dateOfBirth", DisclosureForm::kRange, 0.6);
  Grant(&pharmacy_policy, "drug", DisclosureForm::kExact, 0.9);
  (void)pharmacy->mutable_policies()->AddPolicy(std::move(pharmacy_policy));

  // 3. Access control: the researcher role may SELECT what policy allows.
  for (auto* src : {hospital, pharmacy}) {
    (void)src->mutable_rbac()->AddRole("researcher");
    (void)src->mutable_rbac()->AssignRole("cdc", "researcher");
    (void)src->mutable_rbac()->Grant("researcher", piye::access::Action::kSelect,
                                     "*", "*");
  }

  // 4. Build the mediated schema from privacy-respecting sketches.
  if (auto st = system.Initialize(); !st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Mediated schema:\n");
  for (const auto& attr : system.mediated_schema().attributes()) {
    std::printf("  %-12s <- %zu source column(s)\n", attr.name.c_str(),
                attr.mappings.size());
  }

  // 5. Query in PIQL: loose attribute names, stated purpose, loss tolerance.
  auto result = system.QueryXml(R"(
    <query requester="cdc" purpose="research" maxLoss="0.9">
      <select>patientId</select>
      <select>birthDate</select>
      <select>diagnosis</select>
      <select>drug</select>
    </query>)");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nIntegrated result (%zu rows, combined privacy loss %.2f):\n",
              result->table().num_rows(), result->combined_privacy_loss);
  std::printf("%s\n", result->table().ToString().c_str());

  // 6. The same query for a disallowed purpose is refused outright.
  auto refused = system.QueryXml(R"(
    <query requester="cdc" purpose="marketing" maxLoss="1.0">
      <select>diagnosis</select>
    </query>)");
  std::printf("Marketing purpose: %s\n",
              refused.ok() ? "allowed (?!)" : refused.status().ToString().c_str());
  return 0;
}

// Example 1 from the paper, end to end: the four HMOs' diabetes-care
// compliance rates are integrated and published as aggregates. A traditional
// integrator leaks — the snooping HMO1 runs its non-linear-programming
// inference and recovers everyone's sensitive rates to within a few points
// (Figure 1(d)). PRIVATE-IYE's privacy control audits the same release
// schedule with the adversary's own machinery and stops it.
//
//   $ ./build/examples/clinical_integration

#include <cstdio>

#include "core/baseline.h"
#include "core/scenario.h"
#include "inference/privacy_loss.h"
#include "inference/snooping_attack.h"
#include "mediator/privacy_control.h"

using piye::core::ClinicalScenario;
using piye::inference::AttackerKnowledge;
using piye::inference::PublishedAggregates;
using piye::inference::SnoopingAttack;

namespace {

void PrintIntervals(const PublishedAggregates& published,
                    const piye::inference::AttackResult& result,
                    const std::vector<std::vector<double>>& truth) {
  std::printf("%-13s", "");
  for (const auto& p : published.parties) std::printf(" %-16s", p.c_str());
  std::printf("\n");
  for (size_t m = 0; m < published.measures.size(); ++m) {
    std::printf("%-13s", published.measures[m].c_str());
    for (size_t p = 0; p < published.parties.size(); ++p) {
      const auto& iv = result.intervals[m][p];
      std::printf(" [%5.1f;%5.1f]   ", iv.lo, iv.hi);
    }
    std::printf("\n%-13s", "  (truth)");
    for (size_t p = 0; p < published.parties.size(); ++p) {
      std::printf("  %6.1f          ", truth[m][p]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // Ground-truth rates consistent with the paper's published aggregates;
  // HMO1's own values are exactly the paper's (75 / 56 / 43).
  auto rates = ClinicalScenario::GroundTruthRates();
  if (!rates.ok()) {
    std::fprintf(stderr, "%s\n", rates.status().ToString().c_str());
    return 1;
  }

  // ------------------------------------------------------------------
  // World 1: a traditional integrator (access control only).
  // ------------------------------------------------------------------
  std::vector<std::unique_ptr<piye::source::RemoteSource>> sources;
  std::vector<const piye::source::RemoteSource*> raw;
  for (size_t p = 0; p < 4; ++p) {
    auto src = ClinicalScenario::MakeHmoSource(p, *rates);
    if (!src.ok()) return 1;
    sources.push_back(std::move(*src));
    raw.push_back(sources.back().get());
  }
  auto published_rows =
      piye::core::NaiveIntegrator::PublishGroupedAggregates(raw, "test", "rate");
  if (!published_rows.ok()) return 1;

  std::printf("=== Published by the traditional integrator (Figure 1(a)) ===\n");
  std::printf("%-13s %8s %8s\n", "Test", "Mean", "Sigma");
  for (const auto& row : *published_rows) {
    std::printf("%-13s %7.1f%% %7.1f%%\n", row.group.c_str(), row.mean, row.stddev);
  }

  PublishedAggregates published = PublishedAggregates::Figure1();
  AttackerKnowledge attacker = AttackerKnowledge::Figure1();
  for (size_t m = 0; m < 3; ++m) {
    published.measure_mean[m] = (*published_rows)[m].mean;
    published.measure_sigma[m] = (*published_rows)[m].stddev;
    attacker.own_values[m] = (*rates)[m][0];
  }
  for (size_t p = 0; p < 4; ++p) {
    double mean = 0.0;
    for (size_t m = 0; m < 3; ++m) mean += (*rates)[m][p];
    published.party_mean[p] = mean / 3.0;
  }
  published.tolerance = 0.005;

  SnoopingAttack attack(/*seed=*/42);
  auto breach = attack.Run(published, attacker);
  if (!breach.ok()) return 1;
  std::printf("\n=== What snooping HMO1 infers via NLP (Figure 1(d)) ===\n");
  PrintIntervals(published, *breach, *rates);
  std::printf("Mean interval width over unknown cells: %.1f points "
              "(prior width: 100)\n",
              breach->MeanUnknownWidth(0));

  // ------------------------------------------------------------------
  // World 2: PRIVATE-IYE's privacy control audits the release schedule.
  // ------------------------------------------------------------------
  std::printf("\n=== The same schedule through PRIVATE-IYE privacy control ===\n");
  piye::mediator::PrivacyControl control(/*max_combined_loss=*/1.0,
                                         /*max_interval_loss=*/0.85);
  std::vector<std::vector<size_t>> cell(3, std::vector<size_t>(4));
  for (size_t m = 0; m < 3; ++m) {
    for (size_t p = 0; p < 4; ++p) {
      cell[m][p] = control.RegisterSensitiveCell(
          published.measures[m] + "/" + published.parties[p], 0, 100, (*rates)[m][p]);
    }
  }
  auto report = [&](const char* what, const piye::Result<double>& r) {
    if (r.ok()) {
      std::printf("  release %-28s -> APPROVED (%.1f)\n", what, *r);
    } else {
      std::printf("  release %-28s -> REFUSED: %s\n", what,
                  r.status().message().c_str());
    }
  };
  for (size_t m = 0; m < 3; ++m) {
    report((published.measures[m] + " mean").c_str(),
           control.ApproveMeanDisclosure(cell[m], 0.05));
  }
  for (size_t m = 0; m < 3; ++m) {
    report((published.measures[m] + " sigma").c_str(),
           control.ApproveStdDevDisclosure(cell[m], 0.05));
  }
  for (size_t p = 0; p < 4; ++p) {
    std::vector<size_t> party_cells{cell[0][p], cell[1][p], cell[2][p]};
    report((published.parties[p] + " mean").c_str(),
           control.ApproveMeanDisclosure(party_cells, 0.05));
  }
  auto losses = control.CurrentLosses();
  if (losses.ok()) {
    double worst = 0.0;
    for (double l : *losses) worst = std::max(worst, l);
    std::printf("Worst interval loss over all sensitive cells after the audited "
                "releases: %.2f (threshold 0.85)\n",
                worst);
  }
  std::printf("%zu releases approved, %zu refused.\n",
              control.disclosures_committed(),
              control.disclosures_refused());
  return 0;
}

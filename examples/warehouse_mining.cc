// The reason the paper wants integration at all: "gathering all relevant
// data from different sources to a central repository and then run a set of
// algorithms against this data to detect trends and patterns". This example
// integrates patient data through PRIVATE-IYE (so everything the miner sees
// is already policy-filtered and coarsened) and then mines the warehoused
// result for association rules and outbreak trends.
//
//   $ ./build/examples/warehouse_mining

#include <cstdio>

#include "core/private_iye.h"
#include "core/scenario.h"
#include "core/warehouse_miner.h"
#include "relational/executor.h"

using namespace piye;

int main() {
  // --- Integrate the clinical world, privacy-preserved. ---
  mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  core::PrivateIye system(options);
  auto tables = core::ClinicalScenario::MakePatientTables(120, 0.4, 2024);
  auto* hospital =
      system.AddSource("hospital", "patients", std::move(tables.hospital), 1);
  core::ClinicalScenario::ApplyPatientPolicies(hospital);
  if (!system.Initialize().ok()) return 1;

  auto result = system.QueryXml(R"(
    <query requester="analyst" purpose="research" maxLoss="0.95">
      <select>diagnosis</select><select>sex</select><select>dob</select>
    </query>)");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Integrated %zu released records (dob arrives as decade "
              "prefixes, names never arrive at all).\n\n",
              result->table().num_rows());

  // --- Mine the released table. ---
  auto itemsets = core::WarehouseMiner::FrequentItemsets(result->table(), 0.08, 2);
  if (itemsets.ok()) {
    std::printf("Frequent patterns (support >= 8%%):\n");
    size_t shown = 0;
    for (const auto& is : *itemsets) {
      if (is.items.size() < 2) continue;  // pairs are the interesting ones
      std::string text;
      for (const auto& item : is.items) {
        if (!text.empty()) text += " AND ";
        text += item;
      }
      std::printf("  %-52s support %.2f\n", text.c_str(), is.support);
      if (++shown == 8) break;
    }
  }
  auto rules = core::WarehouseMiner::AssociationRules(result->table(), 0.08, 0.5, 2);
  if (rules.ok()) {
    std::printf("\nAssociation rules (confidence >= 0.5, by lift):\n");
    size_t shown = 0;
    for (const auto& rule : *rules) {
      std::string lhs;
      for (const auto& item : rule.lhs) {
        if (!lhs.empty()) lhs += " AND ";
        lhs += item;
      }
      std::printf("  %-40s => %-28s conf %.2f lift %.2f\n", lhs.c_str(),
                  rule.rhs.c_str(), rule.confidence, rule.lift);
      if (++shown == 6) break;
    }
  }

  // --- Trend mining over outbreak surveillance feeds. ---
  const std::vector<std::string> countries{"sg", "hk", "cn"};
  auto cases = core::OutbreakScenario::MakeCaseTables(countries, 50, 25, 2, 7);
  auto unioned = relational::Executor::Union(cases[0], cases[1]);
  if (unioned.ok()) unioned = relational::Executor::Union(*unioned, cases[2]);
  if (unioned.ok()) {
    auto slopes =
        core::WarehouseMiner::TrendSlopes(*unioned, "region", "day", "cases");
    if (slopes.ok()) {
      std::printf("\nCase-count trend slopes (cases/day) per region:\n");
      for (const auto& [region, slope] : *slopes) {
        std::printf("  %-6s %+7.2f %s\n", region.c_str(), slope,
                    slope > 1.0 ? "<-- escalating: investigate" : "");
      }
    }
  }
  return 0;
}

// Example 2 from the paper: disease-outbreak surveillance. Countries hold
// daily case counts they will not share row-level; through PRIVATE-IYE they
// share privacy-preserving aggregates for the "disease-surveillance"
// purpose, and the integrated curve still detects the outbreak — contrast
// with the no-sharing world where the signal never crosses the threshold.
//
//   $ ./build/examples/disease_outbreak

#include <cstdio>
#include <map>

#include "core/private_iye.h"
#include "core/scenario.h"
#include "policy/policy.h"

using piye::core::OutbreakScenario;
using piye::core::PrivateIye;

int main() {
  const std::vector<std::string> countries{"singapore", "hongkong", "china",
                                           "canada"};
  const size_t days = 70, outbreak_day = 35, outbreak_at = 2;  // china
  auto tables =
      OutbreakScenario::MakeCaseTables(countries, days, outbreak_day, outbreak_at, 5);

  // Keep a copy of the ground truth curves for the comparison worlds.
  std::vector<std::vector<double>> truth(countries.size(),
                                         std::vector<double>(days, 0.0));
  for (size_t c = 0; c < countries.size(); ++c) {
    for (const auto& row : tables[c].rows()) {
      truth[c][static_cast<size_t>(row[0].AsInt())] =
          static_cast<double>(row[2].AsInt());
    }
  }

  piye::mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.99;
  options.max_cumulative_loss = 1000.0;
  options.enable_warehouse = true;  // emergencies need quick re-answers
  PrivateIye system(options);
  for (size_t c = 0; c < countries.size(); ++c) {
    auto* src = system.AddSource(countries[c], "cases", std::move(tables[c]),
                                 static_cast<uint64_t>(c) + 1);
    piye::policy::PrivacyPolicy policy(countries[c], {});
    piye::policy::PolicyRule cases_rule;
    cases_rule.id = "cases-aggregate";
    cases_rule.item = {"*", "cases"};
    cases_rule.purposes = {"disease-surveillance"};
    cases_rule.recipients = {"*"};
    cases_rule.form = piye::policy::DisclosureForm::kAggregate;
    cases_rule.max_privacy_loss = 0.9;
    policy.AddRule(cases_rule);
    piye::policy::PolicyRule day_rule;
    day_rule.id = "day-public";
    day_rule.item = {"*", "day"};
    day_rule.purposes = {"*"};
    day_rule.recipients = {"*"};
    day_rule.form = piye::policy::DisclosureForm::kExact;
    policy.AddRule(day_rule);
    (void)src->mutable_policies()->AddPolicy(std::move(policy));
    (void)src->mutable_rbac()->AddRole("who");
    (void)src->mutable_rbac()->AssignRole("who", "who");
    (void)src->mutable_rbac()->Grant("who", piye::access::Action::kSelect, "*", "*");
  }
  if (!system.Initialize().ok()) return 1;

  auto result = system.QueryXml(R"(
    <query requester="who" purpose="disease-surveillance" maxLoss="0.95">
      <aggregate func="SUM" attribute="cases"><groupBy>day</groupBy></aggregate>
    </query>)");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Integrated surveillance feed: %zu sources answered, combined "
              "privacy loss %.2f\n",
              result->sources_answered.size(), result->combined_privacy_loss);

  // Reassemble the integrated daily curve from the privacy-preserving feed.
  std::map<int64_t, double> by_day;
  auto day_idx = result->table().schema().IndexOf("day");
  auto sum_idx = result->table().schema().IndexOf("sum_cases");
  if (!day_idx.ok() || !sum_idx.ok()) return 1;
  for (const auto& row : result->table().rows()) {
    by_day[row[*day_idx].AsInt()] += row[*sum_idx].AsDouble();
  }
  std::vector<double> integrated;
  for (size_t d = 0; d < days; ++d) integrated.push_back(by_day[(int64_t)d]);

  // Comparison worlds.
  std::vector<double> no_sharing(days, 0.0);
  for (size_t c = 0; c < countries.size(); ++c) {
    if (c == outbreak_at) continue;  // the affected country does not share
    for (size_t d = 0; d < days; ++d) no_sharing[d] += truth[c][d];
  }
  const long with_piye = OutbreakScenario::DetectOutbreak(integrated, 7, 2.0);
  const long without = OutbreakScenario::DetectOutbreak(no_sharing, 7, 2.0);

  std::printf("\nOutbreak starts on day %zu in %s.\n", outbreak_day,
              countries[outbreak_at].c_str());
  std::printf("Detection with privacy-preserving sharing: day %ld\n", with_piye);
  if (without < 0) {
    std::printf("Detection without the affected country's data: NEVER\n");
  } else {
    std::printf("Detection without the affected country's data: day %ld\n", without);
  }

  // Small ASCII sparkline of the integrated curve.
  std::printf("\nIntegrated daily totals:\n");
  double mx = 1.0;
  for (double v : integrated) mx = std::max(mx, v);
  for (size_t d = 0; d < days; d += 2) {
    const int bar = static_cast<int>(integrated[d] / mx * 50.0);
    std::printf("day %2zu %6.0f |%.*s%s\n", d, integrated[d], bar,
                "##################################################",
                d == static_cast<size_t>(with_piye) ? " <- detected" : "");
  }
  return 0;
}

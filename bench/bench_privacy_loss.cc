// Experiment abl-loss — the privacy metrics of Section 4: probabilistic
// notions of conditional loss instead of boolean revealed/not-revealed.
// Shows how interval loss (and its bits form) responds to publication
// precision and output noise, and plots the R-U confidentiality map
// coordinates for the rounding defense.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "inference/privacy_loss.h"
#include "inference/snooping_attack.h"

using namespace piye::inference;

namespace {

void LossVsPrecision() {
  std::printf("--- Interval loss of the Figure 1 victim cells vs publication "
              "precision ---\n");
  std::printf("%-12s %-12s %-12s %-12s %-10s\n", "precision", "mean width",
              "mean loss", "loss (bits)", "R-U score");
  const AttackerKnowledge attacker = AttackerKnowledge::Figure1();
  for (double precision : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    PublishedAggregates published = PublishedAggregates::Figure1();
    published.tolerance = precision / 2.0;
    SnoopingAttack attack(42);
    auto result = attack.Run(published, attacker);
    if (!result.ok()) continue;
    std::vector<double> losses;
    std::vector<double> bits;
    for (size_t m = 0; m < 3; ++m) {
      for (size_t p = 1; p < 4; ++p) {
        losses.push_back(loss::IntervalLoss({0, 100}, result->intervals[m][p]));
        bits.push_back(loss::IntervalLossBits({0, 100}, result->intervals[m][p]));
      }
    }
    // Utility of the published aggregates degrades with the rounding unit:
    // U = 1 - precision/20 (a 20-point rounding destroys the statistic).
    const double utility = std::max(0.0, 1.0 - precision / 20.0);
    const double risk = loss::AggregateLoss(losses);
    std::printf("%-12.1f %-12.2f %-12.3f %-12.2f %-10.3f\n", precision,
                result->MeanUnknownWidth(0), loss::MeanLoss(losses),
                loss::MeanLoss(bits), loss::RUScore(risk, utility));
  }
  std::printf("(the R-U sweet spot sits at moderate coarsening: most risk gone, "
              "most utility kept)\n\n");
}

void BM_IntervalLossComputation(benchmark::State& state) {
  const Interval prior{0, 100};
  double acc = 0.0;
  for (auto _ : state) {
    for (double w = 1.0; w < 100.0; w += 1.0) {
      acc += loss::IntervalLoss(prior, {50.0 - w / 2, 50.0 + w / 2});
      acc += loss::IntervalLossBits(prior, {50.0 - w / 2, 50.0 + w / 2});
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_IntervalLossComputation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  LossVsPrecision();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

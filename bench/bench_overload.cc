// Experiment abl-overload — the admission pipeline as a performance object
// (DESIGN.md §8, EXPERIMENTS.md abl-overload):
//
//   1. baseline vs overload: the same engine serving a polite trickle and a
//      4x-oversubscribed closed-loop burst. With admission enabled the burst
//      is partially shed with kResourceExhausted + a retry-after hint, and
//      the queries that ARE admitted keep near-baseline latency — goodput
//      degrades gracefully instead of collapsing into queue meltdown;
//   2. deadline & cancellation response: how long a caller actually waits
//      when every source hangs, with a pre-expired deadline (rejected at
//      admission, zero fragments dispatched), a short deadline, and an
//      explicit mid-flight RequestCancel;
//   3. weighted fair share: three requesters hammering a saturated engine,
//      with admitted counts tracked per requester — a weight-2 requester
//      should land about twice the goodput of a weight-1 requester.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/logging.h"
#include "core/scenario.h"
#include "mediator/admission.h"
#include "mediator/engine.h"
#include "source/remote_source.h"

using piye::CancelSource;
using piye::CancelToken;
using piye::core::ClinicalScenario;
using piye::mediator::AdmissionConfig;
using piye::mediator::MediationEngine;
using piye::mediator::QueryOptions;
using piye::source::RemoteSource;

namespace {

constexpr uint64_t kSourceLatencyMicros = 2000;  // 2 ms per source per fragment

std::vector<std::unique_ptr<RemoteSource>> BuildSources(size_t n,
                                                        uint64_t latency_micros) {
  std::vector<std::unique_ptr<RemoteSource>> sources;
  for (size_t i = 0; i < n; ++i) {
    auto tables = ClinicalScenario::MakePatientTables(50, 0.3, 100 + i);
    auto src = std::make_unique<RemoteSource>("hospital" + std::to_string(i),
                                              "patients", std::move(tables.hospital),
                                              /*seed=*/i + 1);
    ClinicalScenario::ApplyPatientPolicies(src.get());
    // The fair-share section issues queries as distinct requesters; the
    // clinical RBAC policy only knows "analyst", so grant the bench
    // identities the same role.
    for (const char* requester : {"alice", "bob", "carol"}) {
      (void)src->mutable_rbac()->AssignRole(requester, "analyst");
    }
    if (latency_micros > 0) {
      RemoteSource::FaultInjection faults;
      faults.latency_micros = latency_micros;
      src->set_fault_injection(faults);
    }
    sources.push_back(std::move(src));
  }
  return sources;
}

std::unique_ptr<MediationEngine> BuildEngine(
    const std::vector<std::unique_ptr<RemoteSource>>& sources,
    const AdmissionConfig& admission, size_t worker_threads) {
  MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  options.worker_threads = worker_threads;
  options.admission = admission;
  auto engine = std::make_unique<MediationEngine>(options);
  for (const auto& src : sources) (void)engine->RegisterSource(src.get());
  (void)engine->GenerateMediatedSchema("bench-key");
  return engine;
}

piye::source::PiqlQuery Query(const std::string& requester) {
  auto q = piye::source::PiqlQuery::Parse(
      "<query requester=\"" + requester +
      "\" purpose=\"research\" maxLoss=\"0.95\">"
      "<select>patient_id</select><select>sex</select></query>");
  return *q;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1) + 0.5));
  return sorted[idx];
}

struct LoadResult {
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t other = 0;
  double wall_ms = 0.0;
  std::vector<double> ok_latencies_ms;  ///< admitted-query latencies only
};

/// Closed-loop load: `threads` clients each issue `per_thread` queries
/// back-to-back. Queries are issued uncoalesced so every one of them must
/// pass admission on its own (coalescing would hide the overload).
LoadResult RunLoad(MediationEngine* engine, size_t threads, size_t per_thread) {
  std::atomic<uint64_t> ok{0}, shed{0}, other{0};
  std::vector<std::vector<double>> latencies(threads);
  const auto query = Query("analyst");
  QueryOptions options;
  options.coalesce = false;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < per_thread; ++i) {
        const auto q0 = std::chrono::steady_clock::now();
        auto result = engine->Execute(query, options);
        const double ms = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - q0)
                              .count() /
                          1e6;
        if (result.ok()) {
          ok.fetch_add(1);
          latencies[t].push_back(ms);
        } else if (result.status().IsResourceExhausted()) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  LoadResult r;
  r.wall_ms = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count() /
              1e6;
  r.ok = ok.load();
  r.shed = shed.load();
  r.other = other.load();
  for (auto& v : latencies)
    r.ok_latencies_ms.insert(r.ok_latencies_ms.end(), v.begin(), v.end());
  return r;
}

void PrintRow(const char* label, const LoadResult& r, uint64_t offered) {
  const double goodput = r.wall_ms > 0 ? r.ok / (r.wall_ms / 1000.0) : 0.0;
  std::printf("%-22s %-8llu %-8llu %-8llu %-11.1f %-9.2f %-9.2f %.2f\n", label,
              static_cast<unsigned long long>(offered),
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.shed), goodput,
              Percentile(r.ok_latencies_ms, 0.50),
              Percentile(r.ok_latencies_ms, 0.95),
              Percentile(r.ok_latencies_ms, 0.99));
}

void PrintOverloadSweep() {
  std::printf("--- baseline vs 4x overload (3 sources @ %.1f ms, "
              "max_inflight=4, queue=8) ---\n",
              kSourceLatencyMicros / 1000.0);
  std::printf("%-22s %-8s %-8s %-8s %-11s %-9s %-9s %s\n", "scenario", "offered",
              "ok", "shed", "goodput/s", "p50(ms)", "p95(ms)", "p99(ms)");
  auto sources = BuildSources(3, kSourceLatencyMicros);

  AdmissionConfig admission;
  admission.max_inflight = 4;
  admission.max_queue_depth = 8;
  auto engine = BuildEngine(sources, admission, /*worker_threads=*/8);

  // Baseline: 2 polite clients — well under capacity, nothing sheds.
  const auto baseline = RunLoad(engine.get(), /*threads=*/2, /*per_thread=*/20);
  PrintRow("baseline (2 clients)", baseline, 2 * 20);

  // Overload: 16 clients against 4 slots — 4x oversubscribed. The queue
  // absorbs a bounded backlog; the rest is shed at admission before touching
  // budget, history, or any source.
  const auto overload = RunLoad(engine.get(), /*threads=*/16, /*per_thread=*/5);
  PrintRow("overload (16 clients)", overload, 16 * 5);

  // The same overload with admission off: every query queues on the source
  // pool instead, so nothing sheds and tail latency absorbs the backlog.
  auto unguarded = BuildEngine(sources, AdmissionConfig{}, /*worker_threads=*/8);
  const auto melted = RunLoad(unguarded.get(), /*threads=*/16, /*per_thread=*/5);
  PrintRow("overload, no admission", melted, 16 * 5);

  const auto health = engine->Health();
  std::printf("(guarded engine totals: admitted=%llu shed=%llu cancelled=%llu; "
              "drained to inflight=%zu queue=%zu)\n\n",
              static_cast<unsigned long long>(health.admitted_total),
              static_cast<unsigned long long>(health.shed_total),
              static_cast<unsigned long long>(health.cancelled_total),
              health.admission_inflight, health.admission_queue_depth);
}

void PrintCancellationTiming() {
  std::printf("--- deadline & cancellation response (3 sources, all hung 2 s) ---\n");
  auto sources = BuildSources(3, 0);
  RemoteSource::FaultInjection hanging;
  hanging.drop_rate = 1.0;
  hanging.hang_micros = 2'000'000;
  hanging.seed = 9;
  for (auto& src : sources) src->set_fault_injection(hanging);
  auto engine = BuildEngine(sources, AdmissionConfig{}, /*worker_threads=*/8);
  const auto query = Query("analyst");

  auto timed = [&](const char* label, const QueryOptions& options,
                   CancelSource* cancel_after_ms, int64_t delay_ms) {
    const auto start = std::chrono::steady_clock::now();
    std::thread canceller;
    if (cancel_after_ms != nullptr) {
      canceller = std::thread([cancel_after_ms, delay_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        cancel_after_ms->RequestCancel();
      });
    }
    auto result = engine->Execute(query, options);
    const double ms = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count() /
                      1e6;
    if (canceller.joinable()) canceller.join();
    std::printf("  %-28s returned %-20s in %8.2f ms\n", label,
                result.ok() ? "ok" : result.status().ToString().substr(0, 20).c_str(),
                ms);
  };

  {
    QueryOptions options;
    options.cancel = CancelToken{}.WithDeadline(std::chrono::steady_clock::now() -
                                                std::chrono::milliseconds(1));
    timed("pre-expired deadline", options, nullptr, 0);
  }
  {
    QueryOptions options;
    options.deadline_ms = 100;
    timed("deadline_ms = 100", options, nullptr, 0);
  }
  {
    QueryOptions options;
    options.cancel = CancelToken{}.WithTimeout(std::chrono::milliseconds(100));
    timed("token deadline = 100 ms", options, nullptr, 0);
  }
  {
    CancelSource source;
    QueryOptions options;
    options.cancel = source.token();
    timed("RequestCancel after 50 ms", options, &source, 50);
  }
  std::printf("(sources are hung for 2000 ms; every variant returns near its "
              "bound, not near the hang)\n\n");
}

void PrintFairShareTable() {
  std::printf("--- weighted fair share under sustained saturation ---\n");
  auto sources = BuildSources(3, kSourceLatencyMicros);
  // Capacity 1 with a deep queue: nearly every admission is decided by the
  // fair-share scheduler rather than the uncontended fast path, so the
  // admitted mix reflects the weights.
  AdmissionConfig admission;
  admission.max_inflight = 1;
  admission.max_queue_depth = 8;
  admission.requester_weights = {{"alice", 2.0}, {"bob", 1.0}, {"carol", 1.0}};
  auto engine = BuildEngine(sources, admission, /*worker_threads=*/8);

  const std::vector<std::string> requesters = {"alice", "bob", "carol"};
  std::map<std::string, std::atomic<uint64_t>> admitted;
  for (const auto& r : requesters) admitted[r] = 0;

  // Closed loop: 3 workers per requester retry through sheds for a fixed
  // window, so every requester always has demand and the queue stays full —
  // the admitted mix is then the scheduler's choice, not the workload's.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (const auto& requester : requesters) {
    for (int w = 0; w < 3; ++w) {
      workers.emplace_back([&, requester] {
        const auto query = Query(requester);
        QueryOptions options;
        options.coalesce = false;
        while (!stop.load()) {
          auto result = engine->Execute(query, options);
          if (result.ok()) {
            admitted[requester].fetch_add(1);
          } else {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& w : workers) w.join();

  uint64_t total = 0;
  for (const auto& r : requesters) total += admitted[r].load();
  std::printf("%-10s %-8s %-10s %s\n", "requester", "weight", "admitted", "share");
  for (const auto& r : requesters) {
    const double weight = admission.requester_weights.at(r);
    const uint64_t n = admitted[r].load();
    std::printf("%-10s %-8.1f %-10llu %.2f\n", r.c_str(), weight,
                static_cast<unsigned long long>(n),
                total > 0 ? static_cast<double>(n) / total : 0.0);
  }
  std::printf("(weights 2:1:1 ⇒ expected shares ~0.50/0.25/0.25; %llu admitted "
              "total)\n\n",
              static_cast<unsigned long long>(total));
}

void BM_AdmitUncontended(benchmark::State& state) {
  auto sources = BuildSources(1, 0);
  AdmissionConfig admission;
  admission.max_inflight = 8;
  auto engine = BuildEngine(sources, admission, /*worker_threads=*/0);
  const auto query = Query("analyst");
  QueryOptions options;
  options.coalesce = false;
  for (auto _ : state) {
    auto result = engine->Execute(query, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AdmitUncontended)->Unit(benchmark::kMicrosecond);

void BM_ShedAtRateLimit(benchmark::State& state) {
  // Per-iteration cost of the shed path itself: a drained token bucket
  // rejects before the query touches anything, so this measures admission's
  // overload fast-path (parse + fingerprint + bucket check).
  auto sources = BuildSources(1, 0);
  AdmissionConfig admission;
  admission.tokens_per_second = 1e-9;  // bucket never refills in bench time
  admission.bucket_burst = 1.0;
  auto engine = BuildEngine(sources, admission, /*worker_threads=*/0);
  const auto query = Query("analyst");
  QueryOptions options;
  options.coalesce = false;
  (void)engine->Execute(query, options);  // drain the bucket's single token
  for (auto _ : state) {
    auto result = engine->Execute(query, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ShedAtRateLimit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  piye::Logger::SetLevel(piye::LogLevel::kError);
  PrintOverloadSweep();
  PrintCancellationTiming();
  PrintFairShareTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment abl-rewrite — Section 4's design argument for the Query
// Rewriter: integrate the policy predicate into the query and execute
// (rewrite-then-execute) instead of executing and filtering afterwards
// (execute-then-filter). "By preprocessing the query we shall be able to
// reduce the cost of execution as it will operate on a smaller set of data."
//
// Sweep: table size x policy-predicate selectivity. The gap grows as the
// policy predicate becomes more selective.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "relational/executor.h"
#include "relational/sql.h"

using namespace piye::relational;

namespace {

Table MakeTable(size_t rows, uint64_t seed) {
  piye::Rng rng(seed);
  Table t(Schema{Column{"id", ColumnType::kInt64},
                 Column{"consent_tier", ColumnType::kInt64},
                 Column{"rate", ColumnType::kDouble},
                 Column{"site", ColumnType::kString}});
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRowUnchecked(Row{
        Value::Int(static_cast<int64_t>(i)),
        Value::Int(static_cast<int64_t>(rng.NextBounded(100))),
        Value::Real(rng.NextUniform(0, 100)),
        Value::Str("site" + std::to_string(rng.NextBounded(8)))});
  }
  return t;
}

// The "privacy work" a released row costs downstream (perturbation, tagging).
double PrivacyWork(const Table& t, const std::string& column) {
  auto xs = t.NumericColumn(column);
  double acc = 0.0;
  if (xs.ok()) {
    for (double x : *xs) acc += x * 1.000001;
  }
  return acc;
}

ExprPtr PolicyPredicate(int selectivity_pct) {
  auto expr = ParseExpression("consent_tier < " + std::to_string(selectivity_pct));
  return *expr;
}

void BM_RewriteThenExecute(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int sel = static_cast<int>(state.range(1));
  Catalog catalog;
  catalog.PutTable("t", MakeTable(rows, 7));
  Executor ex(&catalog);
  auto stmt = ParseSql("SELECT rate FROM t WHERE rate >= 0");
  stmt->where = Expression::And(stmt->where, PolicyPredicate(sel));
  double sink = 0.0;
  for (auto _ : state) {
    auto result = ex.Execute(*stmt);
    sink += PrivacyWork(*result, "rate");
    benchmark::DoNotOptimize(result);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["selectivity_pct"] = sel;
}
BENCHMARK(BM_RewriteThenExecute)
    ->Args({20000, 1})
    ->Args({20000, 10})
    ->Args({20000, 50})
    ->Args({20000, 100})
    ->Args({100000, 10})
    ->Unit(benchmark::kMillisecond);

void BM_ExecuteThenFilter(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const int sel = static_cast<int>(state.range(1));
  Catalog catalog;
  catalog.PutTable("t", MakeTable(rows, 7));
  Executor ex(&catalog);
  auto stmt = ParseSql("SELECT rate, consent_tier FROM t WHERE rate >= 0");
  const ExprPtr policy = PolicyPredicate(sel);
  double sink = 0.0;
  for (auto _ : state) {
    auto result = ex.Execute(*stmt);
    // Privacy work runs on the FULL result before the policy filter — the
    // execute-then-filter shape.
    sink += PrivacyWork(*result, "rate");
    auto filtered = Executor::Filter(*result, policy);
    benchmark::DoNotOptimize(filtered);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["selectivity_pct"] = sel;
}
BENCHMARK(BM_ExecuteThenFilter)
    ->Args({20000, 1})
    ->Args({20000, 10})
    ->Args({20000, 50})
    ->Args({20000, 100})
    ->Args({100000, 10})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("abl-rewrite: rewrite-then-execute vs execute-then-filter.\n"
              "Expect the rewrite variant to win, with the gap growing as the\n"
              "policy predicate gets more selective (lower selectivity_pct).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

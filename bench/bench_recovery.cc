// Experiment recovery — the cost of crash safety:
//
//   1. durability overhead: the Figure 2 mediation pipeline run volatile vs
//      with the fail-closed WAL (fsync per release, and the
//      `sync_wal = false` flush-only mode), over the federated regime the
//      paper assumes (1 ms injected per-source latency). The WAL must stay
//      under 10% of end-to-end query latency — durability rides on queries
//      dominated by autonomous-source time;
//   2. recovery time: `MediationEngine::Recover` over a synthetic
//      10k-release WAL, and over the same state folded into a snapshot —
//      the gap is what periodic snapshot rotation buys;
//   3. raw WAL throughput: append+fsync and append+flush rates for
//      history-sized records.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <utility>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/scenario.h"
#include "mediator/engine.h"
#include "mediator/persistence.h"
#include "persist/state_log.h"
#include "persist/wal.h"
#include "source/remote_source.h"

using piye::core::ClinicalScenario;
using piye::mediator::MediationEngine;
using piye::mediator::QueryOptions;
using piye::source::RemoteSource;

namespace {

namespace fs = std::filesystem;

// The paper's sources are autonomous web services reached over a WAN; 5 ms
// per call is the conservative end of that regime (bench_parallel_mediation
// uses 1 ms, a LAN floor, to stress the fan-out itself).
constexpr uint64_t kInjectedLatencyMicros = 5000;
constexpr size_t kSyntheticEntries = 10'000;

std::string FreshDir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / ("piye_bench_" + name);
  fs::remove_all(p);
  return p.string();
}

std::vector<std::unique_ptr<RemoteSource>> BuildSources(size_t n) {
  std::vector<std::unique_ptr<RemoteSource>> sources;
  for (size_t i = 0; i < n; ++i) {
    auto tables = ClinicalScenario::MakePatientTables(50, 0.3, 100 + i);
    auto src = std::make_unique<RemoteSource>("hospital" + std::to_string(i),
                                              "patients", std::move(tables.hospital),
                                              /*seed=*/i + 1);
    ClinicalScenario::ApplyPatientPolicies(src.get());
    RemoteSource::FaultInjection faults;
    faults.latency_micros = kInjectedLatencyMicros;
    src->set_fault_injection(faults);
    sources.push_back(std::move(src));
  }
  return sources;
}

enum class Durability { kVolatile, kWalFsync, kWalFlush };

std::unique_ptr<MediationEngine> BuildEngine(
    const std::vector<std::unique_ptr<RemoteSource>>& sources, Durability mode,
    const std::string& dir) {
  MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;  // live execution every iteration
  options.worker_threads = 8;
  options.sync_wal = mode == Durability::kWalFsync;
  auto engine = std::make_unique<MediationEngine>(options);
  for (const auto& src : sources) (void)engine->RegisterSource(src.get());
  (void)engine->GenerateMediatedSchema("bench-key");
  if (mode != Durability::kVolatile) (void)engine->Recover(dir);
  return engine;
}

piye::source::PiqlQuery Query() {
  auto q = piye::source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">"
      "<select>patient_id</select><select>diagnosis</select></query>");
  return *q;
}

struct LatencyStats {
  double median_ms = -1.0;
  double mean_ms = -1.0;
};

LatencyStats MeasureExecuteMillis(MediationEngine* engine, size_t iterations) {
  const auto query = Query();
  std::vector<double> samples;
  samples.reserve(iterations);
  double total = 0.0;
  for (size_t i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto result = engine->Execute(query, QueryOptions{});
    const auto end = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::printf("  !! query failed: %s\n", result.status().ToString().c_str());
      return {};
    }
    const double ms =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count() /
        1e6;
    samples.push_back(ms);
    total += ms;
  }
  std::sort(samples.begin(), samples.end());
  return {samples[samples.size() / 2], total / static_cast<double>(iterations)};
}

// The acceptance gate: WAL overhead on the mediation pipeline, printed as a
// percentage against the volatile engine. The budget is judged on the
// median — fsync has a heavy tail (journal-commit stalls) that belongs in
// the report but not in the typical-query claim.
void PrintDurabilityOverhead() {
  constexpr size_t kIters = 200;
  std::printf("--- durability overhead on the mediation pipeline (4 sources, "
              "%.1f ms injected latency, %zu queries each) ---\n",
              kInjectedLatencyMicros / 1000.0, kIters);
  auto sources = BuildSources(4);
  const std::string fsync_dir = FreshDir("overhead_fsync");
  const std::string flush_dir = FreshDir("overhead_flush");

  auto volatile_engine = BuildEngine(sources, Durability::kVolatile, "");
  auto fsync_engine = BuildEngine(sources, Durability::kWalFsync, fsync_dir);
  auto flush_engine = BuildEngine(sources, Durability::kWalFlush, flush_dir);

  const auto volatile_s = MeasureExecuteMillis(volatile_engine.get(), kIters);
  const auto fsync_s = MeasureExecuteMillis(fsync_engine.get(), kIters);
  const auto flush_s = MeasureExecuteMillis(flush_engine.get(), kIters);
  if (volatile_s.median_ms < 0 || fsync_s.median_ms < 0 || flush_s.median_ms < 0) {
    return;
  }

  std::printf("%-12s %-14s %-12s %s\n", "mode", "median(ms)", "mean(ms)",
              "median overhead");
  std::printf("%-12s %-14.3f %-12.3f %s\n", "volatile", volatile_s.median_ms,
              volatile_s.mean_ms, "-");
  for (const auto& [name, stats] :
       {std::pair<const char*, const LatencyStats&>{"wal+fsync", fsync_s},
        {"wal+flush", flush_s}}) {
    const double pct =
        100.0 * (stats.median_ms - volatile_s.median_ms) / volatile_s.median_ms;
    std::printf("%-12s %-14.3f %-12.3f %+.1f%% %s\n", name, stats.median_ms,
                stats.mean_ms, pct,
                pct < 10.0 ? "(under the 10% budget)" : "— OVER BUDGET");
  }
  std::printf("\n");
}

// Builds a directory holding a `count`-release WAL (no snapshot), straight
// through the persistence encoders — the state a long-lived mediator leaves
// behind if it never rotates.
void WriteSyntheticWal(const std::string& dir, size_t count) {
  piye::persist::StateLog::RecoveredState recovered;
  auto log = piye::persist::StateLog::Open(dir, &recovered);
  if (!log.ok()) return;
  double cumulative = 0.0;
  for (size_t i = 0; i < count; ++i) {
    piye::mediator::HistoryRecord record;
    record.entry.sequence_number = i;
    record.entry.requester = "analyst" + std::to_string(i % 8);
    record.entry.purpose = "research";
    record.entry.query_text =
        "<query requester=\"analyst\"><select>diagnosis</select></query>";
    record.entry.sources_answered = {"hospital0", "hospital1", "hospital2"};
    record.entry.aggregated_privacy_loss = 0.0001;
    record.entry.released = true;
    cumulative += record.entry.aggregated_privacy_loss;
    record.cumulative_after = cumulative;
    (void)(*log)->Append(static_cast<uint16_t>(
                             piye::mediator::RecordType::kHistoryEntry),
                         piye::mediator::EncodeHistoryRecord(record));
  }
  (void)(*log)->Sync();
}

double RecoverMillis(const std::string& dir, size_t* recovered_entries) {
  auto sources = BuildSources(2);
  MediationEngine::Options options;
  options.max_cumulative_loss = 1e9;
  auto engine = std::make_unique<MediationEngine>(options);
  for (const auto& src : sources) (void)engine->RegisterSource(src.get());
  (void)engine->GenerateMediatedSchema("bench-key");
  const auto start = std::chrono::steady_clock::now();
  auto status = engine->Recover(dir);
  const auto end = std::chrono::steady_clock::now();
  if (!status.ok()) {
    std::printf("  !! recovery failed: %s\n", status.ToString().c_str());
    return -1.0;
  }
  *recovered_entries = engine->history()->size();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count() /
         1e6;
}

void PrintRecoveryTime() {
  std::printf("--- recovery time, %zu-release history ---\n", kSyntheticEntries);

  // Pure WAL replay: 10k frames decoded and re-applied one by one.
  const std::string wal_dir = FreshDir("recover_wal");
  WriteSyntheticWal(wal_dir, kSyntheticEntries);
  size_t entries = 0;
  const double wal_ms = RecoverMillis(wal_dir, &entries);
  if (wal_ms < 0) return;
  std::printf("%-22s %-12.1f (%zu entries replayed)\n", "wal replay", wal_ms,
              entries);

  // Snapshot path: recovering the same directory again reads the snapshot
  // the first Recover rotated the WAL into.
  const double snap_ms = RecoverMillis(wal_dir, &entries);
  if (snap_ms < 0) return;
  std::printf("%-22s %-12.1f (%zu entries restored; snapshot folded by the "
              "previous recovery)\n",
              "snapshot load", snap_ms, entries);
  std::printf("(periodic rotation bounds replay to `snapshot_every_records` "
              "frames past the last snapshot)\n\n");
}

// Compaction sweep: recovery time as a function of WAL length, with and
// without compaction. The uncompacted column replays every frame; the
// compacted column recovers the same directory after a rotation has folded
// the history into a snapshot + budget-floor index — recovery cost then
// tracks the snapshot (bounded by the resident set), not the uptime.
void PrintCompactionSweep() {
  std::printf("--- compaction sweep: recovery time vs WAL length ---\n");
  std::printf("%-10s %-22s %-22s %s\n", "records", "replay, no compaction",
              "after compaction", "speedup");
  for (const size_t count : {size_t{1000}, size_t{10000}, size_t{50000}}) {
    const std::string dir = FreshDir("sweep_" + std::to_string(count));
    WriteSyntheticWal(dir, count);
    size_t entries = 0;
    // First recovery replays the whole WAL, then rotates it into a snapshot.
    const double raw_ms = RecoverMillis(dir, &entries);
    if (raw_ms < 0) return;
    // Second recovery loads the rotated snapshot; replay is empty.
    size_t compact_entries = 0;
    const double compact_ms = RecoverMillis(dir, &compact_entries);
    if (compact_ms < 0) return;
    std::printf("%-10zu %-22s %-22s %.1fx\n", count,
                (std::to_string(raw_ms).substr(0, 6) + " ms").c_str(),
                (std::to_string(compact_ms).substr(0, 6) + " ms").c_str(),
                compact_ms > 0 ? raw_ms / compact_ms : 0.0);
  }
  std::printf("(compacted recovery is flat in WAL length: history already "
              "folded into durable budget floors is dropped at rotation)\n\n");
}

void BM_WalAppend(benchmark::State& state) {
  const bool do_fsync = state.range(0) != 0;
  const std::string dir = FreshDir(do_fsync ? "wal_fsync" : "wal_flush");
  fs::create_directories(dir);
  auto writer = piye::persist::WalWriter::Open(dir + "/wal-bench");
  if (!writer.ok()) {
    state.SkipWithError("wal open failed");
    return;
  }
  piye::mediator::HistoryRecord record;
  record.entry.requester = "analyst";
  record.entry.purpose = "research";
  record.entry.query_text =
      "<query requester=\"analyst\"><select>diagnosis</select></query>";
  record.entry.sources_answered = {"hospital0", "hospital1", "hospital2"};
  record.entry.aggregated_privacy_loss = 0.0001;
  const std::string payload = piye::mediator::EncodeHistoryRecord(record);
  for (auto _ : state) {
    (void)(*writer)->Append(1, payload);
    if (do_fsync) {
      (void)(*writer)->Sync();
    } else {
      (void)(*writer)->Flush();
    }
  }
  state.counters["payload_bytes"] = static_cast<double>(payload.size());
  state.SetLabel(do_fsync ? "append+fsync" : "append+flush");
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

void BM_DurableMediatedQuery(benchmark::State& state) {
  const Durability mode = state.range(0) == 0   ? Durability::kVolatile
                          : state.range(0) == 1 ? Durability::kWalFsync
                                                : Durability::kWalFlush;
  auto sources = BuildSources(4);
  const std::string dir = FreshDir("bm_query");
  auto engine = BuildEngine(sources, mode, dir);
  const auto query = Query();
  for (auto _ : state) {
    auto result = engine->Execute(query, QueryOptions{});
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(mode == Durability::kVolatile  ? "volatile"
                 : mode == Durability::kWalFsync ? "wal+fsync"
                                                 : "wal+flush");
}
BENCHMARK(BM_DurableMediatedQuery)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_Recover10k(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    const std::string dir = FreshDir("bm_recover");
    WriteSyntheticWal(dir, kSyntheticEntries);
    auto sources = BuildSources(2);
    MediationEngine::Options options;
    options.max_cumulative_loss = 1e9;
    MediationEngine engine(options);
    for (const auto& src : sources) (void)engine.RegisterSource(src.get());
    (void)engine.GenerateMediatedSchema("bench-key");
    state.ResumeTiming();
    auto status = engine.Recover(dir);
    benchmark::DoNotOptimize(status);
  }
  state.counters["entries"] = static_cast<double>(kSyntheticEntries);
}
BENCHMARK(BM_Recover10k)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  piye::Logger::SetLevel(piye::LogLevel::kError);
  PrintDurabilityOverhead();
  PrintRecoveryTime();
  PrintCompactionSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

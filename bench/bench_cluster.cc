// Experiment abl-net-federation — what process separation costs and what the
// transport resilience buys back. Four configurations of the same federated
// query over the clinical scenario:
//
//   1. in-process        — engine calls RemoteSource directly (the ceiling)
//   2. wire/UDS          — engine -> NetSource -> Unix socket -> in-process
//                          SourceServer (protocol + socket + thread handoff)
//   3. multi-process     — engine -> 3 forked source_server processes
//                          (the real deployment shape; skipped when the
//                          server binary is not found)
//   4. wire + fault storm — configuration 2 under a seeded transport fault
//                          schedule with retries (the recovery price)
//
// The query-cluster accuracy experiment that previously lived here moved to
// bench_query_cluster.cc.

#include <benchmark/benchmark.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "mediator/engine.h"
#include "net/client.h"
#include "net/net_source.h"
#include "net/server.h"
#include "source/remote_source.h"
#include "xml/parser.h"

using namespace piye;

namespace {

constexpr const char* kOwners[] = {"hospital", "pharmacy", "lab"};

std::vector<std::unique_ptr<source::RemoteSource>> MakeSources() {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  for (size_t i = 0; i < 3; ++i) {
    auto tables = core::ClinicalScenario::MakePatientTables(200, 0.3, 100 + i);
    relational::Table table = i == 0   ? std::move(tables.hospital)
                              : i == 1 ? std::move(tables.pharmacy)
                                       : std::move(tables.lab);
    auto src = std::make_unique<source::RemoteSource>(
        kOwners[i], "patients", std::move(table), /*seed=*/i + 1);
    core::ClinicalScenario::ApplyPatientPolicies(src.get());
    (void)src->mutable_rbac()->AssignRole("alice", "analyst");
    sources.push_back(std::move(src));
  }
  return sources;
}

source::PiqlQuery MakeQuery() {
  return *source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">"
      "<select>patient_id</select><select>sex</select></query>");
}

mediator::MediationEngine::Options EngineOptions() {
  mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e12;
  options.enable_warehouse = false;
  return options;
}

template <typename SourceVector>
std::unique_ptr<mediator::MediationEngine> BuildEngine(
    const SourceVector& sources) {
  auto engine = std::make_unique<mediator::MediationEngine>(EngineOptions());
  for (const auto& src : sources) (void)engine->RegisterSource(src.get());
  Status status = Status::OK();
  for (int attempt = 0; attempt < 10; ++attempt) {
    status = engine->GenerateMediatedSchema("shared-key");
    if (status.ok()) break;  // sketch fetch may ride a faulty wire
  }
  if (!status.ok()) {
    std::fprintf(stderr, "schema generation failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return engine;
}

void RunLoop(benchmark::State& state, mediator::MediationEngine* engine,
             uint32_t max_retries) {
  const auto query = MakeQuery();
  mediator::QueryOptions qopts;
  qopts.requester = "alice";
  qopts.max_retries = max_retries;
  qopts.coalesce = false;
  size_t failures = 0;
  for (auto _ : state) {
    auto result = engine->Execute(query, qopts);
    if (!result.ok() || result->sources_answered.size() != 3) ++failures;
    benchmark::DoNotOptimize(result);
  }
  state.counters["degraded_rounds"] =
      static_cast<double>(failures);
}

// 1. The ceiling: no wire at all.
void BM_FederationInProcess(benchmark::State& state) {
  auto sources = MakeSources();
  auto engine = BuildEngine(sources);
  RunLoop(state, engine.get(), /*max_retries=*/0);
}
BENCHMARK(BM_FederationInProcess)->Unit(benchmark::kMillisecond);

/// In-process servers behind real Unix sockets, one per source.
struct WireCluster {
  std::vector<std::unique_ptr<source::RemoteSource>> sources;
  std::vector<std::unique_ptr<net::SourceServer>> servers;
  std::vector<std::shared_ptr<net::NetClient>> clients;
  std::vector<std::unique_ptr<net::NetSource>> net_sources;

  explicit WireCluster(net::FaultPlan client_fault = {}) {
    sources = MakeSources();
    for (size_t i = 0; i < sources.size(); ++i) {
      net::ServerConfig server_config;
      server_config.listen_address =
          "unix:/tmp/piye_bench_" + std::to_string(::getpid()) + "_" +
          std::to_string(i) + ".sock";
      auto server = std::make_unique<net::SourceServer>(server_config);
      server->AddSource(sources[i].get());
      if (!server->Start().ok()) std::abort();

      net::ClientConfig client_config;
      client_config.address = server->bound_address();
      client_config.fault = client_fault;
      if (client_fault.enabled()) client_config.fault.seed += i;
      auto client = std::make_shared<net::NetClient>(client_config);
      net_sources.push_back(
          std::make_unique<net::NetSource>(sources[i]->owner(), client));
      clients.push_back(std::move(client));
      servers.push_back(std::move(server));
    }
  }
  ~WireCluster() {
    for (auto& client : clients) client->Close();
    for (auto& server : servers) server->Stop();
  }
};

// 2. Protocol + socket overhead, no process boundary.
void BM_FederationWireUds(benchmark::State& state) {
  WireCluster cluster;
  auto engine = BuildEngine(cluster.net_sources);
  RunLoop(state, engine.get(), /*max_retries=*/0);
}
BENCHMARK(BM_FederationWireUds)->Unit(benchmark::kMillisecond);

// 4. The same wire under a seeded fault storm, with the retry budget that
// rides it out. degraded_rounds counts iterations where a source was lost.
void BM_FederationWireFaultStorm(benchmark::State& state) {
  net::FaultPlan storm;
  storm.seed = 0xBE7C;
  storm.drop_write_rate = 0.05;
  storm.tear_rate = 0.04;
  storm.corrupt_rate = 0.04;
  storm.drop_read_rate = 0.04;
  WireCluster cluster(storm);
  auto engine = BuildEngine(cluster.net_sources);
  RunLoop(state, engine.get(), /*max_retries=*/6);
}
BENCHMARK(BM_FederationWireFaultStorm)->Unit(benchmark::kMillisecond);

// --- True multi-process configuration ---------------------------------------

std::string ServerBinary() {
  if (const char* env = std::getenv("PIYE_SOURCE_SERVER_BIN")) return env;
  char exe[4096];
  const ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) return "";
  exe[n] = '\0';
  std::string path(exe);
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  path = path.substr(0, slash) + "/../tools/source_server";
  return ::access(path.c_str(), X_OK) == 0 ? path : "";
}

std::string RecordsXml(const relational::Table& table) {
  auto root = xml::XmlNode::Element("patients");
  for (size_t r = 0; r < table.num_rows(); ++r) {
    xml::XmlNode* record = root->AddElement("patient");
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const relational::Value v = table.Cell(r, c);
      if (v.is_null()) continue;
      record->AddElementWithText(table.schema().column(c).name,
                                 v.ToDisplayString());
    }
  }
  return xml::Serialize(*root, /*indent=*/-1);
}

struct ProcessCluster {
  std::vector<pid_t> pids;
  std::vector<std::shared_ptr<net::NetClient>> clients;
  std::vector<std::unique_ptr<net::NetSource>> net_sources;
  bool ok = false;

  explicit ProcessCluster(const std::string& binary) {
    for (size_t i = 0; i < 3; ++i) {
      auto tables =
          core::ClinicalScenario::MakePatientTables(200, 0.3, 100 + i);
      const relational::Table& table = i == 0   ? tables.hospital
                                       : i == 1 ? tables.pharmacy
                                                : tables.lab;
      const std::string base = "/tmp/piye_bench_proc_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(i);
      {
        std::ofstream out(base + ".xml", std::ios::binary);
        out << RecordsXml(table);
      }
      int pipe_fds[2];
      if (pipe(pipe_fds) != 0) return;
      const pid_t pid = fork();
      if (pid < 0) return;
      if (pid == 0) {
        dup2(pipe_fds[1], STDOUT_FILENO);
        close(pipe_fds[0]);
        close(pipe_fds[1]);
        const std::string listen = "--listen=unix:" + base + ".sock";
        const std::string source = "--source=owner=" + std::string(kOwners[i]) +
                                   ",table=patients,file=" + base +
                                   ".xml,seed=" + std::to_string(i + 1);
        execl(binary.c_str(), binary.c_str(), listen.c_str(), source.c_str(),
              "--clinical-policies", static_cast<char*>(nullptr));
        _exit(127);
      }
      close(pipe_fds[1]);
      pids.push_back(pid);
      std::string line;
      char ch;
      while (line.find('\n') == std::string::npos &&
             read(pipe_fds[0], &ch, 1) == 1) {
        line.push_back(ch);
      }
      close(pipe_fds[0]);
      if (line.rfind("LISTENING ", 0) != 0) return;

      net::ClientConfig client_config;
      client_config.address = "unix:" + base + ".sock";
      auto client = std::make_shared<net::NetClient>(client_config);
      net_sources.push_back(
          std::make_unique<net::NetSource>(kOwners[i], client));
      clients.push_back(std::move(client));
    }
    ok = true;
  }
  ~ProcessCluster() {
    for (auto& client : clients) client->Close();
    for (pid_t pid : pids) {
      kill(pid, SIGTERM);
      int status = 0;
      waitpid(pid, &status, 0);
    }
  }
};

// 3. The real deployment shape: every source in its own process.
void BM_FederationMultiProcess(benchmark::State& state) {
  const std::string binary = ServerBinary();
  if (binary.empty()) {
    state.SkipWithError("source_server binary not found");
    return;
  }
  ProcessCluster cluster(binary);
  if (!cluster.ok) {
    state.SkipWithError("failed to spawn source_server processes");
    return;
  }
  auto engine = BuildEngine(cluster.net_sources);
  RunLoop(state, engine.get(), /*max_retries=*/0);
}
BENCHMARK(BM_FederationMultiProcess)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Federation transport cost, 3 clinical sources x 200 patients\n"
      "(in-process ceiling vs wire/UDS vs separate processes vs fault "
      "storm):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

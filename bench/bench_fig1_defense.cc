// Experiment fig1-defense — Example 1's requirement that the integration
// system "detect and limit that type of privacy breach".
//
// Two sweeps:
//  1. DEFENSE BY COARSENING: publish the Figure 1 aggregates at decreasing
//     precision and measure how wide the snooping HMO's inferred intervals
//     become — the rounding knob the preservation module turns.
//  2. DEFENSE BY AUDITING: route the full release schedule through the
//     mediator's privacy control at different interval-loss thresholds and
//     report how many releases are approved before the auditor stops the
//     schedule, and the attacker's worst-case loss afterwards.
// Baseline: the traditional integrator (tolerance 0.005, no auditor) leaks.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/scenario.h"
#include "inference/privacy_loss.h"
#include "inference/snooping_attack.h"
#include "mediator/privacy_control.h"

using piye::core::ClinicalScenario;
using piye::inference::AttackerKnowledge;
using piye::inference::PublishedAggregates;
using piye::inference::SnoopingAttack;

namespace {

void SweepCoarsening() {
  std::printf("--- Defense 1: publication precision vs attacker interval width ---\n");
  std::printf("%-22s %-18s %-16s %-12s\n", "published precision", "mean width (pts)",
              "worst loss", "breach?");
  const AttackerKnowledge attacker = AttackerKnowledge::Figure1();
  for (double precision : {0.01, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0}) {
    PublishedAggregates published = PublishedAggregates::Figure1();
    published.tolerance = precision / 2.0;  // ± half of the rounding unit
    SnoopingAttack attack(42);
    auto result = attack.Run(published, attacker);
    if (!result.ok()) {
      std::printf("%-22.2f attack infeasible (%s)\n", precision,
                  result.status().message().c_str());
      continue;
    }
    double worst = 0.0;
    for (size_t m = 0; m < 3; ++m) {
      for (size_t p = 1; p < 4; ++p) {
        worst = std::max(worst, piye::inference::loss::IntervalLoss(
                                    {0, 100}, result->intervals[m][p]));
      }
    }
    const double width = result->MeanUnknownWidth(0);
    std::printf("%-22.2f %-18.2f %-16.3f %s\n", precision, width, worst,
                worst > 0.85 ? "YES (intervals pinned)" : "no");
  }
  std::printf("\n");
}

void SweepAuditor() {
  std::printf("--- Defense 2: inference auditor threshold vs release schedule ---\n");
  std::printf("%-12s %-10s %-10s %-22s\n", "threshold", "approved", "refused",
              "worst loss after audit");
  auto rates = ClinicalScenario::GroundTruthRates();
  if (!rates.ok()) return;
  const PublishedAggregates published = PublishedAggregates::Figure1();
  for (double threshold : {1.0, 0.95, 0.9, 0.85, 0.75, 0.6, 0.4}) {
    piye::mediator::PrivacyControl control(1.0, threshold);
    std::vector<std::vector<size_t>> cell(3, std::vector<size_t>(4));
    for (size_t m = 0; m < 3; ++m) {
      for (size_t p = 0; p < 4; ++p) {
        cell[m][p] = control.RegisterSensitiveCell(
            published.measures[m] + "/" + published.parties[p], 0, 100,
            (*rates)[m][p]);
      }
    }
    // The full Figure 1 schedule: per-test means, sigmas, per-HMO means.
    for (size_t m = 0; m < 3; ++m) (void)control.ApproveMeanDisclosure(cell[m], 0.05);
    for (size_t m = 0; m < 3; ++m) {
      (void)control.ApproveStdDevDisclosure(cell[m], 0.05);
    }
    for (size_t p = 0; p < 4; ++p) {
      std::vector<size_t> party{cell[0][p], cell[1][p], cell[2][p]};
      (void)control.ApproveMeanDisclosure(party, 0.05);
    }
    double worst = 0.0;
    if (auto losses = control.CurrentLosses(); losses.ok()) {
      for (double l : *losses) worst = std::max(worst, l);
    }
    std::printf("%-12.2f %-10zu %-10zu %-22.3f\n", threshold,
                control.disclosures_committed(),
                control.disclosures_refused(), worst);
  }
  std::printf("(threshold 1.0 = traditional integrator: everything released, "
              "attacker wins)\n\n");
}

void BM_AuditOneDisclosure(benchmark::State& state) {
  auto rates = ClinicalScenario::GroundTruthRates();
  for (auto _ : state) {
    piye::mediator::PrivacyControl control(1.0, 0.85);
    std::vector<size_t> cells;
    for (size_t m = 0; m < 3; ++m) {
      for (size_t p = 0; p < 4; ++p) {
        cells.push_back(control.RegisterSensitiveCell("c", 0, 100, (*rates)[m][p]));
      }
    }
    auto r = control.ApproveMeanDisclosure(
        {cells[0], cells[1], cells[2], cells[3]}, 0.05);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AuditOneDisclosure)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  SweepCoarsening();
  SweepAuditor();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

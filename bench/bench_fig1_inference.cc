// Experiment fig1 — reproduces Figure 1 of the paper: the published
// aggregate tables (a)/(b), the snooping HMO's knowledge (c), and the
// intervals it infers with non-linear programming (d). Also times the
// attack itself with google-benchmark.
//
// Paper reference values for (d):
//   HbA1c        HMO2 [87.2;88.5]  HMO3 [82.8;86.4]  HMO4 [82.9;86.7]
//   LipidProfile HMO2 [58.6;59.8]  HMO3 [48.1;52.3]  HMO4 [48.6;53.1]
//   EyeExam      HMO2 [46.8;47.9]  HMO3 [44.5;47.2]  HMO4 [44.5;47.4]
// Our intervals are conservative (they bracket the paper's) because we model
// the rounding tolerance of the published values explicitly; the shape —
// every sensitive cell pinned to a few points out of a 100-point prior —
// is the reproduced result.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "inference/interval_solver.h"
#include "inference/privacy_loss.h"
#include "inference/snooping_attack.h"

using piye::inference::AttackerKnowledge;
using piye::inference::PublishedAggregates;
using piye::inference::SnoopingAttack;

namespace {

void PrintFigure1Tables() {
  const PublishedAggregates published = PublishedAggregates::Figure1();
  const AttackerKnowledge attacker = AttackerKnowledge::Figure1();

  std::printf("--- Figure 1(a): test compliance across HMOs ---\n");
  std::printf("%-13s %18s %10s\n", "Test", "AvgCompliance", "StdDev");
  for (size_t m = 0; m < published.measures.size(); ++m) {
    std::printf("%-13s %17.1f%% %9.1f%%\n", published.measures[m].c_str(),
                published.measure_mean[m], published.measure_sigma[m]);
  }
  std::printf("\n--- Figure 1(b): average performance per HMO ---\n");
  for (size_t p = 0; p < published.parties.size(); ++p) {
    std::printf("%-6s %6.1f%%\n", published.parties[p].c_str(),
                published.party_mean[p]);
  }
  std::printf("\n--- Figure 1(c): what HMO1 knows ---\n");
  for (size_t m = 0; m < published.measures.size(); ++m) {
    std::printf("%-13s own=%5.1f%%  published mean=%5.1f%% sigma=%4.1f%%\n",
                published.measures[m].c_str(), attacker.own_values[m],
                published.measure_mean[m], published.measure_sigma[m]);
  }

  SnoopingAttack attack(/*seed=*/42);
  auto result = attack.Run(published, attacker);
  if (!result.ok()) {
    std::printf("attack failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("\n--- Figure 1(d): intervals inferred by snooping HMO1 ---\n");
  std::printf("%-13s", "");
  for (const auto& p : published.parties) std::printf(" %-15s", p.c_str());
  std::printf("\n");
  for (size_t m = 0; m < published.measures.size(); ++m) {
    std::printf("%-13s", published.measures[m].c_str());
    for (size_t p = 0; p < published.parties.size(); ++p) {
      const auto& iv = result->intervals[m][p];
      std::printf(" [%5.1f;%5.1f]  ", iv.lo, iv.hi);
    }
    std::printf("\n");
  }
  std::printf("\nmean interval width over unknown cells: %.2f (prior: %.0f)\n",
              result->MeanUnknownWidth(attacker.party_index), result->prior_width);
  double worst_loss = 0.0;
  for (size_t m = 0; m < 3; ++m) {
    for (size_t p = 1; p < 4; ++p) {
      worst_loss = std::max(
          worst_loss, piye::inference::loss::IntervalLoss(
                          {0, 100}, result->intervals[m][p]));
    }
  }
  std::printf("worst per-cell interval privacy loss: %.3f\n\n", worst_loss);
}

void BM_Figure1Attack(benchmark::State& state) {
  const PublishedAggregates published = PublishedAggregates::Figure1();
  const AttackerKnowledge attacker = AttackerKnowledge::Figure1();
  piye::inference::NlpBoundSolver::Options options;
  options.restarts = static_cast<size_t>(state.range(0));
  double width = 0.0;
  for (auto _ : state) {
    SnoopingAttack attack(42, options);
    auto result = attack.Run(published, attacker);
    if (result.ok()) width = result->MeanUnknownWidth(0);
    benchmark::DoNotOptimize(result);
  }
  state.counters["mean_interval_width"] = width;
}
BENCHMARK(BM_Figure1Attack)->Arg(4)->Arg(12)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_Figure1OuterBoxOnly(benchmark::State& state) {
  const PublishedAggregates published = PublishedAggregates::Figure1();
  const AttackerKnowledge attacker = AttackerKnowledge::Figure1();
  for (auto _ : state) {
    auto sys = SnoopingAttack::BuildSystem(published, attacker);
    piye::inference::IntervalPropagator prop(&*sys);
    auto box = prop.Propagate();
    benchmark::DoNotOptimize(box);
  }
}
BENCHMARK(BM_Figure1OuterBoxOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure1Tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment abl-optimizer — privacy-conscious query optimization
// (Section 4): the cost model's two decisions and how much they save.
//   1. policy-filter pushdown vs post-hoc filtering (modelled cost and
//      measured time);
//   2. perturb-after-aggregate vs perturb-before-aggregate.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "perturb/noise.h"
#include "relational/executor.h"
#include "source/optimizer.h"

using namespace piye;
using namespace piye::relational;

namespace {

Table MakeTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t(Schema{Column{"tier", ColumnType::kInt64},
                 Column{"site", ColumnType::kString},
                 Column{"rate", ColumnType::kDouble}});
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRowUnchecked(
        {Value::Int(static_cast<int64_t>(rng.NextBounded(100))),
         Value::Str("s" + std::to_string(rng.NextBounded(12))),
         Value::Real(rng.NextUniform(0, 100))});
  }
  return t;
}

void CostModelTable() {
  std::printf("--- Modeled plan cost (row touches) for 100k rows ---\n");
  std::printf("%-14s %-14s %-18s %-18s\n", "selectivity", "push-down",
              "post-hoc", "speedup");
  for (double sel : {0.01, 0.1, 0.5, 1.0}) {
    const double pushed = source::PrivacyOptimizer::EstimateCost(
        100000, sel, true, false, true, 1);
    const double post = source::PrivacyOptimizer::EstimateCost(
        100000, sel, false, false, true, 1);
    std::printf("%-14.2f %-14.0f %-18.0f %.2fx\n", sel, pushed, post, post / pushed);
  }
  std::printf("\n%-20s %-16s %-18s\n", "perturb placement", "agg groups",
              "modeled cost");
  for (size_t groups : {1, 16, 256}) {
    const double after = source::PrivacyOptimizer::EstimateCost(
        100000, 1.0, true, true, true, groups);
    const double before = source::PrivacyOptimizer::EstimateCost(
        100000, 1.0, true, true, false, groups);
    std::printf("after-aggregate      %-16zu %-18.0f\n", groups, after);
    std::printf("before-aggregate     %-16zu %-18.0f\n", groups, before);
  }
  std::printf("\n");
}

void PlanChoiceDemo() {
  const Table t = MakeTable(50000, 3);
  auto stmt = ParseSql("SELECT site, AVG(rate) FROM t GROUP BY site");
  auto selective = ParseExpression("tier < 5");
  auto plan = source::PrivacyOptimizer::Choose(*stmt, t, *selective);
  if (!plan.ok()) return;
  std::printf("--- Chosen plan for a selective policy predicate ---\n");
  for (const auto& step : plan->steps) std::printf("  %s\n", step.c_str());
  std::printf("estimated selectivity %.3f, cost %.0f, pushdown=%s\n\n",
              plan->estimated_policy_selectivity, plan->estimated_cost,
              plan->push_policy_filter ? "yes" : "no");
}

// Measured: perturbation placed after vs before aggregation.
void BM_PerturbAfterAggregate(benchmark::State& state) {
  Catalog catalog;
  catalog.PutTable("t", MakeTable(static_cast<size_t>(state.range(0)), 3));
  Executor ex(&catalog);
  auto stmt = ParseSql("SELECT site, AVG(rate) AS m FROM t GROUP BY site");
  Rng rng(5);
  for (auto _ : state) {
    auto result = ex.Execute(*stmt);
    const perturb::AdditiveNoise noise(perturb::AdditiveNoise::Distribution::kGaussian,
                                       1.0);
    (void)noise.PerturbColumn(&*result, "m", &rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PerturbAfterAggregate)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_PerturbBeforeAggregate(benchmark::State& state) {
  Catalog catalog;
  catalog.PutTable("t", MakeTable(static_cast<size_t>(state.range(0)), 3));
  Executor ex(&catalog);
  auto stmt = ParseSql("SELECT site, AVG(rate) AS m FROM t GROUP BY site");
  Rng rng(5);
  for (auto _ : state) {
    Table copy = **catalog.GetTable("t");
    const perturb::AdditiveNoise noise(perturb::AdditiveNoise::Distribution::kGaussian,
                                       1.0);
    (void)noise.PerturbColumn(&copy, "rate", &rng);
    Catalog scratch;
    scratch.PutTable("t", std::move(copy));
    auto result = Executor(&scratch).Execute(*stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PerturbBeforeAggregate)->Arg(50000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  CostModelTable();
  PlanChoiceDemo();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment abl-seq — "privacy preservation for a sequence of queries":
// compares the three sequence defenses the library implements on the same
// adversarial query stream:
//   none     — every aggregate answered (baseline; the attacker wins),
//   chin     — the Chin–Özsoyoğlu exact-compromise auditor,
//   dobkin   — Dobkin–Jones–Lipton overlap control,
//   interval — the quantitative interval-loss auditor (PRIVATE-IYE's).
// The stream is a difference attack: sums over nested sets that pin one
// record. Reported: how many queries each defense answers before blocking,
// and whether the target value is compromised (exactly or to <5% interval).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "inference/sequence_auditor.h"
#include "relational/expression.h"
#include "statdb/audit.h"
#include "statdb/restriction.h"

using namespace piye;

namespace {

constexpr size_t kRecords = 16;

relational::Table MakeTable(Rng* rng, std::vector<double>* values) {
  relational::Table t(relational::Schema{
      relational::Column{"id", relational::ColumnType::kInt64},
      relational::Column{"v", relational::ColumnType::kDouble}});
  for (size_t i = 0; i < kRecords; ++i) {
    const double v = rng->NextUniform(0, 100);
    values->push_back(v);
    t.AppendRowUnchecked({relational::Value::Int(static_cast<int64_t>(i)),
                          relational::Value::Real(v)});
  }
  return t;
}

// The attack stream: SUM over {0..k} for k = n-1 down to 1, so consecutive
// answers differ by exactly one record.
std::vector<std::vector<size_t>> AttackStream() {
  std::vector<std::vector<size_t>> stream;
  for (size_t k = kRecords; k >= 2; --k) {
    std::vector<size_t> set;
    for (size_t i = 0; i < k; ++i) set.push_back(i);
    stream.push_back(std::move(set));
  }
  return stream;
}

statdb::AggregateQuery QueryFor(const std::vector<size_t>& set) {
  statdb::AggregateQuery q;
  q.func = relational::AggFunc::kSum;
  q.column = "v";
  std::vector<relational::Value> ids;
  for (size_t i : set) ids.push_back(relational::Value::Int(static_cast<int64_t>(i)));
  q.predicate =
      relational::Expression::In(relational::Expression::ColumnRef("id"), ids);
  return q;
}

void RunComparison() {
  Rng rng(31);
  std::vector<double> values;
  const relational::Table table = MakeTable(&rng, &values);
  const auto stream = AttackStream();

  std::printf("--- Difference-attack stream of %zu SUM queries over %zu records ---\n",
              stream.size(), kRecords);
  std::printf("%-10s %-10s %-10s %-30s\n", "defense", "answered", "refused",
              "target record compromised?");

  // none: answer everything; attacker subtracts adjacent sums.
  {
    std::vector<double> answers;
    for (const auto& set : stream) {
      auto rows = statdb::QuerySet(QueryFor(set), table);
      auto v = statdb::EvaluateAggregate(QueryFor(set), table, *rows);
      answers.push_back(*v);
    }
    const double inferred = answers[0] - answers[1];  // record kRecords-1
    const bool compromised = std::fabs(inferred - values[kRecords - 1]) < 1e-9;
    std::printf("%-10s %-10zu %-10d %-30s\n", "none", answers.size(), 0,
                compromised ? "YES, exactly" : "no");
  }
  // chin: the exact-compromise auditor.
  {
    statdb::SumAuditor auditor(kRecords);
    for (const auto& set : stream) (void)auditor.Answer(QueryFor(set), table);
    std::printf("%-10s %-10zu %-10zu %-30s\n", "chin", auditor.queries_answered(),
                auditor.queries_refused(),
                auditor.DeterminableRecords().empty() ? "no (provably)" : "YES");
  }
  // dobkin: overlap control.
  {
    statdb::OverlapControl control(/*min_size=*/3, /*max_overlap=*/2);
    size_t answered = 0, refused = 0;
    for (const auto& set : stream) {
      control.Answer(QueryFor(set), table).ok() ? ++answered : ++refused;
    }
    std::printf("%-10s %-10zu %-10zu lower bound: %zu queries to compromise\n",
                "dobkin", answered, refused, control.CompromiseLowerBound());
  }
  // interval: the quantitative auditor.
  {
    inference::SequenceAuditor auditor(/*max_interval_loss=*/0.95);
    std::vector<size_t> cells;
    for (size_t i = 0; i < kRecords; ++i) {
      cells.push_back(auditor.AddSensitiveValue("r" + std::to_string(i), 0, 100,
                                                values[i]));
    }
    for (const auto& set : stream) {
      std::vector<size_t> vars;
      for (size_t i : set) vars.push_back(cells[i]);
      (void)auditor.DiscloseMean(vars, 0.01);
    }
    double worst = 0.0;
    if (auto losses = auditor.CurrentLosses(); losses.ok()) {
      for (double l : *losses) worst = std::max(worst, l);
    }
    std::printf("%-10s %-10zu %-10zu worst interval loss %.3f (<= 0.95)\n",
                "interval", auditor.disclosures_committed(),
                auditor.disclosures_refused(), worst);
  }
  std::printf("\n");
}

void BM_ChinAuditorAnswer(benchmark::State& state) {
  Rng rng(31);
  std::vector<double> values;
  const relational::Table table = MakeTable(&rng, &values);
  const auto stream = AttackStream();
  for (auto _ : state) {
    statdb::SumAuditor auditor(kRecords);
    for (const auto& set : stream) {
      auto r = auditor.Answer(QueryFor(set), table);
      benchmark::DoNotOptimize(r);
    }
  }
}
BENCHMARK(BM_ChinAuditorAnswer)->Unit(benchmark::kMicrosecond);

void BM_IntervalAuditorAnswer(benchmark::State& state) {
  Rng rng(31);
  std::vector<double> values;
  (void)MakeTable(&rng, &values);
  const auto stream = AttackStream();
  for (auto _ : state) {
    inference::SequenceAuditor auditor(0.95);
    std::vector<size_t> cells;
    for (size_t i = 0; i < kRecords; ++i) {
      cells.push_back(auditor.AddSensitiveValue("r", 0, 100, values[i]));
    }
    for (const auto& set : stream) {
      std::vector<size_t> vars;
      for (size_t i : set) vars.push_back(cells[i]);
      auto r = auditor.DiscloseMean(vars, 0.01);
      benchmark::DoNotOptimize(r);
    }
  }
}
BENCHMARK(BM_IntervalAuditorAnswer)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  RunComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

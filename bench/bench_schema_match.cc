// Experiment abl-match — privacy-preserving schema matching (Section 5):
// how much matching quality survives as less is exposed. Three matcher
// configurations over synthetic clinical schema pairs with known ground
// truth:
//   full      — names + raw-value sketches (non-private baseline),
//   sketch    — names + keyed sketches (values never leave the source),
//   blind     — hashed names, keyed sketches only (schema itself hidden).
// Reports precision / recall / F1 per configuration, then times matching.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "match/schema_matcher.h"
#include "source/remote_source.h"

using namespace piye;
using match::ColumnMatch;
using match::ColumnRef;
using match::ColumnSketch;
using match::SchemaMatcher;

namespace {

struct World {
  relational::Table left;
  relational::Table right;
  // Ground-truth correspondences, left column -> right column.
  std::map<std::string, std::string> truth;
};

World MakeWorld(size_t rows, uint64_t seed) {
  Rng rng(seed);
  World w{relational::Table(relational::Schema{
              relational::Column{"patient_id", relational::ColumnType::kString},
              relational::Column{"dob", relational::ColumnType::kString},
              relational::Column{"zip", relational::ColumnType::kInt64},
              relational::Column{"sex", relational::ColumnType::kString},
              relational::Column{"diagnosis", relational::ColumnType::kString},
              relational::Column{"visit_count", relational::ColumnType::kInt64}}),
          relational::Table(relational::Schema{
              relational::Column{"pid", relational::ColumnType::kString},
              relational::Column{"birthDate", relational::ColumnType::kString},
              relational::Column{"postcode", relational::ColumnType::kInt64},
              relational::Column{"gender", relational::ColumnType::kString},
              relational::Column{"condition", relational::ColumnType::kString},
              relational::Column{"numEncounters", relational::ColumnType::kInt64}}),
          {{"patient_id", "pid"},
           {"dob", "birthDate"},
           {"zip", "postcode"},
           {"sex", "gender"},
           {"diagnosis", "condition"},
           {"visit_count", "numEncounters"}}};
  const char* dx[] = {"diabetes", "asthma", "hypertension", "influenza"};
  for (size_t i = 0; i < rows; ++i) {
    const std::string id = "P" + std::to_string(i);
    const std::string dob = std::to_string(1940 + rng.NextBounded(60)) + "-0" +
                            std::to_string(1 + rng.NextBounded(9));
    const int64_t zip = static_cast<int64_t>(10000 + rng.NextBounded(900));
    const std::string sex = rng.NextBernoulli(0.5) ? "F" : "M";
    const std::string d = dx[rng.NextBounded(4)];
    const int64_t visits = static_cast<int64_t>(rng.NextBounded(20));
    w.left.AppendRowUnchecked({relational::Value::Str(id),
                               relational::Value::Str(dob),
                               relational::Value::Int(zip),
                               relational::Value::Str(sex),
                               relational::Value::Str(d),
                               relational::Value::Int(visits)});
    // The right source shares ~60% of the population.
    if (rng.NextBernoulli(0.6)) {
      w.right.AppendRowUnchecked({relational::Value::Str(id),
                                  relational::Value::Str(dob),
                                  relational::Value::Int(zip),
                                  relational::Value::Str(sex),
                                  relational::Value::Str(d),
                                  relational::Value::Int(visits)});
    }
  }
  return w;
}

std::vector<ColumnSketch> Sketches(const relational::Table& t, const char* source,
                                   const std::string& key, bool names_public) {
  std::vector<ColumnSketch> out;
  for (const auto& col : t.schema().columns()) {
    auto s = ColumnSketch::Build({source, "t", col.name}, t, key, names_public);
    if (s.ok()) out.push_back(*s);
  }
  return out;
}

struct Score {
  double precision = 0.0, recall = 0.0, f1 = 0.0;
};

Score Evaluate(const std::vector<ColumnMatch>& matches, const World& w,
               bool names_hidden) {
  // With hidden names the match refs carry hash tags; score by *position*
  // instead: rebuild via index lookup in the original schemas.
  size_t tp = 0;
  for (const auto& m : matches) {
    std::string left = m.a.column, right = m.b.column;
    if (names_hidden) continue;  // handled by caller variant below
    auto it = w.truth.find(left);
    if (it != w.truth.end() && it->second == right) ++tp;
  }
  Score s;
  if (!matches.empty()) s.precision = static_cast<double>(tp) / matches.size();
  if (!w.truth.empty()) s.recall = static_cast<double>(tp) / w.truth.size();
  if (s.precision + s.recall > 0) {
    s.f1 = 2 * s.precision * s.recall / (s.precision + s.recall);
  }
  return s;
}

// For the blind configuration, score by mapping hashed tags back through the
// sketch lists (the experimenter knows the ground truth; the parties don't).
Score EvaluateBlind(const std::vector<ColumnMatch>& matches,
                    const std::vector<ColumnSketch>& left_sketches,
                    const std::vector<ColumnSketch>& right_sketches,
                    const relational::Table& left, const relational::Table& right,
                    const World& w) {
  auto unhash = [](const std::vector<ColumnSketch>& sketches,
                   const relational::Schema& schema, const std::string& tag) {
    for (size_t i = 0; i < sketches.size(); ++i) {
      if (sketches[i].ref.column == tag) return schema.column(i).name;
    }
    return tag;
  };
  size_t tp = 0;
  for (const auto& m : matches) {
    const std::string l = unhash(left_sketches, left.schema(), m.a.column);
    const std::string r = unhash(right_sketches, right.schema(), m.b.column);
    auto it = w.truth.find(l);
    if (it != w.truth.end() && it->second == r) ++tp;
  }
  Score s;
  if (!matches.empty()) s.precision = static_cast<double>(tp) / matches.size();
  if (!w.truth.empty()) s.recall = static_cast<double>(tp) / w.truth.size();
  if (s.precision + s.recall > 0) {
    s.f1 = 2 * s.precision * s.recall / (s.precision + s.recall);
  }
  return s;
}

void QualityTable() {
  const World w = MakeWorld(400, 21);
  SchemaMatcher::Options options;
  options.threshold = 0.55;
  const SchemaMatcher matcher(options, piye::source::DefaultClinicalNameMatcher());

  std::printf("--- Matching quality vs what is exposed (6 true correspondences) "
              "---\n");
  std::printf("%-10s %-22s %-10s %-10s %-6s\n", "config", "exposes", "precision",
              "recall", "F1");

  {  // full: names public, unkeyed (raw) value sketches.
    auto a = Sketches(w.left, "A", "", true);
    auto b = Sketches(w.right, "B", "", true);
    const auto matches = matcher.MatchSketches(a, b);
    const Score s = Evaluate(matches, w, false);
    std::printf("%-10s %-22s %-10.2f %-10.2f %-6.2f\n", "full",
                "names + raw values", s.precision, s.recall, s.f1);
  }
  {  // sketch: names public, keyed sketches.
    auto a = Sketches(w.left, "A", "shared-key", true);
    auto b = Sketches(w.right, "B", "shared-key", true);
    const auto matches = matcher.MatchSketches(a, b);
    const Score s = Evaluate(matches, w, false);
    std::printf("%-10s %-22s %-10.2f %-10.2f %-6.2f\n", "sketch",
                "names + keyed sketches", s.precision, s.recall, s.f1);
  }
  {  // blind: hashed names, keyed sketches.
    auto a = Sketches(w.left, "A", "shared-key", false);
    auto b = Sketches(w.right, "B", "shared-key", false);
    const auto matches = matcher.MatchSketches(a, b);
    const Score s = EvaluateBlind(matches, a, b, w.left, w.right, w);
    std::printf("%-10s %-22s %-10.2f %-10.2f %-6.2f\n", "blind",
                "keyed sketches only", s.precision, s.recall, s.f1);
  }
  std::printf("(quality degrades gracefully as exposure shrinks — the paper's "
              "learning-based matching hypothesis)\n\n");
}

void BM_MatchSketches(benchmark::State& state) {
  const World w = MakeWorld(static_cast<size_t>(state.range(0)), 21);
  SchemaMatcher::Options options;
  const SchemaMatcher matcher(options, piye::source::DefaultClinicalNameMatcher());
  auto a = Sketches(w.left, "A", "k", true);
  auto b = Sketches(w.right, "B", "k", true);
  for (auto _ : state) {
    auto matches = matcher.MatchSketches(a, b);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_MatchSketches)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_BuildSketch(benchmark::State& state) {
  const World w = MakeWorld(static_cast<size_t>(state.range(0)), 21);
  for (auto _ : state) {
    auto s = ColumnSketch::Build({"A", "t", "diagnosis"}, w.left, "k", true);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_BuildSketch)->Arg(400)->Arg(4000)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  QualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

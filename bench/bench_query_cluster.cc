// Experiment abl-query-cluster — Section 4's cluster-matching design choice:
// decide preservation techniques by analyzing only *query features*
// (option 2) instead of executing every query and analyzing its results
// (option 1). Reports classification accuracy of the nearest-centroid
// cluster store on a labeled pool of generated queries, plus the decision
// latency of both options.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "relational/executor.h"
#include "source/query_cluster.h"

using namespace piye;
using source::BreachClass;
using source::ClusterStore;
using source::QueryFeatures;

namespace {

struct LabeledQuery {
  relational::SelectStatement stmt;
  BreachClass truth;
};

// Generates queries of the four canonical breach shapes with feature noise.
std::vector<LabeledQuery> MakePool(size_t per_class, Rng* rng) {
  std::vector<LabeledQuery> pool;
  auto sql = [](const std::string& s) { return *relational::ParseSql(s); };
  for (size_t i = 0; i < per_class; ++i) {
    // Identity disclosure: row-level selects of a handful of columns with a
    // couple of predicates.
    {
      std::string q = "SELECT c1, c2, c3";
      if (rng->NextBernoulli(0.5)) q += ", c4";
      q += " FROM t WHERE a = 1";
      if (rng->NextBernoulli(0.7)) q += " AND b = 2";
      pool.push_back({sql(q), BreachClass::kIdentityDisclosure});
    }
    // Attribute disclosure: narrow probes with many predicates + small LIMIT.
    {
      std::string q = "SELECT s FROM t WHERE a = 1 AND b = 2 AND c = 3";
      if (rng->NextBernoulli(0.5)) q += " AND d = 4";
      q += " LIMIT " + std::to_string(1 + rng->NextBounded(4));
      pool.push_back({sql(q), BreachClass::kAttributeDisclosure});
    }
    // Aggregate inference: grouped statistics.
    {
      std::string q = "SELECT g, AVG(v)";
      if (rng->NextBernoulli(0.5)) q += ", STDDEV(v)";
      q += " FROM t";
      if (rng->NextBernoulli(0.3)) q += " WHERE a = 1";
      q += " GROUP BY g";
      pool.push_back({sql(q), BreachClass::kAggregateInference});
    }
    // Linkage attack: wide unfiltered dumps.
    {
      std::string q = "SELECT c1, c2, c3, c4, c5, c6, c7";
      if (rng->NextBernoulli(0.5)) q += ", c8, c9";
      q += " FROM t";
      pool.push_back({sql(q), BreachClass::kLinkageAttack});
    }
  }
  return pool;
}

void AccuracyReport() {
  Rng rng(99);
  const auto pool = MakePool(50, &rng);
  const ClusterStore store = ClusterStore::Default();
  size_t correct = 0;
  std::map<BreachClass, std::pair<size_t, size_t>> per_class;  // correct/total
  for (const auto& lq : pool) {
    const auto* cluster = store.Map(QueryFeatures::Extract(lq.stmt));
    const bool ok = cluster != nullptr && cluster->breach == lq.truth;
    correct += ok ? 1 : 0;
    auto& [c, t] = per_class[lq.truth];
    c += ok ? 1 : 0;
    ++t;
  }
  std::printf("--- Cluster matching accuracy on %zu labeled queries ---\n",
              pool.size());
  for (const auto& [breach, ct] : per_class) {
    std::printf("%-24s %zu/%zu\n", source::BreachClassToString(breach), ct.first,
                ct.second);
  }
  std::printf("overall: %.1f%%\n\n",
              100.0 * static_cast<double>(correct) / static_cast<double>(pool.size()));
}

// Option 2: decide by features alone.
void BM_DecideByFeatures(benchmark::State& state) {
  Rng rng(1);
  const auto pool = MakePool(25, &rng);
  const ClusterStore store = ClusterStore::Default();
  size_t i = 0;
  for (auto _ : state) {
    const auto* c = store.Map(QueryFeatures::Extract(pool[i % pool.size()].stmt));
    benchmark::DoNotOptimize(c);
    ++i;
  }
}
BENCHMARK(BM_DecideByFeatures)->Unit(benchmark::kNanosecond);

// Option 1: execute the query first, then analyze its results.
void BM_DecideByExecution(benchmark::State& state) {
  Rng rng(1);
  relational::Catalog catalog;
  relational::Table t(relational::Schema{
      relational::Column{"g", relational::ColumnType::kString},
      relational::Column{"v", relational::ColumnType::kDouble},
      relational::Column{"a", relational::ColumnType::kInt64}});
  for (int i = 0; i < 20000; ++i) {
    t.AppendRowUnchecked({relational::Value::Str("g" + std::to_string(i % 9)),
                          relational::Value::Real(rng.NextUniform(0, 100)),
                          relational::Value::Int(i % 5)});
  }
  catalog.PutTable("t", std::move(t));
  relational::Executor ex(&catalog);
  auto stmt = relational::ParseSql("SELECT g, AVG(v) FROM t WHERE a = 1 GROUP BY g");
  for (auto _ : state) {
    auto result = ex.Execute(*stmt);
    // "Analyze the query results": class-size statistics over the output.
    size_t rows = result.ok() ? result->num_rows() : 0;
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_DecideByExecution)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  AccuracyReport();
  std::printf("Decision latency: features-only vs execute-and-analyze "
              "(the paper's option 2 vs option 1):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment abl-psi — private duplicate detection for the Result
// Integrator (Section 5): crypto-PSI (commutative encryption, Agrawal et
// al. [8]) vs salted hash-PSI vs the no-privacy plaintext join, over set
// sizes 2^8..2^14. Expected shape: DH-PSI costs orders of magnitude more
// than the plaintext join but scales linearly; hash-PSI sits between; the
// privacy you buy is summarized in the leakage notes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "linkage/psi.h"

using namespace piye::linkage;

namespace {

std::pair<std::vector<std::string>, std::vector<std::string>> MakeSets(
    size_t n, double overlap, uint64_t seed) {
  piye::Rng rng(seed);
  std::vector<std::string> a, b;
  const size_t shared = static_cast<size_t>(overlap * static_cast<double>(n));
  for (size_t i = 0; i < n; ++i) {
    a.push_back("patient-" + std::to_string(i));
    b.push_back("patient-" +
                std::to_string(i < shared ? i : i + n));  // disjoint tail
  }
  rng.Shuffle(&a);
  rng.Shuffle(&b);
  return {a, b};
}

std::unique_ptr<PsiProtocol> MakeProtocol(int id) {
  switch (id) {
    case 0:
      return std::make_unique<PlaintextJoin>();
    case 1:
      return std::make_unique<HashPsi>("shared-salt");
    default:
      return std::make_unique<DhPsi>(99);
  }
}

const char* ProtocolName(int id) {
  switch (id) {
    case 0:
      return "plaintext-join";
    case 1:
      return "hash-psi";
    default:
      return "dh-psi";
  }
}

void CostTable() {
  std::printf("--- PSI protocol cost and leakage (|A| = |B| = n, 50%% overlap) "
              "---\n");
  std::printf("%-16s %-8s %-10s %-12s %-10s\n", "protocol", "n", "crypto-ops",
              "bytes", "messages");
  for (int proto : {0, 1, 2}) {
    for (size_t n : {256, 1024, 4096}) {
      auto [a, b] = MakeSets(n, 0.5, 7);
      auto protocol = MakeProtocol(proto);
      auto result = protocol->Intersect(a, b);
      if (!result.ok()) continue;
      const PsiStats& s = protocol->stats();
      std::printf("%-16s %-8zu %-10zu %-12zu %-10zu\n", ProtocolName(proto), n,
                  s.crypto_operations, s.bytes_exchanged, s.messages_exchanged);
    }
    std::printf("  leakage: %s\n", MakeProtocol(proto)->LeakageNote());
  }
  std::printf("\n");
}

void BM_Psi(benchmark::State& state) {
  const int proto = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  auto [a, b] = MakeSets(n, 0.5, 7);
  size_t matched = 0;
  for (auto _ : state) {
    auto protocol = MakeProtocol(proto);
    auto result = protocol->Intersect(a, b);
    if (result.ok()) matched = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(ProtocolName(proto));
  state.counters["matched"] = static_cast<double>(matched);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_Psi)
    ->Args({0, 256})
    ->Args({0, 1024})
    ->Args({0, 4096})
    ->Args({0, 16384})
    ->Args({1, 256})
    ->Args({1, 1024})
    ->Args({1, 4096})
    ->Args({1, 16384})
    ->Args({2, 256})
    ->Args({2, 1024})
    ->Args({2, 4096})
    ->Args({2, 16384})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  CostTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment fig2-e2e — Figure 2 as a performance object: the cost of every
// box of the architecture on an integrated clinical query, swept over source
// count and table size. Prints the per-stage breakdown the engine records,
// then micro-benchmarks the full pipeline.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/rng.h"
#include "core/private_iye.h"
#include "core/scenario.h"
#include "perturb/noise.h"
#include "perturb/swapping.h"
#include "relational/executor.h"
#include "relational/reference.h"

using piye::core::ClinicalScenario;
using piye::core::PrivateIye;

namespace {

std::unique_ptr<PrivateIye> BuildSystem(size_t patients, uint64_t seed) {
  piye::mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  auto system = std::make_unique<PrivateIye>(options);
  auto tables = ClinicalScenario::MakePatientTables(patients, 0.4, seed);
  auto* hospital = system->AddSource("hospital", "patients",
                                     std::move(tables.hospital), 1);
  auto* pharmacy = system->AddSource("pharmacy", "rx", std::move(tables.pharmacy), 2);
  auto* lab = system->AddSource("lab", "tests", std::move(tables.lab), 3);
  ClinicalScenario::ApplyPatientPolicies(hospital);
  ClinicalScenario::ApplyPatientPolicies(pharmacy);
  ClinicalScenario::ApplyPatientPolicies(lab);
  (void)system->Initialize();
  return system;
}

piye::source::PiqlQuery Query() {
  auto q = piye::source::PiqlQuery::Parse(R"(
    <query requester="analyst" purpose="research" maxLoss="0.95">
      <select>patient_id</select><select>dob</select>
    </query>)");
  return *q;
}

void PrintStageBreakdown() {
  std::printf("--- Figure 2 pipeline stage breakdown ---\n");
  std::printf("%-10s", "rows/src");
  const char* stages[] = {"warehouse-lookup", "fragment", "source-execution",
                          "privacy-control", "integrate", "record"};
  for (const char* s : stages) std::printf(" %-18s", s);
  std::printf(" total(us)\n");
  for (size_t patients : {50, 200, 800, 3200}) {
    auto system = BuildSystem(patients, 11);
    auto result = system->Query(Query());
    if (!result.ok()) {
      std::printf("%-10zu failed: %s\n", patients,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-10zu", patients);
    double total = 0.0;
    for (const char* stage : stages) {
      double micros = 0.0;
      for (const auto& t : result->timings) {
        if (t.stage == stage) micros = t.micros;
      }
      total += micros;
      std::printf(" %-18.1f", micros);
    }
    std::printf(" %.1f\n", total);
  }
  std::printf("(source-execution dominates and scales with rows; the privacy "
              "stages are near-constant — Figure 2's privacy layers cost little "
              "on top of integration itself)\n\n");
}

void BM_EndToEndQuery(benchmark::State& state) {
  auto system = BuildSystem(static_cast<size_t>(state.range(0)), 13);
  const auto query = Query();
  for (auto _ : state) {
    auto result = system->Query(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows_per_source"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EndToEndQuery)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_MediatedSchemaGeneration(benchmark::State& state) {
  const size_t patients = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto system = BuildSystem(patients, 17);
    benchmark::DoNotOptimize(system);
  }
}
BENCHMARK(BM_MediatedSchemaGeneration)->Arg(200)->Unit(benchmark::kMillisecond);

// --- columnar vs row-engine hot path -----------------------------------

namespace rel = piye::relational;

/// 3-column aggregation/perturbation workload: 16 groups, a NULL-riddled
/// DOUBLE measure and a dense INT64 measure.
rel::Table HotPathTable(size_t rows) {
  piye::Rng rng(29);
  rel::ColumnVector g(rel::ColumnType::kInt64), v(rel::ColumnType::kDouble),
      w(rel::ColumnType::kInt64);
  g.Reserve(rows);
  v.Reserve(rows);
  w.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    g.AppendInt(static_cast<int64_t>(rng.NextBounded(16)));
    if (rng.NextDouble() < 0.1) {
      v.AppendNull();
    } else {
      v.AppendReal(rng.NextUniform(-100.0, 100.0));
    }
    w.AppendInt(static_cast<int64_t>(rng.NextBounded(100000)));
  }
  rel::Table t;
  t.AddColumn({"g", rel::ColumnType::kInt64}, std::move(g));
  t.AddColumn({"v", rel::ColumnType::kDouble}, std::move(v));
  t.AddColumn({"w", rel::ColumnType::kInt64}, std::move(w));
  return t;
}

std::vector<rel::SelectItem> HotPathAggs() {
  using rel::AggFunc;
  using rel::SelectItem;
  return {SelectItem::Agg(AggFunc::kSum, "v"),
          SelectItem::Agg(AggFunc::kAvg, "v"),
          SelectItem::Agg(AggFunc::kStdDev, "v"),
          SelectItem::Agg(AggFunc::kSum, "w"),
          SelectItem::Agg(AggFunc::kMin, "v"),
          SelectItem::Agg(AggFunc::kMax, "w")};
}

void BM_AggregateColumnar(benchmark::State& state) {
  const rel::Table t = HotPathTable(static_cast<size_t>(state.range(0)));
  const auto aggs = HotPathAggs();
  for (auto _ : state) {
    auto out = rel::Executor::Aggregate(t, {"g"}, aggs);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AggregateColumnar)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_AggregateRowEngine(benchmark::State& state) {
  const rel::Table t = HotPathTable(static_cast<size_t>(state.range(0)));
  const auto aggs = HotPathAggs();
  for (auto _ : state) {
    auto out = rel::rowref::Aggregate(t, {"g"}, aggs);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AggregateRowEngine)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_PerturbColumnar(benchmark::State& state) {
  const rel::Table t = HotPathTable(static_cast<size_t>(state.range(0)));
  const piye::perturb::AdditiveNoise noise(
      piye::perturb::AdditiveNoise::Distribution::kGaussian, 5.0);
  piye::Rng rng(31);
  for (auto _ : state) {
    rel::Table copy = t;
    (void)noise.PerturbColumn(&copy, "v", &rng);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_PerturbColumnar)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_PerturbRowEngine(benchmark::State& state) {
  const rel::Table t = HotPathTable(static_cast<size_t>(state.range(0)));
  piye::Rng rng(31);
  for (auto _ : state) {
    rel::Table copy = t;
    (void)rel::rowref::AddNoiseRowAtATime(&copy, "v", /*gaussian=*/true, 5.0,
                                          &rng);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_PerturbRowEngine)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_RankSwapColumnar(benchmark::State& state) {
  const rel::Table t = HotPathTable(static_cast<size_t>(state.range(0)));
  const piye::perturb::RankSwapper swapper(5.0);
  piye::Rng rng(37);
  for (auto _ : state) {
    rel::Table copy = t;
    (void)swapper.SwapColumn(&copy, "v", &rng);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_RankSwapColumnar)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_RankSwapRowEngine(benchmark::State& state) {
  const rel::Table t = HotPathTable(static_cast<size_t>(state.range(0)));
  piye::Rng rng(37);
  for (auto _ : state) {
    rel::Table copy = t;
    (void)rel::rowref::RankSwapRowAtATime(&copy, "v", 5.0, &rng);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_RankSwapRowEngine)->Arg(100000)->Unit(benchmark::kMillisecond);

/// --quick: a CI smoke gate instead of the full benchmark sweep. Runs the
/// aggregation and perturbation hot paths through both engines, requires
/// value-identical answers, and fails (exit 1) unless the columnar engine
/// clears the minimum speedup.
bool TablesIdentical(const rel::Table& a, const rel::Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (a.Cell(r, c).ToString() != b.Cell(r, c).ToString()) return false;
    }
  }
  return true;
}

template <typename Fn>
double BestOfMillis(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(end - start).count());
  }
  return best;
}

int RunQuickGate() {
  // Aggregation must clear the issue's 5x bar. The perturbation kernels
  // share their sort/RNG core with the row reference by construction
  // (draw-for-draw identical), so only cell access differs — gate them at
  // no-regression-plus-margin rather than pretending the shared algorithmic
  // cost vanishes.
  constexpr double kMinAggSpeedup = 5.0;
  constexpr double kMinSwapSpeedup = 1.2;
  constexpr size_t kRows = 200000;
  const rel::Table t = HotPathTable(kRows);
  const auto aggs = HotPathAggs();

  auto columnar_agg = rel::Executor::Aggregate(t, {"g"}, aggs);
  auto row_agg = rel::rowref::Aggregate(t, {"g"}, aggs);
  if (!columnar_agg.ok() || !row_agg.ok() ||
      !TablesIdentical(*columnar_agg, *row_agg)) {
    std::printf("FAIL: engines disagree on the aggregation result\n");
    return 1;
  }
  const double agg_col_ms = BestOfMillis(5, [&] {
    auto out = rel::Executor::Aggregate(t, {"g"}, aggs);
    benchmark::DoNotOptimize(out);
  });
  const double agg_row_ms = BestOfMillis(5, [&] {
    auto out = rel::rowref::Aggregate(t, {"g"}, aggs);
    benchmark::DoNotOptimize(out);
  });

  // Additive noise: value-identity only. Both engines are dominated by the
  // same RNG draws, so it gates correctness, not speed.
  const piye::perturb::AdditiveNoise noise(
      piye::perturb::AdditiveNoise::Distribution::kGaussian, 5.0);
  {
    rel::Table a = t, b = t;
    piye::Rng rng_a(31), rng_b(31);
    (void)noise.PerturbColumn(&a, "v", &rng_a);
    (void)rel::rowref::AddNoiseRowAtATime(&b, "v", true, 5.0, &rng_b);
    if (!TablesIdentical(a, b)) {
      std::printf("FAIL: engines disagree on the noise-perturbed column\n");
      return 1;
    }
  }

  // Rank swap: the sort-heavy perturbation kernel, timed and gated.
  const piye::perturb::RankSwapper swapper(5.0);
  {
    rel::Table a = t, b = t;
    piye::Rng rng_a(37), rng_b(37);
    (void)swapper.SwapColumn(&a, "v", &rng_a);
    (void)rel::rowref::RankSwapRowAtATime(&b, "v", 5.0, &rng_b);
    if (!TablesIdentical(a, b)) {
      std::printf("FAIL: engines disagree on the rank-swapped column\n");
      return 1;
    }
  }
  const double pert_col_ms = BestOfMillis(5, [&] {
    rel::Table copy = t;
    piye::Rng rng(37);
    (void)swapper.SwapColumn(&copy, "v", &rng);
    benchmark::DoNotOptimize(copy);
  });
  const double pert_row_ms = BestOfMillis(5, [&] {
    rel::Table copy = t;
    piye::Rng rng(37);
    (void)rel::rowref::RankSwapRowAtATime(&copy, "v", 5.0, &rng);
    benchmark::DoNotOptimize(copy);
  });

  const double agg_speedup = agg_row_ms / agg_col_ms;
  const double pert_speedup = pert_row_ms / pert_col_ms;
  std::printf("--quick hot-path gate (%zu rows, value-identical verified)\n",
              kRows);
  std::printf("  aggregate: row %.2f ms, columnar %.2f ms -> %.1fx\n",
              agg_row_ms, agg_col_ms, agg_speedup);
  std::printf("  rank-swap: row %.2f ms, columnar %.2f ms -> %.1fx\n",
              pert_row_ms, pert_col_ms, pert_speedup);
  if (agg_speedup < kMinAggSpeedup || pert_speedup < kMinSwapSpeedup) {
    std::printf("FAIL: hot-path speedup below gate (aggregate %.1fx, "
                "rank-swap %.1fx)\n",
                kMinAggSpeedup, kMinSwapSpeedup);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return RunQuickGate();
  }
  PrintStageBreakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

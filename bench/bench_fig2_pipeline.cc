// Experiment fig2-e2e — Figure 2 as a performance object: the cost of every
// box of the architecture on an integrated clinical query, swept over source
// count and table size. Prints the per-stage breakdown the engine records,
// then micro-benchmarks the full pipeline.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/private_iye.h"
#include "core/scenario.h"

using piye::core::ClinicalScenario;
using piye::core::PrivateIye;

namespace {

std::unique_ptr<PrivateIye> BuildSystem(size_t patients, uint64_t seed) {
  piye::mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  auto system = std::make_unique<PrivateIye>(options);
  auto tables = ClinicalScenario::MakePatientTables(patients, 0.4, seed);
  auto* hospital = system->AddSource("hospital", "patients",
                                     std::move(tables.hospital), 1);
  auto* pharmacy = system->AddSource("pharmacy", "rx", std::move(tables.pharmacy), 2);
  auto* lab = system->AddSource("lab", "tests", std::move(tables.lab), 3);
  ClinicalScenario::ApplyPatientPolicies(hospital);
  ClinicalScenario::ApplyPatientPolicies(pharmacy);
  ClinicalScenario::ApplyPatientPolicies(lab);
  (void)system->Initialize();
  return system;
}

piye::source::PiqlQuery Query() {
  auto q = piye::source::PiqlQuery::Parse(R"(
    <query requester="analyst" purpose="research" maxLoss="0.95">
      <select>patient_id</select><select>dob</select>
    </query>)");
  return *q;
}

void PrintStageBreakdown() {
  std::printf("--- Figure 2 pipeline stage breakdown ---\n");
  std::printf("%-10s", "rows/src");
  const char* stages[] = {"warehouse-lookup", "fragment", "source-execution",
                          "privacy-control", "integrate", "record"};
  for (const char* s : stages) std::printf(" %-18s", s);
  std::printf(" total(us)\n");
  for (size_t patients : {50, 200, 800, 3200}) {
    auto system = BuildSystem(patients, 11);
    auto result = system->Query(Query());
    if (!result.ok()) {
      std::printf("%-10zu failed: %s\n", patients,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-10zu", patients);
    double total = 0.0;
    for (const char* stage : stages) {
      double micros = 0.0;
      for (const auto& t : result->timings) {
        if (t.stage == stage) micros = t.micros;
      }
      total += micros;
      std::printf(" %-18.1f", micros);
    }
    std::printf(" %.1f\n", total);
  }
  std::printf("(source-execution dominates and scales with rows; the privacy "
              "stages are near-constant — Figure 2's privacy layers cost little "
              "on top of integration itself)\n\n");
}

void BM_EndToEndQuery(benchmark::State& state) {
  auto system = BuildSystem(static_cast<size_t>(state.range(0)), 13);
  const auto query = Query();
  for (auto _ : state) {
    auto result = system->Query(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows_per_source"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EndToEndQuery)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_MediatedSchemaGeneration(benchmark::State& state) {
  const size_t patients = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto system = BuildSystem(patients, 17);
    benchmark::DoNotOptimize(system);
  }
}
BENCHMARK(BM_MediatedSchemaGeneration)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintStageBreakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

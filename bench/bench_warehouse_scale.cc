// Experiment warehouse-scale — the warehouse read path as a performance
// object:
//
//   1. throughput sweep, 1–16 reader threads × hit-rate, sharded zero-copy
//      warehouse vs the pre-refactor baseline (one global mutex, deep-copy
//      Get) rebuilt here in-bench — the headline number is the speedup at
//      8 threads on a 100% hit workload;
//   2. hit latency for both designs (single-threaded per-op cost: the
//      baseline pays a full table copy per hit, the sharded store a
//      refcount);
//   3. single-flight coalescing on the live engine: a burst of identical
//      concurrent queries against slow sources → one federated execution,
//      the rest joined (engine.singleflight_* counters);
//   4. byte-budget eviction: fill a bounded warehouse past its budget and
//      report resident vs evicted bytes.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/trace.h"
#include "core/scenario.h"
#include "mediator/engine.h"
#include "mediator/warehouse.h"
#include "relational/table.h"
#include "source/remote_source.h"

using piye::core::ClinicalScenario;
using piye::mediator::MediationEngine;
using piye::mediator::QueryOptions;
using piye::mediator::Warehouse;
using piye::source::RemoteSource;

namespace {

// The pre-refactor warehouse, reconstructed as the baseline: one global
// mutex over one map, and a Get that returns the table *by value* — every
// hit deep-copies the materialization while holding the lock.
class BaselineWarehouse {
 public:
  void Put(const std::string& fingerprint, piye::relational::Table table,
           uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[fingerprint] = Entry{std::move(table), epoch};
  }

  std::optional<piye::relational::Table> Get(const std::string& fingerprint,
                                             uint64_t current_epoch,
                                             uint64_t max_age) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end()) return std::nullopt;
    const uint64_t age = current_epoch >= it->second.epoch
                             ? current_epoch - it->second.epoch
                             : 0;
    if (age > max_age) return std::nullopt;
    return it->second.table;  // deep copy under the global lock
  }

 private:
  struct Entry {
    piye::relational::Table table;
    uint64_t epoch = 0;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

constexpr size_t kEntries = 256;
constexpr size_t kRowsPerTable = 32;

piye::relational::Table MakeTable(size_t marker) {
  piye::relational::Table t(piye::relational::Schema{
      piye::relational::Column{"patient_id", piye::relational::ColumnType::kString},
      piye::relational::Column{"count", piye::relational::ColumnType::kInt64}});
  for (size_t r = 0; r < kRowsPerTable; ++r) {
    (void)t.AppendRow(piye::relational::Row{
        piye::relational::Value::Str("patient-" + std::to_string(marker * 1000 + r) +
                                     std::string(48, 'p')),
        piye::relational::Value::Int(static_cast<int64_t>(r))});
  }
  return t;
}

std::string Fp(size_t i) { return "fingerprint-" + std::to_string(i); }

/// Runs `total_ops` Gets split over `threads` workers against `get`;
/// `hit_pct` of keys exist. Returns million-ops/sec.
template <typename GetFn>
double Throughput(size_t threads, size_t total_ops, int hit_pct, GetFn get) {
  const size_t ops_per_thread = total_ops / threads;
  std::atomic<bool> go{false};
  std::atomic<size_t> hits{0};
  std::vector<std::thread> workers;
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      while (!go.load()) std::this_thread::yield();
      size_t local_hits = 0;
      for (size_t i = 0; i < ops_per_thread; ++i) {
        // Even spread over the keyspace; keys >= kEntries miss.
        const size_t roll = (w * 7919 + i) % 100;
        const size_t key = (w * 31 + i) % kEntries +
                           (static_cast<int>(roll) < hit_pct ? 0 : kEntries);
        if (get(Fp(key))) ++local_hits;
      }
      hits.fetch_add(local_hits);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true);
  for (auto& t : workers) t.join();
  const double secs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count() /
      1e9;
  (void)hits;
  return threads * ops_per_thread / secs / 1e6;
}

void PrintThroughputSweep() {
  BaselineWarehouse baseline;
  Warehouse sharded(Warehouse::Options{/*num_shards=*/16, /*max_bytes=*/0});
  for (size_t i = 0; i < kEntries; ++i) {
    baseline.Put(Fp(i), MakeTable(i), 0);
    sharded.Put(Fp(i), MakeTable(i), 0);
  }
  auto baseline_get = [&baseline](const std::string& fp) {
    auto t = baseline.Get(fp, 0, 0);
    benchmark::DoNotOptimize(t);
    return t.has_value();
  };
  auto sharded_get = [&sharded](const std::string& fp) {
    auto t = sharded.Get(fp, 0, 0);
    benchmark::DoNotOptimize(t);
    return t != nullptr;
  };

  std::printf("--- warehouse Get throughput (Mops/s), %zu entries of %zu rows ---\n",
              kEntries, kRowsPerTable);
  std::printf("%-8s %-9s %-15s %-15s %s\n", "threads", "hit-rate", "baseline",
              "sharded", "speedup");
  constexpr size_t kTotalOps = 1 << 17;
  double speedup_at_8_full_hit = 0.0;
  for (size_t threads : {1, 2, 4, 8, 16}) {
    for (int hit_pct : {100, 50}) {
      const double base = Throughput(threads, kTotalOps, hit_pct, baseline_get);
      const double shard = Throughput(threads, kTotalOps, hit_pct, sharded_get);
      if (threads == 8 && hit_pct == 100) speedup_at_8_full_hit = shard / base;
      std::printf("%-8zu %-9d %-15.2f %-15.2f %.1fx\n", threads, hit_pct, base,
                  shard, shard / base);
    }
  }
  std::printf("(hits: baseline deep-copies the table under one global mutex; "
              "sharded hands out a refcounted handle under a per-shard lock)\n");
  std::printf("speedup_at_8_threads_full_hit: %.1fx (target >= 4x)\n\n",
              speedup_at_8_full_hit);
}

void PrintHitLatency() {
  BaselineWarehouse baseline;
  Warehouse sharded(Warehouse::Options{/*num_shards=*/16, /*max_bytes=*/0});
  for (size_t i = 0; i < kEntries; ++i) {
    baseline.Put(Fp(i), MakeTable(i), 0);
    sharded.Put(Fp(i), MakeTable(i), 0);
  }
  constexpr size_t kOps = 50'000;
  auto time_ns = [](auto fn) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kOps; ++i) fn(i);
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
               .count() /
           static_cast<double>(kOps);
  };
  const double base_ns = time_ns([&](size_t i) {
    auto t = baseline.Get(Fp(i % kEntries), 0, 0);
    benchmark::DoNotOptimize(t);
  });
  const double shard_ns = time_ns([&](size_t i) {
    auto t = sharded.Get(Fp(i % kEntries), 0, 0);
    benchmark::DoNotOptimize(t);
  });
  std::printf("--- single-threaded hit latency ---\n");
  std::printf("baseline (deep copy): %.0f ns/hit\nsharded (zero copy):  %.0f ns/hit\n\n",
              base_ns, shard_ns);
}

void PrintSingleFlightBurst() {
  std::printf("--- single-flight: 8 identical concurrent queries, slow sources ---\n");
  std::vector<std::unique_ptr<RemoteSource>> sources;
  for (size_t i = 0; i < 3; ++i) {
    auto tables = ClinicalScenario::MakePatientTables(50, 0.3, 100 + i);
    auto src = std::make_unique<RemoteSource>("hospital" + std::to_string(i),
                                              "patients", std::move(tables.hospital),
                                              /*seed=*/i + 1);
    ClinicalScenario::ApplyPatientPolicies(src.get());
    RemoteSource::FaultInjection faults;
    faults.latency_micros = 20'000;  // 20 ms per source
    src->set_fault_injection(faults);
    sources.push_back(std::move(src));
  }
  MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;  // coalescing, not caching, answers repeats
  options.worker_threads = 4;
  MediationEngine engine(options);
  for (const auto& src : sources) (void)engine.RegisterSource(src.get());
  (void)engine.GenerateMediatedSchema("bench-key");
  const auto query = *piye::source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">"
      "<select>patient_id</select></query>");

  constexpr int kCallers = 8;
  std::atomic<bool> go{false};
  std::vector<std::thread> callers;
  std::atomic<int> ok{0};
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      if (engine.Execute(query, QueryOptions{}).ok()) ok.fetch_add(1);
    });
  }
  go.store(true);
  for (auto& t : callers) t.join();
  const double ms =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count() /
      1e6;
  std::printf(
      "  %d/%d ok in %.1f ms; leaders=%llu coalesced=%llu "
      "fragment_attempts=%llu history=%zu\n",
      ok.load(), kCallers, ms,
      static_cast<unsigned long long>(
          engine.metrics()->counter("engine.singleflight_leaders")),
      static_cast<unsigned long long>(
          engine.metrics()->counter("engine.singleflight_coalesced")),
      static_cast<unsigned long long>(
          engine.metrics()->counter("engine.fragment_attempts")),
      engine.history()->size());
  std::printf("  (without coalescing the burst costs %dx the source fan-outs "
              "and %dx the budget)\n\n",
              kCallers, kCallers);
}

void PrintEvictionBudget() {
  std::printf("--- byte-budget eviction: 1 MiB budget, ~%zu KiB entries ---\n",
              MakeTable(0).ApproxBytes() / 1024);
  piye::trace::MetricsRegistry metrics;
  Warehouse warehouse(Warehouse::Options{/*num_shards=*/16,
                                         /*max_bytes=*/1 << 20});
  warehouse.set_metrics(&metrics);
  for (size_t i = 0; i < 1024; ++i) {
    warehouse.Put(Fp(i), MakeTable(i), /*epoch=*/i / 128);
  }
  std::printf("  resident: %zu entries, %zu bytes (budget %zu)\n",
              warehouse.size(), warehouse.bytes(), warehouse.max_bytes());
  std::printf("  evicted:  %llu entries, %llu bytes\n\n",
              static_cast<unsigned long long>(
                  metrics.counter("warehouse.evicted_entries")),
              static_cast<unsigned long long>(
                  metrics.counter("warehouse.bytes_evicted")));
}

// --- google-benchmark microbenchmarks (multi-threaded Get) ---

BaselineWarehouse* SharedBaseline() {
  static BaselineWarehouse* w = [] {
    auto* b = new BaselineWarehouse();
    for (size_t i = 0; i < kEntries; ++i) b->Put(Fp(i), MakeTable(i), 0);
    return b;
  }();
  return w;
}

Warehouse* SharedSharded() {
  static Warehouse* w = [] {
    auto* s = new Warehouse(Warehouse::Options{16, 0});
    for (size_t i = 0; i < kEntries; ++i) s->Put(Fp(i), MakeTable(i), 0);
    return s;
  }();
  return w;
}

void BM_BaselineHit(benchmark::State& state) {
  auto* warehouse = SharedBaseline();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    auto t = warehouse->Get(Fp(++i % kEntries), 0, 0);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_BaselineHit)->Threads(1)->Threads(4)->Threads(8)->Threads(16);

void BM_ShardedHit(benchmark::State& state) {
  auto* warehouse = SharedSharded();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    auto t = warehouse->Get(Fp(++i % kEntries), 0, 0);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ShardedHit)->Threads(1)->Threads(4)->Threads(8)->Threads(16);

void BM_ShardedPutEvict(benchmark::State& state) {
  Warehouse warehouse(Warehouse::Options{16, /*max_bytes=*/1 << 20});
  size_t i = 0;
  for (auto _ : state) {
    ++i;
    warehouse.Put(Fp(i % 4096), MakeTable(i % 64), i / 512);
  }
}
BENCHMARK(BM_ShardedPutEvict);

}  // namespace

int main(int argc, char** argv) {
  piye::Logger::SetLevel(piye::LogLevel::kError);
  PrintThroughputSweep();
  PrintHitLatency();
  PrintSingleFlightBurst();
  PrintEvictionBudget();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment ex2-outbreak — Example 2: disease-outbreak surveillance.
// Compares detection latency under three sharing regimes:
//   full        — raw case rows pooled centrally (no privacy, the warehouse
//                 model the paper says consent costs make impossible),
//   private-iye — aggregate-only sharing through the mediation engine,
//   none        — the affected country withholds its data entirely.
// Sweeps the outbreak growth severity. Then times the daily surveillance
// query with and without warehousing (the "quick response" rationale for the
// hybrid engine).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "core/private_iye.h"
#include "core/scenario.h"

using piye::core::OutbreakScenario;
using piye::core::PrivateIye;

namespace {

constexpr size_t kDays = 70;
constexpr size_t kOutbreakDay = 35;
constexpr size_t kOutbreakAt = 2;

std::vector<std::string> Countries() { return {"sg", "hk", "cn", "ca"}; }

void ConfigureSource(piye::source::RemoteSource* src, const std::string& owner) {
  piye::policy::PrivacyPolicy policy(owner, {});
  piye::policy::PolicyRule cases_rule;
  cases_rule.id = "cases-aggregate";
  cases_rule.item = {"*", "cases"};
  cases_rule.purposes = {"disease-surveillance"};
  cases_rule.recipients = {"*"};
  cases_rule.form = piye::policy::DisclosureForm::kAggregate;
  cases_rule.max_privacy_loss = 0.9;
  policy.AddRule(cases_rule);
  piye::policy::PolicyRule day_rule;
  day_rule.id = "day-public";
  day_rule.item = {"*", "day"};
  day_rule.purposes = {"*"};
  day_rule.recipients = {"*"};
  day_rule.form = piye::policy::DisclosureForm::kExact;
  policy.AddRule(day_rule);
  (void)src->mutable_policies()->AddPolicy(std::move(policy));
  (void)src->mutable_rbac()->AddRole("who");
  (void)src->mutable_rbac()->AssignRole("who", "who");
  (void)src->mutable_rbac()->Grant("who", piye::access::Action::kSelect, "*", "*");
}

std::unique_ptr<PrivateIye> BuildSystem(uint64_t seed, bool warehouse) {
  piye::mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.99;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = warehouse;
  auto system = std::make_unique<PrivateIye>(options);
  auto tables = OutbreakScenario::MakeCaseTables(Countries(), kDays, kOutbreakDay,
                                                 kOutbreakAt, seed);
  for (size_t c = 0; c < Countries().size(); ++c) {
    auto* src = system->AddSource(Countries()[c], "cases", std::move(tables[c]),
                                  static_cast<uint64_t>(c) + 1);
    ConfigureSource(src, Countries()[c]);
  }
  (void)system->Initialize();
  return system;
}

piye::source::PiqlQuery SurveillanceQuery() {
  return *piye::source::PiqlQuery::Parse(R"(
    <query requester="who" purpose="disease-surveillance" maxLoss="0.95">
      <aggregate func="SUM" attribute="cases"><groupBy>day</groupBy></aggregate>
    </query>)");
}

void DetectionSweep() {
  std::printf("--- Detection day by sharing regime (outbreak starts day %zu) ---\n",
              kOutbreakDay);
  std::printf("%-8s %-10s %-14s %-10s\n", "seed", "full", "private-iye", "none");
  size_t piye_detected = 0, none_detected = 0, runs = 0;
  for (uint64_t seed : {5, 9, 21, 33, 47}) {
    auto tables = OutbreakScenario::MakeCaseTables(Countries(), kDays, kOutbreakDay,
                                                   kOutbreakAt, seed);
    std::vector<double> full(kDays, 0.0), none(kDays, 0.0);
    for (size_t c = 0; c < tables.size(); ++c) {
      for (const auto& row : tables[c].rows()) {
        const size_t d = static_cast<size_t>(row[0].AsInt());
        full[d] += static_cast<double>(row[2].AsInt());
        if (c != kOutbreakAt) none[d] += static_cast<double>(row[2].AsInt());
      }
    }
    // The privacy-preserving feed through the engine.
    auto system = BuildSystem(seed, /*warehouse=*/false);
    auto result = system->Query(SurveillanceQuery());
    std::vector<double> integrated(kDays, 0.0);
    if (result.ok()) {
      auto day_idx = result->table().schema().IndexOf("day");
      auto sum_idx = result->table().schema().IndexOf("sum_cases");
      if (day_idx.ok() && sum_idx.ok()) {
        for (const auto& row : result->table().rows()) {
          integrated[static_cast<size_t>(row[*day_idx].AsInt())] +=
              row[*sum_idx].AsDouble();
        }
      }
    }
    const long d_full = OutbreakScenario::DetectOutbreak(full, 7, 2.0);
    const long d_piye = OutbreakScenario::DetectOutbreak(integrated, 7, 2.0);
    const long d_none = OutbreakScenario::DetectOutbreak(none, 7, 2.0);
    auto fmt = [](long d) { return d < 0 ? std::string("never") : std::to_string(d); };
    std::printf("%-8llu %-10s %-14s %-10s\n", (unsigned long long)seed,
                fmt(d_full).c_str(), fmt(d_piye).c_str(), fmt(d_none).c_str());
    ++runs;
    if (d_piye > 0) ++piye_detected;
    if (d_none > 0) ++none_detected;
  }
  std::printf("privacy-preserving sharing detected %zu/%zu outbreaks; "
              "no-sharing detected %zu/%zu\n\n",
              piye_detected, runs, none_detected, runs);
}

void BM_SurveillanceQuery(benchmark::State& state) {
  const bool warehouse = state.range(0) != 0;
  auto system = BuildSystem(5, warehouse);
  const auto query = SurveillanceQuery();
  (void)system->Query(query);  // warm the warehouse
  for (auto _ : state) {
    auto result = system->Query(query);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(warehouse ? "warehoused" : "virtual");
}
BENCHMARK(BM_SurveillanceQuery)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  DetectionSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

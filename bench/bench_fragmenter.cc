// Experiment abl-fragment — query fragmentation (Section 5): "sending
// queries to irrelevant sources affects adversely the efficiency of the
// integration process". Measures source-selection quality as the mediated
// schema degrades (sources hide more of their schema), and the cost of
// broadcasting to every source vs fragmenting to the relevant ones.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/private_iye.h"
#include "core/scenario.h"
#include "mediator/fragmenter.h"

using namespace piye;

namespace {

struct SystemBundle {
  std::unique_ptr<core::PrivateIye> system;
};

SystemBundle BuildSystem(size_t hidden_columns_per_source) {
  mediator::MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  SystemBundle bundle{std::make_unique<core::PrivateIye>(options)};
  auto tables = core::ClinicalScenario::MakePatientTables(60, 0.4, 7);
  auto* hospital = bundle.system->AddSource("hospital", "patients",
                                            std::move(tables.hospital), 1);
  auto* pharmacy =
      bundle.system->AddSource("pharmacy", "rx", std::move(tables.pharmacy), 2);
  auto* lab = bundle.system->AddSource("lab", "tests", std::move(tables.lab), 3);
  core::ClinicalScenario::ApplyPatientPolicies(hospital);
  core::ClinicalScenario::ApplyPatientPolicies(pharmacy);
  core::ClinicalScenario::ApplyPatientPolicies(lab);
  // Degrade the mediated schema: hide the names of the first N columns of
  // every source.
  for (auto* src : {hospital, pharmacy, lab}) {
    size_t hidden = 0;
    for (const auto& col : src->schema().columns()) {
      if (hidden >= hidden_columns_per_source) break;
      src->HideSchemaColumn(col.name);
      ++hidden;
    }
  }
  (void)bundle.system->Initialize();
  return bundle;
}

source::PiqlQuery Q(const std::string& body) {
  return *source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">" + body +
      "</query>");
}

void SelectionQualityTable() {
  // Ground truth relevance: drug only at pharmacy; diagnosis only at the
  // hospital; test results only at the lab; dob everywhere.
  struct Case {
    const char* body;
    size_t relevant;
  };
  const Case cases[] = {
      {"<select>drug</select>", 1},
      {"<select>diagnosis</select>", 1},
      {"<select>result</select>", 1},
      {"<select>dob</select>", 3},
      {"<select>dob</select><select>drug</select>", 3},
  };
  std::printf("--- Fragmenter source selection vs mediated-schema completeness "
              "---\n");
  std::printf("%-14s %-40s %-10s %-10s\n", "hidden cols", "query", "targeted",
              "relevant");
  for (size_t hidden : {0, 1, 2}) {
    auto bundle = BuildSystem(hidden);
    mediator::QueryFragmenter fragmenter(&bundle.system->mediated_schema(),
                                         source::DefaultClinicalNameMatcher());
    for (const Case& c : cases) {
      auto fragments = fragmenter.Fragment(
          Q(c.body), bundle.system->engine()->SourceOwners());
      if (!fragments.ok()) {
        std::printf("%-14zu %-40s resolution failed\n", hidden, c.body);
        continue;
      }
      std::printf("%-14zu %-40s %-10zu %-10zu\n", hidden, c.body,
                  fragments->fragments.size(), c.relevant);
    }
  }
  std::printf("(with a complete schema the fragmenter hits exactly the relevant "
              "sources; hiding schema names degrades routing toward broadcast "
              "or failure — the efficiency price of schema privacy)\n\n");
}

void BM_FragmentedQuery(benchmark::State& state) {
  auto bundle = BuildSystem(0);
  const auto q = Q("<select>drug</select>");
  for (auto _ : state) {
    auto result = bundle.system->Query(q);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("fragmenter routes to 1 source");
}
BENCHMARK(BM_FragmentedQuery)->Unit(benchmark::kMicrosecond);

void BM_BroadcastQuery(benchmark::State& state) {
  // Simulate a fragmenter-less mediator: send the drug fragment to every
  // source and let the irrelevant ones fail.
  auto bundle = BuildSystem(0);
  auto* engine = bundle.system->engine();
  const auto q = Q("<select>dob</select><select>drug</select>");
  (void)engine;
  for (auto _ : state) {
    auto result = bundle.system->Query(q);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("query touching all 3 sources");
}
BENCHMARK(BM_BroadcastQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  SelectionQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment abl-anon — k-anonymity as a preservation technique (refs [37],
// [28]): information loss vs k for the Samarati full-domain lattice
// anonymizer and the Mondrian multidimensional partitioner over synthetic
// patient microdata. Expected shape: loss grows with k; Mondrian dominates
// the single-dimension lattice on discernibility at every k.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "anonymity/hierarchy.h"
#include "anonymity/kanonymity.h"
#include "common/rng.h"

using namespace piye;
using namespace piye::anonymity;

namespace {

relational::Table MakeMicrodata(size_t rows, uint64_t seed) {
  Rng rng(seed);
  relational::Table t(relational::Schema{
      relational::Column{"age", relational::ColumnType::kInt64},
      relational::Column{"zip", relational::ColumnType::kInt64},
      relational::Column{"disease", relational::ColumnType::kString}});
  const char* dx[] = {"flu", "diabetes", "cancer", "asthma"};
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRowUnchecked(
        {relational::Value::Int(static_cast<int64_t>(18 + rng.NextBounded(70))),
         relational::Value::Int(static_cast<int64_t>(10000 + rng.NextBounded(500))),
         relational::Value::Str(dx[rng.NextBounded(4)])});
  }
  return t;
}

std::vector<QuasiIdentifier> LatticeQis() {
  return {{"age", std::make_shared<NumericHierarchy>(
                      0.0, std::vector<double>{5, 10, 25, 50})},
          {"zip", std::make_shared<NumericHierarchy>(
                      0.0, std::vector<double>{25, 100, 250})}};
}

void LossVsK() {
  const relational::Table data = MakeMicrodata(1000, 3);
  std::printf("--- Information loss vs k (1000 rows, QI = {age, zip}) ---\n");
  std::printf("%-6s %-22s %-22s %-14s\n", "k", "samarati discern.",
              "mondrian discern.", "samarati GenILoss");
  for (size_t k : {2, 5, 10, 20, 50}) {
    const KAnonymizer lattice(LatticeQis(), k, /*max_suppression=*/50);
    auto lresult = lattice.Anonymize(data);
    const Mondrian mondrian({"age", "zip"}, k);
    auto mresult = mondrian.Anonymize(data);
    if (!lresult.ok() || !mresult.ok()) continue;
    auto lmetrics =
        ComputeMetrics(lresult->table, {"age", "zip"}, lresult->suppressed_rows);
    auto mmetrics = ComputeMetrics(*mresult, {"age", "zip"});
    std::printf("%-6zu %-22.0f %-22.0f %-14.2f\n", k, lmetrics->discernibility,
                mmetrics->discernibility, lattice.GeneralizationLoss(lresult->levels));
  }
  std::printf("(Mondrian's multidimensional cuts beat full-domain "
              "generalization at every k)\n\n");
}

void LDiversityCheck() {
  const relational::Table data = MakeMicrodata(1000, 3);
  const Mondrian mondrian({"age", "zip"}, 8);
  auto result = mondrian.Anonymize(data);
  if (!result.ok()) return;
  std::printf("--- l-diversity of the k=8 Mondrian release ---\n");
  for (size_t l : {1, 2, 3, 4}) {
    auto diverse = IsLDiverse(*result, {"age", "zip"}, "disease", l);
    std::printf("  %zu-diverse: %s\n", l, diverse.ok() && *diverse ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_SamaratiAnonymize(benchmark::State& state) {
  const relational::Table data =
      MakeMicrodata(static_cast<size_t>(state.range(0)), 3);
  const KAnonymizer anonymizer(LatticeQis(), static_cast<size_t>(state.range(1)), 50);
  for (auto _ : state) {
    auto result = anonymizer.Anonymize(data);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SamaratiAnonymize)
    ->Args({1000, 5})
    ->Args({1000, 20})
    ->Args({4000, 5})
    ->Unit(benchmark::kMillisecond);

void BM_MondrianAnonymize(benchmark::State& state) {
  const relational::Table data =
      MakeMicrodata(static_cast<size_t>(state.range(0)), 3);
  const Mondrian mondrian({"age", "zip"}, static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto result = mondrian.Anonymize(data);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MondrianAnonymize)
    ->Args({1000, 5})
    ->Args({1000, 20})
    ->Args({4000, 5})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  LossVsK();
  LDiversityCheck();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment parallel-mediation — the mediation engine's concurrent
// fault-tolerant fragment fan-out as a performance object:
//
//   1. serial vs parallel wall clock over 1–16 autonomous sources, each with
//      injected per-source latency (the federated regime the paper assumes:
//      remote sources dominated by network/service time, not CPU);
//   2. a byte-identity audit: the parallel engine must integrate the exact
//      same answer as the serial engine on every scenario — fan-out is a
//      pure wall-clock optimization;
//   3. graceful degradation under injected faults: transient errors and a
//      hung source land in sources_skipped instead of failing the query.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/scenario.h"
#include "mediator/engine.h"
#include "relational/xml_bridge.h"
#include "source/remote_source.h"
#include "xml/parser.h"

using piye::core::ClinicalScenario;
using piye::mediator::MediationEngine;
using piye::mediator::QueryOptions;
using piye::source::RemoteSource;

namespace {

constexpr uint64_t kInjectedLatencyMicros = 1000;  // >= 1 ms per source

std::vector<std::unique_ptr<RemoteSource>> BuildSources(size_t n,
                                                        uint64_t latency_micros) {
  std::vector<std::unique_ptr<RemoteSource>> sources;
  for (size_t i = 0; i < n; ++i) {
    auto tables = ClinicalScenario::MakePatientTables(50, 0.3, 100 + i);
    auto src = std::make_unique<RemoteSource>("hospital" + std::to_string(i),
                                              "patients", std::move(tables.hospital),
                                              /*seed=*/i + 1);
    ClinicalScenario::ApplyPatientPolicies(src.get());
    if (latency_micros > 0) {
      RemoteSource::FaultInjection faults;
      faults.latency_micros = latency_micros;
      src->set_fault_injection(faults);
    }
    sources.push_back(std::move(src));
  }
  return sources;
}

std::unique_ptr<MediationEngine> BuildEngine(
    const std::vector<std::unique_ptr<RemoteSource>>& sources,
    size_t worker_threads) {
  MediationEngine::Options options;
  options.max_combined_loss = 0.95;
  options.max_cumulative_loss = 1e9;
  options.enable_warehouse = false;
  options.worker_threads = worker_threads;
  auto engine = std::make_unique<MediationEngine>(options);
  for (const auto& src : sources) (void)engine->RegisterSource(src.get());
  (void)engine->GenerateMediatedSchema("bench-key");
  return engine;
}

piye::source::PiqlQuery Query(const std::string& body) {
  auto q = piye::source::PiqlQuery::Parse(
      "<query requester=\"analyst\" purpose=\"research\" maxLoss=\"0.95\">" + body +
      "</query>");
  return *q;
}

std::string TableBytes(const piye::relational::Table& t) {
  return piye::xml::Serialize(*piye::relational::TableToXml(t, "t"), /*indent=*/-1);
}

double WallMillis(MediationEngine* engine, const piye::source::PiqlQuery& query,
                  const QueryOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(query, options);
  const auto end = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::printf("  !! query failed: %s\n", result.status().ToString().c_str());
    return -1.0;
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count() /
         1e6;
}

void PrintFanoutSweep() {
  std::printf("--- serial vs parallel fan-out (%.1f ms injected per-source "
              "latency) ---\n",
              kInjectedLatencyMicros / 1000.0);
  std::printf("%-8s %-12s %-12s %-9s %s\n", "sources", "serial(ms)", "parallel(ms)",
              "speedup", "byte-identical");
  const auto query = Query("<select>patient_id</select><select>sex</select>");
  for (size_t n : {1, 2, 4, 8, 16}) {
    auto sources = BuildSources(n, kInjectedLatencyMicros);
    auto serial = BuildEngine(sources, /*worker_threads=*/0);
    auto parallel = BuildEngine(sources, /*worker_threads=*/16);
    QueryOptions options;
    const double serial_ms = WallMillis(serial.get(), query, options);
    const double parallel_ms = WallMillis(parallel.get(), query, options);
    if (serial_ms < 0 || parallel_ms < 0) continue;
    auto rs = serial->Execute(query, options);
    auto rp = parallel->Execute(query, options);
    const bool identical =
        rs.ok() && rp.ok() && TableBytes(rs->table()) == TableBytes(rp->table());
    std::printf("%-8zu %-12.2f %-12.2f %-9.2f %s\n", n, serial_ms, parallel_ms,
                serial_ms / parallel_ms, identical ? "yes" : "NO — BUG");
  }
  std::printf("(serial cost grows ~linearly with source count; parallel stays "
              "near one source's latency — the engine hides autonomous-source "
              "delay behind concurrency)\n\n");
}

void PrintByteIdentityAudit() {
  // The heterogeneous 3-source clinical scenario every other bench uses
  // (hospital / pharmacy / lab), swept over the existing query shapes.
  std::printf("--- byte-identity audit: parallel vs serial on the clinical "
              "scenario ---\n");
  auto make_trio = [] {
    std::vector<std::unique_ptr<RemoteSource>> sources;
    auto tables = ClinicalScenario::MakePatientTables(200, 0.4, 11);
    sources.push_back(std::make_unique<RemoteSource>("hospital", "patients",
                                                     std::move(tables.hospital), 1));
    sources.push_back(std::make_unique<RemoteSource>("pharmacy", "rx",
                                                     std::move(tables.pharmacy), 2));
    sources.push_back(
        std::make_unique<RemoteSource>("lab", "tests", std::move(tables.lab), 3));
    for (auto& src : sources) ClinicalScenario::ApplyPatientPolicies(src.get());
    return sources;
  };
  struct Scenario {
    const char* name;
    const char* body;
    std::vector<std::string> dedup_keys;
  };
  const Scenario scenarios[] = {
      {"select-shared", "<select>patient_id</select><select>dob</select>", {}},
      {"select-single-source", "<select>diagnosis</select>", {}},
      {"select-filtered", "<select>patient_id</select><where>sex = 'F'</where>", {}},
      {"dedup-by-key",
       "<select>patient_id</select><select>drug</select>",
       {"patient_id"}},
  };
  auto sources = make_trio();
  auto serial = BuildEngine(sources, 0);
  auto parallel = BuildEngine(sources, 8);
  for (const auto& s : scenarios) {
    QueryOptions options;
    options.dedup_keys = s.dedup_keys;
    auto rs = serial->Execute(Query(s.body), options);
    auto rp = parallel->Execute(Query(s.body), options);
    const bool both_ok = rs.ok() && rp.ok();
    const bool identical = both_ok && TableBytes(rs->table()) == TableBytes(rp->table()) &&
                           rs->sources_answered == rp->sources_answered &&
                           rs->sources_skipped == rp->sources_skipped;
    std::printf("  %-22s %s\n", s.name,
                both_ok ? (identical ? "identical" : "DIVERGED — BUG")
                        : (rs.ok() == rp.ok() ? "both refused (identical)"
                                              : "DIVERGED — BUG"));
  }
  std::printf("\n");
}

void PrintDegradation() {
  std::printf("--- graceful degradation: 8 sources, 2 fault-injected ---\n");
  auto sources = BuildSources(8, kInjectedLatencyMicros);
  RemoteSource::FaultInjection erroring;
  erroring.error_rate = 1.0;
  erroring.seed = 7;
  sources[2]->set_fault_injection(erroring);
  RemoteSource::FaultInjection hanging;
  hanging.drop_rate = 1.0;
  hanging.hang_micros = 200'000;
  hanging.seed = 8;
  sources[5]->set_fault_injection(hanging);
  auto engine = BuildEngine(sources, 16);
  QueryOptions options;
  options.deadline_ms = 50;
  options.max_retries = 2;
  const auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(Query("<select>patient_id</select>"), options);
  const double ms =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count() /
      1e6;
  if (!result.ok()) {
    std::printf("  !! query failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  answered in %.2f ms by %zu/8 sources; skipped:\n", ms,
              result->sources_answered.size());
  for (const auto& [owner, reason] : result->sources_skipped) {
    std::printf("    %-12s %s\n", owner.c_str(), reason.c_str());
  }
  std::printf("  engine metrics: %s\n\n", engine->metrics()->ToJson().c_str());
}

void BM_SerialFanout(benchmark::State& state) {
  auto sources = BuildSources(static_cast<size_t>(state.range(0)),
                              kInjectedLatencyMicros);
  auto engine = BuildEngine(sources, /*worker_threads=*/0);
  const auto query = Query("<select>patient_id</select>");
  for (auto _ : state) {
    auto result = engine->Execute(query, QueryOptions{});
    benchmark::DoNotOptimize(result);
  }
  state.counters["sources"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SerialFanout)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ParallelFanout(benchmark::State& state) {
  auto sources = BuildSources(static_cast<size_t>(state.range(0)),
                              kInjectedLatencyMicros);
  auto engine = BuildEngine(sources, /*worker_threads=*/16);
  const auto query = Query("<select>patient_id</select>");
  for (auto _ : state) {
    auto result = engine->Execute(query, QueryOptions{});
    benchmark::DoNotOptimize(result);
  }
  state.counters["sources"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelFanout)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_DegradedQuery(benchmark::State& state) {
  auto sources = BuildSources(8, kInjectedLatencyMicros);
  RemoteSource::FaultInjection erroring;
  erroring.error_rate = 1.0;
  sources[2]->set_fault_injection(erroring);
  auto engine = BuildEngine(sources, 16);
  QueryOptions options;
  options.deadline_ms = 50;
  options.max_retries = 1;
  const auto query = Query("<select>patient_id</select>");
  for (auto _ : state) {
    auto result = engine->Execute(query, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DegradedQuery)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  piye::Logger::SetLevel(piye::LogLevel::kError);
  PrintFanoutSweep();
  PrintByteIdentityAudit();
  PrintDegradation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment abl-perturb — the paper's caution that data perturbation
// "is not foolproof in protecting data privacy" [29], and its utility side
// (Agrawal–Srikant reconstruction):
//   1. utility: distribution-reconstruction error vs noise sigma — the miner
//      keeps working even under heavy noise;
//   2. privacy: per-record protection vs sigma for i.i.d. data;
//   3. the attack: spectral filtering recovers correlated records well below
//      the noise floor — the Kargupta result the paper cites.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "perturb/noise.h"
#include "perturb/reconstruction.h"
#include "perturb/spectral_filter.h"

using namespace piye;
using namespace piye::perturb;

namespace {

void UtilityAndPrivacySweep() {
  std::printf("--- Additive noise: distribution utility vs per-record privacy "
              "---\n");
  std::printf("%-8s %-24s %-24s\n", "sigma", "recon L1 err (vs naive)",
              "mean |x' - x| per record");
  Rng rng(11);
  std::vector<double> original;
  for (int i = 0; i < 3000; ++i) {
    original.push_back(i % 2 == 0 ? rng.NextGaussian(30, 5) : rng.NextGaussian(70, 5));
  }
  DistributionReconstructor recon(0, 100, 20);
  const auto truth = recon.Bucketize(original);
  for (double sigma : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    Rng noise_rng(17);
    const AdditiveNoise noise(AdditiveNoise::Distribution::kGaussian, sigma);
    const auto perturbed = noise.Perturb(original, &noise_rng);
    auto f = recon.Reconstruct(perturbed, noise);
    if (!f.ok()) continue;
    const double err = DistributionReconstructor::L1Distance(truth, *f);
    const double naive =
        DistributionReconstructor::L1Distance(truth, recon.Bucketize(perturbed));
    double record_err = 0.0;
    for (size_t i = 0; i < original.size(); ++i) {
      record_err += std::fabs(perturbed[i] - original[i]);
    }
    record_err /= static_cast<double>(original.size());
    std::printf("%-8.1f %6.3f (naive %6.3f)%6s %-24.1f\n", sigma, err, naive, "",
                record_err);
  }
  std::printf("(reconstruction keeps the distribution usable while individual "
              "records drift by ~0.8*sigma — the Agrawal–Srikant trade)\n\n");
}

void SpectralAttackSweep() {
  std::printf("--- Spectral filtering attack on correlated data ---\n");
  std::printf("%-8s %-18s %-18s %-12s\n", "sigma", "rmse perturbed",
              "rmse after attack", "noise removed");
  Rng rng(23);
  const size_t n = 600, d = 6;
  std::vector<std::vector<double>> original(n, std::vector<double>(d));
  for (size_t r = 0; r < n; ++r) {
    const double latent = rng.NextUniform(0, 100);
    for (size_t j = 0; j < d; ++j) {
      original[r][j] =
          latent * (0.8 + 0.1 * static_cast<double>(j)) + rng.NextGaussian(0, 2);
    }
  }
  for (double sigma : {5.0, 10.0, 20.0, 40.0}) {
    Rng noise_rng(29);
    auto perturbed = original;
    for (auto& row : perturbed) {
      for (auto& x : row) x += noise_rng.NextGaussian(0, sigma);
    }
    const SpectralFilter filter(sigma * sigma);
    auto recovered = filter.Filter(perturbed);
    if (!recovered.ok()) continue;
    const double before = SpectralFilter::MatrixRmse(original, perturbed);
    const double after = SpectralFilter::MatrixRmse(original, *recovered);
    std::printf("%-8.1f %-18.2f %-18.2f %.0f%%\n", sigma, before, after,
                100.0 * (1.0 - after / before));
  }
  std::printf("(most of the added noise is stripped: input perturbation alone "
              "is NOT foolproof for correlated attributes)\n\n");
}

void BM_Reconstruction(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> original;
  for (int64_t i = 0; i < state.range(0); ++i) {
    original.push_back(rng.NextGaussian(50, 15));
  }
  const AdditiveNoise noise(AdditiveNoise::Distribution::kGaussian, 10.0);
  const auto perturbed = noise.Perturb(original, &rng);
  DistributionReconstructor recon(0, 100, 20);
  for (auto _ : state) {
    auto f = recon.Reconstruct(perturbed, noise);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_Reconstruction)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_SpectralFilter(benchmark::State& state) {
  Rng rng(23);
  const size_t n = static_cast<size_t>(state.range(0)), d = 6;
  std::vector<std::vector<double>> data(n, std::vector<double>(d));
  for (auto& row : data) {
    const double latent = rng.NextUniform(0, 100);
    for (auto& x : row) x = latent + rng.NextGaussian(0, 12);
  }
  const SpectralFilter filter(144.0);
  for (auto _ : state) {
    auto out = filter.Filter(data);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpectralFilter)->Arg(600)->Arg(2400)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  UtilityAndPrivacySweep();
  SpectralAttackSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#include "net/net_source.h"

#include "common/macros.h"
#include "xml/parser.h"

namespace piye {
namespace net {

Result<source::FederatedSource::FragmentResult> NetSource::ExecuteFragment(
    const source::PiqlQuery& fragment, const CancelToken& cancel) const {
  const std::string fragment_xml =
      xml::Serialize(*fragment.ToXml(), /*indent=*/-1);
  PIYE_ASSIGN_OR_RETURN(
      std::string result_xml,
      client_->ExecuteFragmentXml(owner_, fragment_xml, cancel));
  Result<xml::XmlDocument> doc = xml::Parse(result_xml);
  if (!doc.ok()) {
    // The frame CRC passed, so this is a malformed response body from the
    // server, not wire corruption — still a transport-class failure from
    // the engine's point of view (retry may hit a healthy replica path).
    return Status::Unavailable("source '" + owner_ +
                               "' returned unparseable result XML: " +
                               doc.status().message());
  }
  FragmentResult result;
  result.xml = doc->release_root();
  if (result.xml == nullptr) {
    return Status::Unavailable("source '" + owner_ +
                               "' returned an empty result document");
  }
  return result;
}

Result<std::vector<match::ColumnSketch>> NetSource::ExportSketches(
    const std::string& shared_key) const {
  return client_->FetchSketches(owner_, shared_key);
}

}  // namespace net
}  // namespace piye

#ifndef PIYE_NET_FAULT_H_
#define PIYE_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/cancel.h"
#include "net/transport.h"

namespace piye {
namespace net {

/// Seeded, deterministic transport-fault schedule — the wire-level successor
/// to `RemoteSource::FaultInjection`. Instead of simulating failures inside
/// the source's address space, these faults happen to the *bytes on the
/// wire*, so the framing layer, the server's decoder, the client's demux,
/// and every resilience mechanism above them (retries, breakers, quorum,
/// budget accounting) are exercised against exactly what a flaky network
/// does: dropped connections, torn frames, flipped bits, latency spikes,
/// and mid-response disconnects.
///
/// Decisions are drawn from an RNG stream derived from `seed` and a per-
/// operation counter, so a given plan misbehaves reproducibly in operation
/// order (the same convention the in-process hooks used).
struct FaultPlan {
  uint64_t seed = 0;
  /// Probability a write is swallowed and the connection killed (the peer
  /// sees an abrupt disconnect; applied before any bytes leave).
  double drop_write_rate = 0.0;
  /// Probability a write delivers only a strict prefix of its bytes and
  /// then kills the connection — a torn frame on the receiver.
  double tear_rate = 0.0;
  /// Probability one byte of a written buffer is flipped — a CRC failure on
  /// the receiver.
  double corrupt_rate = 0.0;
  /// Probability a read is answered with a dead connection instead of data
  /// (a mid-response disconnect when a response was in flight).
  double drop_read_rate = 0.0;
  /// Probability an operation first sleeps `delay_micros` (a latency
  /// spike; interruptible by the operation's deadline only insofar as the
  /// sleep is bounded, so keep it small relative to test deadlines).
  double delay_rate = 0.0;
  uint64_t delay_micros = 0;

  bool enabled() const {
    return drop_write_rate > 0 || tear_rate > 0 || corrupt_rate > 0 ||
           drop_read_rate > 0 || delay_rate > 0;
  }
};

/// Wraps a transport and applies a `FaultPlan` to every operation. Once a
/// fault kills the connection, every subsequent operation fails
/// `kUnavailable`, matching a real dead socket.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultPlan plan)
      : inner_(std::move(inner)), plan_(plan) {}

  Result<size_t> Read(char* buf, size_t len, TimePoint deadline) override;
  Status WriteAll(std::string_view data, TimePoint deadline) override;
  void Shutdown() override { inner_->Shutdown(); }

 private:
  /// One fault decision stream per operation, in operation order.
  struct Decision {
    bool drop = false;
    bool tear = false;
    bool corrupt = false;
    bool delay = false;
    size_t tear_prefix = 0;    ///< bytes delivered before the tear
    size_t corrupt_offset = 0; ///< which byte to flip
    uint8_t corrupt_mask = 1;  ///< which bit(s)
  };
  Decision Decide(bool is_write, size_t len, uint64_t op);

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  std::atomic<uint64_t> ops_{0};
  std::atomic<bool> killed_{false};
};

}  // namespace net
}  // namespace piye

#endif  // PIYE_NET_FAULT_H_

#ifndef PIYE_NET_NET_SOURCE_H_
#define PIYE_NET_NET_SOURCE_H_

#include <memory>
#include <string>
#include <utility>

#include "net/client.h"
#include "source/federated_source.h"

namespace piye {
namespace net {

/// `FederatedSource` backed by a source-server process over the wire
/// protocol — the drop-in that turns the mediation engine's federation into
/// a multi-process one. Registering a NetSource instead of a RemoteSource
/// changes nothing above this seam: fan-out, retries, deadlines, breakers,
/// quorum, and budget accounting all operate on the same status vocabulary,
/// which the wire carries verbatim (a privacy refusal arrives as
/// `kPrivacyViolation`, an unreachable server as `kUnavailable` with connect
/// detail, an expired budget as `kDeadlineExceeded`).
///
/// Several NetSources share one NetClient when their sources live in the
/// same server process (one connection pool per process, not per source).
class NetSource : public source::FederatedSource {
 public:
  NetSource(std::string owner, std::shared_ptr<NetClient> client)
      : owner_(std::move(owner)), client_(std::move(client)) {}

  const std::string& owner() const override { return owner_; }

  Result<FragmentResult> ExecuteFragment(
      const source::PiqlQuery& fragment,
      const CancelToken& cancel = {}) const override;

  Result<std::vector<match::ColumnSketch>> ExportSketches(
      const std::string& shared_key) const override;

  source::TransportStats transport_stats() const override {
    return client_->stats();
  }

  const std::shared_ptr<NetClient>& client() const { return client_; }

 private:
  std::string owner_;
  std::shared_ptr<NetClient> client_;
};

}  // namespace net
}  // namespace piye

#endif  // PIYE_NET_NET_SOURCE_H_

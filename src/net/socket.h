#ifndef PIYE_NET_SOCKET_H_
#define PIYE_NET_SOCKET_H_

#include <chrono>
#include <string>

#include "common/result.h"

namespace piye {
namespace net {

using TimePoint = std::chrono::steady_clock::time_point;

/// "No deadline": the steady clock's far future, matching the convention of
/// `CancelToken::deadline()`.
inline TimePoint NoDeadline() { return TimePoint::max(); }

/// RAII wrapper around a connected (or listening) socket file descriptor.
/// Move-only; the destructor closes. `Shutdown` is the cross-thread wakeup:
/// it makes any blocked read/poll on the fd return immediately (EOF/error)
/// without racing `close` against a concurrent reader.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// shutdown(SHUT_RDWR): wakes every thread blocked on this fd. Safe to
  /// call from any thread, repeatedly.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
};

/// Dials `address` — "unix:<path>" or "tcp:<host>:<port>" — with a connect
/// deadline. Failures (refused, unreachable, no such path) are
/// `kUnavailable` with the address and errno detail; an expired deadline is
/// `kDeadlineExceeded`. A malformed address is `kInvalidArgument`.
Result<Socket> Dial(const std::string& address, TimePoint deadline);

/// A listening socket. For "tcp:host:0" the kernel picks the port;
/// `bound_address()` reports the resolved one. Unix-socket paths are
/// unlinked on Close (and any stale file is unlinked before binding).
class Listener {
 public:
  static Result<Listener> Listen(const std::string& address, int backlog = 64);

  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  /// Blocks for one connection up to `deadline`. `kDeadlineExceeded` on
  /// timeout; `kUnavailable` once the listener was shut down or closed.
  Result<Socket> Accept(TimePoint deadline);

  const std::string& bound_address() const { return bound_; }
  bool valid() const { return sock_.valid(); }

  /// Wakes a blocked Accept (which then fails kUnavailable).
  void Shutdown() { sock_.Shutdown(); }
  void Close();

 private:
  Socket sock_;
  std::string bound_;
  std::string unlink_path_;  ///< unix-socket file to remove on Close
};

/// Millisecond poll timeout for `deadline`: -1 for NoDeadline, else the
/// remaining time clamped to >= 0.
int PollTimeoutMs(TimePoint deadline);

}  // namespace net
}  // namespace piye

#endif  // PIYE_NET_SOCKET_H_

#ifndef PIYE_NET_SERVER_H_
#define PIYE_NET_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>  // piye-lint: allow(header-hygiene) the server owns its accept thread
#include <vector>

#include "common/cancel.h"
#include "common/executor.h"
#include "common/result.h"
#include "common/sync.h"
#include "net/fault.h"
#include "net/frame.h"
#include "net/socket.h"
#include "source/federated_source.h"

namespace piye {
namespace net {

struct ServerConfig {
  /// "unix:<path>" or "tcp:<host>:<port>" (port 0 = kernel-assigned; the
  /// bound address is reported by `bound_address()` after Start).
  std::string listen_address = "tcp:127.0.0.1:0";
  /// Workers executing query fragments (requests multiplex onto this pool,
  /// so one slow fragment never blocks the connection's other requests).
  size_t worker_threads = 4;
  /// A connected client must complete the Hello exchange within this bound
  /// or the connection is dropped (protects the accept loop from dead or
  /// hostile peers).
  uint64_t handshake_timeout_ms = 5000;
  /// How long a quiet connection may sit between frames before the server
  /// checks for shutdown. Idle ticks are cheap; this is a poll cadence, not
  /// a client obligation.
  uint64_t idle_timeout_ms = 250;
  /// Once a frame's first byte arrives the rest must land within this bound
  /// (a stalled sender cannot wedge a connection handler).
  uint64_t frame_timeout_ms = 5000;
  /// Stop(): how long to wait for in-flight requests to finish after the
  /// listener closes before giving up on the drain.
  uint64_t drain_timeout_ms = 2000;
  size_t max_frame_payload = kDefaultMaxPayload;
  /// Wire-level fault injection applied to every accepted connection (tests
  /// and chaos benchmarks; leave zeroed in production paths).
  FaultPlan fault;
};

/// Hosts `FederatedSource` instances behind the PIYE wire protocol — one of
/// these per source process turns the in-process federation into a true
/// multi-process one. Per connection: a handler thread reads frames, Execute
/// and Sketch requests are dispatched to the worker pool tagged with their
/// request id, and responses are written back under a per-connection write
/// lock (so concurrent completions interleave at frame granularity, never
/// mid-frame). A CancelRequest fires the corresponding in-flight request's
/// CancelSource.
///
/// Stop() drains gracefully: the listener closes first (no new
/// connections), in-flight requests get `drain_timeout_ms` to finish, then
/// connections are shut down and every thread joined.
class SourceServer {
 public:
  explicit SourceServer(ServerConfig config);
  ~SourceServer();

  SourceServer(const SourceServer&) = delete;
  SourceServer& operator=(const SourceServer&) = delete;

  /// Registers a source (not owned; must outlive the server). All sources
  /// must be added before Start.
  void AddSource(const source::FederatedSource* source);

  Status Start();
  void Stop();

  /// The resolved listen address ("tcp:127.0.0.1:<port>" with the real
  /// port). Valid after Start.
  const std::string& bound_address() const { return bound_address_; }

  /// Total connections accepted (diagnostics).
  uint64_t connections_accepted() const;

 private:
  struct Connection;

  void AcceptLoop();
  void HandleConnection(std::shared_ptr<Connection> conn);
  void DispatchExecute(std::shared_ptr<Connection> conn, Frame frame);
  void DispatchSketch(std::shared_ptr<Connection> conn, Frame frame);
  Status WriteResponse(Connection& conn, const Frame& frame);
  const source::FederatedSource* FindSource(const std::string& owner) const;

  ServerConfig config_;
  std::map<std::string, const source::FederatedSource*> sources_;
  std::string bound_address_;

  std::unique_ptr<Listener> listener_;
  std::unique_ptr<Executor> workers_;
  // piye-lint: allow(raw-thread) accept loop; joined in Stop
  std::thread accept_thread_;

  mutable Mutex mu_;
  CondVar drain_cv_;
  /// Start/Stop are not concurrent with each other (caller contract), so
  /// `started_` needs no capability; everything the accept loop and the
  /// worker tasks share is guarded below.
  bool started_ = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Requests dispatched but not yet responded.
  size_t outstanding_ GUARDED_BY(mu_) = 0;
  uint64_t connections_accepted_ GUARDED_BY(mu_) = 0;
  std::vector<std::shared_ptr<Connection>> connections_ GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace piye

#endif  // PIYE_NET_SERVER_H_

#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>  // piye-lint: allow(raw-thread) per-connection reader threads
#include <utility>

#include "common/macros.h"
#include "net/transport.h"
#include "net/wire.h"

namespace piye {
namespace net {

namespace {

TimePoint After(uint64_t ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

/// The earlier of a token's deadline and `fallback`.
TimePoint EffectiveDeadline(const CancelToken& cancel, TimePoint fallback) {
  return cancel.has_deadline() ? std::min(cancel.deadline(), fallback)
                               : fallback;
}

}  // namespace

/// One in-flight request, parked in its connection's pending table until the
/// reader thread demuxes the matching response (or the connection dies).
struct NetClient::Pending {
  Mutex mu;
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  Status status GUARDED_BY(mu) = Status::OK();
  Frame response GUARDED_BY(mu);

  void Complete(Status s, Frame f) {
    {
      MutexLock lock(mu);
      if (done) return;
      done = true;
      status = std::move(s);
      response = std::move(f);
    }
    cv.NotifyAll();
  }
};

/// Connection lifecycle: `transport` is destroyed only after `reader` is
/// joined (the reader blocks inside ReadFrame on it). A dead connection is
/// therefore marked `broken` — transport shut down, pending requests failed
/// — and the actual teardown + redial happens lazily in EnsureConnected,
/// which joins the reader first. `generation` fences stale teardown reports.
struct NetClient::Conn {
  Mutex mu;
  /// Null ⇒ never connected / torn down. The raw pointer is copied out under
  /// `mu` and used lock-free by the reader/writer: destruction only happens
  /// after the reader is joined, so the copy cannot dangle.
  std::unique_ptr<Transport> transport GUARDED_BY(mu);
  bool broken GUARDED_BY(mu) = false;  ///< shut down, awaiting redial
  uint64_t generation GUARDED_BY(mu) = 0;
  // piye-lint: allow(raw-thread) dedicated reader, joined before teardown
  std::thread reader GUARDED_BY(mu);
  std::map<uint64_t, std::shared_ptr<Pending>> pending GUARDED_BY(mu);
  /// Window occupancy (includes requests being written).
  size_t inflight GUARDED_BY(mu) = 0;
  CondVar window_cv;
  bool ever_connected GUARDED_BY(mu) = false;

  Mutex write_mu;  ///< serializes frame writes; acquired before `mu`

  bool usable() const REQUIRES(mu) { return transport != nullptr && !broken; }
};

NetClient::NetClient(ClientConfig config) : config_(std::move(config)) {
  const size_t n = std::max<size_t>(1, config_.connections);
  conns_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    conns_.push_back(std::make_shared<Conn>());
  }
}

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (closed_.exchange(true)) return;
  for (auto& conn : conns_) {
    std::thread reader;  // piye-lint: allow(raw-thread) joined just below
    {
      MutexLock lock(conn->mu);
      if (conn->transport != nullptr) conn->transport->Shutdown();
      conn->broken = true;
      reader = std::move(conn->reader);
    }
    if (reader.joinable()) reader.join();
    std::map<uint64_t, std::shared_ptr<Pending>> orphaned;
    {
      MutexLock lock(conn->mu);
      orphaned.swap(conn->pending);
      conn->transport.reset();  // reader joined; safe to destroy
      conn->window_cv.NotifyAll();
    }
    for (auto& [id, pending] : orphaned) {
      pending->Complete(Status::Unavailable("client closed"), Frame{});
    }
  }
}

source::TransportStats NetClient::stats() const {
  source::TransportStats s;
  s.over_network = true;
  s.connects = connects_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.connect_failures = connect_failures_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.corrupt_frames = corrupt_frames_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  return s;
}

void NetClient::FailConnection(Conn& conn, uint64_t generation,
                               const Status& reason) {
  std::map<uint64_t, std::shared_ptr<Pending>> orphaned;
  {
    MutexLock lock(conn.mu);
    if (conn.generation != generation) return;  // a newer connection took over
    if (conn.broken || conn.transport == nullptr) return;  // already torn down
    conn.broken = true;
    conn.transport->Shutdown();  // wakes the reader; destruction waits for it
    orphaned.swap(conn.pending);
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    conn.window_cv.NotifyAll();
  }
  for (auto& [id, pending] : orphaned) {
    pending->Complete(reason, Frame{});
  }
}

void NetClient::ReaderLoop(std::shared_ptr<Conn> conn, uint64_t generation) {
  const auto frame_timeout = std::chrono::milliseconds(config_.frame_timeout_ms);
  for (;;) {
    Transport* transport = nullptr;
    {
      MutexLock lock(conn->mu);
      if (conn->generation != generation || !conn->usable()) return;
      transport = conn->transport.get();
    }
    // Idle reads have no deadline: Shutdown() is the wakeup. The pointer
    // stays valid because EnsureConnected/Close join this thread before
    // destroying the transport.
    Result<Frame> frame = ReadFrame(*transport, NoDeadline(), frame_timeout,
                                    config_.max_frame_payload);
    if (!frame.ok()) {
      if (frame.status().IsInvalidArgument()) {
        // Corrupt or torn frame: the stream is unrecoverable.
        corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
      }
      FailConnection(*conn, generation,
                     Status::Unavailable("connection to '" + config_.address +
                                         "' lost: " + frame.status().message()));
      return;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<Pending> pending;
    {
      MutexLock lock(conn->mu);
      if (conn->generation != generation) return;
      auto it = conn->pending.find(frame->request_id);
      if (it != conn->pending.end()) {
        pending = it->second;
        conn->pending.erase(it);
      }
    }
    // A response with no waiter is a request we abandoned on deadline —
    // drop it on the floor.
    if (pending != nullptr) {
      pending->Complete(Status::OK(), std::move(*frame));
    }
  }
}

Status NetClient::EnsureConnected(std::shared_ptr<Conn> conn,
                                  const CancelToken& cancel) {
  {
    MutexLock lock(conn->mu);
    if (conn->usable()) return Status::OK();
  }
  // A broken connection's reader exits promptly (its transport was shut
  // down); join it before destroying the transport it may be reading.
  // piye-lint: allow(raw-thread) joined just below
  std::thread old_reader;
  {
    MutexLock lock(conn->mu);
    if (conn->usable()) return Status::OK();  // another caller redialed
    old_reader = std::move(conn->reader);
  }
  if (old_reader.joinable()) old_reader.join();
  {
    MutexLock lock(conn->mu);
    if (conn->usable()) return Status::OK();
    if (!conn->reader.joinable()) conn->transport.reset();
  }

  Status last = Status::Unavailable("never dialed");
  uint64_t backoff_ms = config_.backoff_initial_ms;
  for (size_t attempt = 0;
       attempt < std::max<size_t>(1, config_.max_dial_attempts); ++attempt) {
    if (closed_.load()) return Status::Unavailable("client closed");
    PIYE_RETURN_NOT_OK(cancel.Check());
    if (attempt > 0) {
      // Interruptible backoff: a fired token stops the wait mid-sleep.
      if (!cancel.SleepFor(std::chrono::milliseconds(backoff_ms)) &&
          cancel.can_fire() && cancel.cancelled()) {
        return cancel.status();
      }
      backoff_ms = std::min(backoff_ms * 2, config_.backoff_cap_ms);
    }
    const TimePoint dial_deadline =
        EffectiveDeadline(cancel, After(config_.connect_timeout_ms));
    Result<Socket> sock = Dial(config_.address, dial_deadline);
    if (!sock.ok()) {
      connect_failures_.fetch_add(1, std::memory_order_relaxed);
      last = sock.status();
      if (last.IsDeadlineExceeded() && cancel.cancelled()) {
        return cancel.status();
      }
      continue;
    }
    std::unique_ptr<Transport> transport =
        std::make_unique<SocketTransport>(std::move(*sock));
    if (config_.fault.enabled()) {
      // Each dial gets a distinct fault stream so reconnects do not replay
      // the first connection's failure schedule verbatim.
      FaultPlan plan = config_.fault;
      plan.seed ^=
          0x517CC1B727220A95ULL * (connects_.load() + attempt + 1);
      transport = std::make_unique<FaultInjectingTransport>(
          std::move(transport), plan);
    }

    // Handshake: Hello out, HelloAck back, both within the hello bound.
    const TimePoint hello_deadline =
        EffectiveDeadline(cancel, After(config_.hello_timeout_ms));
    Frame hello;
    hello.type = MessageType::kHello;
    hello.payload = EncodeHello("piye-mediator");
    Status hs = WriteFrame(*transport, hello, hello_deadline);
    if (hs.ok()) {
      Result<Frame> ack =
          ReadFrame(*transport, hello_deadline,
                    std::chrono::milliseconds(config_.frame_timeout_ms),
                    config_.max_frame_payload);
      if (!ack.ok()) {
        hs = ack.status();
      } else if (ack->type != MessageType::kHelloAck) {
        hs = Status::InvalidArgument("expected HelloAck, got " +
                                     std::string(MessageTypeName(ack->type)));
      } else {
        Result<std::vector<std::string>> owners = DecodeHelloAck(ack->payload);
        if (!owners.ok()) {
          hs = owners.status();
        } else {
          MutexLock lock(owners_mu_);
          owners_ = std::move(*owners);
        }
      }
    }
    if (!hs.ok()) {
      connect_failures_.fetch_add(1, std::memory_order_relaxed);
      if (hs.IsInvalidArgument()) return hs;  // wrong protocol; don't retry
      last = Status::Unavailable("handshake with '" + config_.address +
                                 "' failed: " + hs.message());
      continue;
    }

    connects_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(conn->mu);
      if (conn->usable()) return Status::OK();  // lost the redial race
      if (conn->ever_connected) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
      }
      conn->ever_connected = true;
      conn->transport = std::move(transport);
      conn->broken = false;
      conn->generation += 1;
      const uint64_t generation = conn->generation;
      conn->reader =  // piye-lint: allow(raw-thread) reader thread spawn
          std::thread([this, conn, generation] { ReaderLoop(conn, generation); });
    }
    return Status::OK();
  }
  return Status::Unavailable(
      "source at '" + config_.address + "' unreachable after " +
      std::to_string(std::max<size_t>(1, config_.max_dial_attempts)) +
      " attempts: " + last.message());
}

Result<Frame> NetClient::DoRequest(MessageType type, std::string payload,
                                   MessageType expected_response,
                                   const CancelToken& cancel) {
  if (closed_.load()) return Status::Unavailable("client closed");
  auto conn = conns_[round_robin_.fetch_add(1, std::memory_order_relaxed) %
                     conns_.size()];
  PIYE_RETURN_NOT_OK(EnsureConnected(conn, cancel));

  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto pending = std::make_shared<Pending>();
  uint64_t generation = 0;
  {
    MutexLock lock(conn->mu);
    // Backpressure: wait for a window slot, bounded by the token deadline.
    const TimePoint wait_deadline =
        cancel.has_deadline() ? cancel.deadline() : NoDeadline();
    while (conn->inflight >= config_.max_inflight_per_connection) {
      if (closed_.load()) return Status::Unavailable("client closed");
      PIYE_RETURN_NOT_OK(cancel.Check());
      if (!conn->usable()) {
        return Status::Unavailable(
            "connection lost while awaiting a window slot");
      }
      if (wait_deadline == NoDeadline()) {
        conn->window_cv.WaitFor(lock, std::chrono::milliseconds(50));
      } else if (conn->window_cv.WaitUntil(lock, wait_deadline) ==
                 std::cv_status::timeout) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return Status::DeadlineExceeded(
            "deadline expired awaiting a request window slot");
      }
    }
    if (!conn->usable()) {
      return Status::Unavailable("connection lost before the request was sent");
    }
    generation = conn->generation;
    conn->inflight += 1;
    conn->pending.emplace(request_id, pending);
  }

  // Releases the window slot (and, on abnormal exits, the pending entry).
  auto cleanup = [&](bool erase_pending) {
    MutexLock lock(conn->mu);
    if (erase_pending) conn->pending.erase(request_id);
    conn->inflight -= 1;
    conn->window_cv.NotifyOne();
  };

  Frame request;
  request.type = type;
  request.request_id = request_id;
  request.payload = std::move(payload);
  {
    MutexLock write_lock(conn->write_mu);
    Transport* transport = nullptr;
    {
      MutexLock lock(conn->mu);
      if (conn->generation == generation && conn->usable()) {
        transport = conn->transport.get();
      }
    }
    if (transport == nullptr) {
      cleanup(/*erase_pending=*/true);
      return Status::Unavailable("connection lost before the request was sent");
    }
    const TimePoint write_deadline =
        EffectiveDeadline(cancel, After(config_.frame_timeout_ms));
    const Status written = WriteFrame(*transport, request, write_deadline);
    if (!written.ok()) {
      cleanup(/*erase_pending=*/true);
      if (written.IsDeadlineExceeded()) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return written;
      }
      FailConnection(*conn, generation, Status::Unavailable(written.message()));
      return Status::Unavailable("request write to '" + config_.address +
                                 "' failed: " + written.message());
    }
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
  }

  // Wait for the reader to demux our response, the token to fire, or the
  // connection to die (FailConnection completes us with kUnavailable).
  Status fired = Status::OK();  ///< non-OK once the token aborts the wait
  Status status = Status::OK();
  Frame response;
  {
    MutexLock pending_lock(pending->mu);
    while (!pending->done) {
      if (!cancel.can_fire()) {
        pending->cv.Wait(pending_lock);
        continue;
      }
      fired = cancel.Check();
      if (fired.ok()) {
        pending->cv.WaitFor(pending_lock, std::chrono::milliseconds(10));
        continue;
      }
      break;  // abandon the request below, outside the lock
    }
    if (fired.ok()) {
      status = pending->status;
      response = std::move(pending->response);
    }
  }
  if (!fired.ok()) {
    // Best-effort cancel so the server stops burning work on an abandoned
    // query. Failure just means the connection is already dead.
    Frame cancel_frame;
    cancel_frame.type = MessageType::kCancelRequest;
    cancel_frame.request_id = request_id;
    {
      MutexLock write_lock(conn->write_mu);
      Transport* transport = nullptr;
      {
        MutexLock lock(conn->mu);
        if (conn->generation == generation && conn->usable()) {
          transport = conn->transport.get();
        }
      }
      if (transport != nullptr &&
          WriteFrame(*transport, cancel_frame, After(50)).ok()) {
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    cleanup(/*erase_pending=*/true);
    if (fired.IsDeadlineExceeded()) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    return fired;
  }
  cleanup(/*erase_pending=*/false);  // whoever completed us removed the entry

  PIYE_RETURN_NOT_OK(status);
  if (response.type != expected_response) {
    return Status::InvalidArgument(
        std::string("expected ") + MessageTypeName(expected_response) +
        ", got " + MessageTypeName(response.type));
  }
  return response;
}

Result<std::string> NetClient::ExecuteFragmentXml(
    const std::string& owner, const std::string& fragment_xml,
    const CancelToken& cancel) {
  ExecuteRequest req;
  req.owner = owner;
  req.fragment_xml = fragment_xml;
  if (cancel.has_deadline()) {
    const auto remaining = cancel.deadline() - std::chrono::steady_clock::now();
    if (remaining <= std::chrono::milliseconds(0)) {
      return Status::DeadlineExceeded("deadline expired before dispatch");
    }
    req.deadline_budget_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count());
    if (req.deadline_budget_ms == 0) req.deadline_budget_ms = 1;
  }
  PIYE_ASSIGN_OR_RETURN(
      Frame response,
      DoRequest(MessageType::kExecuteRequest, EncodeExecuteRequest(req),
                MessageType::kExecuteResponse, cancel));
  PIYE_ASSIGN_OR_RETURN(ExecuteResponse resp,
                        DecodeExecuteResponse(response.payload));
  PIYE_RETURN_NOT_OK(resp.status);
  return std::move(resp.result_xml);
}

Result<std::vector<match::ColumnSketch>> NetClient::FetchSketches(
    const std::string& owner, const std::string& shared_key) {
  SketchRequest req;
  req.owner = owner;
  req.shared_key = shared_key;
  PIYE_ASSIGN_OR_RETURN(
      Frame response,
      DoRequest(MessageType::kSketchRequest, EncodeSketchRequest(req),
                MessageType::kSketchResponse, CancelToken()));
  PIYE_ASSIGN_OR_RETURN(SketchResponse resp,
                        DecodeSketchResponse(response.payload));
  PIYE_RETURN_NOT_OK(resp.status);
  return std::move(resp.sketches);
}

Result<std::vector<std::string>> NetClient::ListOwners() {
  if (closed_.load()) return Status::Unavailable("client closed");
  PIYE_RETURN_NOT_OK(EnsureConnected(conns_[0], CancelToken()));
  MutexLock lock(owners_mu_);
  return owners_;
}

}  // namespace net
}  // namespace piye

#include "net/frame.h"

#include <cstring>

#include "common/macros.h"
#include "persist/codec.h"

namespace piye {
namespace net {

namespace {

void PutU16LE(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32LE(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64LE(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint16_t GetU16LE(const char* p) {
  const auto* u = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint16_t>(u[0]) | static_cast<uint16_t>(u[1]) << 8;
}

uint32_t GetU32LE(const char* p) {
  const auto* u = reinterpret_cast<const uint8_t*>(p);
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

uint64_t GetU64LE(const char* p) {
  const auto* u = reinterpret_cast<const uint8_t*>(p);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

/// Reads exactly `len` bytes. A clean EOF before any byte of this call is a
/// `kUnavailable` ("peer closed"); a timeout is passed through from the
/// transport. The caller decides (by choosing the deadline) whether a
/// timeout is an idle tick or a mid-frame stall.
Status ReadExact(Transport& transport, char* buf, size_t len,
                 TimePoint deadline) {
  size_t off = 0;
  while (off < len) {
    PIYE_ASSIGN_OR_RETURN(const size_t n,
                          transport.Read(buf + off, len - off, deadline));
    if (n == 0) {
      return Status::Unavailable("peer closed the connection");
    }
    off += n;
  }
  return Status::OK();
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "Hello";
    case MessageType::kHelloAck: return "HelloAck";
    case MessageType::kExecuteRequest: return "ExecuteRequest";
    case MessageType::kExecuteResponse: return "ExecuteResponse";
    case MessageType::kSketchRequest: return "SketchRequest";
    case MessageType::kSketchResponse: return "SketchResponse";
    case MessageType::kCancelRequest: return "CancelRequest";
    case MessageType::kGoodbye: return "Goodbye";
  }
  return "Unknown";
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
  PutU32LE(out, kFrameMagic);
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(frame.type));
  PutU16LE(out, 0);  // flags (reserved)
  PutU64LE(out, frame.request_id);
  PutU32LE(out, static_cast<uint32_t>(frame.payload.size()));
  PutU32LE(out, persist::Crc32(out.data(), out.size()));
  out.append(frame.payload);
  PutU32LE(out, persist::Crc32(frame.payload));
  return out;
}

Status WriteFrame(Transport& transport, const Frame& frame,
                  TimePoint deadline) {
  if (frame.payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("frame payload exceeds wire limit");
  }
  return transport.WriteAll(EncodeFrame(frame), deadline);
}

Result<Frame> ReadFrame(Transport& transport, TimePoint idle_deadline,
                        std::chrono::milliseconds frame_timeout,
                        size_t max_payload) {
  char header[kFrameHeaderBytes];

  // First byte: an expiry here means the peer is merely quiet, and the
  // stream is still in sync — report kDeadlineExceeded and let the caller
  // loop. Everything after the first byte runs against the frame timeout;
  // any failure past this point means the stream cannot be trusted.
  PIYE_ASSIGN_OR_RETURN(const size_t first,
                        transport.Read(header, 1, idle_deadline));
  if (first == 0) {
    return Status::Unavailable("peer closed the connection");
  }
  const TimePoint frame_deadline =
      std::chrono::steady_clock::now() + frame_timeout;
  Status rest = ReadExact(transport, header + 1, kFrameHeaderBytes - 1,
                          frame_deadline);
  if (!rest.ok()) {
    if (rest.IsDeadlineExceeded()) {
      return Status::Unavailable("frame header stalled mid-read: " +
                                 rest.message());
    }
    return rest;
  }

  // Validate the header before trusting any field in it.
  const uint32_t stored_header_crc = GetU32LE(header + 20);
  const uint32_t actual_header_crc = persist::Crc32(header, 20);
  if (stored_header_crc != actual_header_crc) {
    return Status::InvalidArgument("frame header CRC mismatch");
  }
  if (GetU32LE(header) != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint8_t version = static_cast<uint8_t>(header[4]);
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  const uint8_t raw_type = static_cast<uint8_t>(header[5]);
  if (raw_type < static_cast<uint8_t>(MessageType::kHello) ||
      raw_type > static_cast<uint8_t>(MessageType::kGoodbye)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(raw_type));
  }
  if (GetU16LE(header + 6) != 0) {
    return Status::InvalidArgument("nonzero reserved frame flags");
  }
  const uint32_t payload_len = GetU32LE(header + 16);
  if (payload_len > max_payload) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload_len) +
                                   " bytes exceeds limit of " +
                                   std::to_string(max_payload));
  }

  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.request_id = GetU64LE(header + 8);
  frame.payload.resize(payload_len);
  char trailer[kFrameTrailerBytes];
  if (payload_len > 0) {
    rest = ReadExact(transport, frame.payload.data(), payload_len,
                     frame_deadline);
    if (!rest.ok()) {
      if (rest.IsDeadlineExceeded()) {
        return Status::Unavailable("frame payload stalled mid-read: " +
                                   rest.message());
      }
      return rest;
    }
  }
  rest = ReadExact(transport, trailer, kFrameTrailerBytes, frame_deadline);
  if (!rest.ok()) {
    if (rest.IsDeadlineExceeded()) {
      return Status::Unavailable("frame trailer stalled mid-read: " +
                                 rest.message());
    }
    return rest;
  }
  const uint32_t stored_payload_crc = GetU32LE(trailer);
  if (stored_payload_crc != persist::Crc32(frame.payload)) {
    return Status::InvalidArgument("frame payload CRC mismatch");
  }
  return frame;
}

}  // namespace net
}  // namespace piye

#include "net/wire.h"

#include <utility>

#include "common/macros.h"
#include "linkage/bloom.h"
#include "persist/codec.h"

namespace piye {
namespace net {

namespace {

using persist::Decoder;
using persist::Encoder;

Status CheckSchemaVersion(Decoder& dec, const char* what) {
  PIYE_ASSIGN_OR_RETURN(const uint8_t version, dec.GetU8());
  if (version != kWireSchemaVersion) {
    return Status::InvalidArgument(std::string(what) +
                                   ": unsupported schema version " +
                                   std::to_string(version));
  }
  return Status::OK();
}

Status CheckExhausted(const Decoder& dec, const char* what) {
  if (!dec.exhausted()) {
    return Status::InvalidArgument(std::string(what) + ": " +
                                   std::to_string(dec.remaining()) +
                                   " trailing bytes");
  }
  return Status::OK();
}

constexpr uint16_t kMaxStatusCode =
    static_cast<uint16_t>(StatusCode::kCancelled);

void PutStatus(Encoder& enc, const Status& status) {
  enc.PutU16(static_cast<uint16_t>(status.code()));
  enc.PutString(status.message());
}

/// Result<Status> is ill-formed (the error and value constructors collide),
/// so the decoded status goes out by pointer.
Status GetStatus(Decoder& dec, Status* out) {
  PIYE_ASSIGN_OR_RETURN(const uint16_t code, dec.GetU16());
  if (code > kMaxStatusCode) {
    return Status::InvalidArgument("status code " + std::to_string(code) +
                                   " out of range");
  }
  PIYE_ASSIGN_OR_RETURN(std::string message, dec.GetString());
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

void PutSketch(Encoder& enc, const match::ColumnSketch& sketch) {
  enc.PutString(sketch.ref.source);
  enc.PutString(sketch.ref.table);
  enc.PutString(sketch.ref.column);
  enc.PutU8(sketch.name_public ? 1 : 0);
  enc.PutU8(static_cast<uint8_t>(sketch.type));
  enc.PutDouble(sketch.mean_length);
  enc.PutDouble(sketch.digit_ratio);
  enc.PutDouble(sketch.alpha_ratio);
  enc.PutDouble(sketch.distinct_ratio);
  enc.PutDouble(sketch.numeric_mean);
  enc.PutDouble(sketch.numeric_stddev);
  if (sketch.value_filter.has_value()) {
    const linkage::BloomFilter& filter = *sketch.value_filter;
    enc.PutU8(1);
    enc.PutU64(filter.num_bits());
    enc.PutU64(filter.num_hashes());
    // Bits packed 8-per-byte, LSB-first.
    const std::vector<bool>& bits = filter.bits();
    std::string packed((bits.size() + 7) / 8, '\0');
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) packed[i / 8] |= static_cast<char>(1u << (i % 8));
    }
    enc.PutString(packed);
  } else {
    enc.PutU8(0);
  }
}

Result<match::ColumnSketch> GetSketch(Decoder& dec) {
  match::ColumnSketch sketch;
  PIYE_ASSIGN_OR_RETURN(sketch.ref.source, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(sketch.ref.table, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(sketch.ref.column, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(const uint8_t name_public, dec.GetU8());
  sketch.name_public = name_public != 0;
  PIYE_ASSIGN_OR_RETURN(const uint8_t raw_type, dec.GetU8());
  if (raw_type > static_cast<uint8_t>(relational::ColumnType::kBool)) {
    return Status::InvalidArgument("sketch column type " +
                                   std::to_string(raw_type) + " out of range");
  }
  sketch.type = static_cast<relational::ColumnType>(raw_type);
  PIYE_ASSIGN_OR_RETURN(sketch.mean_length, dec.GetDouble());
  PIYE_ASSIGN_OR_RETURN(sketch.digit_ratio, dec.GetDouble());
  PIYE_ASSIGN_OR_RETURN(sketch.alpha_ratio, dec.GetDouble());
  PIYE_ASSIGN_OR_RETURN(sketch.distinct_ratio, dec.GetDouble());
  PIYE_ASSIGN_OR_RETURN(sketch.numeric_mean, dec.GetDouble());
  PIYE_ASSIGN_OR_RETURN(sketch.numeric_stddev, dec.GetDouble());
  PIYE_ASSIGN_OR_RETURN(const uint8_t has_filter, dec.GetU8());
  if (has_filter != 0) {
    PIYE_ASSIGN_OR_RETURN(const uint64_t num_bits, dec.GetU64());
    PIYE_ASSIGN_OR_RETURN(const uint64_t num_hashes, dec.GetU64());
    PIYE_ASSIGN_OR_RETURN(const std::string packed, dec.GetString());
    if (packed.size() != (num_bits + 7) / 8) {
      return Status::InvalidArgument(
          "bloom filter bit count disagrees with packed payload size");
    }
    if (num_hashes == 0 || num_hashes > 64) {
      return Status::InvalidArgument("bloom filter hash count " +
                                     std::to_string(num_hashes) +
                                     " out of range");
    }
    std::vector<bool> bits(num_bits, false);
    for (size_t i = 0; i < bits.size(); ++i) {
      bits[i] = (static_cast<uint8_t>(packed[i / 8]) >> (i % 8)) & 1u;
    }
    sketch.value_filter = linkage::BloomFilter::FromBits(
        std::move(bits), static_cast<size_t>(num_hashes));
  }
  return sketch;
}

}  // namespace

std::string EncodeHello(const std::string& peer_name) {
  Encoder enc;
  enc.PutU8(kWireSchemaVersion);
  enc.PutString(peer_name);
  return enc.Take();
}

Result<std::string> DecodeHello(const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckSchemaVersion(dec, "Hello"));
  PIYE_ASSIGN_OR_RETURN(std::string peer_name, dec.GetString());
  PIYE_RETURN_NOT_OK(CheckExhausted(dec, "Hello"));
  return peer_name;
}

std::string EncodeHelloAck(const std::vector<std::string>& owners) {
  Encoder enc;
  enc.PutU8(kWireSchemaVersion);
  enc.PutStringVector(owners);
  return enc.Take();
}

Result<std::vector<std::string>> DecodeHelloAck(const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckSchemaVersion(dec, "HelloAck"));
  PIYE_ASSIGN_OR_RETURN(std::vector<std::string> owners, dec.GetStringVector());
  PIYE_RETURN_NOT_OK(CheckExhausted(dec, "HelloAck"));
  return owners;
}

std::string EncodeExecuteRequest(const ExecuteRequest& req) {
  Encoder enc;
  enc.PutU8(kWireSchemaVersion);
  enc.PutString(req.owner);
  enc.PutString(req.fragment_xml);
  enc.PutU64(req.deadline_budget_ms);
  return enc.Take();
}

Result<ExecuteRequest> DecodeExecuteRequest(const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckSchemaVersion(dec, "ExecuteRequest"));
  ExecuteRequest req;
  PIYE_ASSIGN_OR_RETURN(req.owner, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(req.fragment_xml, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(req.deadline_budget_ms, dec.GetU64());
  PIYE_RETURN_NOT_OK(CheckExhausted(dec, "ExecuteRequest"));
  return req;
}

std::string EncodeExecuteResponse(const ExecuteResponse& resp) {
  Encoder enc;
  enc.PutU8(kWireSchemaVersion);
  PutStatus(enc, resp.status);
  enc.PutString(resp.result_xml);
  return enc.Take();
}

Result<ExecuteResponse> DecodeExecuteResponse(const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckSchemaVersion(dec, "ExecuteResponse"));
  ExecuteResponse resp;
  PIYE_RETURN_NOT_OK(GetStatus(dec, &resp.status));
  PIYE_ASSIGN_OR_RETURN(resp.result_xml, dec.GetString());
  PIYE_RETURN_NOT_OK(CheckExhausted(dec, "ExecuteResponse"));
  return resp;
}

std::string EncodeSketchRequest(const SketchRequest& req) {
  Encoder enc;
  enc.PutU8(kWireSchemaVersion);
  enc.PutString(req.owner);
  enc.PutString(req.shared_key);
  return enc.Take();
}

Result<SketchRequest> DecodeSketchRequest(const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckSchemaVersion(dec, "SketchRequest"));
  SketchRequest req;
  PIYE_ASSIGN_OR_RETURN(req.owner, dec.GetString());
  PIYE_ASSIGN_OR_RETURN(req.shared_key, dec.GetString());
  PIYE_RETURN_NOT_OK(CheckExhausted(dec, "SketchRequest"));
  return req;
}

std::string EncodeSketchResponse(const SketchResponse& resp) {
  Encoder enc;
  enc.PutU8(kWireSchemaVersion);
  PutStatus(enc, resp.status);
  enc.PutU64(resp.sketches.size());
  for (const match::ColumnSketch& sketch : resp.sketches) {
    PutSketch(enc, sketch);
  }
  return enc.Take();
}

Result<SketchResponse> DecodeSketchResponse(const std::string& payload) {
  Decoder dec(payload);
  PIYE_RETURN_NOT_OK(CheckSchemaVersion(dec, "SketchResponse"));
  SketchResponse resp;
  PIYE_RETURN_NOT_OK(GetStatus(dec, &resp.status));
  PIYE_ASSIGN_OR_RETURN(const uint64_t count, dec.GetU64());
  // A sketch is ≥ 70 bytes on the wire; reject counts the payload cannot hold.
  if (count > payload.size()) {
    return Status::InvalidArgument("sketch count " + std::to_string(count) +
                                   " exceeds payload capacity");
  }
  resp.sketches.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    PIYE_ASSIGN_OR_RETURN(match::ColumnSketch sketch, GetSketch(dec));
    resp.sketches.push_back(std::move(sketch));
  }
  PIYE_RETURN_NOT_OK(CheckExhausted(dec, "SketchResponse"));
  return resp;
}

}  // namespace net
}  // namespace piye

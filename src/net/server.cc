#include "net/server.h"

#include <atomic>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "net/transport.h"
#include "net/wire.h"
#include "source/piql.h"
#include "xml/parser.h"

namespace piye {
namespace net {

namespace {
TimePoint After(uint64_t ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}
}  // namespace

/// Per-connection state, shared between the handler thread and worker-pool
/// tasks completing requests for it. Responses serialize on `write_mu` so
/// concurrent completions interleave at frame granularity, never mid-frame.
struct SourceServer::Connection {
  /// Set once by the accept loop before the handler thread spawns.
  std::unique_ptr<Transport> transport;
  Mutex write_mu;
  // piye-lint: allow(raw-thread) per-connection handler, joined on reap/Stop
  std::thread handler;
  std::atomic<bool> dead{false};

  Mutex req_mu;
  std::map<uint64_t, CancelSource> inflight GUARDED_BY(req_mu);

  void RegisterRequest(uint64_t request_id, const CancelSource& source) {
    MutexLock lock(req_mu);
    inflight.emplace(request_id, source);
  }
  void UnregisterRequest(uint64_t request_id) {
    MutexLock lock(req_mu);
    inflight.erase(request_id);
  }
  void CancelRequest(uint64_t request_id) {
    MutexLock lock(req_mu);
    auto it = inflight.find(request_id);
    if (it != inflight.end()) {
      it->second.RequestCancel(
          Status::Cancelled("cancelled by the mediator over the wire"));
    }
  }
  void CancelAll() {
    MutexLock lock(req_mu);
    for (auto& [id, source] : inflight) {
      source.RequestCancel(Status::Cancelled("connection closed"));
    }
  }
};

SourceServer::SourceServer(ServerConfig config) : config_(std::move(config)) {}

SourceServer::~SourceServer() { Stop(); }

void SourceServer::AddSource(const source::FederatedSource* source) {
  sources_[source->owner()] = source;
}

uint64_t SourceServer::connections_accepted() const {
  MutexLock lock(mu_);
  return connections_accepted_;
}

const source::FederatedSource* SourceServer::FindSource(
    const std::string& owner) const {
  auto it = sources_.find(owner);
  return it == sources_.end() ? nullptr : it->second;
}

Status SourceServer::Start() {
  if (started_) return Status::AlreadyExists("server already started");
  PIYE_ASSIGN_OR_RETURN(Listener listener,
                        Listener::Listen(config_.listen_address));
  listener_ = std::make_unique<Listener>(std::move(listener));
  bound_address_ = listener_->bound_address();
  workers_ = std::make_unique<Executor>(config_.worker_threads);
  started_ = true;
  {
    MutexLock lock(mu_);
    stopping_ = false;
  }
  // piye-lint: allow(raw-thread) accept loop spawn
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SourceServer::Stop() {
  if (!started_) return;
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  // No new connections; a blocked Accept wakes and the loop exits.
  listener_->Shutdown();

  // Graceful drain: in-flight requests get drain_timeout_ms to finish and
  // flush their responses before connections are torn down.
  {
    MutexLock lock(mu_);
    const TimePoint drain_deadline = After(config_.drain_timeout_ms);
    while (outstanding_ != 0) {
      if (drain_cv_.WaitUntil(lock, drain_deadline) ==
          std::cv_status::timeout) {
        break;  // drain budget spent; tear the connections down anyway
      }
    }
  }

  std::vector<std::shared_ptr<Connection>> conns;
  {
    MutexLock lock(mu_);
    conns.swap(connections_);
  }
  for (auto& conn : conns) {
    conn->CancelAll();
    conn->transport->Shutdown();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& conn : conns) {
    if (conn->handler.joinable()) conn->handler.join();
  }
  // Joining the pool runs any still-queued tasks; their writes fail fast on
  // the shut-down transports.
  workers_.reset();
  listener_->Close();
  started_ = false;
}

void SourceServer::AcceptLoop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stopping_) return;
    }
    Result<Socket> accepted = listener_->Accept(After(250));
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) {
        // Idle tick: reap connections whose handlers have exited so a
        // long-lived server does not accumulate dead state.
        std::vector<std::shared_ptr<Connection>> reaped;
        {
          MutexLock lock(mu_);
          for (auto it = connections_.begin(); it != connections_.end();) {
            if ((*it)->dead.load(std::memory_order_acquire)) {
              reaped.push_back(std::move(*it));
              it = connections_.erase(it);
            } else {
              ++it;
            }
          }
        }
        for (auto& conn : reaped) {
          if (conn->handler.joinable()) conn->handler.join();
        }
        continue;
      }
      return;  // listener shut down
    }
    auto conn = std::make_shared<Connection>();
    std::unique_ptr<Transport> transport =
        std::make_unique<SocketTransport>(std::move(*accepted));
    if (config_.fault.enabled()) {
      transport = std::make_unique<FaultInjectingTransport>(
          std::move(transport), config_.fault);
    }
    conn->transport = std::move(transport);
    {
      MutexLock lock(mu_);
      if (stopping_) return;
      ++connections_accepted_;
      connections_.push_back(conn);
    }
    // piye-lint: allow(raw-thread) handler thread spawn
    conn->handler = std::thread([this, conn] { HandleConnection(conn); });
  }
}

void SourceServer::HandleConnection(std::shared_ptr<Connection> conn) {
  Transport& transport = *conn->transport;
  const auto frame_timeout = std::chrono::milliseconds(config_.frame_timeout_ms);

  // Handshake: the client speaks first, within the handshake bound.
  Result<Frame> hello =
      ReadFrame(transport, After(config_.handshake_timeout_ms), frame_timeout,
                config_.max_frame_payload);
  bool handshaken = false;
  if (hello.ok() && hello->type == MessageType::kHello &&
      DecodeHello(hello->payload).ok()) {
    std::vector<std::string> owners;
    for (const auto& [owner, src] : sources_) owners.push_back(owner);
    Frame ack;
    ack.type = MessageType::kHelloAck;
    ack.request_id = hello->request_id;
    ack.payload = EncodeHelloAck(owners);
    MutexLock lock(conn->write_mu);
    handshaken = WriteFrame(transport, ack, After(config_.frame_timeout_ms)).ok();
  }

  while (handshaken) {
    {
      MutexLock lock(mu_);
      if (stopping_) break;  // drain: stop consuming, let responses flush
    }
    Result<Frame> frame = ReadFrame(transport, After(config_.idle_timeout_ms),
                                    frame_timeout, config_.max_frame_payload);
    if (!frame.ok()) {
      if (frame.status().IsDeadlineExceeded()) continue;  // idle tick
      if (frame.status().IsInvalidArgument()) {
        // Protocol violation: the stream can no longer be trusted.
        Logger::Warn("net", "dropping connection on protocol violation: " +
                                frame.status().message());
      }
      break;
    }
    switch (frame->type) {
      case MessageType::kExecuteRequest:
        DispatchExecute(conn, std::move(*frame));
        break;
      case MessageType::kSketchRequest:
        DispatchSketch(conn, std::move(*frame));
        break;
      case MessageType::kCancelRequest:
        conn->CancelRequest(frame->request_id);
        break;
      case MessageType::kGoodbye:
        handshaken = false;
        break;
      default:
        Logger::Warn("net", std::string("unexpected ") +
                                MessageTypeName(frame->type) +
                                " frame; dropping connection");
        handshaken = false;
        break;
    }
  }

  conn->CancelAll();
  transport.Shutdown();
  conn->dead.store(true, std::memory_order_release);
}

Status SourceServer::WriteResponse(Connection& conn, const Frame& frame) {
  MutexLock lock(conn.write_mu);
  Status status =
      WriteFrame(*conn.transport, frame, After(config_.frame_timeout_ms));
  if (!status.ok()) {
    conn.transport->Shutdown();  // wake the handler; the connection is gone
  }
  return status;
}

void SourceServer::DispatchExecute(std::shared_ptr<Connection> conn,
                                   Frame frame) {
  CancelSource cancel_source;
  conn->RegisterRequest(frame.request_id, cancel_source);
  {
    MutexLock lock(mu_);
    ++outstanding_;
  }
  workers_->Submit([this, conn, frame = std::move(frame), cancel_source] {
    ExecuteResponse resp;
    auto run = [&]() -> Status {
      PIYE_ASSIGN_OR_RETURN(ExecuteRequest req,
                            DecodeExecuteRequest(frame.payload));
      const source::FederatedSource* src = FindSource(req.owner);
      if (src == nullptr) {
        return Status::NotFound("no source '" + req.owner +
                                "' hosted by this server");
      }
      PIYE_ASSIGN_OR_RETURN(source::PiqlQuery fragment,
                            source::PiqlQuery::Parse(req.fragment_xml));
      CancelToken token = cancel_source.token();
      if (req.deadline_budget_ms > 0) {
        token = token.WithTimeout(
            std::chrono::milliseconds(req.deadline_budget_ms));
      }
      PIYE_ASSIGN_OR_RETURN(source::FederatedSource::FragmentResult result,
                            src->ExecuteFragment(fragment, token));
      resp.result_xml = xml::Serialize(*result.xml, /*indent=*/-1);
      return Status::OK();
    };
    resp.status = run();
    Frame reply;
    reply.type = MessageType::kExecuteResponse;
    reply.request_id = frame.request_id;
    reply.payload = EncodeExecuteResponse(resp);
    // A failed response write already shut the transport down; the handler
    // notices and tears the connection down.
    (void)WriteResponse(*conn, reply);
    conn->UnregisterRequest(frame.request_id);
    {
      MutexLock lock(mu_);
      --outstanding_;
    }
    drain_cv_.NotifyAll();
  });
}

void SourceServer::DispatchSketch(std::shared_ptr<Connection> conn,
                                  Frame frame) {
  {
    MutexLock lock(mu_);
    ++outstanding_;
  }
  workers_->Submit([this, conn, frame = std::move(frame)] {
    SketchResponse resp;
    auto run = [&]() -> Status {
      PIYE_ASSIGN_OR_RETURN(SketchRequest req, DecodeSketchRequest(frame.payload));
      const source::FederatedSource* src = FindSource(req.owner);
      if (src == nullptr) {
        return Status::NotFound("no source '" + req.owner +
                                "' hosted by this server");
      }
      PIYE_ASSIGN_OR_RETURN(resp.sketches, src->ExportSketches(req.shared_key));
      return Status::OK();
    };
    resp.status = run();
    if (!resp.status.ok()) resp.sketches.clear();
    Frame reply;
    reply.type = MessageType::kSketchResponse;
    reply.request_id = frame.request_id;
    reply.payload = EncodeSketchResponse(resp);
    // As above: a failed write shuts the transport down for the handler.
    (void)WriteResponse(*conn, reply);
    {
      MutexLock lock(mu_);
      --outstanding_;
    }
    drain_cv_.NotifyAll();
  });
}

}  // namespace net
}  // namespace piye

#ifndef PIYE_NET_WIRE_H_
#define PIYE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "match/schema_matcher.h"

namespace piye {
namespace net {

/// The PRIVATE-IYE federation wire protocol, layer 2: message payload
/// schemas. Payloads ride inside the CRC-framed envelope (net/frame.h) and
/// are encoded with the same bounds-checked little-endian codec as the WAL
/// (persist/codec), so a payload that survives the frame CRC but is
/// nonetheless malformed degrades to a clean `kParseError`, never UB.
///
/// Versioning rules: the frame header carries the protocol version; within
/// a version, every payload begins with its own u8 schema version so
/// individual messages can evolve without a protocol bump. Decoders reject
/// unknown schema versions with `kInvalidArgument`.

constexpr uint8_t kWireSchemaVersion = 1;

/// ---- Handshake -----------------------------------------------------------

/// Hello (client → server): declares the peer name (diagnostics only).
std::string EncodeHello(const std::string& peer_name);
Result<std::string> DecodeHello(const std::string& payload);

/// HelloAck (server → client): the owners of the sources this server hosts.
std::string EncodeHelloAck(const std::vector<std::string>& owners);
Result<std::vector<std::string>> DecodeHelloAck(const std::string& payload);

/// ---- Execute -------------------------------------------------------------

struct ExecuteRequest {
  std::string owner;         ///< which hosted source runs the fragment
  std::string fragment_xml;  ///< xml::Serialize(PiqlQuery::ToXml())
  /// Remaining budget the mediator grants this fragment; 0 = no deadline.
  /// The server derives its own CancelToken deadline from this, so the
  /// mediator's per-source deadline propagates across the process boundary.
  uint64_t deadline_budget_ms = 0;
};
std::string EncodeExecuteRequest(const ExecuteRequest& req);
Result<ExecuteRequest> DecodeExecuteRequest(const std::string& payload);

struct ExecuteResponse {
  /// The source's verbatim execution status. Carrying (code, message)
  /// instead of a boolean keeps the mediator's error taxonomy intact across
  /// the wire: kPrivacyViolation is still never retried, kUnavailable still
  /// trips breakers, and skip reasons keep their detail.
  Status status;
  std::string result_xml;  ///< serialized tagged fragment result; empty on error
};
std::string EncodeExecuteResponse(const ExecuteResponse& resp);
Result<ExecuteResponse> DecodeExecuteResponse(const std::string& payload);

/// ---- Sketches ------------------------------------------------------------

struct SketchRequest {
  std::string owner;
  std::string shared_key;
};
std::string EncodeSketchRequest(const SketchRequest& req);
Result<SketchRequest> DecodeSketchRequest(const std::string& payload);

struct SketchResponse {
  Status status;
  std::vector<match::ColumnSketch> sketches;
};
std::string EncodeSketchResponse(const SketchResponse& resp);
Result<SketchResponse> DecodeSketchResponse(const std::string& payload);

}  // namespace net
}  // namespace piye

#endif  // PIYE_NET_WIRE_H_

#include "net/transport.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>

namespace piye {
namespace net {

Result<size_t> SocketTransport::Read(char* buf, size_t len, TimePoint deadline) {
  for (;;) {
    pollfd pfd{sock_.fd(), POLLIN, 0};
    const int nready = ::poll(&pfd, 1, PollTimeoutMs(deadline));
    if (nready == 0) return Status::DeadlineExceeded("read timed out");
    if (nready < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("poll(read) failed: " +
                                 std::string(strerror(errno)));
    }
    const ssize_t n = ::recv(sock_.fd(), buf, len, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) return static_cast<size_t>(0);  // peer closed
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::Unavailable("recv failed: " + std::string(strerror(errno)));
  }
}

Status SocketTransport::WriteAll(std::string_view data, TimePoint deadline) {
  size_t off = 0;
  while (off < data.size()) {
    pollfd pfd{sock_.fd(), POLLOUT, 0};
    const int nready = ::poll(&pfd, 1, PollTimeoutMs(deadline));
    if (nready == 0) return Status::DeadlineExceeded("write timed out");
    if (nready < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("poll(write) failed: " +
                                 std::string(strerror(errno)));
    }
    // MSG_NOSIGNAL: a peer that vanished mid-write yields EPIPE, not a
    // process-killing SIGPIPE.
    const ssize_t n = ::send(sock_.fd(), data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return Status::Unavailable("send failed: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

}  // namespace net
}  // namespace piye

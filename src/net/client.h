#ifndef PIYE_NET_CLIENT_H_
#define PIYE_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/sync.h"
#include "match/schema_matcher.h"
#include "net/fault.h"
#include "net/frame.h"
#include "source/federated_source.h"

namespace piye {
namespace net {

struct ClientConfig {
  std::string address;  ///< "unix:<path>" or "tcp:<host>:<port>"
  /// Pool size. Requests round-robin across connections; each connection
  /// multiplexes up to `max_inflight_per_connection` requests.
  size_t connections = 2;
  /// Per-connection outstanding-request window. A request that would exceed
  /// it waits (bounded backpressure) instead of piling unbounded frames onto
  /// one stream.
  size_t max_inflight_per_connection = 16;
  uint64_t connect_timeout_ms = 1000;
  /// Bound on the Hello/HelloAck exchange after a successful dial.
  uint64_t hello_timeout_ms = 1000;
  /// Once a response frame's first byte arrives the rest must land within
  /// this bound.
  uint64_t frame_timeout_ms = 5000;
  /// Dial attempts per request before reporting kUnavailable (1 = no
  /// reconnect). Backoff doubles from `backoff_initial_ms` up to
  /// `backoff_cap_ms`, interruptible by the request's cancel token.
  size_t max_dial_attempts = 3;
  uint64_t backoff_initial_ms = 10;
  uint64_t backoff_cap_ms = 200;
  size_t max_frame_payload = kDefaultMaxPayload;
  /// Wire-level fault injection applied to every dialed connection.
  FaultPlan fault;
};

/// Mediator-side endpoint of the federation wire protocol: a pool of
/// connections to one source server, multiplexing requests tagged by
/// request id. A per-connection reader thread demuxes response frames into
/// the pending-request table; a dead connection fails its pending requests
/// with `kUnavailable` (the engine's retry/breaker machinery takes over) and
/// is redialed lazily by the next request.
///
/// Thread-safe; one NetClient is shared by every NetSource pointing at the
/// same server process.
class NetClient {
 public:
  explicit NetClient(ClientConfig config);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Executes a fragment on the remote source `owner`, returning the
  /// serialized tagged result XML. The token's deadline bounds the whole
  /// exchange (dial, write, wait); on expiry the client sends a best-effort
  /// CancelRequest so the server stops burning work on an abandoned query.
  Result<std::string> ExecuteFragmentXml(const std::string& owner,
                                         const std::string& fragment_xml,
                                         const CancelToken& cancel = {});

  Result<std::vector<match::ColumnSketch>> FetchSketches(
      const std::string& owner, const std::string& shared_key);

  /// Owners hosted by the server, from the most recent HelloAck (dials if
  /// necessary).
  Result<std::vector<std::string>> ListOwners();

  source::TransportStats stats() const;

  const std::string& address() const { return config_.address; }

  /// Shuts every connection down and joins the readers. Subsequent requests
  /// fail kUnavailable.
  void Close();

 private:
  struct Pending;
  struct Conn;

  /// Runs one request/response exchange, redialing as allowed.
  Result<Frame> DoRequest(MessageType type, std::string payload,
                          MessageType expected_response,
                          const CancelToken& cancel);
  Status EnsureConnected(std::shared_ptr<Conn> conn, const CancelToken& cancel);
  void ReaderLoop(std::shared_ptr<Conn> conn, uint64_t generation);
  void FailConnection(Conn& conn, uint64_t generation, const Status& reason);

  ClientConfig config_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<size_t> round_robin_{0};
  std::atomic<bool> closed_{false};

  mutable Mutex owners_mu_;
  std::vector<std::string> owners_ GUARDED_BY(owners_mu_);

  // Transport statistics (satellite: surfaced through Health()).
  std::atomic<uint64_t> connects_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> connect_failures_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> corrupt_frames_{0};
  std::atomic<uint64_t> disconnects_{0};
};

}  // namespace net
}  // namespace piye

#endif  // PIYE_NET_CLIENT_H_

#ifndef PIYE_NET_FRAME_H_
#define PIYE_NET_FRAME_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/transport.h"

namespace piye {
namespace net {

/// The PRIVATE-IYE federation wire protocol, layer 1: length-prefixed,
/// CRC-framed, versioned frames over a byte stream. Layout (all integers
/// little-endian, matching persist/codec):
///
///   offset  0  u32  magic        "PIYE" (0x45594950 as LE bytes 'P','I','Y','E')
///           4  u8   version      kProtocolVersion; mismatch => reject frame
///           5  u8   type         MessageType
///           6  u16  flags        0 (reserved; nonzero rejected)
///           8  u64  request_id   multiplexing tag: responses echo requests'
///          16  u32  payload_len  bounded by the reader's max_payload
///          20  u32  header_crc   CRC-32 over bytes [0,20)
///          24  ...  payload
///     24+len  u32  payload_crc  CRC-32 over the payload bytes
///
/// The header CRC is checked *before* the payload length is trusted, so a
/// flipped length bit can neither trigger a giant allocation nor desync the
/// stream silently; the payload CRC catches corruption in the body. Any
/// framing violation is a `kInvalidArgument` — the stream can no longer be
/// trusted and the connection must be dropped (both ends do).
constexpr uint32_t kFrameMagic = 0x45594950u;  // "PIYE" read little-endian
constexpr uint8_t kProtocolVersion = 1;
constexpr size_t kFrameHeaderBytes = 24;
constexpr size_t kFrameTrailerBytes = 4;
/// Default ceiling on one frame's payload. Generous for result tables, far
/// below anything that could OOM the mediator.
constexpr size_t kDefaultMaxPayload = 64u << 20;

/// Layer-2 message vocabulary (payload schemas live in net/wire.h).
enum class MessageType : uint8_t {
  kHello = 1,            ///< client → server: protocol handshake
  kHelloAck = 2,         ///< server → client: hosted source owners
  kExecuteRequest = 3,   ///< client → server: run one query fragment
  kExecuteResponse = 4,  ///< server → client: status + tagged XML result
  kSketchRequest = 5,    ///< client → server: export schema sketches
  kSketchResponse = 6,   ///< server → client: status + sketches
  kCancelRequest = 7,    ///< client → server: cancel in-flight request_id
  kGoodbye = 8,          ///< either side: graceful connection close
};

const char* MessageTypeName(MessageType type);

struct Frame {
  MessageType type = MessageType::kHello;
  uint64_t request_id = 0;
  std::string payload;
};

/// Serializes a frame (header + payload + trailer).
std::string EncodeFrame(const Frame& frame);

/// Writes one frame, honoring `deadline`.
Status WriteFrame(Transport& transport, const Frame& frame, TimePoint deadline);

/// Reads one frame. Deadline semantics are split to fit both sides' loops:
///
///  - `idle_deadline` bounds the wait for the frame's *first byte*. Expiry
///    with nothing read returns `kDeadlineExceeded` with the stream intact —
///    an idle tick, safe to retry.
///  - Once the first byte arrives the whole frame must land within
///    `frame_timeout`; a stall mid-frame is indistinguishable from a torn
///    write and returns `kUnavailable` (connection must be dropped).
///
/// `kUnavailable`: peer closed or connection failed. `kInvalidArgument`:
/// framing violation (bad magic / version / flags / CRC / oversized payload)
/// — drop the connection.
Result<Frame> ReadFrame(Transport& transport, TimePoint idle_deadline,
                        std::chrono::milliseconds frame_timeout,
                        size_t max_payload = kDefaultMaxPayload);

}  // namespace net
}  // namespace piye

#endif  // PIYE_NET_FRAME_H_

#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/macros.h"

namespace piye {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::string(strerror(errno));
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal(Errno("fcntl(F_GETFL)"));
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, next) < 0) {
    return Status::Internal(Errno("fcntl(F_SETFL)"));
  }
  return Status::OK();
}

/// Parsed form of "unix:<path>" / "tcp:<host>:<port>".
struct ParsedAddress {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // tcp
  uint16_t port = 0;
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress out;
  if (address.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = address.substr(5);
    if (out.path.empty()) {
      return Status::InvalidArgument("address '" + address + "': empty path");
    }
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument("address '" + address +
                                     "': unix socket path too long");
    }
    return out;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("address '" + address +
                                     "': expected tcp:<host>:<port>");
    }
    out.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    unsigned long port = 0;
    for (char c : port_text) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("address '" + address +
                                       "': non-numeric port");
      }
      port = port * 10 + static_cast<unsigned long>(c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("address '" + address +
                                       "': port out of range");
      }
    }
    if (port_text.empty()) {
      return Status::InvalidArgument("address '" + address + "': empty port");
    }
    out.port = static_cast<uint16_t>(port);
    return out;
  }
  return Status::InvalidArgument(
      "address '" + address + "': expected unix:<path> or tcp:<host>:<port>");
}

/// Fills a sockaddr for the parsed address. `storage` must outlive use.
Result<std::pair<const sockaddr*, socklen_t>> ToSockaddr(
    const ParsedAddress& addr, sockaddr_storage* storage) {
  memset(storage, 0, sizeof(*storage));
  if (addr.is_unix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    sun->sun_family = AF_UNIX;
    strncpy(sun->sun_path, addr.path.c_str(), sizeof(sun->sun_path) - 1);
    return std::make_pair(reinterpret_cast<const sockaddr*>(sun),
                          static_cast<socklen_t>(sizeof(sockaddr_un)));
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.port);
  // Numeric IPv4 only (plus the loopback name): the test/bench topology is
  // same-host; a resolver dependency buys nothing here.
  const std::string host = addr.host == "localhost" ? "127.0.0.1" : addr.host;
  if (inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
    return Status::InvalidArgument("tcp host '" + addr.host +
                                   "' is not a numeric IPv4 address");
  }
  return std::make_pair(reinterpret_cast<const sockaddr*>(sin),
                        static_cast<socklen_t>(sizeof(sockaddr_in)));
}

}  // namespace

int PollTimeoutMs(TimePoint deadline) {
  if (deadline == NoDeadline()) return -1;
  const auto remaining = deadline - std::chrono::steady_clock::now();
  if (remaining <= std::chrono::milliseconds(0)) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count() + 1;
  return static_cast<int>(std::min<int64_t>(ms, 1'000'000));
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Dial(const std::string& address, TimePoint deadline) {
  PIYE_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));
  const int family = parsed.is_unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket()"));
  Socket sock(fd);
  PIYE_RETURN_NOT_OK(SetNonBlocking(fd, true));

  sockaddr_storage storage;
  PIYE_ASSIGN_OR_RETURN(auto sa, ToSockaddr(parsed, &storage));
  int rc = ::connect(fd, sa.first, sa.second);
  if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN) {
    return Status::Unavailable("connect to '" + address +
                               "' failed: " + strerror(errno));
  }
  if (rc != 0) {
    // Connection in progress: wait for writability up to the deadline.
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout = PollTimeoutMs(deadline);
    const int nready = ::poll(&pfd, 1, timeout);
    if (nready == 0) {
      return Status::DeadlineExceeded("connect to '" + address +
                                      "' timed out");
    }
    if (nready < 0) return Status::Unavailable(Errno("poll(connect)"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return Status::Unavailable("connect to '" + address +
                                 "' failed: " + strerror(err != 0 ? err : errno));
    }
  }
  PIYE_RETURN_NOT_OK(SetNonBlocking(fd, false));
  if (!parsed.is_unix) {
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return sock;
}

Result<Listener> Listener::Listen(const std::string& address, int backlog) {
  PIYE_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));
  const int family = parsed.is_unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket()"));
  Listener out;
  out.sock_ = Socket(fd);
  if (parsed.is_unix) {
    // A stale socket file from a crashed previous server would make bind
    // fail with EADDRINUSE even though nobody is listening.
    ::unlink(parsed.path.c_str());
    out.unlink_path_ = parsed.path;
  } else {
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  sockaddr_storage storage;
  PIYE_ASSIGN_OR_RETURN(auto sa, ToSockaddr(parsed, &storage));
  if (::bind(fd, sa.first, sa.second) != 0) {
    return Status::Unavailable("bind '" + address +
                               "' failed: " + strerror(errno));
  }
  if (::listen(fd, backlog) != 0) {
    return Status::Unavailable(Errno("listen()"));
  }
  if (parsed.is_unix) {
    out.bound_ = address;
  } else {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      return Status::Internal(Errno("getsockname()"));
    }
    char host[INET_ADDRSTRLEN] = {0};
    inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
    out.bound_ = "tcp:" + std::string(host) + ":" +
                 std::to_string(ntohs(bound.sin_port));
  }
  return out;
}

Result<Socket> Listener::Accept(TimePoint deadline) {
  if (!sock_.valid()) return Status::Unavailable("listener is closed");
  pollfd pfd{sock_.fd(), POLLIN, 0};
  const int nready = ::poll(&pfd, 1, PollTimeoutMs(deadline));
  if (nready == 0) return Status::DeadlineExceeded("accept timed out");
  if (nready < 0) return Status::Unavailable(Errno("poll(accept)"));
  const int fd = ::accept4(sock_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    return Status::Unavailable(Errno("accept()"));
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void Listener::Close() {
  sock_.Close();
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

}  // namespace net
}  // namespace piye

#ifndef PIYE_NET_TRANSPORT_H_
#define PIYE_NET_TRANSPORT_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "net/socket.h"

namespace piye {
namespace net {

/// A bidirectional byte stream with per-operation deadlines — the seam the
/// framing layer reads and writes through, and the seam chaos testing wraps
/// (`FaultInjectingTransport`) so every failure mode a real wire exposes can
/// be injected deterministically under the real protocol code.
///
/// Status vocabulary (shared by every implementation):
///  - `kDeadlineExceeded`: the operation's deadline passed. No bytes were
///    lost — but a caller mid-frame cannot resync and must disconnect.
///  - `kUnavailable`: the peer closed or the connection failed; the stream
///    is dead.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Reads 1..len bytes into buf, blocking up to `deadline`. Returns the
  /// byte count; 0 means the peer closed the write side (clean EOF).
  virtual Result<size_t> Read(char* buf, size_t len, TimePoint deadline) = 0;

  /// Writes all of `data`, blocking up to `deadline`.
  virtual Status WriteAll(std::string_view data, TimePoint deadline) = 0;

  /// Half-close: no more reads will be served (peer sees EOF on our write
  /// side stays open semantics are not needed here — this wakes our blocked
  /// readers). Safe from any thread.
  virtual void Shutdown() = 0;
};

/// Transport over a connected socket. Reads/writes poll the fd against the
/// deadline, so a slow or dead peer can never wedge a thread past it.
class SocketTransport : public Transport {
 public:
  explicit SocketTransport(Socket sock) : sock_(std::move(sock)) {}

  Result<size_t> Read(char* buf, size_t len, TimePoint deadline) override;
  Status WriteAll(std::string_view data, TimePoint deadline) override;
  void Shutdown() override { sock_.Shutdown(); }

 private:
  Socket sock_;
};

}  // namespace net
}  // namespace piye

#endif  // PIYE_NET_TRANSPORT_H_

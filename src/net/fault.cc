#include "net/fault.h"

#include <string>
#include <thread>

#include "common/rng.h"

namespace piye {
namespace net {

namespace {
constexpr uint64_t kStreamSalt = 0x9E3779B97F4A7C15ULL;
}  // namespace

FaultInjectingTransport::Decision FaultInjectingTransport::Decide(bool is_write,
                                                                  size_t len,
                                                                  uint64_t op) {
  Decision d;
  if (!plan_.enabled()) return d;
  Rng rng(plan_.seed ^ ((op + 1) * kStreamSalt));
  d.delay = plan_.delay_rate > 0 && rng.NextBernoulli(plan_.delay_rate);
  if (is_write) {
    if (plan_.drop_write_rate > 0 && rng.NextBernoulli(plan_.drop_write_rate)) {
      d.drop = true;
      return d;
    }
    if (plan_.tear_rate > 0 && rng.NextBernoulli(plan_.tear_rate) && len > 1) {
      d.tear = true;
      d.tear_prefix = 1 + static_cast<size_t>(rng.NextBounded(len - 1));
      return d;
    }
    if (plan_.corrupt_rate > 0 && rng.NextBernoulli(plan_.corrupt_rate) &&
        len > 0) {
      d.corrupt = true;
      d.corrupt_offset = static_cast<size_t>(rng.NextBounded(len));
      d.corrupt_mask = static_cast<uint8_t>(1u << rng.NextBounded(8));
    }
  } else {
    if (plan_.drop_read_rate > 0 && rng.NextBernoulli(plan_.drop_read_rate)) {
      d.drop = true;
    }
  }
  return d;
}

Result<size_t> FaultInjectingTransport::Read(char* buf, size_t len,
                                             TimePoint deadline) {
  if (killed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("fault injection: connection is dead");
  }
  const Decision d =
      Decide(/*is_write=*/false, len, ops_.fetch_add(1, std::memory_order_relaxed));
  if (d.delay) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_micros));
  }
  if (d.drop) {
    killed_.store(true, std::memory_order_release);
    inner_->Shutdown();
    return Status::Unavailable("fault injection: connection dropped mid-read");
  }
  return inner_->Read(buf, len, deadline);
}

Status FaultInjectingTransport::WriteAll(std::string_view data,
                                         TimePoint deadline) {
  if (killed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("fault injection: connection is dead");
  }
  const Decision d =
      Decide(/*is_write=*/true, data.size(),
             ops_.fetch_add(1, std::memory_order_relaxed));
  if (d.delay) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_micros));
  }
  if (d.drop) {
    killed_.store(true, std::memory_order_release);
    inner_->Shutdown();
    return Status::Unavailable("fault injection: write swallowed, connection dropped");
  }
  if (d.tear) {
    // Deliver a strict prefix, then die: the receiver sees a torn frame.
    (void)inner_->WriteAll(data.substr(0, d.tear_prefix), deadline);
    killed_.store(true, std::memory_order_release);
    inner_->Shutdown();
    return Status::Unavailable("fault injection: frame torn after " +
                               std::to_string(d.tear_prefix) + " bytes");
  }
  if (d.corrupt) {
    std::string mangled(data);
    mangled[d.corrupt_offset] =
        static_cast<char>(static_cast<uint8_t>(mangled[d.corrupt_offset]) ^
                          d.corrupt_mask);
    // The write itself succeeds — the damage surfaces at the receiver's CRC.
    return inner_->WriteAll(mangled, deadline);
  }
  return inner_->WriteAll(data, deadline);
}

}  // namespace net
}  // namespace piye

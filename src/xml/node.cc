#include "xml/node.h"

namespace piye {
namespace xml {

void XmlNode::SetAttr(std::string key, std::string value) {
  for (auto& kv : attrs_) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
}

const std::string* XmlNode::GetAttr(std::string_view key) const {
  for (const auto& kv : attrs_) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

void XmlNode::RemoveAttr(std::string_view key) {
  for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
    if (it->first == key) {
      attrs_.erase(it);
      return;
    }
  }
}

XmlNode* XmlNode::AddChild(std::unique_ptr<XmlNode> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

XmlNode* XmlNode::AddElement(const std::string& name) {
  return AddChild(Element(name));
}

XmlNode* XmlNode::AddElementWithText(const std::string& name,
                                     const std::string& text) {
  XmlNode* el = AddElement(name);
  el->AddText(text);
  return el;
}

void XmlNode::AddText(std::string text) { AddChild(Text(std::move(text))); }

void XmlNode::RemoveChild(size_t index) {
  if (index < children_.size()) {
    children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  }
}

const XmlNode* XmlNode::FirstChild(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) return c.get();
  }
  return nullptr;
}

XmlNode* XmlNode::FirstChild(std::string_view name) {
  for (auto& c : children_) {
    if (c->is_element() && c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::vector<const XmlNode*> XmlNode::ChildElements() const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children_) {
    if (c->is_element()) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::InnerText() const {
  if (is_text()) return name_;
  std::string out;
  for (const auto& c : children_) out += c->InnerText();
  return out;
}

std::string XmlNode::ChildText(std::string_view name) const {
  const XmlNode* c = FirstChild(name);
  return c ? c->InnerText() : std::string();
}

std::unique_ptr<XmlNode> XmlNode::Clone() const {
  std::unique_ptr<XmlNode> copy(new XmlNode(type_, name_));
  copy->attrs_ = attrs_;
  copy->children_.reserve(children_.size());
  for (const auto& c : children_) copy->children_.push_back(c->Clone());
  return copy;
}

size_t XmlNode::CountElements() const {
  if (!is_element()) return 0;
  size_t n = 1;
  for (const auto& c : children_) n += c->CountElements();
  return n;
}

}  // namespace xml
}  // namespace piye

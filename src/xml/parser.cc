#include "xml/parser.h"

#include <cctype>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace xml {
namespace {

class ParserImpl {
 public:
  ParserImpl(std::string_view input, const ParseLimits& limits)
      : in_(input), limits_(limits) {}

  Result<XmlDocument> Run() {
    if (limits_.max_input_bytes > 0 && in_.size() > limits_.max_input_bytes) {
      return Status::InvalidArgument(strings::Format(
          "XML input of %zu bytes exceeds the %zu-byte parse limit",
          in_.size(), limits_.max_input_bytes));
    }
    SkipProlog();
    PIYE_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement());
    SkipMisc();
    if (pos_ != in_.size()) {
      return Error("trailing content after root element");
    }
    return XmlDocument(std::move(root));
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(
        strings::Format("XML parse error at offset %zu: %s", pos_, what.c_str()));
  }

  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool Match(std::string_view lit) {
    if (in_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (Match("<?")) {
        const size_t end = in_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 2;
      } else if (Match("<!--")) {
        const size_t end = in_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 3;
      } else if (Match("<!DOCTYPE")) {
        const size_t end = in_.find('>', pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  void SkipMisc() { SkipProlog(); }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
           c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected name");
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> ParseAttrValue() {
    if (Eof() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    const char quote = Peek();
    ++pos_;
    std::string out;
    while (!Eof() && Peek() != quote) {
      if (Peek() == '&') {
        PIYE_ASSIGN_OR_RETURN(char c, ParseEntity());
        out += c;
      } else {
        out += Peek();
        ++pos_;
      }
    }
    if (Eof()) return Error("unterminated attribute value");
    ++pos_;  // closing quote
    return out;
  }

  Result<char> ParseEntity() {
    // pos_ is at '&'.
    const size_t end = in_.find(';', pos_);
    if (end == std::string_view::npos || end - pos_ > 6) {
      return Error("malformed entity");
    }
    const std::string_view ent = in_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    if (ent == "lt") return '<';
    if (ent == "gt") return '>';
    if (ent == "amp") return '&';
    if (ent == "quot") return '"';
    if (ent == "apos") return '\'';
    return Error("unknown entity '" + std::string(ent) + "'");
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    // ParseElement recurses once per nesting level, so the depth limit is
    // also the stack-overflow guard against adversarial <a><a><a>… input.
    if (limits_.max_depth > 0 && ++depth_ > limits_.max_depth) {
      return Error(strings::Format("element nesting exceeds the depth limit of %zu",
                                   limits_.max_depth));
    }
    auto parsed = ParseElementAtDepth();
    --depth_;
    return parsed;
  }

  Result<std::unique_ptr<XmlNode>> ParseElementAtDepth() {
    if (!Match("<")) return Error("expected '<'");
    PIYE_ASSIGN_OR_RETURN(std::string name, ParseName());
    std::unique_ptr<XmlNode> node = XmlNode::Element(name);
    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (Eof()) return Error("unterminated start tag");
      if (Peek() == '/' || Peek() == '>') break;
      PIYE_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (!Match("=")) return Error("expected '=' in attribute");
      SkipWhitespace();
      PIYE_ASSIGN_OR_RETURN(std::string value, ParseAttrValue());
      node->SetAttr(std::move(key), std::move(value));
    }
    if (Match("/>")) return node;
    if (!Match(">")) return Error("expected '>'");
    // Content.
    std::string text;
    auto flush_text = [&] {
      // Whitespace-only runs between elements are ignored.
      if (!strings::Trim(text).empty()) node->AddText(text);
      text.clear();
    };
    for (;;) {
      if (Eof()) return Error("unterminated element '" + name + "'");
      if (Match("<!--")) {
        const size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) return Error("unterminated comment");
        pos_ = end + 3;
      } else if (Match("</")) {
        flush_text();
        PIYE_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != name) {
          return Error("mismatched close tag '" + close + "' for '" + name + "'");
        }
        SkipWhitespace();
        if (!Match(">")) return Error("expected '>' in close tag");
        return node;
      } else if (!Eof() && Peek() == '<') {
        flush_text();
        PIYE_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child, ParseElement());
        node->AddChild(std::move(child));
      } else if (Peek() == '&') {
        PIYE_ASSIGN_OR_RETURN(char c, ParseEntity());
        text += c;
      } else {
        text += Peek();
        ++pos_;
      }
    }
  }

  std::string_view in_;
  ParseLimits limits_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

void EscapeInto(std::string_view s, bool attr, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '&':
        *out += "&amp;";
        break;
      case '"':
        if (attr) {
          *out += "&quot;";
        } else {
          *out += c;
        }
        break;
      default:
        *out += c;
    }
  }
}

void SerializeInto(const XmlNode& node, int indent, int depth, std::string* out) {
  const std::string pad =
      indent >= 0 ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  const char* nl = indent >= 0 ? "\n" : "";
  if (node.is_text()) {
    *out += pad;
    EscapeInto(node.text(), /*attr=*/false, out);
    *out += nl;
    return;
  }
  *out += pad;
  *out += '<';
  *out += node.name();
  for (const auto& [k, v] : node.attrs()) {
    *out += ' ';
    *out += k;
    *out += "=\"";
    EscapeInto(v, /*attr=*/true, out);
    *out += '"';
  }
  if (node.children().empty()) {
    *out += "/>";
    *out += nl;
    return;
  }
  // Single text child renders inline: <a>text</a>.
  if (node.children().size() == 1 && node.children()[0]->is_text()) {
    *out += '>';
    EscapeInto(node.children()[0]->text(), /*attr=*/false, out);
    *out += "</";
    *out += node.name();
    *out += '>';
    *out += nl;
    return;
  }
  *out += '>';
  *out += nl;
  for (const auto& c : node.children()) {
    SerializeInto(*c, indent, depth + 1, out);
  }
  *out += pad;
  *out += "</";
  *out += node.name();
  *out += '>';
  *out += nl;
}

}  // namespace

Result<XmlDocument> Parse(std::string_view input) {
  return ParserImpl(input, ParseLimits()).Run();
}

Result<XmlDocument> Parse(std::string_view input, const ParseLimits& limits) {
  return ParserImpl(input, limits).Run();
}

std::string Serialize(const XmlNode& node, int indent) {
  std::string out;
  SerializeInto(node, indent, 0, &out);
  return out;
}

std::string Serialize(const XmlDocument& doc, int indent) {
  std::string out = "<?xml version=\"1.0\"?>";
  out += indent >= 0 ? "\n" : "";
  if (doc.has_root()) SerializeInto(doc.root(), indent, 0, &out);
  return out;
}

}  // namespace xml
}  // namespace piye

#ifndef PIYE_XML_PATH_H_
#define PIYE_XML_PATH_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace piye {
namespace xml {

/// One step of a parsed path expression.
struct PathStep {
  enum class Axis {
    kChild,       ///< `/name`
    kDescendant,  ///< `//name`
  };

  /// Predicate forms supported inside `[...]`.
  struct Predicate {
    enum class Kind {
      kHasAttr,    ///< [@a]
      kAttrEq,     ///< [@a='v']
      kChildEq,    ///< [c='v']
    };
    Kind kind;
    std::string name;
    std::string value;
  };

  Axis axis = Axis::kChild;
  std::string name;  ///< element name, or "*" wildcard
  std::optional<Predicate> predicate;
};

/// A compiled XPath-subset expression over the XmlNode model.
///
/// Grammar: `('/'|'//') name ('[' predicate ']')? ...` where predicate is
/// `@attr`, `@attr='v'`, or `child='v'`. This is the query surface the
/// mediation engine fragments and the sources rewrite; the loose-matching
/// variant in loose_path.h relaxes the name equality.
class XmlPath {
 public:
  /// Compiles an expression such as `//patient[@id='7']/dob`.
  static Result<XmlPath> Parse(std::string_view expr);

  /// All element nodes selected by this path, starting the first step at
  /// `root` itself (i.e. `/r` matches a root named `r`).
  std::vector<const XmlNode*> Evaluate(const XmlNode& root) const;

  const std::vector<PathStep>& steps() const { return steps_; }

  /// Re-renders the compiled expression (normalized form).
  std::string ToString() const;

 private:
  std::vector<PathStep> steps_;
};

}  // namespace xml
}  // namespace piye

#endif  // PIYE_XML_PATH_H_

#ifndef PIYE_XML_NODE_H_
#define PIYE_XML_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace piye {
namespace xml {

/// A node in the in-memory XML document model used throughout PRIVATE-IYE:
/// remote sources export results as XML, the mediator integrates XML, and
/// privacy metadata is attached as XML attributes (see source/metadata_tagger).
///
/// The model is deliberately small: elements with ordered attributes and
/// children, plus text nodes. Ownership is strict — each node owns its
/// children via unique_ptr, and a document owns its root.
class XmlNode {
 public:
  enum class Type { kElement, kText };

  /// Creates an element node.
  static std::unique_ptr<XmlNode> Element(std::string name) {
    return std::unique_ptr<XmlNode>(new XmlNode(Type::kElement, std::move(name)));
  }
  /// Creates a text node.
  static std::unique_ptr<XmlNode> Text(std::string text) {
    return std::unique_ptr<XmlNode>(new XmlNode(Type::kText, std::move(text)));
  }

  Type type() const { return type_; }
  bool is_element() const { return type_ == Type::kElement; }
  bool is_text() const { return type_ == Type::kText; }

  /// Element name (elements) or text content (text nodes).
  const std::string& name() const { return name_; }
  const std::string& text() const { return name_; }
  void set_text(std::string text) { name_ = std::move(text); }

  // --- Attributes (elements only) ---

  void SetAttr(std::string key, std::string value);
  /// Returns the attribute value or nullptr.
  const std::string* GetAttr(std::string_view key) const;
  bool HasAttr(std::string_view key) const { return GetAttr(key) != nullptr; }
  void RemoveAttr(std::string_view key);
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // --- Children ---

  /// Appends a child and returns a raw pointer to it (ownership stays here).
  XmlNode* AddChild(std::unique_ptr<XmlNode> child);
  /// Convenience: appends an element child.
  XmlNode* AddElement(const std::string& name);
  /// Convenience: appends an element child containing a single text node.
  XmlNode* AddElementWithText(const std::string& name, const std::string& text);
  /// Appends a text child.
  void AddText(std::string text);
  /// Removes the child at `index`.
  void RemoveChild(size_t index);

  const std::vector<std::unique_ptr<XmlNode>>& children() const { return children_; }
  std::vector<std::unique_ptr<XmlNode>>& mutable_children() { return children_; }

  /// First child element with the given name, or nullptr.
  const XmlNode* FirstChild(std::string_view name) const;
  XmlNode* FirstChild(std::string_view name);
  /// All child elements with the given name.
  std::vector<const XmlNode*> Children(std::string_view name) const;
  /// All child elements.
  std::vector<const XmlNode*> ChildElements() const;

  /// Concatenated text of all descendant text nodes.
  std::string InnerText() const;
  /// Text of the named child element ("" if absent) — the common accessor for
  /// record-shaped XML.
  std::string ChildText(std::string_view name) const;

  /// Deep copy.
  std::unique_ptr<XmlNode> Clone() const;

  /// Number of element nodes in this subtree (including this one).
  size_t CountElements() const;

 private:
  XmlNode(Type type, std::string name) : type_(type), name_(std::move(name)) {}

  Type type_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// An XML document: a single owned root element.
class XmlDocument {
 public:
  XmlDocument() = default;
  explicit XmlDocument(std::unique_ptr<XmlNode> root) : root_(std::move(root)) {}

  bool has_root() const { return root_ != nullptr; }
  const XmlNode& root() const { return *root_; }
  XmlNode& mutable_root() { return *root_; }
  void set_root(std::unique_ptr<XmlNode> root) { root_ = std::move(root); }
  /// Transfers ownership of the root out of the document (which becomes
  /// rootless) — how a parsed wire payload is adopted without a deep copy.
  std::unique_ptr<XmlNode> release_root() { return std::move(root_); }

  XmlDocument Clone() const {
    return root_ ? XmlDocument(root_->Clone()) : XmlDocument();
  }

 private:
  std::unique_ptr<XmlNode> root_;
};

}  // namespace xml
}  // namespace piye

#endif  // PIYE_XML_NODE_H_

#include "xml/loose_path.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace piye {
namespace xml {
namespace {

std::string Acronym(const std::vector<std::string>& tokens) {
  std::string out;
  for (const auto& t : tokens) {
    if (!t.empty()) out += t[0];
  }
  return out;
}

void CollectDescendantsOrSelf(const XmlNode& node, std::vector<const XmlNode*>* out) {
  if (node.is_element()) out->push_back(&node);
  for (const auto& c : node.children()) CollectDescendantsOrSelf(*c, out);
}

bool PredicateMatches(const PathStep::Predicate& pred, const XmlNode& node) {
  switch (pred.kind) {
    case PathStep::Predicate::Kind::kHasAttr:
      return node.HasAttr(pred.name);
    case PathStep::Predicate::Kind::kAttrEq: {
      const std::string* v = node.GetAttr(pred.name);
      return v != nullptr && *v == pred.value;
    }
    case PathStep::Predicate::Kind::kChildEq:
      return node.ChildText(pred.name) == pred.value;
  }
  return false;
}

}  // namespace

LooseNameMatcher::LooseNameMatcher() = default;

void LooseNameMatcher::AddSynonyms(const std::vector<std::string>& group) {
  // If any member already belongs to a group, merge into that group id.
  int group_id = -1;
  for (const auto& t : group) {
    auto it = synonym_group_.find(strings::ToLower(t));
    if (it != synonym_group_.end()) {
      group_id = it->second;
      break;
    }
  }
  if (group_id < 0) group_id = next_group_++;
  for (const auto& t : group) synonym_group_[strings::ToLower(t)] = group_id;
}

double LooseNameMatcher::TokenSimilarity(const std::string& a,
                                         const std::string& b) const {
  if (a == b) return 1.0;
  auto ia = synonym_group_.find(a);
  auto ib = synonym_group_.find(b);
  if (ia != synonym_group_.end() && ib != synonym_group_.end() &&
      ia->second == ib->second) {
    return 1.0;
  }
  return strings::EditSimilarity(a, b);
}

double LooseNameMatcher::NameSimilarity(std::string_view a, std::string_view b) const {
  const std::string la = strings::ToLower(a);
  const std::string lb = strings::ToLower(b);
  if (la == lb) return 1.0;
  const std::vector<std::string> ta = strings::TokenizeIdentifier(a);
  const std::vector<std::string> tb = strings::TokenizeIdentifier(b);
  if (ta.empty() || tb.empty()) return 0.0;
  // Acronym expansion: "dob" vs {date, of, birth}.
  if (ta.size() == 1 && tb.size() > 1 && ta[0] == Acronym(tb)) return 0.95;
  if (tb.size() == 1 && ta.size() > 1 && tb[0] == Acronym(ta)) return 0.95;
  // Whole-name (and acronym) synonym groups: "birthdate" ~ group{dob,...},
  // and "dateOfBirth" enters the same group through its acronym "dob".
  auto direct_group = [this](const std::string& lower) {
    auto it = synonym_group_.find(lower);
    return it != synonym_group_.end() ? it->second : -1;
  };
  auto acronym_group = [this](const std::vector<std::string>& tokens) {
    if (tokens.size() < 2) return -1;
    auto it = synonym_group_.find(Acronym(tokens));
    return it != synonym_group_.end() ? it->second : -1;
  };
  const int da = direct_group(la), db = direct_group(lb);
  if (da >= 0 && da == db) return 1.0;  // declared synonyms are certain
  const int ga = da >= 0 ? da : acronym_group(ta);
  const int gb = db >= 0 ? db : acronym_group(tb);
  if (ga >= 0 && ga == gb) return 0.95;  // acronym-mediated synonymy
  // Symmetric Monge–Elkan over token similarities.
  auto directed = [&](const std::vector<std::string>& xs,
                      const std::vector<std::string>& ys) {
    double total = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) best = std::max(best, TokenSimilarity(x, y));
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  return 0.5 * (directed(ta, tb) + directed(tb, ta));
}

std::vector<LooseMatch> LoosePathMatcher::Find(const XmlPath& path,
                                               const XmlNode& root) const {
  std::vector<LooseMatch> current;
  bool first = true;
  for (const PathStep& step : path.steps()) {
    // Gather candidates with the score accumulated so far.
    std::vector<LooseMatch> candidates;
    if (first) {
      std::vector<const XmlNode*> nodes;
      if (step.axis == PathStep::Axis::kChild) {
        nodes.push_back(&root);
      } else {
        CollectDescendantsOrSelf(root, &nodes);
      }
      for (const XmlNode* n : nodes) candidates.push_back({n, 1.0});
    } else {
      for (const LooseMatch& m : current) {
        if (step.axis == PathStep::Axis::kChild) {
          for (const auto& c : m.node->children()) {
            if (c->is_element()) candidates.push_back({c.get(), m.score});
          }
        } else {
          std::vector<const XmlNode*> nodes;
          for (const auto& c : m.node->children()) {
            CollectDescendantsOrSelf(*c, &nodes);
          }
          for (const XmlNode* n : nodes) candidates.push_back({n, m.score});
        }
      }
    }
    // Filter by loose name similarity and predicates; keep the best score per
    // node (the descendant axis can reach a node along several chains).
    std::map<const XmlNode*, double> best;
    for (const LooseMatch& cand : candidates) {
      double name_score = 1.0;
      if (step.name != "*") {
        name_score = matcher_.NameSimilarity(step.name, cand.node->name());
        if (name_score < threshold_) continue;
      }
      if (step.predicate && !PredicateMatches(*step.predicate, *cand.node)) continue;
      const double score = std::min(cand.score, name_score);
      auto [it, inserted] = best.emplace(cand.node, score);
      if (!inserted) it->second = std::max(it->second, score);
    }
    current.clear();
    for (const auto& [node, score] : best) current.push_back({node, score});
    first = false;
    if (current.empty()) break;
  }
  std::sort(current.begin(), current.end(), [](const LooseMatch& a, const LooseMatch& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  return current;
}

}  // namespace xml
}  // namespace piye

#ifndef PIYE_XML_LOOSE_PATH_H_
#define PIYE_XML_LOOSE_PATH_H_

#include <map>
#include <string>
#include <vector>

#include "xml/node.h"
#include "xml/path.h"

namespace piye {
namespace xml {

/// Scores similarity between element names for loosely structured queries.
///
/// PRIVATE-IYE's mediated schema may omit the nominal identifiers of
/// sensitive attributes (Section 5, "Design of Privacy-conscious Query
/// Language"): a requester writing `//patient//dateOfBirth` must still hit a
/// source element named `dob`. The matcher combines:
///  - exact (case-insensitive) equality,
///  - acronym expansion (`dob` vs tokens {date, of, birth}),
///  - a synonym dictionary (`sex` ~ `gender`),
///  - token-level edit similarity (Monge–Elkan aggregation).
class LooseNameMatcher {
 public:
  LooseNameMatcher();

  /// Declares a group of mutually synonymous tokens (lower-case).
  void AddSynonyms(const std::vector<std::string>& group);

  /// Similarity in [0,1]; 1 means certainly the same concept.
  double NameSimilarity(std::string_view a, std::string_view b) const;

 private:
  double TokenSimilarity(const std::string& a, const std::string& b) const;

  std::map<std::string, int> synonym_group_;
  int next_group_ = 0;
};

/// A path hit with its aggregate confidence (min over step scores).
struct LooseMatch {
  const XmlNode* node = nullptr;
  double score = 0.0;
};

/// Evaluates a compiled XmlPath with approximate step names.
///
/// Semantics match XmlPath::Evaluate except that a step name matches any
/// element whose name scores >= `threshold` under the LooseNameMatcher.
/// Predicate attribute/child names remain exact. Results are sorted by
/// descending score.
class LoosePathMatcher {
 public:
  explicit LoosePathMatcher(LooseNameMatcher matcher, double threshold = 0.7)
      : matcher_(std::move(matcher)), threshold_(threshold) {}

  std::vector<LooseMatch> Find(const XmlPath& path, const XmlNode& root) const;

  const LooseNameMatcher& matcher() const { return matcher_; }
  double threshold() const { return threshold_; }

 private:
  LooseNameMatcher matcher_;
  double threshold_;
};

}  // namespace xml
}  // namespace piye

#endif  // PIYE_XML_LOOSE_PATH_H_

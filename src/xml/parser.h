#ifndef PIYE_XML_PARSER_H_
#define PIYE_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/node.h"

namespace piye {
namespace xml {

/// Parses a well-formed XML fragment into an XmlDocument.
///
/// Supported subset: one root element, nested elements, attributes with
/// single- or double-quoted values, text content, comments (`<!-- -->`),
/// processing instructions / declarations (`<? ?>`, skipped), and the five
/// predefined entities. CDATA, DTDs, and namespaces-as-semantics are out of
/// scope — names containing ':' are treated as plain names.
Result<XmlDocument> Parse(std::string_view input);

/// Serializes a node subtree. `indent` < 0 produces compact single-line
/// output; otherwise children are pretty-printed with `indent` spaces per
/// depth level. Text is entity-escaped on the way out, so Parse(Serialize(x))
/// round-trips.
std::string Serialize(const XmlNode& node, int indent = 2);

/// Serializes a whole document (adds the XML declaration header).
std::string Serialize(const XmlDocument& doc, int indent = 2);

}  // namespace xml
}  // namespace piye

#endif  // PIYE_XML_PARSER_H_

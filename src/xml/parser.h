#ifndef PIYE_XML_PARSER_H_
#define PIYE_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/node.h"

namespace piye {
namespace xml {

/// Resource limits applied while parsing. The parser sits on the engine's
/// trust boundary — fragment results arrive from autonomous remote sources —
/// so untrusted input must not be able to exhaust the stack (ParseElement
/// recurses per nesting level) or memory. The defaults are far above
/// anything the mediation pipeline produces; parsers of truly internal text
/// keep them implicitly.
struct ParseLimits {
  /// Inputs longer than this are rejected up front with kInvalidArgument.
  /// 0 ⇒ unlimited.
  size_t max_input_bytes = 8ull << 20;
  /// Maximum element nesting depth (root = depth 1); deeper documents are
  /// rejected with kParseError before the recursion can overflow the stack.
  size_t max_depth = 128;
};

/// Parses a well-formed XML fragment into an XmlDocument.
///
/// Supported subset: one root element, nested elements, attributes with
/// single- or double-quoted values, text content, comments (`<!-- -->`),
/// processing instructions / declarations (`<? ?>`, skipped), and the five
/// predefined entities. CDATA, DTDs, and namespaces-as-semantics are out of
/// scope — names containing ':' are treated as plain names.
Result<XmlDocument> Parse(std::string_view input);

/// Parse with explicit resource limits (see ParseLimits).
Result<XmlDocument> Parse(std::string_view input, const ParseLimits& limits);

/// Serializes a node subtree. `indent` < 0 produces compact single-line
/// output; otherwise children are pretty-printed with `indent` spaces per
/// depth level. Text is entity-escaped on the way out, so Parse(Serialize(x))
/// round-trips.
std::string Serialize(const XmlNode& node, int indent = 2);

/// Serializes a whole document (adds the XML declaration header).
std::string Serialize(const XmlDocument& doc, int indent = 2);

}  // namespace xml
}  // namespace piye

#endif  // PIYE_XML_PARSER_H_

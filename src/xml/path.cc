#include "xml/path.h"

#include <set>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace xml {
namespace {

void CollectDescendantsOrSelf(const XmlNode& node, std::vector<const XmlNode*>* out) {
  if (node.is_element()) out->push_back(&node);
  for (const auto& c : node.children()) CollectDescendantsOrSelf(*c, out);
}

bool NameMatches(const PathStep& step, const XmlNode& node) {
  return step.name == "*" || node.name() == step.name;
}

bool PredicateMatches(const PathStep::Predicate& pred, const XmlNode& node) {
  switch (pred.kind) {
    case PathStep::Predicate::Kind::kHasAttr:
      return node.HasAttr(pred.name);
    case PathStep::Predicate::Kind::kAttrEq: {
      const std::string* v = node.GetAttr(pred.name);
      return v != nullptr && *v == pred.value;
    }
    case PathStep::Predicate::Kind::kChildEq:
      return node.ChildText(pred.name) == pred.value;
  }
  return false;
}

bool StepMatches(const PathStep& step, const XmlNode& node) {
  if (!node.is_element()) return false;
  if (!NameMatches(step, node)) return false;
  if (step.predicate && !PredicateMatches(*step.predicate, node)) return false;
  return true;
}

Result<PathStep::Predicate> ParsePredicate(std::string_view body) {
  PathStep::Predicate pred;
  std::string_view rest = body;
  const bool is_attr = !rest.empty() && rest[0] == '@';
  if (is_attr) rest.remove_prefix(1);
  const size_t eq = rest.find('=');
  if (eq == std::string_view::npos) {
    if (!is_attr) {
      return Status::ParseError("predicate without '=' must test an attribute: [" +
                                std::string(body) + "]");
    }
    pred.kind = PathStep::Predicate::Kind::kHasAttr;
    pred.name = std::string(rest);
    return pred;
  }
  pred.kind = is_attr ? PathStep::Predicate::Kind::kAttrEq
                      : PathStep::Predicate::Kind::kChildEq;
  pred.name = strings::Trim(rest.substr(0, eq));
  std::string value = strings::Trim(rest.substr(eq + 1));
  if (value.size() >= 2 && (value.front() == '\'' || value.front() == '"') &&
      value.back() == value.front()) {
    value = value.substr(1, value.size() - 2);
  } else {
    return Status::ParseError("predicate value must be quoted: [" +
                              std::string(body) + "]");
  }
  pred.value = value;
  if (pred.name.empty()) {
    return Status::ParseError("empty predicate name: [" + std::string(body) + "]");
  }
  return pred;
}

}  // namespace

Result<XmlPath> XmlPath::Parse(std::string_view expr) {
  XmlPath path;
  const std::string trimmed = strings::Trim(expr);
  std::string_view rest = trimmed;
  if (rest.empty() || rest[0] != '/') {
    return Status::ParseError("path must start with '/' or '//': '" +
                              std::string(expr) + "'");
  }
  while (!rest.empty()) {
    PathStep step;
    if (strings::StartsWith(rest, "//")) {
      step.axis = PathStep::Axis::kDescendant;
      rest.remove_prefix(2);
    } else if (strings::StartsWith(rest, "/")) {
      step.axis = PathStep::Axis::kChild;
      rest.remove_prefix(1);
    } else {
      return Status::ParseError("expected '/' in path near '" + std::string(rest) +
                                "'");
    }
    size_t i = 0;
    while (i < rest.size() && rest[i] != '/' && rest[i] != '[') ++i;
    step.name = std::string(rest.substr(0, i));
    if (step.name.empty()) {
      return Status::ParseError("empty step name in '" + std::string(expr) + "'");
    }
    rest.remove_prefix(i);
    if (!rest.empty() && rest[0] == '[') {
      const size_t close = rest.find(']');
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated predicate in '" + std::string(expr) +
                                  "'");
      }
      PIYE_ASSIGN_OR_RETURN(PathStep::Predicate pred,
                            ParsePredicate(rest.substr(1, close - 1)));
      step.predicate = std::move(pred);
      rest.remove_prefix(close + 1);
    }
    path.steps_.push_back(std::move(step));
  }
  return path;
}

std::vector<const XmlNode*> XmlPath::Evaluate(const XmlNode& root) const {
  std::vector<const XmlNode*> current;
  bool first = true;
  for (const PathStep& step : steps_) {
    std::vector<const XmlNode*> candidates;
    if (first) {
      if (step.axis == PathStep::Axis::kChild) {
        candidates.push_back(&root);
      } else {
        CollectDescendantsOrSelf(root, &candidates);
      }
    } else {
      for (const XmlNode* node : current) {
        if (step.axis == PathStep::Axis::kChild) {
          for (const auto& c : node->children()) {
            if (c->is_element()) candidates.push_back(c.get());
          }
        } else {
          for (const auto& c : node->children()) {
            CollectDescendantsOrSelf(*c, &candidates);
          }
        }
      }
    }
    std::vector<const XmlNode*> next;
    std::set<const XmlNode*> seen;
    for (const XmlNode* node : candidates) {
      if (StepMatches(step, *node) && seen.insert(node).second) {
        next.push_back(node);
      }
    }
    current = std::move(next);
    first = false;
    if (current.empty()) break;
  }
  return current;
}

std::string XmlPath::ToString() const {
  std::string out;
  for (const PathStep& step : steps_) {
    out += step.axis == PathStep::Axis::kDescendant ? "//" : "/";
    out += step.name;
    if (step.predicate) {
      const auto& p = *step.predicate;
      out += '[';
      if (p.kind != PathStep::Predicate::Kind::kChildEq) out += '@';
      out += p.name;
      if (p.kind != PathStep::Predicate::Kind::kHasAttr) {
        out += "='";
        out += p.value;
        out += '\'';
      }
      out += ']';
    }
  }
  return out;
}

}  // namespace xml
}  // namespace piye

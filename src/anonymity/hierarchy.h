#ifndef PIYE_ANONYMITY_HIERARCHY_H_
#define PIYE_ANONYMITY_HIERARCHY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace piye {
namespace anonymity {

/// A per-attribute generalization hierarchy in the Samarati–Sweeney model:
/// level 0 is the original value; each higher level is coarser; the top
/// level is full suppression ("*").
class ValueHierarchy {
 public:
  virtual ~ValueHierarchy() = default;

  /// Number of levels above the original (so valid levels are 0..max_level).
  virtual size_t max_level() const = 0;

  /// Rendering of `v` at `level`. Level 0 returns the display form of the
  /// value itself; max_level() returns "*".
  virtual std::string Generalize(const relational::Value& v, size_t level) const = 0;
};

/// Generalizes numeric attributes into progressively wider aligned
/// intervals: level i>0 buckets by widths[i-1], rendered "[lo,hi)".
class NumericHierarchy : public ValueHierarchy {
 public:
  /// `widths` must be increasing; level widths.size()+1 is suppression.
  NumericHierarchy(double lo, std::vector<double> widths)
      : lo_(lo), widths_(std::move(widths)) {}

  size_t max_level() const override { return widths_.size() + 1; }
  std::string Generalize(const relational::Value& v, size_t level) const override;

 private:
  double lo_;
  std::vector<double> widths_;
};

/// Generalizes categorical attributes along explicit ancestor chains, e.g.
/// "cardiology" -> "internal medicine" -> "medical" -> "*".
class CategoricalHierarchy : public ValueHierarchy {
 public:
  /// `depth` is the number of non-suppression generalization levels every
  /// chain must provide.
  explicit CategoricalHierarchy(size_t depth) : depth_(depth) {}

  /// Registers the ancestors of `value`, from level 1 upward; the chain is
  /// padded with its last element if shorter than `depth`.
  Status AddChain(const std::string& value, std::vector<std::string> ancestors);

  size_t max_level() const override { return depth_ + 1; }
  std::string Generalize(const relational::Value& v, size_t level) const override;

 private:
  size_t depth_;
  std::map<std::string, std::vector<std::string>> chains_;
};

/// A quasi-identifier: a column together with its hierarchy.
struct QuasiIdentifier {
  std::string column;
  std::shared_ptr<const ValueHierarchy> hierarchy;
};

}  // namespace anonymity
}  // namespace piye

#endif  // PIYE_ANONYMITY_HIERARCHY_H_

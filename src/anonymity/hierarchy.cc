#include "anonymity/hierarchy.h"

#include <cmath>

#include "common/strings.h"

namespace piye {
namespace anonymity {

std::string NumericHierarchy::Generalize(const relational::Value& v,
                                         size_t level) const {
  if (v.is_null()) return "NULL";
  if (level == 0) return v.ToDisplayString();
  if (level >= max_level()) return "*";
  if (!v.is_numeric()) return "*";
  const double width = widths_[level - 1];
  const double x = v.AsDouble();
  const double bucket = std::floor((x - lo_) / width);
  const double lo = lo_ + bucket * width;
  return strings::Format("[%g,%g)", lo, lo + width);
}

Status CategoricalHierarchy::AddChain(const std::string& value,
                                      std::vector<std::string> ancestors) {
  if (ancestors.empty()) {
    return Status::InvalidArgument("ancestor chain must not be empty");
  }
  while (ancestors.size() < depth_) ancestors.push_back(ancestors.back());
  ancestors.resize(depth_);
  auto [it, inserted] = chains_.emplace(value, std::move(ancestors));
  if (!inserted) {
    return Status::AlreadyExists("chain for '" + value + "' already registered");
  }
  return Status::OK();
}

std::string CategoricalHierarchy::Generalize(const relational::Value& v,
                                             size_t level) const {
  if (v.is_null()) return "NULL";
  if (level == 0) return v.ToDisplayString();
  if (level >= max_level()) return "*";
  auto it = chains_.find(v.ToDisplayString());
  if (it == chains_.end()) return "*";  // unknown values generalize to top
  return it->second[level - 1];
}

}  // namespace anonymity
}  // namespace piye

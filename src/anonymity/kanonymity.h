#ifndef PIYE_ANONYMITY_KANONYMITY_H_
#define PIYE_ANONYMITY_KANONYMITY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "anonymity/hierarchy.h"
#include "relational/table.h"

namespace piye {
namespace anonymity {

/// Outcome of an anonymization run.
struct AnonymizationResult {
  relational::Table table;      ///< QI columns replaced by generalized STRINGs
  std::vector<size_t> levels;   ///< chosen generalization level per QI
  size_t suppressed_rows = 0;   ///< rows removed to reach k
};

/// Utility metrics over an anonymized table's equivalence classes.
struct AnonymityMetrics {
  size_t num_classes = 0;
  size_t min_class_size = 0;
  double avg_class_size = 0.0;
  /// Discernibility metric: sum over classes of |class|^2 (suppressed rows
  /// cost |table| each).
  double discernibility = 0.0;
};

/// Groups rows by the given (already generalized) QI columns and computes
/// class-size metrics.
Result<AnonymityMetrics> ComputeMetrics(const relational::Table& table,
                                        const std::vector<std::string>& qi_columns,
                                        size_t suppressed_rows = 0);

/// True if every equivalence class over `qi_columns` has size >= k.
Result<bool> IsKAnonymous(const relational::Table& table,
                          const std::vector<std::string>& qi_columns, size_t k);

/// True if additionally every class contains >= l distinct values of
/// `sensitive_column` (distinct l-diversity, Machanavajjhala-style check).
Result<bool> IsLDiverse(const relational::Table& table,
                        const std::vector<std::string>& qi_columns,
                        const std::string& sensitive_column, size_t l);

/// Samarati-style full-domain generalization: searches level vectors of the
/// generalization lattice in order of increasing total height and returns
/// the first (minimal-height, tie-broken lexicographically) vector that
/// makes the table k-anonymous after suppressing at most `max_suppression`
/// outlier rows.
class KAnonymizer {
 public:
  KAnonymizer(std::vector<QuasiIdentifier> qis, size_t k, size_t max_suppression = 0)
      : qis_(std::move(qis)), k_(k), max_suppression_(max_suppression) {}

  /// Anonymizes `input`. Fails with kPrivacyViolation if even full
  /// suppression of the QIs cannot reach k (i.e. |table| < k).
  Result<AnonymizationResult> Anonymize(const relational::Table& input) const;

  /// Applies a specific level vector (exposed for the lattice-sweep bench).
  Result<AnonymizationResult> ApplyLevels(const relational::Table& input,
                                          const std::vector<size_t>& levels) const;

  /// Normalized generalization information loss of a level vector: mean of
  /// level/max_level over QIs (the "GenILoss" precision metric).
  double GeneralizationLoss(const std::vector<size_t>& levels) const;

  const std::vector<QuasiIdentifier>& quasi_identifiers() const { return qis_; }
  size_t k() const { return k_; }

 private:
  std::vector<QuasiIdentifier> qis_;
  size_t k_;
  size_t max_suppression_;
};

/// Mondrian multidimensional partitioning (LeFevre et al.) over *numeric*
/// quasi-identifiers: recursively median-splits the partition with relaxed
/// multidimensional cuts while each side keeps >= k rows, then releases each
/// partition with its bounding ranges.
class Mondrian {
 public:
  Mondrian(std::vector<std::string> numeric_qi_columns, size_t k)
      : qi_(std::move(numeric_qi_columns)), k_(k) {}

  /// Returns the anonymized table: QI columns become "lo..hi" STRING ranges.
  Result<relational::Table> Anonymize(const relational::Table& input) const;

 private:
  std::vector<std::string> qi_;
  size_t k_;
};

}  // namespace anonymity
}  // namespace piye

#endif  // PIYE_ANONYMITY_KANONYMITY_H_

#include "anonymity/kanonymity.h"

#include <algorithm>
#include <functional>
#include <map>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace anonymity {

namespace {

/// Group keys: rendered QI values per row.
Result<std::map<std::vector<std::string>, std::vector<size_t>>> GroupByQi(
    const relational::Table& table, const std::vector<std::string>& qi_columns) {
  std::vector<size_t> idx;
  for (const auto& col : qi_columns) {
    PIYE_ASSIGN_OR_RETURN(size_t i, table.schema().IndexOf(col));
    idx.push_back(i);
  }
  std::map<std::vector<std::string>, std::vector<size_t>> groups;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> key;
    key.reserve(idx.size());
    for (size_t i : idx) key.push_back(table.row(r)[i].ToDisplayString());
    groups[key].push_back(r);
  }
  return groups;
}

}  // namespace

Result<AnonymityMetrics> ComputeMetrics(const relational::Table& table,
                                        const std::vector<std::string>& qi_columns,
                                        size_t suppressed_rows) {
  PIYE_ASSIGN_OR_RETURN(auto groups, GroupByQi(table, qi_columns));
  AnonymityMetrics m;
  m.num_classes = groups.size();
  size_t total = 0;
  bool first = true;
  for (const auto& [_, rows] : groups) {
    total += rows.size();
    if (first || rows.size() < m.min_class_size) m.min_class_size = rows.size();
    first = false;
    m.discernibility += static_cast<double>(rows.size()) *
                        static_cast<double>(rows.size());
  }
  const double n = static_cast<double>(total + suppressed_rows);
  m.discernibility += static_cast<double>(suppressed_rows) * n;
  m.avg_class_size =
      m.num_classes == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(m.num_classes);
  return m;
}

Result<bool> IsKAnonymous(const relational::Table& table,
                          const std::vector<std::string>& qi_columns, size_t k) {
  PIYE_ASSIGN_OR_RETURN(auto groups, GroupByQi(table, qi_columns));
  for (const auto& [_, rows] : groups) {
    if (rows.size() < k) return false;
  }
  return true;
}

Result<bool> IsLDiverse(const relational::Table& table,
                        const std::vector<std::string>& qi_columns,
                        const std::string& sensitive_column, size_t l) {
  PIYE_ASSIGN_OR_RETURN(auto groups, GroupByQi(table, qi_columns));
  PIYE_ASSIGN_OR_RETURN(size_t sens, table.schema().IndexOf(sensitive_column));
  for (const auto& [_, rows] : groups) {
    std::map<std::string, size_t> distinct;
    for (size_t r : rows) ++distinct[table.row(r)[sens].ToDisplayString()];
    if (distinct.size() < l) return false;
  }
  return true;
}

Result<AnonymizationResult> KAnonymizer::ApplyLevels(
    const relational::Table& input, const std::vector<size_t>& levels) const {
  if (levels.size() != qis_.size()) {
    return Status::InvalidArgument("level vector arity mismatch");
  }
  // Build the generalized table: QI columns become STRING.
  std::vector<size_t> qi_idx;
  for (const auto& qi : qis_) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(qi.column));
    qi_idx.push_back(i);
  }
  relational::Schema schema;
  for (size_t c = 0; c < input.schema().num_columns(); ++c) {
    bool is_qi = false;
    for (size_t i : qi_idx) {
      if (i == c) is_qi = true;
    }
    schema.AddColumn({input.schema().column(c).name,
                      is_qi ? relational::ColumnType::kString
                            : input.schema().column(c).type});
  }
  relational::Table generalized(schema);
  for (size_t r = 0; r < input.num_rows(); ++r) {
    relational::Row row = input.row(r);
    for (size_t q = 0; q < qis_.size(); ++q) {
      row[qi_idx[q]] = relational::Value::Str(
          qis_[q].hierarchy->Generalize(input.row(r)[qi_idx[q]], levels[q]));
    }
    generalized.AppendRowUnchecked(std::move(row));
  }
  // Suppress undersized classes.
  std::vector<std::string> qi_cols;
  for (const auto& qi : qis_) qi_cols.push_back(qi.column);
  PIYE_ASSIGN_OR_RETURN(auto groups, GroupByQi(generalized, qi_cols));
  std::vector<bool> keep(generalized.num_rows(), true);
  size_t suppressed = 0;
  for (const auto& [_, rows] : groups) {
    if (rows.size() >= k_) continue;
    for (size_t r : rows) keep[r] = false;
    suppressed += rows.size();
  }
  AnonymizationResult out;
  out.levels = levels;
  out.suppressed_rows = suppressed;
  out.table = relational::Table(schema);
  for (size_t r = 0; r < generalized.num_rows(); ++r) {
    if (keep[r]) out.table.AppendRowUnchecked(generalized.row(r));
  }
  return out;
}

double KAnonymizer::GeneralizationLoss(const std::vector<size_t>& levels) const {
  if (qis_.empty()) return 0.0;
  double total = 0.0;
  for (size_t q = 0; q < qis_.size(); ++q) {
    const double maxl = static_cast<double>(qis_[q].hierarchy->max_level());
    total += maxl == 0.0 ? 0.0 : static_cast<double>(levels[q]) / maxl;
  }
  return total / static_cast<double>(qis_.size());
}

Result<AnonymizationResult> KAnonymizer::Anonymize(
    const relational::Table& input) const {
  if (input.num_rows() < k_) {
    return Status::PrivacyViolation(
        strings::Format("table has %zu rows, cannot be %zu-anonymous",
                        input.num_rows(), k_));
  }
  // Enumerate level vectors in order of increasing total height.
  size_t max_height = 0;
  for (const auto& qi : qis_) max_height += qi.hierarchy->max_level();
  std::vector<size_t> levels(qis_.size(), 0);
  for (size_t height = 0; height <= max_height; ++height) {
    // Depth-first enumeration of vectors summing to `height`.
    std::vector<size_t> stack_level(qis_.size(), 0);
    // Simple recursive lambda.
    AnonymizationResult best;
    bool found = false;
    std::function<void(size_t, size_t)> enumerate = [&](size_t dim, size_t remaining) {
      if (found) return;
      if (dim == qis_.size()) {
        if (remaining != 0) return;
        auto result = ApplyLevels(input, stack_level);
        if (!result.ok()) return;
        if (result->suppressed_rows <= max_suppression_ &&
            result->table.num_rows() >= k_) {
          best = std::move(result).value();
          found = true;
        }
        return;
      }
      const size_t cap = std::min(remaining, qis_[dim].hierarchy->max_level());
      for (size_t l = 0; l <= cap; ++l) {
        stack_level[dim] = l;
        enumerate(dim + 1, remaining - l);
        if (found) return;
      }
    };
    enumerate(0, height);
    if (found) return best;
  }
  return Status::PrivacyViolation("no generalization achieves k-anonymity");
}

namespace {

struct MondrianPartition {
  std::vector<size_t> rows;
};

}  // namespace

Result<relational::Table> Mondrian::Anonymize(const relational::Table& input) const {
  std::vector<size_t> qi_idx;
  for (const auto& col : qi_) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(col));
    if (input.schema().column(i).type != relational::ColumnType::kInt64 &&
        input.schema().column(i).type != relational::ColumnType::kDouble) {
      return Status::InvalidArgument("Mondrian QI '" + col + "' must be numeric");
    }
    qi_idx.push_back(i);
  }
  if (input.num_rows() < k_) {
    return Status::PrivacyViolation("fewer rows than k");
  }
  // Recursive median partitioning.
  std::vector<MondrianPartition> final_parts;
  std::vector<MondrianPartition> work;
  MondrianPartition all;
  for (size_t r = 0; r < input.num_rows(); ++r) all.rows.push_back(r);
  work.push_back(std::move(all));
  while (!work.empty()) {
    MondrianPartition part = std::move(work.back());
    work.pop_back();
    // Choose the QI with the widest normalized range in this partition.
    size_t best_dim = qi_idx.size();
    double best_range = 0.0;
    for (size_t d = 0; d < qi_idx.size(); ++d) {
      double lo = 0.0, hi = 0.0;
      bool first = true;
      for (size_t r : part.rows) {
        const double x = input.row(r)[qi_idx[d]].AsDouble();
        if (first) {
          lo = hi = x;
          first = false;
        } else {
          lo = std::min(lo, x);
          hi = std::max(hi, x);
        }
      }
      if (hi - lo > best_range) {
        best_range = hi - lo;
        best_dim = d;
      }
    }
    bool split_done = false;
    if (best_dim < qi_idx.size() && part.rows.size() >= 2 * k_ && best_range > 0.0) {
      // Median split on best_dim.
      std::vector<size_t> sorted = part.rows;
      const size_t col = qi_idx[best_dim];
      std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
        return input.row(a)[col].AsDouble() < input.row(b)[col].AsDouble();
      });
      const size_t mid = sorted.size() / 2;
      const double split_value = input.row(sorted[mid])[col].AsDouble();
      MondrianPartition left, right;
      for (size_t r : sorted) {
        if (input.row(r)[col].AsDouble() < split_value) {
          left.rows.push_back(r);
        } else {
          right.rows.push_back(r);
        }
      }
      if (left.rows.size() >= k_ && right.rows.size() >= k_) {
        work.push_back(std::move(left));
        work.push_back(std::move(right));
        split_done = true;
      }
    }
    if (!split_done) final_parts.push_back(std::move(part));
  }
  // Emit: QI columns as range strings.
  relational::Schema schema;
  for (size_t c = 0; c < input.schema().num_columns(); ++c) {
    const bool is_qi =
        std::find(qi_idx.begin(), qi_idx.end(), c) != qi_idx.end();
    schema.AddColumn({input.schema().column(c).name,
                      is_qi ? relational::ColumnType::kString
                            : input.schema().column(c).type});
  }
  relational::Table out(schema);
  for (const auto& part : final_parts) {
    // Ranges per QI.
    std::vector<std::string> ranges(qi_idx.size());
    for (size_t d = 0; d < qi_idx.size(); ++d) {
      double lo = 0.0, hi = 0.0;
      bool first = true;
      for (size_t r : part.rows) {
        const double x = input.row(r)[qi_idx[d]].AsDouble();
        if (first) {
          lo = hi = x;
          first = false;
        } else {
          lo = std::min(lo, x);
          hi = std::max(hi, x);
        }
      }
      ranges[d] = lo == hi ? strings::Format("%g", lo)
                           : strings::Format("%g..%g", lo, hi);
    }
    for (size_t r : part.rows) {
      relational::Row row = input.row(r);
      for (size_t d = 0; d < qi_idx.size(); ++d) {
        row[qi_idx[d]] = relational::Value::Str(ranges[d]);
      }
      out.AppendRowUnchecked(std::move(row));
    }
  }
  return out;
}

}  // namespace anonymity
}  // namespace piye

#include "anonymity/kanonymity.h"

#include <algorithm>
#include <functional>
#include <map>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace anonymity {

namespace {

/// Group keys: rendered QI values per row.
Result<std::map<std::vector<std::string>, std::vector<size_t>>> GroupByQi(
    const relational::Table& table, const std::vector<std::string>& qi_columns) {
  std::vector<size_t> idx;
  for (const auto& col : qi_columns) {
    PIYE_ASSIGN_OR_RETURN(size_t i, table.schema().IndexOf(col));
    idx.push_back(i);
  }
  // Column-at-a-time: read each QI cell straight from its column instead of
  // materializing a full row per cell.
  std::vector<const relational::ColumnVector*> cols;
  cols.reserve(idx.size());
  for (size_t i : idx) cols.push_back(&table.col(i));
  std::map<std::vector<std::string>, std::vector<size_t>> groups;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> key;
    key.reserve(idx.size());
    for (const auto* col : cols) key.push_back(col->ValueAt(r).ToDisplayString());
    groups[key].push_back(r);
  }
  return groups;
}

}  // namespace

Result<AnonymityMetrics> ComputeMetrics(const relational::Table& table,
                                        const std::vector<std::string>& qi_columns,
                                        size_t suppressed_rows) {
  PIYE_ASSIGN_OR_RETURN(auto groups, GroupByQi(table, qi_columns));
  AnonymityMetrics m;
  m.num_classes = groups.size();
  size_t total = 0;
  bool first = true;
  for (const auto& [_, rows] : groups) {
    total += rows.size();
    if (first || rows.size() < m.min_class_size) m.min_class_size = rows.size();
    first = false;
    m.discernibility += static_cast<double>(rows.size()) *
                        static_cast<double>(rows.size());
  }
  const double n = static_cast<double>(total + suppressed_rows);
  m.discernibility += static_cast<double>(suppressed_rows) * n;
  m.avg_class_size =
      m.num_classes == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(m.num_classes);
  return m;
}

Result<bool> IsKAnonymous(const relational::Table& table,
                          const std::vector<std::string>& qi_columns, size_t k) {
  PIYE_ASSIGN_OR_RETURN(auto groups, GroupByQi(table, qi_columns));
  for (const auto& [_, rows] : groups) {
    if (rows.size() < k) return false;
  }
  return true;
}

Result<bool> IsLDiverse(const relational::Table& table,
                        const std::vector<std::string>& qi_columns,
                        const std::string& sensitive_column, size_t l) {
  PIYE_ASSIGN_OR_RETURN(auto groups, GroupByQi(table, qi_columns));
  PIYE_ASSIGN_OR_RETURN(size_t sens, table.schema().IndexOf(sensitive_column));
  const relational::ColumnVector& sens_col = table.col(sens);
  for (const auto& [_, rows] : groups) {
    std::map<std::string, size_t> distinct;
    for (size_t r : rows) ++distinct[sens_col.ValueAt(r).ToDisplayString()];
    if (distinct.size() < l) return false;
  }
  return true;
}

Result<AnonymizationResult> KAnonymizer::ApplyLevels(
    const relational::Table& input, const std::vector<size_t>& levels) const {
  if (levels.size() != qis_.size()) {
    return Status::InvalidArgument("level vector arity mismatch");
  }
  // Build the generalized table: QI columns become STRING.
  std::vector<size_t> qi_idx;
  for (const auto& qi : qis_) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(qi.column));
    qi_idx.push_back(i);
  }
  std::vector<long> qi_of(input.schema().num_columns(), -1);
  for (size_t q = 0; q < qi_idx.size(); ++q) qi_of[qi_idx[q]] = static_cast<long>(q);
  relational::Schema schema;
  for (size_t c = 0; c < input.schema().num_columns(); ++c) {
    schema.AddColumn({input.schema().column(c).name,
                      qi_of[c] >= 0 ? relational::ColumnType::kString
                                    : input.schema().column(c).type});
  }
  // Column-wise build: non-QI columns are copied whole, each QI column is
  // generalized in one pass into a fresh STRING column.
  relational::Table generalized;
  for (size_t c = 0; c < input.schema().num_columns(); ++c) {
    if (qi_of[c] < 0) {
      generalized.AddColumn(schema.column(c), input.col(c));
      continue;
    }
    const size_t q = static_cast<size_t>(qi_of[c]);
    const relational::ColumnVector& cv = input.col(c);
    relational::ColumnVector data(relational::ColumnType::kString);
    data.Reserve(input.num_rows());
    for (size_t r = 0; r < input.num_rows(); ++r) {
      data.AppendStr(qis_[q].hierarchy->Generalize(cv.ValueAt(r), levels[q]));
    }
    generalized.AddColumn(schema.column(c), std::move(data));
  }
  // Suppress undersized classes.
  std::vector<std::string> qi_cols;
  for (const auto& qi : qis_) qi_cols.push_back(qi.column);
  PIYE_ASSIGN_OR_RETURN(auto groups, GroupByQi(generalized, qi_cols));
  std::vector<bool> keep(generalized.num_rows(), true);
  size_t suppressed = 0;
  for (const auto& [_, rows] : groups) {
    if (rows.size() >= k_) continue;
    for (size_t r : rows) keep[r] = false;
    suppressed += rows.size();
  }
  AnonymizationResult out;
  out.levels = levels;
  out.suppressed_rows = suppressed;
  std::vector<uint32_t> sel;
  sel.reserve(generalized.num_rows());
  for (size_t r = 0; r < generalized.num_rows(); ++r) {
    if (keep[r]) sel.push_back(static_cast<uint32_t>(r));
  }
  out.table = generalized.Gather(sel);
  return out;
}

double KAnonymizer::GeneralizationLoss(const std::vector<size_t>& levels) const {
  if (qis_.empty()) return 0.0;
  double total = 0.0;
  for (size_t q = 0; q < qis_.size(); ++q) {
    const double maxl = static_cast<double>(qis_[q].hierarchy->max_level());
    total += maxl == 0.0 ? 0.0 : static_cast<double>(levels[q]) / maxl;
  }
  return total / static_cast<double>(qis_.size());
}

Result<AnonymizationResult> KAnonymizer::Anonymize(
    const relational::Table& input) const {
  if (input.num_rows() < k_) {
    return Status::PrivacyViolation(
        strings::Format("table has %zu rows, cannot be %zu-anonymous",
                        input.num_rows(), k_));
  }
  // Enumerate level vectors in order of increasing total height.
  size_t max_height = 0;
  for (const auto& qi : qis_) max_height += qi.hierarchy->max_level();
  std::vector<size_t> levels(qis_.size(), 0);
  for (size_t height = 0; height <= max_height; ++height) {
    // Depth-first enumeration of vectors summing to `height`.
    std::vector<size_t> stack_level(qis_.size(), 0);
    // Simple recursive lambda.
    AnonymizationResult best;
    bool found = false;
    std::function<void(size_t, size_t)> enumerate = [&](size_t dim, size_t remaining) {
      if (found) return;
      if (dim == qis_.size()) {
        if (remaining != 0) return;
        auto result = ApplyLevels(input, stack_level);
        if (!result.ok()) return;
        if (result->suppressed_rows <= max_suppression_ &&
            result->table.num_rows() >= k_) {
          best = std::move(result).value();
          found = true;
        }
        return;
      }
      const size_t cap = std::min(remaining, qis_[dim].hierarchy->max_level());
      for (size_t l = 0; l <= cap; ++l) {
        stack_level[dim] = l;
        enumerate(dim + 1, remaining - l);
        if (found) return;
      }
    };
    enumerate(0, height);
    if (found) return best;
  }
  return Status::PrivacyViolation("no generalization achieves k-anonymity");
}

namespace {

struct MondrianPartition {
  std::vector<size_t> rows;
};

}  // namespace

Result<relational::Table> Mondrian::Anonymize(const relational::Table& input) const {
  std::vector<size_t> qi_idx;
  for (const auto& col : qi_) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(col));
    if (input.schema().column(i).type != relational::ColumnType::kInt64 &&
        input.schema().column(i).type != relational::ColumnType::kDouble) {
      return Status::InvalidArgument("Mondrian QI '" + col + "' must be numeric");
    }
    qi_idx.push_back(i);
  }
  if (input.num_rows() < k_) {
    return Status::PrivacyViolation("fewer rows than k");
  }
  // Per-dimension typed readers (validated numeric above); a NULL cell reads
  // as its zeroed slot.
  std::vector<const relational::ColumnVector*> dim_cols;
  std::vector<bool> dim_is_int;
  for (size_t i : qi_idx) {
    dim_cols.push_back(&input.col(i));
    dim_is_int.push_back(input.schema().column(i).type ==
                         relational::ColumnType::kInt64);
  }
  auto num_at = [&](size_t d, size_t r) {
    return dim_is_int[d] ? static_cast<double>(dim_cols[d]->IntAt(r))
                         : dim_cols[d]->RealAt(r);
  };
  // Recursive median partitioning.
  std::vector<MondrianPartition> final_parts;
  std::vector<MondrianPartition> work;
  MondrianPartition all;
  for (size_t r = 0; r < input.num_rows(); ++r) all.rows.push_back(r);
  work.push_back(std::move(all));
  while (!work.empty()) {
    MondrianPartition part = std::move(work.back());
    work.pop_back();
    // Choose the QI with the widest normalized range in this partition.
    size_t best_dim = qi_idx.size();
    double best_range = 0.0;
    for (size_t d = 0; d < qi_idx.size(); ++d) {
      double lo = 0.0, hi = 0.0;
      bool first = true;
      for (size_t r : part.rows) {
        const double x = num_at(d, r);
        if (first) {
          lo = hi = x;
          first = false;
        } else {
          lo = std::min(lo, x);
          hi = std::max(hi, x);
        }
      }
      if (hi - lo > best_range) {
        best_range = hi - lo;
        best_dim = d;
      }
    }
    bool split_done = false;
    if (best_dim < qi_idx.size() && part.rows.size() >= 2 * k_ && best_range > 0.0) {
      // Median split on best_dim.
      std::vector<size_t> sorted = part.rows;
      std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
        return num_at(best_dim, a) < num_at(best_dim, b);
      });
      const size_t mid = sorted.size() / 2;
      const double split_value = num_at(best_dim, sorted[mid]);
      MondrianPartition left, right;
      for (size_t r : sorted) {
        if (num_at(best_dim, r) < split_value) {
          left.rows.push_back(r);
        } else {
          right.rows.push_back(r);
        }
      }
      if (left.rows.size() >= k_ && right.rows.size() >= k_) {
        work.push_back(std::move(left));
        work.push_back(std::move(right));
        split_done = true;
      }
    }
    if (!split_done) final_parts.push_back(std::move(part));
  }
  // Emit: QI columns as range strings.
  relational::Schema schema;
  for (size_t c = 0; c < input.schema().num_columns(); ++c) {
    const bool is_qi =
        std::find(qi_idx.begin(), qi_idx.end(), c) != qi_idx.end();
    schema.AddColumn({input.schema().column(c).name,
                      is_qi ? relational::ColumnType::kString
                            : input.schema().column(c).type});
  }
  // Emit column-wise: a selection vector gathers the non-QI columns in
  // partition order, while each QI column is rewritten as range strings.
  std::vector<uint32_t> sel;
  sel.reserve(input.num_rows());
  std::vector<relational::ColumnVector> qi_out;
  for (size_t d = 0; d < qi_idx.size(); ++d) {
    qi_out.emplace_back(relational::ColumnType::kString);
    qi_out.back().Reserve(input.num_rows());
  }
  for (const auto& part : final_parts) {
    // Ranges per QI.
    std::vector<std::string> ranges(qi_idx.size());
    for (size_t d = 0; d < qi_idx.size(); ++d) {
      double lo = 0.0, hi = 0.0;
      bool first = true;
      for (size_t r : part.rows) {
        const double x = num_at(d, r);
        if (first) {
          lo = hi = x;
          first = false;
        } else {
          lo = std::min(lo, x);
          hi = std::max(hi, x);
        }
      }
      ranges[d] = lo == hi ? strings::Format("%g", lo)
                           : strings::Format("%g..%g", lo, hi);
    }
    for (size_t r : part.rows) {
      sel.push_back(static_cast<uint32_t>(r));
      for (size_t d = 0; d < qi_idx.size(); ++d) qi_out[d].AppendStr(ranges[d]);
    }
  }
  relational::Table out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const auto it = std::find(qi_idx.begin(), qi_idx.end(), c);
    if (it != qi_idx.end()) {
      const size_t d = static_cast<size_t>(it - qi_idx.begin());
      out.AddColumn(schema.column(c), std::move(qi_out[d]));
    } else {
      out.AddColumn(schema.column(c), input.col(c).Gather(sel.data(), sel.size()));
    }
  }
  return out;
}

}  // namespace anonymity
}  // namespace piye

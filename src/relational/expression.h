#ifndef PIYE_RELATIONAL_EXPRESSION_H_
#define PIYE_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"

namespace piye {
namespace relational {

/// A scalar expression tree over a row: literals, column references,
/// comparisons, boolean connectives, arithmetic, LIKE, and IN lists.
///
/// Expressions are immutable once built and shared via shared_ptr so the
/// privacy rewriter (source/privacy_rewriter.h) can compose policy predicates
/// with requester predicates without copying subtrees.
class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

class Expression {
 public:
  enum class Op {
    kLiteral,
    kColumn,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kLike,  ///< SQL LIKE with % and _ wildcards
    kIn,    ///< column IN (literal, ...)
  };

  // --- Factory functions ---
  static ExprPtr Literal(Value v);
  static ExprPtr ColumnRef(std::string name);
  static ExprPtr Binary(Op op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr In(ExprPtr lhs, std::vector<Value> values);
  /// Conjunction helper; either side may be null (returns the other).
  static ExprPtr And(ExprPtr a, ExprPtr b);

  Op op() const { return op_; }
  const Value& literal() const { return literal_; }
  const std::string& column() const { return column_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  const std::vector<Value>& in_values() const { return in_values_; }

  /// Evaluates against a row. Comparisons with NULL yield FALSE (SQL-ish
  /// two-valued simplification).
  Result<Value> Evaluate(const Row& row, const Schema& schema) const;

  /// Evaluates and coerces to a boolean (NULL → false).
  Result<bool> EvaluatesTrue(const Row& row, const Schema& schema) const;

  /// Column names referenced anywhere in the tree.
  void CollectColumns(std::set<std::string>* out) const;

  /// Number of nodes (used as a query feature by the cluster matcher).
  size_t NodeCount() const;

  /// SQL-ish rendering.
  std::string ToString() const;

 private:
  Expression() = default;

  Op op_ = Op::kLiteral;
  Value literal_;
  std::string column_;
  ExprPtr lhs_;
  ExprPtr rhs_;
  std::vector<Value> in_values_;
};

/// Returns true if `text` matches the SQL LIKE `pattern` (% = any run,
/// _ = any single char). Exposed for testing.
bool SqlLikeMatch(const std::string& text, const std::string& pattern);

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_EXPRESSION_H_

#include "relational/column.h"

#include <cstring>

namespace piye {
namespace relational {

namespace {

// Popcount per validity word; __builtin_popcountll is available on both
// toolchains this repo builds with.
inline int PopCount64(uint64_t w) { return __builtin_popcountll(w); }

}  // namespace

size_t ColumnVector::CountValid() const {
  size_t n = 0;
  for (uint64_t w : validity_) n += static_cast<size_t>(PopCount64(w));
  return n;
}

void ColumnVector::Reserve(size_t n) {
  validity_.reserve((n + 63) / 64);
  switch (type_) {
    case ColumnType::kInt64:
      ints_.reserve(n);
      break;
    case ColumnType::kDouble:
      reals_.reserve(n);
      break;
    case ColumnType::kBool:
      bools_.reserve(n);
      break;
    case ColumnType::kString:
      str_offset_.reserve(n);
      str_len_.reserve(n);
      break;
  }
}

void ColumnVector::AppendValiditySlot(bool present) {
  const size_t word = size_ >> 6;
  if (word >= validity_.size()) validity_.push_back(0);
  if (present) validity_[word] |= uint64_t{1} << (size_ & 63);
  ++size_;
}

void ColumnVector::AppendNull() {
  switch (type_) {
    case ColumnType::kInt64:
      ints_.push_back(0);
      break;
    case ColumnType::kDouble:
      reals_.push_back(0.0);
      break;
    case ColumnType::kBool:
      bools_.push_back(0);
      break;
    case ColumnType::kString:
      str_offset_.push_back(0);
      str_len_.push_back(0);
      break;
  }
  AppendValiditySlot(false);
}

void ColumnVector::AppendInt(int64_t v) {
  ints_.push_back(v);
  AppendValiditySlot(true);
}

void ColumnVector::AppendReal(double v) {
  reals_.push_back(v);
  AppendValiditySlot(true);
}

void ColumnVector::AppendBool(bool v) {
  bools_.push_back(v ? 1 : 0);
  AppendValiditySlot(true);
}

void ColumnVector::AppendStr(std::string_view v) {
  str_offset_.push_back(static_cast<uint32_t>(arena_.size()));
  str_len_.push_back(static_cast<uint32_t>(v.size()));
  arena_.append(v.data(), v.size());
  AppendValiditySlot(true);
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ColumnType::kInt64:
      if (v.is_int()) {
        AppendInt(v.AsInt());
        return;
      }
      break;
    case ColumnType::kDouble:
      if (v.is_numeric()) {
        AppendReal(v.AsDouble());
        return;
      }
      break;
    case ColumnType::kBool:
      if (v.is_bool()) {
        AppendBool(v.AsBool());
        return;
      }
      break;
    case ColumnType::kString:
      if (v.is_string()) {
        AppendStr(v.AsString());
        return;
      }
      break;
  }
  AppendNull();
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ColumnType::kInt64:
      AppendInt(src.ints_[i]);
      break;
    case ColumnType::kDouble:
      AppendReal(src.reals_[i]);
      break;
    case ColumnType::kBool:
      AppendBool(src.bools_[i] != 0);
      break;
    case ColumnType::kString:
      AppendStr(src.StrAt(i));
      break;
  }
}

Value ColumnVector::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case ColumnType::kInt64:
      return Value::Int(ints_[i]);
    case ColumnType::kDouble:
      return Value::Real(reals_[i]);
    case ColumnType::kBool:
      return Value::Boolean(bools_[i] != 0);
    case ColumnType::kString:
      return Value::Str(std::string(StrAt(i)));
  }
  return Value::Null();
}

void ColumnVector::Set(size_t i, const Value& v) {
  if (v.is_null()) {
    SetNull(i);
    return;
  }
  switch (type_) {
    case ColumnType::kInt64:
      if (!v.is_int()) {
        SetNull(i);
        return;
      }
      ints_[i] = v.AsInt();
      break;
    case ColumnType::kDouble:
      if (!v.is_numeric()) {
        SetNull(i);
        return;
      }
      reals_[i] = v.AsDouble();
      break;
    case ColumnType::kBool:
      if (!v.is_bool()) {
        SetNull(i);
        return;
      }
      bools_[i] = v.AsBool() ? 1 : 0;
      break;
    case ColumnType::kString: {
      if (!v.is_string()) {
        SetNull(i);
        return;
      }
      const std::string& s = v.AsString();
      if (s.size() <= str_len_[i]) {
        // Reuse the existing slot when the new payload fits.
        std::memcpy(arena_.data() + str_offset_[i], s.data(), s.size());
        str_len_[i] = static_cast<uint32_t>(s.size());
      } else {
        str_offset_[i] = static_cast<uint32_t>(arena_.size());
        str_len_[i] = static_cast<uint32_t>(s.size());
        arena_.append(s);
      }
      break;
    }
  }
  validity_[i >> 6] |= uint64_t{1} << (i & 63);
}

void ColumnVector::SetNull(size_t i) {
  validity_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  switch (type_) {
    case ColumnType::kInt64:
      ints_[i] = 0;
      break;
    case ColumnType::kDouble:
      reals_[i] = 0.0;
      break;
    case ColumnType::kBool:
      bools_[i] = 0;
      break;
    case ColumnType::kString:
      str_offset_[i] = 0;
      str_len_[i] = 0;
      break;
  }
}

ColumnVector ColumnVector::Gather(const uint32_t* sel, size_t n) const {
  ColumnVector out(type_);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.AppendFrom(*this, sel[i]);
  }
  return out;
}

void ColumnVector::AppendColumn(const ColumnVector& other) {
  Reserve(size_ + other.size_);
  for (size_t i = 0; i < other.size_; ++i) {
    AppendFrom(other, i);
  }
}

void ColumnVector::EncodeCell(size_t i, std::string* out) const {
  // Tag bytes mirror Value::Compare's type ranks: NULL < BOOL < numeric <
  // STRING. Both numeric types share one tag so an INT64 key and a DOUBLE
  // key with the same AsDouble() collide, exactly like Compare orders them
  // equal.
  if (IsNull(i)) {
    out->push_back('\x00');
    return;
  }
  switch (type_) {
    case ColumnType::kBool:
      out->push_back('\x01');
      out->push_back(bools_[i] ? '\x01' : '\x00');
      return;
    case ColumnType::kInt64:
    case ColumnType::kDouble: {
      out->push_back('\x02');
      double d = type_ == ColumnType::kInt64 ? static_cast<double>(ints_[i])
                                             : reals_[i];
      if (d == 0.0) d = 0.0;  // canonicalize -0.0 (Compare treats them equal)
      char buf[sizeof(double)];
      std::memcpy(buf, &d, sizeof(double));
      out->append(buf, sizeof(double));
      return;
    }
    case ColumnType::kString: {
      out->push_back('\x03');
      const std::string_view s = StrAt(i);
      const uint32_t len = static_cast<uint32_t>(s.size());
      char buf[sizeof(uint32_t)];
      std::memcpy(buf, &len, sizeof(uint32_t));
      out->append(buf, sizeof(uint32_t));
      out->append(s.data(), s.size());
      return;
    }
  }
}

size_t ColumnVector::ApproxBytes() const {
  size_t bytes = sizeof(ColumnVector);
  bytes += validity_.capacity() * sizeof(uint64_t);
  bytes += ints_.capacity() * sizeof(int64_t);
  bytes += reals_.capacity() * sizeof(double);
  bytes += bools_.capacity() * sizeof(uint8_t);
  bytes += str_offset_.capacity() * sizeof(uint32_t);
  bytes += str_len_.capacity() * sizeof(uint32_t);
  bytes += arena_.capacity();
  return bytes;
}

}  // namespace relational
}  // namespace piye

#ifndef PIYE_RELATIONAL_SQL_H_
#define PIYE_RELATIONAL_SQL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/expression.h"

namespace piye {
namespace relational {

/// Aggregate functions supported by the executor.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax, kStdDev };

const char* AggFuncToString(AggFunc f);

/// One item of a SELECT list.
struct SelectItem {
  enum class Kind {
    kStar,       ///< `*`
    kColumn,     ///< `col`
    kAggregate,  ///< `FUNC(col)` or `COUNT(*)` (column empty)
  };

  Kind kind = Kind::kColumn;
  std::string column;
  AggFunc func = AggFunc::kCount;
  std::string alias;

  static SelectItem Star() { return {Kind::kStar, "", AggFunc::kCount, ""}; }
  static SelectItem Col(std::string name, std::string alias = "") {
    return {Kind::kColumn, std::move(name), AggFunc::kCount, std::move(alias)};
  }
  static SelectItem Agg(AggFunc f, std::string col, std::string alias = "") {
    return {Kind::kAggregate, std::move(col), f, std::move(alias)};
  }

  /// Column name in the result schema: alias if given, else `col` or
  /// `func(col)`.
  std::string OutputName() const;
};

/// ORDER BY key.
struct OrderKey {
  std::string column;
  bool ascending = true;
};

/// A parsed SELECT statement over a single table.
///
/// Grammar (case-insensitive keywords):
///   SELECT item [, item]* FROM table
///     [WHERE expr] [GROUP BY col [, col]*]
///     [ORDER BY col [ASC|DESC] [, ...]] [LIMIT n]
///
/// This covers the query surface the mediation engine fragments to sources —
/// selections, projections, and the statistical aggregates whose privacy the
/// paper's Example 1 is about. Joins are performed by the executor API (the
/// integrator), not inside source SQL.
struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  ExprPtr where;  ///< null means no WHERE clause
  std::vector<std::string> group_by;
  std::vector<OrderKey> order_by;
  std::optional<size_t> limit;

  bool HasAggregates() const;
  bool HasStar() const;

  /// Renders back to SQL text (normalized).
  std::string ToSql() const;
};

/// Parses the SELECT subset described above.
Result<SelectStatement> ParseSql(std::string_view sql);

/// Parses just an expression (the WHERE grammar), used by policy languages to
/// express row conditions.
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_SQL_H_

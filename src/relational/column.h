#ifndef PIYE_RELATIONAL_COLUMN_H_
#define PIYE_RELATIONAL_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "relational/value.h"

namespace piye {
namespace relational {

/// Column-major typed storage for one table column.
///
/// Cells live in a contiguous typed buffer chosen by the column's
/// ColumnType — `int64_t` for kInt64, `double` for kDouble, `uint8_t` for
/// kBool, and an (offset, length) pair into a shared byte arena for kString.
/// NULLs are tracked by a validity bitmap (bit set = value present); a NULL
/// cell still occupies its aligned slot in the typed buffer (with a zero
/// payload), so positional row indexes always line up with buffer indexes.
/// That invariant is what makes NULL-misalignment bugs (dense value vector
/// written back by raw row index) structurally impossible against this
/// storage.
///
/// Mutation is append-or-overwrite: `Set` on a string cell appends the new
/// bytes to the arena and repoints the cell (the old bytes stay until the
/// column is rebuilt, e.g. by Gather). ApproxBytes reports the real buffer
/// footprint including such slack.
class ColumnVector {
 public:
  ColumnVector() = default;
  explicit ColumnVector(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }
  size_t size() const { return size_; }

  // -- validity ------------------------------------------------------------
  bool IsNull(size_t i) const {
    return (validity_[i >> 6] & (uint64_t{1} << (i & 63))) == 0;
  }
  /// Number of non-NULL cells.
  size_t CountValid() const;

  // -- typed readers (only valid for the matching type(); a NULL cell reads
  // -- as the zero payload) ------------------------------------------------
  const int64_t* ints() const { return ints_.data(); }
  const double* reals() const { return reals_.data(); }
  const uint8_t* bools() const { return bools_.data(); }
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double RealAt(size_t i) const { return reals_[i]; }
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  std::string_view StrAt(size_t i) const {
    return std::string_view(arena_.data() + str_offset_[i], str_len_[i]);
  }

  // -- typed writers (in-place perturbation kernels; cell must be
  // -- non-NULL-aware via the validity bitmap) -----------------------------
  int64_t* mutable_ints() { return ints_.data(); }
  double* mutable_reals() { return reals_.data(); }
  uint8_t* mutable_bools() { return bools_.data(); }

  // -- appends -------------------------------------------------------------
  void Reserve(size_t n);
  void AppendNull();
  void AppendInt(int64_t v);
  void AppendReal(double v);
  void AppendBool(bool v);
  void AppendStr(std::string_view v);
  /// Appends `v` coerced to this column's type: NULL appends NULL, an exact
  /// type match appends directly, an INT64 value widens into a kDouble
  /// column. Any other mismatch appends NULL (such cells were already
  /// unserializable under the row engine).
  void AppendValue(const Value& v);
  /// Appends cell `i` of `src` (same ColumnType required).
  void AppendFrom(const ColumnVector& src, size_t i);

  // -- point access --------------------------------------------------------
  /// Materializes cell `i` as a Value (NULL-aware).
  Value ValueAt(size_t i) const;
  /// Overwrites cell `i` with `v` (same coercion rules as AppendValue).
  void Set(size_t i, const Value& v);
  /// Marks cell `i` NULL (zeroing its typed slot).
  void SetNull(size_t i);

  // -- batch ops -----------------------------------------------------------
  /// New column holding rows `sel[0..n)` of this one, in that order. String
  /// columns are compacted (arena slack from Set is dropped).
  ColumnVector Gather(const uint32_t* sel, size_t n) const;
  /// Appends all cells of `other` (same ColumnType required).
  void AppendColumn(const ColumnVector& other);

  /// Appends the canonical grouping/join key encoding of cell `i` to `out`.
  /// Two cells encode identically iff `Value::Compare` orders them equal:
  /// NULL is a single tag byte, booleans a tag + payload byte, numerics a
  /// tag + the bit pattern of `AsDouble()` (with -0.0 canonicalized to +0.0,
  /// matching Compare's cross-type numeric comparison — including its lossy
  /// collapse of distinct INT64s above 2^53), strings a tag + length +
  /// bytes.
  void EncodeCell(size_t i, std::string* out) const;

  /// Actual buffer footprint: typed payload + validity words + (for string
  /// columns) arena bytes and offset/length vectors.
  size_t ApproxBytes() const;

 private:
  void AppendValiditySlot(bool present);

  ColumnType type_ = ColumnType::kString;
  size_t size_ = 0;
  /// One bit per cell, 1 = value present. Word-packed, little-endian bits.
  std::vector<uint64_t> validity_;

  // Exactly one of these holds payloads, per type_. String cells are
  // (offset, length) views into arena_.
  std::vector<int64_t> ints_;
  std::vector<double> reals_;
  std::vector<uint8_t> bools_;
  std::vector<uint32_t> str_offset_;
  std::vector<uint32_t> str_len_;
  std::string arena_;
};

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_COLUMN_H_

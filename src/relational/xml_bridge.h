#ifndef PIYE_RELATIONAL_XML_BRIDGE_H_
#define PIYE_RELATIONAL_XML_BRIDGE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "relational/table.h"
#include "xml/node.h"

namespace piye {
namespace relational {

/// Converts between relational tables and the canonical XML result format
/// exchanged on the wire between sources and the mediation engine:
///
///   <result name="...">
///     <schema>
///       <column name="hmo" type="STRING"/>
///     </schema>
///     <rows>
///       <row><hmo>HMO1</hmo>...</row>
///     </rows>
///   </result>
///
/// Privacy metadata attached by the MetadataTagger lives in attributes on the
/// <result> and <column> elements and survives the round-trip.
std::unique_ptr<xml::XmlNode> TableToXml(const Table& table,
                                         const std::string& name = "result");

/// Parses the canonical format back into a table.
Result<Table> XmlToTable(const xml::XmlNode& result_node);

/// Ingests *record-shaped* XML — the hierarchical stores and structured
/// files the paper's data model is chosen for — into a table:
///
///   <patients>
///     <patient><dob>1970-01-02</dob><zip>13053</zip></patient>
///     ...
///   </patients>
///
/// Every child element of `root` is a record; the schema is the union of
/// the records' child-element names, with types inferred per column (INT64
/// if every non-empty value parses as an integer, else DOUBLE if numeric,
/// else STRING). Missing fields become NULL. Nested structure below a field
/// is flattened to its inner text.
Result<Table> TableFromXmlRecords(const xml::XmlNode& root);

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_XML_BRIDGE_H_

#ifndef PIYE_RELATIONAL_EXECUTOR_H_
#define PIYE_RELATIONAL_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/sql.h"
#include "relational/table.h"

namespace piye {
namespace relational {

/// A named collection of tables — each remote source owns one, and the
/// mediator's warehouse is one too.
class Catalog {
 public:
  /// Registers a table; fails if the name exists.
  Status AddTable(const std::string& name, Table table);
  /// Replaces or creates a table.
  void PutTable(const std::string& name, Table table);
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, Table> tables_;
};

/// Volcano-in-miniature: executes a parsed SELECT against a catalog. All
/// operators also exist as standalone functions so the privacy layers can
/// compose pipelines directly (e.g. perturb → aggregate → project).
class Executor {
 public:
  explicit Executor(const Catalog* catalog) : catalog_(catalog) {}

  /// Executes a full SELECT statement.
  Result<Table> Execute(const SelectStatement& stmt) const;

  /// Parses and executes SQL text.
  Result<Table> Query(std::string_view sql) const;

  // --- Standalone relational operators ---

  /// Rows of `input` satisfying `predicate`.
  static Result<Table> Filter(const Table& input, const ExprPtr& predicate);

  /// Projection onto named columns.
  static Result<Table> Project(const Table& input, const std::vector<std::string>& columns);

  /// Grouped aggregation. With empty `group_by`, produces one global row.
  static Result<Table> Aggregate(const Table& input,
                                 const std::vector<std::string>& group_by,
                                 const std::vector<SelectItem>& aggregates);

  /// Hash equi-join on `left_key` = `right_key`. Right columns are prefixed
  /// with `right_prefix` when names collide.
  static Result<Table> HashJoin(const Table& left, const Table& right,
                                const std::string& left_key,
                                const std::string& right_key,
                                const std::string& right_prefix = "r_");

  /// Union of two tables with identical schemas.
  static Result<Table> Union(const Table& a, const Table& b);

  /// Distinct rows (exact duplicate elimination).
  static Table Distinct(const Table& input);

  /// Sorts by the given keys.
  static Result<Table> Sort(Table input, const std::vector<OrderKey>& keys);

  /// First `n` rows.
  static Table Limit(const Table& input, size_t n);

 private:
  const Catalog* catalog_;
};

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_EXECUTOR_H_

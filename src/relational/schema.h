#ifndef PIYE_RELATIONAL_SCHEMA_H_
#define PIYE_RELATIONAL_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace piye {
namespace relational {

/// A named, typed column.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kString;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of columns. Column names are unique within a schema.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> cols) : columns_(cols) {}
  explicit Schema(std::vector<Column> cols) : columns_(std::move(cols)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or error.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  void AddColumn(Column col) { columns_.push_back(std::move(col)); }

  /// Renames column `i` (used to apply SELECT aliases after projection).
  void SetColumnName(size_t i, std::string name) { columns_[i].name = std::move(name); }

  /// Schema with only the named columns (in the given order).
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// All column names in order.
  std::vector<std::string> ColumnNames() const;

  bool operator==(const Schema& other) const { return columns_ == other.columns_; }

  /// "name:TYPE, name:TYPE, ..."
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_SCHEMA_H_

#include "relational/executor.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/macros.h"
#include "common/stats.h"

namespace piye {
namespace relational {

Status Catalog::AddTable(const std::string& name, Table table) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

void Catalog::PutTable(const std::string& name, Table table) {
  tables_.insert_or_assign(name, std::move(table));
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return &it->second;
}

Result<Table*> Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) != 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

Result<Table> Executor::Filter(const Table& input, const ExprPtr& predicate) {
  if (predicate == nullptr) {
    Table out(input.schema());
    for (const Row& r : input.rows()) out.AppendRowUnchecked(r);
    return out;
  }
  Table out(input.schema());
  for (const Row& r : input.rows()) {
    PIYE_ASSIGN_OR_RETURN(bool keep, predicate->EvaluatesTrue(r, input.schema()));
    if (keep) out.AppendRowUnchecked(r);
  }
  return out;
}

Result<Table> Executor::Project(const Table& input,
                                const std::vector<std::string>& columns) {
  PIYE_ASSIGN_OR_RETURN(Schema schema, input.schema().Project(columns));
  std::vector<size_t> idx;
  for (const auto& c : columns) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(c));
    idx.push_back(i);
  }
  Table out(std::move(schema));
  for (const Row& r : input.rows()) {
    Row row;
    row.reserve(idx.size());
    for (size_t i : idx) row.push_back(r[i]);
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

namespace {

/// Accumulator for one aggregate over one group.
struct AggState {
  size_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  Value min;
  Value max;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      const double x = v.AsDouble();
      sum += x;
      sum_sq += x * x;
    }
    if (min.is_null() || v.Compare(min) < 0) min = v;
    if (max.is_null() || v.Compare(max) > 0) max = v;
  }

  Value Finish(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return Value::Int(static_cast<int64_t>(count));
      case AggFunc::kSum:
        return count == 0 ? Value::Null() : Value::Real(sum);
      case AggFunc::kAvg:
        return count == 0 ? Value::Null()
                          : Value::Real(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
      case AggFunc::kStdDev: {
        if (count == 0) return Value::Null();
        const double n = static_cast<double>(count);
        const double mean = sum / n;
        const double var = std::max(0.0, sum_sq / n - mean * mean);
        return Value::Real(std::sqrt(var));
      }
    }
    return Value::Null();
  }
};

ColumnType AggResultType(AggFunc func, ColumnType input_type) {
  switch (func) {
    case AggFunc::kCount:
      return ColumnType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return input_type;
    default:
      return ColumnType::kDouble;
  }
}

}  // namespace

Result<Table> Executor::Aggregate(const Table& input,
                                  const std::vector<std::string>& group_by,
                                  const std::vector<SelectItem>& aggregates) {
  // Resolve group and aggregate column indices.
  std::vector<size_t> group_idx;
  for (const auto& g : group_by) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(g));
    group_idx.push_back(i);
  }
  struct AggSpec {
    AggFunc func;
    long col = -1;  // -1 means COUNT(*)
    std::string out_name;
    ColumnType out_type;
  };
  std::vector<AggSpec> specs;
  for (const auto& item : aggregates) {
    if (item.kind != SelectItem::Kind::kAggregate) {
      return Status::InvalidArgument("Aggregate() requires aggregate select items");
    }
    AggSpec spec;
    spec.func = item.func;
    spec.out_name = item.OutputName();
    if (item.column.empty()) {
      if (item.func != AggFunc::kCount) {
        return Status::InvalidArgument("only COUNT can omit its column");
      }
      spec.out_type = ColumnType::kInt64;
    } else {
      PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(item.column));
      spec.col = static_cast<long>(i);
      spec.out_type = AggResultType(item.func, input.schema().column(i).type);
    }
    specs.push_back(std::move(spec));
  }
  // Output schema: group columns then aggregates.
  Schema out_schema;
  for (size_t i : group_idx) out_schema.AddColumn(input.schema().column(i));
  for (const auto& s : specs) out_schema.AddColumn({s.out_name, s.out_type});

  // Group rows. Keys are rendered values (exact semantics incl. NULL).
  std::map<std::vector<Value>, std::vector<AggState>> groups;
  std::vector<std::vector<Value>> group_order;
  for (const Row& r : input.rows()) {
    std::vector<Value> key;
    key.reserve(group_idx.size());
    for (size_t i : group_idx) key.push_back(r[i]);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<AggState>(specs.size())).first;
      group_order.push_back(key);
    }
    for (size_t s = 0; s < specs.size(); ++s) {
      if (specs[s].col < 0) {
        ++it->second[s].count;  // COUNT(*)
      } else {
        it->second[s].Add(r[static_cast<size_t>(specs[s].col)]);
      }
    }
  }
  // Global aggregation over an empty input still yields one row.
  if (group_idx.empty() && groups.empty()) {
    groups.emplace(std::vector<Value>{}, std::vector<AggState>(specs.size()));
    group_order.push_back({});
  }
  Table out(out_schema);
  for (const auto& key : group_order) {
    const auto& states = groups[key];
    Row row = key;
    for (size_t s = 0; s < specs.size(); ++s) {
      Value v = states[s].Finish(specs[s].func);
      // Widen exact ints into DOUBLE aggregate columns.
      if (specs[s].out_type == ColumnType::kDouble && v.is_int()) {
        v = Value::Real(v.AsDouble());
      }
      row.push_back(std::move(v));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<Table> Executor::HashJoin(const Table& left, const Table& right,
                                 const std::string& left_key,
                                 const std::string& right_key,
                                 const std::string& right_prefix) {
  PIYE_ASSIGN_OR_RETURN(size_t li, left.schema().IndexOf(left_key));
  PIYE_ASSIGN_OR_RETURN(size_t ri, right.schema().IndexOf(right_key));
  Schema out_schema = left.schema();
  std::vector<std::string> right_names;
  for (const auto& col : right.schema().columns()) {
    std::string name = col.name;
    if (out_schema.Contains(name)) name = right_prefix + name;
    right_names.push_back(name);
    out_schema.AddColumn({name, col.type});
  }
  // Build hash table on the right input.
  std::map<Value, std::vector<size_t>> build;
  for (size_t i = 0; i < right.num_rows(); ++i) {
    const Value& k = right.row(i)[ri];
    if (k.is_null()) continue;
    build[k].push_back(i);
  }
  Table out(std::move(out_schema));
  for (const Row& lrow : left.rows()) {
    const Value& k = lrow[li];
    if (k.is_null()) continue;
    auto it = build.find(k);
    if (it == build.end()) continue;
    for (size_t r : it->second) {
      Row row = lrow;
      for (const Value& v : right.row(r)) row.push_back(v);
      out.AppendRowUnchecked(std::move(row));
    }
  }
  return out;
}

Result<Table> Executor::Union(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("UNION requires identical schemas: [" +
                                   a.schema().ToString() + "] vs [" +
                                   b.schema().ToString() + "]");
  }
  Table out(a.schema());
  for (const Row& r : a.rows()) out.AppendRowUnchecked(r);
  for (const Row& r : b.rows()) out.AppendRowUnchecked(r);
  return out;
}

Table Executor::Distinct(const Table& input) {
  Table out(input.schema());
  std::set<std::vector<Value>> seen;
  for (const Row& r : input.rows()) {
    if (seen.insert(r).second) out.AppendRowUnchecked(r);
  }
  return out;
}

Result<Table> Executor::Sort(Table input, const std::vector<OrderKey>& keys) {
  std::vector<std::pair<size_t, bool>> idx;
  for (const auto& k : keys) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(k.column));
    idx.emplace_back(i, k.ascending);
  }
  std::stable_sort(input.mutable_rows().begin(), input.mutable_rows().end(),
                   [&idx](const Row& a, const Row& b) {
                     for (const auto& [i, asc] : idx) {
                       const int c = a[i].Compare(b[i]);
                       if (c != 0) return asc ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return input;
}

Table Executor::Limit(const Table& input, size_t n) {
  Table out(input.schema());
  for (size_t i = 0; i < std::min(n, input.num_rows()); ++i) {
    out.AppendRowUnchecked(input.row(i));
  }
  return out;
}

Result<Table> Executor::Execute(const SelectStatement& stmt) const {
  PIYE_ASSIGN_OR_RETURN(const Table* base, catalog_->GetTable(stmt.table));
  PIYE_ASSIGN_OR_RETURN(Table filtered, Filter(*base, stmt.where));

  Table result;
  if (stmt.HasAggregates() || !stmt.group_by.empty()) {
    // Split items into group columns and aggregates; group columns must be in
    // GROUP BY.
    std::vector<SelectItem> aggs;
    std::vector<std::string> out_columns;
    for (const auto& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kStar) {
        return Status::InvalidArgument("'*' cannot be mixed with aggregates");
      }
      if (item.kind == SelectItem::Kind::kAggregate) {
        aggs.push_back(item);
        out_columns.push_back(item.OutputName());
      } else {
        const bool grouped =
            std::find(stmt.group_by.begin(), stmt.group_by.end(), item.column) !=
            stmt.group_by.end();
        if (!grouped) {
          return Status::InvalidArgument("column '" + item.column +
                                         "' must appear in GROUP BY");
        }
        out_columns.push_back(item.column);
      }
    }
    PIYE_ASSIGN_OR_RETURN(Table agg, Aggregate(filtered, stmt.group_by, aggs));
    // Reorder/alias output columns to the select-list order.
    // Build rename-aware projection: group cols keep names; aggregates were
    // named by OutputName already.
    PIYE_ASSIGN_OR_RETURN(result, Project(agg, out_columns));
  } else if (stmt.HasStar()) {
    if (stmt.items.size() != 1) {
      return Status::InvalidArgument("'*' must be the only select item");
    }
    result = filtered;
  } else {
    std::vector<std::string> columns;
    for (const auto& item : stmt.items) columns.push_back(item.column);
    PIYE_ASSIGN_OR_RETURN(result, Project(filtered, columns));
  }
  if (!stmt.order_by.empty()) {
    PIYE_ASSIGN_OR_RETURN(result, Sort(std::move(result), stmt.order_by));
  }
  if (stmt.limit.has_value()) {
    result = Limit(result, *stmt.limit);
  }
  // Apply SELECT aliases to the output schema.
  if (!stmt.HasStar() && result.schema().num_columns() == stmt.items.size()) {
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (!stmt.items[i].alias.empty()) {
        result.mutable_schema().SetColumnName(i, stmt.items[i].alias);
      }
    }
  }
  return result;
}

Result<Table> Executor::Query(std::string_view sql) const {
  PIYE_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  return Execute(stmt);
}

}  // namespace relational
}  // namespace piye

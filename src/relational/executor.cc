#include "relational/executor.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "relational/agg.h"
#include "relational/column.h"

namespace piye {
namespace relational {

Status Catalog::AddTable(const std::string& name, Table table) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

void Catalog::PutTable(const std::string& name, Table table) {
  tables_.insert_or_assign(name, std::move(table));
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return &it->second;
}

Result<Table*> Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) != 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

namespace {

/// Rows per execution batch: predicate masks and row-fallback buffers work
/// over windows of this many rows so scratch state stays cache-resident.
constexpr size_t kBatchSize = 1024;

/// 0/1 bytes, one per row of the current batch.
using Mask = std::vector<uint8_t>;

// --- Compare-compatible cell helpers -------------------------------------
// All ordering below must agree exactly with Value::Compare: NULL ranks
// first, then BOOL < numeric < STRING; numerics compare as doubles (so two
// INT64s above 2^53 can tie), strings lexicographically. The differential
// harness checks the vectorized engine against the row engine, which uses
// Value::Compare directly.

int RankOfType(ColumnType t) {
  switch (t) {
    case ColumnType::kBool:
      return 1;
    case ColumnType::kInt64:
    case ColumnType::kDouble:
      return 2;
    case ColumnType::kString:
      return 3;
  }
  return 3;
}

int RankOfValue(const Value& v) {
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;
  return 3;
}

double NumAt(const ColumnVector& c, size_t i) {
  return c.type() == ColumnType::kInt64 ? static_cast<double>(c.IntAt(i))
                                        : c.RealAt(i);
}

int ThreeWay(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

/// Compares two non-NULL cells of the same column.
int CellCompare(const ColumnVector& c, size_t i, size_t j) {
  switch (c.type()) {
    case ColumnType::kInt64:
    case ColumnType::kDouble:
      return ThreeWay(NumAt(c, i), NumAt(c, j));
    case ColumnType::kBool:
      return static_cast<int>(c.BoolAt(i)) - static_cast<int>(c.BoolAt(j));
    case ColumnType::kString: {
      const int r = c.StrAt(i).compare(c.StrAt(j));
      return r < 0 ? -1 : (r > 0 ? 1 : 0);
    }
  }
  return 0;
}

/// Compares non-NULL cell (a, i) against non-NULL cell (b, j) across
/// columns, following Value::Compare's cross-type rules.
int CellCompareCols(const ColumnVector& a, size_t i, const ColumnVector& b,
                    size_t j) {
  const int ra = RankOfType(a.type()), rb = RankOfType(b.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 1:
      return static_cast<int>(a.BoolAt(i)) - static_cast<int>(b.BoolAt(j));
    case 2:
      return ThreeWay(NumAt(a, i), NumAt(b, j));
    default: {
      const int r = a.StrAt(i).compare(b.StrAt(j));
      return r < 0 ? -1 : (r > 0 ? 1 : 0);
    }
  }
}

bool ApplyCmp(Expression::Op op, int c) {
  switch (op) {
    case Expression::Op::kEq:
      return c == 0;
    case Expression::Op::kNe:
      return c != 0;
    case Expression::Op::kLt:
      return c < 0;
    case Expression::Op::kLe:
      return c <= 0;
    case Expression::Op::kGt:
      return c > 0;
    case Expression::Op::kGe:
      return c >= 0;
    default:
      return false;
  }
}

void FillRow(const Table& t, size_t r, Row* row) {
  row->clear();
  for (size_t c = 0; c < t.num_columns(); ++c) row->push_back(t.Cell(r, c));
}

/// Row-at-a-time escape hatch for expression shapes without a vectorized
/// kernel (arithmetic subtrees, LIKE with computed patterns, ...). Evaluates
/// only the active rows, in row order, so error precedence matches the row
/// engine.
Status FallbackTruth(const Table& t, const Expression& e, size_t b0, size_t b1,
                     const Mask& active, Mask* out) {
  Row row;
  for (size_t r = b0; r < b1; ++r) {
    if (!active[r - b0]) {
      (*out)[r - b0] = 0;
      continue;
    }
    FillRow(t, r, &row);
    PIYE_ASSIGN_OR_RETURN(bool keep, e.EvaluatesTrue(row, t.schema()));
    (*out)[r - b0] = keep ? 1 : 0;
  }
  return Status::OK();
}

/// Comparison of a column against a non-NULL literal over one batch.
void CompareColLit(const ColumnVector& col, bool flipped, const Value& lit,
                   Expression::Op op, size_t b0, size_t b1, const Mask& active,
                   Mask* out) {
  const int rank_col = RankOfType(col.type());
  const int rank_lit = RankOfValue(lit);
  if (rank_col != rank_lit) {
    // Cross-rank comparisons are constant for every non-NULL cell.
    int c = rank_col < rank_lit ? -1 : 1;
    if (flipped) c = -c;
    const bool keep = ApplyCmp(op, c);
    for (size_t r = b0; r < b1; ++r) {
      (*out)[r - b0] = (active[r - b0] && !col.IsNull(r) && keep) ? 1 : 0;
    }
    return;
  }
  switch (col.type()) {
    case ColumnType::kInt64: {
      const double b = lit.AsDouble();
      const int64_t* vals = col.ints();
      for (size_t r = b0; r < b1; ++r) {
        if (!active[r - b0] || col.IsNull(r)) {
          (*out)[r - b0] = 0;
          continue;
        }
        int c = ThreeWay(static_cast<double>(vals[r]), b);
        if (flipped) c = -c;
        (*out)[r - b0] = ApplyCmp(op, c) ? 1 : 0;
      }
      return;
    }
    case ColumnType::kDouble: {
      const double b = lit.AsDouble();
      const double* vals = col.reals();
      for (size_t r = b0; r < b1; ++r) {
        if (!active[r - b0] || col.IsNull(r)) {
          (*out)[r - b0] = 0;
          continue;
        }
        int c = ThreeWay(vals[r], b);
        if (flipped) c = -c;
        (*out)[r - b0] = ApplyCmp(op, c) ? 1 : 0;
      }
      return;
    }
    case ColumnType::kBool: {
      const int b = lit.AsBool() ? 1 : 0;
      for (size_t r = b0; r < b1; ++r) {
        if (!active[r - b0] || col.IsNull(r)) {
          (*out)[r - b0] = 0;
          continue;
        }
        int c = static_cast<int>(col.BoolAt(r)) - b;
        if (flipped) c = -c;
        (*out)[r - b0] = ApplyCmp(op, c) ? 1 : 0;
      }
      return;
    }
    case ColumnType::kString: {
      const std::string_view b = lit.AsString();
      for (size_t r = b0; r < b1; ++r) {
        if (!active[r - b0] || col.IsNull(r)) {
          (*out)[r - b0] = 0;
          continue;
        }
        const int raw = col.StrAt(r).compare(b);
        int c = raw < 0 ? -1 : (raw > 0 ? 1 : 0);
        if (flipped) c = -c;
        (*out)[r - b0] = ApplyCmp(op, c) ? 1 : 0;
      }
      return;
    }
  }
}

/// Evaluates `e` as a boolean mask over rows [b0, b1); out[i] corresponds to
/// row b0+i and is 0 wherever `active` is 0. AND/OR/NOT recurse with
/// narrowed active masks, preserving the row engine's short-circuit
/// semantics (a subexpression is only evaluated — and can only raise an
/// error — where its parent still needs it).
Status EvalTruth(const Table& t, const Expression& e, size_t b0, size_t b1,
                 const Mask& active, Mask* out) {
  const size_t width = b1 - b0;
  switch (e.op()) {
    case Expression::Op::kLiteral: {
      const Value& v = e.literal();
      bool truthy = false;
      if (v.is_bool()) {
        truthy = v.AsBool();
      } else if (v.is_numeric()) {
        truthy = v.AsDouble() != 0.0;
      } else if (v.is_string()) {
        truthy = !v.AsString().empty();
      }
      for (size_t i = 0; i < width; ++i) (*out)[i] = (active[i] && truthy) ? 1 : 0;
      return Status::OK();
    }
    case Expression::Op::kColumn: {
      PIYE_ASSIGN_OR_RETURN(size_t idx, t.schema().IndexOf(e.column()));
      const ColumnVector& col = t.col(idx);
      for (size_t r = b0; r < b1; ++r) {
        bool truthy = false;
        if (active[r - b0] && !col.IsNull(r)) {
          switch (col.type()) {
            case ColumnType::kInt64:
              truthy = col.IntAt(r) != 0;
              break;
            case ColumnType::kDouble:
              truthy = col.RealAt(r) != 0.0;
              break;
            case ColumnType::kBool:
              truthy = col.BoolAt(r);
              break;
            case ColumnType::kString:
              truthy = !col.StrAt(r).empty();
              break;
          }
        }
        (*out)[r - b0] = truthy ? 1 : 0;
      }
      return Status::OK();
    }
    case Expression::Op::kAnd: {
      Mask a(width, 0);
      PIYE_RETURN_NOT_OK(EvalTruth(t, *e.lhs(), b0, b1, active, &a));
      // rhs only where lhs held.
      return EvalTruth(t, *e.rhs(), b0, b1, a, out);
    }
    case Expression::Op::kOr: {
      Mask a(width, 0);
      PIYE_RETURN_NOT_OK(EvalTruth(t, *e.lhs(), b0, b1, active, &a));
      Mask rest(width, 0);
      for (size_t i = 0; i < width; ++i) rest[i] = (active[i] && !a[i]) ? 1 : 0;
      Mask b(width, 0);
      PIYE_RETURN_NOT_OK(EvalTruth(t, *e.rhs(), b0, b1, rest, &b));
      for (size_t i = 0; i < width; ++i) (*out)[i] = (a[i] || b[i]) ? 1 : 0;
      return Status::OK();
    }
    case Expression::Op::kNot: {
      Mask a(width, 0);
      PIYE_RETURN_NOT_OK(EvalTruth(t, *e.lhs(), b0, b1, active, &a));
      for (size_t i = 0; i < width; ++i) (*out)[i] = (active[i] && !a[i]) ? 1 : 0;
      return Status::OK();
    }
    case Expression::Op::kEq:
    case Expression::Op::kNe:
    case Expression::Op::kLt:
    case Expression::Op::kLe:
    case Expression::Op::kGt:
    case Expression::Op::kGe: {
      const Expression& l = *e.lhs();
      const Expression& r = *e.rhs();
      if (l.op() == Expression::Op::kColumn && r.op() == Expression::Op::kLiteral) {
        if (r.literal().is_null()) {
          std::fill(out->begin(), out->begin() + width, 0);
          return Status::OK();
        }
        PIYE_ASSIGN_OR_RETURN(size_t idx, t.schema().IndexOf(l.column()));
        CompareColLit(t.col(idx), /*flipped=*/false, r.literal(), e.op(), b0, b1,
                      active, out);
        return Status::OK();
      }
      if (l.op() == Expression::Op::kLiteral && r.op() == Expression::Op::kColumn) {
        if (l.literal().is_null()) {
          std::fill(out->begin(), out->begin() + width, 0);
          return Status::OK();
        }
        PIYE_ASSIGN_OR_RETURN(size_t idx, t.schema().IndexOf(r.column()));
        CompareColLit(t.col(idx), /*flipped=*/true, l.literal(), e.op(), b0, b1,
                      active, out);
        return Status::OK();
      }
      if (l.op() == Expression::Op::kColumn && r.op() == Expression::Op::kColumn) {
        PIYE_ASSIGN_OR_RETURN(size_t li, t.schema().IndexOf(l.column()));
        PIYE_ASSIGN_OR_RETURN(size_t ri, t.schema().IndexOf(r.column()));
        const ColumnVector& a = t.col(li);
        const ColumnVector& b = t.col(ri);
        for (size_t row = b0; row < b1; ++row) {
          const size_t i = row - b0;
          if (!active[i] || a.IsNull(row) || b.IsNull(row)) {
            (*out)[i] = 0;
            continue;
          }
          (*out)[i] = ApplyCmp(e.op(), CellCompareCols(a, row, b, row)) ? 1 : 0;
        }
        return Status::OK();
      }
      return FallbackTruth(t, e, b0, b1, active, out);
    }
    case Expression::Op::kIn: {
      const Expression& l = *e.lhs();
      if (l.op() != Expression::Op::kColumn) {
        return FallbackTruth(t, e, b0, b1, active, out);
      }
      PIYE_ASSIGN_OR_RETURN(size_t idx, t.schema().IndexOf(l.column()));
      const ColumnVector& col = t.col(idx);
      // Only IN-list values of the column's type rank can ever SqlEqual a
      // cell; collect them once, typed.
      const int rank = RankOfType(col.type());
      std::vector<double> nums;
      std::vector<std::string_view> strs;
      std::vector<bool> bools;
      for (const Value& v : e.in_values()) {
        if (v.is_null() || RankOfValue(v) != rank) continue;
        if (rank == 2) {
          nums.push_back(v.AsDouble());
        } else if (rank == 3) {
          strs.push_back(v.AsString());
        } else {
          bools.push_back(v.AsBool());
        }
      }
      for (size_t r = b0; r < b1; ++r) {
        const size_t i = r - b0;
        if (!active[i] || col.IsNull(r)) {
          (*out)[i] = 0;
          continue;
        }
        bool hit = false;
        if (rank == 2) {
          const double x = NumAt(col, r);
          for (double v : nums) {
            if (x == v) {
              hit = true;
              break;
            }
          }
        } else if (rank == 3) {
          const std::string_view x = col.StrAt(r);
          for (std::string_view v : strs) {
            if (x == v) {
              hit = true;
              break;
            }
          }
        } else {
          const bool x = col.BoolAt(r);
          for (bool v : bools) {
            if (x == v) {
              hit = true;
              break;
            }
          }
        }
        (*out)[i] = hit ? 1 : 0;
      }
      return Status::OK();
    }
    case Expression::Op::kLike: {
      const Expression& l = *e.lhs();
      const Expression& r = *e.rhs();
      if (l.op() != Expression::Op::kColumn || r.op() != Expression::Op::kLiteral) {
        return FallbackTruth(t, e, b0, b1, active, out);
      }
      if (r.literal().is_null()) {
        std::fill(out->begin(), out->begin() + width, 0);
        return Status::OK();
      }
      PIYE_ASSIGN_OR_RETURN(size_t idx, t.schema().IndexOf(l.column()));
      const ColumnVector& col = t.col(idx);
      for (size_t row = b0; row < b1; ++row) {
        const size_t i = row - b0;
        if (!active[i] || col.IsNull(row)) {
          (*out)[i] = 0;
          continue;
        }
        if (col.type() != ColumnType::kString || !r.literal().is_string()) {
          return Status::InvalidArgument("LIKE requires string operands");
        }
        (*out)[i] = SqlLikeMatch(std::string(col.StrAt(row)),
                                 r.literal().AsString())
                        ? 1
                        : 0;
      }
      return Status::OK();
    }
    default:
      // Arithmetic (and anything else) used as a predicate.
      return FallbackTruth(t, e, b0, b1, active, out);
  }
}

}  // namespace

Result<Table> Executor::Filter(const Table& input, const ExprPtr& predicate) {
  if (predicate == nullptr) return input;
  const size_t n = input.num_rows();
  std::vector<uint32_t> sel;
  Mask active(kBatchSize, 1);
  Mask out(kBatchSize, 0);
  for (size_t b0 = 0; b0 < n; b0 += kBatchSize) {
    const size_t b1 = std::min(b0 + kBatchSize, n);
    std::fill(active.begin(), active.begin() + (b1 - b0), 1);
    PIYE_RETURN_NOT_OK(EvalTruth(input, *predicate, b0, b1, active, &out));
    for (size_t r = b0; r < b1; ++r) {
      if (out[r - b0]) sel.push_back(static_cast<uint32_t>(r));
    }
  }
  return input.Gather(sel);
}

Result<Table> Executor::Project(const Table& input,
                                const std::vector<std::string>& columns) {
  std::vector<size_t> idx;
  idx.reserve(columns.size());
  for (const auto& c : columns) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(c));
    idx.push_back(i);
  }
  // Columns are shared, not copied: projection is O(#columns).
  return input.ProjectShared(idx);
}

Result<Table> Executor::Aggregate(const Table& input,
                                  const std::vector<std::string>& group_by,
                                  const std::vector<SelectItem>& aggregates) {
  // Resolve group and aggregate column indices.
  std::vector<size_t> group_idx;
  for (const auto& g : group_by) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(g));
    group_idx.push_back(i);
  }
  struct AggSpec {
    AggFunc func;
    long col = -1;  // -1 means COUNT(*)
    std::string out_name;
    ColumnType out_type = ColumnType::kDouble;
  };
  std::vector<AggSpec> specs;
  for (const auto& item : aggregates) {
    if (item.kind != SelectItem::Kind::kAggregate) {
      return Status::InvalidArgument("Aggregate() requires aggregate select items");
    }
    AggSpec spec;
    spec.func = item.func;
    spec.out_name = item.OutputName();
    if (item.column.empty()) {
      if (item.func != AggFunc::kCount) {
        return Status::InvalidArgument("only COUNT can omit its column");
      }
      spec.out_type = ColumnType::kInt64;
    } else {
      PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(item.column));
      spec.col = static_cast<long>(i);
      spec.out_type = AggResultType(item.func, input.schema().column(i).type);
    }
    specs.push_back(std::move(spec));
  }

  const size_t n = input.num_rows();

  // Assign each row a dense group id via the canonical cell-key encoding
  // (Compare-equality, including NULL keys). Group ids are issued in first-
  // appearance order, which is also the output row order.
  std::vector<uint32_t> gid(n, 0);
  std::vector<uint32_t> group_first_row;
  size_t num_groups = 0;
  if (group_idx.empty()) {
    // Global aggregation: one group, even over an empty input.
    num_groups = 1;
  } else if (group_idx.size() == 1 &&
             input.col(group_idx[0]).type() == ColumnType::kInt64) {
    // Single INT64 key: group straight off the typed buffer, no per-row
    // key encoding. NULL keys form their own group, same as the encoder.
    const ColumnVector& c = input.col(group_idx[0]);
    const int64_t* vals = c.ints();
    std::unordered_map<int64_t, uint32_t> keymap;
    keymap.reserve(64);
    constexpr uint32_t kUnassigned = 0xffffffffu;
    uint32_t null_gid = kUnassigned;
    for (size_t r = 0; r < n; ++r) {
      if (c.IsNull(r)) {
        if (null_gid == kUnassigned) {
          null_gid = static_cast<uint32_t>(num_groups++);
          group_first_row.push_back(static_cast<uint32_t>(r));
        }
        gid[r] = null_gid;
        continue;
      }
      auto [it, inserted] =
          keymap.try_emplace(vals[r], static_cast<uint32_t>(num_groups));
      if (inserted) {
        group_first_row.push_back(static_cast<uint32_t>(r));
        ++num_groups;
      }
      gid[r] = it->second;
    }
  } else {
    std::unordered_map<std::string, uint32_t> keymap;
    keymap.reserve(n);
    std::string key;
    for (size_t r = 0; r < n; ++r) {
      key.clear();
      for (size_t i : group_idx) input.col(i).EncodeCell(r, &key);
      // try_emplace copies the key buffer only when it actually inserts.
      auto [it, inserted] =
          keymap.try_emplace(key, static_cast<uint32_t>(num_groups));
      if (inserted) {
        group_first_row.push_back(static_cast<uint32_t>(r));
        ++num_groups;
      }
      gid[r] = it->second;
    }
  }

  // Accumulate one state vector per spec, column-at-a-time: each pass
  // streams one contiguous typed buffer through the shared NumericAgg math
  // (or a typed extrema scan for MIN/MAX).
  constexpr uint32_t kNoRow = 0xffffffffu;
  std::vector<std::vector<NumericAgg>> agg(specs.size());
  std::vector<std::vector<uint32_t>> extreme(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    const AggSpec& spec = specs[s];
    if (spec.func == AggFunc::kMin || spec.func == AggFunc::kMax) {
      extreme[s].assign(num_groups, kNoRow);
    } else {
      agg[s].assign(num_groups, NumericAgg{});
    }
    if (spec.col < 0) {
      for (size_t r = 0; r < n; ++r) ++agg[s][gid[r]].count;  // COUNT(*)
      continue;
    }
    const ColumnVector& c = input.col(static_cast<size_t>(spec.col));
    switch (spec.func) {
      case AggFunc::kCount:
        for (size_t r = 0; r < n; ++r) {
          if (!c.IsNull(r)) ++agg[s][gid[r]].count;
        }
        break;
      case AggFunc::kMin:
        for (size_t r = 0; r < n; ++r) {
          if (c.IsNull(r)) continue;
          uint32_t& best = extreme[s][gid[r]];
          if (best == kNoRow || CellCompare(c, r, best) < 0) {
            best = static_cast<uint32_t>(r);
          }
        }
        break;
      case AggFunc::kMax:
        for (size_t r = 0; r < n; ++r) {
          if (c.IsNull(r)) continue;
          uint32_t& best = extreme[s][gid[r]];
          if (best == kNoRow || CellCompare(c, r, best) > 0) {
            best = static_cast<uint32_t>(r);
          }
        }
        break;
      default:  // SUM / AVG / STDDEV
        switch (c.type()) {
          case ColumnType::kInt64: {
            const int64_t* vals = c.ints();
            for (size_t r = 0; r < n; ++r) {
              if (!c.IsNull(r)) agg[s][gid[r]].AddInt(vals[r]);
            }
            break;
          }
          case ColumnType::kDouble: {
            const double* vals = c.reals();
            for (size_t r = 0; r < n; ++r) {
              if (!c.IsNull(r)) agg[s][gid[r]].AddReal(vals[r]);
            }
            break;
          }
          default:
            for (size_t r = 0; r < n; ++r) {
              if (!c.IsNull(r)) agg[s][gid[r]].AddNonNumeric();
            }
            break;
        }
        break;
    }
  }

  // An INT64 SUM column stays INT64 unless some group actually overflowed
  // the exact accumulator, in which case the whole column widens to DOUBLE.
  std::vector<bool> int_input(specs.size(), false);
  for (size_t s = 0; s < specs.size(); ++s) {
    AggSpec& spec = specs[s];
    if (spec.col < 0) continue;
    int_input[s] = input.schema().column(static_cast<size_t>(spec.col)).type ==
                   ColumnType::kInt64;
    if (spec.func == AggFunc::kSum && int_input[s]) {
      for (const NumericAgg& a : agg[s]) {
        if (a.count > 0 && a.ioverflow) {
          spec.out_type = ColumnType::kDouble;
          break;
        }
      }
    }
  }

  // Emit column-wise: group-key columns are gathers of each group's first
  // row; aggregate columns are built value-by-value from Finish.
  Table out;
  for (size_t k = 0; k < group_idx.size(); ++k) {
    const ColumnVector& src = input.col(group_idx[k]);
    out.AddColumn(input.schema().column(group_idx[k]),
                  src.Gather(group_first_row.data(), group_first_row.size()));
  }
  for (size_t s = 0; s < specs.size(); ++s) {
    const AggSpec& spec = specs[s];
    ColumnVector data(spec.out_type);
    data.Reserve(num_groups);
    if (spec.func == AggFunc::kMin || spec.func == AggFunc::kMax) {
      const ColumnVector& src = input.col(static_cast<size_t>(spec.col));
      for (uint32_t best : extreme[s]) {
        if (best == kNoRow) {
          data.AppendNull();
        } else {
          data.AppendFrom(src, best);
        }
      }
    } else {
      for (const NumericAgg& a : agg[s]) {
        data.AppendValue(a.Finish(spec.func, int_input[s]));
      }
    }
    out.AddColumn({spec.out_name, spec.out_type}, std::move(data));
  }
  return out;
}

Result<Table> Executor::HashJoin(const Table& left, const Table& right,
                                 const std::string& left_key,
                                 const std::string& right_key,
                                 const std::string& right_prefix) {
  PIYE_ASSIGN_OR_RETURN(size_t li, left.schema().IndexOf(left_key));
  PIYE_ASSIGN_OR_RETURN(size_t ri, right.schema().IndexOf(right_key));
  Schema out_schema = left.schema();
  for (const auto& col : right.schema().columns()) {
    std::string name = col.name;
    if (out_schema.Contains(name)) name = right_prefix + name;
    out_schema.AddColumn({name, col.type});
  }
  // Build on the right input: canonical key encoding -> right row indexes.
  const ColumnVector& rkey = right.col(ri);
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  build.reserve(right.num_rows());
  {
    std::string key;
    for (size_t i = 0; i < right.num_rows(); ++i) {
      if (rkey.IsNull(i)) continue;
      key.clear();
      rkey.EncodeCell(i, &key);
      build[key].push_back(static_cast<uint32_t>(i));
    }
  }
  // Probe with the left rows; the output order is left-row-major with right
  // matches in right-row order, same as the row engine.
  std::vector<uint32_t> lsel, rsel;
  {
    const ColumnVector& lkey = left.col(li);
    std::string key;
    for (size_t i = 0; i < left.num_rows(); ++i) {
      if (lkey.IsNull(i)) continue;
      key.clear();
      lkey.EncodeCell(i, &key);
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (uint32_t r : it->second) {
        lsel.push_back(static_cast<uint32_t>(i));
        rsel.push_back(r);
      }
    }
  }
  // Materialize both sides with one gather per column.
  Table out;
  for (size_t c = 0; c < left.num_columns(); ++c) {
    out.AddColumn(out_schema.column(c),
                  left.col(c).Gather(lsel.data(), lsel.size()));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    out.AddColumn(out_schema.column(left.num_columns() + c),
                  right.col(c).Gather(rsel.data(), rsel.size()));
  }
  return out;
}

Result<Table> Executor::Union(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("UNION requires identical schemas: [" +
                                   a.schema().ToString() + "] vs [" +
                                   b.schema().ToString() + "]");
  }
  Table out = a;
  out.AppendTable(b);
  return out;
}

Table Executor::Distinct(const Table& input) {
  std::unordered_set<std::string> seen;
  seen.reserve(input.num_rows());
  std::vector<uint32_t> sel;
  std::string key;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    key.clear();
    for (size_t c = 0; c < input.num_columns(); ++c) {
      input.col(c).EncodeCell(r, &key);
    }
    if (seen.insert(key).second) sel.push_back(static_cast<uint32_t>(r));
  }
  return input.Gather(sel);
}

Result<Table> Executor::Sort(Table input, const std::vector<OrderKey>& keys) {
  std::vector<std::pair<size_t, bool>> idx;
  for (const auto& k : keys) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(k.column));
    idx.emplace_back(i, k.ascending);
  }
  std::vector<uint32_t> sel(input.num_rows());
  std::iota(sel.begin(), sel.end(), 0u);
  std::stable_sort(sel.begin(), sel.end(),
                   [&idx, &input](uint32_t a, uint32_t b) {
                     for (const auto& [i, asc] : idx) {
                       const ColumnVector& c = input.col(i);
                       const bool an = c.IsNull(a), bn = c.IsNull(b);
                       int cmp;
                       if (an || bn) {
                         cmp = an == bn ? 0 : (an ? -1 : 1);  // NULL first
                       } else {
                         cmp = CellCompare(c, a, b);
                       }
                       if (cmp != 0) return asc ? cmp < 0 : cmp > 0;
                     }
                     return false;
                   });
  return input.Gather(sel);
}

Table Executor::Limit(const Table& input, size_t n) {
  std::vector<uint32_t> sel(std::min(n, input.num_rows()));
  std::iota(sel.begin(), sel.end(), 0u);
  return input.Gather(sel);
}

Result<Table> Executor::Execute(const SelectStatement& stmt) const {
  PIYE_ASSIGN_OR_RETURN(const Table* base, catalog_->GetTable(stmt.table));
  PIYE_ASSIGN_OR_RETURN(Table filtered, Filter(*base, stmt.where));

  Table result;
  if (stmt.HasAggregates() || !stmt.group_by.empty()) {
    // Split items into group columns and aggregates; group columns must be in
    // GROUP BY.
    std::vector<SelectItem> aggs;
    std::vector<std::string> out_columns;
    for (const auto& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kStar) {
        return Status::InvalidArgument("'*' cannot be mixed with aggregates");
      }
      if (item.kind == SelectItem::Kind::kAggregate) {
        aggs.push_back(item);
        out_columns.push_back(item.OutputName());
      } else {
        const bool grouped =
            std::find(stmt.group_by.begin(), stmt.group_by.end(), item.column) !=
            stmt.group_by.end();
        if (!grouped) {
          return Status::InvalidArgument("column '" + item.column +
                                         "' must appear in GROUP BY");
        }
        out_columns.push_back(item.column);
      }
    }
    PIYE_ASSIGN_OR_RETURN(Table agg, Aggregate(filtered, stmt.group_by, aggs));
    // Reorder/alias output columns to the select-list order.
    // Build rename-aware projection: group cols keep names; aggregates were
    // named by OutputName already.
    PIYE_ASSIGN_OR_RETURN(result, Project(agg, out_columns));
  } else if (stmt.HasStar()) {
    if (stmt.items.size() != 1) {
      return Status::InvalidArgument("'*' must be the only select item");
    }
    result = filtered;
  } else {
    std::vector<std::string> columns;
    for (const auto& item : stmt.items) columns.push_back(item.column);
    PIYE_ASSIGN_OR_RETURN(result, Project(filtered, columns));
  }
  if (!stmt.order_by.empty()) {
    PIYE_ASSIGN_OR_RETURN(result, Sort(std::move(result), stmt.order_by));
  }
  if (stmt.limit.has_value()) {
    result = Limit(result, *stmt.limit);
  }
  // Apply SELECT aliases to the output schema.
  if (!stmt.HasStar() && result.schema().num_columns() == stmt.items.size()) {
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (!stmt.items[i].alias.empty()) {
        result.mutable_schema().SetColumnName(i, stmt.items[i].alias);
      }
    }
  }
  return result;
}

Result<Table> Executor::Query(std::string_view sql) const {
  PIYE_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  return Execute(stmt);
}

}  // namespace relational
}  // namespace piye

#include "relational/xml_bridge.h"

#include <map>

#include "common/macros.h"

namespace piye {
namespace relational {

std::unique_ptr<xml::XmlNode> TableToXml(const Table& table,
                                         const std::string& name) {
  auto result = xml::XmlNode::Element("result");
  result->SetAttr("name", name);
  xml::XmlNode* schema = result->AddElement("schema");
  for (const auto& col : table.schema().columns()) {
    xml::XmlNode* c = schema->AddElement("column");
    c->SetAttr("name", col.name);
    c->SetAttr("type", ColumnTypeToString(col.type));
  }
  xml::XmlNode* rows = result->AddElement("rows");
  for (size_t r = 0; r < table.num_rows(); ++r) {
    xml::XmlNode* row = rows->AddElement("row");
    for (size_t i = 0; i < table.num_columns(); ++i) {
      xml::XmlNode* cell = row->AddElement(table.schema().column(i).name);
      const ColumnVector& col = table.col(i);
      if (col.IsNull(r)) {
        cell->SetAttr("null", "true");
      } else {
        cell->AddText(col.ValueAt(r).ToDisplayString());
      }
    }
  }
  return result;
}

namespace {

Result<ColumnType> ParseColumnType(const std::string& s) {
  if (s == "INT64") return ColumnType::kInt64;
  if (s == "DOUBLE") return ColumnType::kDouble;
  if (s == "STRING") return ColumnType::kString;
  if (s == "BOOL") return ColumnType::kBool;
  return Status::ParseError("unknown column type '" + s + "'");
}

}  // namespace

Result<Table> XmlToTable(const xml::XmlNode& result_node) {
  const xml::XmlNode* schema_node = result_node.FirstChild("schema");
  if (schema_node == nullptr) {
    return Status::ParseError("<result> missing <schema>");
  }
  Schema schema;
  for (const xml::XmlNode* c : schema_node->Children("column")) {
    const std::string* name = c->GetAttr("name");
    const std::string* type = c->GetAttr("type");
    if (name == nullptr || type == nullptr) {
      return Status::ParseError("<column> missing name/type");
    }
    PIYE_ASSIGN_OR_RETURN(ColumnType ct, ParseColumnType(*type));
    schema.AddColumn({*name, ct});
  }
  Table table(schema);
  const xml::XmlNode* rows_node = result_node.FirstChild("rows");
  if (rows_node == nullptr) return table;
  for (const xml::XmlNode* row_node : rows_node->Children("row")) {
    Row row;
    row.reserve(schema.num_columns());
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      const xml::XmlNode* cell = row_node->FirstChild(schema.column(i).name);
      if (cell == nullptr) {
        row.push_back(Value::Null());
        continue;
      }
      const std::string* is_null = cell->GetAttr("null");
      if (is_null != nullptr && *is_null == "true") {
        row.push_back(Value::Null());
        continue;
      }
      // STRING cells take the text verbatim: "" and "NULL" are legitimate
      // string contents, not absent values (nulls carry the attribute above).
      if (schema.column(i).type == ColumnType::kString) {
        row.push_back(Value::Str(cell->InnerText()));
        continue;
      }
      PIYE_ASSIGN_OR_RETURN(Value v,
                            Value::Parse(cell->InnerText(), schema.column(i).type));
      row.push_back(std::move(v));
    }
    PIYE_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<Table> TableFromXmlRecords(const xml::XmlNode& root) {
  const auto records = root.ChildElements();
  // Pass 1: collect column names in first-seen order and classify types.
  std::vector<std::string> names;
  std::map<std::string, ColumnType> types;  // narrowest type seen so far
  auto classify = [](const std::string& text) {
    if (Value::Parse(text, ColumnType::kInt64).ok()) return ColumnType::kInt64;
    if (Value::Parse(text, ColumnType::kDouble).ok()) return ColumnType::kDouble;
    return ColumnType::kString;
  };
  auto widen = [](ColumnType a, ColumnType b) {
    if (a == b) return a;
    if ((a == ColumnType::kInt64 && b == ColumnType::kDouble) ||
        (a == ColumnType::kDouble && b == ColumnType::kInt64)) {
      return ColumnType::kDouble;
    }
    return ColumnType::kString;
  };
  for (const xml::XmlNode* record : records) {
    for (const xml::XmlNode* field : record->ChildElements()) {
      const std::string text = field->InnerText();
      auto it = types.find(field->name());
      if (it == types.end()) {
        names.push_back(field->name());
        if (!text.empty()) types.emplace(field->name(), classify(text));
      } else if (!text.empty()) {
        it->second = widen(it->second, classify(text));
      }
    }
  }
  Schema schema;
  for (const auto& name : names) {
    auto it = types.find(name);
    schema.AddColumn({name, it == types.end() ? ColumnType::kString : it->second});
  }
  // Pass 2: materialize rows (missing fields -> NULL).
  Table table(schema);
  for (const xml::XmlNode* record : records) {
    Row row;
    row.reserve(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const xml::XmlNode* field = record->FirstChild(schema.column(c).name);
      if (field == nullptr) {
        row.push_back(Value::Null());
        continue;
      }
      const std::string text = field->InnerText();
      if (schema.column(c).type == ColumnType::kString) {
        row.push_back(Value::Str(text));
        continue;
      }
      if (text.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      PIYE_ASSIGN_OR_RETURN(Value v, Value::Parse(text, schema.column(c).type));
      row.push_back(std::move(v));
    }
    PIYE_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

}  // namespace relational
}  // namespace piye

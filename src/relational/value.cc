#include "relational/value.h"

#include <charconv>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace piye {
namespace relational {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
    case ColumnType::kBool:
      return "BOOL";
  }
  return "?";
}

namespace {

// Shortest representation that round-trips exactly (std::to_chars), so
// doubles survive the XML wire format bit-for-bit.
std::string DoubleToString(double x) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), x);
  return ec == std::errc() ? std::string(buf, ptr) : strings::Format("%.17g", x);
}

}  // namespace

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return DoubleToString(std::get<double>(data_));
  if (is_bool()) return AsBool() ? "TRUE" : "FALSE";
  return "'" + AsString() + "'";
}

std::string Value::ToDisplayString() const {
  if (is_string()) return AsString();
  return ToString();
}

namespace {
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_int() || v.is_double()) return 2;
  return 3;  // string
}
}  // namespace

int Value::Compare(const Value& other) const {
  const int ra = TypeRank(*this), rb = TypeRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (is_null()) return 0;
  if (is_bool()) {
    return AsBool() == other.AsBool() ? 0 : (AsBool() ? 1 : -1);
  }
  if (is_numeric()) {
    const double a = AsDouble(), b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const std::string& a = AsString();
  const std::string& b = other.AsString();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

Result<ColumnType> Value::Type() const {
  if (is_int()) return ColumnType::kInt64;
  if (is_double()) return ColumnType::kDouble;
  if (is_string()) return ColumnType::kString;
  if (is_bool()) return ColumnType::kBool;
  return Status::InvalidArgument("NULL has no column type");
}

Result<Value> Value::Parse(const std::string& text, ColumnType type) {
  const std::string t = strings::Trim(text);
  if (t == "NULL" || t.empty()) return Value::Null();
  switch (type) {
    case ColumnType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(t.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("not an integer: '" + t + "'");
      }
      return Value::Int(v);
    }
    case ColumnType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(t.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("not a double: '" + t + "'");
      }
      return Value::Real(v);
    }
    case ColumnType::kBool: {
      const std::string lower = strings::ToLower(t);
      if (lower == "true" || lower == "1") return Value::Boolean(true);
      if (lower == "false" || lower == "0") return Value::Boolean(false);
      return Status::ParseError("not a bool: '" + t + "'");
    }
    case ColumnType::kString:
      return Value::Str(t);
  }
  return Status::Internal("unreachable");
}

}  // namespace relational
}  // namespace piye

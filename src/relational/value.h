#ifndef PIYE_RELATIONAL_VALUE_H_
#define PIYE_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace piye {
namespace relational {

/// Column types supported by the relational substrate.
enum class ColumnType { kInt64, kDouble, kString, kBool };

const char* ColumnTypeToString(ColumnType type);

/// A dynamically typed SQL value (NULL, INT64, DOUBLE, STRING, or BOOL).
///
/// Values use SQL-ish semantics: NULL compares as absent (any comparison with
/// NULL is false), arithmetic promotes INT64 to DOUBLE when mixed, and
/// ToString renders the literal form used by the serializers.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Real(double v) { return Value(Data(v)); }
  static Value Str(std::string v) { return Value(Data(std::move(v))); }
  static Value Boolean(bool v) { return Value(Data(v)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(data_))
                    : std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }

  /// SQL literal rendering ("NULL", 42, 3.5, 'text', TRUE).
  std::string ToString() const;
  /// Bare rendering without string quotes (for XML/CSV output).
  std::string ToDisplayString() const;

  /// Three-way comparison for ORDER BY / join keys. NULL sorts first.
  /// Cross-type numeric comparisons compare as doubles; otherwise types are
  /// ordered by type id.
  int Compare(const Value& other) const;

  /// SQL equality: false if either side is NULL.
  bool SqlEquals(const Value& other) const {
    if (is_null() || other.is_null()) return false;
    return Compare(other) == 0;
  }

  /// Exact equality including NULL == NULL (used for grouping/dedup keys).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// The ColumnType matching this value; NULL has no type (returns error).
  Result<ColumnType> Type() const;

  /// Rough in-memory footprint (the variant cell plus any string heap
  /// allocation) — the unit of the warehouse's byte-budget accounting.
  size_t ApproxBytes() const {
    return sizeof(Value) + (is_string() ? AsString().capacity() : 0);
  }

  /// Parses `text` as the given type ("NULL" yields a null value).
  static Result<Value> Parse(const std::string& text, ColumnType type);

 private:
  using Data = std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_VALUE_H_

#ifndef PIYE_RELATIONAL_REFERENCE_H_
#define PIYE_RELATIONAL_REFERENCE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "relational/sql.h"
#include "relational/table.h"

namespace piye {
namespace relational {
namespace rowref {

// The seed row-at-a-time engine, preserved verbatim as the semantic
// reference for the vectorized executor. Every operator here walks
// materialized Rows exactly like the engine this repo shipped with; the
// differential harness (tests/relational_test.cc) runs both engines over
// randomized tables and requires value-identical answers, and
// bench_fig2_pipeline uses these as the row-engine baseline for the
// columnar speedup gate.
//
// The only intentional departures from the seed are the three audited
// bugfixes, which are shared with the vectorized engine via
// relational/agg.h so both engines apply bit-identical arithmetic:
// Welford STDDEV, exact INT64 SUM/AVG accumulation, and (in the perturbation
// baselines below) NULL-aware write-back.

Result<Table> Filter(const Table& input, const ExprPtr& predicate);
Result<Table> Project(const Table& input, const std::vector<std::string>& columns);
Result<Table> Aggregate(const Table& input,
                        const std::vector<std::string>& group_by,
                        const std::vector<SelectItem>& aggregates);
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_key, const std::string& right_key,
                       const std::string& right_prefix = "r_");
Result<Table> Union(const Table& a, const Table& b);
Table Distinct(const Table& input);
Result<Table> Sort(const Table& input, const std::vector<OrderKey>& keys);
Table Limit(const Table& input, size_t n);

// Row-at-a-time perturbation baselines mirroring perturb/noise.cc and
// perturb/swapping.cc cell for cell (same RNG draw order, same rounding),
// so the columnar kernels can be differentially tested against them with a
// shared seed — including NULL alignment, which the rank-swap write-back
// historically got wrong on columns with interleaved NULLs.

/// Gaussian additive noise over a numeric column, one Value round-trip per
/// row. `gaussian` selects NextGaussian(0, scale) vs NextUniform(-s, s).
Status AddNoiseRowAtATime(Table* table, const std::string& column,
                          bool gaussian, double scale, Rng* rng);

/// Rank swapping over a numeric column with an explicit row<->value index
/// map (the corrected seed algorithm).
Status RankSwapRowAtATime(Table* table, const std::string& column,
                          double window_pct, Rng* rng);

}  // namespace rowref
}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_REFERENCE_H_

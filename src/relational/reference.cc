#include "relational/reference.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "common/macros.h"
#include "relational/agg.h"

namespace piye {
namespace relational {
namespace rowref {

Result<Table> Filter(const Table& input, const ExprPtr& predicate) {
  Table out(input.schema());
  if (predicate == nullptr) {
    for (const Row& r : input.rows()) out.AppendRowUnchecked(r);
    return out;
  }
  for (size_t i = 0; i < input.num_rows(); ++i) {
    const Row r = input.row(i);
    PIYE_ASSIGN_OR_RETURN(bool keep, predicate->EvaluatesTrue(r, input.schema()));
    if (keep) out.AppendRowUnchecked(r);
  }
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns) {
  PIYE_ASSIGN_OR_RETURN(Schema schema, input.schema().Project(columns));
  std::vector<size_t> idx;
  for (const auto& c : columns) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(c));
    idx.push_back(i);
  }
  Table out(std::move(schema));
  for (const Row& r : input.rows()) {
    Row row;
    row.reserve(idx.size());
    for (size_t i : idx) row.push_back(r[i]);
    out.AppendRowUnchecked(row);
  }
  return out;
}

namespace {

/// Accumulator for one aggregate over one group: the shared NumericAgg math
/// plus Compare-ordered extrema, exactly the seed engine's shape.
struct AggState {
  NumericAgg num;
  Value min;
  Value max;

  void Add(const Value& v) {
    if (v.is_null()) return;
    if (v.is_int()) {
      num.AddInt(v.AsInt());
    } else if (v.is_double()) {
      num.AddReal(v.AsDouble());
    } else {
      num.AddNonNumeric();
    }
    if (min.is_null() || v.Compare(min) < 0) min = v;
    if (max.is_null() || v.Compare(max) > 0) max = v;
  }

  Value Finish(AggFunc func, bool int_input) const {
    if (func == AggFunc::kMin) return min;
    if (func == AggFunc::kMax) return max;
    return num.Finish(func, int_input);
  }
};

}  // namespace

Result<Table> Aggregate(const Table& input,
                        const std::vector<std::string>& group_by,
                        const std::vector<SelectItem>& aggregates) {
  std::vector<size_t> group_idx;
  for (const auto& g : group_by) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(g));
    group_idx.push_back(i);
  }
  struct AggSpec {
    AggFunc func;
    long col = -1;  // -1 means COUNT(*)
    std::string out_name;
    ColumnType out_type = ColumnType::kDouble;
    bool int_input = false;
  };
  std::vector<AggSpec> specs;
  for (const auto& item : aggregates) {
    if (item.kind != SelectItem::Kind::kAggregate) {
      return Status::InvalidArgument("Aggregate() requires aggregate select items");
    }
    AggSpec spec;
    spec.func = item.func;
    spec.out_name = item.OutputName();
    if (item.column.empty()) {
      if (item.func != AggFunc::kCount) {
        return Status::InvalidArgument("only COUNT can omit its column");
      }
      spec.out_type = ColumnType::kInt64;
    } else {
      PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(item.column));
      spec.col = static_cast<long>(i);
      spec.out_type = AggResultType(item.func, input.schema().column(i).type);
      spec.int_input = input.schema().column(i).type == ColumnType::kInt64;
    }
    specs.push_back(std::move(spec));
  }

  // Group rows. Keys compare by Value::Compare (exact semantics incl. NULL).
  std::map<std::vector<Value>, std::vector<AggState>> groups;
  std::vector<std::vector<Value>> group_order;
  for (const Row& r : input.rows()) {
    std::vector<Value> key;
    key.reserve(group_idx.size());
    for (size_t i : group_idx) key.push_back(r[i]);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<AggState>(specs.size())).first;
      group_order.push_back(key);
    }
    for (size_t s = 0; s < specs.size(); ++s) {
      if (specs[s].col < 0) {
        ++it->second[s].num.count;  // COUNT(*)
      } else {
        it->second[s].Add(r[static_cast<size_t>(specs[s].col)]);
      }
    }
  }
  // Global aggregation over an empty input still yields one row.
  if (group_idx.empty() && groups.empty()) {
    groups.emplace(std::vector<Value>{}, std::vector<AggState>(specs.size()));
    group_order.push_back({});
  }
  // An INT64 SUM column widens to DOUBLE only if a group's exact
  // accumulator overflowed (same rule as the vectorized engine).
  for (auto& spec : specs) {
    if (spec.func != AggFunc::kSum || !spec.int_input) continue;
    for (const auto& key : group_order) {
      const AggState& st = groups[key][&spec - specs.data()];
      if (st.num.count > 0 && st.num.ioverflow) {
        spec.out_type = ColumnType::kDouble;
        break;
      }
    }
  }
  Schema out_schema;
  for (size_t i : group_idx) out_schema.AddColumn(input.schema().column(i));
  for (const auto& s : specs) out_schema.AddColumn({s.out_name, s.out_type});
  Table out(out_schema);
  for (const auto& key : group_order) {
    const auto& states = groups[key];
    Row row = key;
    for (size_t s = 0; s < specs.size(); ++s) {
      row.push_back(states[s].Finish(specs[s].func, specs[s].int_input));
    }
    out.AppendRowUnchecked(row);
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_key, const std::string& right_key,
                       const std::string& right_prefix) {
  PIYE_ASSIGN_OR_RETURN(size_t li, left.schema().IndexOf(left_key));
  PIYE_ASSIGN_OR_RETURN(size_t ri, right.schema().IndexOf(right_key));
  Schema out_schema = left.schema();
  for (const auto& col : right.schema().columns()) {
    std::string name = col.name;
    if (out_schema.Contains(name)) name = right_prefix + name;
    out_schema.AddColumn({name, col.type});
  }
  std::map<Value, std::vector<size_t>> build;
  for (size_t i = 0; i < right.num_rows(); ++i) {
    const Value k = right.row(i)[ri];
    if (k.is_null()) continue;
    build[k].push_back(i);
  }
  Table out(std::move(out_schema));
  for (size_t l = 0; l < left.num_rows(); ++l) {
    const Row lrow = left.row(l);
    const Value& k = lrow[li];
    if (k.is_null()) continue;
    auto it = build.find(k);
    if (it == build.end()) continue;
    for (size_t r : it->second) {
      Row row = lrow;
      for (const Value& v : right.row(r)) row.push_back(v);
      out.AppendRowUnchecked(row);
    }
  }
  return out;
}

Result<Table> Union(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("UNION requires identical schemas: [" +
                                   a.schema().ToString() + "] vs [" +
                                   b.schema().ToString() + "]");
  }
  Table out(a.schema());
  for (const Row& r : a.rows()) out.AppendRowUnchecked(r);
  for (const Row& r : b.rows()) out.AppendRowUnchecked(r);
  return out;
}

Table Distinct(const Table& input) {
  Table out(input.schema());
  std::set<std::vector<Value>> seen;
  for (const Row& r : input.rows()) {
    if (seen.insert(r).second) out.AppendRowUnchecked(r);
  }
  return out;
}

Result<Table> Sort(const Table& input, const std::vector<OrderKey>& keys) {
  std::vector<std::pair<size_t, bool>> idx;
  for (const auto& k : keys) {
    PIYE_ASSIGN_OR_RETURN(size_t i, input.schema().IndexOf(k.column));
    idx.emplace_back(i, k.ascending);
  }
  std::vector<Row> rows = input.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [&idx](const Row& a, const Row& b) {
                     for (const auto& [i, asc] : idx) {
                       const int c = a[i].Compare(b[i]);
                       if (c != 0) return asc ? c < 0 : c > 0;
                     }
                     return false;
                   });
  Table out(input.schema());
  for (const Row& r : rows) out.AppendRowUnchecked(r);
  return out;
}

Table Limit(const Table& input, size_t n) {
  Table out(input.schema());
  for (size_t i = 0; i < std::min(n, input.num_rows()); ++i) {
    out.AppendRowUnchecked(input.row(i));
  }
  return out;
}

Status AddNoiseRowAtATime(Table* table, const std::string& column,
                          bool gaussian, double scale, Rng* rng) {
  PIYE_ASSIGN_OR_RETURN(size_t col, table->schema().IndexOf(column));
  const ColumnType type = table->schema().column(col).type;
  if (type != ColumnType::kDouble && type != ColumnType::kInt64) {
    return Status::InvalidArgument("column '" + column + "' is not numeric");
  }
  for (size_t i = 0; i < table->num_rows(); ++i) {
    const Value v = table->Cell(i, col);
    if (v.is_null()) continue;
    double x = v.AsDouble();
    x += gaussian ? rng->NextGaussian(0.0, scale)
                  : rng->NextUniform(-scale, scale);
    table->SetCell(i, col,
                   type == ColumnType::kInt64
                       ? Value::Int(static_cast<int64_t>(std::llround(x)))
                       : Value::Real(x));
  }
  return Status::OK();
}

Status RankSwapRowAtATime(Table* table, const std::string& column,
                          double window_pct, Rng* rng) {
  PIYE_ASSIGN_OR_RETURN(size_t col, table->schema().IndexOf(column));
  // Dense values plus an explicit row<->value index map: value j lives in
  // table row rows[j], so the write-back below cannot misalign when NULLs
  // are interleaved.
  std::vector<double> xs;
  std::vector<size_t> rows;
  for (size_t i = 0; i < table->num_rows(); ++i) {
    const Value v = table->Cell(i, col);
    if (v.is_null()) continue;
    if (!v.is_numeric()) {
      return Status::InvalidArgument("column '" + column + "' is not numeric");
    }
    xs.push_back(v.AsDouble());
    rows.push_back(i);
  }
  // The seed RankSwapper::Swap algorithm, draw for draw.
  const size_t n = xs.size();
  std::vector<double> swapped = xs;
  if (n >= 2) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    // Index tie-break, matching the pair sort in RankSwapper::Swap so both
    // engines produce the same permutation even on tied values.
    std::sort(order.begin(), order.end(), [&xs](size_t a, size_t b) {
      return xs[a] < xs[b] || (xs[a] == xs[b] && a < b);
    });
    std::vector<double> sorted(n);
    for (size_t r = 0; r < n; ++r) sorted[r] = xs[order[r]];
    const size_t window = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(window_pct / 100.0 * static_cast<double>(n))));
    for (size_t r = 0; r + 1 < n; ++r) {
      const size_t hi = std::min(n - 1, r + window);
      const size_t partner = r + rng->NextBounded(hi - r + 1);
      std::swap(sorted[r], sorted[partner]);
    }
    for (size_t r = 0; r < n; ++r) swapped[order[r]] = sorted[r];
  }
  const bool is_int = table->schema().column(col).type == ColumnType::kInt64;
  for (size_t j = 0; j < rows.size(); ++j) {
    table->SetCell(rows[j], col,
                   is_int ? Value::Int(static_cast<int64_t>(
                                std::llround(swapped[j])))
                          : Value::Real(swapped[j]));
  }
  return Status::OK();
}

}  // namespace rowref
}  // namespace relational
}  // namespace piye

#include "relational/sql.h"

#include <cctype>
#include <cstdlib>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace relational {

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kStdDev:
      return "STDDEV";
  }
  return "?";
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  switch (kind) {
    case Kind::kStar:
      return "*";
    case Kind::kColumn:
      return column;
    case Kind::kAggregate:
      return std::string(AggFuncToString(func)) + "(" + (column.empty() ? "*" : column) +
             ")";
  }
  return "?";
}

bool SelectStatement::HasAggregates() const {
  for (const auto& item : items) {
    if (item.kind == SelectItem::Kind::kAggregate) return true;
  }
  return false;
}

bool SelectStatement::HasStar() const {
  for (const auto& item : items) {
    if (item.kind == SelectItem::Kind::kStar) return true;
  }
  return false;
}

std::string SelectStatement::ToSql() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& it = items[i];
    switch (it.kind) {
      case SelectItem::Kind::kStar:
        out += "*";
        break;
      case SelectItem::Kind::kColumn:
        out += it.column;
        break;
      case SelectItem::Kind::kAggregate:
        out += AggFuncToString(it.func);
        out += "(";
        out += it.column.empty() ? "*" : it.column;
        out += ")";
        break;
    }
    if (!it.alias.empty()) {
      out += " AS ";
      out += it.alias;
    }
  }
  out += " FROM ";
  out += table;
  if (where != nullptr) {
    out += " WHERE ";
    out += where->ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    out += strings::Join(group_by, ", ");
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].column;
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit.has_value()) {
    out += strings::Format(" LIMIT %zu", *limit);
  }
  return out;
}

namespace {

struct Token {
  enum class Type { kIdent, kNumber, kString, kSymbol, kEnd };
  Type type = Type::kEnd;
  std::string text;  // identifiers upper-cased only when compared as keywords
};

class Lexer {
 public:
  explicit Lexer(std::string_view in) : in_(in) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= in_.size()) break;
      const char c = in_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && pos_ + 1 < in_.size() &&
                  std::isdigit(static_cast<unsigned char>(in_[pos_ + 1])))) {
        out.push_back(LexNumber());
      } else if (c == '\'') {
        PIYE_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else {
        PIYE_ASSIGN_OR_RETURN(Token t, LexSymbol());
        out.push_back(std::move(t));
      }
    }
    out.push_back(Token{Token::Type::kEnd, ""});
    return out;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  Token LexIdent() {
    const size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '_' ||
            in_[pos_] == '.')) {
      ++pos_;
    }
    return Token{Token::Type::kIdent, std::string(in_.substr(start, pos_ - start))};
  }

  Token LexNumber() {
    const size_t start = pos_;
    bool seen_dot = false;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
            (in_[pos_] == '.' && !seen_dot))) {
      if (in_[pos_] == '.') seen_dot = true;
      ++pos_;
    }
    return Token{Token::Type::kNumber, std::string(in_.substr(start, pos_ - start))};
  }

  Result<Token> LexString() {
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < in_.size()) {
      if (in_[pos_] == '\'') {
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '\'') {
          text += '\'';  // escaped quote
          pos_ += 2;
          continue;
        }
        ++pos_;
        return Token{Token::Type::kString, std::move(text)};
      }
      text += in_[pos_++];
    }
    return Status::ParseError("unterminated string literal");
  }

  Result<Token> LexSymbol() {
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
    for (const char* s : kTwoChar) {
      if (in_.substr(pos_, 2) == s) {
        pos_ += 2;
        return Token{Token::Type::kSymbol, s};
      }
    }
    const char c = in_[pos_];
    if (std::string("(),*=<>+-/%").find(c) == std::string::npos) {
      return Status::ParseError(strings::Format("unexpected character '%c'", c));
    }
    ++pos_;
    return Token{Token::Type::kSymbol, std::string(1, c)};
  }

  std::string_view in_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelect() {
    SelectStatement stmt;
    if (!MatchKeyword("SELECT")) return Error("expected SELECT");
    PIYE_RETURN_NOT_OK(ParseSelectList(&stmt));
    if (!MatchKeyword("FROM")) return Error("expected FROM");
    PIYE_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (MatchKeyword("WHERE")) {
      PIYE_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (MatchKeyword("GROUP")) {
      if (!MatchKeyword("BY")) return Error("expected BY after GROUP");
      do {
        PIYE_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        stmt.group_by.push_back(std::move(col));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("ORDER")) {
      if (!MatchKeyword("BY")) return Error("expected BY after ORDER");
      do {
        OrderKey key;
        PIYE_ASSIGN_OR_RETURN(key.column, ExpectIdent());
        if (MatchKeyword("DESC")) {
          key.ascending = false;
        } else {
          MatchKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != Token::Type::kNumber) return Error("expected LIMIT count");
      stmt.limit = static_cast<size_t>(std::strtoull(Peek().text.c_str(), nullptr, 10));
      Advance();
    }
    if (Peek().type != Token::Type::kEnd) {
      return Error("unexpected trailing tokens near '" + Peek().text + "'");
    }
    return stmt;
  }

  Result<ExprPtr> ParseBareExpression() {
    PIYE_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    if (Peek().type != Token::Type::kEnd) {
      return Error("unexpected trailing tokens near '" + Peek().text + "'");
    }
    return e;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("SQL parse error: " + what);
  }

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++pos_; }

  bool MatchKeyword(const std::string& kw) {
    if (Peek().type == Token::Type::kIdent &&
        strings::ToLower(Peek().text) == strings::ToLower(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchSymbol(const std::string& sym) {
    if (Peek().type == Token::Type::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Result<std::string> ExpectIdent() {
    if (Peek().type != Token::Type::kIdent) {
      return Error("expected identifier, got '" + Peek().text + "'");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  static bool IsAggName(const std::string& name, AggFunc* out) {
    const std::string up = strings::ToLower(name);
    if (up == "count") *out = AggFunc::kCount;
    else if (up == "sum") *out = AggFunc::kSum;
    else if (up == "avg") *out = AggFunc::kAvg;
    else if (up == "min") *out = AggFunc::kMin;
    else if (up == "max") *out = AggFunc::kMax;
    else if (up == "stddev") *out = AggFunc::kStdDev;
    else return false;
    return true;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    do {
      SelectItem item;
      if (MatchSymbol("*")) {
        item = SelectItem::Star();
      } else {
        if (Peek().type != Token::Type::kIdent) {
          return Error("expected column or aggregate in select list");
        }
        AggFunc func;
        if (IsAggName(Peek().text, &func) && Peek(1).type == Token::Type::kSymbol &&
            Peek(1).text == "(") {
          Advance();  // func name
          Advance();  // (
          std::string col;
          if (MatchSymbol("*")) {
            if (func != AggFunc::kCount) {
              return Error("only COUNT accepts '*'");
            }
          } else {
            auto col_r = ExpectIdent();
            if (!col_r.ok()) return col_r.status();
            col = *col_r;
          }
          if (!MatchSymbol(")")) return Error("expected ')'");
          item = SelectItem::Agg(func, std::move(col));
        } else {
          auto col_r = ExpectIdent();
          if (!col_r.ok()) return col_r.status();
          item = SelectItem::Col(*col_r);
        }
      }
      if (MatchKeyword("AS")) {
        auto alias_r = ExpectIdent();
        if (!alias_r.ok()) return alias_r.status();
        item.alias = *alias_r;
      }
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));
    return Status::OK();
  }

  // Expression grammar: or -> and -> not -> comparison -> additive ->
  // multiplicative -> primary.
  Result<ExprPtr> ParseOr() {
    PIYE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      PIYE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expression::Binary(Expression::Op::kOr, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    PIYE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (MatchKeyword("AND")) {
      PIYE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expression::Binary(Expression::Op::kAnd, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      PIYE_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expression::Not(e);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    PIYE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (MatchKeyword("LIKE")) {
      PIYE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return Expression::Binary(Expression::Op::kLike, lhs, rhs);
    }
    if (MatchKeyword("IN")) {
      if (!MatchSymbol("(")) return Error("expected '(' after IN");
      std::vector<Value> values;
      do {
        PIYE_ASSIGN_OR_RETURN(ExprPtr lit, ParsePrimary());
        if (lit->op() != Expression::Op::kLiteral) {
          return Error("IN list must contain literals");
        }
        values.push_back(lit->literal());
      } while (MatchSymbol(","));
      if (!MatchSymbol(")")) return Error("expected ')' after IN list");
      return Expression::In(lhs, std::move(values));
    }
    struct {
      const char* sym;
      Expression::Op op;
    } kOps[] = {{"<=", Expression::Op::kLe}, {">=", Expression::Op::kGe},
                {"<>", Expression::Op::kNe}, {"!=", Expression::Op::kNe},
                {"=", Expression::Op::kEq},  {"<", Expression::Op::kLt},
                {">", Expression::Op::kGt}};
    for (const auto& o : kOps) {
      if (MatchSymbol(o.sym)) {
        PIYE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Expression::Binary(o.op, lhs, rhs);
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    PIYE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      if (MatchSymbol("+")) {
        PIYE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expression::Binary(Expression::Op::kAdd, lhs, rhs);
      } else if (MatchSymbol("-")) {
        PIYE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expression::Binary(Expression::Op::kSub, lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    PIYE_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
    for (;;) {
      if (MatchSymbol("*")) {
        PIYE_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
        lhs = Expression::Binary(Expression::Op::kMul, lhs, rhs);
      } else if (MatchSymbol("/")) {
        PIYE_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
        lhs = Expression::Binary(Expression::Op::kDiv, lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case Token::Type::kNumber: {
        const std::string text = t.text;
        Advance();
        if (text.find('.') != std::string::npos) {
          return Expression::Literal(Value::Real(std::strtod(text.c_str(), nullptr)));
        }
        return Expression::Literal(
            Value::Int(std::strtoll(text.c_str(), nullptr, 10)));
      }
      case Token::Type::kString: {
        std::string text = t.text;
        Advance();
        return Expression::Literal(Value::Str(std::move(text)));
      }
      case Token::Type::kIdent: {
        const std::string lower = strings::ToLower(t.text);
        if (lower == "true") {
          Advance();
          return Expression::Literal(Value::Boolean(true));
        }
        if (lower == "false") {
          Advance();
          return Expression::Literal(Value::Boolean(false));
        }
        if (lower == "null") {
          Advance();
          return Expression::Literal(Value::Null());
        }
        std::string name = t.text;
        Advance();
        return Expression::ColumnRef(std::move(name));
      }
      case Token::Type::kSymbol:
        if (t.text == "(") {
          Advance();
          PIYE_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
          if (!MatchSymbol(")")) return Error("expected ')'");
          return e;
        }
        if (t.text == "-") {
          Advance();
          PIYE_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
          return Expression::Binary(Expression::Op::kSub,
                                    Expression::Literal(Value::Int(0)), e);
        }
        return Error("unexpected symbol '" + t.text + "'");
      case Token::Type::kEnd:
        return Error("unexpected end of input");
    }
    return Error("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSql(std::string_view sql) {
  PIYE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(sql).Run());
  return Parser(std::move(tokens)).ParseSelect();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  PIYE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Run());
  return Parser(std::move(tokens)).ParseBareExpression();
}

}  // namespace relational
}  // namespace piye

#include "relational/expression.h"

#include "common/macros.h"

namespace piye {
namespace relational {

ExprPtr Expression::Literal(Value v) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->op_ = Op::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expression::ColumnRef(std::string name) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->op_ = Op::kColumn;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expression::Binary(Op op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expression::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->op_ = Op::kNot;
  e->lhs_ = std::move(operand);
  return e;
}

ExprPtr Expression::In(ExprPtr lhs, std::vector<Value> values) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->op_ = Op::kIn;
  e->lhs_ = std::move(lhs);
  e->in_values_ = std::move(values);
  return e;
}

ExprPtr Expression::And(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return Binary(Op::kAnd, std::move(a), std::move(b));
}

namespace {

Result<Value> Arith(Expression::Op op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    if (op == Expression::Op::kAdd && a.is_string() && b.is_string()) {
      return Value::Str(a.AsString() + b.AsString());
    }
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  const bool both_int = a.is_int() && b.is_int() && op != Expression::Op::kDiv;
  const double x = a.AsDouble(), y = b.AsDouble();
  double r = 0;
  switch (op) {
    case Expression::Op::kAdd:
      r = x + y;
      break;
    case Expression::Op::kSub:
      r = x - y;
      break;
    case Expression::Op::kMul:
      r = x * y;
      break;
    case Expression::Op::kDiv:
      if (y == 0.0) return Value::Null();
      r = x / y;
      break;
    default:
      return Status::Internal("not an arithmetic op");
  }
  if (both_int) return Value::Int(static_cast<int64_t>(r));
  return Value::Real(r);
}

}  // namespace

bool SqlLikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> Expression::Evaluate(const Row& row, const Schema& schema) const {
  switch (op_) {
    case Op::kLiteral:
      return literal_;
    case Op::kColumn: {
      PIYE_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column_));
      return row[idx];
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      PIYE_ASSIGN_OR_RETURN(Value a, lhs_->Evaluate(row, schema));
      PIYE_ASSIGN_OR_RETURN(Value b, rhs_->Evaluate(row, schema));
      if (a.is_null() || b.is_null()) return Value::Boolean(false);
      const int c = a.Compare(b);
      bool r = false;
      switch (op_) {
        case Op::kEq:
          r = c == 0;
          break;
        case Op::kNe:
          r = c != 0;
          break;
        case Op::kLt:
          r = c < 0;
          break;
        case Op::kLe:
          r = c <= 0;
          break;
        case Op::kGt:
          r = c > 0;
          break;
        case Op::kGe:
          r = c >= 0;
          break;
        default:
          break;
      }
      return Value::Boolean(r);
    }
    case Op::kAnd: {
      PIYE_ASSIGN_OR_RETURN(bool a, lhs_->EvaluatesTrue(row, schema));
      if (!a) return Value::Boolean(false);
      PIYE_ASSIGN_OR_RETURN(bool b, rhs_->EvaluatesTrue(row, schema));
      return Value::Boolean(b);
    }
    case Op::kOr: {
      PIYE_ASSIGN_OR_RETURN(bool a, lhs_->EvaluatesTrue(row, schema));
      if (a) return Value::Boolean(true);
      PIYE_ASSIGN_OR_RETURN(bool b, rhs_->EvaluatesTrue(row, schema));
      return Value::Boolean(b);
    }
    case Op::kNot: {
      PIYE_ASSIGN_OR_RETURN(bool a, lhs_->EvaluatesTrue(row, schema));
      return Value::Boolean(!a);
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv: {
      PIYE_ASSIGN_OR_RETURN(Value a, lhs_->Evaluate(row, schema));
      PIYE_ASSIGN_OR_RETURN(Value b, rhs_->Evaluate(row, schema));
      return Arith(op_, a, b);
    }
    case Op::kLike: {
      PIYE_ASSIGN_OR_RETURN(Value a, lhs_->Evaluate(row, schema));
      PIYE_ASSIGN_OR_RETURN(Value b, rhs_->Evaluate(row, schema));
      if (a.is_null() || b.is_null()) return Value::Boolean(false);
      if (!a.is_string() || !b.is_string()) {
        return Status::InvalidArgument("LIKE requires string operands");
      }
      return Value::Boolean(SqlLikeMatch(a.AsString(), b.AsString()));
    }
    case Op::kIn: {
      PIYE_ASSIGN_OR_RETURN(Value a, lhs_->Evaluate(row, schema));
      if (a.is_null()) return Value::Boolean(false);
      for (const Value& v : in_values_) {
        if (a.SqlEquals(v)) return Value::Boolean(true);
      }
      return Value::Boolean(false);
    }
  }
  return Status::Internal("unhandled expression op");
}

Result<bool> Expression::EvaluatesTrue(const Row& row, const Schema& schema) const {
  PIYE_ASSIGN_OR_RETURN(Value v, Evaluate(row, schema));
  if (v.is_null()) return false;
  if (v.is_bool()) return v.AsBool();
  if (v.is_numeric()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

void Expression::CollectColumns(std::set<std::string>* out) const {
  if (op_ == Op::kColumn) out->insert(column_);
  if (lhs_) lhs_->CollectColumns(out);
  if (rhs_) rhs_->CollectColumns(out);
}

size_t Expression::NodeCount() const {
  size_t n = 1;
  if (lhs_) n += lhs_->NodeCount();
  if (rhs_) n += rhs_->NodeCount();
  return n;
}

std::string Expression::ToString() const {
  switch (op_) {
    case Op::kLiteral:
      return literal_.ToString();
    case Op::kColumn:
      return column_;
    case Op::kNot:
      return "(NOT " + lhs_->ToString() + ")";
    case Op::kIn: {
      std::string out = "(" + lhs_->ToString() + " IN (";
      for (size_t i = 0; i < in_values_.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_values_[i].ToString();
      }
      return out + "))";
    }
    default: {
      const char* sym = "?";
      switch (op_) {
        case Op::kEq:
          sym = "=";
          break;
        case Op::kNe:
          sym = "<>";
          break;
        case Op::kLt:
          sym = "<";
          break;
        case Op::kLe:
          sym = "<=";
          break;
        case Op::kGt:
          sym = ">";
          break;
        case Op::kGe:
          sym = ">=";
          break;
        case Op::kAnd:
          sym = "AND";
          break;
        case Op::kOr:
          sym = "OR";
          break;
        case Op::kAdd:
          sym = "+";
          break;
        case Op::kSub:
          sym = "-";
          break;
        case Op::kMul:
          sym = "*";
          break;
        case Op::kDiv:
          sym = "/";
          break;
        case Op::kLike:
          sym = "LIKE";
          break;
        default:
          break;
      }
      return "(" + lhs_->ToString() + " " + sym + " " + rhs_->ToString() + ")";
    }
  }
}

}  // namespace relational
}  // namespace piye

#ifndef PIYE_RELATIONAL_AGG_H_
#define PIYE_RELATIONAL_AGG_H_

#include <cmath>
#include <cstdint>

#include "relational/sql.h"
#include "relational/value.h"

namespace piye {
namespace relational {

/// Shared accumulator math for SUM/AVG/STDDEV/COUNT, used by both the
/// vectorized executor and the row-at-a-time reference engine
/// (relational/reference.h) so the differential harness compares
/// bit-identical floating-point results — both engines apply the identical
/// operation sequence in row order.
///
/// Two deliberate fixes over the seed engine live here:
///  - STDDEV uses Welford's single-pass recurrence (mean, m2) instead of
///    `sum_sq/n - mean^2`, which cancels catastrophically when the mean
///    dwarfs the spread (mean ~1e9, stddev ~1 lost every significant digit).
///  - INT64 inputs accumulate an exact `int64_t` sum (overflow-checked);
///    the naive double `sum` is kept alongside as the overflow fallback and
///    for double inputs, and widening happens only at Finish.
struct NumericAgg {
  size_t count = 0;
  int64_t isum = 0;       ///< exact integer sum (valid while !ioverflow)
  bool ioverflow = false; ///< int64 sum overflowed; fall back to `sum`
  double sum = 0.0;       ///< naive double sum (seed-identical for doubles)
  double mean = 0.0;      ///< Welford running mean
  double m2 = 0.0;        ///< Welford sum of squared deviations

  void AddReal(double x) {
    ++count;
    sum += x;
    const double d = x - mean;
    mean += d / static_cast<double>(count);
    m2 += d * (x - mean);
  }

  void AddInt(int64_t v) {
    if (!ioverflow) {
      int64_t next = 0;
      if (__builtin_add_overflow(isum, v, &next)) {
        ioverflow = true;
      } else {
        isum = next;
      }
    }
    AddReal(static_cast<double>(v));
  }

  /// Non-numeric non-NULL cell: counts toward COUNT but not the sums,
  /// matching the seed engine (SUM over a string column is 0.0, not NULL).
  void AddNonNumeric() { ++count; }

  /// Finishes a SUM/AVG/STDDEV/COUNT aggregate. `int_input` is true when
  /// the aggregated column is kInt64 — those sums/averages use the exact
  /// integer accumulator unless it overflowed. MIN/MAX are finished by the
  /// callers (they track typed extrema / Value extrema themselves).
  Value Finish(AggFunc func, bool int_input) const {
    switch (func) {
      case AggFunc::kCount:
        return Value::Int(static_cast<int64_t>(count));
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        if (int_input && !ioverflow) return Value::Int(isum);
        return Value::Real(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        if (int_input && !ioverflow) {
          return Value::Real(static_cast<double>(isum) /
                             static_cast<double>(count));
        }
        return Value::Real(sum / static_cast<double>(count));
      case AggFunc::kStdDev:
        if (count == 0) return Value::Null();
        // Population stddev, like the seed engine; m2 is non-negative by
        // construction so no clamp is needed.
        return Value::Real(std::sqrt(m2 / static_cast<double>(count)));
      default:
        return Value::Null();
    }
  }
};

/// Output column type for an aggregate over `input_type`. SUM over INT64
/// stays INT64 (exact); the executor demotes the column to DOUBLE only if
/// some group's sum actually overflowed.
inline ColumnType AggResultType(AggFunc func, ColumnType input_type) {
  switch (func) {
    case AggFunc::kCount:
      return ColumnType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return input_type;
    case AggFunc::kSum:
      return input_type == ColumnType::kInt64 ? ColumnType::kInt64
                                              : ColumnType::kDouble;
    default:
      return ColumnType::kDouble;
  }
}

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_AGG_H_

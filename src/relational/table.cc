#include "relational/table.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace relational {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  cols_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    cols_.push_back(std::make_shared<ColumnVector>(schema_.column(i).type));
  }
}

ColumnVector* Table::MutableColumn(size_t i) {
  if (cols_[i].use_count() > 1) {
    cols_[i] = std::make_shared<ColumnVector>(*cols_[i]);
  }
  return cols_[i].get();
}

void Table::AddColumn(Column meta, ColumnVector data) {
  auto col = std::make_shared<ColumnVector>(std::move(data));
  while (col->size() < num_rows_) col->AppendNull();
  schema_.AddColumn(std::move(meta));
  cols_.push_back(std::move(col));
  if (cols_.size() == 1) num_rows_ = cols_[0]->size();
}

Table Table::ProjectShared(const std::vector<size_t>& col_indices) const {
  Table out;
  out.num_rows_ = num_rows_;
  out.cols_.reserve(col_indices.size());
  for (size_t i : col_indices) {
    out.schema_.AddColumn(schema_.column(i));
    out.cols_.push_back(cols_[i]);
  }
  return out;
}

Table Table::Gather(const uint32_t* sel, size_t n) const {
  Table out(schema_);
  for (size_t c = 0; c < cols_.size(); ++c) {
    *out.cols_[c] = cols_[c]->Gather(sel, n);
  }
  out.num_rows_ = n;
  return out;
}

void Table::AppendTable(const Table& other) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    MutableColumn(c)->AppendColumn(other.col(c));
  }
  num_rows_ += other.num_rows_;
}

void Table::AppendRowFrom(const Table& other, size_t i) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    MutableColumn(c)->AppendFrom(other.col(c), i);
  }
  ++num_rows_;
}

void Table::Reserve(size_t n) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    MutableColumn(c)->Reserve(n);
  }
}

Row Table::row(size_t i) const {
  Row out;
  out.reserve(cols_.size());
  for (const auto& col : cols_) out.push_back(col->ValueAt(i));
  return out;
}

std::vector<Row> Table::rows() const {
  std::vector<Row> out;
  out.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) out.push_back(row(r));
  return out;
}

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(strings::Format(
        "row arity %zu does not match schema arity %zu", row.size(),
        schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    auto type = row[i].Type();
    if (!type.ok()) return type.status();
    // INT64 values are accepted into DOUBLE columns (numeric widening).
    if (*type == schema_.column(i).type) continue;
    if (*type == ColumnType::kInt64 && schema_.column(i).type == ColumnType::kDouble) {
      continue;  // AppendValue widens on the way in
    }
    return Status::InvalidArgument(strings::Format(
        "column '%s' expects %s but got %s", schema_.column(i).name.c_str(),
        ColumnTypeToString(schema_.column(i).type), ColumnTypeToString(*type)));
  }
  AppendRowUnchecked(row);
  return Status::OK();
}

void Table::AppendRowUnchecked(const Row& row) {
  for (size_t i = 0; i < cols_.size(); ++i) {
    MutableColumn(i)->AppendValue(i < row.size() ? row[i] : Value::Null());
  }
  ++num_rows_;
}

Result<Value> Table::At(size_t row_idx, const std::string& column) const {
  if (row_idx >= num_rows_) {
    return Status::OutOfRange(strings::Format("row %zu out of %zu", row_idx,
                                              num_rows_));
  }
  PIYE_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  return cols_[col]->ValueAt(row_idx);
}

Result<std::vector<Value>> Table::ColumnValues(const std::string& column) const {
  PIYE_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  std::vector<Value> out;
  out.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) out.push_back(cols_[col]->ValueAt(r));
  return out;
}

Result<std::vector<double>> Table::NumericColumn(const std::string& column) const {
  PIYE_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  const ColumnVector& cv = *cols_[col];
  if (cv.type() != ColumnType::kInt64 && cv.type() != ColumnType::kDouble &&
      cv.CountValid() > 0) {
    return Status::InvalidArgument("column '" + column + "' is not numeric");
  }
  std::vector<double> out;
  out.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    if (cv.IsNull(r)) continue;
    out.push_back(cv.type() == ColumnType::kInt64
                      ? static_cast<double>(cv.IntAt(r))
                      : cv.RealAt(r));
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths over header + shown rows.
  const size_t shown = std::min(max_rows, num_rows_);
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      cells[r][c] = Cell(r, c).ToDisplayString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  auto pad = [&](const std::string& s, size_t w) {
    out += s;
    out.append(w - s.size() + 2, ' ');
  };
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    pad(schema_.column(c).name, widths[c]);
  }
  out += '\n';
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.num_columns(); ++c) pad(cells[r][c], widths[c]);
    out += '\n';
  }
  if (shown < num_rows_) {
    out += strings::Format("... (%zu more rows)\n", num_rows_ - shown);
  }
  return out;
}

size_t Table::ApproxBytes() const {
  size_t bytes = sizeof(Table);
  for (const auto& col : schema_.columns()) {
    bytes += sizeof(Column) + col.name.capacity();
  }
  for (const auto& col : cols_) {
    bytes += sizeof(std::shared_ptr<ColumnVector>) + col->ApproxBytes();
  }
  return bytes;
}

}  // namespace relational
}  // namespace piye

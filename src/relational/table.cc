#include "relational/table.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace piye {
namespace relational {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(strings::Format(
        "row arity %zu does not match schema arity %zu", row.size(),
        schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    auto type = row[i].Type();
    if (!type.ok()) return type.status();
    // INT64 values are accepted into DOUBLE columns (numeric widening).
    if (*type == schema_.column(i).type) continue;
    if (*type == ColumnType::kInt64 && schema_.column(i).type == ColumnType::kDouble) {
      row[i] = Value::Real(row[i].AsDouble());
      continue;
    }
    return Status::InvalidArgument(strings::Format(
        "column '%s' expects %s but got %s", schema_.column(i).name.c_str(),
        ColumnTypeToString(schema_.column(i).type), ColumnTypeToString(*type)));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Value> Table::At(size_t row_idx, const std::string& column) const {
  if (row_idx >= rows_.size()) {
    return Status::OutOfRange(strings::Format("row %zu out of %zu", row_idx,
                                              rows_.size()));
  }
  PIYE_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  return rows_[row_idx][col];
}

Result<std::vector<Value>> Table::ColumnValues(const std::string& column) const {
  PIYE_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[col]);
  return out;
}

Result<std::vector<double>> Table::NumericColumn(const std::string& column) const {
  PIYE_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) {
    if (r[col].is_null()) continue;
    if (!r[col].is_numeric()) {
      return Status::InvalidArgument("column '" + column + "' is not numeric");
    }
    out.push_back(r[col].AsDouble());
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths over header + shown rows.
  const size_t shown = std::min(max_rows, rows_.size());
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      cells[r][c] = rows_[r][c].ToDisplayString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  auto pad = [&](const std::string& s, size_t w) {
    out += s;
    out.append(w - s.size() + 2, ' ');
  };
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    pad(schema_.column(c).name, widths[c]);
  }
  out += '\n';
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.num_columns(); ++c) pad(cells[r][c], widths[c]);
    out += '\n';
  }
  if (shown < rows_.size()) {
    out += strings::Format("... (%zu more rows)\n", rows_.size() - shown);
  }
  return out;
}

size_t Table::ApproxBytes() const {
  size_t bytes = sizeof(Table);
  for (const auto& col : schema_.columns()) {
    bytes += sizeof(Column) + col.name.capacity();
  }
  for (const auto& row : rows_) {
    bytes += sizeof(Row);
    for (const auto& value : row) bytes += value.ApproxBytes();
  }
  return bytes;
}

}  // namespace relational
}  // namespace piye

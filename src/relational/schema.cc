#include "relational/schema.h"

#include "common/macros.h"

namespace piye {
namespace relational {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

bool Schema::Contains(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  Schema out;
  for (const auto& n : names) {
    PIYE_ASSIGN_OR_RETURN(size_t idx, IndexOf(n));
    out.AddColumn(columns_[idx]);
  }
  return out;
}

std::vector<std::string> Schema::ColumnNames() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.name);
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ':';
    out += ColumnTypeToString(columns_[i].type);
  }
  return out;
}

}  // namespace relational
}  // namespace piye

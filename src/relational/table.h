#ifndef PIYE_RELATIONAL_TABLE_H_
#define PIYE_RELATIONAL_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/column.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace piye {
namespace relational {

/// A row of values, positionally aligned with a Schema. With columnar
/// storage a Row is a materialized copy, not the storage unit — the shim
/// accessors below build them on demand.
using Row = std::vector<Value>;

/// An in-memory table: a schema plus column-major typed storage (one
/// ColumnVector per column). This is the storage unit of the remote-source
/// databases and of intermediate query results.
///
/// Columns are held by shared_ptr with copy-on-write: copying a Table (or
/// projecting a subset of its columns) shares the underlying buffers;
/// `MutableColumn` clones a column only when it is actually shared. Hot
/// paths (the vectorized executor, the perturbation/anonymization kernels)
/// work on ColumnVector buffers directly; `row()`/`rows()` remain as
/// by-value shims so row-at-a-time callers keep working during migration.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  /// Rename-only access (SELECT aliases). Adding or removing columns through
  /// this reference would desynchronize schema and storage; use AddColumn.
  Schema& mutable_schema() { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return cols_.size(); }
  bool empty() const { return num_rows_ == 0; }

  // -- columnar access (hot paths) -----------------------------------------
  const ColumnVector& col(size_t i) const { return *cols_[i]; }
  /// Copy-on-write: clones the column first if its buffers are shared with
  /// another Table.
  ColumnVector* MutableColumn(size_t i);
  /// Materializes cell (row, col) as a Value.
  Value Cell(size_t row_idx, size_t col_idx) const {
    return cols_[col_idx]->ValueAt(row_idx);
  }
  /// Overwrites cell (row, col); NULL clears it. Copy-on-write applies.
  void SetCell(size_t row_idx, size_t col_idx, const Value& v) {
    MutableColumn(col_idx)->Set(row_idx, v);
  }

  /// Appends a column (NULL-padded up to num_rows(); a first column sets
  /// the row count).
  void AddColumn(Column meta, ColumnVector data);

  /// New table exposing columns `col_indices` (in that order) by sharing
  /// their buffers — projection without copying any cell.
  Table ProjectShared(const std::vector<size_t>& col_indices) const;

  /// New table holding rows `sel[0..n)` in that order (selection-vector
  /// materialization; string columns are compacted in the process).
  Table Gather(const uint32_t* sel, size_t n) const;
  Table Gather(const std::vector<uint32_t>& sel) const {
    return Gather(sel.data(), sel.size());
  }

  /// Appends all rows of `other`; schemas must already be compatible
  /// (same column count and types — the callers validate names).
  void AppendTable(const Table& other);
  /// Appends row `i` of `other` cell-by-cell (same column count/types).
  void AppendRowFrom(const Table& other, size_t i);

  void Reserve(size_t n);

  // -- row shims (cold paths, incremental migration) -----------------------
  /// Materialized copy of row `i`. By value: with columnar storage there is
  /// no stored Row to reference. Callers must not bind `const Value&` into
  /// the temporary across statements.
  Row row(size_t i) const;
  /// Materialized copy of all rows. O(cells); cold paths only.
  std::vector<Row> rows() const;

  /// Appends a row after arity and (non-NULL) type checking.
  Status AppendRow(Row row);
  /// Appends without validation (hot paths that construct rows themselves).
  /// Cells coerce per ColumnVector::AppendValue (INT64 widens into DOUBLE
  /// columns; other mismatches store NULL).
  void AppendRowUnchecked(const Row& row);

  /// Value at (row, named column).
  Result<Value> At(size_t row_idx, const std::string& column) const;

  /// Entire column as a vector of values.
  Result<std::vector<Value>> ColumnValues(const std::string& column) const;
  /// Numeric column as doubles (NULLs skipped).
  Result<std::vector<double>> NumericColumn(const std::string& column) const;

  /// Pretty-printed table (header + rows), for examples and benchmarks.
  std::string ToString(size_t max_rows = 50) const;

  /// In-memory footprint of the actual columnar buffers (schema + validity
  /// bitmaps + typed payloads + string arenas), used by memory-bounded
  /// caches to account for what an entry costs to keep. Shared (CoW) columns
  /// are counted in full by every holder.
  size_t ApproxBytes() const;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<std::shared_ptr<ColumnVector>> cols_;
};

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_TABLE_H_

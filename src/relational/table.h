#ifndef PIYE_RELATIONAL_TABLE_H_
#define PIYE_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace piye {
namespace relational {

/// A row of values, positionally aligned with a Schema.
using Row = std::vector<Value>;

/// An in-memory table: a schema plus rows. This is the storage unit of the
/// remote-source databases and of intermediate query results.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  /// Appends a row after arity and (non-NULL) type checking.
  Status AppendRow(Row row);
  /// Appends without validation (hot paths that construct rows themselves).
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Value at (row, named column).
  Result<Value> At(size_t row_idx, const std::string& column) const;

  /// Entire column as a vector of values.
  Result<std::vector<Value>> ColumnValues(const std::string& column) const;
  /// Numeric column as doubles (NULLs skipped).
  Result<std::vector<double>> NumericColumn(const std::string& column) const;

  /// Pretty-printed table (header + rows), for examples and benchmarks.
  std::string ToString(size_t max_rows = 50) const;

  /// Rough in-memory footprint of the table (schema + all rows), used by
  /// memory-bounded caches to account for what an entry costs to keep.
  size_t ApproxBytes() const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace relational
}  // namespace piye

#endif  // PIYE_RELATIONAL_TABLE_H_

#ifndef PIYE_ACCESS_RBAC_H_
#define PIYE_ACCESS_RBAC_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace piye {
namespace access {

/// Actions an access rule can grant.
enum class Action { kSelect, kInsert, kUpdate, kDelete };

const char* ActionToString(Action action);

/// Classic role-based access control with role inheritance: roles form a
/// DAG (a senior role inherits every permission of its juniors), users are
/// assigned roles, and permissions grant an action on a (table, column)
/// object with "*" wildcards.
///
/// The paper (Section 2, "Secured Databases") positions RBAC as necessary
/// but insufficient: the Query Rewriter consults this database *and* the
/// privacy policies — RBAC decides who may touch an object at all, policy
/// decides in what form.
class RbacDatabase {
 public:
  /// Declares a role; `parents` are the roles it inherits from.
  Status AddRole(const std::string& role, const std::vector<std::string>& parents = {});

  /// Assigns a role to a user. The wildcard user "*" assigns the role to
  /// every requester — one row of RBAC state regardless of population size.
  Status AssignRole(const std::string& user, const std::string& role);

  /// Grants `action` on table.column (wildcards allowed) to a role.
  Status Grant(const std::string& role, Action action, const std::string& table,
               const std::string& column);

  /// True if the user (via any assigned role, transitively through the role
  /// hierarchy) holds a grant matching the action and object.
  bool IsAuthorized(const std::string& user, Action action, const std::string& table,
                    const std::string& column) const;

  /// All roles effectively held by the user (assigned + inherited juniors).
  std::set<std::string> EffectiveRoles(const std::string& user) const;

  bool HasRole(const std::string& role) const { return roles_.count(role) != 0; }

 private:
  struct Permission {
    Action action;
    std::string table;
    std::string column;
  };

  void CollectJuniors(const std::string& role, std::set<std::string>* out) const;

  std::map<std::string, std::vector<std::string>> roles_;  // role -> parent roles
  std::map<std::string, std::set<std::string>> user_roles_;
  std::map<std::string, std::vector<Permission>> grants_;  // role -> permissions
};

/// Multi-level security labels (Section 2). A reader may see data at or
/// below their clearance (no read up); a writer may not write below their
/// level (no write down) — the Bell–LaPadula discipline.
enum class SecurityLevel {
  kPublic = 0,
  kInternal = 1,
  kConfidential = 2,
  kSecret = 3,
};

const char* SecurityLevelToString(SecurityLevel level);

/// Assigns MLS labels to (table, column) objects and answers read/write
/// checks against a clearance.
class MlsLabeling {
 public:
  void SetLabel(const std::string& table, const std::string& column,
                SecurityLevel level);
  /// Label of an object; defaults to kPublic when unlabeled.
  SecurityLevel LabelOf(const std::string& table, const std::string& column) const;

  /// Simple security property: clearance >= label.
  bool CanRead(SecurityLevel clearance, const std::string& table,
               const std::string& column) const;
  /// Star property: clearance <= label.
  bool CanWrite(SecurityLevel clearance, const std::string& table,
                const std::string& column) const;

 private:
  std::map<std::pair<std::string, std::string>, SecurityLevel> labels_;
};

}  // namespace access
}  // namespace piye

#endif  // PIYE_ACCESS_RBAC_H_

#include "access/rbac.h"

namespace piye {
namespace access {

const char* ActionToString(Action action) {
  switch (action) {
    case Action::kSelect:
      return "SELECT";
    case Action::kInsert:
      return "INSERT";
    case Action::kUpdate:
      return "UPDATE";
    case Action::kDelete:
      return "DELETE";
  }
  return "?";
}

Status RbacDatabase::AddRole(const std::string& role,
                             const std::vector<std::string>& parents) {
  if (roles_.count(role) != 0) {
    return Status::AlreadyExists("role '" + role + "' already exists");
  }
  for (const auto& p : parents) {
    if (roles_.count(p) == 0) {
      return Status::NotFound("parent role '" + p + "' does not exist");
    }
  }
  roles_.emplace(role, parents);
  return Status::OK();
}

Status RbacDatabase::AssignRole(const std::string& user, const std::string& role) {
  if (roles_.count(role) == 0) {
    return Status::NotFound("role '" + role + "' does not exist");
  }
  user_roles_[user].insert(role);
  return Status::OK();
}

Status RbacDatabase::Grant(const std::string& role, Action action,
                           const std::string& table, const std::string& column) {
  if (roles_.count(role) == 0) {
    return Status::NotFound("role '" + role + "' does not exist");
  }
  grants_[role].push_back({action, table, column});
  return Status::OK();
}

void RbacDatabase::CollectJuniors(const std::string& role,
                                  std::set<std::string>* out) const {
  if (!out->insert(role).second) return;  // already visited
  auto it = roles_.find(role);
  if (it == roles_.end()) return;
  for (const auto& parent : it->second) CollectJuniors(parent, out);
}

std::set<std::string> RbacDatabase::EffectiveRoles(const std::string& user) const {
  std::set<std::string> out;
  auto it = user_roles_.find(user);
  if (it != user_roles_.end()) {
    for (const auto& role : it->second) CollectJuniors(role, &out);
  }
  // Roles assigned to the wildcard user "*" are held by every requester.
  // This keeps population-scale deployments O(1) in RBAC state instead of
  // one assignment row per requester; the privacy layer still gates each
  // requester's disclosures individually.
  if (user != "*") {
    auto any = user_roles_.find("*");
    if (any != user_roles_.end()) {
      for (const auto& role : any->second) CollectJuniors(role, &out);
    }
  }
  return out;
}

bool RbacDatabase::IsAuthorized(const std::string& user, Action action,
                                const std::string& table,
                                const std::string& column) const {
  for (const auto& role : EffectiveRoles(user)) {
    auto it = grants_.find(role);
    if (it == grants_.end()) continue;
    for (const Permission& p : it->second) {
      if (p.action != action) continue;
      if (p.table != "*" && p.table != table) continue;
      if (p.column != "*" && p.column != column) continue;
      return true;
    }
  }
  return false;
}

const char* SecurityLevelToString(SecurityLevel level) {
  switch (level) {
    case SecurityLevel::kPublic:
      return "public";
    case SecurityLevel::kInternal:
      return "internal";
    case SecurityLevel::kConfidential:
      return "confidential";
    case SecurityLevel::kSecret:
      return "secret";
  }
  return "?";
}

void MlsLabeling::SetLabel(const std::string& table, const std::string& column,
                           SecurityLevel level) {
  labels_[{table, column}] = level;
}

SecurityLevel MlsLabeling::LabelOf(const std::string& table,
                                   const std::string& column) const {
  auto it = labels_.find({table, column});
  if (it != labels_.end()) return it->second;
  // Fall back to a table-wide label.
  it = labels_.find({table, "*"});
  if (it != labels_.end()) return it->second;
  return SecurityLevel::kPublic;
}

bool MlsLabeling::CanRead(SecurityLevel clearance, const std::string& table,
                          const std::string& column) const {
  return clearance >= LabelOf(table, column);
}

bool MlsLabeling::CanWrite(SecurityLevel clearance, const std::string& table,
                           const std::string& column) const {
  return clearance <= LabelOf(table, column);
}

}  // namespace access
}  // namespace piye

#ifndef PIYE_MEDIATOR_QUERY_OPTIONS_H_
#define PIYE_MEDIATOR_QUERY_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.h"

namespace piye {
namespace mediator {

/// Per-query execution options for `MediationEngine::Execute` (and the
/// `PrivateIye::Query*` facades). This replaces the old positional
/// `dedup_keys` default argument: everything a requester can tune about one
/// integrated query lives here, so adding a knob no longer grows every
/// signature in the call chain.
struct QueryOptions {
  /// Mediated attribute names used for PSI-style duplicate elimination
  /// (empty ⇒ whole-row distinct).
  std::vector<std::string> dedup_keys;

  /// Overrides the requester identity carried inside the PIQL query when
  /// non-empty — for deployments where the transport authenticates the
  /// caller and the query text is not trusted to self-identify.
  std::string requester;

  /// Per-source deadline in milliseconds, measured from fan-out start. A
  /// source that has not answered in time lands in `sources_skipped` with a
  /// DeadlineExceeded reason. 0 ⇒ no deadline; negative values are rejected
  /// with kInvalidArgument at the top of Execute.
  int64_t deadline_ms = 0;

  /// Bounded retry for *transient* (kUnavailable) source failures, with
  /// exponential backoff between attempts. Privacy refusals are never
  /// retried — a policy decision is deterministic, not transient. Values
  /// above kMaxRetriesLimit are rejected with kInvalidArgument (a runaway
  /// retry count is an overload amplifier, not a resilience knob).
  uint32_t max_retries = 0;
  static constexpr uint32_t kMaxRetriesLimit = 64;

  /// Cooperative cancellation and whole-query deadline. Obtain a token from
  /// a `CancelSource` (and/or tighten it with `WithTimeout`); when it fires,
  /// admission rejects the query before dispatch (kDeadlineExceeded /
  /// kCancelled), a queued query leaves the admission queue, and an
  /// executing query stops its in-flight fragments cooperatively instead of
  /// letting them run to completion. A fired token never charges privacy
  /// budget for an unreleased answer. Default: never fires.
  CancelToken cancel;

  /// Quorum: fail the whole query (kUnavailable) unless at least this many
  /// sources contributed answers. 0 or 1 ⇒ any non-empty answer set is
  /// accepted (the engine's original graceful-degradation behaviour).
  size_t min_sources = 0;

  /// Per-query opt-out from the materialized warehouse (both lookup and
  /// population) even when the engine enables it — for requesters that need
  /// a live answer.
  bool allow_warehouse = true;

  /// Dials sources even when their circuit breaker is open (the engine's
  /// `enable_circuit_breakers` mode) — for must-try emergency queries that
  /// prefer a slow failure over shedding. The outcome still feeds the
  /// breaker's failure accounting.
  bool bypass_circuit_breaker = false;

  /// Single-flight coalescing: when an identical execution (same query
  /// fingerprint, same requester, same options) is already in flight, join
  /// it and share its privacy-checked result instead of fanning out to the
  /// sources again — one federated execution, one history entry, one
  /// per-requester budget charge for the whole burst. Requests from
  /// *different* requesters never coalesce (their budgets are accounted
  /// separately), so this is budget-neutral by construction. Set false to
  /// force a private execution (e.g. when measuring source behaviour).
  bool coalesce = true;
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_QUERY_OPTIONS_H_

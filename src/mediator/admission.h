#ifndef PIYE_MEDIATOR_ADMISSION_H_
#define PIYE_MEDIATOR_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/sync.h"
#include "common/result.h"
#include "common/trace.h"

namespace piye {
namespace mediator {

/// Overload-resilience tuning for the mediation engine's admission pipeline
/// (see DESIGN.md §8). The defaults are fully permissive — an engine built
/// with a default config admits everything immediately, which is the
/// pre-admission behaviour every existing caller relies on. Deployments
/// facing real load set `max_inflight` (capacity protection) and
/// `tokens_per_second` (per-requester rate fairness).
struct AdmissionConfig {
  /// Queries allowed to execute concurrently. Arrivals beyond this wait in
  /// the fair-share queue. 0 ⇒ unbounded (gating off, the default).
  size_t max_inflight = 0;

  /// Waiters held beyond `max_inflight` before the controller starts
  /// shedding. Saturation sheds the *newest* arrival (LIFO shed): under a
  /// burst, the queries already waiting are the ones closest to being
  /// served, so rejecting newcomers keeps goodput instead of churning the
  /// whole queue past its deadlines.
  size_t max_queue_depth = 128;

  /// Per-requester token-bucket rate limit, refilled continuously. A
  /// requester that outruns its bucket is shed immediately with
  /// `kResourceExhausted` and a retry-after hint — one snooping HMO cannot
  /// starve everyone else of admission slots. 0 ⇒ rate limiting off.
  double tokens_per_second = 0.0;

  /// Bucket capacity (burst tolerance). <= 0 ⇒ max(1, tokens_per_second).
  double bucket_burst = 0.0;

  /// Token-bucket shard count (rounded up to a power of two). Buckets are
  /// checked before the main admission lock, so a million rate-limited
  /// requesters contend on shards, not on one mutex. Full buckets are
  /// swept periodically — a fully-refilled bucket is decision-identical to
  /// a fresh one, so eviction never changes an admission outcome.
  size_t bucket_shards = 8;

  /// Fair-share weights by requester name; absent requesters weigh 1.0. A
  /// weight-2 requester is served twice as often from the queue as a
  /// weight-1 requester when both have waiters.
  std::map<std::string, double> requester_weights;
};

/// Continuous-refill token bucket. Not thread-safe on its own (the
/// controller locks); time is always passed in, so tests drive it with a
/// synthetic clock and get bit-for-bit deterministic behaviour.
class TokenBucket {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  TokenBucket(double tokens_per_second, double burst);

  /// Refills for the elapsed time, then takes one token if available.
  bool TryConsume(TimePoint now);

  /// Milliseconds until a full token will have accrued (0 when one is
  /// already available) — the retry-after hint for shed queries.
  uint64_t RetryAfterMillis(TimePoint now) const;

  double tokens(TimePoint now) const;

  /// True when the bucket holds its full burst again — the state a brand-new
  /// bucket starts in, which is what makes sweeping full buckets safe.
  bool FullyRefilled(TimePoint now) const;

 private:
  void RefillLocked(TimePoint now) const;

  double rate_;
  double burst_;
  mutable double tokens_;
  mutable TimePoint last_refill_;
  mutable bool primed_ = false;
};

/// The waiting room between "engine at capacity" and "shed": a bounded queue
/// that serves requesters by weighted fair share (stride scheduling over a
/// per-requester virtual pass) and, within one requester, earliest deadline
/// first. Pure data structure — single-threaded, deterministic, owned and
/// locked by AdmissionController, property-tested directly.
class FairShareQueue {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit FairShareQueue(size_t max_depth) : max_depth_(max_depth) {}

  void SetWeight(const std::string& requester, double weight);

  /// Enqueues a waiter. Returns false when the queue is saturated — the
  /// caller sheds this newest arrival (LIFO shed), never an already-queued
  /// waiter.
  bool Push(uint64_t id, const std::string& requester, TimePoint deadline);

  /// Dequeues the next waiter to admit: the active requester with the
  /// smallest virtual pass (smallest pass / tie ⇒ lexicographic requester,
  /// so the order is total and deterministic), then that requester's
  /// earliest-deadline waiter (FIFO among equal deadlines). Returns false
  /// when empty.
  bool Pop(uint64_t* id);

  /// Removes a waiter that gave up (deadline or cancellation while queued).
  /// Returns false when `id` is no longer queued (it was already popped).
  bool Remove(uint64_t id);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Live per-requester entries (waiters or banked pass-debt). Bounded: a
  /// periodic sweep erases idle entries whose pass has been overtaken by the
  /// virtual clock — re-activation clamps to the clock anyway, so eviction
  /// is behaviour-identical.
  size_t tracked_requesters() const { return requesters_.size(); }

 private:
  struct Waiter {
    uint64_t id = 0;
    TimePoint deadline{};
    uint64_t seq = 0;  ///< arrival order, the deadline tiebreak
  };
  struct PerRequester {
    std::deque<Waiter> waiters;  ///< kept sorted by (deadline, seq)
    double pass = 0.0;           ///< virtual time consumed / weight
    double weight = 1.0;
  };

  /// Drops idle entries that carry no debt the virtual clock hasn't already
  /// absorbed. Called every kSweepInterval pushes/pops; deterministic.
  void SweepIdle();

  size_t max_depth_;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t ops_ = 0;  ///< push/pop count, drives the idle sweep
  /// Virtual clock: the pass of the last served requester. A requester going
  /// idle→active restarts at this value so a long-idle requester cannot bank
  /// pass-credit and then monopolize the queue.
  double virtual_time_ = 0.0;
  std::map<std::string, PerRequester> requesters_;
  /// Configured weights, kept separately from the live entries so an idle
  /// entry can be evicted without forgetting its weight.
  std::map<std::string, double> weights_;
};

/// The engine's admission pipeline, run before *anything* else a query
/// touches (single-flight, warehouse, history, budget, breakers):
///
///   pre-expired deadline ⇒ kDeadlineExceeded   (never dispatched)
///   token bucket dry     ⇒ kResourceExhausted  (retry-after hint)
///   capacity free        ⇒ admitted            (RAII Permit)
///   queue has room       ⇒ wait (fair share, deadline-aware)
///   queue saturated      ⇒ kResourceExhausted  (LIFO shed, retry-after hint)
///
/// A shed or expired query consumes no privacy budget, writes no history,
/// and feeds no circuit breaker — it was never admitted, so no source can be
/// blamed for it. Thread-safe; metrics land in the engine registry as
/// engine.admitted / engine.shed / engine.cancelled / engine.queued.
class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, trace::MetricsRegistry* metrics);

  /// RAII admission slot: destruction (or Release) frees the in-flight slot
  /// and hands it to the next fair-share waiter.
  class Permit {
   public:
    Permit() = default;
    ~Permit() { Release(); }
    Permit(Permit&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;

    void Release();

   private:
    friend class AdmissionController;
    explicit Permit(AdmissionController* controller) : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  /// Blocks until the query is admitted, shed, or cancelled. `requester` is
  /// the transport-corrected identity (the unit of rate limiting and fair
  /// share); `token` bounds the wait — its deadline or cancellation pulls
  /// the waiter out of the queue with kDeadlineExceeded / kCancelled.
  Result<Permit> Admit(const std::string& requester, const CancelToken& token);

  size_t inflight() const;
  size_t queue_depth() const;

  /// Resident token buckets across all shards (bounded by the sweep).
  size_t tracked_buckets() const;
  /// Live fair-share queue entries (bounded by the idle sweep).
  size_t tracked_requesters() const;

 private:
  /// One token-bucket shard: requesters hash here by name, and the rate
  /// check runs entirely under the shard lock — never the main mu_.
  struct BucketShard {
    mutable Mutex mu;
    std::map<std::string, TokenBucket> buckets GUARDED_BY(mu);
    uint64_t ops GUARDED_BY(mu) = 0;  ///< admissions since start, drives sweep
  };

  void Release() EXCLUDES(mu_);
  BucketShard& BucketShardFor(const std::string& requester) const;

  AdmissionConfig config_;
  trace::MetricsRegistry* metrics_;

  mutable std::vector<BucketShard> bucket_shards_;
  size_t bucket_shard_mask_ = 0;

  mutable Mutex mu_;
  CondVar cv_;
  size_t inflight_ GUARDED_BY(mu_) = 0;
  uint64_t next_waiter_id_ GUARDED_BY(mu_) = 0;
  FairShareQueue queue_ GUARDED_BY(mu_);
  /// Waiters flipped to admitted by Release; their Admit call wakes, erases
  /// the marker, and owns the transferred slot.
  std::map<uint64_t, bool> admitted_ GUARDED_BY(mu_);
};

}  // namespace mediator
}  // namespace piye

#endif  // PIYE_MEDIATOR_ADMISSION_H_

#include "mediator/engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "mediator/persistence.h"
#include "source/metadata_tagger.h"
#include "source/remote_source.h"
#include "xml/parser.h"

namespace piye {
namespace mediator {

namespace {

constexpr std::chrono::microseconds kRetryBackoffBase{200};
constexpr std::chrono::microseconds kRetryBackoffCap{5000};

/// How often a single-flight follower with a live CancelToken re-checks it
/// while waiting on the leader (the token's deadline is honoured exactly via
/// wait_until; this bounds only the explicit-cancel reaction time).
constexpr std::chrono::milliseconds kCancelPollInterval{2};

/// A deadline of "none" is the steady clock's far future. Negative values
/// were rejected by ValidateOptions before this runs.
std::chrono::steady_clock::time_point ComputeDeadline(
    std::chrono::steady_clock::time_point start, int64_t deadline_ms) {
  if (deadline_ms == 0) return std::chrono::steady_clock::time_point::max();
  return start + std::chrono::milliseconds(deadline_ms);
}

/// Failures that speak to the source's transport health, as opposed to a
/// privacy verdict — only these feed the circuit breaker.
bool IsTransportFailure(const Status& status) {
  return status.IsUnavailable() || status.IsDeadlineExceeded();
}

/// Canonical encoding of every QueryOptions field that can change the
/// answer. Two calls coalesce only when this string (plus requester and
/// query fingerprint) matches exactly — a deadline or quorum difference is a
/// different request.
std::string OptionsCoalescingKey(const QueryOptions& options) {
  std::string key;
  for (const auto& k : options.dedup_keys) {
    key += k;
    key += ',';
  }
  key += '|';
  key += std::to_string(options.deadline_ms) + '|' +
         std::to_string(options.max_retries) + '|' +
         std::to_string(options.min_sources) + '|';
  key += options.allow_warehouse ? '1' : '0';
  key += options.bypass_circuit_breaker ? '1' : '0';
  return key;
}

}  // namespace

/// Shared between the waiting Execute call and a pool task. The task owns a
/// shared_ptr too, so a fragment abandoned on deadline keeps valid state
/// until the task finishes, after which it is released. Exactly one of the
/// two sides reports the outcome to the breaker (`breaker_reported` race is
/// settled by atomic exchange): the waiter on abandonment, the task on
/// completion.
struct MediationEngine::FragmentOutcome {
  source::PiqlQuery fragment;
  Status status = Status::Internal("fragment never ran");
  source::FederatedSource::FragmentResult result;
  CircuitBreaker* breaker = nullptr;  ///< null when breakers are off/bypassed
  std::atomic<bool> breaker_reported{false};

  void ReportToBreaker() {
    if (breaker == nullptr) return;
    if (breaker_reported.exchange(true)) return;
    if (status.ok() || !IsTransportFailure(status)) {
      // A privacy refusal is a healthy source saying no.
      breaker->OnSuccess();
    } else {
      breaker->OnFailure(std::chrono::steady_clock::now());
    }
  }
};

/// One coalesced federated execution: the leader publishes its result here
/// and every follower that joined while it was in flight shares it. The
/// shared_ptr keeps the flight alive for followers even after the leader
/// has erased it from the engine's in-flight table.
struct MediationEngine::InflightExecution {
  Mutex mu;
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  Result<IntegratedResult> result GUARDED_BY(mu){
      Status::Internal("single-flight execution still in flight")};
};

MediationEngine::MediationEngine(Options options)
    : options_(options),
      history_(QueryHistory::Options{options.history_shards,
                                     options.max_resident_history}),
      warehouse_(Warehouse::Options{options.warehouse_shards,
                                    options.warehouse_max_bytes}),
      control_(options.max_combined_loss, options.max_interval_loss),
      admission_(options.admission, &metrics_) {
  warehouse_.set_metrics(&metrics_);
  if (options_.worker_threads > 0) {
    executor_ = std::make_unique<Executor>(options_.worker_threads);
  }
}

Status MediationEngine::RegisterSource(source::FederatedSource* src) {
  if (src == nullptr) {
    return Status::InvalidArgument("RegisterSource: source is null");
  }
  if (schema_ready_) {
    return Status::InvalidArgument(
        "RegisterSource after GenerateMediatedSchema: the mediated schema is "
        "frozen; build a new engine to add source '" + src->owner() + "'");
  }
  for (const auto* existing : sources_) {
    if (existing->owner() == src->owner()) {
      return Status::AlreadyExists("a source owned by '" + src->owner() +
                                   "' is already registered");
    }
  }
  sources_.push_back(src);
  breakers_.emplace(src->owner(), std::make_unique<CircuitBreaker>(
                                      options_.circuit_breaker, &metrics_));
  return Status::OK();
}

std::vector<std::string> MediationEngine::SourceOwners() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto* s : sources_) out.push_back(s->owner());
  return out;
}

Status MediationEngine::GenerateMediatedSchema(const std::string& shared_key) {
  std::vector<match::ColumnSketch> sketches;
  for (const auto* src : sources_) {
    PIYE_ASSIGN_OR_RETURN(std::vector<match::ColumnSketch> s,
                          src->ExportSketches(shared_key));
    sketches.insert(sketches.end(), s.begin(), s.end());
  }
  match::SchemaMatcher::Options match_options;
  match::MediatedSchemaGenerator generator(
      match::SchemaMatcher(match_options, source::DefaultClinicalNameMatcher()));
  PIYE_ASSIGN_OR_RETURN(schema_, generator.Generate(sketches));
  schema_ready_ = true;
  return Status::OK();
}

Status MediationEngine::FailClosedStatus() const {
  return Status::Unavailable(
      "mediation engine is failing closed: a durability failure means further "
      "disclosures could go unaccounted; restart the process and Recover");
}

Status MediationEngine::JournalLocked(RecordType type, const std::string& payload) {
  if (persist_failed_.load()) return FailClosedStatus();
  Status status = persist_->Append(static_cast<uint16_t>(type), payload);
  if (status.ok()) status = options_.sync_wal ? persist_->Sync() : persist_->Flush();
  if (!status.ok()) {
    persist_failed_.store(true);
    metrics_.AddCounter("engine.persist_failures");
    Logger::Error("mediator",
                  "journal append failed, failing closed: " + status.ToString());
    return Status::Unavailable("fail closed: " + status.ToString());
  }
  metrics_.AddCounter("engine.wal_records");
  ++records_since_snapshot_;  // rotation happens on the history-record path
  return Status::OK();
}

Status MediationEngine::RotateSnapshotLocked() {
  const auto start = std::chrono::steady_clock::now();
  // The incremental part: floors dirtied since the last rotation. The
  // in-memory loss accumulators are NOT guarded by persist_mu_, so a
  // Record can land after this capture and before MarkClean below — which
  // is why MarkClean only cleans floors this map actually covers.
  std::map<std::string, double> dirty = history_.DirtyFloors();
  DurableState state;
  state.history = history_.Snapshot();
  state.cumulative_loss = history_.CumulativeLosses();
  state.total_history = history_.size();
  state.epoch = epoch();
  state.warehouse = warehouse_.SnapshotEntries();
  state.cells = control_.SnapshotCells();
  state.disclosures = control_.SnapshotDisclosures();
  PIYE_RETURN_NOT_OK(persist_->Rotate(EncodeSnapshot(state), dirty));
  // The rotation committed: the captured floors are durable (merged into
  // the floor index; clean ones were merged by an earlier rotation and
  // carried forward). Floors dirtied since the capture stay dirty — the
  // next rotation persists them, and the spiller below never evicts a
  // dirty entry.
  history_.MarkClean(dirty);
  {
    MutexLock index_lock(floor_index_mu_);
    floor_index_ = persist_->floors();
  }
  if (options_.hot_requesters > 0) {
    const size_t spilled = history_.SpillColdest(options_.hot_requesters);
    if (spilled > 0) {
      Logger::Info("mediator", "spilled " + std::to_string(spilled) +
                                   " cold requesters to the floor index");
    }
  }
  records_since_snapshot_ = 0;
  metrics_.AddCounter("engine.snapshots");
  snapshots_total_.fetch_add(1);
  const auto end = std::chrono::steady_clock::now();
  last_snapshot_duration_ms_.store(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(end - start)
          .count()));
  last_snapshot_done_ns_.store(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          end.time_since_epoch())
          .count()));
  return Status::OK();
}

Status MediationEngine::RotateSnapshotBackground() {
  MutexLock lock(persist_mu_);
  if (persist_ == nullptr) {
    return Status::InvalidArgument("no persistence attached");
  }
  if (persist_failed_.load()) return FailClosedStatus();
  const Status rotated = RotateSnapshotLocked();
  if (!rotated.ok()) {
    // A durability failure *during* compaction trips the same fail-closed
    // latch as a WAL append failure: the entries themselves are durable in
    // the current generation, but a disk that cannot rotate is a disk that
    // will shortly fail an append — stop accepting work now.
    persist_failed_.store(true);
    metrics_.AddCounter("engine.persist_failures");
    Logger::Error("mediator", "snapshot rotation failed, failing closed: " +
                                  rotated.ToString());
  }
  return rotated;
}

Status MediationEngine::RecordDurably(
    HistoryEntry entry, std::shared_ptr<const relational::Table> warehouse_table,
    const std::string& fingerprint) {
  if (!persist_attached_.load()) {
    history_.Record(std::move(entry));
    if (warehouse_table != nullptr) {
      warehouse_.Put(fingerprint, std::move(warehouse_table), epoch());
    }
    return Status::OK();
  }
  MutexLock lock(persist_mu_);
  if (persist_failed_.load()) return FailClosedStatus();
  // Sequence numbers are assigned under persist_mu_, so WAL order and
  // in-memory order agree and recovery replays exactly what executed.
  entry.sequence_number = history_.size();
  // The base loss must come from the *durable* floor: a spilled requester's
  // state faults in from the floor index here, before any accounting. A
  // load failure withholds the answer — default-allow would let a crashed
  // index erase budgets.
  auto base_loss = history_.DurableCumulativeLoss(entry.requester);
  if (!base_loss.ok()) {
    persist_failed_.store(true);
    metrics_.AddCounter("engine.persist_failures");
    Logger::Error("mediator", "budget floor load failed, failing closed: " +
                                  base_loss.status().ToString());
    return Status::Unavailable(
        "answer withheld (fail closed): the requester's durable budget floor "
        "could not be loaded: " + base_loss.status().ToString());
  }
  HistoryRecord record;
  record.cumulative_after =
      *base_loss + (entry.released ? entry.aggregated_privacy_loss : 0.0);
  record.entry = entry;
  Status status = persist_->Append(static_cast<uint16_t>(RecordType::kHistoryEntry),
                                   EncodeHistoryRecord(record));
  if (status.ok() && warehouse_table != nullptr) {
    status = persist_->Append(
        static_cast<uint16_t>(RecordType::kWarehousePut),
        EncodeWarehousePutRecord(fingerprint, epoch(), *warehouse_table));
  }
  if (status.ok()) status = options_.sync_wal ? persist_->Sync() : persist_->Flush();
  if (!status.ok()) {
    persist_failed_.store(true);
    metrics_.AddCounter("engine.persist_failures");
    Logger::Error("mediator",
                  "durability failure, failing closed: " + status.ToString());
    return Status::Unavailable(
        "answer withheld (fail closed): the disclosure could not be durably "
        "recorded: " + status.ToString());
  }
  metrics_.AddCounter("engine.wal_records");
  history_.Record(std::move(entry));
  if (warehouse_table != nullptr) {
    warehouse_.Put(fingerprint, std::move(warehouse_table), epoch());
  }
  if (options_.snapshot_every_records > 0 &&
      ++records_since_snapshot_ >= options_.snapshot_every_records &&
      snapshotter_ != nullptr) {
    // Off the query path: the background snapshotter coalesces bursts and
    // rotates when it next acquires persist_mu_. A rotation failure there
    // trips the same fail-closed latch this path would have.
    snapshotter_->Trigger();
  }
  return Status::OK();
}

Status MediationEngine::Recover(const std::string& dir) {
  MutexLock lock(persist_mu_);
  if (persist_ != nullptr) {
    return Status::InvalidArgument("Recover: persistence is already attached");
  }
  if (history_.size() != 0) {
    return Status::InvalidArgument(
        "Recover requires a fresh engine (non-empty history)");
  }
  const auto recover_start = std::chrono::steady_clock::now();
  persist::StateLog::RecoveredState recovered;
  PIYE_ASSIGN_OR_RETURN(persist_, persist::StateLog::Open(dir, &recovered));
  {
    MutexLock index_lock(floor_index_mu_);
    floor_index_ = recovered.floors;
  }

  DurableState state;
  if (!recovered.snapshot.empty()) {
    auto decoded = DecodeSnapshot(recovered.snapshot);
    if (!decoded.ok()) {
      // The snapshot passed its checksum but its payload does not parse — a
      // schema incompatibility, not disk rot. Refusing to start is the only
      // fail-closed option left.
      persist_.reset();
      return decoded.status();
    }
    state = std::move(*decoded);
  }

  std::vector<HistoryEntry> entries = std::move(state.history);
  std::map<std::string, double> floors = std::move(state.cumulative_loss);
  uint64_t recovered_epoch = state.epoch;
  std::map<std::string, Warehouse::SnapshotEntry> materialized;
  for (auto& w : state.warehouse) {
    const std::string key = w.fingerprint;
    materialized[key] = std::move(w);
  }
  std::vector<PrivacyControl::SensitiveCellSpec> cells = std::move(state.cells);
  std::vector<PrivacyControl::DisclosureSpec> disclosures =
      std::move(state.disclosures);

  size_t replayed = 0;
  bool replay_clean = recovered.wal_clean;
  std::string replay_detail = recovered.tail_detail;
  for (const auto& rec : recovered.records) {
    Status bad;
    switch (static_cast<RecordType>(rec.type)) {
      case RecordType::kHistoryEntry: {
        auto r = DecodeHistoryRecord(rec.payload);
        if (!r.ok()) {
          bad = r.status();
          break;
        }
        double& floor = floors[r->entry.requester];
        if (r->cumulative_after > floor) floor = r->cumulative_after;
        entries.push_back(std::move(r->entry));
        break;
      }
      case RecordType::kWarehousePut: {
        auto r = DecodeWarehousePutRecord(rec.payload);
        if (!r.ok()) {
          bad = r.status();
          break;
        }
        const std::string key = r->fingerprint;
        materialized[key] = std::move(*r);
        break;
      }
      case RecordType::kWarehouseEvict: {
        auto r = DecodeWarehouseEvictRecord(rec.payload);
        if (!r.ok()) {
          bad = r.status();
          break;
        }
        for (auto it = materialized.begin(); it != materialized.end();) {
          it = it->second.epoch < *r ? materialized.erase(it) : std::next(it);
        }
        break;
      }
      case RecordType::kEpochAdvance: {
        auto r = DecodeEpochRecord(rec.payload);
        if (!r.ok()) {
          bad = r.status();
          break;
        }
        recovered_epoch = std::max(recovered_epoch, *r);
        break;
      }
      case RecordType::kSensitiveCell: {
        auto r = DecodeCellRecord(rec.payload);
        if (!r.ok()) {
          bad = r.status();
          break;
        }
        cells.push_back(std::move(*r));
        break;
      }
      case RecordType::kDisclosure: {
        auto r = DecodeDisclosureRecord(rec.payload);
        if (!r.ok()) {
          bad = r.status();
          break;
        }
        disclosures.push_back(std::move(*r));
        break;
      }
      default:
        bad = Status::ParseError("unknown WAL record type " +
                                 std::to_string(rec.type));
    }
    if (!bad.ok()) {
      // A frame that passed its checksum but fails to decode is treated
      // exactly like a torn tail: everything from here on is discarded, and
      // the budget floors already carry the durable losses forward.
      replay_clean = false;
      replay_detail = bad.ToString();
      break;
    }
    ++replayed;
  }

  // The entry ring can hold entries for a requester whose budget state was
  // spilled before the snapshot was taken (the ring keeps the last N entries
  // regardless of which requester states are resident). Restoring such a
  // requester from its bounded, partial ring entries alone would resurrect
  // it *below* its durable floor — and resident state shadows the floor
  // index on every later budget decision. Raise every requester seen in the
  // recovered entries to its indexed floor before Restore; an unreadable
  // index entry refuses recovery (fail closed).
  {
    std::set<std::string> restored;
    for (const auto& e : entries) restored.insert(e.requester);
    for (const auto& requester : restored) {
      auto indexed =
          recovered.floors->Lookup(persist::FloorIndex::KeyFor(requester));
      if (!indexed.ok()) {
        persist_.reset();
        return indexed.status();
      }
      if (indexed->has_value()) {
        double& floor = floors[requester];
        floor = std::max(floor, **indexed);
      }
    }
  }

  PIYE_RETURN_NOT_OK(
      history_.Restore(std::move(entries), floors, state.total_history));
  epoch_.store(recovered_epoch, std::memory_order_relaxed);
  for (auto& [fingerprint, entry] : materialized) {
    warehouse_.Put(fingerprint, std::move(entry.table), entry.epoch);
  }
  PIYE_RETURN_NOT_OK(control_.Replay(cells, disclosures));
  last_recovery_replay_ms_.store(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - recover_start)
          .count()));

  // Spilled requesters stay in the floor index; their first returning query
  // faults the floor back in through this provider before any budget
  // decision. The provider takes only the leaf floor_index_mu_, so it is
  // safe to call both with and without persist_mu_ held.
  history_.set_floor_provider(
      [this](const std::string& requester) -> Result<std::optional<double>> {
        std::shared_ptr<const persist::FloorIndex> index;
        {
          MutexLock index_lock(floor_index_mu_);
          index = floor_index_;
        }
        if (index == nullptr) return std::optional<double>();
        return index->Lookup(persist::FloorIndex::KeyFor(requester));
      });

  persist_attached_.store(true);
  // Fold the recovered state into a fresh generation: a damaged tail is
  // healed on disk, and the next restart replays a short WAL instead of an
  // ever-growing one.
  PIYE_RETURN_NOT_OK(RotateSnapshotLocked());
  control_.set_journal([this](const PrivacyControl::JournalEvent& event) {
    MutexLock journal_lock(persist_mu_);
    if (event.kind == PrivacyControl::JournalEvent::Kind::kCell) {
      return JournalLocked(RecordType::kSensitiveCell,
                           EncodeCellRecord(event.cell));
    }
    return JournalLocked(RecordType::kDisclosure,
                         EncodeDisclosureRecord(event.disclosure));
  });

  snapshotter_ = std::make_unique<persist::Snapshotter>(
      persist::Snapshotter::Options{options_.snapshot_min_interval_ms},
      [this] { return RotateSnapshotBackground(); });
  snapshotter_->Start();

  metrics_.AddCounter("engine.recoveries");
  if (!replay_clean) {
    metrics_.AddCounter("engine.recovery_tail_discards");
    Logger::Warn("mediator",
                 "recovery discarded a damaged log tail: " + replay_detail);
  }
  Logger::Info("mediator",
               "recovered " + std::to_string(history_.size()) +
                   " history entries from '" + dir + "' (" +
                   std::to_string(replayed) + " WAL records replayed) at "
                   "generation " + std::to_string(persist_->generation()));
  return Status::OK();
}

Status MediationEngine::ArmPersistKillPoint(persist::KillPoint kill_point,
                                            uint64_t after_appends) {
  MutexLock lock(persist_mu_);
  if (persist_ == nullptr) {
    return Status::InvalidArgument(
        "ArmPersistKillPoint: no persistence attached (call Recover first)");
  }
  persist_->wal()->ArmKillPoint(kill_point, after_appends);
  return Status::OK();
}

Status MediationEngine::ArmRotateKillPoint(persist::RotateKillPoint kill_point) {
  MutexLock lock(persist_mu_);
  if (persist_ == nullptr) {
    return Status::InvalidArgument(
        "ArmRotateKillPoint: no persistence attached (call Recover first)");
  }
  persist_->ArmRotateKillPoint(kill_point);
  return Status::OK();
}

Status MediationEngine::TriggerSnapshot(bool wait) {
  persist::Snapshotter* snapshotter = nullptr;
  {
    MutexLock lock(persist_mu_);
    if (persist_ == nullptr) {
      return Status::InvalidArgument(
          "TriggerSnapshot: no persistence attached (call Recover first)");
    }
    snapshotter = snapshotter_.get();
  }
  if (persist_failed_.load()) return FailClosedStatus();
  if (!wait) {
    snapshotter->Trigger();
    return Status::OK();
  }
  return snapshotter->TriggerAndWait();
}

void MediationEngine::AdvanceEpoch() {
  const uint64_t next = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!persist_attached_.load()) return;
  MutexLock lock(persist_mu_);
  if (persist_failed_.load()) return;
  // Recovery takes max(snapshot epoch, journaled epochs), so out-of-order
  // appends from concurrent advancers are harmless.
  (void)JournalLocked(RecordType::kEpochAdvance, EncodeEpochRecord(next));
}

Status MediationEngine::EvictWarehouseOlderThan(uint64_t epoch_horizon) {
  if (persist_attached_.load()) {
    MutexLock lock(persist_mu_);
    PIYE_RETURN_NOT_OK(JournalLocked(RecordType::kWarehouseEvict,
                                     EncodeWarehouseEvictRecord(epoch_horizon)));
  }
  warehouse_.EvictOlderThan(epoch_horizon);
  return Status::OK();
}

MediationEngine::HealthReport MediationEngine::Health() const {
  HealthReport report;
  report.schema_ready = schema_ready_;
  report.persistence_ok = !persist_failed_.load();
  {
    MutexLock lock(persist_mu_);
    report.persistence_enabled = persist_ != nullptr;
    if (persist_ != nullptr) {
      report.wal_generation = persist_->generation();
      report.wal_live_bytes = persist_->wal()->synced_bytes();
      report.records_since_snapshot = records_since_snapshot_;
    }
  }
  report.snapshots_total = snapshots_total_.load();
  report.last_snapshot_duration_ms = last_snapshot_duration_ms_.load();
  const uint64_t snapshot_done_ns = last_snapshot_done_ns_.load();
  if (snapshot_done_ns != 0) {
    const uint64_t now_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    report.last_snapshot_age_ms =
        now_ns >= snapshot_done_ns ? (now_ns - snapshot_done_ns) / 1000000 : 0;
  }
  report.last_recovery_replay_ms = last_recovery_replay_ms_.load();
  report.resident_requesters = history_.resident_requesters();
  report.spilled_requesters_total = history_.spilled_total();
  {
    MutexLock index_lock(floor_index_mu_);
    if (floor_index_ != nullptr) {
      report.floor_index_requesters = floor_index_->count();
    }
  }
  report.sources_total = sources_.size();
  for (const auto* src : sources_) {
    SourceHealth health;
    health.owner = src->owner();
    health.transport = src->transport_stats();
    if (!options_.enable_circuit_breakers) {
      health.breaker_state = "disabled";
      ++report.sources_admitting;
    } else {
      const auto it = breakers_.find(src->owner());
      const CircuitBreaker* breaker = it->second.get();
      const CircuitBreaker::State state = breaker->state();
      health.breaker_state = CircuitBreaker::StateName(state);
      health.consecutive_failures = breaker->consecutive_failures();
      health.shed_total = breaker->shed_total();
      health.opened_total = breaker->opened_total();
      if (state != CircuitBreaker::State::kOpen) ++report.sources_admitting;
    }
    report.sources.push_back(std::move(health));
  }
  report.ready = report.schema_ready && report.persistence_ok &&
                 report.sources_total > 0 && report.sources_admitting > 0;
  report.admission_inflight = admission_.inflight();
  report.admission_queue_depth = admission_.queue_depth();
  report.admitted_total = metrics_.counter("engine.admitted");
  report.shed_total = metrics_.counter("engine.shed");
  report.cancelled_total = metrics_.counter("engine.cancelled");
  return report;
}

Status MediationEngine::ValidateOptions(const QueryOptions& options) const {
  if (options.deadline_ms < 0) {
    return Status::InvalidArgument(
        "QueryOptions.deadline_ms must be >= 0 (0 = no deadline), got " +
        std::to_string(options.deadline_ms));
  }
  if (options.max_retries > QueryOptions::kMaxRetriesLimit) {
    return Status::InvalidArgument(
        "QueryOptions.max_retries " + std::to_string(options.max_retries) +
        " exceeds the limit of " +
        std::to_string(QueryOptions::kMaxRetriesLimit) +
        " (a runaway retry count amplifies overload)");
  }
  if (options.min_sources > sources_.size()) {
    return Status::InvalidArgument(
        "QueryOptions.min_sources " + std::to_string(options.min_sources) +
        " exceeds the " + std::to_string(sources_.size()) +
        " registered source(s); the quorum can never be met");
  }
  return Status::OK();
}

void MediationEngine::RunFragmentWithRetry(
    const source::FederatedSource* src, const source::PiqlQuery& fragment,
    const QueryOptions& options, std::chrono::steady_clock::time_point deadline,
    const CancelToken& cancel, trace::MetricsRegistry* metrics,
    FragmentOutcome* outcome) {
  trace::ScopedSpan span("source-fragment", nullptr, metrics);
  // The caller gave up (explicit cancel or whole-query deadline): the source
  // is not to blame, so the breaker hears nothing about this fragment.
  auto abandoned_by_caller = [&] {
    outcome->status = options.cancel.status();
    outcome->breaker_reported.store(true);  // suppress blame
    metrics->AddCounter("engine.fragments_cancelled");
  };
  for (uint32_t attempt = 0;; ++attempt) {
    if (cancel.cancelled()) {
      if (options.cancel.cancelled()) {
        abandoned_by_caller();
        return;
      }
      // Only the per-source fan-out deadline fired: the source *is* slow,
      // which is exactly what the breaker exists to count.
      outcome->status = Status::DeadlineExceeded(
          "per-source deadline exceeded before attempt " +
          std::to_string(attempt + 1));
      metrics->AddCounter("engine.fragments_failed");
      metrics->AddCounter("engine.fragments_deadline_exceeded");
      break;
    }
    metrics->AddCounter("engine.fragment_attempts");
    auto result = src->ExecuteFragment(fragment, cancel);
    if (result.ok()) {
      outcome->status = Status::OK();
      outcome->result = std::move(result).value();
      metrics->AddCounter("engine.fragments_ok");
      break;
    }
    outcome->status = result.status();
    if (result.status().IsCancelled() ||
        (result.status().IsDeadlineExceeded() && options.cancel.cancelled())) {
      abandoned_by_caller();
      return;
    }
    // Only transient faults are worth retrying; a privacy refusal or a
    // malformed fragment will refuse identically every time.
    if (!result.status().IsUnavailable() || attempt >= options.max_retries) {
      metrics->AddCounter("engine.fragments_failed");
      // A cooperative source that woke at the fan-out deadline lands here
      // (instead of the waiter's abandonment path) — keep the deadline
      // counter accurate either way.
      if (result.status().IsDeadlineExceeded()) {
        metrics->AddCounter("engine.fragments_deadline_exceeded");
      }
      break;
    }
    const auto backoff =
        std::min(kRetryBackoffCap, kRetryBackoffBase * (1u << std::min(attempt, 5u)));
    if (std::chrono::steady_clock::now() + backoff >= deadline) {
      metrics->AddCounter("engine.fragments_failed");
      break;  // the waiter is about to give up on us anyway
    }
    metrics->AddCounter("engine.fragment_retries");
    if (!cancel.SleepFor(backoff)) continue;  // fired mid-backoff: classify at top
  }
  outcome->ReportToBreaker();
}

Result<MediationEngine::IntegratedResult> MediationEngine::Execute(
    const source::PiqlQuery& query, const QueryOptions& options) {
  if (!schema_ready_) {
    return Status::Internal("GenerateMediatedSchema must run before Execute");
  }
  if (persist_failed_.load()) return FailClosedStatus();
  PIYE_RETURN_NOT_OK(ValidateOptions(options));
  metrics_.AddCounter("engine.queries");

  // The transport-authenticated requester overrides the query's self-claim.
  const source::PiqlQuery* effective_query = &query;
  source::PiqlQuery reidentified;
  if (!options.requester.empty() && options.requester != query.requester) {
    reidentified = query;
    reidentified.requester = options.requester;
    effective_query = &reidentified;
  }
  const std::string fingerprint =
      xml::Serialize(*effective_query->ToXml(), /*indent=*/-1);

  // Admission runs ahead of single-flight, the warehouse, history, budget,
  // and the breakers: a shed or pre-expired query touches none of them. The
  // permit is held for the whole call — a coalesced follower occupies a slot
  // too (it is live work the caller is waiting on).
  PIYE_ASSIGN_OR_RETURN(
      AdmissionController::Permit permit,
      admission_.Admit(effective_query->requester, options.cancel));

  if (!options_.enable_single_flight || !options.coalesce) {
    return ExecuteUncoalesced(*effective_query, options, fingerprint);
  }

  // Single-flight: identical concurrent requests (same fingerprint, same
  // requester, same options) share one federated execution. The requester is
  // part of the key on top of the fingerprint (which already serializes it)
  // so the budget-neutrality rule — never merge across requesters — holds by
  // construction even if fingerprinting ever changes.
  const std::string flight_key = effective_query->requester + '\x1f' +
                                 OptionsCoalescingKey(options) + '\x1f' +
                                 fingerprint;
  std::shared_ptr<InflightExecution> flight;
  bool leader = false;
  {
    MutexLock lock(inflight_mu_);
    auto it = inflight_.find(flight_key);
    if (it == inflight_.end()) {
      flight = std::make_shared<InflightExecution>();
      inflight_.emplace(flight_key, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }
  if (!leader) {
    // Join the in-flight execution: no source fan-out, no retries, and no
    // additional budget charge for this caller — the leader's (single)
    // history record already accounts the disclosure for this requester.
    metrics_.AddCounter("engine.singleflight_coalesced");
    MutexLock lock(flight->mu);
    if (!options.cancel.can_fire()) {
      while (!flight->done) flight->cv.Wait(lock);
    } else {
      // The flight's cv is only notified by its leader, so a follower whose
      // token fires polls its way out (the deadline itself is honoured
      // exactly via wait_until). Leaving early is budget-neutral: this
      // caller was never going to be charged.
      while (!flight->done) {
        auto wake = std::chrono::steady_clock::now() + kCancelPollInterval;
        if (options.cancel.has_deadline()) {
          wake = std::min(wake, options.cancel.deadline());
        }
        flight->cv.WaitUntil(lock, wake);
        if (!flight->done && options.cancel.cancelled()) {
          metrics_.AddCounter("engine.cancelled");
          return options.cancel.status();
        }
      }
    }
    return flight->result;
  }
  metrics_.AddCounter("engine.singleflight_leaders");
  Result<IntegratedResult> result =
      ExecuteUncoalesced(*effective_query, options, fingerprint);
  {
    // Remove the flight *before* publishing: a caller arriving after this
    // point starts a fresh execution (correct — the previous answer is now
    // history, and the warehouse serves repeats), while everyone who joined
    // earlier shares the result below.
    MutexLock lock(inflight_mu_);
    inflight_.erase(flight_key);
  }
  {
    MutexLock lock(flight->mu);
    flight->result = result;
    flight->done = true;
  }
  flight->cv.NotifyAll();
  return result;
}

Result<MediationEngine::IntegratedResult> MediationEngine::ExecuteUncoalesced(
    const source::PiqlQuery& query, const QueryOptions& options,
    const std::string& fingerprint) {
  const source::PiqlQuery* effective_query = &query;

  IntegratedResult out;
  trace::Trace query_trace;
  const bool use_warehouse = options_.enable_warehouse && options.allow_warehouse;

  // Warehouse lookup (hybrid virtual/materialized querying).
  {
    trace::ScopedSpan span("warehouse-lookup", &query_trace, &metrics_);
    if (use_warehouse) {
      auto cached = warehouse_.Get(fingerprint, epoch(), options_.warehouse_max_age);
      if (cached != nullptr) {
        span.Stop();
        out.table_handle = std::move(cached);  // zero-copy: the cached entry
        out.from_warehouse = true;
        out.timings = query_trace.timings();
        metrics_.AddCounter("engine.warehouse_hits");
        return out;
      }
    }
  }

  // Sequence-level budget for the requester, against the *durable* floor: a
  // spilled requester's first returning query faults its floor back in here,
  // before any admission or budget decision. Fail closed — a floor that
  // cannot be loaded refuses the query rather than defaulting to a fresh
  // budget.
  auto cumulative = history_.DurableCumulativeLoss(effective_query->requester);
  if (!cumulative.ok()) {
    return Status::Unavailable(
        "refusing query: the requester's durable budget floor could not be "
        "loaded (fail closed): " + cumulative.status().ToString());
  }
  if (*cumulative >= options_.max_cumulative_loss) {
    return Status::PrivacyViolation("requester '" + effective_query->requester +
                                    "' has exhausted the cumulative loss budget");
  }

  // Fragmentation.
  QueryFragmenter fragmenter(&schema_, source::DefaultClinicalNameMatcher());
  QueryFragmenter::FragmentationResult fragments;
  {
    trace::ScopedSpan span("fragment", &query_trace, &metrics_);
    PIYE_ASSIGN_OR_RETURN(fragments,
                          fragmenter.Fragment(*effective_query, SourceOwners()));
  }
  out.sources_skipped = fragments.skipped;

  // Per-source execution (each runs its full Fig. 2(a) pipeline), fanned out
  // across the pool when one exists. Outcomes are indexed by fragment order,
  // so integration below is deterministic however the tasks interleave.
  struct Dispatch {
    std::string owner;
    std::shared_ptr<FragmentOutcome> outcome;
    std::future<void> done;  // valid only in parallel mode
  };
  std::vector<Dispatch> dispatches;
  size_t transport_skips = 0;  // unavailable / past-deadline / shed, not refusals
  {
    trace::ScopedSpan span("source-execution", &query_trace, &metrics_);
    const auto fanout_start = std::chrono::steady_clock::now();
    // The effective per-fragment deadline is the tighter of the per-source
    // deadline and the caller token's whole-query deadline.
    auto deadline = ComputeDeadline(fanout_start, options.deadline_ms);
    if (options.cancel.has_deadline()) {
      deadline = std::min(deadline, options.cancel.deadline());
    }
    // What fragment tasks poll: the caller's token tightened with the
    // fan-out deadline, so a hung source wakes at the deadline and frees its
    // pool thread instead of sleeping out the hang.
    const CancelToken frag_token = options.cancel.WithDeadline(deadline);
    for (const auto& frag : fragments.fragments) {
      const source::FederatedSource* src = nullptr;
      for (const auto* s : sources_) {
        if (s->owner() == frag.source) {
          src = s;
          break;
        }
      }
      if (src == nullptr) continue;
      CircuitBreaker* breaker = nullptr;
      if (options_.enable_circuit_breakers && !options.bypass_circuit_breaker) {
        const auto it = breakers_.find(frag.source);
        if (it != breakers_.end()) breaker = it->second.get();
      }
      if (breaker != nullptr &&
          !breaker->Admit(std::chrono::steady_clock::now())) {
        // Shed without dialing: the breaker already counted it.
        ++transport_skips;
        out.sources_skipped[frag.source] =
            Status::Unavailable(
                "circuit breaker open: source shed after repeated transport "
                "failures")
                .ToString();
        continue;
      }
      Dispatch d;
      d.owner = frag.source;
      d.outcome = std::make_shared<FragmentOutcome>();
      d.outcome->fragment = frag.query;
      d.outcome->breaker = breaker;
      if (executor_ != nullptr) {
        auto outcome = d.outcome;  // keep alive even if the waiter gives up
        // The executor-level gate uses the *caller* token: a task dequeued
        // after the caller gave up never starts (the whole query returns the
        // cancellation status, so its empty outcome is never read). Deadline
        // handling stays inside RunFragmentWithRetry, which can classify it.
        d.done = executor_->Submit(
            options.cancel,
            [src, outcome, options, deadline, frag_token, metrics = &metrics_] {
              RunFragmentWithRetry(src, outcome->fragment, options, deadline,
                                   frag_token, metrics, outcome.get());
            });
      } else {
        RunFragmentWithRetry(src, d.outcome->fragment, options, deadline,
                             frag_token, &metrics_, d.outcome.get());
      }
      dispatches.push_back(std::move(d));
    }

    const bool bounded_wait =
        options.deadline_ms != 0 || options.cancel.has_deadline();
    for (auto& d : dispatches) {
      if (!d.done.valid()) continue;  // serial mode: already ran in-line
      if (!bounded_wait) {
        d.done.wait();
      } else if (d.done.wait_until(deadline) != std::future_status::ready) {
        // Abandon the fragment: the task still runs to completion on its
        // pool thread (it owns a shared_ptr to the outcome), but this query
        // proceeds without it. From the breaker's point of view the source
        // blew its deadline — unless the task finishes first and reports a
        // different outcome (the exchange settles the race), or the caller
        // itself gave up, in which case no one is blamed.
        if (options.cancel.cancelled()) {
          d.outcome->breaker_reported.store(true);  // suppress blame
        } else if (d.outcome->breaker != nullptr &&
                   !d.outcome->breaker_reported.exchange(true)) {
          d.outcome->breaker->OnFailure(std::chrono::steady_clock::now());
        }
        metrics_.AddCounter("engine.fragments_deadline_exceeded");
        d.outcome = nullptr;
        out.sources_skipped[d.owner] =
            Status::DeadlineExceeded("per-source deadline of " +
                                     std::to_string(options.deadline_ms) +
                                     " ms exceeded")
                .ToString();
      }
    }
  }

  // Cooperative whole-query stop: nothing was released, so nothing is
  // charged or recorded — the fired token simply unwinds the call.
  if (options.cancel.cancelled()) {
    metrics_.AddCounter("engine.cancelled");
    return options.cancel.status();
  }

  struct Answer {
    std::string owner;
    source::FederatedSource::FragmentResult fragment;
  };
  std::vector<Answer> answers;
  for (auto& d : dispatches) {
    if (d.outcome == nullptr) {  // timed out above
      ++transport_skips;
      continue;
    }
    if (!d.outcome->status.ok()) {
      if (d.outcome->status.IsPrivacyViolation()) {
        Logger::Info("mediator", "source '" + d.owner + "' refused: " +
                                     d.outcome->status.message());
      }
      if (IsTransportFailure(d.outcome->status)) {
        ++transport_skips;
      }
      out.sources_skipped[d.owner] = d.outcome->status.ToString();
      continue;
    }
    answers.push_back({d.owner, std::move(d.outcome->result)});
  }
  auto skip_detail = [&out] {
    std::string detail;
    for (const auto& [owner, reason] : out.sources_skipped) {
      detail += " [" + owner + ": " + reason + "]";
    }
    return detail;
  };
  if (answers.empty()) {
    // Distinguish "everyone refused on privacy grounds" (a verdict) from
    // "everyone was down, too slow, or shed" (a transport failure, retryable).
    if (!out.sources_skipped.empty() &&
        transport_skips == out.sources_skipped.size()) {
      return Status::Unavailable(
          "no source answered: every relevant source was unavailable or past "
          "its deadline:" + skip_detail());
    }
    return Status::PrivacyViolation(
        "no source could serve the query within its privacy constraints");
  }
  if (options.min_sources > 1 && answers.size() < options.min_sources) {
    std::string msg = "quorum not met: " + std::to_string(answers.size()) +
                      " of the required " + std::to_string(options.min_sources) +
                      " sources answered";
    const std::string detail = skip_detail();
    if (!detail.empty()) msg += ";" + detail;
    return Status::Unavailable(msg);
  }

  // Privacy control: greedily suppress the highest-loss source results until
  // the combined loss passes (the violating source "is notified" — here,
  // recorded in sources_suppressed).
  double combined = 0.0;
  {
    trace::ScopedSpan span("privacy-control", &query_trace, &metrics_);
    std::vector<const xml::XmlNode*> tagged;
    for (const auto& a : answers) tagged.push_back(a.fragment.xml.get());
    for (;;) {
      auto check = control_.CheckIntegratedResults(tagged);
      if (check.ok()) {
        combined = *check;
        break;
      }
      if (answers.size() <= 1) {
        HistoryEntry entry;
        entry.requester = effective_query->requester;
        entry.purpose = effective_query->purpose;
        entry.query_text = fingerprint;
        entry.released = false;
        // A refusal is part of the sequence too: it must survive a crash,
        // or the auditor's view of the history diverges.
        PIYE_RETURN_NOT_OK(RecordDurably(std::move(entry), nullptr, fingerprint));
        return check.status();
      }
      // Drop the answer with the highest tagged loss.
      size_t worst = 0;
      double worst_loss = -1.0;
      for (size_t i = 0; i < answers.size(); ++i) {
        const double l =
            source::MetadataTagger::ReadPrivacyLoss(*answers[i].fragment.xml);
        if (l > worst_loss) {
          worst_loss = l;
          worst = i;
        }
      }
      // The paper: violating results are excluded "and the remote source(s)
      // is notified about the violation" — here, the notification channel is
      // the log plus the sources_suppressed report.
      Logger::Warn("mediator", "privacy control suppressed results of '" +
                                   answers[worst].owner + "' for requester '" +
                                   effective_query->requester + "': " +
                                   check.status().message());
      out.sources_suppressed.push_back(answers[worst].owner);
      answers.erase(answers.begin() + static_cast<ptrdiff_t>(worst));
      tagged.clear();
      for (const auto& a : answers) tagged.push_back(a.fragment.xml.get());
    }
  }

  // Integration + private dedup. Dedup keys are requester-facing names, so
  // resolve them loosely to mediated attribute names first.
  {
    trace::ScopedSpan span("integrate", &query_trace, &metrics_);
    std::vector<std::string> resolved_keys;
    for (const auto& key : options.dedup_keys) {
      auto attr = fragmenter.Resolve(key);
      resolved_keys.push_back(attr.ok() ? (*attr)->name : key);
    }
    ResultIntegrator integrator(&schema_);
    std::vector<ResultIntegrator::SourceResult> source_results;
    for (const auto& a : answers) {
      PIYE_ASSIGN_OR_RETURN(ResultIntegrator::SourceResult r,
                            integrator.FromTaggedXml(*a.fragment.xml));
      source_results.push_back(std::move(r));
      out.sources_answered.push_back(a.owner);
    }
    PIYE_ASSIGN_OR_RETURN(relational::Table integrated,
                          integrator.Integrate(source_results, resolved_keys));
    out.table_handle =
        std::make_shared<const relational::Table>(std::move(integrated));
    out.combined_privacy_loss = combined;
  }

  // History + warehouse, behind the durability barrier: in durable mode the
  // record is on disk before the answer leaves this function, and a failure
  // to get it there withholds the answer. The warehouse stores the same
  // refcounted table the caller receives — no copy.
  {
    trace::ScopedSpan span("record", &query_trace, &metrics_);
    HistoryEntry entry;
    entry.requester = effective_query->requester;
    entry.purpose = effective_query->purpose;
    entry.query_text = fingerprint;
    entry.sources_answered = out.sources_answered;
    entry.sources_refused = out.sources_suppressed;
    entry.aggregated_privacy_loss = combined;
    entry.released = true;
    PIYE_RETURN_NOT_OK(RecordDurably(std::move(entry),
                                     use_warehouse ? out.table_handle : nullptr,
                                     fingerprint));
  }
  out.timings = query_trace.timings();
  return out;
}

}  // namespace mediator
}  // namespace piye

#include "mediator/engine.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/macros.h"
#include "source/metadata_tagger.h"
#include "xml/parser.h"

namespace piye {
namespace mediator {

namespace {

class StageClock {
 public:
  explicit StageClock(std::vector<MediationEngine::StageTiming>* out) : out_(out) {
    last_ = std::chrono::steady_clock::now();
  }

  void Mark(const std::string& stage) {
    const auto now = std::chrono::steady_clock::now();
    const double micros =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_).count() /
        1000.0;
    out_->push_back({stage, micros});
    last_ = now;
  }

 private:
  std::vector<MediationEngine::StageTiming>* out_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace

MediationEngine::MediationEngine(Options options)
    : options_(options),
      control_(options.max_combined_loss, options.max_interval_loss) {}

void MediationEngine::RegisterSource(source::RemoteSource* src) {
  sources_.push_back(src);
  schema_ready_ = false;
}

std::vector<std::string> MediationEngine::SourceOwners() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto* s : sources_) out.push_back(s->owner());
  return out;
}

Status MediationEngine::GenerateMediatedSchema(const std::string& shared_key) {
  std::vector<match::ColumnSketch> sketches;
  for (const auto* src : sources_) {
    PIYE_ASSIGN_OR_RETURN(std::vector<match::ColumnSketch> s,
                          src->ExportSketches(shared_key));
    sketches.insert(sketches.end(), s.begin(), s.end());
  }
  match::SchemaMatcher::Options match_options;
  match::MediatedSchemaGenerator generator(
      match::SchemaMatcher(match_options, source::DefaultClinicalNameMatcher()));
  PIYE_ASSIGN_OR_RETURN(schema_, generator.Generate(sketches));
  schema_ready_ = true;
  return Status::OK();
}

Result<MediationEngine::IntegratedResult> MediationEngine::Execute(
    const source::PiqlQuery& query, const std::vector<std::string>& dedup_keys) {
  if (!schema_ready_) {
    return Status::Internal("GenerateMediatedSchema must run before Execute");
  }
  IntegratedResult out;
  StageClock clock(&out.timings);

  // Warehouse lookup (hybrid virtual/materialized querying).
  const std::string fingerprint = xml::Serialize(*query.ToXml(), /*indent=*/-1);
  if (options_.enable_warehouse) {
    auto cached = warehouse_.Get(fingerprint, epoch_, options_.warehouse_max_age);
    clock.Mark("warehouse-lookup");
    if (cached.has_value()) {
      out.table = std::move(*cached);
      out.from_warehouse = true;
      return out;
    }
  } else {
    clock.Mark("warehouse-lookup");
  }

  // Sequence-level budget for the requester.
  if (history_.CumulativeLoss(query.requester) >= options_.max_cumulative_loss) {
    return Status::PrivacyViolation("requester '" + query.requester +
                                    "' has exhausted the cumulative loss budget");
  }

  // Fragmentation.
  QueryFragmenter fragmenter(&schema_, source::DefaultClinicalNameMatcher());
  PIYE_ASSIGN_OR_RETURN(QueryFragmenter::FragmentationResult fragments,
                        fragmenter.Fragment(query, SourceOwners()));
  out.sources_skipped = fragments.skipped;
  clock.Mark("fragment");

  // Per-source execution (each runs its full Fig. 2(a) pipeline).
  struct Answer {
    std::string owner;
    source::RemoteSource::FragmentResult fragment;
  };
  std::vector<Answer> answers;
  for (const auto& frag : fragments.fragments) {
    source::RemoteSource* src = nullptr;
    for (auto* s : sources_) {
      if (s->owner() == frag.source) {
        src = s;
        break;
      }
    }
    if (src == nullptr) continue;
    auto result = src->ExecuteFragment(frag.query);
    if (!result.ok()) {
      if (result.status().IsPrivacyViolation()) {
        Logger::Info("mediator", "source '" + frag.source + "' refused: " +
                                     result.status().message());
      }
      out.sources_skipped[frag.source] = result.status().ToString();
      continue;
    }
    answers.push_back({frag.source, std::move(result).value()});
  }
  clock.Mark("source-execution");
  if (answers.empty()) {
    return Status::PrivacyViolation(
        "no source could serve the query within its privacy constraints");
  }

  // Privacy control: greedily suppress the highest-loss source results until
  // the combined loss passes (the violating source "is notified" — here,
  // recorded in sources_suppressed).
  std::vector<const xml::XmlNode*> tagged;
  for (const auto& a : answers) tagged.push_back(a.fragment.xml.get());
  double combined = 0.0;
  for (;;) {
    auto check = control_.CheckIntegratedResults(tagged);
    if (check.ok()) {
      combined = *check;
      break;
    }
    if (answers.size() <= 1) {
      HistoryEntry entry;
      entry.requester = query.requester;
      entry.purpose = query.purpose;
      entry.query_text = fingerprint;
      entry.released = false;
      history_.Record(std::move(entry));
      return check.status();
    }
    // Drop the answer with the highest tagged loss.
    size_t worst = 0;
    double worst_loss = -1.0;
    for (size_t i = 0; i < answers.size(); ++i) {
      const double l =
          source::MetadataTagger::ReadPrivacyLoss(*answers[i].fragment.xml);
      if (l > worst_loss) {
        worst_loss = l;
        worst = i;
      }
    }
    // The paper: violating results are excluded "and the remote source(s)
    // is notified about the violation" — here, the notification channel is
    // the log plus the sources_suppressed report.
    Logger::Warn("mediator", "privacy control suppressed results of '" +
                                 answers[worst].owner + "' for requester '" +
                                 query.requester + "': " +
                                 check.status().message());
    out.sources_suppressed.push_back(answers[worst].owner);
    answers.erase(answers.begin() + static_cast<ptrdiff_t>(worst));
    tagged.clear();
    for (const auto& a : answers) tagged.push_back(a.fragment.xml.get());
  }
  clock.Mark("privacy-control");

  // Integration + private dedup. Dedup keys are requester-facing names, so
  // resolve them loosely to mediated attribute names first.
  std::vector<std::string> resolved_keys;
  for (const auto& key : dedup_keys) {
    auto attr = fragmenter.Resolve(key);
    resolved_keys.push_back(attr.ok() ? (*attr)->name : key);
  }
  ResultIntegrator integrator(&schema_);
  std::vector<ResultIntegrator::SourceResult> source_results;
  for (const auto& a : answers) {
    PIYE_ASSIGN_OR_RETURN(ResultIntegrator::SourceResult r,
                          integrator.FromTaggedXml(*a.fragment.xml));
    source_results.push_back(std::move(r));
    out.sources_answered.push_back(a.owner);
  }
  PIYE_ASSIGN_OR_RETURN(out.table,
                        integrator.Integrate(source_results, resolved_keys));
  out.combined_privacy_loss = combined;
  clock.Mark("integrate");

  // History + warehouse.
  HistoryEntry entry;
  entry.requester = query.requester;
  entry.purpose = query.purpose;
  entry.query_text = fingerprint;
  entry.sources_answered = out.sources_answered;
  entry.sources_refused = out.sources_suppressed;
  entry.aggregated_privacy_loss = combined;
  entry.released = true;
  history_.Record(std::move(entry));
  if (options_.enable_warehouse) {
    warehouse_.Put(fingerprint, out.table, epoch_);
  }
  clock.Mark("record");
  return out;
}

}  // namespace mediator
}  // namespace piye
